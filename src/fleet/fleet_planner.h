#ifndef DOTPROV_FLEET_FLEET_PLANNER_H_
#define DOTPROV_FLEET_FLEET_PLANNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dot/problem.h"
#include "dot/reprovision.h"
#include "storage/storage_class.h"

namespace dot {

/// One tenant database of the fleet: its own §2.5 instance. Every tenant
/// must reference the *same* BoxConfig (the shared storage catalog the
/// fleet provisions against); schemas and workloads are per-tenant.
/// `problem.options` is ignored — the fleet run's FleetConfig::options
/// drive every evaluation, so one fleet solve has one engine setup.
struct FleetTenant {
  std::string name;
  DotProblem problem;
};

/// Global coupling across tenants. Per-tenant constraints (each tenant's
/// own SLA, and the box's per-class capacities as the per-tenant fit rule)
/// stay inside the per-tenant problems; these are the *fleet-wide* ones.
struct FleetConstraints {
  /// Σ over tenants of C_i(L_i) must stay within this, cents/hour.
  /// <= 0 = unconstrained.
  double budget_cents_per_hour = 0.0;

  /// Fleet-wide capacity per storage class, GB (the operator's pooled
  /// device fleet — it may exceed or undercut one box's class capacity).
  /// Empty = unconstrained; otherwise exactly NumClasses() entries.
  std::vector<double> capacity_gb;
};

/// How each tenant's candidate pool is seeded.
enum class FleetPoolMode {
  /// Enumerate the tenant's whole M^N layout space (guarded by
  /// FleetConfig::max_pool_layouts) and keep the feasible Pareto frontier
  /// over (TOC, cost, per-class space). Exact: the fleet optimizes over
  /// every feasible trade-off the tenant has. For small tenant schemas.
  kEnumerate,
  /// Seed with the tenant's solo optimum from the ReprovisionPlanner
  /// candidate search (warm-started branch-and-bound, or DOT's Procedure 1
  /// — AppendSoloCandidate in dot/reprovision.h) plus the M uniform
  /// layouts as downgrade/upgrade anchors. Scales to large schemas; the
  /// pool is a subset of kEnumerate's, so fleet quality degrades
  /// gracefully, never the guarantees below.
  kSearch,
};

/// Knobs of a FleetPlanner run.
struct FleetConfig {
  FleetConstraints constraints;

  FleetPoolMode pool_mode = FleetPoolMode::kEnumerate;

  /// kEnumerate guard: a tenant whose M^N exceeds this fails the plan with
  /// OutOfRange (switch that fleet to kSearch) rather than silently
  /// truncating its pool.
  long long max_pool_layouts = 20'000;

  /// Candidate search for kSearch pools (dot/reprovision.h).
  EpochSearch search = EpochSearch::kExact;

  /// Outer subgradient iterations of the price decomposition.
  int price_iterations = 48;

  /// Share candidate pools (and the eval tables / plan caches inside the
  /// pool build) across tenants whose cache key matches: same
  /// Schema::Fingerprint(), same workload *name*, same SLA / cost-model /
  /// scoring inputs. Contract: two tenants whose workloads share a name
  /// over fingerprint-identical schemas must be identical workloads —
  /// the fleet generators guarantee it, and it is what makes memory
  /// O(distinct schemas) instead of O(tenants). Turn off for fleets that
  /// violate the contract.
  bool share_pools = true;

  /// Engine knobs: `options.num_threads` drives the pool-build and
  /// per-tenant pricing fan-outs. Results are bit-identical at every
  /// thread count — pools build into distinct slots, per-tenant argmins
  /// write distinct slots, and every total is accumulated serially in
  /// tenant-index order.
  SearchOptions options;
};

/// The layout chosen for one tenant, with its bill.
struct FleetTenantChoice {
  std::vector<int> placement;
  double toc_cents_per_task = 0.0;
  double cost_cents_per_hour = 0.0;
  /// Which shared pool scored this tenant, and which candidate won.
  int pool_id = -1;
  int candidate = -1;
};

/// A fleet provisioning plan.
///
/// Accounting contract (the ReprovisionPlan rule, lifted to fleets): every
/// total below is accumulated over tenants in index order — total_toc +=
/// toc_i, total_cost += cost_i, used_gb[j] += space_ij — so independently
/// recomputed totals of the same selection are bit-identical at any thread
/// count (floating-point addition is not associative).
///
/// Guarantees, when the plan status is OK:
///   * feasibility — total_cost and used_gb satisfy FleetConstraints
///     within a 1e-9 relative tolerance, and every tenant's layout is
///     feasible for its own problem (capacity fit + SLA);
///   * never-lose — total_toc_cents_per_task <=
///     independent_toc_cents_per_task whenever the independent baseline is
///     feasible, because that baseline is itself a candidate selection the
///     planner considers (the same argument ReprovisionPlanner makes
///     against its pool-sequence baselines).
struct FleetPlan {
  Status status = Status::OK();

  std::vector<FleetTenantChoice> tenants;

  double total_toc_cents_per_task = 0.0;
  double total_cost_cents_per_hour = 0.0;
  /// Fleet-wide space per storage class, GB.
  std::vector<double> used_gb;

  /// The fleet's cost floor: Σ over tenants of the cheapest candidate's
  /// cost. No selection exists below this, so budget sweeps between
  /// min_cost and the unconstrained (solo-optima) cost cover the whole
  /// binding range.
  double min_cost_cents_per_hour = 0.0;

  /// The per-tenant-independent baseline: each tenant provisions alone on
  /// a static fair share of the fleet constraints, proportional to its
  /// minimum spend (its cheapest candidate's cost) — the share a
  /// per-tenant operator without fleet-level coordination would have to
  /// sell it, and a weighting that keeps the baseline budget-feasible
  /// whenever any selection is. With no active constraints this is simply
  /// each tenant's solo optimum.
  double independent_toc_cents_per_task = 0.0;
  double independent_cost_cents_per_hour = 0.0;
  /// False when some tenant has no candidate within its fair share (the
  /// baseline totals then price each such tenant's cheapest candidate
  /// instead, and the never-lose guarantee is vacuous).
  bool independent_feasible = false;
  /// True when the final selection IS the independent baseline (the
  /// coupled search found nothing strictly better).
  bool fell_back_to_baseline = false;

  /// Shadow prices after the last subgradient iteration: cents-per-task
  /// charged per cent/hour of budget, and per GB of each class.
  double budget_price = 0.0;
  std::vector<double> capacity_price;

  /// Cache-instance counters: pools actually built (== distinct cache
  /// keys) and tenants served from an already-built pool. pool_builds +
  /// pool_cache_hits == number of tenants; the O(distinct schemas) memory
  /// claim is exactly pool_builds staying flat as tenants grow.
  int pool_builds = 0;
  int pool_cache_hits = 0;

  int price_iterations_run = 0;
  /// Exchange-repair moves applied to restore feasibility.
  int exchange_moves = 0;
  /// Greedy improvement moves applied after feasibility.
  int improve_moves = 0;

  /// Candidate layouts evaluated across all pool builds (each shared pool
  /// counted once).
  long long layouts_evaluated = 0;
  double plan_ms = 0.0;
};

/// Fleet-scale provisioning: N per-tenant DotProblems coupled by a global
/// budget and per-class capacity, solved by Lagrangian price decomposition
/// over shared per-tenant candidate pools with a deterministic greedy-
/// exchange repair pass.
///
/// Mechanics (DESIGN.md §12):
///   1. Pools — per distinct cache key, the tenant's feasible candidate
///      frontier is built once (FleetPoolMode) and scored through the
///      searches' own evaluation kernel (the TOC fast path, bit-identical
///      to the full estimate), then dominance-pruned and sorted under the
///      BetterCandidate order, so pool[0] is exactly the tenant's solo
///      optimum.
///   2. Prices — an outer subgradient loop adjusts a budget price λ and
///      per-class prices μ_j; each iteration every tenant independently
///      picks argmin(toc + λ·cost + Σ_j μ_j·space_j) from its pool, fanned
///      out on the ThreadPool into distinct slots.
///   3. Repair — when the relaxation over-subscribes, a deterministic
///      greedy exchange walks tenants onto cheaper candidates in best
///      ΔTOC-per-violation-reduction order (ties by tenant then candidate
///      index) until the fleet fits; a final greedy improvement pass then
///      reclaims any slack. The independent fair-share baseline competes
///      as a candidate selection, which is what proves never-lose.
class FleetPlanner {
 public:
  /// `box` must outlive the planner and be the box every tenant problem
  /// references.
  FleetPlanner(const BoxConfig* box, FleetConfig config);

  FleetPlan Plan(const std::vector<FleetTenant>& tenants) const;

  const FleetConfig& config() const { return config_; }

 private:
  const BoxConfig* box_;
  FleetConfig config_;
};

}  // namespace dot

#endif  // DOTPROV_FLEET_FLEET_PLANNER_H_
