#include "fleet/fleet_planner.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "dot/bnb_search.h"
#include "dot/candidate_evaluator.h"
#include "dot/layout.h"
#include "dot/optimizer.h"
#include "workload/workload.h"

namespace dot {

namespace {

/// Relative tolerance of the fleet-wide feasibility checks: fair shares
/// are computed as B·w_i with Σ w_i = 1, so re-summing the shares can
/// drift from B by ULPs; a selection must not flip infeasible over that.
constexpr double kFleetFeasTol = 1e-9;
constexpr double kEps = 1e-12;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// M^N saturating at cap+1 (the guard only needs "exceeds cap").
long long PowSaturating(int m, int n, long long cap) {
  long long total = 1;
  for (int i = 0; i < n; ++i) {
    if (total > cap / m) return cap + 1;
    total *= m;
  }
  return total;
}

void AppendU64(uint64_t v, std::string* out) {
  static const char* kHex = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out->push_back(kHex[(v >> shift) & 0xf]);
  }
  out->push_back('|');
}

void AppendBits(double v, std::string* out) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(bits, out);
}

void AppendPtr(const void* p, std::string* out) {
  AppendU64(reinterpret_cast<uintptr_t>(p), out);
}

/// The pool cache key: everything the pool's scores depend on. Same key =>
/// same pool, by the FleetConfig::share_pools contract. Pointer-keyed
/// inputs (targets_override, profiles) share only on pointer identity —
/// conservative, never wrong.
std::string PoolKey(const DotProblem& p, const FleetConfig& config) {
  std::string key;
  key.reserve(128);
  AppendU64(p.schema->Fingerprint(), &key);
  key += p.workload->name();
  key.push_back('|');
  AppendBits(p.relative_sla, &key);
  key.push_back(p.cost_model.discrete ? '1' : '0');
  key.push_back('|');
  AppendBits(p.cost_model.alpha, &key);
  AppendBits(p.tail_sla.percentile, &key);
  AppendBits(p.tail_sla.latency_cv, &key);
  for (double s : p.io_scale_hint) AppendBits(s, &key);
  key.push_back('|');
  AppendPtr(p.targets_override, &key);
  if (config.pool_mode == FleetPoolMode::kSearch &&
      config.search == EpochSearch::kDot) {
    AppendPtr(p.profiles, &key);
  }
  return key;
}

/// One shared candidate pool: the tenant's feasible frontier, sorted under
/// the BetterCandidate order (toc, then lexicographically lowest
/// placement), so index 0 is the solo optimum and ties anywhere resolve
/// to the lowest index.
struct TenantPool {
  Status status = Status::OK();
  std::vector<std::vector<int>> placements;
  std::vector<double> toc;
  std::vector<double> cost;
  /// Flattened [candidate * num_classes + class] space, GB.
  std::vector<double> space;
  long long layouts_evaluated = 0;

  int size() const { return static_cast<int>(placements.size()); }
};

TenantPool BuildPool(const DotProblem& tenant_problem, const BoxConfig* box,
                     const FleetConfig& config) {
  TenantPool out;
  // One engine setup per fleet run; the pool build itself is serial (the
  // planner parallelizes across distinct pools, into distinct slots).
  DotProblem p = tenant_problem;
  p.options = config.options;
  p.options.num_threads = 1;
  const int n = p.schema->NumObjects();
  const int m = box->NumClasses();

  std::vector<std::vector<int>> candidates;
  if (config.pool_mode == FleetPoolMode::kEnumerate) {
    const long long space = PowSaturating(m, n, config.max_pool_layouts);
    if (space > config.max_pool_layouts) {
      out.status = Status::OutOfRange(
          "tenant layout space " + std::to_string(m) + "^" +
          std::to_string(n) +
          " exceeds max_pool_layouts; use FleetPoolMode::kSearch");
      return out;
    }
    candidates.reserve(static_cast<size_t>(space));
    for (long long idx = 0; idx < space; ++idx) {
      candidates.push_back(DecodeLayoutIndex(idx, n, m));
    }
  } else {
    // The ReprovisionPlanner seeding path (solo optimum), plus the M
    // uniform layouts as deterministic downgrade/upgrade anchors.
    out.layouts_evaluated +=
        AppendSoloCandidate(p, config.search, &candidates);
    for (int cls = 0; cls < m; ++cls) {
      std::vector<int> uniform(static_cast<size_t>(n), cls);
      if (std::find(candidates.begin(), candidates.end(), uniform) ==
          candidates.end()) {
        candidates.push_back(std::move(uniform));
      }
    }
  }

  // Score every candidate through the searches' own kernel (the TOC fast
  // path — bit-identical to the full estimate, dot/eval_tables.h).
  const DotOptimizer estimator(p);
  ThreadPool serial(1);
  const CandidateEvaluator evaluator(estimator, &serial);
  std::vector<Layout> layouts;
  layouts.reserve(candidates.size());
  for (const std::vector<int>& c : candidates) {
    layouts.emplace_back(p.schema, box, c);
  }
  const std::vector<CandidateEval> evals =
      evaluator.EvaluateBatchQuick(layouts);
  out.layouts_evaluated += static_cast<long long>(candidates.size());

  // Keep the feasible ones, in BetterCandidate order.
  std::vector<int> order;
  for (size_t i = 0; i < evals.size(); ++i) {
    if (evals[i].feasible) order.push_back(static_cast<int>(i));
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return BetterCandidate(evals[static_cast<size_t>(a)].toc,
                           candidates[static_cast<size_t>(a)],
                           evals[static_cast<size_t>(b)].toc,
                           candidates[static_cast<size_t>(b)]);
  });

  // Dominance prune over (toc, cost, per-class space): a candidate
  // survives only if no earlier (hence no-worse-TOC) candidate weakly
  // dominates it on cost and every class. Exact all-equal ties keep the
  // earlier — lexicographically lower — placement, which is the fleet's
  // determinism tie-break.
  std::vector<std::vector<double>> kept_space;
  for (int idx : order) {
    const CandidateEval& eval = evals[static_cast<size_t>(idx)];
    const SpaceUsage used =
        layouts[static_cast<size_t>(idx)].SpaceByClass();
    bool dominated = false;
    for (size_t k = 0; k < out.placements.size() && !dominated; ++k) {
      if (out.cost[k] > eval.cost_cents_per_hour) continue;
      bool covers = true;
      for (int j = 0; j < m; ++j) {
        if (kept_space[k][static_cast<size_t>(j)] >
            used[static_cast<size_t>(j)]) {
          covers = false;
          break;
        }
      }
      dominated = covers;
    }
    if (dominated) continue;
    out.placements.push_back(candidates[static_cast<size_t>(idx)]);
    out.toc.push_back(eval.toc);
    out.cost.push_back(eval.cost_cents_per_hour);
    for (int j = 0; j < m; ++j) {
      out.space.push_back(used[static_cast<size_t>(j)]);
    }
    kept_space.push_back(used);
  }
  return out;
}

/// Fleet totals of one selection, accumulated in tenant-index order — the
/// ONE implementation of the FleetPlan accounting contract.
struct FleetTotals {
  double toc = 0.0;
  double cost = 0.0;
  std::vector<double> used;
};

FleetTotals ComputeTotals(const std::vector<int>& choice,
                          const std::vector<const TenantPool*>& pools,
                          int num_classes) {
  FleetTotals t;
  t.used.assign(static_cast<size_t>(num_classes), 0.0);
  for (size_t i = 0; i < choice.size(); ++i) {
    const TenantPool& pool = *pools[i];
    const size_t c = static_cast<size_t>(choice[i]);
    t.toc += pool.toc[c];
    t.cost += pool.cost[c];
    for (int j = 0; j < num_classes; ++j) {
      t.used[static_cast<size_t>(j)] +=
          pool.space[c * static_cast<size_t>(num_classes) +
                     static_cast<size_t>(j)];
    }
  }
  return t;
}

bool FleetFeasible(const FleetTotals& t, const FleetConstraints& c) {
  if (c.budget_cents_per_hour > 0.0 &&
      t.cost > c.budget_cents_per_hour * (1.0 + kFleetFeasTol)) {
    return false;
  }
  for (size_t j = 0; j < c.capacity_gb.size(); ++j) {
    if (t.used[j] > c.capacity_gb[j] * (1.0 + kFleetFeasTol)) return false;
  }
  return true;
}

/// Normalized total violation: 0 iff FleetFeasible. The repair pass's
/// potential function — every applied exchange strictly decreases it.
double Violation(const FleetTotals& t, const FleetConstraints& c) {
  double v = 0.0;
  if (c.budget_cents_per_hour > 0.0) {
    const double cap = c.budget_cents_per_hour * (1.0 + kFleetFeasTol);
    if (t.cost > cap) v += (t.cost - cap) / std::max(cap, kEps);
  }
  for (size_t j = 0; j < c.capacity_gb.size(); ++j) {
    const double cap = c.capacity_gb[j] * (1.0 + kFleetFeasTol);
    if (t.used[j] > cap) v += (t.used[j] - cap) / std::max(cap, kEps);
  }
  return v;
}

FleetTotals ApplyMove(const FleetTotals& t, const TenantPool& pool, int from,
                      int to, int num_classes) {
  FleetTotals out = t;
  const size_t f = static_cast<size_t>(from);
  const size_t c = static_cast<size_t>(to);
  out.toc += pool.toc[c] - pool.toc[f];
  out.cost += pool.cost[c] - pool.cost[f];
  for (int j = 0; j < num_classes; ++j) {
    out.used[static_cast<size_t>(j)] +=
        pool.space[c * static_cast<size_t>(num_classes) +
                   static_cast<size_t>(j)] -
        pool.space[f * static_cast<size_t>(num_classes) +
                   static_cast<size_t>(j)];
  }
  return out;
}

/// Deterministic greedy exchange: walk tenants onto candidates that
/// strictly reduce the violation, cheapest ΔTOC per unit of violation
/// removed first, ties by (tenant, candidate) index. Batch rounds — all
/// improving moves are collected, sorted once, then re-checked and applied
/// sequentially — keep the pass O(rounds · N · K) instead of re-sorting
/// after every apply. Returns true when the selection is feasible.
bool ExchangeRepair(const std::vector<const TenantPool*>& pools,
                    const FleetConstraints& constraints, int num_classes,
                    std::vector<int>* choice, FleetTotals* totals,
                    int* moves_applied) {
  constexpr int kMaxRounds = 64;
  struct Move {
    double score = 0.0;
    int tenant = 0;
    int candidate = 0;
  };
  for (int round = 0; round < kMaxRounds; ++round) {
    double viol = Violation(*totals, constraints);
    if (viol <= 0.0) return true;
    std::vector<Move> moves;
    for (size_t i = 0; i < choice->size(); ++i) {
      const TenantPool& pool = *pools[i];
      const int cur = (*choice)[i];
      for (int c = 0; c < pool.size(); ++c) {
        if (c == cur) continue;
        const FleetTotals next =
            ApplyMove(*totals, pool, cur, c, num_classes);
        const double dv = Violation(next, constraints) - viol;
        if (dv >= -kEps) continue;
        Move mv;
        mv.score = (pool.toc[static_cast<size_t>(c)] -
                    pool.toc[static_cast<size_t>(cur)]) /
                   (-dv);
        mv.tenant = static_cast<int>(i);
        mv.candidate = c;
        moves.push_back(mv);
      }
    }
    if (moves.empty()) return false;
    std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {
      if (a.score != b.score) return a.score < b.score;
      if (a.tenant != b.tenant) return a.tenant < b.tenant;
      return a.candidate < b.candidate;
    });
    bool applied_any = false;
    for (const Move& mv : moves) {
      const size_t i = static_cast<size_t>(mv.tenant);
      const int cur = (*choice)[i];
      if (cur == mv.candidate) continue;
      const FleetTotals next =
          ApplyMove(*totals, *pools[i], cur, mv.candidate, num_classes);
      const double dv = Violation(next, constraints) - viol;
      if (dv >= -kEps) continue;  // stale after earlier applies
      (*choice)[i] = mv.candidate;
      *totals = next;
      viol += dv;
      ++*moves_applied;
      applied_any = true;
      if (viol <= 0.0) break;
    }
    // Kill incremental drift before the feasibility verdict: totals are
    // re-accumulated in the contract order.
    *totals = ComputeTotals(*choice, pools, num_classes);
    if (Violation(*totals, constraints) <= 0.0) return true;
    if (!applied_any) return false;
  }
  return false;
}

/// Deterministic greedy improvement: moves that strictly lower a tenant's
/// TOC while the fleet stays feasible, best ΔTOC first, ties by (tenant,
/// candidate). Monotone in Σ TOC, so it terminates; it can only tighten
/// the never-lose guarantee.
void ImprovementPass(const std::vector<const TenantPool*>& pools,
                     const FleetConstraints& constraints, int num_classes,
                     std::vector<int>* choice, FleetTotals* totals,
                     int* moves_applied) {
  constexpr int kMaxRounds = 64;
  struct Move {
    double delta_toc = 0.0;
    int tenant = 0;
    int candidate = 0;
  };
  for (int round = 0; round < kMaxRounds; ++round) {
    std::vector<Move> moves;
    for (size_t i = 0; i < choice->size(); ++i) {
      const TenantPool& pool = *pools[i];
      const int cur = (*choice)[i];
      for (int c = 0; c < pool.size(); ++c) {
        if (c == cur) continue;
        const double dt = pool.toc[static_cast<size_t>(c)] -
                          pool.toc[static_cast<size_t>(cur)];
        if (dt >= 0.0) continue;
        const FleetTotals next =
            ApplyMove(*totals, pool, cur, c, num_classes);
        if (!FleetFeasible(next, constraints)) continue;
        Move mv;
        mv.delta_toc = dt;
        mv.tenant = static_cast<int>(i);
        mv.candidate = c;
        moves.push_back(mv);
      }
    }
    if (moves.empty()) return;
    std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {
      if (a.delta_toc != b.delta_toc) return a.delta_toc < b.delta_toc;
      if (a.tenant != b.tenant) return a.tenant < b.tenant;
      return a.candidate < b.candidate;
    });
    bool applied_any = false;
    for (const Move& mv : moves) {
      const size_t i = static_cast<size_t>(mv.tenant);
      const int cur = (*choice)[i];
      if (cur == mv.candidate) continue;
      const double dt = pools[i]->toc[static_cast<size_t>(mv.candidate)] -
                        pools[i]->toc[static_cast<size_t>(cur)];
      if (dt >= 0.0) continue;
      const FleetTotals next =
          ApplyMove(*totals, *pools[i], cur, mv.candidate, num_classes);
      if (!FleetFeasible(next, constraints)) continue;
      (*choice)[i] = mv.candidate;
      *totals = next;
      ++*moves_applied;
      applied_any = true;
    }
    *totals = ComputeTotals(*choice, pools, num_classes);
    if (!applied_any) return;
  }
}

}  // namespace

FleetPlanner::FleetPlanner(const BoxConfig* box, FleetConfig config)
    : box_(box), config_(std::move(config)) {
  DOT_CHECK(box_ != nullptr);
  DOT_CHECK(config_.max_pool_layouts > 0);
  DOT_CHECK(config_.price_iterations >= 1);
  DOT_CHECK(config_.constraints.capacity_gb.empty() ||
            static_cast<int>(config_.constraints.capacity_gb.size()) ==
                box_->NumClasses())
      << "capacity_gb must be empty or have one entry per storage class";
}

FleetPlan FleetPlanner::Plan(const std::vector<FleetTenant>& tenants) const {
  const double start_ms = NowMs();
  const int m = box_->NumClasses();
  FleetPlan plan;
  plan.used_gb.assign(static_cast<size_t>(m), 0.0);
  plan.capacity_price.assign(static_cast<size_t>(m), 0.0);
  if (tenants.empty()) {
    plan.status = Status::InvalidArgument("fleet has no tenants");
    return plan;
  }
  for (const FleetTenant& t : tenants) {
    if (t.problem.schema == nullptr || t.problem.workload == nullptr) {
      plan.status = Status::InvalidArgument(
          "tenant " + t.name + " has no schema or workload");
      return plan;
    }
    if (t.problem.box != box_) {
      plan.status = Status::InvalidArgument(
          "tenant " + t.name + " references a different box");
      return plan;
    }
    if (t.problem.ensemble != nullptr) {
      plan.status = Status::InvalidArgument(
          "tenant " + t.name +
          " carries a scenario ensemble; fleet mode is point-forecast");
      return plan;
    }
  }
  const int num_tenants = static_cast<int>(tenants.size());

  // --- Pool assignment: first-occurrence order over cache keys, so pool
  // ids — and everything downstream — are independent of threading.
  std::vector<int> tenant_pool(static_cast<size_t>(num_tenants), -1);
  std::map<std::string, int> key_to_pool;
  std::vector<int> pool_reference;  // pool id -> first tenant index
  for (int i = 0; i < num_tenants; ++i) {
    if (!config_.share_pools) {
      tenant_pool[static_cast<size_t>(i)] =
          static_cast<int>(pool_reference.size());
      pool_reference.push_back(i);
      continue;
    }
    const std::string key =
        PoolKey(tenants[static_cast<size_t>(i)].problem, config_);
    const auto it = key_to_pool.find(key);
    if (it != key_to_pool.end()) {
      tenant_pool[static_cast<size_t>(i)] = it->second;
      ++plan.pool_cache_hits;
    } else {
      const int id = static_cast<int>(pool_reference.size());
      key_to_pool.emplace(key, id);
      tenant_pool[static_cast<size_t>(i)] = id;
      pool_reference.push_back(i);
    }
  }
  const int num_pools = static_cast<int>(pool_reference.size());
  plan.pool_builds = num_pools;

  // --- Build the distinct pools, fanned out into distinct slots.
  std::vector<TenantPool> pools(static_cast<size_t>(num_pools));
  ThreadPool threads(config_.options.num_threads);
  threads.ParallelFor(0, num_pools, [&](int64_t pid) {
    pools[static_cast<size_t>(pid)] = BuildPool(
        tenants[static_cast<size_t>(
                    pool_reference[static_cast<size_t>(pid)])]
            .problem,
        box_, config_);
  });
  for (int pid = 0; pid < num_pools; ++pid) {
    TenantPool& pool = pools[static_cast<size_t>(pid)];
    if (!pool.status.ok()) {
      plan.status = pool.status;
      return plan;
    }
    if (pool.size() == 0) {
      plan.status = Status::Infeasible(
          "tenant " +
          tenants[static_cast<size_t>(
                      pool_reference[static_cast<size_t>(pid)])]
              .name +
          " has no feasible layout for its own capacity and SLA");
      return plan;
    }
    plan.layouts_evaluated += pool.layouts_evaluated;
  }
  std::vector<const TenantPool*> by_tenant(
      static_cast<size_t>(num_tenants));
  for (int i = 0; i < num_tenants; ++i) {
    by_tenant[static_cast<size_t>(i)] =
        &pools[static_cast<size_t>(tenant_pool[static_cast<size_t>(i)])];
  }

  const FleetConstraints& cons = config_.constraints;
  const bool budget_active = cons.budget_cents_per_hour > 0.0;
  const bool capacity_active = !cons.capacity_gb.empty();

  // --- The zero-price selection: every tenant's solo optimum (pool[0]).
  // Its Σ TOC lower-bounds every selection, so if it is feasible it is THE
  // fleet optimum over the pools.
  std::vector<int> solo(static_cast<size_t>(num_tenants), 0);
  const FleetTotals solo_totals = ComputeTotals(solo, by_tenant, m);

  // --- The fleet's cost floor: every tenant on its cheapest candidate
  // (tenant-index order, like every total). Below Σ of these no selection
  // exists, so callers can sweep budgets from min_cost to the solo cost.
  std::vector<double> cheapest_cost(static_cast<size_t>(num_tenants), 0.0);
  for (int i = 0; i < num_tenants; ++i) {
    const TenantPool& pool = *by_tenant[static_cast<size_t>(i)];
    double cheapest = pool.cost[0];
    for (int c = 1; c < pool.size(); ++c) {
      cheapest = std::min(cheapest, pool.cost[static_cast<size_t>(c)]);
    }
    cheapest_cost[static_cast<size_t>(i)] = cheapest;
    plan.min_cost_cents_per_hour += cheapest;
  }

  // --- Independent fair-share baseline: tenant i provisions alone on a
  // share of the budget and capacity proportional to its minimum spend
  // (its cheapest candidate's cost) — the share a per-tenant operator
  // would have to sell it. Minimum-spend weights make the baseline
  // feasible whenever any selection is (share_i >= cheapest_i once the
  // budget covers Σ cheapest), so never-lose is a live comparison across
  // the whole feasible budget range, not a vacuous one.
  std::vector<double> weight(static_cast<size_t>(num_tenants), 0.0);
  {
    double total_cheapest = 0.0;
    for (int i = 0; i < num_tenants; ++i) {
      total_cheapest += cheapest_cost[static_cast<size_t>(i)];
    }
    for (int i = 0; i < num_tenants; ++i) {
      weight[static_cast<size_t>(i)] =
          total_cheapest > 0.0
              ? cheapest_cost[static_cast<size_t>(i)] / total_cheapest
              : 1.0 / num_tenants;
    }
  }
  std::vector<int> baseline(static_cast<size_t>(num_tenants), -1);
  plan.independent_feasible = true;
  for (int i = 0; i < num_tenants; ++i) {
    const TenantPool& pool = *by_tenant[static_cast<size_t>(i)];
    const double w = weight[static_cast<size_t>(i)];
    const double budget_share =
        budget_active ? cons.budget_cents_per_hour * w * (1.0 + kFleetFeasTol)
                      : std::numeric_limits<double>::infinity();
    int pick = -1;
    for (int c = 0; c < pool.size(); ++c) {
      if (pool.cost[static_cast<size_t>(c)] > budget_share) continue;
      bool fits = true;
      for (int j = 0; capacity_active && j < m; ++j) {
        const double cap_share =
            cons.capacity_gb[static_cast<size_t>(j)] * w *
            (1.0 + kFleetFeasTol);
        if (pool.space[static_cast<size_t>(c) * static_cast<size_t>(m) +
                       static_cast<size_t>(j)] > cap_share) {
          fits = false;
          break;
        }
      }
      if (fits) {
        pick = c;  // pools are toc-sorted: the first fit is the best fit
        break;
      }
    }
    if (pick < 0) {
      // No candidate fits this tenant's share: the baseline itself is
      // infeasible. Report its totals over each such tenant's cheapest
      // candidate (deterministic: lowest cost, ties by toc order = index).
      plan.independent_feasible = false;
      int cheapest = 0;
      for (int c = 1; c < pool.size(); ++c) {
        if (pool.cost[static_cast<size_t>(c)] <
            pool.cost[static_cast<size_t>(cheapest)]) {
          cheapest = c;
        }
      }
      pick = cheapest;
    }
    baseline[static_cast<size_t>(i)] = pick;
  }
  const FleetTotals baseline_totals = ComputeTotals(baseline, by_tenant, m);
  plan.independent_toc_cents_per_task = baseline_totals.toc;
  plan.independent_cost_cents_per_hour = baseline_totals.cost;

  // --- Decide the fleet selection.
  std::vector<int> choice;
  FleetTotals totals;
  bool feasible = false;

  if (FleetFeasible(solo_totals, cons)) {
    // Unconstrained (or slack) fleet: the solo optima win outright, and
    // with no coupling this reproduces dot::Solve per tenant bit for bit.
    choice = solo;
    totals = solo_totals;
    feasible = true;
  } else {
    // --- Lagrangian price decomposition. Prices are normalized so that
    // one unit of relative over-subscription moves the objective by about
    // one solo Σ TOC; the harmonic step keeps updates deterministic.
    double lambda = 0.0;
    std::vector<double> mu(static_cast<size_t>(m), 0.0);
    const double lambda_unit =
        solo_totals.toc / std::max(solo_totals.cost, kEps);
    std::vector<double> mu_unit(static_cast<size_t>(m), 0.0);
    for (int j = 0; j < m; ++j) {
      mu_unit[static_cast<size_t>(j)] =
          solo_totals.toc /
          std::max(solo_totals.used[static_cast<size_t>(j)], kEps);
    }
    std::vector<int> sel(static_cast<size_t>(num_tenants), 0);
    std::vector<int> best_feasible;
    double best_feasible_toc = 0.0;
    for (int r = 1; r <= config_.price_iterations; ++r) {
      threads.ParallelForChunked(0, num_tenants, 256, [&](int64_t i) {
        const TenantPool& pool = *by_tenant[static_cast<size_t>(i)];
        int arg = 0;
        double best = std::numeric_limits<double>::infinity();
        for (int c = 0; c < pool.size(); ++c) {
          double value = pool.toc[static_cast<size_t>(c)];
          if (budget_active) {
            value += lambda * pool.cost[static_cast<size_t>(c)];
          }
          for (int j = 0; capacity_active && j < m; ++j) {
            value += mu[static_cast<size_t>(j)] *
                     pool.space[static_cast<size_t>(c) *
                                    static_cast<size_t>(m) +
                                static_cast<size_t>(j)];
          }
          if (value < best) {  // strict: ties keep the lower index
            best = value;
            arg = c;
          }
        }
        sel[static_cast<size_t>(i)] = arg;
      });
      const FleetTotals t = ComputeTotals(sel, by_tenant, m);
      if (FleetFeasible(t, cons) &&
          (best_feasible.empty() || t.toc < best_feasible_toc)) {
        best_feasible = sel;
        best_feasible_toc = t.toc;
      }
      const double step = 1.0 / r;
      if (budget_active) {
        const double g = (t.cost - cons.budget_cents_per_hour) /
                         std::max(cons.budget_cents_per_hour, kEps);
        lambda = std::max(0.0, lambda + step * lambda_unit * g);
      }
      for (int j = 0; capacity_active && j < m; ++j) {
        const double cap = cons.capacity_gb[static_cast<size_t>(j)];
        const double g =
            (t.used[static_cast<size_t>(j)] - cap) / std::max(cap, kEps);
        mu[static_cast<size_t>(j)] = std::max(
            0.0, mu[static_cast<size_t>(j)] +
                     step * mu_unit[static_cast<size_t>(j)] * g);
      }
      plan.price_iterations_run = r;
    }
    plan.budget_price = lambda;
    plan.capacity_price = mu;

    // --- Repair the final relaxation selection, then pick the best of
    // {repaired, best price-feasible, independent baseline} — fixed
    // precedence on exact ties, so the choice is deterministic and the
    // never-lose guarantee is structural.
    std::vector<int> repaired = sel;
    FleetTotals repaired_totals = ComputeTotals(repaired, by_tenant, m);
    const bool repaired_ok =
        ExchangeRepair(by_tenant, cons, m, &repaired, &repaired_totals,
                       &plan.exchange_moves);
    if (repaired_ok) {
      choice = repaired;
      totals = repaired_totals;
      feasible = true;
    }
    if (!best_feasible.empty()) {
      const FleetTotals t = ComputeTotals(best_feasible, by_tenant, m);
      if (!feasible || t.toc < totals.toc) {
        choice = best_feasible;
        totals = t;
        feasible = true;
      }
    }
    if (plan.independent_feasible &&
        FleetFeasible(baseline_totals, cons) &&
        (!feasible || baseline_totals.toc < totals.toc)) {
      choice = baseline;
      totals = baseline_totals;
      feasible = true;
    }
  }

  if (!feasible) {
    plan.status = Status::Infeasible(
        "no candidate selection satisfies the fleet budget and capacity");
    plan.plan_ms = NowMs() - start_ms;
    return plan;
  }

  // --- Reclaim slack: greedy TOC improvement, feasibility-preserving.
  ImprovementPass(by_tenant, cons, m, &choice, &totals,
                  &plan.improve_moves);

  plan.fell_back_to_baseline = plan.independent_feasible &&
                               choice == baseline;
  plan.tenants.resize(static_cast<size_t>(num_tenants));
  for (int i = 0; i < num_tenants; ++i) {
    const TenantPool& pool = *by_tenant[static_cast<size_t>(i)];
    const size_t c = static_cast<size_t>(choice[static_cast<size_t>(i)]);
    FleetTenantChoice& out = plan.tenants[static_cast<size_t>(i)];
    out.placement = pool.placements[c];
    out.toc_cents_per_task = pool.toc[c];
    out.cost_cents_per_hour = pool.cost[c];
    out.pool_id = tenant_pool[static_cast<size_t>(i)];
    out.candidate = static_cast<int>(c);
  }
  plan.total_toc_cents_per_task = totals.toc;
  plan.total_cost_cents_per_hour = totals.cost;
  plan.used_gb = totals.used;
  plan.plan_ms = NowMs() - start_ms;
  return plan;
}

}  // namespace dot
