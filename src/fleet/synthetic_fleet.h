#ifndef DOTPROV_FLEET_SYNTHETIC_FLEET_H_
#define DOTPROV_FLEET_SYNTHETIC_FLEET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/schema.h"
#include "fleet/fleet_planner.h"
#include "storage/storage_class.h"
#include "workload/htap_workload.h"
#include "workload/workload.h"

namespace dot {

/// A generated multi-tenant fleet with everything the tenants' DotProblems
/// point into owned alongside them (FleetTenant keeps raw pointers). Safe
/// to move — the pointed-to objects live behind unique_ptrs — but the
/// container must outlive any FleetPlanner run over `tenants`.
struct SyntheticFleet {
  std::unique_ptr<BoxConfig> box;  ///< the one shared box (Box 2)
  std::vector<std::unique_ptr<Schema>> schemas;
  std::vector<std::unique_ptr<WorkloadModel>> models;  ///< OLTP + DSS owners
  std::vector<HtapBundle> htap;                        ///< HTAP owners
  std::vector<FleetTenant> tenants;

  /// Distinct tenant classes generated (== the distinct pool count a
  /// share_pools fleet run should report, independent of tenant count).
  int num_classes = 0;
};

/// Builds `num_tenants` synthetic tenants drawn from a fixed roster of
/// tenant classes — three mini-OLTP mixes, three seeded DSS instances, and
/// two CH-benCH HTAP subsets — all over one shared Box 2 catalog.
///
/// Class assignment and the DSS instances are deterministic in `seed`:
/// the same (num_tenants, seed) produces bit-identical problems, and
/// tenants of the same class share one schema/workload instance, so a
/// share_pools fleet run builds exactly `num_classes` pools however large
/// the fleet is (the O(distinct schemas) memory claim, measured by
/// FleetPlan::pool_builds in bench/bench_fleet.cpp).
///
/// Every class keeps its layout space at or under 3^6 so the exact
/// kEnumerate pool mode applies, and uses a lenient-enough relative SLA
/// that several feasible candidates exist per tenant — the budget/capacity
/// coupling, not per-tenant feasibility, is what the fleet solves.
SyntheticFleet MakeSyntheticFleet(int num_tenants, uint64_t seed);

}  // namespace dot

#endif  // DOTPROV_FLEET_SYNTHETIC_FLEET_H_
