#include "fleet/synthetic_fleet.h"

#include <string>
#include <utility>

#include "catalog/tpcc_schema.h"
#include "common/check.h"
#include "common/rng.h"
#include "dot/problem.h"
#include "io/io_types.h"
#include "query/query_spec.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/oltp_workload.h"
#include "workload/tpch_queries.h"

namespace dot {

namespace {

/// One tenant class: the schema/workload pair every tenant of the class
/// points at, plus the class's SLA.
struct TenantClass {
  const Schema* schema = nullptr;
  const WorkloadModel* workload = nullptr;
  double relative_sla = 0.3;
  std::string label;
};

/// A two-table banking-style mix: lookups and balance updates over
/// accounts, append-mostly history. 4 objects => 81 layouts on Box 2.
void AddMiniOltpClass(SyntheticFleet* fleet, std::vector<TenantClass>* out,
                      const std::string& label, double account_rows,
                      double concurrency, double relative_sla) {
  auto schema = std::make_unique<Schema>();
  const int accounts = schema->AddTable("accounts", account_rows, 120.0);
  const int pk_accounts = schema->AddIndex("pk_accounts", accounts, 8.0);
  const int history = schema->AddTable("history", account_rows * 0.5, 80.0);
  schema->AddIndex("pk_history", history, 8.0);

  const size_t n = static_cast<size_t>(schema->NumObjects());
  TxnType update;
  update.name = "UpdateBalance";
  update.weight = 0.6;
  update.io.assign(n, IoVector{});
  update.io[static_cast<size_t>(pk_accounts)][IoType::kRandRead] = 2.0;
  update.io[static_cast<size_t>(accounts)][IoType::kRandRead] = 1.0;
  update.io[static_cast<size_t>(accounts)][IoType::kRandWrite] = 1.0;
  update.io[static_cast<size_t>(history)][IoType::kSeqWrite] = 1.0;
  update.cpu_ms = 0.15;
  update.overhead_ms = 0.8;

  TxnType lookup;
  lookup.name = "Lookup";
  lookup.weight = 0.4;
  lookup.io.assign(n, IoVector{});
  lookup.io[static_cast<size_t>(pk_accounts)][IoType::kRandRead] = 2.0;
  lookup.io[static_cast<size_t>(accounts)][IoType::kRandRead] = 1.0;
  lookup.cpu_ms = 0.05;
  lookup.overhead_ms = 0.5;

  auto model = std::make_unique<OltpWorkloadModel>(
      "mini-oltp-" + label, schema.get(), fleet->box.get(),
      std::vector<TxnType>{update, lookup}, concurrency,
      3600.0 * 1000.0);

  TenantClass cls;
  cls.schema = schema.get();
  cls.workload = model.get();
  cls.relative_sla = relative_sla;
  cls.label = "oltp-" + label;
  out->push_back(cls);
  fleet->schemas.push_back(std::move(schema));
  fleet->models.push_back(std::move(model));
}

/// A seeded DSS instance in the RandomInstance style: `num_tables` tables
/// with primary-key indices, one sargable probe and one scan template per
/// table. 2*num_tables objects, so num_tables <= 3 stays enumerable.
void AddDssClass(SyntheticFleet* fleet, std::vector<TenantClass>* out,
                 const std::string& label, int num_tables, uint64_t seed,
                 double relative_sla) {
  Rng rng(seed);
  auto schema = std::make_unique<Schema>();
  std::vector<QuerySpec> templates;
  for (int t = 0; t < num_tables; ++t) {
    const std::string table = "t" + std::to_string(t);
    const double rows = 1e5 * (1.0 + static_cast<double>(rng.NextBounded(20)));
    const double row_bytes =
        60.0 + 20.0 * static_cast<double>(rng.NextBounded(6));
    const int table_id = schema->AddTable(table, rows, row_bytes);
    schema->AddIndex(table + "_pk", table_id, 8.0);

    QuerySpec probe;
    probe.name = table + "_probe";
    RelationAccess pa;
    pa.table = table;
    pa.selectivity = rng.NextUniform(0.0005, 0.01);
    pa.index_sargable = true;
    probe.relations.push_back(pa);
    templates.push_back(probe);

    QuerySpec scan;
    scan.name = table + "_scan";
    RelationAccess sa;
    sa.table = table;
    sa.selectivity = rng.NextUniform(0.2, 1.0);
    sa.index_sargable = false;
    scan.relations.push_back(sa);
    scan.has_sort = rng.NextBounded(2) == 1;
    templates.push_back(scan);
  }
  const int num_templates = static_cast<int>(templates.size());
  auto model = std::make_unique<DssWorkloadModel>(
      "dss-" + label, schema.get(), fleet->box.get(), std::move(templates),
      RepeatSequence(num_templates, 2), PlannerConfig{});

  TenantClass cls;
  cls.schema = schema.get();
  cls.workload = model.get();
  cls.relative_sla = relative_sla;
  cls.label = "dss-" + label;
  out->push_back(cls);
  fleet->schemas.push_back(std::move(schema));
  fleet->models.push_back(std::move(model));
}

/// A CH-benCH HTAP tenant over a 4-object TPC-C subset (stock and
/// order_line with their primary keys): 81 layouts. Distinct warehouse
/// counts keep the two HTAP classes' schema fingerprints distinct, which
/// the pool-sharing contract requires (same workload name over equal
/// fingerprints must mean identical workloads).
void AddHtapClass(SyntheticFleet* fleet, std::vector<TenantClass>* out,
                  const std::string& label, int warehouses,
                  double analytics_streams, double relative_sla) {
  auto schema = std::make_unique<Schema>(MakeTpccSchema(warehouses).Subset(
      {"stock", "pk_stock", "order_line", "pk_order_line"}));
  HtapConfig config;
  config.analytics_streams = analytics_streams;
  HtapBundle bundle =
      MakeChbenchHtapWorkload(schema.get(), fleet->box.get(), config);

  TenantClass cls;
  cls.schema = schema.get();
  cls.workload = bundle.htap.get();
  cls.relative_sla = relative_sla;
  cls.label = "htap-" + label;
  out->push_back(cls);
  fleet->schemas.push_back(std::move(schema));
  fleet->htap.push_back(std::move(bundle));
}

}  // namespace

SyntheticFleet MakeSyntheticFleet(int num_tenants, uint64_t seed) {
  DOT_CHECK(num_tenants >= 1);
  SyntheticFleet fleet;
  fleet.box = std::make_unique<BoxConfig>(MakeBox2());

  // The class roster. Sizes, concurrencies and SLAs are fixed per class
  // (only the DSS shapes draw from the seed), so two fleets with the same
  // seed are identical and classes differ pairwise in schema fingerprint.
  std::vector<TenantClass> classes;
  AddMiniOltpClass(&fleet, &classes, "s", 2e6, 80.0, 0.25);
  AddMiniOltpClass(&fleet, &classes, "m", 8e6, 160.0, 0.25);
  AddMiniOltpClass(&fleet, &classes, "l", 2e7, 240.0, 0.2);
  AddDssClass(&fleet, &classes, "a", 2, seed * 2 + 1, 0.4);
  AddDssClass(&fleet, &classes, "b", 3, seed * 3 + 2, 0.35);
  AddDssClass(&fleet, &classes, "c", 3, seed * 5 + 3, 0.3);
  AddHtapClass(&fleet, &classes, "a", 100, 1.0, 0.2);
  AddHtapClass(&fleet, &classes, "b", 200, 2.0, 0.15);
  fleet.num_classes = static_cast<int>(classes.size());

  // Deterministic class assignment: one Rng drawn once per tenant.
  Rng assign(seed);
  fleet.tenants.reserve(static_cast<size_t>(num_tenants));
  for (int i = 0; i < num_tenants; ++i) {
    const TenantClass& cls = classes[static_cast<size_t>(
        assign.NextBounded(static_cast<uint64_t>(classes.size())))];
    FleetTenant tenant;
    tenant.name = "t" + std::to_string(i) + "-" + cls.label;
    tenant.problem.schema = cls.schema;
    tenant.problem.box = fleet.box.get();
    tenant.problem.workload = cls.workload;
    tenant.problem.relative_sla = cls.relative_sla;
    fleet.tenants.push_back(std::move(tenant));
  }
  return fleet;
}

}  // namespace dot
