#include "exec/schedule_replay.h"

#include "common/check.h"
#include "dot/layout.h"

namespace dot {

ScheduleReplayResult ReplaySchedule(const EpochSchedule& schedule,
                                    const ReprovisionPlan& plan,
                                    const Schema& schema,
                                    const BoxConfig& box,
                                    const ReplayConfig& config) {
  ScheduleReplayResult result;
  result.status = ValidateSchedule(schedule);
  if (!result.status.ok()) return result;
  if (!plan.status.ok()) {
    result.status = Status::InvalidArgument(
        "cannot replay a plan whose status is not OK: " +
        plan.status.ToString());
    return result;
  }
  if (static_cast<int>(plan.steps.size()) != schedule.NumEpochs()) {
    result.status = Status::InvalidArgument(
        "plan step count does not match the schedule's epoch count");
    return result;
  }

  const int num_epochs = schedule.NumEpochs();
  result.epochs.resize(static_cast<size_t>(num_epochs));
  for (int e = 0; e < num_epochs; ++e) {
    const Epoch& epoch = schedule.epochs[static_cast<size_t>(e)];
    const EpochPlanStep& step = plan.steps[static_cast<size_t>(e)];
    EpochReplayRun& run = result.epochs[static_cast<size_t>(e)];

    ExecutorConfig exec_config = config.exec;
    exec_config.seed = config.exec.seed + static_cast<uint64_t>(e);
    Executor executor(epoch.workload, exec_config);
    run.measured = executor.Run(step.placement);
    DOT_CHECK(run.measured.tasks_per_hour > 0)
        << "replayed epoch produced zero throughput";

    const double cost_cents_per_hour =
        Layout(&schema, &box, step.placement)
            .CostCentsPerHour(config.cost_model);
    run.toc_cents_per_task = cost_cents_per_hour / run.measured.tasks_per_hour;
    run.epoch_objective = run.toc_cents_per_task * epoch.duration_hours;

    // Same accounting order as ReprovisionPlan; the migration bill is a
    // deterministic function of the plan's layout sequence, so the plan's
    // own per-step cents are reused verbatim.
    result.total_objective =
        (result.total_objective +
         plan.resolved_migration_weight * step.migration_cents) +
        run.epoch_objective;
  }
  return result;
}

}  // namespace dot
