#ifndef DOTPROV_EXEC_SCHEDULE_REPLAY_H_
#define DOTPROV_EXEC_SCHEDULE_REPLAY_H_

#include <vector>

#include "catalog/schema.h"
#include "dot/reprovision.h"
#include "exec/executor.h"
#include "storage/migration.h"
#include "storage/pricing.h"
#include "storage/storage_class.h"
#include "workload/epoch_schedule.h"

namespace dot {

/// Knobs of one schedule replay.
struct ReplayConfig {
  /// Per-epoch test-run knobs. `exec.seed` is the base seed; epoch e runs
  /// at seed + e so epochs draw independent noise streams while the whole
  /// replay stays reproducible.
  ExecutorConfig exec;

  /// Must match the plan's cost model for the estimates to be comparable.
  CostModelSpec cost_model;
};

/// One epoch of a replay: what the simulated test run measured.
struct EpochReplayRun {
  PerfEstimate measured;
  /// C(L_e) / measured tasks-per-hour — the measured counterpart of the
  /// plan step's estimated TOC.
  double toc_cents_per_task = 0.0;
  double epoch_objective = 0.0;  ///< measured TOC · epoch duration
};

/// A replayed schedule: measured per-epoch runs plus the plan objective
/// recomputed from measurements, under the exact accounting contract
/// ReprovisionPlan documents (same order, same migration terms — the data
/// movement is deterministic, so the plan's own migration bill is reused).
struct ScheduleReplayResult {
  Status status = Status::OK();
  std::vector<EpochReplayRun> epochs;
  double total_objective = 0.0;
};

/// Replays `plan` epoch by epoch through the simulated Executor — the
/// multi-epoch analogue of the validation phase (§3, Figure 2): each
/// epoch's workload runs once on its planned layout (with the configured
/// noise and io_scale disturbances) and the measured throughput re-prices
/// the epoch. With zero noise and no io_scale the replayed objective
/// equals the plan's estimate bit for bit (pinned by exec_replay_test);
/// the gap between the two under disturbances is exactly what the
/// validation/refinement loop exists to catch.
ScheduleReplayResult ReplaySchedule(const EpochSchedule& schedule,
                                    const ReprovisionPlan& plan,
                                    const Schema& schema,
                                    const BoxConfig& box,
                                    const ReplayConfig& config);

}  // namespace dot

#endif  // DOTPROV_EXEC_SCHEDULE_REPLAY_H_
