#include "exec/executor.h"

#include <cmath>

#include "common/check.h"

namespace dot {

Executor::Executor(const WorkloadModel* model, ExecutorConfig config)
    : model_(model), config_(std::move(config)), rng_(config_.seed) {
  DOT_CHECK(model_ != nullptr);
  DOT_CHECK(config_.noise_cv >= 0.0);
  for (double s : config_.io_scale) DOT_CHECK(s >= 0.0);
}

PerfEstimate Executor::Run(const std::vector<int>& placement) {
  PerfEstimate measured =
      model_->EstimateWithIoScale(placement, config_.io_scale);

  if (config_.noise_cv > 0.0) {
    // Lognormal jitter with unit mean, applied per unit of work.
    const double sigma2 = std::log(1.0 + config_.noise_cv * config_.noise_cv);
    const double mu = -0.5 * sigma2;
    const double sigma = std::sqrt(sigma2);
    for (double& t : measured.unit_times_ms) {
      t *= std::exp(mu + sigma * rng_.NextGaussian());
    }
    if (model_->sla_kind() == SlaKind::kPerQueryResponseTime) {
      // The model owns the meaning of its unit-time entries (run-sequence
      // queries for DSS, the two folded per-side times for HTAP): let it
      // recompute the derived scalars from the jittered vector.
      model_->RederiveFromUnitTimes(&measured);
    } else {
      // Throughput workloads: jitter the rate directly.
      const double jitter = std::exp(mu + sigma * rng_.NextGaussian());
      measured.tpmc *= jitter;
      measured.tasks_per_hour *= jitter;
    }
  }
  return measured;
}

}  // namespace dot
