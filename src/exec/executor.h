#ifndef DOTPROV_EXEC_EXECUTOR_H_
#define DOTPROV_EXEC_EXECUTOR_H_

#include <vector>

#include "common/rng.h"
#include "workload/workload.h"

namespace dot {

/// Knobs for a simulated test run.
struct ExecutorConfig {
  /// Run-to-run multiplicative jitter (lognormal, unit mean) applied to
  /// each unit time. 0 = perfectly repeatable runs.
  double noise_cv = 0.02;

  /// Per-object multiplicative error between the optimizer's predicted I/O
  /// counts and what the workload actually issues (e.g. a stale statistic
  /// making the optimizer under-count an object's traffic by 3x would be
  /// io_scale[o] = 3). Empty = the optimizer's estimates are exact. This is
  /// the disturbance the validation/refinement loop (Figure 2) corrects.
  std::vector<double> io_scale;

  uint64_t seed = 7;
};

/// Simulated execution of a workload on a concrete layout — the "test run"
/// of the validation phase (§3, Figure 2) and of test-run-based profiling
/// (§3.4 option (b), §4.5.1).
///
/// The executor is the ground truth of this reproduction: it prices the
/// workload's *actual* I/O (optionally diverging from the optimizer's
/// estimates via io_scale) and adds measurement noise, returning both the
/// measured times and the real runtime I/O statistics that the refinement
/// phase feeds back into optimization.
class Executor {
 public:
  /// `model` must outlive the executor.
  Executor(const WorkloadModel* model, ExecutorConfig config);

  /// Runs the workload once on `placement` and returns the measurement.
  PerfEstimate Run(const std::vector<int>& placement);

 private:
  const WorkloadModel* model_;
  ExecutorConfig config_;
  Rng rng_;
};

}  // namespace dot

#endif  // DOTPROV_EXEC_EXECUTOR_H_
