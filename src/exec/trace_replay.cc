#include "exec/trace_replay.h"

#include "common/check.h"
#include "dot/layout.h"

namespace dot {

WorkloadTrace RecordTraceWithExecutor(const WorkloadTraceSpec& spec,
                                      const std::vector<int>& placement,
                                      double exec_noise_cv) {
  return RecordTrace(spec, [&](const TraceWindow& window, int w) {
    ExecutorConfig cfg;
    cfg.noise_cv = exec_noise_cv;
    cfg.io_scale = window.io_scale;
    cfg.seed = spec.seed + static_cast<uint64_t>(w);
    Executor executor(window.workload, cfg);
    return executor.Run(placement);
  });
}

TrackReplayResult ReplayLayoutTrack(
    const WorkloadTraceSpec& spec,
    const std::vector<std::vector<int>>& layout_by_window,
    const Schema& schema, const BoxConfig& box,
    const TrackReplayConfig& config) {
  TrackReplayResult result;
  result.status = ValidateTraceSpec(spec);
  if (!result.status.ok()) return result;
  if (layout_by_window.size() != spec.windows.size()) {
    result.status = Status::InvalidArgument(
        "layout track length does not match the trace's window count");
    return result;
  }

  result.windows.resize(spec.windows.size());
  for (size_t w = 0; w < spec.windows.size(); ++w) {
    const TraceWindow& window = spec.windows[w];
    const std::vector<int>& layout = layout_by_window[w];
    TrackWindowRun& run = result.windows[w];

    ExecutorConfig exec_config;
    exec_config.noise_cv = config.exec_noise_cv;
    exec_config.io_scale = window.io_scale;
    exec_config.seed = config.seed + static_cast<uint64_t>(w);
    Executor executor(window.workload, exec_config);
    run.measured = executor.Run(layout);
    DOT_CHECK(run.measured.tasks_per_hour > 0)
        << "replayed window produced zero throughput";

    const double cost_cents_per_hour =
        Layout(&schema, &box, layout).CostCentsPerHour(config.cost_model);
    run.toc_cents_per_task = cost_cents_per_hour / run.measured.tasks_per_hour;
    run.window_objective = run.toc_cents_per_task * window.duration_hours;

    if (w > 0 && layout != layout_by_window[w - 1]) {
      const MigrationEstimate bill = EstimateMigration(
          config.migration, box, schema, layout_by_window[w - 1], layout);
      run.migration_cents = bill.cents;
      result.total_migration_cents += bill.cents;
      ++result.num_migrations;
    }

    // Same accounting order as ReprovisionPlan / ReplaySchedule.
    result.total_objective =
        (result.total_objective +
         config.migration_weight * run.migration_cents) +
        run.window_objective;
  }
  return result;
}

}  // namespace dot
