#ifndef DOTPROV_EXEC_TRACE_REPLAY_H_
#define DOTPROV_EXEC_TRACE_REPLAY_H_

#include <vector>

#include "catalog/schema.h"
#include "exec/executor.h"
#include "storage/migration.h"
#include "storage/pricing.h"
#include "storage/storage_class.h"
#include "workload/trace.h"

namespace dot {

/// Records a trace by running each window once through the simulated
/// Executor on `placement` (the monitoring layout): window w runs at seed
/// spec.seed + w with the window's io_scale disturbance, then RecordTrace
/// applies the spec's observation noise to the counts. This is the §3.4(b)
/// test-run profiler turned into a continuous recorder — the exec layer
/// supplying the workload layer's MeasureWindowFn.
///
/// `exec_noise_cv` jitters the measured times/rates only; the Executor
/// never jitters I/O counts, so count noise comes solely from
/// spec.count_noise_cv.
WorkloadTrace RecordTraceWithExecutor(const WorkloadTraceSpec& spec,
                                      const std::vector<int>& placement,
                                      double exec_noise_cv = 0.0);

/// Knobs of one layout-track replay.
struct TrackReplayConfig {
  /// Must match the pricing the layouts were chosen under.
  CostModelSpec cost_model;

  /// Migration pricing charged whenever consecutive windows run different
  /// layouts, folded in at `migration_weight` (hours/task, same role as
  /// the epoch planner's weight).
  MigrationCostModel migration;
  double migration_weight = 0.0;

  /// Timing jitter of the replay runs (counts are never jittered).
  double exec_noise_cv = 0.0;

  /// Window w replays at seed + w — the same stream for every strategy
  /// replayed over the same trace, so realized costs differ only through
  /// the layouts, never through the noise draws.
  uint64_t seed = 7;
};

/// One window of a replayed layout track.
struct TrackWindowRun {
  PerfEstimate measured;
  double toc_cents_per_task = 0.0;
  double window_objective = 0.0;   ///< measured TOC · window duration
  double migration_cents = 0.0;    ///< bill paid entering this window
};

/// The realized cost of running one strategy's layout sequence over the
/// trace's ground truth.
struct TrackReplayResult {
  Status status = Status::OK();
  std::vector<TrackWindowRun> windows;
  /// Σ over windows, left to right, under the exact accounting contract
  /// ReprovisionPlan documents: total = (total + weight · migration_cents)
  /// + toc · duration. Comparable across strategies bit for bit.
  double total_objective = 0.0;
  double total_migration_cents = 0.0;
  int num_migrations = 0;
};

/// Replays `layout_by_window` (one layout per trace window — e.g. an
/// AdvisorRun's track, or a constant vector for the frozen incumbent)
/// against the trace spec's ground truth: window w's workload runs once on
/// layout w with the window's io_scale, and the measured throughput prices
/// the window. Migration between consecutive differing layouts is billed
/// via EstimateMigration. This is the advisor's scoreboard — every
/// strategy is priced by the same function over the same draws.
TrackReplayResult ReplayLayoutTrack(
    const WorkloadTraceSpec& spec,
    const std::vector<std::vector<int>>& layout_by_window,
    const Schema& schema, const BoxConfig& box,
    const TrackReplayConfig& config);

}  // namespace dot

#endif  // DOTPROV_EXEC_TRACE_REPLAY_H_
