#include "workload/trace.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace dot {

double WorkloadTraceSpec::TotalHours() const {
  double hours = 0.0;
  for (const TraceWindow& w : windows) hours += w.duration_hours;
  return hours;
}

double WorkloadTrace::TotalHours() const {
  double hours = 0.0;
  for (const TraceEvent& e : events) hours += e.duration_hours;
  return hours;
}

Status ValidateTraceSpec(const WorkloadTraceSpec& spec) {
  if (spec.windows.empty()) {
    return Status::InvalidArgument("trace spec has no windows");
  }
  if (!(spec.count_noise_cv >= 0.0)) {
    return Status::InvalidArgument("count_noise_cv must be >= 0");
  }
  for (size_t w = 0; w < spec.windows.size(); ++w) {
    const TraceWindow& win = spec.windows[w];
    if (win.workload == nullptr) {
      return Status::InvalidArgument("window " + std::to_string(w) +
                                     " has no workload");
    }
    if (!(win.duration_hours > 0.0) || !std::isfinite(win.duration_hours)) {
      return Status::InvalidArgument("window " + std::to_string(w) +
                                     " has non-positive duration");
    }
    for (double s : win.io_scale) {
      if (!(s >= 0.0) || !std::isfinite(s)) {
        return Status::InvalidArgument("window " + std::to_string(w) +
                                       " has negative or non-finite "
                                       "io_scale");
      }
    }
  }
  return Status::OK();
}

WorkloadTrace RecordTrace(const WorkloadTraceSpec& spec,
                          const MeasureWindowFn& measure) {
  DOT_CHECK(ValidateTraceSpec(spec).ok());
  DOT_CHECK(measure != nullptr);

  // One noise stream for the whole trace, consumed in window order then
  // object order then request-class order: the recording is a pure function
  // of (spec, seed) regardless of how the measurement callback is built.
  Rng rng(spec.seed);
  const double sigma2 =
      std::log(1.0 + spec.count_noise_cv * spec.count_noise_cv);
  const double mu = -0.5 * sigma2;
  const double sigma = std::sqrt(sigma2);

  WorkloadTrace trace;
  trace.events.reserve(spec.windows.size());
  double clock_hours = 0.0;
  for (size_t w = 0; w < spec.windows.size(); ++w) {
    const TraceWindow& win = spec.windows[w];
    PerfEstimate measured = measure(win, static_cast<int>(w));

    TraceEvent event;
    event.window = static_cast<int>(w);
    event.start_hours = clock_hours;
    event.duration_hours = win.duration_hours;
    event.label = win.label;
    event.measured_tasks_per_hour = measured.tasks_per_hour;
    event.io_by_object = std::move(measured.io_by_object);
    if (spec.count_noise_cv > 0.0) {
      for (IoVector& io : event.io_by_object) {
        for (int r = 0; r < kNumIoTypes; ++r) {
          io[static_cast<IoType>(r)] *=
              std::exp(mu + sigma * rng.NextGaussian());
        }
      }
    }
    trace.events.push_back(std::move(event));
    clock_hours += win.duration_hours;
  }
  return trace;
}

}  // namespace dot
