#ifndef DOTPROV_WORKLOAD_TRACE_H_
#define DOTPROV_WORKLOAD_TRACE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/object_io.h"
#include "workload/workload.h"

namespace dot {

/// Ground truth for one window of a recorded workload trace: which
/// workload actually ran, at which per-object I/O intensity, for how long.
/// The advisor never sees this struct — it observes TraceEvents — but the
/// trace recorder and the realized-cost replay (exec/trace_replay.h) both
/// price windows from it, so "what really happened" has one definition.
struct TraceWindow {
  /// The workload that ran during this window; must outlive the spec.
  const WorkloadModel* workload = nullptr;

  /// Per-object multiplier on the model's I/O counts (the Executor's
  /// io_scale disturbance); empty = the model's estimates are exact. This
  /// is how a trace drifts: consecutive windows scale different objects.
  std::vector<double> io_scale;

  double duration_hours = 1.0;

  std::string label;  ///< report label, e.g. "night batch"
};

/// A replayable workload history: windows in virtual-time order. No wall
/// clock anywhere — recording and replay are bit-reproducible functions of
/// the spec and a seed.
struct WorkloadTraceSpec {
  std::vector<TraceWindow> windows;

  /// Multiplicative lognormal observation noise (unit mean) applied to
  /// each recorded per-(object, I/O-class) count — the monitoring stack's
  /// sampling error, distinct from the Executor's timing jitter. 0 =
  /// counts are observed exactly.
  double count_noise_cv = 0.0;

  /// Base seed of the observation-noise stream (and, for executor-backed
  /// recording, of the per-window measurement runs at seed + window).
  uint64_t seed = 7;

  double TotalHours() const;
};

/// OK iff the spec is non-empty and every window has a workload and a
/// positive, finite duration.
Status ValidateTraceSpec(const WorkloadTraceSpec& spec);

/// What the advisor observes about one window: the measured per-(object,
/// I/O-class) request counts of one profiled run of the window's workload
/// (the §3.4(b) test-run idiom applied continuously), plus the virtual
/// clock. Counts are what drift detection runs on — they are a property of
/// the workload, not of the layout it happened to run on, so an advisor
/// that migrates mid-trace keeps observing comparable numbers.
struct TraceEvent {
  int window = -1;
  double start_hours = 0.0;     ///< virtual time at window start
  double duration_hours = 0.0;  ///< how long this workload level held
  ObjectIoMap io_by_object;     ///< observed counts, one profiled run
  double measured_tasks_per_hour = 0.0;  ///< on the recording layout
  std::string label;
};

/// A recorded trace, ready to feed through advisor::RecordedTraceFeed.
struct WorkloadTrace {
  std::vector<TraceEvent> events;

  double TotalHours() const;
};

/// Produces one window's measurement: the profiling callback idiom
/// (workload/profiler.h) — the workload layer defines what a recording
/// is, the exec layer supplies the simulated test run.
using MeasureWindowFn =
    std::function<PerfEstimate(const TraceWindow& window, int window_index)>;

/// Records a trace by measuring every window through `measure`, stamping
/// virtual time cumulatively, and applying the spec's observation noise to
/// the counts (seeded; bit-reproducible). Aborts via DOT_CHECK on an
/// invalid spec — validate first if the spec is untrusted.
WorkloadTrace RecordTrace(const WorkloadTraceSpec& spec,
                          const MeasureWindowFn& measure);

}  // namespace dot

#endif  // DOTPROV_WORKLOAD_TRACE_H_
