#include "workload/profiler.h"

#include <cmath>

#include "common/check.h"

namespace dot {

WorkloadProfiles::WorkloadProfiles(int num_classes)
    : num_classes_(num_classes) {
  DOT_CHECK(num_classes_ >= 1);
  by_pair_.resize(static_cast<size_t>(num_classes_ * num_classes_));
  present_.assign(static_cast<size_t>(num_classes_ * num_classes_), false);
}

void WorkloadProfiles::Set(int table_cls, int index_cls, ObjectIoMap io) {
  DOT_CHECK(!single_) << "profiles already collapsed to a single baseline";
  DOT_CHECK(table_cls >= 0 && table_cls < num_classes_);
  DOT_CHECK(index_cls >= 0 && index_cls < num_classes_);
  const size_t key =
      static_cast<size_t>(table_cls * num_classes_ + index_cls);
  by_pair_[key] = std::move(io);
  present_[key] = true;
}

void WorkloadProfiles::SetSingle(ObjectIoMap io) {
  single_ = true;
  by_pair_.assign(1, std::move(io));
  present_.assign(1, true);
}

const ObjectIoMap& WorkloadProfiles::For(int table_cls, int index_cls) const {
  if (single_) return by_pair_[0];
  DOT_CHECK(table_cls >= 0 && table_cls < num_classes_);
  DOT_CHECK(index_cls >= 0 && index_cls < num_classes_);
  const size_t key =
      static_cast<size_t>(table_cls * num_classes_ + index_cls);
  DOT_CHECK(present_[key]) << "baseline (" << table_cls << "," << index_cls
                           << ") was not profiled";
  return by_pair_[key];
}

namespace {

bool ProfilesEqual(const ObjectIoMap& a, const ObjectIoMap& b, double tol) {
  if (a.size() != b.size()) return false;
  for (size_t o = 0; o < a.size(); ++o) {
    for (IoType t : kAllIoTypes) {
      const double x = a[o][t];
      const double y = b[o][t];
      const double scale = std::max({std::fabs(x), std::fabs(y), 1.0});
      if (std::fabs(x - y) > tol * scale) return false;
    }
  }
  return true;
}

}  // namespace

int WorkloadProfiles::CountDistinct(double rel_tolerance) const {
  if (single_) return 1;
  std::vector<const ObjectIoMap*> distinct;
  for (size_t k = 0; k < by_pair_.size(); ++k) {
    if (!present_[k]) continue;
    bool found = false;
    for (const ObjectIoMap* d : distinct) {
      if (ProfilesEqual(*d, by_pair_[k], rel_tolerance)) {
        found = true;
        break;
      }
    }
    if (!found) distinct.push_back(&by_pair_[k]);
  }
  return static_cast<int>(distinct.size());
}

Profiler::Profiler(const Schema* schema, const BoxConfig* box)
    : schema_(schema), box_(box) {
  DOT_CHECK(schema_ != nullptr && box_ != nullptr);
}

std::vector<int> Profiler::BaselineLayout(int table_cls,
                                          int index_cls) const {
  DOT_CHECK(table_cls >= 0 && table_cls < box_->NumClasses());
  DOT_CHECK(index_cls >= 0 && index_cls < box_->NumClasses());
  std::vector<int> placement(static_cast<size_t>(schema_->NumObjects()));
  for (const DbObject& o : schema_->objects()) {
    placement[static_cast<size_t>(o.id)] =
        o.IsIndex() ? index_cls : table_cls;
  }
  return placement;
}

WorkloadProfiles Profiler::ProfileWorkload(const WorkloadModel& model,
                                           const EstimateFn& estimate) const {
  const int m = box_->NumClasses();
  WorkloadProfiles profiles(m);
  if (model.PlansArePlacementInvariant()) {
    // §4.5.1: a single test layout suffices; the paper uses All H-SSD.
    const int cls = box_->MostExpensiveClass();
    PerfEstimate est = estimate(BaselineLayout(cls, cls));
    profiles.SetSingle(std::move(est.io_by_object));
    return profiles;
  }
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      PerfEstimate est = estimate(BaselineLayout(i, j));
      profiles.Set(i, j, std::move(est.io_by_object));
    }
  }
  return profiles;
}

}  // namespace dot
