#ifndef DOTPROV_WORKLOAD_TPCC_WORKLOAD_H_
#define DOTPROV_WORKLOAD_TPCC_WORKLOAD_H_

#include <memory>

#include "catalog/schema.h"
#include "storage/storage_class.h"
#include "workload/oltp_workload.h"

namespace dot {

/// Knobs of the DBT-2 run the paper uses (§4.5): 300 DB connections,
/// 1 terminal per warehouse, no think time, one-hour measurement period.
struct TpccConfig {
  double concurrency = 300.0;
  double measurement_period_ms = 3600.0 * 1000.0;
  /// Lock-convoy saturation scale (see OltpWorkloadModel); <= 0 disables.
  double contention_reference_ms = 190.0;
};

/// Builds the TPC-C transaction-mix model over `schema` (which must come
/// from MakeTpccSchema and outlive the model, as must `box`).
///
/// The five transaction types carry per-execution I/O footprints (counts of
/// SR/RR/SW/RW per object) reflecting the TPC-C specification's logical
/// profile — e.g. New-Order touches ~10 stock rows read+write and inserts
/// ~10 order lines; Payment updates warehouse/district/customer and appends
/// to history; Delivery drains new_order for all ten districts. Almost all
/// of it is random I/O, matching the paper's §4.5.1 observation, with the
/// append-only history writes as the sequential exception. Fixed per-
/// transaction overheads model locking/logging/round-trip time at 300
/// connections.
std::unique_ptr<OltpWorkloadModel> MakeTpccWorkload(const Schema* schema,
                                                    const BoxConfig* box,
                                                    const TpccConfig& config);

}  // namespace dot

#endif  // DOTPROV_WORKLOAD_TPCC_WORKLOAD_H_
