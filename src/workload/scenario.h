#ifndef DOTPROV_WORKLOAD_SCENARIO_H_
#define DOTPROV_WORKLOAD_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/workload.h"

namespace dot {

/// One plausible realization of next epoch's workload: which model runs
/// (null = the problem's nominal model), at which per-object I/O intensity,
/// with which probability weight. A scenario perturbs *what the optimizer
/// believes the workload will do* — the search machinery itself is
/// untouched; every scenario is scored through the same estimators as a
/// point forecast.
struct Scenario {
  /// The workload model of this scenario; nullptr means "the DotProblem's
  /// nominal model". Non-null entries (e.g. HTAP mixes at wobbled ratios)
  /// must be built over the problem's schema/box and outlive the run.
  const WorkloadModel* model = nullptr;

  /// Per-object multiplier on the model's I/O counts, composed on top of
  /// the problem's refinement io_scale_hint; empty = no extra scaling.
  std::vector<double> io_scale;

  /// Relative probability mass (normalized by consumers); must be > 0.
  double weight = 1.0;

  std::string label;
};

/// Hard cap on ensemble width: the scoring hot paths keep per-scenario
/// state in stack arrays, and K beyond a few dozen buys no forecasting
/// fidelity the sampler can deliver anyway.
inline constexpr int kMaxScenarios = 64;

/// The scenario set one robust optimization runs over. Scenario order is
/// significant: every weighted sum over scenarios is accumulated in this
/// order (the determinism contract), and consumers treat scenario 0 as the
/// nominal/reporting scenario.
struct ScenarioEnsemble {
  std::vector<Scenario> scenarios;

  int size() const { return static_cast<int>(scenarios.size()); }

  /// Weights scaled to sum to 1, in scenario order. Aborts via DOT_CHECK
  /// on a non-positive weight or an empty ensemble. A single scenario
  /// normalizes to exactly 1.0 (no division drift), which is what lets a
  /// K=1 ensemble reproduce the point forecast bit for bit.
  std::vector<double> NormalizedWeights() const;
};

/// Knobs of SampleScenarioEnsemble. All noise is multiplicative lognormal
/// with unit mean, matching the Executor's jitter and the trace recorder's
/// observation noise — the repo's one language for workload uncertainty.
struct ScenarioNoise {
  /// Ensemble width K, *including* the nominal scenario 0. 1 = the point
  /// forecast itself.
  int num_scenarios = 8;

  /// Coefficient of variation of the per-object io_scale jitter: each
  /// sampled scenario scales every object's I/O independently.
  double io_scale_cv = 0.15;

  /// Coefficient of variation of a common per-scenario intensity factor
  /// (count noise): the whole workload runs hotter or colder, on top of
  /// the per-object jitter. 0 = no common factor.
  double count_cv = 0.0;

  uint64_t seed = 17;
};

/// Samples a K-scenario ensemble around the nominal forecast. Scenario 0
/// is always the exact nominal (null model, no scaling, weight 1);
/// scenarios 1..K-1 draw, in order: the common intensity factor, then one
/// io_scale factor per object in object order, then — when `mix_pool` is
/// non-empty — a model pick uniform over {nominal} ∪ mix_pool (the HTAP
/// mix-ratio wobble: pool entries are the same workload at alternate mix
/// ratios). All weights are equal. Deterministic in (noise, mix_pool).
ScenarioEnsemble SampleScenarioEnsemble(
    int num_objects, const ScenarioNoise& noise,
    const std::vector<const WorkloadModel*>& mix_pool = {});

/// Element-wise product of two per-object scale vectors, treating an empty
/// vector as all-ones: the composition of the refinement hint and a
/// scenario's perturbation. Returns the non-empty side *unchanged* when the
/// other is empty — the identity composition introduces no copy-and-round
/// step, so a nominal scenario scores through exactly the hint vector the
/// point forecast uses (bit-identity hinges on this).
std::vector<double> ComposeIoScale(const std::vector<double>& a,
                                   const std::vector<double>& b);

}  // namespace dot

#endif  // DOTPROV_WORKLOAD_SCENARIO_H_
