#include "workload/oltp_workload.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/simd_dispatch.h"
#include "common/units.h"
#include "io/io_types.h"
#include "query/object_io.h"

namespace dot {

OltpLatencyTables::OltpLatencyTables(const OltpWorkloadModel& model,
                                     const BoxConfig& box,
                                     const std::vector<double>& io_scale)
    : num_objects_(static_cast<int>(model.txn_types().front().io.size())),
      num_classes_(box.NumClasses()) {
  const int num_classes = num_classes_;

  // Hoisted per-(class, I/O type) unit latencies: LatencyMs runs a log/pow
  // interpolation, so paying it rows x classes times used to dominate
  // table construction. TimeForMs(χ, c) = Σ_r χ_r·τ_r(c) with zero counts
  // skipped; the per-row loop below replays exactly that expression over
  // the hoisted τ_r(c), so every plane value is bit-identical to what
  // TimeForMs (and hence IoTimeShareMs on the full path) computes.
  std::vector<double> unit_lat(static_cast<size_t>(num_classes) *
                               kNumIoTypes);
  for (int c = 0; c < num_classes; ++c) {
    for (int r = 0; r < kNumIoTypes; ++r) {
      unit_lat[static_cast<size_t>(c) * kNumIoTypes + r] =
          box.classes[static_cast<size_t>(c)].device().LatencyMs(
              static_cast<IoType>(r), model.concurrency());
    }
  }

  // Single pass: planes, per-row minima, branch-and-bound tables.
  // base_mean_latency_ms_ is the mix-weighted mean latency with *every*
  // object on its per-row fastest class — the unconstrained minimum;
  // excess_[o][c] is the guaranteed increase from committing object o to
  // class c. Their sum over an assignment lower-bounds the mean latency
  // of every completion (unassigned objects contribute at least their
  // row minima).
  excess_.assign(
      static_cast<size_t>(num_objects_) * static_cast<size_t>(num_classes),
      0.0);
  base_mean_latency_ms_ = 0.0;
  // Reserve at the non-zero-row upper bound: these tables are rebuilt per
  // search, and growth reallocations were a visible slice of short-search
  // setup time.
  size_t max_rows = 0;
  for (const TxnType& t : model.txn_types()) max_rows += t.io.size();
  tables_.reserve(model.txn_types().size());
  row_objects_.reserve(max_rows);
  row_min_ms_.reserve(max_rows);
  planes_.reserve(max_rows * static_cast<size_t>(num_classes));
  std::vector<IoVector> row_io;  // per-table scratch
  for (const TxnType& t : model.txn_types()) {
    TxnTable table;
    table.weight = t.weight;
    table.cpu_ms = t.cpu_ms;
    table.overhead_ms = t.overhead_ms;
    table.plane_begin = planes_.size();
    table.obj_begin = row_objects_.size();
    row_io.clear();
    for (size_t o = 0; o < t.io.size(); ++o) {
      IoVector io = t.io[o];
      if (!io_scale.empty()) io *= io_scale[o];
      // IoTimeShareMs skips zero entries; mirror that by storing only
      // non-zero rows (a zero row would contribute an exact 0.0 anyway).
      if (io.IsZero()) continue;
      row_objects_.push_back(static_cast<int>(o));
      row_io.push_back(io);
    }
    table.num_rows = static_cast<int>(row_io.size());
    const int rows = table.num_rows;
    planes_.resize(table.plane_begin +
                   static_cast<size_t>(num_classes) * rows);
    double* plane = planes_.data() + table.plane_begin;
    double min_io_ms = 0.0;
    for (int r = 0; r < rows; ++r) {
      const IoVector& io = row_io[static_cast<size_t>(r)];
      const int object = row_objects_[table.obj_begin + r];
      double row_min = 0.0;
      for (int c = 0; c < num_classes; ++c) {
        const double* lat = unit_lat.data() +
                            static_cast<size_t>(c) * kNumIoTypes;
        double time_ms = 0.0;
        for (int k = 0; k < kNumIoTypes; ++k) {
          const double count = io[static_cast<IoType>(k)];
          if (count != 0.0) time_ms += count * lat[k];
        }
        plane[static_cast<size_t>(c) * rows + r] = time_ms;
        row_min = (c == 0) ? time_ms : std::min(row_min, time_ms);
      }
      for (int c = 0; c < num_classes; ++c) {
        excess_[static_cast<size_t>(object) *
                    static_cast<size_t>(num_classes) +
                static_cast<size_t>(c)] +=
            t.weight *
            (plane[static_cast<size_t>(c) * rows + r] - row_min);
      }
      row_min_ms_.push_back(row_min);
      min_io_ms += row_min;
    }
    base_mean_latency_ms_ +=
        t.weight * (min_io_ms + t.cpu_ms + t.overhead_ms);
    tables_.push_back(table);
  }
}

double OltpLatencyTables::MeanLatencyMs(
    const std::vector<int>& placement) const {
  double mean_latency_ms = 0.0;
  for (const TxnTable& t : tables_) {
    const double io_ms = PlaneGatherSum(planes_.data() + t.plane_begin,
                                        row_objects_.data() + t.obj_begin,
                                        placement.data(), t.num_rows);
    const double latency = io_ms + t.cpu_ms + t.overhead_ms;
    mean_latency_ms += t.weight * latency;
  }
  return mean_latency_ms;
}

double OltpLatencyTables::SpreadMs(int object) const {
  const size_t base =
      static_cast<size_t>(object) * static_cast<size_t>(num_classes_);
  double lo = excess_[base];
  double hi = excess_[base];
  for (int c = 1; c < num_classes_; ++c) {
    lo = std::min(lo, excess_[base + static_cast<size_t>(c)]);
    hi = std::max(hi, excess_[base + static_cast<size_t>(c)]);
  }
  return hi - lo;
}

namespace {

/// The OLTP fast path over OltpLatencyTables: one candidate costs a
/// fixed-order table-lookup sum with no allocation per Score call.
class OltpFastScorer : public FastScorer {
 public:
  OltpFastScorer(const OltpWorkloadModel* model, const BoxConfig* box,
                 double measurement_period_ms,
                 const std::vector<double>& io_scale, double min_tpmc,
                 double sla_tolerance)
      : model_(model),
        tables_(*model, *box, io_scale),
        measurement_period_ms_(measurement_period_ms),
        // Exactly the comparison MeetsTargets makes for throughput SLAs.
        tpmc_floor_(min_tpmc * (1 - sla_tolerance)) {}

  QuickPerf Score(const std::vector<int>& placement) const override {
    const double mean_latency_ms = tables_.MeanLatencyMs(placement);
    DOT_CHECK(mean_latency_ms > 0);
    const OltpWorkloadModel::Throughput tp =
        model_->ThroughputFromMeanLatency(mean_latency_ms);
    QuickPerf qp;
    qp.elapsed_ms = measurement_period_ms_;
    qp.tpmc = tp.tpmc;
    qp.tasks_per_hour = tp.tasks_per_hour;
    qp.sla_ok = qp.tpmc >= tpmc_floor_;
    return qp;
  }

  /// Partial-placement bound: a snapshot stack of mean-latency lower
  /// bounds, one entry per assignment depth. Snapshots (rather than a
  /// running +=/-= accumulator) keep each value a pure function of the
  /// assignment path, so backtracking cannot accumulate floating-point
  /// drift.
  class BoundCursor : public FastScorer::BoundCursor {
   public:
    explicit BoundCursor(const OltpFastScorer* scorer)
        : scorer_(scorer),
          lb_stack_(
              static_cast<size_t>(scorer->tables_.num_objects()) + 1, 0.0) {
      Reset();
    }

    void Reset() override {
      depth_ = 0;
      lb_stack_[0] = scorer_->tables_.base_mean_latency_ms();
    }

    void Assign(int object_id, const std::vector<int>& placement) override {
      lb_stack_[static_cast<size_t>(depth_) + 1] =
          lb_stack_[static_cast<size_t>(depth_)] +
          scorer_->tables_.Excess(
              object_id, placement[static_cast<size_t>(object_id)]);
      ++depth_;
    }

    void Unassign(int object_id) override {
      (void)object_id;  // LIFO: only the depth matters
      --depth_;
    }

    QuickPerf Optimistic(const std::vector<int>& placement) const override {
      if (depth_ == scorer_->tables_.num_objects()) {
        // Leaf: the exact kernel, bit-identical to Score.
        return scorer_->Score(placement);
      }
      // Interior node: deflate the latency lower bound so rounding drift
      // can never push the derived tpmC upper bound below a completion's
      // true value (see kBoundSafety).
      const double lb_ms =
          lb_stack_[static_cast<size_t>(depth_)] * (1 - kBoundSafety);
      const OltpWorkloadModel::Throughput tp =
          scorer_->model_->ThroughputFromMeanLatency(lb_ms);
      QuickPerf qp;
      qp.elapsed_ms = scorer_->measurement_period_ms_;
      qp.tpmc = tp.tpmc;
      qp.tasks_per_hour = tp.tasks_per_hour;
      qp.sla_ok = qp.tpmc >= scorer_->tpmc_floor_;
      return qp;
    }

    /// Batched probe: the OLTP bound of assigning `object` to class c is
    /// lb_stack_[depth_] + Excess(object, c) — one table row indexed by c
    /// — so probing every class needs no per-class Assign/Unassign push.
    /// Arithmetic is exactly the Assign → Optimistic (interior) → Unassign
    /// sequence: (base + excess) rounds once, then deflates, then converts
    /// — bit-identical to the default implementation.
    void ProbeClasses(int object, std::vector<int>& placement,
                      int num_classes, const unsigned char* mask,
                      QuickPerf* out) override {
      (void)placement;
      const double base = lb_stack_[static_cast<size_t>(depth_)];
      const double* excess_row = scorer_->tables_.ExcessRow(object);
      for (int cls = 0; cls < num_classes; ++cls) {
        if (mask[cls] == 0) continue;
        const double lb_ms = (base + excess_row[cls]) * (1 - kBoundSafety);
        const OltpWorkloadModel::Throughput tp =
            scorer_->model_->ThroughputFromMeanLatency(lb_ms);
        QuickPerf qp;
        qp.elapsed_ms = scorer_->measurement_period_ms_;
        qp.tpmc = tp.tpmc;
        qp.tasks_per_hour = tp.tasks_per_hour;
        qp.sla_ok = qp.tpmc >= scorer_->tpmc_floor_;
        out[cls] = qp;
      }
    }

    /// Division-free batched probe: the throughput conversion stays in
    /// ratio form (see ThroughputRatioFromMeanLatency) and the tpmC floor
    /// is checked by cross-multiplication — the whole per-class probe is
    /// adds and multiplies.
    void ProbeClassesRatio(int object, std::vector<int>& placement,
                           int num_classes, const unsigned char* mask,
                           QuickPerf* out, double* tp_den) override {
      (void)placement;
      const double base = lb_stack_[static_cast<size_t>(depth_)];
      const double* excess_row = scorer_->tables_.ExcessRow(object);
      const double floor = scorer_->tpmc_floor_;
      for (int cls = 0; cls < num_classes; ++cls) {
        if (mask[cls] == 0) continue;
        const double lb_ms = (base + excess_row[cls]) * (1 - kBoundSafety);
        double tpmc_num = 0.0;
        double den = 1.0;
        scorer_->model_->ThroughputRatioFromMeanLatency(lb_ms, &tpmc_num,
                                                        &den);
        QuickPerf qp;
        qp.elapsed_ms = scorer_->measurement_period_ms_;
        qp.tasks_per_hour = tpmc_num * 60.0;
        qp.sla_ok = tpmc_num >= floor * den;
        out[cls] = qp;
        tp_den[cls] = den;
      }
    }

   private:
    const OltpFastScorer* scorer_;
    std::vector<double> lb_stack_;
    int depth_ = 0;
  };

  std::unique_ptr<FastScorer::BoundCursor> MakeBoundCursor() const override {
    return std::make_unique<BoundCursor>(this);
  }

  double ObjectTimeSpreadMs(int object) const override {
    return tables_.SpreadMs(object);
  }

 private:
  const OltpWorkloadModel* model_;
  OltpLatencyTables tables_;
  double measurement_period_ms_;
  double tpmc_floor_;
};

}  // namespace

OltpWorkloadModel::OltpWorkloadModel(std::string name, const Schema* schema,
                                     const BoxConfig* box,
                                     std::vector<TxnType> txn_types,
                                     double concurrency,
                                     double measurement_period_ms,
                                     double contention_reference_ms)
    : name_(std::move(name)),
      schema_(schema),
      box_(box),
      txn_types_(std::move(txn_types)),
      concurrency_(concurrency),
      measurement_period_ms_(measurement_period_ms),
      contention_reference_ms_(contention_reference_ms) {
  DOT_CHECK(!txn_types_.empty()) << "OLTP workload needs transaction types";
  DOT_CHECK(concurrency_ >= 1.0);
  DOT_CHECK(measurement_period_ms_ > 0);
  double total_weight = 0.0;
  for (size_t i = 0; i < txn_types_.size(); ++i) {
    const TxnType& t = txn_types_[i];
    DOT_CHECK(t.weight > 0) << "transaction " << t.name
                            << " needs positive weight";
    DOT_CHECK(static_cast<int>(t.io.size()) == schema_->NumObjects())
        << "transaction " << t.name << " footprint arity mismatch";
    total_weight += t.weight;
    if (t.name == "NewOrder") primary_txn_ = static_cast<int>(i);
  }
  DOT_CHECK(std::abs(total_weight - 1.0) < 1e-9)
      << "transaction mix weights must sum to 1, got " << total_weight;
}

PerfEstimate OltpWorkloadModel::Estimate(
    const std::vector<int>& placement) const {
  return EstimateWithIoScale(placement, {});
}

OltpWorkloadModel::Throughput OltpWorkloadModel::ThroughputFromMeanLatency(
    double mean_latency_ms) const {
  // Lock-convoy contention: long transactions hold locks longer and
  // collide more, so effective latency diverges as the mean service demand
  // approaches the system's saturation point (see header).
  double effective_latency_ms = mean_latency_ms;
  if (contention_reference_ms_ > 0) {
    // Past saturation the degradation is capped at 10x: thrashing systems
    // still make (slow) progress.
    const double utilization =
        std::min(mean_latency_ms / contention_reference_ms_, 0.9);
    effective_latency_ms = mean_latency_ms / (1.0 - utilization);
  }

  // Closed-loop throughput: c terminals, zero think time.
  Throughput tp;
  tp.txns_per_minute = concurrency_ * kMsPerMinute / effective_latency_ms;
  const double primary_weight =
      txn_types_[static_cast<size_t>(primary_txn_)].weight;
  tp.tpmc = tp.txns_per_minute * primary_weight;
  tp.tasks_per_hour = tp.tpmc * 60.0;
  return tp;
}

void OltpWorkloadModel::ThroughputRatioFromMeanLatency(double mean_latency_ms,
                                                       double* tpmc_num,
                                                       double* den) const {
  const double w = txn_types_[static_cast<size_t>(primary_txn_)].weight;
  if (contention_reference_ms_ > 0) {
    const double ref = contention_reference_ms_;
    if (mean_latency_ms < 0.9 * ref) {
      // Unsaturated: effective latency lat/(1 - lat/ref) == lat·ref/(ref -
      // lat), so tpmC = c·K·w·(ref - lat) / (lat·ref). Continuous with the
      // saturated branch at lat == 0.9·ref.
      *tpmc_num = concurrency_ * kMsPerMinute * w * (ref - mean_latency_ms);
      *den = mean_latency_ms * ref;
      return;
    }
    // Saturated: utilization capped at 0.9, effective latency lat/(1-0.9).
    *tpmc_num = concurrency_ * kMsPerMinute * w * (1.0 - 0.9);
    *den = mean_latency_ms;
    return;
  }
  // No contention model: effective latency is the mean itself.
  *tpmc_num = concurrency_ * kMsPerMinute * w;
  *den = mean_latency_ms;
}

PerfEstimate OltpWorkloadModel::EstimateWithIoScale(
    const std::vector<int>& placement, const std::vector<double>& io_scale,
    bool need_io_by_object) const {
  DOT_CHECK(static_cast<int>(placement.size()) == schema_->NumObjects());
  DOT_CHECK(io_scale.empty() ||
            static_cast<int>(io_scale.size()) == schema_->NumObjects())
      << "io_scale arity mismatch";

  PerfEstimate est;
  est.elapsed_ms = measurement_period_ms_;
  est.unit_times_ms.reserve(txn_types_.size());

  // One scratch buffer, reused across transaction types; untouched (and the
  // per-type footprints never copied) when there is no scaling to apply.
  const bool scaled = !io_scale.empty();
  ObjectIoMap scratch;
  auto scaled_io = [&](const TxnType& t) -> const ObjectIoMap& {
    if (!scaled) return t.io;
    scratch = t.io;
    for (size_t o = 0; o < scratch.size(); ++o) scratch[o] *= io_scale[o];
    return scratch;
  };

  // Mix-weighted mean transaction latency at the workload's concurrency.
  double mean_latency_ms = 0.0;
  for (const TxnType& t : txn_types_) {
    const double io_ms =
        IoTimeShareMs(scaled_io(t), placement, *box_, concurrency_);
    const double latency = io_ms + t.cpu_ms + t.overhead_ms;
    est.unit_times_ms.push_back(latency);
    mean_latency_ms += t.weight * latency;
  }
  DOT_CHECK(mean_latency_ms > 0);

  const Throughput tp = ThroughputFromMeanLatency(mean_latency_ms);
  est.tpmc = tp.tpmc;
  est.tasks_per_hour = tp.tasks_per_hour;

  if (need_io_by_object) {
    // Total I/O over the measurement period.
    est.io_by_object.assign(static_cast<size_t>(schema_->NumObjects()),
                            IoVector{});
    const double txns_total =
        tp.txns_per_minute * (measurement_period_ms_ / kMsPerMinute);
    for (const TxnType& t : txn_types_) {
      AccumulateScaledIo(est.io_by_object, scaled_io(t),
                         txns_total * t.weight);
    }
  }
  return est;
}

std::unique_ptr<FastScorer> OltpWorkloadModel::MakeFastScorer(
    const std::vector<double>& io_scale,
    const std::vector<double>& query_caps_ms, double min_tpmc,
    double sla_tolerance) const {
  (void)query_caps_ms;  // throughput SLA: only the tpmC floor applies
  DOT_CHECK(io_scale.empty() ||
            static_cast<int>(io_scale.size()) == schema_->NumObjects())
      << "io_scale arity mismatch";
  return std::make_unique<OltpFastScorer>(this, box_, measurement_period_ms_,
                                          io_scale, min_tpmc, sla_tolerance);
}

}  // namespace dot
