#include "workload/oltp_workload.h"

#include <cmath>

#include "common/check.h"
#include "common/units.h"
#include "query/object_io.h"

namespace dot {

OltpWorkloadModel::OltpWorkloadModel(std::string name, const Schema* schema,
                                     const BoxConfig* box,
                                     std::vector<TxnType> txn_types,
                                     double concurrency,
                                     double measurement_period_ms,
                                     double contention_reference_ms)
    : name_(std::move(name)),
      schema_(schema),
      box_(box),
      txn_types_(std::move(txn_types)),
      concurrency_(concurrency),
      measurement_period_ms_(measurement_period_ms),
      contention_reference_ms_(contention_reference_ms) {
  DOT_CHECK(!txn_types_.empty()) << "OLTP workload needs transaction types";
  DOT_CHECK(concurrency_ >= 1.0);
  DOT_CHECK(measurement_period_ms_ > 0);
  double total_weight = 0.0;
  for (size_t i = 0; i < txn_types_.size(); ++i) {
    const TxnType& t = txn_types_[i];
    DOT_CHECK(t.weight > 0) << "transaction " << t.name
                            << " needs positive weight";
    DOT_CHECK(static_cast<int>(t.io.size()) == schema_->NumObjects())
        << "transaction " << t.name << " footprint arity mismatch";
    total_weight += t.weight;
    if (t.name == "NewOrder") primary_txn_ = static_cast<int>(i);
  }
  DOT_CHECK(std::abs(total_weight - 1.0) < 1e-9)
      << "transaction mix weights must sum to 1, got " << total_weight;
}

PerfEstimate OltpWorkloadModel::Estimate(
    const std::vector<int>& placement) const {
  return EstimateWithIoScale(placement, {});
}

PerfEstimate OltpWorkloadModel::EstimateWithIoScale(
    const std::vector<int>& placement,
    const std::vector<double>& io_scale) const {
  DOT_CHECK(static_cast<int>(placement.size()) == schema_->NumObjects());
  DOT_CHECK(io_scale.empty() ||
            static_cast<int>(io_scale.size()) == schema_->NumObjects())
      << "io_scale arity mismatch";

  PerfEstimate est;
  est.elapsed_ms = measurement_period_ms_;
  est.io_by_object.assign(static_cast<size_t>(schema_->NumObjects()),
                          IoVector{});

  auto scaled_io = [&](const TxnType& t) {
    ObjectIoMap io = t.io;
    if (!io_scale.empty()) {
      for (size_t o = 0; o < io.size(); ++o) io[o] *= io_scale[o];
    }
    return io;
  };

  // Mix-weighted mean transaction latency at the workload's concurrency.
  double mean_latency_ms = 0.0;
  for (const TxnType& t : txn_types_) {
    const double io_ms =
        IoTimeShareMs(scaled_io(t), placement, *box_, concurrency_);
    const double latency = io_ms + t.cpu_ms + t.overhead_ms;
    est.unit_times_ms.push_back(latency);
    mean_latency_ms += t.weight * latency;
  }
  DOT_CHECK(mean_latency_ms > 0);

  // Lock-convoy contention: long transactions hold locks longer and
  // collide more, so effective latency diverges as the mean service demand
  // approaches the system's saturation point (see header).
  double effective_latency_ms = mean_latency_ms;
  if (contention_reference_ms_ > 0) {
    // Past saturation the degradation is capped at 10x: thrashing systems
    // still make (slow) progress.
    const double utilization =
        std::min(mean_latency_ms / contention_reference_ms_, 0.9);
    effective_latency_ms = mean_latency_ms / (1.0 - utilization);
  }

  // Closed-loop throughput: c terminals, zero think time.
  const double txns_per_minute =
      concurrency_ * kMsPerMinute / effective_latency_ms;
  const double primary_weight =
      txn_types_[static_cast<size_t>(primary_txn_)].weight;
  est.tpmc = txns_per_minute * primary_weight;
  est.tasks_per_hour = est.tpmc * 60.0;

  // Total I/O over the measurement period.
  const double txns_total =
      txns_per_minute * (measurement_period_ms_ / kMsPerMinute);
  for (const TxnType& t : txn_types_) {
    ObjectIoMap io = scaled_io(t);
    ScaleIo(io, txns_total * t.weight);
    AccumulateIo(est.io_by_object, io);
  }
  return est;
}

}  // namespace dot
