#ifndef DOTPROV_WORKLOAD_WORKLOAD_H_
#define DOTPROV_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "query/object_io.h"

namespace dot {

/// How the SLA constrains a workload (§2.4): per-query response-time caps
/// for DSS workloads, an aggregate throughput floor for OLTP (§4.3).
enum class SlaKind {
  kPerQueryResponseTime,
  kThroughput,
};

/// Performance estimate of one workload execution under one placement.
struct PerfEstimate {
  /// t(L, W): completion time of the whole workload, ms. For OLTP models
  /// this is the fixed measurement period (§4.5: one hour).
  double elapsed_ms = 0.0;

  /// Per-unit times: one entry per query instance in the run sequence (DSS)
  /// or the mix-weighted mean transaction latencies per type (OLTP).
  std::vector<double> unit_times_ms;

  /// Completed tasks per hour (queries for DSS, New-Order transactions for
  /// OLTP). TOC per task = C(L) / tasks_per_hour (§2.1).
  double tasks_per_hour = 0.0;

  /// New-Order transactions per minute; 0 for DSS workloads.
  double tpmc = 0.0;

  /// Total per-object I/O of the execution (the basis of workload profiles
  /// and of the refinement phase's runtime statistics).
  ObjectIoMap io_by_object;

  /// Join-method census across all planned queries (DSS only).
  int num_joins = 0;
  int num_index_nl_joins = 0;
};

/// The TOC-only scoring result of the candidate-evaluation fast path: just
/// the scalars the search loops consume, with no unit-time vector and no
/// per-object I/O map (see DESIGN.md §4). Every field must be bit-identical
/// to what the corresponding full Estimate would produce — the fast path is
/// an evaluation-order-preserving reorganization, not an approximation.
struct QuickPerf {
  double elapsed_ms = 0.0;
  double tasks_per_hour = 0.0;
  double tpmc = 0.0;
  /// Verdict of the model's SLA check against the caps the scorer was built
  /// with (per-entry response-time caps for DSS, the tpmC floor for OLTP).
  bool sla_ok = false;
};

/// Relative safety margin every admissible bound is deflated by before it
/// is compared against anything exact (see DESIGN.md §5). The bounds the
/// branch-and-bound search consumes are admissible in real arithmetic; the
/// deflation absorbs the few-ULP floating-point drift between a bound's
/// summation order and the exact evaluation's, so a bound can never
/// spuriously exceed the true value and prune the optimum. 1e-9 is ~6
/// orders of magnitude above accumulated rounding error on these problem
/// sizes and ~3 below any TOC difference the search cares about.
inline constexpr double kBoundSafety = 1e-9;

/// Allocation-free candidate scorer a workload model can offer the search
/// engine. Built once per optimization run (per-object device-time tables
/// for OLTP, a placement-signature plan cache for DSS) and then queried for
/// thousands of candidate placements.
///
/// Thread-safety: Score() must be safe to call concurrently (internal caches
/// synchronize themselves); a Cursor is single-threaded state and each shard
/// of a scan must create its own.
class FastScorer {
 public:
  virtual ~FastScorer() = default;

  /// Scores one placement. Bit-identical to the model's full estimate.
  virtual QuickPerf Score(const std::vector<int>& placement) const = 0;

  /// Incremental walker for odometer-style scans (the exhaustive search):
  /// the caller announces which single objects changed since the last step
  /// so the scorer refreshes only the state those objects invalidate (for
  /// DSS, only the query templates whose footprint contains a changed
  /// object re-resolve their cached plan). Scalar totals are still re-summed
  /// in fixed object order on every Score — a floating-point delta update
  /// would make the value depend on the walk's starting point and break the
  /// shard-independence the determinism contract requires (DESIGN.md §2).
  class Cursor {
   public:
    virtual ~Cursor() = default;
    /// (Re)seeds the cursor from a full placement.
    virtual void Reset(const std::vector<int>& placement) { (void)placement; }
    /// `placement` already reflects object `object_id`'s new class.
    virtual void Touch(int object_id, const std::vector<int>& placement) {
      (void)object_id;
      (void)placement;
    }
    virtual QuickPerf Score(const std::vector<int>& placement) const = 0;
  };

  /// Returns a fresh cursor. The default has no incremental state and simply
  /// re-scores from scratch (correct for models whose Score is already a
  /// flat table-lookup sum, e.g. OLTP).
  virtual std::unique_ptr<Cursor> MakeCursor() const;

  /// Partial-placement walker for the exact branch-and-bound search
  /// (dot/bnb_search.h): the search assigns objects one at a time and asks
  /// for an *optimistic completion score* at every node. The contract, in
  /// decreasing order of importance:
  ///
  ///   1. Admissible: Optimistic().tasks_per_hour is an upper bound on
  ///      Score(p').tasks_per_hour over every full placement p' extending
  ///      the current partial assignment (0 stands for "unbounded"), and
  ///      Optimistic().sla_ok is false only when *no* extension can meet
  ///      the caps. Implementations deflate floating-point-noisy terms by
  ///      kBoundSafety so admissibility survives rounding. Admissible
  ///      bounds compose: a workload summing independent parts (the HTAP
  ///      model) may sum its parts' bounds — per-side upper bounds on
  ///      throughput add to a combined upper bound, per-side time lower
  ///      bounds add to a combined lower bound.
  ///   2. Exact at the leaves: with every object assigned, Optimistic()
  ///      must be bit-identical to Score(placement) — the search evaluates
  ///      leaves through this path and its results must match the
  ///      enumerating search bit for bit.
  ///
  /// Assign/Unassign follow the search's LIFO discipline. A BoundCursor is
  /// single-threaded state; each subtree task creates its own.
  class BoundCursor {
   public:
    virtual ~BoundCursor() = default;
    /// Clears to "no object assigned".
    virtual void Reset() = 0;
    /// `placement[object_id]` already holds the newly assigned class.
    virtual void Assign(int object_id, const std::vector<int>& placement) = 0;
    /// Backtracks the most recent Assign of `object_id`.
    virtual void Unassign(int object_id) = 0;
    /// The optimistic completion score (see contract above). `placement`
    /// entries of unassigned objects are not read.
    virtual QuickPerf Optimistic(const std::vector<int>& placement) const = 0;
    /// Batched interior probe for the branch-and-bound inner loop: for
    /// every class c in [0, num_classes) with mask[c] != 0, evaluates the
    /// optimistic completion that assigns `object` to c and writes it to
    /// out[c] (masked-off entries are left untouched). `placement` is
    /// scratch — the probed object's entry may be overwritten and holds an
    /// unspecified class on return. The default is definitionally the
    /// Assign / Optimistic / Unassign sequence per class in ascending
    /// order; overrides exist purely so table-driven models can skip the
    /// per-class state push, and must stay bit-identical to that sequence.
    /// Callers only probe classes whose child node is interior (the search
    /// evaluates leaves through Assign/Optimistic so they keep the exact
    /// Score kernel).
    virtual void ProbeClasses(int object, std::vector<int>& placement,
                              int num_classes, const unsigned char* mask,
                              QuickPerf* out) {
      for (int cls = 0; cls < num_classes; ++cls) {
        if (mask[cls] == 0) continue;
        placement[static_cast<size_t>(object)] = cls;
        Assign(object, placement);
        out[cls] = Optimistic(placement);
        Unassign(object);
      }
    }
    /// ProbeClasses with the optimistic throughput returned as an
    /// unreduced ratio: out[c].tasks_per_hour is the numerator and
    /// tp_den[c] the (positive) denominator. Models whose throughput
    /// conversion divides can fill both sides without ever dividing; the
    /// search prunes and orders children by cross-multiplied compares
    /// under the ε safety margin, so the ULP-level difference from the
    /// divided value never cuts a tying completion. out[c].sla_ok keeps
    /// its exact meaning; out[c]'s other fields are unspecified. The
    /// default delegates to ProbeClasses with every denominator 1.
    virtual void ProbeClassesRatio(int object, std::vector<int>& placement,
                                   int num_classes, const unsigned char* mask,
                                   QuickPerf* out, double* tp_den) {
      for (int cls = 0; cls < num_classes; ++cls) tp_den[cls] = 1.0;
      ProbeClasses(object, placement, num_classes, mask, out);
    }
  };

  /// Returns a fresh bound cursor, or nullptr when the model offers no
  /// admissible bound. Without one the search cannot bound TOC at all
  /// (cost alone bounds nothing without a throughput bound) and degrades
  /// to capacity-only pruning with full evaluations at the leaves —
  /// still exact, close to enumeration cost.
  virtual std::unique_ptr<BoundCursor> MakeBoundCursor() const {
    return nullptr;
  }

  /// Spread of object `object`'s guaranteed workload-time contribution
  /// across storage classes, in ms (0 when unknown). A variable-ordering
  /// hint for the branch-and-bound search — objects whose placement moves
  /// the workload time the most are assigned first — never a bound.
  virtual double ObjectTimeSpreadMs(int object) const {
    (void)object;
    return 0.0;
  }

  /// Plan-cache traffic (0/0 for models without a plan cache).
  virtual long long cache_hits() const { return 0; }
  virtual long long cache_misses() const { return 0; }
};

/// A provisioning workload W: something DOT can ask for a performance
/// estimate under any candidate placement. Implementations: DssWorkloadModel
/// (plans each query with the storage-aware optimizer) and OltpWorkloadModel
/// (transaction-mix I/O footprints at high concurrency).
class WorkloadModel {
 public:
  virtual ~WorkloadModel() = default;

  virtual const std::string& name() const = 0;

  /// Degree of concurrency the workload runs at (§3.5: 1 for the DSS
  /// experiments, 300 for TPC-C).
  virtual double concurrency() const = 0;

  virtual SlaKind sla_kind() const = 0;

  /// Estimates performance under `placement` (object id → storage class).
  virtual PerfEstimate Estimate(const std::vector<int>& placement) const = 0;

  /// Like Estimate, but with each object's I/O counts multiplied by
  /// `io_scale[o]` before timing. Models a workload whose true I/O deviates
  /// from what the optimizer predicted — the situation the validation and
  /// refinement phases exist to catch. An empty vector means no scaling.
  /// `need_io_by_object = false` lets callers that only consume times and
  /// throughput skip the total-I/O accumulation (io_by_object comes back
  /// empty); every other field is unaffected.
  virtual PerfEstimate EstimateWithIoScale(
      const std::vector<int>& placement, const std::vector<double>& io_scale,
      bool need_io_by_object = true) const;

  /// Builds this model's fast scorer, or nullptr when the model has none
  /// (the search engine then falls back to full estimates). `query_caps_ms`
  /// aligns with unit_times_ms (per run-sequence entry) and is consulted for
  /// kPerQueryResponseTime models; `min_tpmc` for kThroughput models.
  /// `sla_tolerance` must be the tolerance the caller's full-path SLA check
  /// uses. `io_scale` is baked into the scorer's tables.
  virtual std::unique_ptr<FastScorer> MakeFastScorer(
      const std::vector<double>& io_scale,
      const std::vector<double>& query_caps_ms, double min_tpmc,
      double sla_tolerance) const {
    (void)io_scale;
    (void)query_caps_ms;
    (void)min_tpmc;
    (void)sla_tolerance;
    return nullptr;
  }

  /// True when the workload's plans cannot change with placement (§4.5.1:
  /// TPC-C is all random access), letting the profiler collapse all
  /// baseline layouts into one.
  virtual bool PlansArePlacementInvariant() const { return false; }

  /// Recomputes the scalars derivable from unit_times_ms (elapsed_ms,
  /// tasks_per_hour, tpmc) after a caller perturbed the unit times — the
  /// test-run executor's hook, so each model owns the meaning of its own
  /// entries. The default implements the DSS convention (elapsed = Σ
  /// entries, tasks/hour = entries per elapsed hour) and is a no-op for
  /// throughput models, whose executor jitters the rate directly; the
  /// HTAP model reruns its throughput composition from the two folded
  /// per-side times.
  virtual void RederiveFromUnitTimes(PerfEstimate* est) const;
};

/// Uniform placement: every object on storage class `cls`.
std::vector<int> UniformPlacement(int num_objects, int cls);

}  // namespace dot

#endif  // DOTPROV_WORKLOAD_WORKLOAD_H_
