#ifndef DOTPROV_WORKLOAD_WORKLOAD_H_
#define DOTPROV_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "query/object_io.h"

namespace dot {

/// How the SLA constrains a workload (§2.4): per-query response-time caps
/// for DSS workloads, an aggregate throughput floor for OLTP (§4.3).
enum class SlaKind {
  kPerQueryResponseTime,
  kThroughput,
};

/// Performance estimate of one workload execution under one placement.
struct PerfEstimate {
  /// t(L, W): completion time of the whole workload, ms. For OLTP models
  /// this is the fixed measurement period (§4.5: one hour).
  double elapsed_ms = 0.0;

  /// Per-unit times: one entry per query instance in the run sequence (DSS)
  /// or the mix-weighted mean transaction latencies per type (OLTP).
  std::vector<double> unit_times_ms;

  /// Completed tasks per hour (queries for DSS, New-Order transactions for
  /// OLTP). TOC per task = C(L) / tasks_per_hour (§2.1).
  double tasks_per_hour = 0.0;

  /// New-Order transactions per minute; 0 for DSS workloads.
  double tpmc = 0.0;

  /// Total per-object I/O of the execution (the basis of workload profiles
  /// and of the refinement phase's runtime statistics).
  ObjectIoMap io_by_object;

  /// Join-method census across all planned queries (DSS only).
  int num_joins = 0;
  int num_index_nl_joins = 0;
};

/// A provisioning workload W: something DOT can ask for a performance
/// estimate under any candidate placement. Implementations: DssWorkloadModel
/// (plans each query with the storage-aware optimizer) and OltpWorkloadModel
/// (transaction-mix I/O footprints at high concurrency).
class WorkloadModel {
 public:
  virtual ~WorkloadModel() = default;

  virtual const std::string& name() const = 0;

  /// Degree of concurrency the workload runs at (§3.5: 1 for the DSS
  /// experiments, 300 for TPC-C).
  virtual double concurrency() const = 0;

  virtual SlaKind sla_kind() const = 0;

  /// Estimates performance under `placement` (object id → storage class).
  virtual PerfEstimate Estimate(const std::vector<int>& placement) const = 0;

  /// Like Estimate, but with each object's I/O counts multiplied by
  /// `io_scale[o]` before timing. Models a workload whose true I/O deviates
  /// from what the optimizer predicted — the situation the validation and
  /// refinement phases exist to catch. An empty vector means no scaling.
  virtual PerfEstimate EstimateWithIoScale(
      const std::vector<int>& placement,
      const std::vector<double>& io_scale) const;

  /// True when the workload's plans cannot change with placement (§4.5.1:
  /// TPC-C is all random access), letting the profiler collapse all
  /// baseline layouts into one.
  virtual bool PlansArePlacementInvariant() const { return false; }
};

/// Uniform placement: every object on storage class `cls`.
std::vector<int> UniformPlacement(int num_objects, int cls);

}  // namespace dot

#endif  // DOTPROV_WORKLOAD_WORKLOAD_H_
