#ifndef DOTPROV_WORKLOAD_TPCH_QUERIES_H_
#define DOTPROV_WORKLOAD_TPCH_QUERIES_H_

#include <vector>

#include "query/query_spec.h"

namespace dot {

/// The 22 TPC-H query templates, modeled declaratively (join order, local
/// predicate selectivities, index sargability, join fanouts). Selectivities
/// follow the TPC-H specification's predicate definitions; join orders are
/// the canonical left-deep orders PostgreSQL picks at this scale. The
/// original workload is dominated by sequential scans (§4.4: "the SR I/O as
/// the dominating I/O type").
std::vector<QuerySpec> MakeTpchTemplates();

/// The modified TPC-H workload from [10] (Canim et al.): templates 2, 5, 9,
/// 11 and 17 with extra predicates on part/order/supplier keys so that far
/// fewer rows qualify, producing a mix of random and sequential reads that
/// rewards index nested-loop joins on fast random-I/O devices (§4.4.2).
std::vector<QuerySpec> MakeModifiedTpchTemplates();

/// The 11-template subset used by the §4.4.3 DOT-vs-exhaustive-search
/// experiment (Q1, Q3, Q4, Q6, Q12, Q13, Q14, Q17, Q18, Q19, Q22): exactly
/// the templates touching only lineitem/orders/customer/part.
std::vector<QuerySpec> MakeTpchSubsetTemplates();

/// Run sequence [0..n_templates) repeated `reps` times, template-major
/// (template 0 x reps, then template 1 x reps, ...): 22x3 = the paper's 66
/// original queries, 5x20 = the 100 modified ones, 11x3 = the 33 ES-subset
/// queries.
std::vector<int> RepeatSequence(int n_templates, int reps);

}  // namespace dot

#endif  // DOTPROV_WORKLOAD_TPCH_QUERIES_H_
