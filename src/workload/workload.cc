#include "workload/workload.h"

#include "common/check.h"
#include "common/simd_dispatch.h"
#include "common/units.h"

namespace dot {

namespace {

/// Default cursor: no incremental state; defers to the scorer.
class RescoreCursor : public FastScorer::Cursor {
 public:
  explicit RescoreCursor(const FastScorer* scorer) : scorer_(scorer) {}
  QuickPerf Score(const std::vector<int>& placement) const override {
    return scorer_->Score(placement);
  }

 private:
  const FastScorer* scorer_;
};

}  // namespace

std::unique_ptr<FastScorer::Cursor> FastScorer::MakeCursor() const {
  return std::make_unique<RescoreCursor>(this);
}

PerfEstimate WorkloadModel::EstimateWithIoScale(
    const std::vector<int>& placement, const std::vector<double>& io_scale,
    bool need_io_by_object) const {
  (void)need_io_by_object;  // generic models always materialize their I/O
  DOT_CHECK(io_scale.empty())
      << "this workload model does not support I/O scaling";
  return Estimate(placement);
}

void WorkloadModel::RederiveFromUnitTimes(PerfEstimate* est) const {
  if (sla_kind() != SlaKind::kPerQueryResponseTime) return;
  // Same pinned schedule the estimators sum entry times with, so a
  // jitter-free rederive reproduces elapsed_ms bit for bit.
  const double total =
      BlockedSum(est->unit_times_ms.data(),
                 static_cast<int>(est->unit_times_ms.size()));
  est->elapsed_ms = total;
  if (total > 0) {
    est->tasks_per_hour = static_cast<double>(est->unit_times_ms.size()) /
                          (total / kMsPerHour);
  }
}

std::vector<int> UniformPlacement(int num_objects, int cls) {
  DOT_CHECK(num_objects >= 0);
  DOT_CHECK(cls >= 0);
  return std::vector<int>(static_cast<size_t>(num_objects), cls);
}

}  // namespace dot
