#include "workload/workload.h"

#include "common/check.h"

namespace dot {

PerfEstimate WorkloadModel::EstimateWithIoScale(
    const std::vector<int>& placement,
    const std::vector<double>& io_scale) const {
  DOT_CHECK(io_scale.empty())
      << "this workload model does not support I/O scaling";
  return Estimate(placement);
}

std::vector<int> UniformPlacement(int num_objects, int cls) {
  DOT_CHECK(num_objects >= 0);
  DOT_CHECK(cls >= 0);
  return std::vector<int>(static_cast<size_t>(num_objects), cls);
}

}  // namespace dot
