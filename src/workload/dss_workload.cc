#include "workload/dss_workload.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/check.h"
#include "common/simd_dispatch.h"
#include "common/units.h"

namespace dot {

namespace {

/// Dense template caches above this entry count fall back to the hashed
/// map: M^|footprint| grows fast, and 8192 doubles (64 KiB) per template
/// is where the dense array stops paying for itself.
constexpr std::int64_t kDenseCacheMaxEntries = 8192;

/// Empty-slot sentinel for dense cache entries: an all-ones bit pattern
/// (a quiet NaN with a payload PlanTime can never produce — plan times
/// are finite).
constexpr std::uint64_t kEmptyCacheSlot = ~std::uint64_t{0};

/// The DSS fast path. Per template it keeps a cache of estimated times
/// keyed by the placement restricted to the template's footprint; scoring a
/// candidate is T cache probes plus a fixed-order sum over the run
/// sequence. Cache values are deterministic functions of their key, so
/// concurrent fill-in (and any thread interleaving) cannot change a score.
class DssFastScorer : public FastScorer {
 public:
  DssFastScorer(const DssWorkloadModel* model, const BoxConfig* box,
                std::vector<double> io_scale,
                const std::vector<double>& query_caps_ms,
                double sla_tolerance)
      : model_(model), box_(box), io_scale_(std::move(io_scale)) {
    const auto& templates = model_->templates();
    const auto& sequence = model_->sequence();
    DOT_CHECK(query_caps_ms.size() == sequence.size())
        << "caps/sequence arity mismatch";

    // Per-template response-time threshold: the tightest cap over the
    // template's sequence entries, tolerance-adjusted exactly the way
    // MeetsTargets adjusts each entry's cap. Comparing one template time
    // against the min cap is equivalent to comparing every entry (entries
    // of the same template share one time), so verdicts match the full
    // path's entry-by-entry check.
    thresholds_.assign(templates.size(),
                       std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < sequence.size(); ++i) {
      double& thr = thresholds_[static_cast<size_t>(sequence[i])];
      thr = std::min(thr, query_caps_ms[i]);
    }
    for (double& thr : thresholds_) thr = thr * (1 + sla_tolerance);

    // Templates the sequence never runs are never planned (the full path
    // skips them too): empty footprint, no cache, time pinned to 0.
    used_.assign(templates.size(), false);
    seq_count_.assign(templates.size(), 0);
    for (int idx : sequence) {
      used_[static_cast<size_t>(idx)] = true;
      seq_count_[static_cast<size_t>(idx)] += 1;
    }

    const int num_objects = model_->schema().NumObjects();
    const int num_classes = box_->NumClasses();
    templates_by_object_.assign(static_cast<size_t>(num_objects), {});
    footprints_.resize(templates.size());
    for (size_t t = 0; t < templates.size(); ++t) {
      caches_.push_back(std::make_unique<TemplateCache>());
      if (!used_[t]) continue;
      footprints_[t] = model_->planner().QueryFootprint(templates[t]);
      for (int o : footprints_[t]) {
        templates_by_object_[static_cast<size_t>(o)].push_back(
            static_cast<int>(t));
      }
      // Small footprints get a dense lock-free cache: one slot per
      // placement of the footprint, indexed by the base-M key the probe
      // computes. Values are deterministic functions of the key, so a
      // racing first-wins fill stores the same bits either way.
      std::int64_t entries = 1;
      for (size_t i = 0; i < footprints_[t].size(); ++i) {
        entries *= num_classes;
        if (entries > kDenseCacheMaxEntries) break;
      }
      if (entries <= kDenseCacheMaxEntries) {
        TemplateCache& cache = *caches_.back();
        cache.dense_size = entries;
        cache.dense =
            std::make_unique<std::atomic<std::uint64_t>[]>(
                static_cast<size_t>(entries));
        for (std::int64_t i = 0; i < entries; ++i) {
          cache.dense[static_cast<size_t>(i)].store(
              kEmptyCacheSlot, std::memory_order_relaxed);
        }
      }
    }

    floors_.assign(templates.size(), 0.0);
    cond_floors_.resize(templates.size());

    num_classes_ = num_classes;
    fp_offsets_.reserve(templates.size() + 1);
    fp_offsets_.push_back(0);
    dense_slots_.reserve(templates.size());
    for (size_t t = 0; t < templates.size(); ++t) {
      fp_objects_.insert(fp_objects_.end(), footprints_[t].begin(),
                         footprints_[t].end());
      fp_offsets_.push_back(static_cast<int>(fp_objects_.size()));
      dense_slots_.push_back(caches_[t]->dense.get());
    }
  }

  /// Branch-and-bound floors, built on first demand (MakeBoundCursor /
  /// ObjectTimeSpreadMs) so plain DOT runs — which construct this scorer
  /// on every optimization — never pay the ~|templates|·|footprint|·M
  /// extra PlanQuery calls. call_once makes the first demand safe from
  /// concurrent subtree tasks.
  ///
  /// Each template is planned against a synthetic box that appends one
  /// extra storage class whose latency anchors are the pointwise minimum
  /// over the real classes. The planner picks the cheapest access path /
  /// join method per step against those optimistic devices, so the
  /// resulting time lower-bounds the template's time under *every* real
  /// placement (each candidate's device time only grows on a real device,
  /// and the per-step minimum is taken over the same candidate set). Two
  /// granularities:
  ///
  ///   * floors_[t]: every footprint object optimistic — the
  ///     unconditional floor;
  ///   * cond_floors_[t][i·M + c]: footprint object i pinned to its real
  ///     class c, the rest optimistic — a floor over every completion
  ///     that places that object there. The bound cursor keeps, per
  ///     incomplete template, the max of the conditionals of its assigned
  ///     objects (a max of admissible lower bounds is itself admissible),
  ///     which lets a response-time cap kill a subtree the moment one hot
  ///     object lands on a slow device.
  ///
  /// All floors are deflated by kBoundSafety because the chosen plan tree
  /// — and therefore the summation order — can differ from the real
  /// placement's.
  ///
  /// With a non-empty io_scale the reported time is the *scaled* time of
  /// the plan chosen on *unscaled* costs, which the synthetic-box argmin
  /// does not bound; the floors stay at 0 (still admissible, just loose).
  void EnsureFloors() const {
    std::call_once(floors_once_, [this] {
      if (!io_scale_.empty()) return;
      const auto& templates = model_->templates();
      const int num_objects = model_->schema().NumObjects();
      const int num_classes = box_->NumClasses();
      std::array<LatencyAnchors, kNumIoTypes> min_anchors{};
      for (int i = 0; i < kNumIoTypes; ++i) {
        const IoType type = static_cast<IoType>(i);
        LatencyAnchors a = box_->classes[0].device().anchors(type);
        for (const StorageClass& sc : box_->classes) {
          const LatencyAnchors& b = sc.device().anchors(type);
          a.at_c1_ms = std::min(a.at_c1_ms, b.at_c1_ms);
          a.at_c300_ms = std::min(a.at_c300_ms, b.at_c300_ms);
        }
        min_anchors[static_cast<size_t>(i)] = a;
      }
      BoxConfig bound_box;
      bound_box.name = "bnb-optimistic";
      bound_box.classes = box_->classes;
      // Capacity and price are irrelevant to planning (only the latency
      // anchors are read); 1.0 satisfies the positivity invariants.
      bound_box.classes.push_back(StorageClass(
          "bnb-optimistic", DeviceModel("bnb-optimistic", min_anchors),
          /*capacity_gb=*/1.0, /*price_cents_per_gb_hour=*/1.0));
      const Planner bound_planner(&model_->schema(), &bound_box,
                                  model_->planner().config());
      std::vector<int> probe(static_cast<size_t>(num_objects), num_classes);
      for (size_t t = 0; t < templates.size(); ++t) {
        if (!used_[t]) continue;
        floors_[t] = bound_planner.PlanQuery(templates[t], probe).time_ms *
                     (1 - kBoundSafety);
        const std::vector<int>& fp = footprints_[t];
        cond_floors_[t].assign(
            fp.size() * static_cast<size_t>(num_classes), 0.0);
        for (size_t i = 0; i < fp.size(); ++i) {
          for (int c = 0; c < num_classes; ++c) {
            probe[static_cast<size_t>(fp[i])] = c;
            cond_floors_[t][i * static_cast<size_t>(num_classes) +
                            static_cast<size_t>(c)] =
                bound_planner.PlanQuery(templates[t], probe).time_ms *
                (1 - kBoundSafety);
          }
          probe[static_cast<size_t>(fp[i])] = num_classes;
        }
      }
    });
  }

  QuickPerf Score(const std::vector<int>& placement) const override {
    // Per-thread scratch: sized once, then reused allocation-free.
    static thread_local std::vector<double> times;
    static thread_local std::string sig;
    times.resize(footprints_.size());
    CacheTally tally;
    for (size_t t = 0; t < footprints_.size(); ++t) {
      times[t] = TemplateTime(static_cast<int>(t), placement, sig, tally);
    }
    FlushTally(tally);
    return ScoreFromTimes(times.data());
  }

  std::unique_ptr<FastScorer::Cursor> MakeCursor() const override {
    return std::make_unique<Cursor>(this);
  }

  std::unique_ptr<FastScorer::BoundCursor> MakeBoundCursor() const override {
    EnsureFloors();
    return std::make_unique<BoundCursor>(this);
  }

  double ObjectTimeSpreadMs(int object) const override {
    EnsureFloors();
    // How much this object's placement can move the guaranteed elapsed
    // time: the spread of its conditional floors across classes, weighted
    // by each template's run-sequence multiplicity. Ordering hint only.
    double spread = 0.0;
    const int m = box_->NumClasses();
    for (int t : templates_by_object_[static_cast<size_t>(object)]) {
      const std::vector<double>& cond =
          cond_floors_[static_cast<size_t>(t)];
      if (cond.empty()) continue;
      const std::vector<int>& fp = footprints_[static_cast<size_t>(t)];
      for (size_t i = 0; i < fp.size(); ++i) {
        if (fp[i] != object) continue;
        double lo = cond[i * static_cast<size_t>(m)];
        double hi = lo;
        for (int c = 1; c < m; ++c) {
          const double v =
              cond[i * static_cast<size_t>(m) + static_cast<size_t>(c)];
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
        spread += seq_count_[static_cast<size_t>(t)] * (hi - lo);
        break;
      }
    }
    return spread;
  }

  long long cache_hits() const override {
    return hits_.load(std::memory_order_relaxed);
  }
  long long cache_misses() const override {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  /// Incremental walker: re-resolves only the templates whose footprint
  /// contains a touched object; every other template keeps its time.
  class Cursor : public FastScorer::Cursor {
   public:
    explicit Cursor(const DssFastScorer* scorer) : scorer_(scorer) {}

    void Reset(const std::vector<int>& placement) override {
      times_.resize(scorer_->footprints_.size());
      CacheTally tally;
      for (size_t t = 0; t < times_.size(); ++t) {
        times_[t] = scorer_->TemplateTime(static_cast<int>(t), placement,
                                          sig_, tally);
      }
      scorer_->FlushTally(tally);
    }

    void Touch(int object_id, const std::vector<int>& placement) override {
      CacheTally tally;
      for (int t :
           scorer_->templates_by_object_[static_cast<size_t>(object_id)]) {
        times_[static_cast<size_t>(t)] =
            scorer_->TemplateTime(t, placement, sig_, tally);
      }
      scorer_->FlushTally(tally);
    }

    QuickPerf Score(const std::vector<int>& placement) const override {
      (void)placement;  // the per-template times already reflect it
      return scorer_->ScoreFromTimes(times_.data());
    }

   private:
    const DssFastScorer* scorer_;
    std::vector<double> times_;
    std::string sig_;
  };

  /// Partial-placement walker for the branch-and-bound search: a template
  /// contributes the tightest applicable floor — the max of the
  /// conditional floors of its already-assigned objects — until every
  /// footprint object is assigned, then its exact (cached) time. At a leaf
  /// every template is exact and Optimistic() is ScoreFromTimes over
  /// exactly the values Score would compute — bit-identical by
  /// construction.
  class BoundCursor : public FastScorer::BoundCursor {
   public:
    explicit BoundCursor(const DssFastScorer* scorer) : scorer_(scorer) {
      Reset();
    }

    void Reset() override {
      times_ = scorer_->floors_;
      unassigned_.resize(scorer_->footprints_.size());
      for (size_t t = 0; t < unassigned_.size(); ++t) {
        unassigned_[t] = static_cast<int>(scorer_->footprints_[t].size());
      }
      cls_.assign(scorer_->templates_by_object_.size(), -1);
    }

    void Assign(int object_id, const std::vector<int>& placement) override {
      const int c = placement[static_cast<size_t>(object_id)];
      cls_[static_cast<size_t>(object_id)] = c;
      CacheTally tally;
      for (int t :
           scorer_->templates_by_object_[static_cast<size_t>(object_id)]) {
        if (--unassigned_[static_cast<size_t>(t)] == 0) {
          times_[static_cast<size_t>(t)] =
              scorer_->TemplateTime(t, placement, sig_, tally);
        } else {
          // Still incomplete: raise the floor with this object's
          // conditional (a running max is exact on the LIFO path because
          // Unassign recomputes from scratch).
          times_[static_cast<size_t>(t)] =
              std::max(times_[static_cast<size_t>(t)],
                       CondFloor(t, object_id, c));
        }
      }
      scorer_->FlushTally(tally);
    }

    void Unassign(int object_id) override {
      cls_[static_cast<size_t>(object_id)] = -1;
      for (int t :
           scorer_->templates_by_object_[static_cast<size_t>(object_id)]) {
        unassigned_[static_cast<size_t>(t)] += 1;
        times_[static_cast<size_t>(t)] = IncompleteFloor(t);
      }
    }

    QuickPerf Optimistic(const std::vector<int>& placement) const override {
      (void)placement;  // the per-template times already reflect it
      return scorer_->ScoreFromTimes(times_.data());
    }

   private:
    double CondFloor(int t, int object_id, int c) const {
      const std::vector<double>& cond =
          scorer_->cond_floors_[static_cast<size_t>(t)];
      if (cond.empty()) return 0.0;  // io_scale: floors disabled
      const std::vector<int>& fp =
          scorer_->footprints_[static_cast<size_t>(t)];
      const int m = scorer_->box_->NumClasses();
      for (size_t i = 0; i < fp.size(); ++i) {
        if (fp[i] == object_id) {
          return cond[i * static_cast<size_t>(m) + static_cast<size_t>(c)];
        }
      }
      return 0.0;
    }

    double IncompleteFloor(int t) const {
      double lb = scorer_->floors_[static_cast<size_t>(t)];
      const std::vector<double>& cond =
          scorer_->cond_floors_[static_cast<size_t>(t)];
      if (cond.empty()) return lb;
      const std::vector<int>& fp =
          scorer_->footprints_[static_cast<size_t>(t)];
      const int m = scorer_->box_->NumClasses();
      for (size_t i = 0; i < fp.size(); ++i) {
        const int c = cls_[static_cast<size_t>(fp[i])];
        if (c >= 0) {
          lb = std::max(
              lb, cond[i * static_cast<size_t>(m) + static_cast<size_t>(c)]);
        }
      }
      return lb;
    }

    const DssFastScorer* scorer_;
    std::vector<double> times_;
    std::vector<int> unassigned_;
    std::vector<int> cls_;  ///< assigned class per object, -1 = unassigned
    std::string sig_;
  };

  struct TemplateCache {
    /// Dense path (footprints with at most kDenseCacheMaxEntries
    /// placements): one atomic double-as-bits slot per base-M key,
    /// kEmptyCacheSlot when unfilled. Lock-free: a probe is one relaxed
    /// load, a fill one relaxed store of a value any racing filler would
    /// compute identically.
    std::int64_t dense_size = 0;  ///< 0 = use the hashed map below
    std::unique_ptr<std::atomic<std::uint64_t>[]> dense;

    mutable std::shared_mutex mu;
    std::unordered_map<std::string, double> by_signature;
  };

  /// Per-call hit/miss tallies: one atomic flush per scoring call instead
  /// of one RMW per probe (the probes themselves are a handful of ns, so a
  /// shared-counter fetch_add per probe dominated the dense path). Counts
  /// stay exact, so the DotResult cache counters are unchanged.
  struct CacheTally {
    long long hits = 0;
    long long misses = 0;
  };

  void FlushTally(const CacheTally& tally) const {
    if (tally.hits > 0) {
      hits_.fetch_add(tally.hits, std::memory_order_relaxed);
    }
    if (tally.misses > 0) {
      misses_.fetch_add(tally.misses, std::memory_order_relaxed);
    }
  }

  /// Estimated time of template `t`, via the cache. `sig` is caller scratch
  /// for the hashed fallback (small-string optimized: building a key
  /// allocates nothing for footprints up to ~22 objects).
  double TemplateTime(int t, const std::vector<int>& placement,
                      std::string& sig, CacheTally& tally) const {
    // Flat-array fast path: an unused template has an empty footprint
    // range (and time 0); a dense-cached one costs the base-M key loop
    // plus one relaxed load.
    const size_t ti = static_cast<size_t>(t);
    const int begin = fp_offsets_[ti];
    const int end = fp_offsets_[ti + 1];
    if (begin == end) return 0.0;  // never runs in the sequence
    if (std::atomic<std::uint64_t>* dense = dense_slots_[ti]) {
      const int m = num_classes_;
      const int* p = placement.data();
      std::int64_t key = 0;
      for (int i = begin; i < end; ++i) {
        key = key * m + p[fp_objects_[static_cast<size_t>(i)]];
      }
      std::atomic<std::uint64_t>& slot = dense[static_cast<size_t>(key)];
      const std::uint64_t bits = slot.load(std::memory_order_relaxed);
      if (bits != kEmptyCacheSlot) {
        tally.hits += 1;
        double time_ms;
        std::memcpy(&time_ms, &bits, sizeof(time_ms));
        return time_ms;
      }
      const double time_ms = PlanTime(t, placement);
      tally.misses += 1;
      std::uint64_t out;
      std::memcpy(&out, &time_ms, sizeof(out));
      slot.store(out, std::memory_order_relaxed);
      return time_ms;
    }
    const std::vector<int>& footprint = footprints_[ti];
    TemplateCache& cache = *caches_[ti];
    sig.resize(footprint.size());
    for (size_t i = 0; i < footprint.size(); ++i) {
      sig[i] = static_cast<char>(
          placement[static_cast<size_t>(footprint[i])]);
    }
    {
      std::shared_lock<std::shared_mutex> lock(cache.mu);
      auto it = cache.by_signature.find(sig);
      if (it != cache.by_signature.end()) {
        tally.hits += 1;
        return it->second;
      }
    }
    // Miss: plan outside the lock (planning is the expensive part), then
    // insert. A concurrent planner of the same key computed the same value,
    // so first-wins insertion is safe.
    const double time_ms = PlanTime(t, placement);
    tally.misses += 1;
    std::unique_lock<std::shared_mutex> lock(cache.mu);
    return cache.by_signature.emplace(sig, time_ms).first->second;
  }

  /// Uncached time: exactly the per-template arithmetic of
  /// DssWorkloadModel::EstimateWithIoScale.
  double PlanTime(int t, const std::vector<int>& placement) const {
    Plan plan = model_->PlanTemplate(t, placement);
    double time_ms = plan.time_ms;
    if (!io_scale_.empty()) {
      ObjectIoMap scaled = std::move(plan.io_by_object);
      for (size_t o = 0; o < scaled.size(); ++o) scaled[o] *= io_scale_[o];
      time_ms = IoTimeShareMs(scaled, placement, *box_,
                              model_->concurrency()) +
                plan.cpu_ms;
    }
    return time_ms;
  }

  /// The sequence walk and SLA verdict, shared by Score and the cursor.
  QuickPerf ScoreFromTimes(const double* time_by_template) const {
    QuickPerf qp;
    qp.sla_ok = true;
    for (size_t t = 0; t < thresholds_.size(); ++t) {
      if (time_by_template[t] > thresholds_[t]) {
        qp.sla_ok = false;
        break;
      }
    }
    // Pinned-schedule gather over the run sequence — the same schedule
    // (and the same per-template addends) the full estimate sums with.
    const std::vector<int>& sequence = model_->sequence();
    qp.elapsed_ms = GatherSum(time_by_template, sequence.data(),
                              static_cast<int>(sequence.size()));
    if (qp.elapsed_ms > 0) {
      qp.tasks_per_hour = static_cast<double>(sequence.size()) /
                          (qp.elapsed_ms / kMsPerHour);
    }
    return qp;
  }

  const DssWorkloadModel* model_;
  const BoxConfig* box_;
  std::vector<double> io_scale_;
  std::vector<bool> used_;               ///< template appears in sequence
  std::vector<int> seq_count_;           ///< occurrences in the sequence
  std::vector<double> thresholds_;       ///< per template, +inf if unused
  std::vector<std::vector<int>> footprints_;  ///< empty if unused
  std::vector<std::vector<int>> templates_by_object_;
  /// Lazily built by EnsureFloors (mutable + once_flag: construction cost
  /// is confined to runs that actually branch-and-bound).
  mutable std::once_flag floors_once_;
  mutable std::vector<double> floors_;  ///< deflated per-template bounds
  /// Deflated conditional floors, [t][footprint_pos · M + class]; empty
  /// per template when floors are disabled (io_scale) or the template is
  /// unused.
  mutable std::vector<std::vector<double>> cond_floors_;
  std::vector<std::unique_ptr<TemplateCache>> caches_;
  /// Flat probe-side mirrors of the per-template state, built once at the
  /// end of the constructor. A dense-cache probe touches only these three
  /// arrays plus the slot itself — no unique_ptr or nested-vector chasing
  /// in the hot loop.
  int num_classes_ = 0;
  std::vector<int> fp_offsets_;  ///< CSR offsets into fp_objects_, T+1
  std::vector<int> fp_objects_;  ///< concatenated footprints (empty if unused)
  std::vector<std::atomic<std::uint64_t>*> dense_slots_;  ///< null = hashed
  mutable std::atomic<long long> hits_{0};
  mutable std::atomic<long long> misses_{0};
};

}  // namespace

DssWorkloadModel::DssWorkloadModel(std::string name, const Schema* schema,
                                   const BoxConfig* box,
                                   std::vector<QuerySpec> templates,
                                   std::vector<int> sequence,
                                   PlannerConfig planner_config)
    : name_(std::move(name)),
      schema_(schema),
      box_(box),
      templates_(std::move(templates)),
      sequence_(std::move(sequence)),
      seq_count_(templates_.size(), 0),
      planner_(schema, box, planner_config) {
  DOT_CHECK(!templates_.empty()) << "DSS workload needs query templates";
  DOT_CHECK(!sequence_.empty()) << "DSS workload needs a run sequence";
  for (int idx : sequence_) {
    DOT_CHECK(idx >= 0 && idx < static_cast<int>(templates_.size()))
        << "sequence references unknown template " << idx;
    seq_count_[static_cast<size_t>(idx)] += 1;
  }
}

Plan DssWorkloadModel::PlanTemplate(int template_idx,
                                    const std::vector<int>& placement) const {
  DOT_CHECK(template_idx >= 0 &&
            template_idx < static_cast<int>(templates_.size()));
  return planner_.PlanQuery(templates_[static_cast<size_t>(template_idx)],
                            placement);
}

PerfEstimate DssWorkloadModel::Estimate(
    const std::vector<int>& placement) const {
  return EstimateWithIoScale(placement, {});
}

PerfEstimate DssWorkloadModel::EstimateWithIoScale(
    const std::vector<int>& placement, const std::vector<double>& io_scale,
    bool need_io_by_object) const {
  DOT_CHECK(io_scale.empty() ||
            static_cast<int>(io_scale.size()) == schema_->NumObjects())
      << "io_scale arity mismatch";
  PerfEstimate est;
  est.unit_times_ms.reserve(sequence_.size());

  // Plan each distinct template once (skipping templates the sequence never
  // runs); replicate per the run sequence.
  std::vector<Plan> plans;
  std::vector<double> plan_times;
  plans.reserve(templates_.size());
  plan_times.reserve(templates_.size());
  for (size_t t = 0; t < templates_.size(); ++t) {
    if (seq_count_[t] == 0) {
      plans.emplace_back();
      plan_times.push_back(0.0);
      continue;
    }
    Plan plan = planner_.PlanQuery(templates_[t], placement);
    double time_ms = plan.time_ms;
    if (!io_scale.empty()) {
      ObjectIoMap scaled = plan.io_by_object;
      for (size_t o = 0; o < scaled.size(); ++o) scaled[o] *= io_scale[o];
      time_ms =
          IoTimeShareMs(scaled, placement, *box_, concurrency()) +
          plan.cpu_ms;
      plan.io_by_object = std::move(scaled);
    }
    plan_times.push_back(time_ms);
    plans.push_back(std::move(plan));
  }

  for (int idx : sequence_) {
    est.unit_times_ms.push_back(plan_times[static_cast<size_t>(idx)]);
  }
  // Same gather (addends and schedule) as the fast scorer's ScoreFromTimes.
  est.elapsed_ms = GatherSum(plan_times.data(), sequence_.data(),
                             static_cast<int>(sequence_.size()));

  // Each distinct plan's I/O and join census enter `count` times; multiply
  // once instead of re-accumulating per sequence entry.
  if (need_io_by_object) {
    est.io_by_object.assign(static_cast<size_t>(schema_->NumObjects()),
                            IoVector{});
  }
  for (size_t t = 0; t < templates_.size(); ++t) {
    const int count = seq_count_[t];
    if (count == 0) continue;
    est.num_joins += count * plans[t].num_joins;
    est.num_index_nl_joins += count * plans[t].num_index_nl_joins;
    if (need_io_by_object) {
      AccumulateScaledIo(est.io_by_object, plans[t].io_by_object, count);
    }
  }

  if (est.elapsed_ms > 0) {
    est.tasks_per_hour =
        static_cast<double>(sequence_.size()) / (est.elapsed_ms / kMsPerHour);
  }
  return est;
}

std::unique_ptr<FastScorer> DssWorkloadModel::MakeFastScorer(
    const std::vector<double>& io_scale,
    const std::vector<double>& query_caps_ms, double min_tpmc,
    double sla_tolerance) const {
  (void)min_tpmc;  // response-time SLA: only the per-entry caps apply
  DOT_CHECK(io_scale.empty() ||
            static_cast<int>(io_scale.size()) == schema_->NumObjects())
      << "io_scale arity mismatch";
  return std::make_unique<DssFastScorer>(this, box_, io_scale, query_caps_ms,
                                         sla_tolerance);
}

}  // namespace dot
