#include "workload/dss_workload.h"

#include "common/check.h"
#include "common/units.h"

namespace dot {

DssWorkloadModel::DssWorkloadModel(std::string name, const Schema* schema,
                                   const BoxConfig* box,
                                   std::vector<QuerySpec> templates,
                                   std::vector<int> sequence,
                                   PlannerConfig planner_config)
    : name_(std::move(name)),
      schema_(schema),
      box_(box),
      templates_(std::move(templates)),
      sequence_(std::move(sequence)),
      planner_(schema, box, planner_config) {
  DOT_CHECK(!templates_.empty()) << "DSS workload needs query templates";
  DOT_CHECK(!sequence_.empty()) << "DSS workload needs a run sequence";
  for (int idx : sequence_) {
    DOT_CHECK(idx >= 0 && idx < static_cast<int>(templates_.size()))
        << "sequence references unknown template " << idx;
  }
}

Plan DssWorkloadModel::PlanTemplate(int template_idx,
                                    const std::vector<int>& placement) const {
  DOT_CHECK(template_idx >= 0 &&
            template_idx < static_cast<int>(templates_.size()));
  return planner_.PlanQuery(templates_[static_cast<size_t>(template_idx)],
                            placement);
}

PerfEstimate DssWorkloadModel::Estimate(
    const std::vector<int>& placement) const {
  return EstimateWithIoScale(placement, {});
}

PerfEstimate DssWorkloadModel::EstimateWithIoScale(
    const std::vector<int>& placement,
    const std::vector<double>& io_scale) const {
  DOT_CHECK(io_scale.empty() ||
            static_cast<int>(io_scale.size()) == schema_->NumObjects())
      << "io_scale arity mismatch";
  PerfEstimate est;
  est.io_by_object.assign(static_cast<size_t>(schema_->NumObjects()),
                          IoVector{});

  // Plan each distinct template once; replicate per the run sequence.
  std::vector<Plan> plans;
  std::vector<double> plan_times;
  plans.reserve(templates_.size());
  for (const QuerySpec& spec : templates_) {
    Plan plan = planner_.PlanQuery(spec, placement);
    double time_ms = plan.time_ms;
    if (!io_scale.empty()) {
      ObjectIoMap scaled = plan.io_by_object;
      for (size_t o = 0; o < scaled.size(); ++o) scaled[o] *= io_scale[o];
      time_ms =
          IoTimeShareMs(scaled, placement, *box_, concurrency()) +
          plan.cpu_ms;
      plan.io_by_object = std::move(scaled);
    }
    plan_times.push_back(time_ms);
    plans.push_back(std::move(plan));
  }

  for (int idx : sequence_) {
    const Plan& plan = plans[static_cast<size_t>(idx)];
    const double time_ms = plan_times[static_cast<size_t>(idx)];
    est.unit_times_ms.push_back(time_ms);
    est.elapsed_ms += time_ms;
    AccumulateIo(est.io_by_object, plan.io_by_object);
    est.num_joins += plan.num_joins;
    est.num_index_nl_joins += plan.num_index_nl_joins;
  }
  if (est.elapsed_ms > 0) {
    est.tasks_per_hour =
        static_cast<double>(sequence_.size()) / (est.elapsed_ms / kMsPerHour);
  }
  return est;
}

}  // namespace dot
