#include "workload/tpch_queries.h"

#include "common/check.h"

namespace dot {

namespace {

/// Shorthand builders to keep the 22 templates readable.
RelationAccess Rel(const char* table, double selectivity,
                   bool sargable = false, double clustering = 0.0) {
  RelationAccess ra;
  ra.table = table;
  ra.selectivity = selectivity;
  ra.index_sargable = sargable;
  ra.clustering = clustering;
  return ra;
}

JoinStep Join(double matches_per_outer, bool inner_indexable) {
  JoinStep j;
  j.matches_per_outer = matches_per_outer;
  j.inner_indexable = inner_indexable;
  return j;
}

QuerySpec Query(const char* name, std::vector<RelationAccess> relations,
                std::vector<JoinStep> joins, bool has_sort,
                double cpu_weight = 1.0) {
  QuerySpec q;
  q.name = name;
  q.relations = std::move(relations);
  q.joins = std::move(joins);
  q.has_sort = has_sort;
  q.cpu_weight = cpu_weight;
  return q;
}

}  // namespace

std::vector<QuerySpec> MakeTpchTemplates() {
  std::vector<QuerySpec> qs;

  // Q1: pricing summary report. One giant lineitem scan (l_shipdate <=
  // cutoff keeps ~98%), aggregation-heavy.
  qs.push_back(Query("Q1", {Rel("lineitem", 0.98)}, {}, false, 3.0));

  // Q2: minimum-cost supplier. Selective part filter (size + type + the
  // correlated min-cost subquery leave ~0.1% of parts), then PK probes
  // into partsupp (4 suppliers/part) and supplier, plus the nation/region
  // dimension lookups. The paper singles this query out as RR-heavy
  // (§4.4.1): its best plan probes partsupp through the index, which is
  // why DOT pins partsupp and partsupp_pkey to the H-SSD.
  qs.push_back(Query(
      "Q2",
      {Rel("part", 0.001), Rel("partsupp", 1.0), Rel("supplier", 1.0),
       Rel("nation", 1.0), Rel("region", 0.2)},
      {Join(4.0, true), Join(1.0, true), Join(1.0, true), Join(0.2, true)},
      true));

  // Q3: shipping priority. Quarter+ of orders by date, customer segment
  // filter folded into the join, top-10 sort.
  qs.push_back(Query(
      "Q3", {Rel("orders", 0.48), Rel("customer", 0.2), Rel("lineitem", 1.0)},
      {Join(0.2, true), Join(2.2, true)}, true));

  // Q4: order priority checking. One quarter of orders, EXISTS probe into
  // lineitem.
  qs.push_back(Query("Q4", {Rel("orders", 0.038), Rel("lineitem", 1.0)},
                     {Join(2.5, true)}, false));

  // Q5: local supplier volume. One year of orders joined out to customer,
  // lineitem, supplier and the region dimensions.
  qs.push_back(Query(
      "Q5",
      {Rel("orders", 0.152), Rel("customer", 1.0), Rel("lineitem", 1.0),
       Rel("supplier", 1.0), Rel("nation", 1.0), Rel("region", 0.2)},
      {Join(1.0, true), Join(4.0, true), Join(1.0, true), Join(1.0, true),
       Join(0.2, true)},
      true));

  // Q6: revenue-change forecast. Narrow lineitem range scan (date x
  // discount x quantity ~1.9%), no joins; predicate not key-sargable.
  qs.push_back(Query("Q6", {Rel("lineitem", 0.019)}, {}, false));

  // Q7: volume shipping between two nations. Two years of lineitem,
  // dimension probes; nation pair filter ~0.32%.
  qs.push_back(Query(
      "Q7",
      {Rel("lineitem", 0.305), Rel("orders", 1.0), Rel("customer", 1.0),
       Rel("supplier", 1.0), Rel("nation", 0.08)},
      {Join(1.0, true), Join(1.0, true), Join(1.0, true), Join(0.08, true)},
      true));

  // Q8: national market share. Very selective part type (~0.13%), fanout 30
  // into lineitem (no index on l_partkey, so a hash join over the scan).
  qs.push_back(Query(
      "Q8",
      {Rel("part", 0.0013), Rel("lineitem", 1.0), Rel("orders", 0.305),
       Rel("customer", 1.0), Rel("supplier", 1.0), Rel("nation", 1.0),
       Rel("region", 0.2)},
      {Join(30.0, false), Join(0.305, true), Join(1.0, true), Join(1.0, true),
       Join(1.0, true), Join(0.2, true)},
      false, 1.5));

  // Q9: product-type profit. part name LIKE (~5.5%), big lineitem hash
  // join, partsupp composite-PK probes.
  qs.push_back(Query(
      "Q9",
      {Rel("part", 0.055), Rel("lineitem", 1.0), Rel("supplier", 1.0),
       Rel("partsupp", 1.0), Rel("orders", 1.0), Rel("nation", 1.0)},
      {Join(30.0, false), Join(1.0, true), Join(1.0, true), Join(1.0, true),
       Join(1.0, true)},
      true, 1.5));

  // Q10: returned items. One quarter of orders, returned lineitems (~25%
  // of the order's items), customer/nation lookups, top-20 sort.
  qs.push_back(Query(
      "Q10",
      {Rel("orders", 0.038), Rel("lineitem", 1.0), Rel("customer", 1.0),
       Rel("nation", 1.0)},
      {Join(1.0, true), Join(1.0, true), Join(1.0, true)}, true));

  // Q11: important stock identification. One nation's suppliers (4%),
  // fanout 80 into partsupp (no index on ps_suppkey prefix -> hash join),
  // GROUP BY + HAVING over the result.
  qs.push_back(Query("Q11", {Rel("supplier", 0.04), Rel("partsupp", 1.0)},
                     {Join(80.0, false)}, true, 2.0));

  // Q12: shipping-mode priority. Narrow lineitem filter (two ship modes,
  // one receipt year, ~0.52%), probe into orders.
  qs.push_back(Query("Q12", {Rel("lineitem", 0.0052), Rel("orders", 1.0)},
                     {Join(1.0, true)}, false));

  // Q13: customer distribution. Full customer x orders (no index on
  // o_custkey), count-distinct heavy.
  qs.push_back(Query("Q13", {Rel("customer", 1.0), Rel("orders", 1.0)},
                     {Join(10.0, false)}, true, 2.0));

  // Q14: promotion effect. One month of lineitem (~1.26%), part probes.
  qs.push_back(Query("Q14", {Rel("lineitem", 0.0126), Rel("part", 1.0)},
                     {Join(1.0, true)}, false));

  // Q15: top supplier. One quarter of lineitem, supplier probes.
  qs.push_back(Query("Q15", {Rel("lineitem", 0.038), Rel("supplier", 1.0)},
                     {Join(1.0, true)}, true));

  // Q16: parts/supplier relationship. Full partsupp scan, anti-filters on
  // part (brand/type/size keep ~9.3%).
  qs.push_back(Query("Q16", {Rel("partsupp", 1.0), Rel("part", 1.0)},
                     {Join(0.093, true)}, true, 2.0));

  // Q17: small-quantity-order revenue. Brand+container (~0.1% of parts),
  // fanout 30 into lineitem with a per-part AVG subquery.
  qs.push_back(Query("Q17", {Rel("part", 0.001), Rel("lineitem", 1.0)},
                     {Join(30.0, false)}, false, 1.5));

  // Q18: large-volume customers. GROUP BY over all of lineitem via orders,
  // customer probes.
  qs.push_back(Query(
      "Q18",
      {Rel("orders", 1.0), Rel("lineitem", 1.0), Rel("customer", 1.0)},
      {Join(4.0, true), Join(1.0, true)}, true, 2.0));

  // Q19: discounted revenue. Disjunctive quantity/container predicates on
  // lineitem (~0.2%), part probes.
  qs.push_back(Query("Q19", {Rel("lineitem", 0.002), Rel("part", 1.0)},
                     {Join(1.0, true)}, false));

  // Q20: potential part promotion. part name prefix (~5%), partsupp
  // composite-PK probes, supplier/nation lookups.
  qs.push_back(Query(
      "Q20",
      {Rel("part", 0.05), Rel("partsupp", 1.0), Rel("supplier", 1.0),
       Rel("nation", 0.04)},
      {Join(4.0, true), Join(1.0, true), Join(0.04, true)}, true));

  // Q21: suppliers who kept orders waiting. One nation's suppliers, fanout
  // 600 into lineitem (hash join), order-status probes.
  qs.push_back(Query(
      "Q21",
      {Rel("supplier", 0.04), Rel("lineitem", 1.0), Rel("orders", 0.49),
       Rel("nation", 0.04)},
      {Join(600.0, false), Join(0.49, true), Join(0.04, true)}, true, 2.0));

  // Q22: global sales opportunity. Country-code customers without orders
  // (anti join over o_custkey, unindexed).
  qs.push_back(Query("Q22", {Rel("customer", 0.13), Rel("orders", 1.0)},
                     {Join(10.0, false)}, true));

  DOT_CHECK(qs.size() == 22);
  return qs;
}

std::vector<QuerySpec> MakeModifiedTpchTemplates() {
  // The Operational-Data-Store variants of Q2/Q5/Q9/Q11/Q17 from [10]: each
  // adds key-range predicates (on part, order and/or supplier keys) to the
  // WHERE clause so that only a small key range qualifies. The driving
  // filters become PK-sargable and the plans become probe chains when the
  // random-read budget allows (§4.4.2).
  std::vector<QuerySpec> qs;

  // MQ2: min-cost supplier over a narrow partkey range.
  qs.push_back(Query(
      "MQ2",
      {Rel("part", 3e-4, /*sargable=*/true), Rel("partsupp", 1.0),
       Rel("supplier", 1.0), Rel("nation", 1.0), Rel("region", 0.2)},
      {Join(4.0, true), Join(1.0, true), Join(1.0, true), Join(0.2, true)},
      true));

  // MQ5: local supplier volume for a narrow orderkey range.
  qs.push_back(Query(
      "MQ5",
      {Rel("orders", 2e-3, /*sargable=*/true), Rel("customer", 1.0),
       Rel("lineitem", 1.0), Rel("supplier", 1.0), Rel("nation", 1.0),
       Rel("region", 0.2)},
      {Join(1.0, true), Join(4.0, true), Join(1.0, true), Join(1.0, true),
       Join(0.2, true)},
      true));

  // MQ9: product-type profit over a narrow orderkey range, probing out to
  // lineitem, part, supplier and partsupp.
  qs.push_back(Query(
      "MQ9",
      {Rel("orders", 2e-3, /*sargable=*/true), Rel("lineitem", 1.0),
       Rel("part", 1.0), Rel("supplier", 1.0), Rel("partsupp", 1.0),
       Rel("nation", 1.0)},
      {Join(4.0, true), Join(1.0, true), Join(1.0, true), Join(1.0, true),
       Join(1.0, true)},
      true, 1.5));

  // MQ11: important stock over a partkey range of partsupp.
  qs.push_back(Query(
      "MQ11",
      {Rel("partsupp", 1e-3, /*sargable=*/true), Rel("part", 1.0),
       Rel("supplier", 1.0)},
      {Join(1.0, true), Join(1.0, true)}, true, 2.0));

  // MQ17: small-quantity revenue for a narrow partkey range; the lineitem
  // side keeps its fanout-30 unindexed join (l_partkey has no index), so
  // this stays a scan-heavy query whose part side is probe-friendly.
  qs.push_back(Query(
      "MQ17",
      {Rel("part", 2e-4, /*sargable=*/true), Rel("lineitem", 1.0)},
      {Join(30.0, false)}, false, 1.5));

  DOT_CHECK(qs.size() == 5);
  return qs;
}

std::vector<QuerySpec> MakeTpchSubsetTemplates() {
  std::vector<QuerySpec> all = MakeTpchTemplates();
  const std::vector<int> keep = {0, 2, 3, 5, 11, 12, 13, 16, 17, 18, 21};
  std::vector<QuerySpec> out;
  for (int idx : keep) out.push_back(all[static_cast<size_t>(idx)]);
  DOT_CHECK(out.size() == 11);
  return out;
}

std::vector<int> RepeatSequence(int n_templates, int reps) {
  DOT_CHECK(n_templates > 0 && reps > 0);
  std::vector<int> seq;
  seq.reserve(static_cast<size_t>(n_templates * reps));
  for (int t = 0; t < n_templates; ++t) {
    for (int r = 0; r < reps; ++r) seq.push_back(t);
  }
  return seq;
}

}  // namespace dot
