#include "workload/htap_workload.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "catalog/chbench.h"
#include "common/check.h"
#include "common/simd_dispatch.h"
#include "common/units.h"
#include "query/object_io.h"
#include "workload/tpch_queries.h"

namespace dot {

namespace {

/// The HTAP fast path: the OLTP side's device-time tables, the DSS side's
/// plan-cache scorer (with its per-entry caps disabled — the HTAP SLA caps
/// the sequence *total*), and the model's interference tables, combined by
/// exactly the arithmetic HtapWorkload::EstimateWithIoScale runs. The
/// BoundCursor sums the two sides' admissible lower bounds plus the
/// interference minima — a sum of admissible bounds is admissible — and is
/// exact (bit-identical to Score) at fully assigned placements.
class HtapFastScorer : public FastScorer {
 public:
  HtapFastScorer(const HtapWorkload* model, const BoxConfig* box,
                 const std::vector<double>& io_scale,
                 const std::vector<double>& query_caps_ms,
                 double sla_tolerance)
      : model_(model),
        tables_(model->oltp(), *box, io_scale),
        measurement_period_ms_(model->oltp().measurement_period_ms()) {
    DOT_CHECK(query_caps_ms.size() == 2)
        << "HTAP folds exactly two caps (OLTP latency, DSS completion), got "
        << query_caps_ms.size();
    // Exactly the comparison MeetsTargets makes per unit-time entry.
    thr_oltp_ = query_caps_ms[static_cast<size_t>(kHtapOltpEntry)] *
                (1 + sla_tolerance);
    thr_dss_ = query_caps_ms[static_cast<size_t>(kHtapDssEntry)] *
               (1 + sla_tolerance);
    const std::vector<double> no_caps(
        model->dss().sequence().size(),
        std::numeric_limits<double>::infinity());
    dss_scorer_ =
        model->dss().MakeFastScorer(io_scale, no_caps, 0.0, sla_tolerance);
    DOT_CHECK(dss_scorer_ != nullptr);

    // Interference bound tables: per side, the guaranteed minimum over
    // classes (summed over shared objects into the base) and the dense
    // per-(object, class) excess above it.
    const int n = tables_.num_objects();
    const int m = tables_.num_classes();
    if_excess_oltp_.assign(
        static_cast<size_t>(n) * static_cast<size_t>(m), 0.0);
    if_excess_dss_.assign(
        static_cast<size_t>(n) * static_cast<size_t>(m), 0.0);
    for (int r = 0; r < model->num_interference_rows(); ++r) {
      double oltp_min = model->interference_oltp_ms(r, 0);
      double dss_min = model->interference_dss_ms(r, 0);
      for (int c = 0; c < m; ++c) {
        oltp_min = std::min(oltp_min, model->interference_oltp_ms(r, c));
        dss_min = std::min(dss_min, model->interference_dss_ms(r, c));
      }
      if_base_oltp_ += oltp_min;
      if_base_dss_ += dss_min;
      const size_t base =
          static_cast<size_t>(model->interference_object(r)) *
          static_cast<size_t>(m);
      for (int c = 0; c < m; ++c) {
        if_excess_oltp_[base + static_cast<size_t>(c)] =
            model->interference_oltp_ms(r, c) - oltp_min;
        if_excess_dss_[base + static_cast<size_t>(c)] =
            model->interference_dss_ms(r, c) - dss_min;
      }
    }
  }

  QuickPerf Score(const std::vector<int>& placement) const override {
    const double mean_latency_ms = tables_.MeanLatencyMs(placement);
    DOT_CHECK(mean_latency_ms > 0);
    const double oltp_time_ms =
        mean_latency_ms + model_->OltpInterferenceMs(placement);
    const OltpWorkloadModel::Throughput tp =
        model_->oltp().ThroughputFromMeanLatency(oltp_time_ms);
    const QuickPerf dss_qp = dss_scorer_->Score(placement);
    const double dss_time_ms =
        dss_qp.elapsed_ms + model_->DssInterferenceMs(placement);
    QuickPerf qp;
    qp.elapsed_ms = measurement_period_ms_;
    qp.tpmc = tp.tpmc;
    qp.tasks_per_hour =
        tp.tasks_per_hour + model_->AnalyticsTasksPerHour(dss_time_ms);
    qp.sla_ok = !(oltp_time_ms > thr_oltp_) && !(dss_time_ms > thr_dss_);
    return qp;
  }

  /// Partial-placement bound: the OLTP side's base+excess latency stack
  /// (interference minima folded in), the DSS side's floor cursor, and the
  /// DSS interference stack. Snapshot stacks keep every value a pure
  /// function of the assignment path, as in the pure-OLTP cursor.
  class BoundCursor : public FastScorer::BoundCursor {
   public:
    explicit BoundCursor(const HtapFastScorer* scorer)
        : scorer_(scorer),
          dss_cursor_(scorer->dss_scorer_->MakeBoundCursor()),
          oltp_stack_(
              static_cast<size_t>(scorer->tables_.num_objects()) + 1, 0.0),
          dssif_stack_(
              static_cast<size_t>(scorer->tables_.num_objects()) + 1, 0.0) {
      DOT_CHECK(dss_cursor_ != nullptr);
      Reset();
    }

    void Reset() override {
      depth_ = 0;
      oltp_stack_[0] =
          scorer_->tables_.base_mean_latency_ms() + scorer_->if_base_oltp_;
      dssif_stack_[0] = scorer_->if_base_dss_;
      dss_cursor_->Reset();
    }

    void Assign(int object_id, const std::vector<int>& placement) override {
      const int cls = placement[static_cast<size_t>(object_id)];
      const size_t idx =
          static_cast<size_t>(object_id) *
              static_cast<size_t>(scorer_->tables_.num_classes()) +
          static_cast<size_t>(cls);
      oltp_stack_[static_cast<size_t>(depth_) + 1] =
          oltp_stack_[static_cast<size_t>(depth_)] +
          scorer_->tables_.Excess(object_id, cls) +
          scorer_->if_excess_oltp_[idx];
      dssif_stack_[static_cast<size_t>(depth_) + 1] =
          dssif_stack_[static_cast<size_t>(depth_)] +
          scorer_->if_excess_dss_[idx];
      dss_cursor_->Assign(object_id, placement);
      ++depth_;
    }

    void Unassign(int object_id) override {
      dss_cursor_->Unassign(object_id);
      --depth_;
    }

    QuickPerf Optimistic(const std::vector<int>& placement) const override {
      if (depth_ == scorer_->tables_.num_objects()) {
        // Leaf: the exact kernel, bit-identical to Score.
        return scorer_->Score(placement);
      }
      // Interior node: each side's deflated lower bound; the sum of the
      // derived per-side throughput upper bounds is an upper bound on the
      // combined throughput of every completion.
      const double oltp_lb_ms =
          oltp_stack_[static_cast<size_t>(depth_)] * (1 - kBoundSafety);
      const OltpWorkloadModel::Throughput tp =
          scorer_->model_->oltp().ThroughputFromMeanLatency(oltp_lb_ms);
      const QuickPerf dss_qp = dss_cursor_->Optimistic(placement);
      const double dss_lb_ms =
          dss_qp.elapsed_ms +
          dssif_stack_[static_cast<size_t>(depth_)] * (1 - kBoundSafety);
      QuickPerf qp;
      qp.elapsed_ms = scorer_->measurement_period_ms_;
      qp.tpmc = tp.tpmc;
      // With the DSS floors disabled (io_scale) the analytic side has no
      // finite time bound, so the combined throughput is unbounded — 0
      // per the BoundCursor contract.
      qp.tasks_per_hour =
          dss_lb_ms > 0 ? tp.tasks_per_hour +
                              scorer_->model_->AnalyticsTasksPerHour(dss_lb_ms)
                        : 0.0;
      qp.sla_ok = !(oltp_lb_ms > scorer_->thr_oltp_) &&
                  !(dss_lb_ms > scorer_->thr_dss_);
      return qp;
    }

   private:
    const HtapFastScorer* scorer_;
    std::unique_ptr<FastScorer::BoundCursor> dss_cursor_;
    std::vector<double> oltp_stack_;
    std::vector<double> dssif_stack_;
    int depth_ = 0;
  };

  std::unique_ptr<FastScorer::BoundCursor> MakeBoundCursor() const override {
    return std::make_unique<BoundCursor>(this);
  }

  double ObjectTimeSpreadMs(int object) const override {
    // Ordering hint: both sides' spreads plus the interference excess
    // spread (its per-class minimum is 0 by construction).
    double spread = tables_.SpreadMs(object) +
                    dss_scorer_->ObjectTimeSpreadMs(object);
    const int m = tables_.num_classes();
    const size_t base = static_cast<size_t>(object) * static_cast<size_t>(m);
    double oltp_hi = 0.0;
    double dss_hi = 0.0;
    for (int c = 0; c < m; ++c) {
      oltp_hi =
          std::max(oltp_hi, if_excess_oltp_[base + static_cast<size_t>(c)]);
      dss_hi = std::max(dss_hi, if_excess_dss_[base + static_cast<size_t>(c)]);
    }
    return spread + oltp_hi + dss_hi;
  }

  long long cache_hits() const override { return dss_scorer_->cache_hits(); }
  long long cache_misses() const override {
    return dss_scorer_->cache_misses();
  }

 private:
  const HtapWorkload* model_;
  OltpLatencyTables tables_;
  double measurement_period_ms_;
  double thr_oltp_ = 0.0;  ///< tolerance-adjusted mean-latency cap
  double thr_dss_ = 0.0;   ///< tolerance-adjusted sequence-time cap
  std::unique_ptr<FastScorer> dss_scorer_;
  /// Interference bound tables (see ctor).
  double if_base_oltp_ = 0.0;
  double if_base_dss_ = 0.0;
  std::vector<double> if_excess_oltp_;  ///< [object * num_classes + class]
  std::vector<double> if_excess_dss_;
};

}  // namespace

HtapWorkload::HtapWorkload(std::string name, const OltpWorkloadModel* oltp,
                           const DssWorkloadModel* dss, const Schema* schema,
                           const BoxConfig* box, HtapConfig config)
    : name_(std::move(name)),
      oltp_(oltp),
      dss_(dss),
      schema_(schema),
      box_(box),
      config_(config) {
  DOT_CHECK(oltp_ != nullptr && dss_ != nullptr && schema_ != nullptr &&
            box_ != nullptr);
  DOT_CHECK(config_.analytics_streams > 0)
      << "analytics_streams must be positive (use OltpWorkloadModel alone "
         "for a pure transaction mix)";
  DOT_CHECK(config_.interference_kappa >= 0);
  DOT_CHECK(config_.analytics_task_weight > 0);
  const int n = schema_->NumObjects();
  DOT_CHECK(static_cast<int>(oltp_->txn_types().front().io.size()) == n)
      << "OLTP side built over a different schema";

  if (config_.interference_kappa == 0) return;  // sides never collide

  // Placement-independent intensities. OLTP: expected physical I/Os per
  // transaction on each object (mix-weighted, unscaled — refinement
  // corrections deliberately do not move the interference weights, so the
  // full path and a scorer built with any io_scale agree). DSS: template
  // touches per sequence cycle, from the planner's placement-independent
  // footprints.
  std::vector<double> oltp_intensity(static_cast<size_t>(n), 0.0);
  for (const TxnType& t : oltp_->txn_types()) {
    for (size_t o = 0; o < t.io.size(); ++o) {
      oltp_intensity[o] += t.weight * t.io[o].Total();
    }
  }
  std::vector<double> dss_intensity(static_cast<size_t>(n), 0.0);
  const std::vector<QuerySpec>& templates = dss_->templates();
  std::vector<int> seq_count(templates.size(), 0);
  for (int idx : dss_->sequence()) {
    seq_count[static_cast<size_t>(idx)] += 1;
  }
  for (size_t t = 0; t < templates.size(); ++t) {
    if (seq_count[t] == 0) continue;
    for (int o : dss_->planner().QueryFootprint(templates[t])) {
      dss_intensity[static_cast<size_t>(o)] += seq_count[t];
    }
  }
  double oltp_total = 0.0;
  double dss_total = 0.0;
  for (int o = 0; o < n; ++o) {
    oltp_total += oltp_intensity[static_cast<size_t>(o)];
    dss_total += dss_intensity[static_cast<size_t>(o)];
  }
  if (oltp_total <= 0 || dss_total <= 0) return;

  // Per shared object and class, the two additive terms. OLTP side: ρ
  // analytic streams scanning o make the mix's a_o I/Os on o queue behind
  // them — time scales with the object's share b_o/B of the analytic
  // pressure and the class's random-read latency at the mix's concurrency.
  // DSS side: transactions dirty o's pages at terminal pressure, forcing
  // each of the b_o template touches to re-read — time scales with o's
  // share a_o/A of the transactional pressure, priced at the class's
  // single-stream random-read latency.
  const int m = box_->NumClasses();
  for (int o = 0; o < n; ++o) {
    if (oltp_intensity[static_cast<size_t>(o)] > 0 &&
        dss_intensity[static_cast<size_t>(o)] > 0) {
      if_objects_.push_back(o);
    }
  }
  const size_t rows = if_objects_.size();
  if_oltp_plane_.assign(static_cast<size_t>(m) * rows, 0.0);
  if_dss_plane_.assign(static_cast<size_t>(m) * rows, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    const int o = if_objects_[r];
    const double a = oltp_intensity[static_cast<size_t>(o)];
    const double b = dss_intensity[static_cast<size_t>(o)];
    for (int c = 0; c < m; ++c) {
      const DeviceModel& dev = box_->classes[static_cast<size_t>(c)].device();
      if_oltp_plane_[static_cast<size_t>(c) * rows + r] =
          config_.interference_kappa * config_.analytics_streams *
          (b / dss_total) * a *
          dev.LatencyMs(IoType::kRandRead, oltp_->concurrency());
      if_dss_plane_[static_cast<size_t>(c) * rows + r] =
          config_.interference_kappa * (a / oltp_total) * b *
          oltp_->concurrency() * dev.LatencyMs(IoType::kRandRead, 1.0);
    }
  }
}

double HtapWorkload::OltpInterferenceMs(
    const std::vector<int>& placement) const {
  return PlaneGatherSum(if_oltp_plane_.data(), if_objects_.data(),
                        placement.data(),
                        static_cast<int>(if_objects_.size()));
}

double HtapWorkload::DssInterferenceMs(
    const std::vector<int>& placement) const {
  return PlaneGatherSum(if_dss_plane_.data(), if_objects_.data(),
                        placement.data(),
                        static_cast<int>(if_objects_.size()));
}

double HtapWorkload::AnalyticsTasksPerHour(double dss_total_ms) const {
  DOT_CHECK(dss_total_ms > 0);
  return config_.analytics_task_weight * config_.analytics_streams *
         static_cast<double>(dss_->sequence().size()) /
         (dss_total_ms / kMsPerHour);
}

PerfEstimate HtapWorkload::Estimate(
    const std::vector<int>& placement) const {
  return EstimateWithIoScale(placement, {});
}

void HtapWorkload::RederiveFromUnitTimes(PerfEstimate* est) const {
  DOT_CHECK(est->unit_times_ms.size() == 2)
      << "HTAP estimates carry exactly two folded unit times";
  const OltpWorkloadModel::Throughput tp = oltp_->ThroughputFromMeanLatency(
      est->unit_times_ms[static_cast<size_t>(kHtapOltpEntry)]);
  est->elapsed_ms = oltp_->measurement_period_ms();
  est->tpmc = tp.tpmc;
  est->tasks_per_hour =
      tp.tasks_per_hour +
      AnalyticsTasksPerHour(
          est->unit_times_ms[static_cast<size_t>(kHtapDssEntry)]);
}

PerfEstimate HtapWorkload::EstimateWithIoScale(
    const std::vector<int>& placement, const std::vector<double>& io_scale,
    bool need_io_by_object) const {
  const int n = schema_->NumObjects();
  DOT_CHECK(static_cast<int>(placement.size()) == n);
  DOT_CHECK(io_scale.empty() || static_cast<int>(io_scale.size()) == n)
      << "io_scale arity mismatch";

  // OLTP side. The per-type latencies come from the inner model
  // (bit-identical to the fast path's device-time tables); the
  // mix-weighted mean is re-accumulated here in type order — exactly
  // OltpLatencyTables::MeanLatencyMs's summation.
  const PerfEstimate oltp_est =
      oltp_->EstimateWithIoScale(placement, io_scale, false);
  const std::vector<TxnType>& txns = oltp_->txn_types();
  double mean_latency_ms = 0.0;
  for (size_t i = 0; i < txns.size(); ++i) {
    mean_latency_ms += txns[i].weight * oltp_est.unit_times_ms[i];
  }
  const double oltp_time_ms =
      mean_latency_ms + OltpInterferenceMs(placement);
  const OltpWorkloadModel::Throughput tp =
      oltp_->ThroughputFromMeanLatency(oltp_time_ms);

  // DSS side.
  const PerfEstimate dss_est =
      dss_->EstimateWithIoScale(placement, io_scale, need_io_by_object);
  const double dss_time_ms = dss_est.elapsed_ms + DssInterferenceMs(placement);

  PerfEstimate est;
  est.elapsed_ms = oltp_est.elapsed_ms;  // the OLTP measurement period
  est.unit_times_ms = {oltp_time_ms, dss_time_ms};
  est.tpmc = tp.tpmc;
  est.tasks_per_hour = tp.tasks_per_hour + AnalyticsTasksPerHour(dss_time_ms);
  est.num_joins = dss_est.num_joins;
  est.num_index_nl_joins = dss_est.num_index_nl_joins;

  if (need_io_by_object) {
    est.io_by_object.assign(static_cast<size_t>(n), IoVector{});
    // Transactions over the measurement period at the interference-aware
    // rate, then the analytic side's per-cycle I/O times the number of
    // cycles ρ streams complete in the same period.
    const double txns_total =
        tp.txns_per_minute * (oltp_est.elapsed_ms / kMsPerMinute);
    const bool scaled = !io_scale.empty();
    ObjectIoMap scratch;
    for (const TxnType& t : txns) {
      const ObjectIoMap* io = &t.io;
      if (scaled) {
        scratch = t.io;
        for (size_t o = 0; o < scratch.size(); ++o) scratch[o] *= io_scale[o];
        io = &scratch;
      }
      AccumulateScaledIo(est.io_by_object, *io, txns_total * t.weight);
    }
    const double cycles =
        config_.analytics_streams * (oltp_est.elapsed_ms / dss_time_ms);
    AccumulateScaledIo(est.io_by_object, dss_est.io_by_object, cycles);
  }
  return est;
}

std::unique_ptr<FastScorer> HtapWorkload::MakeFastScorer(
    const std::vector<double>& io_scale,
    const std::vector<double>& query_caps_ms, double min_tpmc,
    double sla_tolerance) const {
  (void)min_tpmc;  // response-time SLA: the two folded caps apply
  DOT_CHECK(io_scale.empty() ||
            static_cast<int>(io_scale.size()) == schema_->NumObjects())
      << "io_scale arity mismatch";
  return std::make_unique<HtapFastScorer>(this, box_, io_scale,
                                          query_caps_ms, sla_tolerance);
}

HtapBundle MakeChbenchHtapWorkload(const Schema* schema, const BoxConfig* box,
                                   const HtapConfig& config,
                                   const TpccConfig& tpcc_config,
                                   int analytics_reps) {
  DOT_CHECK(schema != nullptr && box != nullptr);
  DOT_CHECK(analytics_reps >= 1);
  HtapBundle bundle;
  bundle.oltp = MakeTpccWorkload(schema, box, tpcc_config);
  std::vector<QuerySpec> templates =
      FilterTemplatesToSchema(MakeChbenchTemplates(), *schema);
  DOT_CHECK(!templates.empty())
      << "no CH-benCH template fits this schema subset";
  const int num_templates = static_cast<int>(templates.size());
  bundle.dss = std::make_unique<DssWorkloadModel>(
      "CH-benCH", schema, box, std::move(templates),
      RepeatSequence(num_templates, analytics_reps), PlannerConfig{});
  bundle.htap = std::make_unique<HtapWorkload>(
      "CH-benCH-HTAP", bundle.oltp.get(), bundle.dss.get(), schema, box,
      config);
  return bundle;
}

}  // namespace dot
