#include "workload/epoch_schedule.h"

#include <cmath>
#include <utility>

namespace dot {

double EpochSchedule::TotalHours() const {
  double total = 0.0;
  for (const Epoch& e : epochs) total += e.duration_hours;
  return total;
}

EpochSchedule& EpochSchedule::Add(const WorkloadModel* workload,
                                  double duration_hours, std::string label,
                                  const WorkloadProfiles* profiles) {
  Epoch e;
  e.workload = workload;
  e.duration_hours = duration_hours;
  e.profiles = profiles;
  e.label = std::move(label);
  epochs.push_back(std::move(e));
  return *this;
}

Status ValidateSchedule(const EpochSchedule& schedule) {
  if (schedule.epochs.empty()) {
    return Status::InvalidArgument("schedule has no epochs");
  }
  for (size_t i = 0; i < schedule.epochs.size(); ++i) {
    const Epoch& e = schedule.epochs[i];
    if (e.workload == nullptr) {
      return Status::InvalidArgument("epoch " + std::to_string(i) +
                                     " has no workload");
    }
    if (!(e.duration_hours > 0.0) || !std::isfinite(e.duration_hours)) {
      return Status::InvalidArgument("epoch " + std::to_string(i) +
                                     " has a non-positive duration");
    }
  }
  return Status::OK();
}

}  // namespace dot
