#ifndef DOTPROV_WORKLOAD_OLTP_WORKLOAD_H_
#define DOTPROV_WORKLOAD_OLTP_WORKLOAD_H_

#include <cstddef>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "storage/storage_class.h"
#include "workload/workload.h"

namespace dot {

/// One OLTP transaction type: its share of the mix and its per-execution
/// I/O footprint over the schema's objects, plus CPU and fixed overhead
/// (locking, logging, network round trips).
struct TxnType {
  std::string name;
  double weight = 0.0;  ///< fraction of the mix, Σ over types = 1
  ObjectIoMap io;       ///< per-object I/O counts per execution
  double cpu_ms = 0.0;
  double overhead_ms = 0.0;
};

/// An OLTP workload modeled as a transaction mix run by `concurrency`
/// closed-loop terminals with zero think time (the paper's DBT-2 setup:
/// 300 DB connections, 1 terminal/warehouse, no think time, §4.5).
///
/// Unlike the DSS model, plans are fixed: §4.5.1 observes that TPC-C I/O is
/// random regardless of placement, so the per-transaction footprints do not
/// change with layout — only the time each I/O takes does.
///
/// Throughput model: each terminal executes transactions back to back, so
/// with mix-weighted mean latency t̄(L) at concurrency c the aggregate rate
/// is c / t̄_eff(L) transactions per unit time, and tpmC is the New-Order
/// share of that. t̄_eff = t̄ / (1 - t̄/t_sat) adds the saturation-style
/// lock-convoy degradation closed-loop TPC-C systems exhibit once
/// per-transaction latencies grow: slow storage doesn't just stretch
/// transactions, it makes them hold locks longer and collide more, and
/// throughput collapses as the mean latency approaches the saturation
/// scale t_sat (an M/M/1-flavoured model with the lock/CPU subsystem as
/// the shared server). Without this term no layout ever falls below ~13%
/// of the all-H-SSD throughput (Table 1's concurrency-300 latencies span
/// only ~7x end to end), and the paper's SLA-0.125 runs (Figure 8) would
/// be trivially satisfied by the cheapest class.
class OltpWorkloadModel : public WorkloadModel {
 public:
  /// `schema` and `box` must outlive the model. `contention_reference_ms`
  /// is the saturation latency scale t_sat; <= 0 disables the term.
  OltpWorkloadModel(std::string name, const Schema* schema,
                    const BoxConfig* box, std::vector<TxnType> txn_types,
                    double concurrency, double measurement_period_ms,
                    double contention_reference_ms = 190.0);

  const std::string& name() const override { return name_; }
  double concurrency() const override { return concurrency_; }
  SlaKind sla_kind() const override { return SlaKind::kThroughput; }
  PerfEstimate Estimate(const std::vector<int>& placement) const override;
  PerfEstimate EstimateWithIoScale(
      const std::vector<int>& placement, const std::vector<double>& io_scale,
      bool need_io_by_object = true) const override;
  bool PlansArePlacementInvariant() const override { return true; }

  /// TOC-only fast path: per-(transaction, object, class) device-time
  /// tables, so one candidate costs a fixed-order table-lookup sum with
  /// zero allocation. Bit-identical to EstimateWithIoScale (same summation
  /// order over the same precomputed per-object times).
  std::unique_ptr<FastScorer> MakeFastScorer(
      const std::vector<double>& io_scale,
      const std::vector<double>& query_caps_ms, double min_tpmc,
      double sla_tolerance) const override;

  const std::vector<TxnType>& txn_types() const { return txn_types_; }

  /// Index of the transaction type whose rate defines "tasks" (tpmC); the
  /// type named "NewOrder" if present, otherwise type 0.
  int primary_txn_index() const { return primary_txn_; }

  double measurement_period_ms() const { return measurement_period_ms_; }

  /// The mean-latency → throughput kernel (contention term + closed-loop
  /// rate + mix shares). Shared by the full estimate and the fast scorer so
  /// both run exactly the same arithmetic; not intended for external use.
  struct Throughput {
    double txns_per_minute = 0.0;
    double tpmc = 0.0;
    double tasks_per_hour = 0.0;
  };
  Throughput ThroughputFromMeanLatency(double mean_latency_ms) const;

  /// ThroughputFromMeanLatency's tpmC as an unreduced ratio:
  /// tpmc == *tpmc_num / *den with *den > 0, and tasks-per-hour is
  /// (*tpmc_num * 60) / *den — no division ever runs. Values match the
  /// divided form up to ULP-level re-association, so callers must only
  /// compare the ratio under an ε safety margin (the branch-and-bound
  /// bound path), never consume it as an exact score.
  void ThroughputRatioFromMeanLatency(double mean_latency_ms,
                                      double* tpmc_num, double* den) const;

 private:
  std::string name_;
  const Schema* schema_;
  const BoxConfig* box_;
  std::vector<TxnType> txn_types_;
  double concurrency_;
  double measurement_period_ms_;
  double contention_reference_ms_;
  int primary_txn_ = 0;
};

/// The arithmetic core of the OLTP fast path, extracted so the HTAP
/// composite scorer (workload/htap_workload.cc) runs *exactly* the same
/// mean-latency kernel as the pure OLTP scorer: per-(transaction, object,
/// class) device times precomputed once (with any io_scale baked in) and
/// summed per candidate in the same object order as IoTimeShareMs, so
/// MeanLatencyMs is bit-identical to the mix-weighted mean the model's
/// EstimateWithIoScale computes. Also carries the branch-and-bound tables:
/// the unconstrained latency minimum and the guaranteed per-(object, class)
/// excess, whose sum over any partial assignment lower-bounds the mean
/// latency of every completion.
class OltpLatencyTables {
 public:
  OltpLatencyTables(const OltpWorkloadModel& model, const BoxConfig& box,
                    const std::vector<double>& io_scale);

  /// Mix-weighted mean transaction latency under `placement`; the fast
  /// scorers' Score loop. No allocation.
  double MeanLatencyMs(const std::vector<int>& placement) const;

  /// Mean latency with every object on its per-row fastest class — the
  /// unconstrained minimum the bound stacks grow from.
  double base_mean_latency_ms() const { return base_mean_latency_ms_; }

  /// Guaranteed mean-latency increase of committing `object` to `cls`.
  double Excess(int object, int cls) const {
    return excess_[static_cast<size_t>(object) *
                       static_cast<size_t>(num_classes_) +
                   static_cast<size_t>(cls)];
  }

  /// Flat per-class Excess row of one object (Excess(object, c) ==
  /// ExcessRow(object)[c]) — the batched bound probe walks all classes of
  /// the object being assigned in one pass.
  const double* ExcessRow(int object) const {
    return excess_.data() +
           static_cast<size_t>(object) * static_cast<size_t>(num_classes_);
  }

  /// Spread of Excess across classes (a BnB variable-ordering hint).
  double SpreadMs(int object) const;

  int num_objects() const { return num_objects_; }
  int num_classes() const { return num_classes_; }

  /// Per-row fastest-class times, precomputed during construction (one
  /// entry per stored row, tables concatenated in order). Their
  /// mix-weighted sum plus CPU/overhead is base_mean_latency_ms() — the
  /// floor the bound cursor grows from.
  const std::vector<double>& row_min_ms() const { return row_min_ms_; }

 private:
  /// One transaction type's slice of the SoA tables below. Rows are the
  /// transaction's non-zero-I/O objects in ascending object order —
  /// exactly the objects (and order) IoTimeShareMs visits, which is what
  /// keeps the fast gather bit-identical to the full estimate.
  struct TxnTable {
    double weight = 0.0;
    double cpu_ms = 0.0;
    double overhead_ms = 0.0;
    int num_rows = 0;
    std::size_t plane_begin = 0;  ///< into planes_ (num_classes*num_rows)
    std::size_t obj_begin = 0;    ///< into row_objects_ / row_min_ms_
  };

  int num_objects_ = 0;
  int num_classes_ = 0;
  std::vector<TxnTable> tables_;
  /// Structure-of-arrays time planes: planes_[t.plane_begin + c*t.num_rows
  /// + r] is row r's device time on class c. One contiguous plane per
  /// class per table, so scoring a candidate is a contiguous gather over
  /// the class each row's object is placed on (PlaneGatherSum).
  std::vector<double> planes_;
  std::vector<int> row_objects_;    ///< ascending object ids, per table
  std::vector<double> row_min_ms_;  ///< min over classes, per row
  double base_mean_latency_ms_ = 0.0;
  std::vector<double> excess_;  ///< [object * num_classes + class]
};

}  // namespace dot

#endif  // DOTPROV_WORKLOAD_OLTP_WORKLOAD_H_
