#include "workload/scenario.h"

#include <cmath>
#include <string>

#include "common/check.h"
#include "common/rng.h"

namespace dot {

namespace {

/// Parameters of a unit-mean lognormal at coefficient of variation `cv`.
struct Lognormal {
  double mu = 0.0;
  double sigma = 0.0;
};

Lognormal UnitMeanLognormal(double cv) {
  Lognormal ln;
  const double sigma2 = std::log(1.0 + cv * cv);
  ln.mu = -0.5 * sigma2;
  ln.sigma = std::sqrt(sigma2);
  return ln;
}

}  // namespace

std::vector<double> ScenarioEnsemble::NormalizedWeights() const {
  DOT_CHECK(!scenarios.empty()) << "ensemble has no scenarios";
  if (scenarios.size() == 1) {
    DOT_CHECK(scenarios[0].weight > 0.0);
    return {1.0};
  }
  double total = 0.0;
  for (const Scenario& sc : scenarios) {
    DOT_CHECK(sc.weight > 0.0) << "scenario weight must be > 0";
    total += sc.weight;
  }
  std::vector<double> weights;
  weights.reserve(scenarios.size());
  for (const Scenario& sc : scenarios) weights.push_back(sc.weight / total);
  return weights;
}

ScenarioEnsemble SampleScenarioEnsemble(
    int num_objects, const ScenarioNoise& noise,
    const std::vector<const WorkloadModel*>& mix_pool) {
  DOT_CHECK(num_objects >= 1);
  DOT_CHECK(noise.num_scenarios >= 1 &&
            noise.num_scenarios <= kMaxScenarios)
      << "num_scenarios must be in [1, " << kMaxScenarios << "]";
  DOT_CHECK(noise.io_scale_cv >= 0.0 && noise.count_cv >= 0.0);
  for (const WorkloadModel* model : mix_pool) DOT_CHECK(model != nullptr);

  ScenarioEnsemble ensemble;
  ensemble.scenarios.reserve(static_cast<size_t>(noise.num_scenarios));

  Scenario nominal;
  nominal.label = "nominal";
  ensemble.scenarios.push_back(std::move(nominal));

  // One stream for the whole ensemble, consumed in a fixed documented
  // order (scenario -> intensity -> objects -> model pick), so the
  // ensemble is a pure function of (num_objects, noise, mix_pool).
  Rng rng(noise.seed);
  const Lognormal intensity = UnitMeanLognormal(noise.count_cv);
  const Lognormal per_object = UnitMeanLognormal(noise.io_scale_cv);
  const bool any_noise = noise.io_scale_cv > 0.0 || noise.count_cv > 0.0;
  for (int k = 1; k < noise.num_scenarios; ++k) {
    Scenario sc;
    sc.label = "scenario " + std::to_string(k);
    if (any_noise) {
      const double common =
          noise.count_cv > 0.0
              ? std::exp(intensity.mu + intensity.sigma * rng.NextGaussian())
              : 1.0;
      sc.io_scale.reserve(static_cast<size_t>(num_objects));
      for (int o = 0; o < num_objects; ++o) {
        const double factor =
            noise.io_scale_cv > 0.0
                ? std::exp(per_object.mu +
                           per_object.sigma * rng.NextGaussian())
                : 1.0;
        sc.io_scale.push_back(common * factor);
      }
    }
    if (!mix_pool.empty()) {
      // Uniform over {nominal} ∪ mix_pool; pick 0 keeps the nominal model.
      const uint64_t pick = rng.NextBounded(mix_pool.size() + 1);
      if (pick > 0) sc.model = mix_pool[static_cast<size_t>(pick - 1)];
    }
    ensemble.scenarios.push_back(std::move(sc));
  }
  return ensemble;
}

std::vector<double> ComposeIoScale(const std::vector<double>& a,
                                   const std::vector<double>& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  DOT_CHECK(a.size() == b.size()) << "io_scale arity mismatch";
  std::vector<double> composed(a.size());
  for (size_t o = 0; o < a.size(); ++o) composed[o] = a[o] * b[o];
  return composed;
}

}  // namespace dot
