#ifndef DOTPROV_WORKLOAD_DSS_WORKLOAD_H_
#define DOTPROV_WORKLOAD_DSS_WORKLOAD_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "query/planner.h"
#include "query/query_spec.h"
#include "storage/storage_class.h"
#include "workload/workload.h"

namespace dot {

/// A decision-support workload: a sequence of query-template instances
/// executed one after another (§2.3 with c = 1, as in all the paper's TPC-H
/// experiments). Performance estimates come from the storage-aware planner,
/// so plan choice — and therefore the per-object I/O profile — responds to
/// the candidate placement.
class DssWorkloadModel : public WorkloadModel {
 public:
  /// `schema` and `box` must outlive the model. `sequence[i]` indexes into
  /// `templates` and defines the executed query order (e.g. the paper's 66
  /// = 22 templates x 3 repetitions).
  DssWorkloadModel(std::string name, const Schema* schema,
                   const BoxConfig* box, std::vector<QuerySpec> templates,
                   std::vector<int> sequence, PlannerConfig planner_config);

  const std::string& name() const override { return name_; }
  double concurrency() const override { return 1.0; }
  SlaKind sla_kind() const override {
    return SlaKind::kPerQueryResponseTime;
  }
  PerfEstimate Estimate(const std::vector<int>& placement) const override;
  PerfEstimate EstimateWithIoScale(
      const std::vector<int>& placement, const std::vector<double>& io_scale,
      bool need_io_by_object = true) const override;

  /// TOC-only fast path: a per-template plan cache keyed by the placement
  /// restricted to the template's footprint (a template's plan — and its
  /// estimated time — depends on no other object), so a move that does not
  /// touch a template's objects reuses the cached time instead of
  /// re-running Planner::PlanQuery. Bit-identical to EstimateWithIoScale.
  std::unique_ptr<FastScorer> MakeFastScorer(
      const std::vector<double>& io_scale,
      const std::vector<double>& query_caps_ms, double min_tpmc,
      double sla_tolerance) const override;

  const std::vector<QuerySpec>& templates() const { return templates_; }
  const std::vector<int>& sequence() const { return sequence_; }
  const Schema& schema() const { return *schema_; }
  const Planner& planner() const { return planner_; }

  /// Plans a single template under `placement` (used by the INLJ-share
  /// analysis bench and by tests).
  Plan PlanTemplate(int template_idx,
                    const std::vector<int>& placement) const;

 private:
  std::string name_;
  const Schema* schema_;
  const BoxConfig* box_;
  std::vector<QuerySpec> templates_;
  std::vector<int> sequence_;
  std::vector<int> seq_count_;  ///< occurrences of each template in sequence_
  Planner planner_;
};

}  // namespace dot

#endif  // DOTPROV_WORKLOAD_DSS_WORKLOAD_H_
