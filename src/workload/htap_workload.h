#ifndef DOTPROV_WORKLOAD_HTAP_WORKLOAD_H_
#define DOTPROV_WORKLOAD_HTAP_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "storage/storage_class.h"
#include "workload/dss_workload.h"
#include "workload/oltp_workload.h"
#include "workload/tpcc_workload.h"
#include "workload/workload.h"

namespace dot {

/// Knobs of the mixed OLTP+DSS workload (see HtapWorkload).
struct HtapConfig {
  /// ρ, the analytics:transactions intensity ratio: how many concurrent
  /// analytic streams cycle the DSS run sequence while the transaction mix
  /// runs. Fractional values model a part-time reporting stream; larger
  /// values shift the combined objective — and the optimal layout — toward
  /// the analytic side.
  double analytics_streams = 1.0;

  /// κ, the coupling coefficient of the additive interference model
  /// (0 = the two sides share objects but never collide).
  double interference_kappa = 0.05;

  /// Task-value weight of one analytic query in transaction equivalents.
  /// TOC needs a single task unit, but the two sides' tasks are wildly
  /// heterogeneous — one CH-benCH query scans millions of rows while a
  /// transaction touches ~50 — so the combined rate counts each query as
  /// this many transactions (CH-benCHmark reports tpmC and QphH side by
  /// side for the same reason). At the default, a realistic analytic
  /// stream rivals the transaction mix in objective weight, which is what
  /// lets the mix ratio ρ actually steer the optimal layout.
  double analytics_task_weight = 1000.0;
};

/// Positions of the two folded SLA entries in an HTAP PerfEstimate's
/// unit_times_ms (and therefore in PerfTargets::query_caps_ms).
inline constexpr int kHtapOltpEntry = 0;  ///< mean transaction latency, ms
inline constexpr int kHtapDssEntry = 1;   ///< analytic sequence time, ms

/// A mixed OLTP+DSS workload over one shared object set — the
/// CH-benCHmark shape: the transaction mix and an analytic query sequence
/// contend for the same tables and indices with conflicting I/O profiles.
/// Composes an OltpWorkloadModel and a DssWorkloadModel (both over the
/// same schema and box, which must outlive this model) into one
/// WorkloadModel the whole optimizer stack — DOT, the TOC fast path, and
/// the exact branch-and-bound search — consumes unchanged.
///
/// Per-side times:
///
///   t_oltp(L) = mean transaction latency of the mix + Δ_oltp(L)
///   t_dss(L)  = completion time of one analytic sequence + Δ_dss(L)
///
/// where the base terms are exactly the inner models' arithmetic and the
/// Δs are the *additive interference model*: for every object o touched by
/// both sides, each side pays an extra device-time term that scales with
/// the other side's intensity on o and with the per-request latency of the
/// storage class o sits on — analytic scans make transactions queue behind
/// them, transactions dirty pages the analytic side must re-read. Both Δs
/// are Σ_o table[o][class(o)] sums over precomputed per-(object, class)
/// tables (the intensities are placement-independent), so the fast path
/// stays a table lookup and the branch-and-bound bound stays admissible.
///
/// SLA folding: sla_kind() is kPerQueryResponseTime with exactly two
/// unit-time entries, [kHtapOltpEntry] = t_oltp and [kHtapDssEntry] =
/// t_dss, so MakePerfTargets derives an OLTP mean-latency cap and a DSS
/// completion-time cap from one relative SLA and MeetsTargets enforces
/// both — per-side SLAs, one feasibility verdict.
///
/// Combined objective: tasks/hour = transactions/hour (from t_oltp through
/// the OLTP side's closed-loop throughput kernel) + analytic queries/hour
/// (ρ streams cycling the sequence, each cycle taking t_dss), so TOC =
/// cost / tasks prices both sides in one number and the mix ratio ρ tilts
/// the optimum between OLTP-favoring and DSS-favoring placements
/// (bench/bench_htap_mix.cpp sweeps it across the flip).
class HtapWorkload : public WorkloadModel {
 public:
  /// `oltp` and `dss` must be built over the same schema and box and
  /// outlive this model. Interference intensities are derived here, once:
  /// the OLTP side's from the (unscaled) transaction footprints, the DSS
  /// side's from the templates' placement-independent planner footprints.
  HtapWorkload(std::string name, const OltpWorkloadModel* oltp,
               const DssWorkloadModel* dss, const Schema* schema,
               const BoxConfig* box, HtapConfig config);

  const std::string& name() const override { return name_; }
  double concurrency() const override { return oltp_->concurrency(); }
  SlaKind sla_kind() const override {
    return SlaKind::kPerQueryResponseTime;
  }
  PerfEstimate Estimate(const std::vector<int>& placement) const override;
  PerfEstimate EstimateWithIoScale(
      const std::vector<int>& placement, const std::vector<double>& io_scale,
      bool need_io_by_object = true) const override;

  /// The executor's jitter hook: reruns the throughput composition from
  /// the two (perturbed) folded times — tpmc and the OLTP rate from
  /// t_oltp through the contention kernel, the analytic rate from t_dss —
  /// instead of the DSS default, whose sequence semantics do not apply to
  /// the folded entries.
  void RederiveFromUnitTimes(PerfEstimate* est) const override;

  /// Composite TOC fast path: the OLTP side's OltpLatencyTables, the DSS
  /// side's plan-cache scorer, and the interference tables, combined by
  /// exactly the arithmetic Estimate runs — bit-identical. Its BoundCursor
  /// sums the two sides' admissible bounds (plus the interference minima),
  /// which is itself admissible, so branch-and-bound search works out of
  /// the box. `query_caps_ms` must hold the two folded caps.
  std::unique_ptr<FastScorer> MakeFastScorer(
      const std::vector<double>& io_scale,
      const std::vector<double>& query_caps_ms, double min_tpmc,
      double sla_tolerance) const override;

  const OltpWorkloadModel& oltp() const { return *oltp_; }
  const DssWorkloadModel& dss() const { return *dss_; }
  const HtapConfig& config() const { return config_; }

  /// Interference tables in structure-of-arrays form: the shared objects
  /// (ascending id) and, per side, one contiguous time[class][row] plane —
  /// interference_*_ms(row, cls) is the time added per unit of that side's
  /// work when the row's object sits on `cls`. Both interference sums are
  /// one PlaneGatherSum over the row count.
  int num_interference_rows() const {
    return static_cast<int>(if_objects_.size());
  }
  int interference_object(int row) const {
    return if_objects_[static_cast<size_t>(row)];
  }
  /// Added to the mean transaction latency.
  double interference_oltp_ms(int row, int cls) const {
    return if_oltp_plane_[static_cast<size_t>(cls) * if_objects_.size() +
                          static_cast<size_t>(row)];
  }
  /// Added to the analytic sequence time.
  double interference_dss_ms(int row, int cls) const {
    return if_dss_plane_[static_cast<size_t>(cls) * if_objects_.size() +
                         static_cast<size_t>(row)];
  }

  // Shared kernels between Estimate and the fast scorer — both paths must
  // run exactly these (same rows, same order) for bit-identity. Not
  // intended for external use beyond tests.

  /// Δ_oltp(L): Σ over shared objects (ascending id) of the OLTP-side
  /// interference term at the object's class.
  double OltpInterferenceMs(const std::vector<int>& placement) const;

  /// Δ_dss(L): the DSS-side analogue.
  double DssInterferenceMs(const std::vector<int>& placement) const;

  /// Analytic task rate when one sequence cycle takes `dss_total_ms`:
  /// ρ streams, sequence-length queries per cycle, each query worth
  /// analytics_task_weight transaction-equivalent tasks.
  double AnalyticsTasksPerHour(double dss_total_ms) const;

 private:
  std::string name_;
  const OltpWorkloadModel* oltp_;
  const DssWorkloadModel* dss_;
  const Schema* schema_;
  const BoxConfig* box_;
  HtapConfig config_;
  /// Interference SoA (see accessors above): objects touched by both
  /// sides, ascending id, plus one [class * num_rows + row] plane per
  /// side. Empty when interference_kappa == 0 or a side is idle.
  std::vector<int> if_objects_;
  std::vector<double> if_oltp_plane_;
  std::vector<double> if_dss_plane_;
};

/// Everything a CH-benCHmark-style HTAP instance needs, with the inner
/// models owned alongside the composite (HtapWorkload keeps raw pointers).
struct HtapBundle {
  std::unique_ptr<OltpWorkloadModel> oltp;
  std::unique_ptr<DssWorkloadModel> dss;
  std::unique_ptr<HtapWorkload> htap;
};

/// Wires the TPC-C transaction mix and the CH-benCH analytic templates
/// (catalog/chbench.h, filtered to the schema's tables so reduced schemas
/// work) over one schema/box into an HtapWorkload. `analytics_reps` is the
/// per-template repetition count of the analytic run sequence.
HtapBundle MakeChbenchHtapWorkload(const Schema* schema, const BoxConfig* box,
                                   const HtapConfig& config,
                                   const TpccConfig& tpcc_config = {},
                                   int analytics_reps = 1);

}  // namespace dot

#endif  // DOTPROV_WORKLOAD_HTAP_WORKLOAD_H_
