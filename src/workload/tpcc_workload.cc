#include "workload/tpcc_workload.h"

#include <vector>

#include "common/check.h"

namespace dot {

namespace {

/// Incrementally builds one transaction type's per-object footprint.
class FootprintBuilder {
 public:
  FootprintBuilder(const Schema& schema, std::string name, double weight,
                   double cpu_ms, double overhead_ms)
      : schema_(schema) {
    txn_.name = std::move(name);
    txn_.weight = weight;
    txn_.cpu_ms = cpu_ms;
    txn_.overhead_ms = overhead_ms;
    txn_.io.assign(static_cast<size_t>(schema.NumObjects()), IoVector{});
  }

  FootprintBuilder& Io(const char* object, IoType type, double count) {
    const int id = schema_.FindObject(object);
    // Objects absent from the schema are skipped: this lets the same mix
    // definition drive reduced schemas (e.g. the Figure 9 DOT-vs-ES study,
    // where exhaustive search is only tractable on the hottest objects).
    if (id < 0) return *this;
    txn_.io[static_cast<size_t>(id)][type] += count;
    return *this;
  }

  TxnType Build() { return std::move(txn_); }

 private:
  const Schema& schema_;
  TxnType txn_;
};

}  // namespace

std::unique_ptr<OltpWorkloadModel> MakeTpccWorkload(const Schema* schema,
                                                    const BoxConfig* box,
                                                    const TpccConfig& config) {
  DOT_CHECK(schema != nullptr && box != nullptr);
  using T = IoType;
  std::vector<TxnType> txns;

  // New-Order (45%): read warehouse/district/customer/item, read+update ~10
  // stock rows, insert the order, its order lines and the new_order entry.
  // Hot single-row tables (warehouse, district, item) mostly hit the buffer
  // pool; fractional counts are the residual miss rates.
  txns.push_back(
      FootprintBuilder(*schema, "NewOrder", 0.45, /*cpu_ms=*/0.6,
                       /*overhead_ms=*/75.0)
          .Io("warehouse", T::kRandRead, 0.1)
          .Io("pk_warehouse", T::kRandRead, 0.05)
          .Io("district", T::kRandRead, 0.3)
          .Io("district", T::kRandWrite, 1.0)
          .Io("pk_district", T::kRandRead, 0.1)
          .Io("customer", T::kRandRead, 1.0)
          .Io("pk_customer", T::kRandRead, 0.3)
          // item is read-only and 9 MB: fully buffer-resident after warmup.
          .Io("stock", T::kRandRead, 10.0)
          .Io("stock", T::kRandWrite, 10.0)
          .Io("pk_stock", T::kRandRead, 3.0)
          // Order-side inserts append to hot tail pages; writes coalesce
          // across hundreds of transactions before a page is evicted.
          .Io("orders", T::kRandWrite, 0.05)
          .Io("pk_orders", T::kRandWrite, 0.02)
          .Io("i_orders", T::kRandWrite, 0.02)
          .Io("new_order", T::kRandWrite, 0.05)
          .Io("pk_new_order", T::kRandWrite, 0.02)
          .Io("order_line", T::kRandWrite, 10.0)
          .Io("pk_order_line", T::kRandWrite, 3.0)
          .Build());

  // Payment (43%): update warehouse/district YTD, select+update the
  // customer (60% of lookups go through the last-name index), append to
  // history (the only sequential writer in the mix).
  txns.push_back(
      FootprintBuilder(*schema, "Payment", 0.43, /*cpu_ms=*/0.2,
                       /*overhead_ms=*/50.0)
          .Io("warehouse", T::kRandWrite, 0.3)
          .Io("pk_warehouse", T::kRandRead, 0.02)
          .Io("district", T::kRandWrite, 1.0)
          .Io("pk_district", T::kRandRead, 0.1)
          .Io("customer", T::kRandRead, 1.5)
          .Io("customer", T::kRandWrite, 0.7)
          .Io("pk_customer", T::kRandRead, 0.4)
          .Io("i_customer", T::kRandRead, 0.6)
          .Io("history", T::kSeqWrite, 1.0)
          .Build());

  // Order-Status (4%): customer lookup (again 60% by last name), latest
  // order and its lines.
  txns.push_back(
      FootprintBuilder(*schema, "OrderStatus", 0.04, /*cpu_ms=*/0.2,
                       /*overhead_ms=*/40.0)
          .Io("customer", T::kRandRead, 1.0)
          .Io("pk_customer", T::kRandRead, 0.4)
          .Io("i_customer", T::kRandRead, 0.6)
          .Io("orders", T::kRandRead, 0.3)
          .Io("pk_orders", T::kRandRead, 0.1)
          .Io("i_orders", T::kRandRead, 0.3)
          .Io("order_line", T::kRandRead, 10.0)
          .Io("pk_order_line", T::kRandRead, 1.0)
          .Build());

  // Delivery (4%): drains one new_order per district for all ten
  // districts, marking orders delivered and crediting customers.
  txns.push_back(
      FootprintBuilder(*schema, "Delivery", 0.04, /*cpu_ms=*/0.6,
                       /*overhead_ms=*/100.0)
          // The drained rows were inserted recently; most are still
          // buffer-resident, so the physical I/O is a fraction of the
          // logical row counts.
          .Io("new_order", T::kRandRead, 0.5)
          .Io("new_order", T::kRandWrite, 0.5)
          .Io("pk_new_order", T::kRandRead, 0.1)
          .Io("pk_new_order", T::kRandWrite, 0.1)
          .Io("orders", T::kRandRead, 1.0)
          .Io("orders", T::kRandWrite, 1.0)
          .Io("pk_orders", T::kRandRead, 0.2)
          .Io("order_line", T::kRandRead, 30.0)
          .Io("order_line", T::kRandWrite, 30.0)
          .Io("pk_order_line", T::kRandRead, 3.0)
          .Io("customer", T::kRandRead, 5.0)
          .Io("customer", T::kRandWrite, 5.0)
          .Io("pk_customer", T::kRandRead, 1.0)
          .Build());

  // Stock-Level (4%): join of the district's last 20 orders' lines against
  // stock; read-only but touches many rows.
  txns.push_back(
      FootprintBuilder(*schema, "StockLevel", 0.04, /*cpu_ms=*/0.4,
                       /*overhead_ms=*/50.0)
          .Io("district", T::kRandRead, 1.0)
          .Io("pk_district", T::kRandRead, 0.1)
          .Io("order_line", T::kRandRead, 100.0)
          .Io("pk_order_line", T::kRandRead, 10.0)
          .Io("stock", T::kRandRead, 100.0)
          .Io("pk_stock", T::kRandRead, 10.0)
          .Build());

  return std::make_unique<OltpWorkloadModel>(
      "TPC-C", schema, box, std::move(txns), config.concurrency,
      config.measurement_period_ms,
      config.contention_reference_ms);
}

}  // namespace dot
