#ifndef DOTPROV_WORKLOAD_EPOCH_SCHEDULE_H_
#define DOTPROV_WORKLOAD_EPOCH_SCHEDULE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "workload/profiler.h"
#include "workload/workload.h"

namespace dot {

/// One planning epoch: a workload that holds steady for `duration_hours`.
/// The workload is any WorkloadModel — OLTP, DSS, or HTAP — reused
/// unchanged; what varies across a diurnal cycle is *which* model (or
/// which HTAP mix ratio ρ) each epoch holds. `bench_htap_mix` shows the
/// optimal layout changes with ρ, which is exactly why a schedule of
/// epochs needs a planner rather than one static DOT run.
struct Epoch {
  const WorkloadModel* workload = nullptr;  ///< must outlive the schedule
  double duration_hours = 1.0;

  /// Optional profiles for the DOT-heuristic candidate search
  /// (EpochSearch::kDot); the exact per-epoch search needs none.
  const WorkloadProfiles* profiles = nullptr;

  std::string label;  ///< report label, e.g. "night rho=32"
};

/// A drift pattern the planner provisions across: epochs in time order.
/// Closing a diurnal cycle (charging the migration back to the first
/// epoch's layout) is the caller's choice — append the first epoch again.
struct EpochSchedule {
  std::vector<Epoch> epochs;

  int NumEpochs() const { return static_cast<int>(epochs.size()); }
  double TotalHours() const;

  /// Appends one epoch; returns *this for chaining.
  EpochSchedule& Add(const WorkloadModel* workload, double duration_hours,
                     std::string label = std::string(),
                     const WorkloadProfiles* profiles = nullptr);
};

/// OK iff the schedule is non-empty and every epoch has a workload and a
/// positive, finite duration.
Status ValidateSchedule(const EpochSchedule& schedule);

}  // namespace dot

#endif  // DOTPROV_WORKLOAD_EPOCH_SCHEDULE_H_
