#ifndef DOTPROV_WORKLOAD_PROFILER_H_
#define DOTPROV_WORKLOAD_PROFILER_H_

#include <functional>
#include <vector>

#include "catalog/schema.h"
#include "query/object_io.h"
#include "storage/storage_class.h"
#include "workload/workload.h"

namespace dot {

/// The workload profiles X = {χ^p_r[o]} of §3.4: per-object, per-I/O-type
/// request counts of the whole workload, measured on each *baseline layout*
/// L(i,j) (all tables on class i, all indices on class j). DOT's move
/// scoring reads the profile matching a candidate group placement.
class WorkloadProfiles {
 public:
  /// `num_classes` is M, the number of storage classes in the box.
  explicit WorkloadProfiles(int num_classes);

  /// Stores the profile measured on baseline L(table_cls, index_cls).
  void Set(int table_cls, int index_cls, ObjectIoMap io);

  /// Collapses the matrix to one profile (plan-invariant workloads, §4.5.1:
  /// "we only need one simple layout").
  void SetSingle(ObjectIoMap io);

  bool single() const { return single_; }
  int num_classes() const { return num_classes_; }

  /// χ^p[·] for a group whose table sits on `table_cls` and whose indices
  /// sit on `index_cls`.
  const ObjectIoMap& For(int table_cls, int index_cls) const;

  /// Number of pairwise-distinct baseline profiles (within tolerance); 1
  /// means every baseline produced identical plans and the §3.4 pruning
  /// opportunity applies in full.
  int CountDistinct(double rel_tolerance = 1e-9) const;

 private:
  int num_classes_;
  bool single_ = false;
  std::vector<ObjectIoMap> by_pair_;  ///< [i * M + j]; size 1 when single_
  std::vector<bool> present_;
};

/// Callback that produces a performance estimate / measurement for a
/// placement: either the extended optimizer's estimate (§3.4 option (a),
/// used for TPC-H) or a sample test run (§3.4 option (b), used for TPC-C).
using EstimateFn = std::function<PerfEstimate(const std::vector<int>&)>;

/// The profiling phase (Figure 2, first box).
class Profiler {
 public:
  /// `schema` and `box` must outlive the profiler.
  Profiler(const Schema* schema, const BoxConfig* box);

  /// Baseline layout L(i,j): every table on class i, every index on class
  /// j, auxiliary objects (temp/log) alongside the tables on i.
  std::vector<int> BaselineLayout(int table_cls, int index_cls) const;

  /// Profiles `model` over all M² baselines via `estimate`. When the model
  /// declares its plans placement-invariant, only the single all-most-
  /// expensive baseline is profiled (the paper's TPC-C shortcut).
  WorkloadProfiles ProfileWorkload(const WorkloadModel& model,
                                   const EstimateFn& estimate) const;

 private:
  const Schema* schema_;
  const BoxConfig* box_;
};

}  // namespace dot

#endif  // DOTPROV_WORKLOAD_PROFILER_H_
