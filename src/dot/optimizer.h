#ifndef DOTPROV_DOT_OPTIMIZER_H_
#define DOTPROV_DOT_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "dot/ensemble.h"
#include "dot/layout.h"
#include "dot/problem.h"
#include "dot/sla.h"

namespace dot {

/// Outcome of one optimization run (DOT heuristic or exhaustive search).
struct DotResult {
  /// OK, or Infeasible when no enumerated layout met every constraint
  /// (§3: "rather than returning a recommended layout, it may return an
  /// answer marked as 'infeasible'").
  Status status = Status::OK();

  /// The recommended placement L*; meaningful only when status is OK.
  std::vector<int> placement;

  /// TOC of L*: C(L*) / T(L*, W), cents per task (§2.1).
  double toc_cents_per_task = 0.0;

  /// C(L*) in cents/hour.
  double layout_cost_cents_per_hour = 0.0;

  /// The workload estimate on L*.
  PerfEstimate estimate;

  /// The targets the run enforced (includes the best-case baseline).
  PerfTargets targets;

  /// Number of candidate layouts evaluated (|Δ|+1 for DOT, M^N for the
  /// enumerating exact search, the surviving leaves for branch-and-bound).
  long long layouts_evaluated = 0;

  /// Branch-and-bound search statistics (all 0 for the other strategies).
  /// A node is one partial assignment the search visited: it is either
  /// expanded (its children were generated), pruned, or — at full depth —
  /// an evaluated leaf (counted in layouts_evaluated). `layouts_pruned` is
  /// the number of complete layouts under the pruned subtrees, so
  /// layouts_evaluated + layouts_pruned == M^N always holds (saturating at
  /// LLONG_MAX for spaces too large to count).
  long long nodes_expanded = 0;
  long long nodes_pruned_bound = 0;       ///< TOC bound ≥ incumbent
  long long nodes_pruned_infeasible = 0;  ///< capacity/SLA cannot be met
  long long layouts_pruned = 0;

  /// Caller-supplied warm starts that were valid and feasible, i.e. that
  /// actually seeded the branch-and-bound incumbent (0 for the other
  /// strategies and when no warm starts were passed). Diagnostics for the
  /// SolveResult provenance block; cannot affect the search result.
  int warm_start_hits = 0;

  /// DSS plan-cache traffic of the run's fast evaluation path (both 0 for
  /// OLTP models, which have no plan cache, and when the fast path is
  /// disabled; HTAP models report their analytic side's cache). Diagnostics
  /// only: the counts vary with thread count even though the search result
  /// does not.
  long long plan_cache_hits = 0;
  long long plan_cache_misses = 0;

  /// Search-arena traffic of the branch-and-bound engine (0 for the other
  /// engines, which allocate nothing per node): total Reset() calls across
  /// all task arenas plus the prefix walker's, and the largest high-water
  /// live-byte mark of any single arena. resets is a sum over the
  /// thread-count-independent shard set and bytes_peak an order-free max,
  /// so both are deterministic at any parallelism. Diagnostics only.
  long long arena_resets = 0;
  long long arena_bytes_peak = 0;

  /// Wall-clock optimization time.
  double optimize_ms = 0.0;
};

/// The heuristic optimization phase of DOT (Procedure 1): start from L0
/// (everything on the most expensive class), apply the score-ordered move
/// sequence from enumerateMoves one by one, keep every feasible layout,
/// and return the feasible layout with the lowest estimated TOC.
///
/// Prefer dot::Solve(problem, {SolveMethod::kDotHeuristic}) over calling
/// Optimize() directly (dot/solve.h): the facade is the documented entry
/// point for every engine. The class itself stays public — it is the
/// estimator (EstimateToc, targets()) the whole evaluation stack is built
/// on, not just a search.
class DotOptimizer {
 public:
  explicit DotOptimizer(const DotProblem& problem);

  DotResult Optimize() const;

  /// estimateTOC(W, L): workload estimate and TOC in cents/task under the
  /// problem's cost model (applies the refinement io_scale hint if set).
  /// Under an ensemble the returned TOC is the ensemble objective
  /// (E[TOC] or CVaR) and `estimate_out` receives scenario 0's estimate.
  /// `cost_out` (if non-null) receives C(L) in cents/hour — the numerator
  /// the TOC was computed from, so callers need not recompute it.
  /// `sla_ok_out` (if non-null) receives the SLA verdict — MeetsTargets on
  /// the point forecast, the chance constraint under an ensemble — which is
  /// the verdict callers must use for feasibility (judging the nominal
  /// estimate alone would ignore the ensemble's miss mass).
  double EstimateToc(const std::vector<int>& placement,
                     PerfEstimate* estimate_out, double* cost_out = nullptr,
                     bool* sla_ok_out = nullptr) const;

  /// Overload for callers that already hold a Layout (the candidate-
  /// evaluation hot loop), skipping the placement re-validation and copy.
  double EstimateToc(const Layout& layout, PerfEstimate* estimate_out,
                     double* cost_out = nullptr,
                     bool* sla_ok_out = nullptr) const;

  /// The targets implied by the problem's relative SLA.
  const PerfTargets& targets() const { return targets_; }

  /// The problem instance this optimizer was built for.
  const DotProblem& problem() const { return problem_; }

  /// True when the problem carries a scenario ensemble (robust mode).
  bool has_ensemble() const { return ensemble_ != nullptr; }

 private:
  DotProblem problem_;
  PerfTargets targets_;

  /// Full-path ensemble evaluation; null in point-forecast mode. (Makes
  /// the optimizer move-only, which every caller already respects.)
  std::unique_ptr<EnsembleEstimator> ensemble_;
};

/// Repeatedly relaxes the relative SLA by `relax_factor` until `optimize`
/// (run at that SLA) finds a feasible layout — the loop the paper applies
/// when capacity and performance constraints conflict (§4.5.3, Figure 9:
/// "we slightly relax the relative SLA and repeat the optimization").
/// Returns the final result; `problem.relative_sla` is updated in place to
/// the achieved SLA.
DotResult OptimizeWithRelaxation(DotProblem& problem, double relax_factor,
                                 double min_sla);

}  // namespace dot

#endif  // DOTPROV_DOT_OPTIMIZER_H_
