#ifndef DOTPROV_DOT_LAYOUT_H_
#define DOTPROV_DOT_LAYOUT_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/pricing.h"
#include "storage/storage_class.h"

namespace dot {

/// A data layout L : O → D (§2.2): an assignment of every database object
/// to one of the box's storage classes.
class Layout {
 public:
  /// `schema` and `box` must outlive the layout. `placement[o]` is the
  /// storage-class index for object o.
  Layout(const Schema* schema, const BoxConfig* box,
         std::vector<int> placement);

  /// Every object on storage class `cls`.
  static Layout Uniform(const Schema* schema, const BoxConfig* box, int cls);

  const std::vector<int>& placement() const { return placement_; }
  const Schema& schema() const { return *schema_; }
  const BoxConfig& box() const { return *box_; }

  int ClassOf(int object_id) const;

  /// Returns a copy with the objects of `members` moved to `classes`
  /// (classes[i] applies to members[i]).
  Layout WithMoves(const std::vector<int>& members,
                   const std::vector<int>& classes) const;

  /// S_j per storage class, GB.
  SpaceUsage SpaceByClass() const;

  /// OK iff Σ_{o on d_j} s_o < c_j for every class (§2.2).
  Status CheckCapacity() const;

  /// One-pass capacity accounting, the single source of the fit rule the
  /// candidate-evaluation engine shares with CheckCapacity: `fits` iff
  /// used < c_j on every class, `violation_gb` = Σ_j max(0, S_j - c_j).
  /// (fits can be false while violation_gb == 0: used == c_j exactly.)
  struct CapacityFit {
    bool fits = true;
    double violation_gb = 0.0;
  };
  CapacityFit ComputeCapacityFit() const;

  /// The fit rule applied to an externally computed space vector (`used_gb`
  /// has NumClasses() entries, summed in schema object order). This is the
  /// one implementation of the rule: ComputeCapacityFit delegates here, and
  /// the allocation-free fast path (dot/eval_tables.h) calls it on a stack
  /// buffer, so both agree bit-for-bit.
  static CapacityFit FitFromSpace(const BoxConfig& box,
                                  const double* used_gb);

  /// Total over-capacity volume Σ_j max(0, S_j - c_j) in GB; 0 iff the
  /// layout fits. Used by the optimizer to march out of an over-full
  /// initial layout (e.g. a capacity-capped premium class, §4.5.3).
  double CapacityViolationGb() const;

  /// C(L) in cents/hour under the chosen cost model.
  double CostCentsPerHour(const CostModelSpec& spec) const;

  /// Per-class object listing, the rendering of Figures 4/6 and Table 3.
  std::string ToString() const;

  bool operator==(const Layout& other) const {
    return placement_ == other.placement_;
  }

 private:
  /// Validation-free path for internal factories whose placement is already
  /// known valid (WithMoves: a copy of a validated placement with per-move
  /// checked writes). The public constructor stays O(n)-checked.
  struct ValidatedTag {};
  Layout(const Schema* schema, const BoxConfig* box,
         std::vector<int> placement, ValidatedTag)
      : schema_(schema), box_(box), placement_(std::move(placement)) {}

  const Schema* schema_;
  const BoxConfig* box_;
  std::vector<int> placement_;
};

}  // namespace dot

#endif  // DOTPROV_DOT_LAYOUT_H_
