#include "dot/bnb_search.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "dot/candidate_evaluator.h"
#include "dot/eval_tables.h"
#include "dot/layout.h"
#include "dot/sla.h"
#include "storage/pricing.h"

namespace dot {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr long long kCountSaturated = std::numeric_limits<long long>::max();

long long SaturatingMul(long long a, long long b) {
  if (a != 0 && b > kCountSaturated / a) return kCountSaturated;
  return a * b;
}

long long SaturatingAdd(long long a, long long b) {
  if (a > kCountSaturated - b) return kCountSaturated;
  return a + b;
}

/// M^N, saturating at LLONG_MAX instead of wrapping — the overflow-safe
/// spelling of the layout-space size (3^40 and the like must produce a
/// clean refusal from the enumeration guard, not undefined behaviour).
long long PowSaturating(int m, int n) {
  long long total = 1;
  for (int i = 0; i < n; ++i) total = SaturatingMul(total, m);
  return total;
}

// ---------------------------------------------------------------------------
// ExactStrategy::kEnumerate — the paper's Exhaustive Search comparator.
// ---------------------------------------------------------------------------

DotResult EnumerateSearch(const DotProblem& problem, long long max_layouts,
                          double start_ms) {
  const int n = problem.schema->NumObjects();
  const int m = problem.box->NumClasses();
  const long long total = PowSaturating(m, n);

  DotResult result;
  if (total > max_layouts) {
    // A guard trip is an expected outcome on large schemas, not a
    // programmer error: report it as a Status so callers can fall back to
    // branch-and-bound (or shrink the instance) instead of aborting.
    result.status = Status::OutOfRange(
        "exhaustive enumeration over " + std::to_string(m) + "^" +
        std::to_string(n) + " = " +
        (total == kCountSaturated ? std::string("> 9.2e18")
                                  : std::to_string(total)) +
        " layouts exceeds the guard (" + std::to_string(max_layouts) +
        "); use ExactStrategy::kBranchAndBound or raise max_layouts");
    result.optimize_ms = NowMs() - start_ms;
    return result;
  }

  DotOptimizer estimator(problem);  // reuse estimateTOC / targets
  result.targets = estimator.targets();

  // Shard the mixed-radix layout space [0, M^N) across the pool; the
  // reduction under (TOC, lexicographically lowest placement) is a total
  // order, so the winner is the same at every thread count.
  ThreadPool pool(problem.options.num_threads);
  const CandidateEvaluator evaluator(estimator, &pool);
  CandidateEvaluator::SpaceScan scan = evaluator.ScanLayoutSpace(0, total);

  result.layouts_evaluated = scan.evaluated;
  result.plan_cache_hits = evaluator.plan_cache_hits();
  result.plan_cache_misses = evaluator.plan_cache_misses();
  if (scan.feasible_found) {
    result.placement = std::move(scan.best_placement);
    result.toc_cents_per_task = scan.best.toc;
    result.layout_cost_cents_per_hour = scan.best.cost_cents_per_hour;
    result.estimate = std::move(scan.best.estimate);
  } else {
    result.status = Status::Infeasible(
        "no layout satisfies the capacity and SLA constraints");
  }
  result.optimize_ms = NowMs() - start_ms;
  return result;
}

// ---------------------------------------------------------------------------
// ExactStrategy::kBranchAndBound
// ---------------------------------------------------------------------------

struct BnbStats {
  long long expanded = 0;
  long long pruned_bound = 0;
  long long pruned_infeasible = 0;
  long long layouts_pruned = 0;  ///< saturating: Σ leaf counts under prunes
  long long leaves = 0;

  void Add(const BnbStats& o) {
    expanded += o.expanded;
    pruned_bound += o.pruned_bound;
    pruned_infeasible += o.pruned_infeasible;
    layouts_pruned = SaturatingAdd(layouts_pruned, o.layouts_pruned);
    leaves += o.leaves;
  }
};

/// Winner of one subtree task under the BetterCandidate total order.
struct SubtreeBest {
  bool found = false;
  double toc = std::numeric_limits<double>::infinity();
  std::vector<int> placement;
};

/// Everything the subtree walkers share, read-only during the parallel
/// phase. The assignment order, suffix tables, shard depth, and seed
/// incumbent depend only on the problem — never on the thread count — which
/// is what makes every counter and the task set deterministic.
struct BnbShared {
  const DotProblem* problem = nullptr;
  const DotOptimizer* estimator = nullptr;
  const FastEvaluator* fast = nullptr;  ///< null: full-path leaves, no bound
  const FastScorer* scorer = nullptr;   ///< null: no performance bound
  int n = 0;
  int m = 0;
  /// Assignment order: order[d] is the object assigned at depth d,
  /// descending space/I-O weight (normalized cost spread + time spread).
  std::vector<int> order;
  std::vector<double> size_at_depth;    ///< size_gb of order[d]
  std::vector<double> suffix_min_cost;  ///< [d] Σ_{i>=d} min marginal cost
  std::vector<double> suffix_size;      ///< [d] Σ_{i>=d} size_gb
  std::vector<double> capacity;         ///< per class, c_j
  std::vector<double> class_price;      ///< per class, p_j (hoisted)
  bool linear_cost = false;             ///< cost model has no discrete part
  std::vector<long long> leaves_below;  ///< [d] = M^(N-d), saturating
  double seed_incumbent = std::numeric_limits<double>::infinity();
  int shard_depth = 0;  ///< tasks are the surviving depth-k prefixes
};

/// One depth-first subtree walker: per-depth space snapshots (pure
/// functions of the assignment path, so backtracking cannot accumulate
/// floating-point drift), a per-walker bound cursor, and best-first child
/// ordering. Pruning compares admissible bounds through the kBoundSafety
/// margin, so a subtree is cut only when no completion can beat the
/// incumbent or be feasible; ties are never cut, which preserves the
/// lexicographic tie-break bit for bit.
class SubtreeWalker {
 public:
  /// With `task_sink` non-null the walker stops at shard_depth and emits
  /// the surviving prefixes instead of descending (the top-k sharding
  /// pass); with it null the walker searches the subtree exhaustively.
  /// `arena` backs the per-depth snapshot and probe arrays; the walker is
  /// built once per shard and reused across its tasks (BeginTask resets
  /// the arena and every piece of per-task state), so the steady state
  /// allocates nothing per task — not even the bound cursor, whose Reset
  /// contract restores its full initial state.
  SubtreeWalker(const BnbShared& sh, std::vector<std::vector<int>>* task_sink,
                Arena* arena)
      : sh_(sh),
        task_sink_(task_sink),
        arena_(arena),
        placement_(static_cast<size_t>(sh.n), 0),
        incumbent_(sh.seed_incumbent) {
    if (sh_.scorer != nullptr) cursor_ = sh_.scorer->MakeBoundCursor();
  }

  /// Replays a shard prefix (classes of order[0..shard_depth)) — already
  /// vetted by the sharding pass — and searches the subtree below it.
  void RunSubtree(const std::vector<int>& prefix) {
    BeginTask();
    for (int d = 0; d < sh_.shard_depth; ++d) {
      AssignLevel(d, prefix[static_cast<size_t>(d)]);
    }
    Dfs(sh_.shard_depth);
  }

  /// The sharding pass: walk (and prune) levels [0, shard_depth).
  void RunPrefix() {
    BeginTask();
    Dfs(0);
  }

  const BnbStats& stats() const { return stats_; }
  const SubtreeBest& best() const { return best_; }

 private:
  /// Admissible TOC lower bound of one child, kept as the unreduced ratio
  /// toc_num / toc_den so the hot loop never divides: pruning and
  /// ordering compare ratios by cross-multiplication (both sides are
  /// positive when a bound exists). The "no bound" case — no cursor, or
  /// an unbounded optimistic throughput — is the ratio 0 / 1, which sorts
  /// before every real bound and never prunes, exactly like the literal
  /// toc_lb = 0 it replaces.
  struct Probe {
    double toc_num = 0.0;
    double toc_den = 1.0;
    int cls = 0;
  };

  double* UsedRow(int depth) {
    return used_ + static_cast<size_t>(depth) * static_cast<size_t>(sh_.m);
  }

  /// Per-task reset: reclaim the arena, re-carve the per-depth arrays from
  /// it, and restore every piece of state a fresh walker would start with
  /// — the per-task results must be identical whether a walker is fresh or
  /// reused, or the shard mapping would leak into the search outcome.
  void BeginTask() {
    arena_->Reset();
    const size_t cells =
        static_cast<size_t>(sh_.n + 1) * static_cast<size_t>(sh_.m);
    used_ = arena_->AllocateArray<double>(cells);
    std::fill(used_, used_ + cells, 0.0);
    probes_ = arena_->AllocateArray<Probe>(cells);
    mask_ = arena_->AllocateArray<unsigned char>(static_cast<size_t>(sh_.m));
    qps_ = arena_->AllocateArray<QuickPerf>(static_cast<size_t>(sh_.m));
    pfree_ = arena_->AllocateArray<double>(static_cast<size_t>(sh_.m));
    tpden_ = arena_->AllocateArray<double>(static_cast<size_t>(sh_.m));
    std::fill(placement_.begin(), placement_.end(), 0);
    incumbent_ = sh_.seed_incumbent;
    stats_ = BnbStats{};
    best_ = SubtreeBest{};
    if (cursor_ != nullptr) cursor_->Reset();
  }

  /// Commits class `cls` for the depth-d object: placement, the depth+1
  /// space snapshot, and the bound cursor.
  void AssignLevel(int depth, int cls) {
    const int obj = sh_.order[static_cast<size_t>(depth)];
    placement_[static_cast<size_t>(obj)] = cls;
    const double* cur = UsedRow(depth);
    double* next = UsedRow(depth + 1);
    for (int j = 0; j < sh_.m; ++j) next[j] = cur[j];
    next[cls] += sh_.size_at_depth[static_cast<size_t>(depth)];
    if (cursor_ != nullptr) cursor_->Assign(obj, placement_);
  }

  void PruneInfeasible(int child_depth) {
    stats_.pruned_infeasible += 1;
    stats_.layouts_pruned = SaturatingAdd(
        stats_.layouts_pruned,
        sh_.leaves_below[static_cast<size_t>(child_depth)]);
  }

  void PruneBound(int child_depth) {
    stats_.pruned_bound += 1;
    stats_.layouts_pruned = SaturatingAdd(
        stats_.layouts_pruned,
        sh_.leaves_below[static_cast<size_t>(child_depth)]);
  }

  /// Completion-cost lower bound of the child that adds the depth-d
  /// object (of `size` GB) to class `cls` on top of parent row `cur`.
  /// The linear model prices the child as the parent's priced total (a
  /// per-node hoist, passed in) plus this one object — the same value as
  /// re-pricing the child row up to ULP re-association, which the ε
  /// margin on every compare this feeds absorbs. The discrete model is
  /// not linear in used space, so it materializes the child row and takes
  /// the generic path.
  double ChildCostLowerBound(double parent_cost, const double* cur, int cls,
                             double size, int child_depth) {
    const double remaining =
        sh_.suffix_min_cost[static_cast<size_t>(child_depth)];
    if (sh_.linear_cost) {
      return parent_cost + sh_.class_price[static_cast<size_t>(cls)] * size +
             remaining;
    }
    double* next = UsedRow(child_depth);  // scratch until AssignLevel
    for (int j = 0; j < sh_.m; ++j) next[j] = cur[j];
    next[cls] += size;
    return CompletionCostLowerBoundCentsPerHour(
        *sh_.problem->box, next, sh_.m, remaining, sh_.problem->cost_model);
  }

  void ConsiderLeaf(double toc) {
    if (!best_.found ||
        BetterCandidate(toc, placement_, best_.toc, best_.placement)) {
      best_.found = true;
      best_.toc = toc;
      best_.placement = placement_;
    }
    incumbent_ = std::min(incumbent_, toc);
  }

  /// Expands the node with `depth` objects assigned (depth < n).
  void Dfs(int depth) {
    if (task_sink_ != nullptr && depth == sh_.shard_depth) {
      task_sink_->emplace_back(placement_prefix(depth));
      return;
    }
    stats_.expanded += 1;

    const int obj = sh_.order[static_cast<size_t>(depth)];
    const double size = sh_.size_at_depth[static_cast<size_t>(depth)];
    const double* cur = UsedRow(depth);
    Probe* probes = probes_ + static_cast<size_t>(depth + 1) *
                                  static_cast<size_t>(sh_.m);

    if (depth + 1 == sh_.n) {
      for (int cls = 0; cls < sh_.m; ++cls) {
        // Assigned objects never move again, so a class already at or
        // over its (strict) capacity dooms every completion. Deflated:
        // the snapshot is an assignment-order sum while the exact fit
        // rule sums in object order, and a few ULPs must not prune a
        // fitting leaf.
        if ((cur[cls] + size) * (1 - kBoundSafety) >=
            sh_.capacity[static_cast<size_t>(cls)]) {
          PruneInfeasible(depth + 1);
          continue;
        }

        // Leaf: exact evaluation through the same kernels the enumerating
        // search uses — bit-identical toc, fit, and feasibility.
        placement_[static_cast<size_t>(obj)] = cls;
        CandidateEval eval;
        if (cursor_ != nullptr) {
          cursor_->Assign(obj, placement_);
          eval = sh_.fast->EvaluateWithScore(placement_,
                                             cursor_->Optimistic(placement_));
          cursor_->Unassign(obj);
        } else {
          eval = CandidateEvaluator::EvaluateOneWith(
              *sh_.estimator,
              Layout(sh_.problem->schema, sh_.problem->box, placement_));
        }
        stats_.leaves += 1;
        if (eval.feasible) ConsiderLeaf(eval.toc);
      }
      return;
    }

    // Interior children, three passes over the classes. Per-class prune
    // decisions match interleaving the passes class by class; only the
    // order the prune counters tick in changes, and counters are totals.
    // Each child differs from this node in one class, so per-node totals
    // over the parent row turn every per-child check into an O(1) delta:
    // free space as parent free minus this class's shrinkage, priced
    // space as parent cost plus this object's price. The deltas
    // re-associate sums the one-row-per-child spelling computed left to
    // right, which moves compared values by ULPs — every compare they
    // feed carries the kBoundSafety margin (~1e-9, nine orders above ULP
    // noise), so no fitting or tying completion can be cut.
    const double remaining_size =
        sh_.suffix_size[static_cast<size_t>(depth + 1)];
    double parent_free = 0.0;
    for (int j = 0; j < sh_.m; ++j) {
      pfree_[j] = std::max(0.0, sh_.capacity[static_cast<size_t>(j)] -
                                    cur[j]);
      parent_free += pfree_[j];
    }

    // Pass 1: space feasibility.
    int live = 0;
    for (int cls = 0; cls < sh_.m; ++cls) {
      mask_[cls] = 0;
      const double used_cls = cur[cls] + size;
      if (used_cls * (1 - kBoundSafety) >= sh_.capacity[static_cast<size_t>(
                                               cls)]) {
        PruneInfeasible(depth + 1);
        continue;
      }
      // The unassigned volume must fit in the remaining free space.
      const double free_gb =
          parent_free - pfree_[cls] +
          std::max(0.0, sh_.capacity[static_cast<size_t>(cls)] - used_cls);
      if (remaining_size * (1 - kBoundSafety) >= free_gb * (1 + kBoundSafety)) {
        PruneInfeasible(depth + 1);
        continue;
      }
      mask_[cls] = 1;
      ++live;
    }

    // Pass 2: one batched optimistic-completion probe over the surviving
    // classes — an upper bound on every completion's throughput, and a
    // definite verdict when even the optimistic completion misses a
    // target. Without a bound cursor there is no throughput bound, TOC =
    // cost/throughput cannot be bounded either (cost alone bounds
    // nothing), and the search degrades to capacity pruning — skip the
    // cost kernel entirely.
    if (cursor_ != nullptr && live > 0) {
      cursor_->ProbeClassesRatio(obj, placement_, sh_.m, mask_, qps_, tpden_);
    }

    // Pass 3: SLA and bound pruning; survivors become child probes.
    // Division-free: the TOC bound cost_lb / tp is compared against the
    // incumbent as cost_lb vs incumbent·(1+ε)·tp. The ε safety margin is
    // ~1e-9 relative while cross-multiplication re-rounds by at most a
    // few ULPs (~1e-16), so no completion that ties or beats the
    // incumbent can ever be cut by the changed rounding — admissibility
    // is preserved, only microscopically-marginal prunes may differ from
    // the division spelling.
    const double inc_scaled = incumbent_ * (1 + kBoundSafety);
    double parent_cost = 0.0;
    if (cursor_ != nullptr && live > 0 && sh_.linear_cost) {
      for (int j = 0; j < sh_.m; ++j) {
        parent_cost += sh_.class_price[static_cast<size_t>(j)] * cur[j];
      }
    }
    live = 0;
    for (int cls = 0; cls < sh_.m; ++cls) {
      if (mask_[cls] == 0) continue;
      double toc_num = 0.0;
      double toc_den = 1.0;
      if (cursor_ != nullptr) {
        const QuickPerf& qp = qps_[cls];
        if (!qp.sla_ok) {
          PruneInfeasible(depth + 1);
          continue;
        }
        if (qp.tasks_per_hour > 0) {
          // Admissible TOC lower bound: assigned space priced exactly,
          // every unassigned object at its guaranteed marginal minimum,
          // over the optimistic throughput tp_num / tp_den:
          // toc = cost_lb·tp_den / tp_num.
          const double cost_lb =
              ChildCostLowerBound(parent_cost, cur, cls, size, depth + 1);
          toc_num = cost_lb * tpden_[cls];
          toc_den = qp.tasks_per_hour;
          if (toc_num > inc_scaled * toc_den) {
            PruneBound(depth + 1);
            continue;
          }
        }
      }
      probes[live].toc_num = toc_num;
      probes[live].toc_den = toc_den;
      probes[live].cls = cls;
      ++live;
    }

    // Best-first child order: most promising bound first (class index
    // breaks exact bound ties deterministically), so a near-optimal
    // incumbent appears early and the later siblings get pruned by the
    // re-check below.
    std::sort(probes, probes + live, [](const Probe& a, const Probe& b) {
      const double lhs = a.toc_num * b.toc_den;
      const double rhs = b.toc_num * a.toc_den;
      return lhs != rhs ? lhs < rhs : a.cls < b.cls;
    });
    for (int i = 0; i < live; ++i) {
      // Incumbent may have improved since the probe; same cross-multiplied
      // compare as pass 3 (incumbent_ changes between iterations, so the
      // scaled incumbent cannot be hoisted here).
      if (probes[i].toc_num >
          incumbent_ * (1 + kBoundSafety) * probes[i].toc_den) {
        PruneBound(depth + 1);
        continue;
      }
      AssignLevel(depth, probes[i].cls);
      Dfs(depth + 1);
      if (cursor_ != nullptr) cursor_->Unassign(obj);
    }
  }

  std::vector<int> placement_prefix(int depth) const {
    std::vector<int> prefix(static_cast<size_t>(depth));
    for (int d = 0; d < depth; ++d) {
      prefix[static_cast<size_t>(d)] =
          placement_[static_cast<size_t>(sh_.order[static_cast<size_t>(d)])];
    }
    return prefix;
  }

  const BnbShared& sh_;
  std::vector<std::vector<int>>* task_sink_;
  Arena* arena_;
  std::vector<int> placement_;  ///< vector: the scorer API's currency
  double* used_ = nullptr;      ///< (n+1) × m space snapshots, arena-backed
  Probe* probes_ = nullptr;     ///< (n+1) × m child-probe scratch
  unsigned char* mask_ = nullptr;  ///< per-class space-feasibility, one node
  QuickPerf* qps_ = nullptr;       ///< per-class batched probe results
  double* pfree_ = nullptr;        ///< per-class parent free space, one node
  double* tpden_ = nullptr;        ///< per-class probe ratio denominators
  std::unique_ptr<FastScorer::BoundCursor> cursor_;
  double incumbent_;
  BnbStats stats_;
  SubtreeBest best_;
};

DotResult BranchAndBoundSearch(
    const DotProblem& problem, double start_ms,
    const std::vector<std::vector<int>>* warm_starts) {
  const int n = problem.schema->NumObjects();
  const int m = problem.box->NumClasses();
  DOT_CHECK(n >= 1 && m >= 1);

  DotResult result;
  DotOptimizer estimator(problem);
  result.targets = estimator.targets();

  std::unique_ptr<FastEvaluator> fast;
  if (problem.options.use_fast_eval) {
    auto f = std::make_unique<FastEvaluator>(estimator);
    if (f->enabled()) fast = std::move(f);
  }

  BnbShared sh;
  sh.problem = &problem;
  sh.estimator = &estimator;
  sh.fast = fast.get();
  sh.scorer = fast != nullptr ? fast->scorer() : nullptr;
  sh.n = n;
  sh.m = m;

  sh.capacity.reserve(static_cast<size_t>(m));
  sh.class_price.reserve(static_cast<size_t>(m));
  sh.linear_cost = !problem.cost_model.discrete;
  double max_price = 0.0;
  double min_price = std::numeric_limits<double>::infinity();
  for (const StorageClass& sc : problem.box->classes) {
    sh.capacity.push_back(sc.capacity_gb());
    sh.class_price.push_back(sc.price_cents_per_gb_hour());
    max_price = std::max(max_price, sc.price_cents_per_gb_hour());
    min_price = std::min(min_price, sc.price_cents_per_gb_hour());
  }

  // Assignment order: descending space/I-O weight. An object's weight is
  // its guaranteed cost spread (size × price spread) plus its workload-time
  // spread across classes, each normalized to the largest in the schema —
  // the objects whose placement moves the bound the most are decided first,
  // so both prunes bite near the root. Any order is correct; this one is
  // fast.
  std::vector<double> cost_spread(static_cast<size_t>(n), 0.0);
  std::vector<double> time_spread(static_cast<size_t>(n), 0.0);
  double max_cost_spread = 0.0;
  double max_time_spread = 0.0;
  for (int o = 0; o < n; ++o) {
    cost_spread[static_cast<size_t>(o)] =
        problem.schema->object(o).size_gb * (max_price - min_price);
    if (sh.scorer != nullptr) {
      time_spread[static_cast<size_t>(o)] = sh.scorer->ObjectTimeSpreadMs(o);
    }
    max_cost_spread =
        std::max(max_cost_spread, cost_spread[static_cast<size_t>(o)]);
    max_time_spread =
        std::max(max_time_spread, time_spread[static_cast<size_t>(o)]);
  }
  sh.order.resize(static_cast<size_t>(n));
  for (int o = 0; o < n; ++o) sh.order[static_cast<size_t>(o)] = o;
  std::vector<double> weight(static_cast<size_t>(n), 0.0);
  for (int o = 0; o < n; ++o) {
    double w = 0.0;
    if (max_cost_spread > 0) {
      w += cost_spread[static_cast<size_t>(o)] / max_cost_spread;
    }
    if (max_time_spread > 0) {
      w += time_spread[static_cast<size_t>(o)] / max_time_spread;
    }
    weight[static_cast<size_t>(o)] = w;
  }
  std::sort(sh.order.begin(), sh.order.end(), [&](int a, int b) {
    const double wa = weight[static_cast<size_t>(a)];
    const double wb = weight[static_cast<size_t>(b)];
    return wa != wb ? wa > wb : a < b;
  });

  sh.size_at_depth.resize(static_cast<size_t>(n));
  for (int d = 0; d < n; ++d) {
    sh.size_at_depth[static_cast<size_t>(d)] =
        problem.schema->object(sh.order[static_cast<size_t>(d)]).size_gb;
  }
  sh.suffix_min_cost.assign(static_cast<size_t>(n) + 1, 0.0);
  sh.suffix_size.assign(static_cast<size_t>(n) + 1, 0.0);
  for (int d = n - 1; d >= 0; --d) {
    sh.suffix_min_cost[static_cast<size_t>(d)] =
        sh.suffix_min_cost[static_cast<size_t>(d) + 1] +
        MinObjectCostCentsPerHour(*problem.box,
                                  sh.size_at_depth[static_cast<size_t>(d)],
                                  problem.cost_model);
    sh.suffix_size[static_cast<size_t>(d)] =
        sh.suffix_size[static_cast<size_t>(d) + 1] +
        sh.size_at_depth[static_cast<size_t>(d)];
  }
  sh.leaves_below.resize(static_cast<size_t>(n) + 1);
  for (int d = 0; d <= n; ++d) {
    sh.leaves_below[static_cast<size_t>(d)] = PowSaturating(m, n - d);
  }

  // Deterministic incumbent seeds, evaluated through the same path the
  // leaves use: the M uniform layouts plus the DOT heuristic's answer when
  // profiles are available (the paper's own argument that DOT lands within
  // a few percent of the optimum makes it a near-perfect warm start). Only
  // the TOC is kept — the winning *placement* is always rediscovered
  // in-tree, because no subtree whose bound ties the incumbent is ever
  // pruned.
  double seed = std::numeric_limits<double>::infinity();
  for (int cls = 0; cls < m; ++cls) {
    const std::vector<int> uniform = UniformPlacement(n, cls);
    const CandidateEval eval =
        fast != nullptr
            ? fast->EvaluateQuick(uniform)
            : CandidateEvaluator::EvaluateOneWith(
                  estimator, Layout(problem.schema, problem.box, uniform));
    if (eval.feasible) seed = std::min(seed, eval.toc);
  }
  if (problem.profiles != nullptr) {
    const DotResult dot = estimator.Optimize();
    if (dot.status.ok()) seed = std::min(seed, dot.toc_cents_per_task);
  }
  // Caller-supplied warm starts (the advisor's incumbent layout and cached
  // candidate pool): same evaluation path, same only-the-TOC-is-kept rule,
  // so they tighten pruning without being able to change the result.
  if (warm_starts != nullptr) {
    for (const std::vector<int>& w : *warm_starts) {
      if (static_cast<int>(w.size()) != n) continue;
      bool in_range = true;
      for (int cls : w) in_range = in_range && cls >= 0 && cls < m;
      if (!in_range) continue;
      const CandidateEval eval =
          fast != nullptr ? fast->EvaluateQuick(w)
                          : CandidateEvaluator::EvaluateOneWith(
                                estimator, Layout(problem.schema,
                                                  problem.box, w));
      if (eval.feasible) {
        seed = std::min(seed, eval.toc);
        ++result.warm_start_hits;
      }
    }
  }
  sh.seed_incumbent = seed;

  // Shard the top k levels into independent subtree tasks. k depends only
  // on (M, N) — never on the thread count — so the task set, the reduction,
  // and every counter are identical at any parallelism.
  int shard_depth = 0;
  while (shard_depth < n - 1 && PowSaturating(m, shard_depth) < 64) {
    ++shard_depth;
  }
  sh.shard_depth = shard_depth;

  std::vector<std::vector<int>> tasks;
  Arena prefix_arena;
  SubtreeWalker prefix_walker(sh, &tasks, &prefix_arena);
  prefix_walker.RunPrefix();

  BnbStats stats = prefix_walker.stats();
  SubtreeBest best;

  // One arena + walker (and therefore one bound cursor) per shard, reused
  // across the shard's tasks. Shard boundaries depend only on the task
  // count — never on the thread count — and BeginTask restores fresh-walker
  // state per task, so per-task results are identical at any parallelism.
  // The shard count caps at 64 for load balancing; below that it is one
  // task per shard, exactly the old walker-per-task behaviour minus the
  // allocations.
  ThreadPool pool(problem.options.num_threads);
  const int num_shards = static_cast<int>(std::min<size_t>(tasks.size(), 64));
  std::vector<BnbStats> task_stats(tasks.size());
  std::vector<SubtreeBest> task_best(tasks.size());
  std::vector<std::uint64_t> shard_resets(
      static_cast<size_t>(num_shards), 0);
  std::vector<std::uint64_t> shard_peak(static_cast<size_t>(num_shards), 0);
  if (!tasks.empty()) {
    pool.ParallelForShards(
        0, static_cast<int64_t>(tasks.size()), num_shards,
        [&](int shard, int64_t shard_begin, int64_t shard_end) {
          Arena arena;
          SubtreeWalker walker(sh, nullptr, &arena);
          for (int64_t i = shard_begin; i < shard_end; ++i) {
            walker.RunSubtree(tasks[static_cast<size_t>(i)]);
            task_stats[static_cast<size_t>(i)] = walker.stats();
            task_best[static_cast<size_t>(i)] = walker.best();
          }
          shard_resets[static_cast<size_t>(shard)] = arena.resets();
          shard_peak[static_cast<size_t>(shard)] = arena.bytes_peak();
        });
  }

  // Reduce under the BetterCandidate total order (any reduction order
  // yields the same winner; see candidate_evaluator.h).
  for (size_t i = 0; i < tasks.size(); ++i) {
    stats.Add(task_stats[static_cast<size_t>(i)]);
    SubtreeBest& cand = task_best[static_cast<size_t>(i)];
    if (!cand.found) continue;
    if (!best.found || BetterCandidate(cand.toc, cand.placement, best.toc,
                                       best.placement)) {
      best = std::move(cand);
    }
  }

  result.nodes_expanded = stats.expanded;
  result.nodes_pruned_bound = stats.pruned_bound;
  result.nodes_pruned_infeasible = stats.pruned_infeasible;
  result.layouts_pruned = stats.layouts_pruned;
  result.layouts_evaluated = stats.leaves;
  // Deterministic at any thread count: resets sum over the fixed shard
  // set, peak is an order-free max.
  std::uint64_t arena_resets = prefix_arena.resets();
  std::uint64_t arena_peak = prefix_arena.bytes_peak();
  for (int s = 0; s < num_shards; ++s) {
    arena_resets += shard_resets[static_cast<size_t>(s)];
    arena_peak = std::max(arena_peak, shard_peak[static_cast<size_t>(s)]);
  }
  result.arena_resets = static_cast<long long>(arena_resets);
  result.arena_bytes_peak = static_cast<long long>(arena_peak);
  if (fast != nullptr) {
    result.plan_cache_hits = fast->plan_cache_hits();
    result.plan_cache_misses = fast->plan_cache_misses();
  }

  if (best.found) {
    // Re-score the winner through the full path (bit-identical toc/cost,
    // now with the PerfEstimate filled) — exactly what the enumerating
    // search does with its winner.
    const CandidateEval eval = CandidateEvaluator::EvaluateOneWith(
        estimator, Layout(problem.schema, problem.box, best.placement));
    DOT_CHECK(eval.feasible) << "winner infeasible on full re-score";
    result.placement = std::move(best.placement);
    result.toc_cents_per_task = eval.toc;
    result.layout_cost_cents_per_hour = eval.cost_cents_per_hour;
    result.estimate = eval.estimate;
  } else {
    result.status = Status::Infeasible(
        "no layout satisfies the capacity and SLA constraints");
  }
  result.optimize_ms = NowMs() - start_ms;
  return result;
}

}  // namespace

DotResult ExactSearch(const DotProblem& problem, ExactStrategy strategy,
                      long long max_layouts,
                      const std::vector<std::vector<int>>* warm_starts) {
  DOT_CHECK(problem.schema != nullptr && problem.box != nullptr &&
            problem.workload != nullptr);
  const double start_ms = NowMs();
  switch (strategy) {
    case ExactStrategy::kEnumerate:
      // The enumerating search scores every layout anyway; a tighter
      // incumbent seed would not change what it touches.
      return EnumerateSearch(problem, max_layouts, start_ms);
    case ExactStrategy::kBranchAndBound:
      return BranchAndBoundSearch(problem, start_ms, warm_starts);
  }
  DOT_CHECK(false) << "unknown ExactStrategy";
  return DotResult{};
}

}  // namespace dot
