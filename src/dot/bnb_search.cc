#include "dot/bnb_search.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "dot/candidate_evaluator.h"
#include "dot/eval_tables.h"
#include "dot/layout.h"
#include "dot/sla.h"
#include "storage/pricing.h"

namespace dot {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr long long kCountSaturated = std::numeric_limits<long long>::max();

long long SaturatingMul(long long a, long long b) {
  if (a != 0 && b > kCountSaturated / a) return kCountSaturated;
  return a * b;
}

long long SaturatingAdd(long long a, long long b) {
  if (a > kCountSaturated - b) return kCountSaturated;
  return a + b;
}

/// M^N, saturating at LLONG_MAX instead of wrapping — the overflow-safe
/// spelling of the layout-space size (3^40 and the like must produce a
/// clean refusal from the enumeration guard, not undefined behaviour).
long long PowSaturating(int m, int n) {
  long long total = 1;
  for (int i = 0; i < n; ++i) total = SaturatingMul(total, m);
  return total;
}

// ---------------------------------------------------------------------------
// ExactStrategy::kEnumerate — the paper's Exhaustive Search comparator.
// ---------------------------------------------------------------------------

DotResult EnumerateSearch(const DotProblem& problem, long long max_layouts,
                          double start_ms) {
  const int n = problem.schema->NumObjects();
  const int m = problem.box->NumClasses();
  const long long total = PowSaturating(m, n);

  DotResult result;
  if (total > max_layouts) {
    // A guard trip is an expected outcome on large schemas, not a
    // programmer error: report it as a Status so callers can fall back to
    // branch-and-bound (or shrink the instance) instead of aborting.
    result.status = Status::OutOfRange(
        "exhaustive enumeration over " + std::to_string(m) + "^" +
        std::to_string(n) + " = " +
        (total == kCountSaturated ? std::string("> 9.2e18")
                                  : std::to_string(total)) +
        " layouts exceeds the guard (" + std::to_string(max_layouts) +
        "); use ExactStrategy::kBranchAndBound or raise max_layouts");
    result.optimize_ms = NowMs() - start_ms;
    return result;
  }

  DotOptimizer estimator(problem);  // reuse estimateTOC / targets
  result.targets = estimator.targets();

  // Shard the mixed-radix layout space [0, M^N) across the pool; the
  // reduction under (TOC, lexicographically lowest placement) is a total
  // order, so the winner is the same at every thread count.
  ThreadPool pool(problem.options.num_threads);
  const CandidateEvaluator evaluator(estimator, &pool);
  CandidateEvaluator::SpaceScan scan = evaluator.ScanLayoutSpace(0, total);

  result.layouts_evaluated = scan.evaluated;
  result.plan_cache_hits = evaluator.plan_cache_hits();
  result.plan_cache_misses = evaluator.plan_cache_misses();
  if (scan.feasible_found) {
    result.placement = std::move(scan.best_placement);
    result.toc_cents_per_task = scan.best.toc;
    result.layout_cost_cents_per_hour = scan.best.cost_cents_per_hour;
    result.estimate = std::move(scan.best.estimate);
  } else {
    result.status = Status::Infeasible(
        "no layout satisfies the capacity and SLA constraints");
  }
  result.optimize_ms = NowMs() - start_ms;
  return result;
}

// ---------------------------------------------------------------------------
// ExactStrategy::kBranchAndBound
// ---------------------------------------------------------------------------

struct BnbStats {
  long long expanded = 0;
  long long pruned_bound = 0;
  long long pruned_infeasible = 0;
  long long layouts_pruned = 0;  ///< saturating: Σ leaf counts under prunes
  long long leaves = 0;

  void Add(const BnbStats& o) {
    expanded += o.expanded;
    pruned_bound += o.pruned_bound;
    pruned_infeasible += o.pruned_infeasible;
    layouts_pruned = SaturatingAdd(layouts_pruned, o.layouts_pruned);
    leaves += o.leaves;
  }
};

/// Winner of one subtree task under the BetterCandidate total order.
struct SubtreeBest {
  bool found = false;
  double toc = std::numeric_limits<double>::infinity();
  std::vector<int> placement;
};

/// Everything the subtree walkers share, read-only during the parallel
/// phase. The assignment order, suffix tables, shard depth, and seed
/// incumbent depend only on the problem — never on the thread count — which
/// is what makes every counter and the task set deterministic.
struct BnbShared {
  const DotProblem* problem = nullptr;
  const DotOptimizer* estimator = nullptr;
  const FastEvaluator* fast = nullptr;  ///< null: full-path leaves, no bound
  const FastScorer* scorer = nullptr;   ///< null: no performance bound
  int n = 0;
  int m = 0;
  /// Assignment order: order[d] is the object assigned at depth d,
  /// descending space/I-O weight (normalized cost spread + time spread).
  std::vector<int> order;
  std::vector<double> size_at_depth;    ///< size_gb of order[d]
  std::vector<double> suffix_min_cost;  ///< [d] Σ_{i>=d} min marginal cost
  std::vector<double> suffix_size;      ///< [d] Σ_{i>=d} size_gb
  std::vector<double> capacity;         ///< per class, c_j
  std::vector<long long> leaves_below;  ///< [d] = M^(N-d), saturating
  double seed_incumbent = std::numeric_limits<double>::infinity();
  int shard_depth = 0;  ///< tasks are the surviving depth-k prefixes
};

/// One depth-first subtree walker: per-depth space snapshots (pure
/// functions of the assignment path, so backtracking cannot accumulate
/// floating-point drift), a per-walker bound cursor, and best-first child
/// ordering. Pruning compares admissible bounds through the kBoundSafety
/// margin, so a subtree is cut only when no completion can beat the
/// incumbent or be feasible; ties are never cut, which preserves the
/// lexicographic tie-break bit for bit.
class SubtreeWalker {
 public:
  /// With `task_sink` non-null the walker stops at shard_depth and emits
  /// the surviving prefixes instead of descending (the top-k sharding
  /// pass); with it null the walker searches the subtree exhaustively.
  SubtreeWalker(const BnbShared& sh, std::vector<std::vector<int>>* task_sink)
      : sh_(sh),
        task_sink_(task_sink),
        placement_(static_cast<size_t>(sh.n), 0),
        used_(static_cast<size_t>(sh.n + 1) * static_cast<size_t>(sh.m),
              0.0),
        probes_(static_cast<size_t>(sh.n + 1) * static_cast<size_t>(sh.m)),
        incumbent_(sh.seed_incumbent) {
    if (sh_.scorer != nullptr) cursor_ = sh_.scorer->MakeBoundCursor();
  }

  /// Replays a shard prefix (classes of order[0..shard_depth)) — already
  /// vetted by the sharding pass — and searches the subtree below it.
  void RunSubtree(const std::vector<int>& prefix) {
    Reset();
    for (int d = 0; d < sh_.shard_depth; ++d) {
      AssignLevel(d, prefix[static_cast<size_t>(d)]);
    }
    Dfs(sh_.shard_depth);
  }

  /// The sharding pass: walk (and prune) levels [0, shard_depth).
  void RunPrefix() {
    Reset();
    Dfs(0);
  }

  const BnbStats& stats() const { return stats_; }
  const SubtreeBest& best() const { return best_; }

 private:
  struct Probe {
    double toc_lb = 0.0;
    int cls = 0;
  };

  double* UsedRow(int depth) {
    return used_.data() + static_cast<size_t>(depth) *
                              static_cast<size_t>(sh_.m);
  }

  void Reset() {
    std::fill(used_.begin(), used_.end(), 0.0);
    if (cursor_ != nullptr) cursor_->Reset();
  }

  /// Commits class `cls` for the depth-d object: placement, the depth+1
  /// space snapshot, and the bound cursor.
  void AssignLevel(int depth, int cls) {
    const int obj = sh_.order[static_cast<size_t>(depth)];
    placement_[static_cast<size_t>(obj)] = cls;
    const double* cur = UsedRow(depth);
    double* next = UsedRow(depth + 1);
    for (int j = 0; j < sh_.m; ++j) next[j] = cur[j];
    next[cls] += sh_.size_at_depth[static_cast<size_t>(depth)];
    if (cursor_ != nullptr) cursor_->Assign(obj, placement_);
  }

  void PruneInfeasible(int child_depth) {
    stats_.pruned_infeasible += 1;
    stats_.layouts_pruned = SaturatingAdd(
        stats_.layouts_pruned,
        sh_.leaves_below[static_cast<size_t>(child_depth)]);
  }

  void PruneBound(int child_depth) {
    stats_.pruned_bound += 1;
    stats_.layouts_pruned = SaturatingAdd(
        stats_.layouts_pruned,
        sh_.leaves_below[static_cast<size_t>(child_depth)]);
  }

  void ConsiderLeaf(double toc) {
    if (!best_.found ||
        BetterCandidate(toc, placement_, best_.toc, best_.placement)) {
      best_.found = true;
      best_.toc = toc;
      best_.placement = placement_;
    }
    incumbent_ = std::min(incumbent_, toc);
  }

  /// Expands the node with `depth` objects assigned (depth < n).
  void Dfs(int depth) {
    if (task_sink_ != nullptr && depth == sh_.shard_depth) {
      task_sink_->emplace_back(placement_prefix(depth));
      return;
    }
    stats_.expanded += 1;

    const int obj = sh_.order[static_cast<size_t>(depth)];
    const double size = sh_.size_at_depth[static_cast<size_t>(depth)];
    const bool child_is_leaf = depth + 1 == sh_.n;
    const double* cur = UsedRow(depth);
    double* next = UsedRow(depth + 1);  // scratch during probing
    Probe* probes = probes_.data() + static_cast<size_t>(depth + 1) *
                                         static_cast<size_t>(sh_.m);
    int live = 0;

    for (int cls = 0; cls < sh_.m; ++cls) {
      // Space snapshot of the child.
      for (int j = 0; j < sh_.m; ++j) next[j] = cur[j];
      next[cls] += size;

      // Assigned objects never move again, so a class already at or over
      // its (strict) capacity dooms every completion. Deflated: the
      // snapshot is an assignment-order sum while the exact fit rule sums
      // in object order, and a few ULPs must not prune a fitting leaf.
      if (next[cls] * (1 - kBoundSafety) >= sh_.capacity[static_cast<size_t>(
                                                cls)]) {
        PruneInfeasible(depth + 1);
        continue;
      }

      if (child_is_leaf) {
        // Leaf: exact evaluation through the same kernels the enumerating
        // search uses — bit-identical toc, fit, and feasibility.
        placement_[static_cast<size_t>(obj)] = cls;
        CandidateEval eval;
        if (cursor_ != nullptr) {
          cursor_->Assign(obj, placement_);
          eval = sh_.fast->EvaluateWithScore(placement_,
                                             cursor_->Optimistic(placement_));
          cursor_->Unassign(obj);
        } else {
          eval = CandidateEvaluator::EvaluateOneWith(
              *sh_.estimator,
              Layout(sh_.problem->schema, sh_.problem->box, placement_));
        }
        stats_.leaves += 1;
        if (eval.feasible) ConsiderLeaf(eval.toc);
        continue;
      }

      // The unassigned volume must fit in the remaining free space.
      double free_gb = 0.0;
      for (int j = 0; j < sh_.m; ++j) {
        free_gb += std::max(0.0, sh_.capacity[static_cast<size_t>(j)] -
                                     next[j]);
      }
      const double remaining =
          sh_.suffix_size[static_cast<size_t>(depth + 1)];
      if (remaining * (1 - kBoundSafety) >= free_gb * (1 + kBoundSafety)) {
        PruneInfeasible(depth + 1);
        continue;
      }

      // Optimistic workload completion: an upper bound on every
      // completion's throughput, and a definite verdict when even the
      // optimistic completion misses a target. Without a bound cursor
      // there is no throughput bound, TOC = cost/throughput cannot be
      // bounded either (cost alone bounds nothing), and the search
      // degrades to capacity pruning — skip the cost kernel entirely.
      double toc_lb = 0.0;
      if (cursor_ != nullptr) {
        placement_[static_cast<size_t>(obj)] = cls;
        cursor_->Assign(obj, placement_);
        const QuickPerf qp = cursor_->Optimistic(placement_);
        cursor_->Unassign(obj);
        if (!qp.sla_ok) {
          PruneInfeasible(depth + 1);
          continue;
        }
        if (qp.tasks_per_hour > 0) {
          // Admissible TOC lower bound: assigned space priced exactly,
          // every unassigned object at its guaranteed marginal minimum,
          // divided by the optimistic throughput.
          const double cost_lb = CompletionCostLowerBoundCentsPerHour(
              *sh_.problem->box, next, sh_.m,
              sh_.suffix_min_cost[static_cast<size_t>(depth + 1)],
              sh_.problem->cost_model);
          toc_lb = cost_lb / qp.tasks_per_hour;
          if (toc_lb > incumbent_ * (1 + kBoundSafety)) {
            PruneBound(depth + 1);
            continue;
          }
        }
      }
      probes[live].toc_lb = toc_lb;
      probes[live].cls = cls;
      ++live;
    }

    if (child_is_leaf) return;

    // Best-first child order: most promising bound first (class index
    // breaks exact bound ties deterministically), so a near-optimal
    // incumbent appears early and the later siblings get pruned by the
    // re-check below.
    std::sort(probes, probes + live, [](const Probe& a, const Probe& b) {
      return a.toc_lb != b.toc_lb ? a.toc_lb < b.toc_lb : a.cls < b.cls;
    });
    for (int i = 0; i < live; ++i) {
      if (probes[i].toc_lb > incumbent_ * (1 + kBoundSafety)) {
        PruneBound(depth + 1);
        continue;
      }
      AssignLevel(depth, probes[i].cls);
      Dfs(depth + 1);
      if (cursor_ != nullptr) cursor_->Unassign(obj);
    }
  }

  std::vector<int> placement_prefix(int depth) const {
    std::vector<int> prefix(static_cast<size_t>(depth));
    for (int d = 0; d < depth; ++d) {
      prefix[static_cast<size_t>(d)] =
          placement_[static_cast<size_t>(sh_.order[static_cast<size_t>(d)])];
    }
    return prefix;
  }

  const BnbShared& sh_;
  std::vector<std::vector<int>>* task_sink_;
  std::vector<int> placement_;
  std::vector<double> used_;   ///< (n+1) × m space snapshots
  std::vector<Probe> probes_;  ///< (n+1) × m child-probe scratch
  std::unique_ptr<FastScorer::BoundCursor> cursor_;
  double incumbent_;
  BnbStats stats_;
  SubtreeBest best_;
};

DotResult BranchAndBoundSearch(
    const DotProblem& problem, double start_ms,
    const std::vector<std::vector<int>>* warm_starts) {
  const int n = problem.schema->NumObjects();
  const int m = problem.box->NumClasses();
  DOT_CHECK(n >= 1 && m >= 1);

  DotResult result;
  DotOptimizer estimator(problem);
  result.targets = estimator.targets();

  std::unique_ptr<FastEvaluator> fast;
  if (problem.options.use_fast_eval) {
    auto f = std::make_unique<FastEvaluator>(estimator);
    if (f->enabled()) fast = std::move(f);
  }

  BnbShared sh;
  sh.problem = &problem;
  sh.estimator = &estimator;
  sh.fast = fast.get();
  sh.scorer = fast != nullptr ? fast->scorer() : nullptr;
  sh.n = n;
  sh.m = m;

  sh.capacity.reserve(static_cast<size_t>(m));
  double max_price = 0.0;
  double min_price = std::numeric_limits<double>::infinity();
  for (const StorageClass& sc : problem.box->classes) {
    sh.capacity.push_back(sc.capacity_gb());
    max_price = std::max(max_price, sc.price_cents_per_gb_hour());
    min_price = std::min(min_price, sc.price_cents_per_gb_hour());
  }

  // Assignment order: descending space/I-O weight. An object's weight is
  // its guaranteed cost spread (size × price spread) plus its workload-time
  // spread across classes, each normalized to the largest in the schema —
  // the objects whose placement moves the bound the most are decided first,
  // so both prunes bite near the root. Any order is correct; this one is
  // fast.
  std::vector<double> cost_spread(static_cast<size_t>(n), 0.0);
  std::vector<double> time_spread(static_cast<size_t>(n), 0.0);
  double max_cost_spread = 0.0;
  double max_time_spread = 0.0;
  for (int o = 0; o < n; ++o) {
    cost_spread[static_cast<size_t>(o)] =
        problem.schema->object(o).size_gb * (max_price - min_price);
    if (sh.scorer != nullptr) {
      time_spread[static_cast<size_t>(o)] = sh.scorer->ObjectTimeSpreadMs(o);
    }
    max_cost_spread =
        std::max(max_cost_spread, cost_spread[static_cast<size_t>(o)]);
    max_time_spread =
        std::max(max_time_spread, time_spread[static_cast<size_t>(o)]);
  }
  sh.order.resize(static_cast<size_t>(n));
  for (int o = 0; o < n; ++o) sh.order[static_cast<size_t>(o)] = o;
  std::vector<double> weight(static_cast<size_t>(n), 0.0);
  for (int o = 0; o < n; ++o) {
    double w = 0.0;
    if (max_cost_spread > 0) {
      w += cost_spread[static_cast<size_t>(o)] / max_cost_spread;
    }
    if (max_time_spread > 0) {
      w += time_spread[static_cast<size_t>(o)] / max_time_spread;
    }
    weight[static_cast<size_t>(o)] = w;
  }
  std::sort(sh.order.begin(), sh.order.end(), [&](int a, int b) {
    const double wa = weight[static_cast<size_t>(a)];
    const double wb = weight[static_cast<size_t>(b)];
    return wa != wb ? wa > wb : a < b;
  });

  sh.size_at_depth.resize(static_cast<size_t>(n));
  for (int d = 0; d < n; ++d) {
    sh.size_at_depth[static_cast<size_t>(d)] =
        problem.schema->object(sh.order[static_cast<size_t>(d)]).size_gb;
  }
  sh.suffix_min_cost.assign(static_cast<size_t>(n) + 1, 0.0);
  sh.suffix_size.assign(static_cast<size_t>(n) + 1, 0.0);
  for (int d = n - 1; d >= 0; --d) {
    sh.suffix_min_cost[static_cast<size_t>(d)] =
        sh.suffix_min_cost[static_cast<size_t>(d) + 1] +
        MinObjectCostCentsPerHour(*problem.box,
                                  sh.size_at_depth[static_cast<size_t>(d)],
                                  problem.cost_model);
    sh.suffix_size[static_cast<size_t>(d)] =
        sh.suffix_size[static_cast<size_t>(d) + 1] +
        sh.size_at_depth[static_cast<size_t>(d)];
  }
  sh.leaves_below.resize(static_cast<size_t>(n) + 1);
  for (int d = 0; d <= n; ++d) {
    sh.leaves_below[static_cast<size_t>(d)] = PowSaturating(m, n - d);
  }

  // Deterministic incumbent seeds, evaluated through the same path the
  // leaves use: the M uniform layouts plus the DOT heuristic's answer when
  // profiles are available (the paper's own argument that DOT lands within
  // a few percent of the optimum makes it a near-perfect warm start). Only
  // the TOC is kept — the winning *placement* is always rediscovered
  // in-tree, because no subtree whose bound ties the incumbent is ever
  // pruned.
  double seed = std::numeric_limits<double>::infinity();
  for (int cls = 0; cls < m; ++cls) {
    const std::vector<int> uniform = UniformPlacement(n, cls);
    const CandidateEval eval =
        fast != nullptr
            ? fast->EvaluateQuick(uniform)
            : CandidateEvaluator::EvaluateOneWith(
                  estimator, Layout(problem.schema, problem.box, uniform));
    if (eval.feasible) seed = std::min(seed, eval.toc);
  }
  if (problem.profiles != nullptr) {
    const DotResult dot = estimator.Optimize();
    if (dot.status.ok()) seed = std::min(seed, dot.toc_cents_per_task);
  }
  // Caller-supplied warm starts (the advisor's incumbent layout and cached
  // candidate pool): same evaluation path, same only-the-TOC-is-kept rule,
  // so they tighten pruning without being able to change the result.
  if (warm_starts != nullptr) {
    for (const std::vector<int>& w : *warm_starts) {
      if (static_cast<int>(w.size()) != n) continue;
      bool in_range = true;
      for (int cls : w) in_range = in_range && cls >= 0 && cls < m;
      if (!in_range) continue;
      const CandidateEval eval =
          fast != nullptr ? fast->EvaluateQuick(w)
                          : CandidateEvaluator::EvaluateOneWith(
                                estimator, Layout(problem.schema,
                                                  problem.box, w));
      if (eval.feasible) {
        seed = std::min(seed, eval.toc);
        ++result.warm_start_hits;
      }
    }
  }
  sh.seed_incumbent = seed;

  // Shard the top k levels into independent subtree tasks. k depends only
  // on (M, N) — never on the thread count — so the task set, the reduction,
  // and every counter are identical at any parallelism.
  int shard_depth = 0;
  while (shard_depth < n - 1 && PowSaturating(m, shard_depth) < 64) {
    ++shard_depth;
  }
  sh.shard_depth = shard_depth;

  std::vector<std::vector<int>> tasks;
  SubtreeWalker prefix_walker(sh, &tasks);
  prefix_walker.RunPrefix();

  BnbStats stats = prefix_walker.stats();
  SubtreeBest best;

  ThreadPool pool(problem.options.num_threads);
  std::vector<BnbStats> task_stats(tasks.size());
  std::vector<SubtreeBest> task_best(tasks.size());
  pool.ParallelFor(0, static_cast<int64_t>(tasks.size()), [&](int64_t i) {
    SubtreeWalker walker(sh, nullptr);
    walker.RunSubtree(tasks[static_cast<size_t>(i)]);
    task_stats[static_cast<size_t>(i)] = walker.stats();
    task_best[static_cast<size_t>(i)] = walker.best();
  });

  // Reduce under the BetterCandidate total order (any reduction order
  // yields the same winner; see candidate_evaluator.h).
  for (size_t i = 0; i < tasks.size(); ++i) {
    stats.Add(task_stats[static_cast<size_t>(i)]);
    SubtreeBest& cand = task_best[static_cast<size_t>(i)];
    if (!cand.found) continue;
    if (!best.found || BetterCandidate(cand.toc, cand.placement, best.toc,
                                       best.placement)) {
      best = std::move(cand);
    }
  }

  result.nodes_expanded = stats.expanded;
  result.nodes_pruned_bound = stats.pruned_bound;
  result.nodes_pruned_infeasible = stats.pruned_infeasible;
  result.layouts_pruned = stats.layouts_pruned;
  result.layouts_evaluated = stats.leaves;
  if (fast != nullptr) {
    result.plan_cache_hits = fast->plan_cache_hits();
    result.plan_cache_misses = fast->plan_cache_misses();
  }

  if (best.found) {
    // Re-score the winner through the full path (bit-identical toc/cost,
    // now with the PerfEstimate filled) — exactly what the enumerating
    // search does with its winner.
    const CandidateEval eval = CandidateEvaluator::EvaluateOneWith(
        estimator, Layout(problem.schema, problem.box, best.placement));
    DOT_CHECK(eval.feasible) << "winner infeasible on full re-score";
    result.placement = std::move(best.placement);
    result.toc_cents_per_task = eval.toc;
    result.layout_cost_cents_per_hour = eval.cost_cents_per_hour;
    result.estimate = eval.estimate;
  } else {
    result.status = Status::Infeasible(
        "no layout satisfies the capacity and SLA constraints");
  }
  result.optimize_ms = NowMs() - start_ms;
  return result;
}

}  // namespace

DotResult ExactSearch(const DotProblem& problem, ExactStrategy strategy,
                      long long max_layouts,
                      const std::vector<std::vector<int>>* warm_starts) {
  DOT_CHECK(problem.schema != nullptr && problem.box != nullptr &&
            problem.workload != nullptr);
  const double start_ms = NowMs();
  switch (strategy) {
    case ExactStrategy::kEnumerate:
      // The enumerating search scores every layout anyway; a tighter
      // incumbent seed would not change what it touches.
      return EnumerateSearch(problem, max_layouts, start_ms);
    case ExactStrategy::kBranchAndBound:
      return BranchAndBoundSearch(problem, start_ms, warm_starts);
  }
  DOT_CHECK(false) << "unknown ExactStrategy";
  return DotResult{};
}

}  // namespace dot
