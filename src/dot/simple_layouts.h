#ifndef DOTPROV_DOT_SIMPLE_LAYOUTS_H_
#define DOTPROV_DOT_SIMPLE_LAYOUTS_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "storage/storage_class.h"

namespace dot {

/// A named placement, for the comparison figures.
struct NamedLayout {
  std::string name;
  std::vector<int> placement;
};

/// The "simple" comparison layouts of §4.2 for one box: one uniform layout
/// per storage class ("All <class>"), plus "Index H-SSD Data L-SSD" when
/// the box carries both an H-SSD and an L-SSD variant (indices on the
/// H-SSD, everything else on the L-SSD class).
std::vector<NamedLayout> MakeSimpleLayouts(const Schema& schema,
                                           const BoxConfig& box);

}  // namespace dot

#endif  // DOTPROV_DOT_SIMPLE_LAYOUTS_H_
