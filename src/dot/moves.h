#ifndef DOTPROV_DOT_MOVES_H_
#define DOTPROV_DOT_MOVES_H_

#include <vector>

#include "catalog/db_object.h"
#include "dot/layout.h"
#include "dot/problem.h"

namespace dot {

/// A move m(g, p) (§3.2): re-place every member of object group `group`
/// onto the classes of `placement` (placement[i] applies to members[i]).
struct Move {
  int group = -1;
  std::vector<int> placement;

  /// δtime[m] (Eq. 2): I/O-time-share change of the group vs. L0, ms.
  double dtime_ms = 0.0;
  /// δcost[m] (Eq. 3): layout-cost saving vs. L0, cents/hour.
  double dcost = 0.0;
  /// σ[m] = δtime/δcost (Eq. 4); moves are applied in ascending order.
  double score = 0.0;
};

/// The I/O time share T^p[g] (Eq. 1) of group `g` under group placement
/// `p`, read from the workload profiles at the workload's concurrency.
/// For groups with several indices, each index's χ is taken from the
/// baseline matching (table class, that index's class) — the §3.4 baseline
/// set covers exactly the pairwise table/index interactions.
double GroupIoTimeShareMs(const DotProblem& problem, const ObjectGroup& g,
                          const std::vector<int>& p);

/// enumerateMoves (Procedure 2): every placement combination of every
/// object group, scored by σ[m] against the initial layout L0 (everything
/// on the box's most expensive class) and sorted ascending — most
/// beneficial (large cost saving per unit performance penalty) first.
/// The identity placement (all members still on L0's class) is skipped.
std::vector<Move> EnumerateMoves(const DotProblem& problem,
                                 const std::vector<ObjectGroup>& groups);

}  // namespace dot

#endif  // DOTPROV_DOT_MOVES_H_
