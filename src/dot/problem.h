#ifndef DOTPROV_DOT_PROBLEM_H_
#define DOTPROV_DOT_PROBLEM_H_

#include <vector>

#include "catalog/schema.h"
#include "dot/ensemble.h"
#include "dot/sla.h"
#include "storage/pricing.h"
#include "storage/storage_class.h"
#include "workload/profiler.h"
#include "workload/scenario.h"
#include "workload/workload.h"

namespace dot {

/// How the optimizer decides whether to keep a move in the working layout
/// (ablation knob; see DESIGN.md §3 and bench_ablation_heuristics).
enum class MoveAcceptance {
  /// Keep a feasible move only if it does not raise the working layout's
  /// estimated TOC (our default refinement; reaches the paper's DOT≈ES
  /// quality bands).
  kTocNonWorsening,
  /// Keep any feasible move — Procedure 1 exactly as printed. Later,
  /// worse-scored moves of a group override earlier placements.
  kAnyFeasible,
};

/// The search-engine knobs shared by every entry point that runs a layout
/// search (DotOptimizer, ExactSearch, ReprovisionPlanner, the advisor
/// loop). One embeddable block instead of loose per-struct fields, so a
/// driver forwards its caller's engine configuration wholesale — the knobs
/// steer *how* a search runs, never *what* it is solving, and none of them
/// can change a result (only wall-clock), except the ablation knobs whose
/// defaults reproduce the full DOT method.
struct SearchOptions {
  /// Execution lanes for the parallel candidate-evaluation engine: both
  /// search phases batch estimateTOC calls across this many threads
  /// (1 = serial, 0 = std::thread::hardware_concurrency()). Results are
  /// bit-identical at every setting — candidates are reduced under a total
  /// order (TOC, then lexicographically lowest placement), never by arrival
  /// time.
  int num_threads = 1;

  /// TOC-only fast path for candidate scoring (DESIGN.md §4): per-object
  /// device-time tables, a footprint-keyed DSS plan cache, and
  /// allocation-free space/cost sums. Scores are bit-identical to the full
  /// estimate, so this changes wall-clock only; the flag exists for the
  /// fast-vs-full equivalence tests and as an escape hatch.
  bool use_fast_eval = true;

  // --- ablation knobs (defaults reproduce the full DOT method) ---

  /// Move acceptance rule (see MoveAcceptance).
  MoveAcceptance acceptance = MoveAcceptance::kTocNonWorsening;

  /// true: enumerate placements per *object group* (table + its indices,
  /// §3.2), capturing the plan interaction. false: per-object moves with
  /// independence assumed everywhere — the simpler enumeration of prior
  /// work [10] the paper argues against in §3.1.
  bool group_objects = true;

  /// Maximum passes over the sorted move list (1 = single pass, the
  /// paper's literal procedure; >1 adds the hill-climbing convergence
  /// sweeps).
  int max_sweeps = 5;
};

/// One instance of the §2.5 optimization problem: objects O (schema),
/// storage classes D with prices P and capacities C (box), workload W with
/// performance constraints T (workload model + relative SLA).
struct DotProblem {
  const Schema* schema = nullptr;
  const BoxConfig* box = nullptr;
  const WorkloadModel* workload = nullptr;

  /// Performance constraint as a fraction of the best case (§2.4).
  double relative_sla = 0.5;

  /// Linear (§2.1) or discrete-sized (§5.2) layout cost.
  CostModelSpec cost_model;

  /// Workload profiles X from the profiling phase; drive move scoring.
  const WorkloadProfiles* profiles = nullptr;

  /// Per-object correction factors from the refinement phase (ratio of
  /// measured to estimated I/O); empty on the first optimization round.
  std::vector<double> io_scale_hint;

  /// Optional absolute performance targets. When set, they replace the
  /// targets derived from `relative_sla` on this box — the §5.1 generalized
  /// provisioning problem needs one common constraint set T across all
  /// candidate configurations, not per-box relative ones. Must outlive the
  /// optimization run. Takes precedence over `tail_sla` (an override is an
  /// already-derived constraint set; tail tightening happens at
  /// derivation).
  const PerfTargets* targets_override = nullptr;

  /// Optional percentile response-time target folded into the derived caps
  /// (DESIGN.md §10.4). Default (percentile 0) leaves target derivation
  /// bit-identical to the mean-only path.
  TailSla tail_sla;

  /// Optional scenario ensemble (DESIGN.md §10). When set, every candidate
  /// is scored under `ensemble_objective` across these scenarios instead of
  /// the nominal point forecast; scenario models default to `workload`, and
  /// their io_scale composes onto `io_scale_hint`. Must outlive the run.
  /// A K=1 nominal ensemble reproduces the point-forecast optimization bit
  /// for bit (same placements, same TOC, same prune counts).
  const ScenarioEnsemble* ensemble = nullptr;

  /// What "best over the ensemble" means; ignored when `ensemble` is null.
  EnsembleObjective ensemble_objective;

  /// Engine knobs (threads, fast path, ablation switches) as one block.
  SearchOptions options;
};

}  // namespace dot

#endif  // DOTPROV_DOT_PROBLEM_H_
