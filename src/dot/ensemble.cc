#include "dot/ensemble.h"

#include <algorithm>
#include <array>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/simd_dispatch.h"

namespace dot {

EnsembleVerdict AggregateEnsemble(const EnsembleObjective& objective,
                                  const std::vector<double>& weights,
                                  const ScenarioScore* scores, int k) {
  DOT_CHECK(k >= 1 && k <= kMaxScenarios);
  DOT_CHECK(static_cast<int>(weights.size()) == k);

  EnsembleVerdict out;
  double feasible_mass = 0.0;
  for (int i = 0; i < k; ++i) {
    if (scores[i].sla_ok) feasible_mass += weights[static_cast<size_t>(i)];
  }
  out.sla_ok =
      feasible_mass + kChanceTolerance >= objective.min_feasible_fraction;

  if (k == 1) {
    // The point forecast (or a single-scenario ensemble): hand the
    // scenario's throughput through untouched — 1/(1/x) != x bitwise.
    out.tasks_per_hour = scores[0].tasks_per_hour;
    return out;
  }

  const bool cvar = objective.kind == EnsembleObjective::Kind::kCVaR &&
                    objective.alpha < 1.0;
  if (!cvar) {
    // E[TOC] = cost · Σ w_k / thr_k, so the effective throughput is the
    // weighted harmonic mean. An unbounded scenario (thr 0, only possible
    // for optimistic bounds) contributes its best case: nothing. Terms are
    // buffered and summed through the pinned blocked schedule — every
    // caller (fast scorer, bound cursor, full estimator) funnels into this
    // one function, so the schedule choice cannot break fast == full.
    std::array<double, kMaxScenarios> terms;
    int n = 0;
    for (int i = 0; i < k; ++i) {
      const double thr = scores[i].tasks_per_hour;
      if (thr > 0.0) {
        terms[static_cast<size_t>(n++)] =
            weights[static_cast<size_t>(i)] / thr;
      }
    }
    const double sum = BlockedSum(terms.data(), n);
    out.tasks_per_hour = sum > 0.0 ? 1.0 / sum : 0.0;
    return out;
  }

  DOT_CHECK(objective.alpha > 0.0) << "CVaR alpha must be in (0, 1]";
  // Worst-first scenario order: lowest throughput = highest TOC first;
  // unbounded (0) is the *cheapest* possible TOC and sorts last; exact
  // throughput ties break by scenario index (deterministic).
  std::array<int, kMaxScenarios> order;
  for (int i = 0; i < k; ++i) order[static_cast<size_t>(i)] = i;
  const auto sort_key = [&](int i) {
    const double thr = scores[i].tasks_per_hour;
    return thr > 0.0 ? thr : std::numeric_limits<double>::infinity();
  };
  std::sort(order.begin(), order.begin() + k, [&](int a, int b) {
    const double ka = sort_key(a);
    const double kb = sort_key(b);
    return ka != kb ? ka < kb : a < b;
  });

  double remaining = objective.alpha;
  double sum = 0.0;
  for (int j = 0; j < k && remaining > 0.0; ++j) {
    const int i = order[static_cast<size_t>(j)];
    const double w = weights[static_cast<size_t>(i)];
    const double thr = scores[i].tasks_per_hour;
    if (j == 0 && w >= remaining) {
      // The whole tail lives in one scenario: CVaR_α is exactly that
      // scenario's TOC. Return its throughput directly (bit-identical to
      // the worst case; α/(α/thr) is not thr bitwise).
      out.tasks_per_hour = thr;
      return out;
    }
    const double take = std::min(w, remaining);
    if (thr > 0.0) sum += take / thr;
    remaining -= take;
  }
  out.tasks_per_hour = sum > 0.0 ? objective.alpha / sum : 0.0;
  return out;
}

namespace {

/// K child scorers aggregated through AggregateEnsemble. Scenario order is
/// fixed at construction, every per-scenario loop runs in that order, and
/// the children's own Score contracts guarantee per-scenario bit-identity
/// to the full path — so the aggregate is bit-identical to
/// EnsembleEstimator::Evaluate at every thread count.
class EnsembleScorer : public FastScorer {
 public:
  EnsembleScorer(EnsembleObjective objective, std::vector<double> weights,
                 std::vector<std::unique_ptr<FastScorer>> children)
      : objective_(objective),
        weights_(std::move(weights)),
        children_(std::move(children)) {}

  QuickPerf Score(const std::vector<int>& placement) const override {
    if (children_.size() == 1) return children_[0]->Score(placement);
    std::array<ScenarioScore, kMaxScenarios> scores;
    QuickPerf nominal;
    for (size_t i = 0; i < children_.size(); ++i) {
      const QuickPerf qp = children_[i]->Score(placement);
      if (i == 0) nominal = qp;
      scores[i] = {qp.tasks_per_hour, qp.sla_ok};
    }
    return Finish(nominal, scores.data());
  }

  class Cursor : public FastScorer::Cursor {
   public:
    Cursor(const EnsembleScorer* owner,
           std::vector<std::unique_ptr<FastScorer::Cursor>> children)
        : owner_(owner), children_(std::move(children)) {}

    void Reset(const std::vector<int>& placement) override {
      for (auto& c : children_) c->Reset(placement);
    }
    void Touch(int object_id, const std::vector<int>& placement) override {
      for (auto& c : children_) c->Touch(object_id, placement);
    }
    QuickPerf Score(const std::vector<int>& placement) const override {
      if (children_.size() == 1) return children_[0]->Score(placement);
      std::array<ScenarioScore, kMaxScenarios> scores;
      QuickPerf nominal;
      for (size_t i = 0; i < children_.size(); ++i) {
        const QuickPerf qp = children_[i]->Score(placement);
        if (i == 0) nominal = qp;
        scores[i] = {qp.tasks_per_hour, qp.sla_ok};
      }
      return owner_->Finish(nominal, scores.data());
    }

   private:
    const EnsembleScorer* owner_;
    std::vector<std::unique_ptr<FastScorer::Cursor>> children_;
  };

  std::unique_ptr<FastScorer::Cursor> MakeCursor() const override {
    std::vector<std::unique_ptr<FastScorer::Cursor>> cursors;
    cursors.reserve(children_.size());
    for (const auto& child : children_) cursors.push_back(child->MakeCursor());
    return std::make_unique<Cursor>(this, std::move(cursors));
  }

  /// K child bound cursors. Admissibility composes through the monotone
  /// aggregation (see AggregateEnsemble); the few-ULP drift the unequal
  /// summation orders can introduce is absorbed by inflating interior-node
  /// bounds by kBoundSafety — exactly the margin the search's comparisons
  /// already budget for. At a leaf (every object assigned) the children are
  /// exact, no inflation is applied, and the aggregate is bit-identical to
  /// Score — the contract the branch-and-bound leaf path requires.
  class BoundCursor : public FastScorer::BoundCursor {
   public:
    BoundCursor(const EnsembleScorer* owner,
                std::vector<std::unique_ptr<FastScorer::BoundCursor>> children)
        : owner_(owner), children_(std::move(children)) {}

    void Reset() override {
      assigned_ = 0;
      for (auto& c : children_) c->Reset();
    }
    void Assign(int object_id, const std::vector<int>& placement) override {
      ++assigned_;
      for (auto& c : children_) c->Assign(object_id, placement);
    }
    void Unassign(int object_id) override {
      --assigned_;
      for (auto& c : children_) c->Unassign(object_id);
    }
    QuickPerf Optimistic(const std::vector<int>& placement) const override {
      if (children_.size() == 1) return children_[0]->Optimistic(placement);
      std::array<ScenarioScore, kMaxScenarios> scores;
      QuickPerf nominal;
      for (size_t i = 0; i < children_.size(); ++i) {
        const QuickPerf qp = children_[i]->Optimistic(placement);
        if (i == 0) nominal = qp;
        scores[i] = {qp.tasks_per_hour, qp.sla_ok};
      }
      QuickPerf out = owner_->Finish(nominal, scores.data());
      const bool leaf = assigned_ == static_cast<int>(placement.size());
      if (!leaf && out.tasks_per_hour > 0.0) {
        out.tasks_per_hour *= 1.0 + kBoundSafety;
      }
      return out;
    }

   private:
    const EnsembleScorer* owner_;
    std::vector<std::unique_ptr<FastScorer::BoundCursor>> children_;
    int assigned_ = 0;
  };

  std::unique_ptr<FastScorer::BoundCursor> MakeBoundCursor() const override {
    std::vector<std::unique_ptr<FastScorer::BoundCursor>> cursors;
    cursors.reserve(children_.size());
    for (const auto& child : children_) {
      auto cursor = child->MakeBoundCursor();
      // All or nothing: a scenario without a bound would force its slot to
      // "unbounded" at every node, weakening the aggregate to uselessness.
      if (cursor == nullptr) return nullptr;
      cursors.push_back(std::move(cursor));
    }
    return std::make_unique<BoundCursor>(this, std::move(cursors));
  }

  double ObjectTimeSpreadMs(int object) const override {
    // Ordering hint only (never a bound): the largest spread any scenario
    // sees is the natural "this object matters most" signal.
    double spread = 0.0;
    for (const auto& child : children_) {
      spread = std::max(spread, child->ObjectTimeSpreadMs(object));
    }
    return spread;
  }

  long long cache_hits() const override {
    long long total = 0;
    for (const auto& child : children_) total += child->cache_hits();
    return total;
  }
  long long cache_misses() const override {
    long long total = 0;
    for (const auto& child : children_) total += child->cache_misses();
    return total;
  }

 private:
  /// Aggregates per-scenario scores into the outward QuickPerf: effective
  /// throughput + chance verdict, with scenario 0's elapsed/tpmc carried
  /// through for reporting (the search consumes only thr and sla_ok).
  QuickPerf Finish(const QuickPerf& nominal,
                   const ScenarioScore* scores) const {
    const EnsembleVerdict v = AggregateEnsemble(
        objective_, weights_, scores, static_cast<int>(children_.size()));
    QuickPerf out = nominal;
    out.tasks_per_hour = v.tasks_per_hour;
    out.sla_ok = v.sla_ok;
    return out;
  }

  EnsembleObjective objective_;
  std::vector<double> weights_;
  std::vector<std::unique_ptr<FastScorer>> children_;
};

}  // namespace

std::unique_ptr<FastScorer> MakeEnsembleScorer(
    const WorkloadModel& nominal, const ScenarioEnsemble& ensemble,
    const EnsembleObjective& objective,
    const std::vector<double>& io_scale_hint, const PerfTargets& targets) {
  const int k = ensemble.size();
  if (k < 1 || k > kMaxScenarios) return nullptr;
  std::vector<std::unique_ptr<FastScorer>> children;
  children.reserve(static_cast<size_t>(k));
  for (const Scenario& sc : ensemble.scenarios) {
    const WorkloadModel* model = sc.model != nullptr ? sc.model : &nominal;
    if (model->sla_kind() != targets.kind) return nullptr;
    auto child = model->MakeFastScorer(
        ComposeIoScale(io_scale_hint, sc.io_scale), targets.query_caps_ms,
        targets.min_tpmc, kDefaultSlaTolerance);
    if (child == nullptr) return nullptr;
    children.push_back(std::move(child));
  }
  return std::make_unique<EnsembleScorer>(
      objective, ensemble.NormalizedWeights(), std::move(children));
}

EnsembleEstimator::EnsembleEstimator(const WorkloadModel& nominal,
                                     const ScenarioEnsemble& ensemble,
                                     const EnsembleObjective& objective,
                                     const std::vector<double>& io_scale_hint,
                                     PerfTargets targets)
    : weights_(ensemble.NormalizedWeights()),
      objective_(objective),
      targets_(std::move(targets)) {
  DOT_CHECK(ensemble.size() >= 1 && ensemble.size() <= kMaxScenarios)
      << "ensemble size must be in [1, " << kMaxScenarios << "]";
  DOT_CHECK(objective_.min_feasible_fraction >= 0.0 &&
            objective_.min_feasible_fraction <= 1.0);
  DOT_CHECK(objective_.kind != EnsembleObjective::Kind::kCVaR ||
            (objective_.alpha > 0.0 && objective_.alpha <= 1.0))
      << "CVaR alpha must be in (0, 1]";
  slots_.reserve(static_cast<size_t>(ensemble.size()));
  for (const Scenario& sc : ensemble.scenarios) {
    Slot slot;
    slot.model = sc.model != nullptr ? sc.model : &nominal;
    slot.io_scale = ComposeIoScale(io_scale_hint, sc.io_scale);
    slots_.push_back(std::move(slot));
  }
}

EnsembleVerdict EnsembleEstimator::Evaluate(const std::vector<int>& placement,
                                            PerfEstimate* nominal_out) const {
  const int k = static_cast<int>(slots_.size());
  std::array<ScenarioScore, kMaxScenarios> scores;
  for (int i = 0; i < k; ++i) {
    const Slot& slot = slots_[static_cast<size_t>(i)];
    PerfEstimate est = slot.model->EstimateWithIoScale(
        placement, slot.io_scale,
        /*need_io_by_object=*/i == 0 && nominal_out != nullptr);
    scores[static_cast<size_t>(i)] = {est.tasks_per_hour,
                                      MeetsTargets(est, targets_)};
    if (i == 0 && nominal_out != nullptr) *nominal_out = std::move(est);
  }
  return AggregateEnsemble(objective_, weights_, scores.data(), k);
}

}  // namespace dot
