#ifndef DOTPROV_DOT_EVAL_TABLES_H_
#define DOTPROV_DOT_EVAL_TABLES_H_

#include <memory>
#include <vector>

#include "dot/candidate_evaluator.h"
#include "dot/layout.h"
#include "dot/optimizer.h"
#include "workload/workload.h"

namespace dot {

/// The TOC-only candidate evaluation fast path (DESIGN.md §4).
///
/// Both search phases consume only {toc, cost, feasibility, violation} per
/// candidate, yet the full path re-plans every query template and
/// heap-allocates an N-object PerfEstimate each time. This class scores a
/// candidate from precomputed per-object tables instead:
///
///   * space/capacity/cost: a fixed-order sum of per-object sizes into a
///     stack buffer, priced by the same span kernels Layout uses;
///   * workload time: the model's FastScorer (per-object device-time tables
///     for OLTP, a footprint-keyed plan cache for DSS, and for HTAP a
///     composite of both plus the interference tables).
///
/// Every value is bit-identical to what EvaluateOne/EstimateToc would
/// produce — the fast path reorganizes the arithmetic, it never
/// approximates — so search decisions (and therefore results) are unchanged
/// and only the committed winner needs a full re-score to fill in its
/// PerfEstimate.
class FastEvaluator {
 public:
  /// Builds the tables once for the run. Disabled (enabled() == false) when
  /// the workload model offers no FastScorer; callers then use the full
  /// path.
  explicit FastEvaluator(const DotOptimizer& estimator);
  ~FastEvaluator();

  bool enabled() const { return scorer_ != nullptr; }

  /// Scores one candidate without materializing a PerfEstimate
  /// (CandidateEval::estimate stays empty). Thread-safe.
  CandidateEval EvaluateQuick(const std::vector<int>& placement) const;

  /// Branch-and-bound leaf path: the same fit/cost kernels as
  /// EvaluateQuick, but the workload score is supplied by the caller (the
  /// bound cursor's Optimistic(), which is exact at a fully assigned
  /// placement). Bit-identical to EvaluateQuick whenever `qp` equals what
  /// the scorer would produce. Thread-safe.
  CandidateEval EvaluateWithScore(const std::vector<int>& placement,
                                  const QuickPerf& qp) const;

  /// The underlying workload scorer (never null while enabled()); the
  /// exact search builds its per-subtree BoundCursors from it.
  const FastScorer* scorer() const { return scorer_.get(); }

  /// Single-threaded incremental walker for odometer scans: Touch() the
  /// changed objects, then Eval(). One per shard.
  class Cursor {
   public:
    Cursor(const FastEvaluator* owner,
           std::unique_ptr<FastScorer::Cursor> scorer_cursor);
    void Reset(const std::vector<int>& placement);
    void Touch(int object_id, const std::vector<int>& placement);
    CandidateEval Eval(const std::vector<int>& placement) const;

   private:
    const FastEvaluator* owner_;
    std::unique_ptr<FastScorer::Cursor> scorer_cursor_;
  };
  std::unique_ptr<Cursor> MakeCursor() const;

  /// Plan-cache traffic of the underlying scorer (0/0 when the model has no
  /// plan cache, e.g. OLTP).
  long long plan_cache_hits() const;
  long long plan_cache_misses() const;

  /// Stack budget for the per-class space accumulator; no real box comes
  /// close (Table 2 has 3-4 classes).
  static constexpr int kMaxClasses = 32;

 private:
  /// Fills fits/violation/cost; false (with toc = +inf) when over capacity.
  bool FitAndCost(const std::vector<int>& placement,
                  CandidateEval* eval) const;
  /// Applies the workload score: TOC, SLA feasibility.
  CandidateEval Finish(CandidateEval eval, const QuickPerf& qp) const;

  const DotOptimizer& estimator_;
  std::vector<double> size_gb_;  ///< per object, schema order
  std::unique_ptr<FastScorer> scorer_;
};

}  // namespace dot

#endif  // DOTPROV_DOT_EVAL_TABLES_H_
