#ifndef DOTPROV_DOT_OBJECT_ADVISOR_H_
#define DOTPROV_DOT_OBJECT_ADVISOR_H_

#include <vector>

#include "dot/problem.h"

namespace dot {

/// The Object Advisor comparator (Canim et al. [10], as characterised in
/// §4.2/§6): a performance-only, greedy object placer.
///
/// OA first collects the workload's I/O statistics on a single baseline —
/// everything on the *cheapest* class (the HDD-resident starting point of
/// the original system) — then ranks objects by estimated I/O-time saving
/// per GB and promotes them to faster storage classes while capacity lasts.
/// Two deliberate limitations vs. DOT, straight from the paper's critique:
///   1. it maximises performance, not TOC — prices never enter the ranking;
///   2. its profile is *not* layout-aware: the I/O counts were gathered
///      under the baseline's plans, so an index that went unused there (the
///      optimizer preferred sequential scans on slow storage) shows no
///      benefit and is never promoted, even though promoting it would have
///      flipped the plan.
std::vector<int> ObjectAdvisorPlacement(const DotProblem& problem);

}  // namespace dot

#endif  // DOTPROV_DOT_OBJECT_ADVISOR_H_
