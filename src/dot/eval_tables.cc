#include "dot/eval_tables.h"

#include <array>
#include <limits>

#include "common/check.h"
#include "dot/ensemble.h"
#include "dot/sla.h"
#include "storage/pricing.h"

namespace dot {

FastEvaluator::FastEvaluator(const DotOptimizer& estimator)
    : estimator_(estimator) {
  const DotProblem& problem = estimator_.problem();
  if (problem.box->NumClasses() > kMaxClasses) {
    // Out of stack budget: stay disabled and let the engine use the full
    // path — such a box must still optimize, just not fast.
    return;
  }
  size_gb_.reserve(static_cast<size_t>(problem.schema->NumObjects()));
  for (const DbObject& o : problem.schema->objects()) {
    size_gb_.push_back(o.size_gb);
  }
  const PerfTargets& targets = estimator_.targets();
  if (targets.kind != problem.workload->sla_kind()) {
    // A targets_override of the other kind (e.g. throughput targets over a
    // DSS workload) is degenerate but legal — MeetsTargets just finds every
    // candidate infeasible. The scorers assume matching caps, so leave the
    // fast path disabled and let the full path produce that verdict.
    return;
  }
  if (problem.ensemble != nullptr) {
    // Robust mode: K child scorers under the ensemble aggregation. Null
    // (some scenario model offers no fast scorer) leaves the fast path
    // disabled, exactly like a point forecast without one.
    scorer_ = MakeEnsembleScorer(*problem.workload, *problem.ensemble,
                                 problem.ensemble_objective,
                                 problem.io_scale_hint, targets);
    return;
  }
  scorer_ = problem.workload->MakeFastScorer(
      problem.io_scale_hint, targets.query_caps_ms, targets.min_tpmc,
      kDefaultSlaTolerance);
}

FastEvaluator::~FastEvaluator() = default;

bool FastEvaluator::FitAndCost(const std::vector<int>& placement,
                               CandidateEval* eval) const {
  const DotProblem& problem = estimator_.problem();
  // Space by class, in the exact object order Layout::SpaceByClass sums.
  std::array<double, kMaxClasses> used{};
  for (size_t o = 0; o < size_gb_.size(); ++o) {
    used[static_cast<size_t>(placement[o])] += size_gb_[o];
  }
  const Layout::CapacityFit fit =
      Layout::FitFromSpace(*problem.box, used.data());
  eval->fits = fit.fits;
  eval->violation_gb = fit.violation_gb;
  if (!eval->fits) {
    // EvaluateOne skips estimation for over-capacity candidates; so do we.
    eval->toc = std::numeric_limits<double>::infinity();
    return false;
  }
  eval->cost_cents_per_hour = LayoutCostCentsPerHour(
      *problem.box, used.data(), problem.box->NumClasses(),
      problem.cost_model);
  return true;
}

CandidateEval FastEvaluator::Finish(CandidateEval eval,
                                    const QuickPerf& qp) const {
  DOT_CHECK(qp.tasks_per_hour > 0) << "estimate produced zero throughput";
  eval.toc = eval.cost_cents_per_hour / qp.tasks_per_hour;
  eval.feasible = qp.sla_ok;
  if (!eval.feasible) eval.toc = std::numeric_limits<double>::infinity();
  return eval;
}

CandidateEval FastEvaluator::EvaluateQuick(
    const std::vector<int>& placement) const {
  DOT_CHECK(scorer_ != nullptr);
  CandidateEval eval;
  if (!FitAndCost(placement, &eval)) return eval;
  return Finish(eval, scorer_->Score(placement));
}

CandidateEval FastEvaluator::EvaluateWithScore(
    const std::vector<int>& placement, const QuickPerf& qp) const {
  CandidateEval eval;
  if (!FitAndCost(placement, &eval)) return eval;
  return Finish(eval, qp);
}

FastEvaluator::Cursor::Cursor(
    const FastEvaluator* owner,
    std::unique_ptr<FastScorer::Cursor> scorer_cursor)
    : owner_(owner), scorer_cursor_(std::move(scorer_cursor)) {}

void FastEvaluator::Cursor::Reset(const std::vector<int>& placement) {
  scorer_cursor_->Reset(placement);
}

void FastEvaluator::Cursor::Touch(int object_id,
                                  const std::vector<int>& placement) {
  scorer_cursor_->Touch(object_id, placement);
}

CandidateEval FastEvaluator::Cursor::Eval(
    const std::vector<int>& placement) const {
  CandidateEval eval;
  if (!owner_->FitAndCost(placement, &eval)) return eval;
  return owner_->Finish(eval, scorer_cursor_->Score(placement));
}

std::unique_ptr<FastEvaluator::Cursor> FastEvaluator::MakeCursor() const {
  DOT_CHECK(scorer_ != nullptr);
  return std::make_unique<Cursor>(this, scorer_->MakeCursor());
}

long long FastEvaluator::plan_cache_hits() const {
  return scorer_ != nullptr ? scorer_->cache_hits() : 0;
}

long long FastEvaluator::plan_cache_misses() const {
  return scorer_ != nullptr ? scorer_->cache_misses() : 0;
}

}  // namespace dot
