#include "dot/sla.h"

#include <cmath>

#include "common/check.h"
#include "workload/workload.h"

namespace dot {

PerfTargets MakePerfTargets(const WorkloadModel& model, const BoxConfig& box,
                            int num_objects, double relative_sla,
                            const std::vector<double>& io_scale,
                            const TailSla& tail) {
  DOT_CHECK(relative_sla > 0.0 && relative_sla <= 1.0)
      << "relative SLA must be in (0, 1], got " << relative_sla;
  PerfTargets targets;
  targets.kind = model.sla_kind();
  targets.relative_sla = relative_sla;
  targets.best_case = model.EstimateWithIoScale(
      UniformPlacement(num_objects, box.MostExpensiveClass()), io_scale);
  if (targets.kind == SlaKind::kPerQueryResponseTime) {
    const bool tighten = tail.percentile > 0.0 && tail.latency_cv > 0.0;
    const double factor =
        tighten ? TailLatencyFactor(tail.percentile, tail.latency_cv) : 1.0;
    targets.query_caps_ms.reserve(targets.best_case.unit_times_ms.size());
    for (double best : targets.best_case.unit_times_ms) {
      // Divide only when tightening: `x / 1.0` is x bitwise, but keeping
      // the untightened expression identical to the historical one makes
      // the no-tail path self-evidently unchanged.
      const double cap = best / relative_sla;
      targets.query_caps_ms.push_back(tighten ? cap / factor : cap);
    }
    if (tighten) {
      targets.tail_percentile = tail.percentile;
      targets.tail_latency_cv = tail.latency_cv;
    }
  } else {
    targets.min_tpmc = targets.best_case.tpmc * relative_sla;
  }
  return targets;
}

double NormalQuantile(double p) {
  DOT_CHECK(p > 0.0 && p < 1.0) << "quantile needs p in (0, 1), got " << p;
  // Acklam's rational approximation to the inverse normal CDF.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;
  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - kLow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double TailLatencyFactor(double percentile, double cv) {
  DOT_CHECK(percentile < 1.0)
      << "tail percentile must be < 1, got " << percentile;
  if (percentile <= 0.5 || cv <= 0.0) return 1.0;
  const double sigma2 = std::log(1.0 + cv * cv);
  const double sigma = std::sqrt(sigma2);
  return std::exp(sigma * NormalQuantile(percentile) - 0.5 * sigma2);
}

double CalibrateLatencyCv(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  const double mean = sum / static_cast<double>(samples.size());
  if (mean <= 0.0) return 0.0;
  double sq = 0.0;
  for (double s : samples) sq += (s - mean) * (s - mean);
  const double var = sq / static_cast<double>(samples.size() - 1);
  return std::sqrt(var) / mean;
}

bool MeetsTargets(const PerfEstimate& est, const PerfTargets& targets,
                  double tolerance) {
  if (targets.kind == SlaKind::kPerQueryResponseTime) {
    DOT_CHECK(est.unit_times_ms.size() == targets.query_caps_ms.size())
        << "estimate/targets arity mismatch";
    for (size_t i = 0; i < targets.query_caps_ms.size(); ++i) {
      if (est.unit_times_ms[i] > targets.query_caps_ms[i] * (1 + tolerance)) {
        return false;
      }
    }
    return true;
  }
  return est.tpmc >= targets.min_tpmc * (1 - tolerance);
}

double Psr(const PerfEstimate& est, const PerfTargets& targets) {
  if (targets.kind == SlaKind::kThroughput) {
    return MeetsTargets(est, targets) ? 1.0 : 0.0;
  }
  DOT_CHECK(est.unit_times_ms.size() == targets.query_caps_ms.size())
      << "estimate/targets arity mismatch";
  if (targets.query_caps_ms.empty()) return 1.0;
  int met = 0;
  for (size_t i = 0; i < targets.query_caps_ms.size(); ++i) {
    if (est.unit_times_ms[i] <= targets.query_caps_ms[i] * (1 + 1e-9)) ++met;
  }
  return static_cast<double>(met) /
         static_cast<double>(targets.query_caps_ms.size());
}

}  // namespace dot
