#include "dot/sla.h"

#include "common/check.h"
#include "workload/workload.h"

namespace dot {

PerfTargets MakePerfTargets(const WorkloadModel& model, const BoxConfig& box,
                            int num_objects, double relative_sla,
                            const std::vector<double>& io_scale) {
  DOT_CHECK(relative_sla > 0.0 && relative_sla <= 1.0)
      << "relative SLA must be in (0, 1], got " << relative_sla;
  PerfTargets targets;
  targets.kind = model.sla_kind();
  targets.relative_sla = relative_sla;
  targets.best_case = model.EstimateWithIoScale(
      UniformPlacement(num_objects, box.MostExpensiveClass()), io_scale);
  if (targets.kind == SlaKind::kPerQueryResponseTime) {
    targets.query_caps_ms.reserve(targets.best_case.unit_times_ms.size());
    for (double best : targets.best_case.unit_times_ms) {
      targets.query_caps_ms.push_back(best / relative_sla);
    }
  } else {
    targets.min_tpmc = targets.best_case.tpmc * relative_sla;
  }
  return targets;
}

bool MeetsTargets(const PerfEstimate& est, const PerfTargets& targets,
                  double tolerance) {
  if (targets.kind == SlaKind::kPerQueryResponseTime) {
    DOT_CHECK(est.unit_times_ms.size() == targets.query_caps_ms.size())
        << "estimate/targets arity mismatch";
    for (size_t i = 0; i < targets.query_caps_ms.size(); ++i) {
      if (est.unit_times_ms[i] > targets.query_caps_ms[i] * (1 + tolerance)) {
        return false;
      }
    }
    return true;
  }
  return est.tpmc >= targets.min_tpmc * (1 - tolerance);
}

double Psr(const PerfEstimate& est, const PerfTargets& targets) {
  if (targets.kind == SlaKind::kThroughput) {
    return MeetsTargets(est, targets) ? 1.0 : 0.0;
  }
  DOT_CHECK(est.unit_times_ms.size() == targets.query_caps_ms.size())
      << "estimate/targets arity mismatch";
  if (targets.query_caps_ms.empty()) return 1.0;
  int met = 0;
  for (size_t i = 0; i < targets.query_caps_ms.size(); ++i) {
    if (est.unit_times_ms[i] <= targets.query_caps_ms[i] * (1 + 1e-9)) ++met;
  }
  return static_cast<double>(met) /
         static_cast<double>(targets.query_caps_ms.size());
}

}  // namespace dot
