#include "dot/candidate_evaluator.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "dot/eval_tables.h"

namespace dot {

bool BetterCandidate(double toc_a, const std::vector<int>& placement_a,
                     double toc_b, const std::vector<int>& placement_b) {
  if (toc_a != toc_b) return toc_a < toc_b;
  return placement_a < placement_b;
}

std::vector<int> DecodeLayoutIndex(long long index, int num_objects,
                                   int num_classes) {
  DOT_CHECK(index >= 0 && num_objects >= 0 && num_classes >= 1);
  std::vector<int> placement(static_cast<size_t>(num_objects), 0);
  for (int o = 0; o < num_objects && index != 0; ++o) {
    placement[static_cast<size_t>(o)] = static_cast<int>(index % num_classes);
    index /= num_classes;
  }
  DOT_CHECK(index == 0) << "layout index out of range for the M^N space";
  return placement;
}

CandidateEvaluator::CandidateEvaluator(const DotOptimizer& estimator,
                                       ThreadPool* pool)
    : estimator_(estimator), pool_(pool) {
  DOT_CHECK(pool_ != nullptr);
  if (estimator_.problem().options.use_fast_eval) {
    auto fast = std::make_unique<FastEvaluator>(estimator_);
    if (fast->enabled()) fast_ = std::move(fast);
  }
}

CandidateEvaluator::~CandidateEvaluator() = default;

CandidateEval CandidateEvaluator::EvaluateOne(const Layout& layout) const {
  return EvaluateOneWith(estimator_, layout);
}

CandidateEval CandidateEvaluator::EvaluateOneWith(
    const DotOptimizer& estimator, const Layout& layout) {
  CandidateEval eval;
  const Layout::CapacityFit fit = layout.ComputeCapacityFit();
  eval.fits = fit.fits;
  eval.violation_gb = fit.violation_gb;
  if (!eval.fits) {
    eval.toc = std::numeric_limits<double>::infinity();
    return eval;
  }
  // EstimateToc owns the SLA verdict: MeetsTargets on the point forecast,
  // the chance constraint under an ensemble.
  bool sla_ok = false;
  eval.toc = estimator.EstimateToc(layout, &eval.estimate,
                                   &eval.cost_cents_per_hour, &sla_ok);
  eval.feasible = sla_ok;
  if (!eval.feasible) eval.toc = std::numeric_limits<double>::infinity();
  return eval;
}

CandidateEval CandidateEvaluator::EvaluateQuick(const Layout& layout) const {
  if (fast_ == nullptr) return EvaluateOne(layout);
  return fast_->EvaluateQuick(layout.placement());
}

std::vector<CandidateEval> CandidateEvaluator::EvaluateBatch(
    const std::vector<Layout>& candidates) const {
  std::vector<CandidateEval> evals(candidates.size());
  pool_->ParallelFor(0, static_cast<int64_t>(candidates.size()),
                     [&](int64_t i) {
                       evals[static_cast<size_t>(i)] =
                           EvaluateOne(candidates[static_cast<size_t>(i)]);
                     });
  return evals;
}

std::vector<CandidateEval> CandidateEvaluator::EvaluateBatchQuick(
    const std::vector<Layout>& candidates) const {
  std::vector<CandidateEval> evals(candidates.size());
  pool_->ParallelFor(0, static_cast<int64_t>(candidates.size()),
                     [&](int64_t i) {
                       evals[static_cast<size_t>(i)] =
                           EvaluateQuick(candidates[static_cast<size_t>(i)]);
                     });
  return evals;
}

long long CandidateEvaluator::plan_cache_hits() const {
  return fast_ != nullptr ? fast_->plan_cache_hits() : 0;
}

long long CandidateEvaluator::plan_cache_misses() const {
  return fast_ != nullptr ? fast_->plan_cache_misses() : 0;
}

CandidateEvaluator::SpaceScan CandidateEvaluator::ScanLayoutSpace(
    long long space_begin, long long space_end) const {
  const DotProblem& problem = estimator_.problem();
  const int n = problem.schema->NumObjects();
  const int m = problem.box->NumClasses();

  SpaceScan out;
  if (space_begin >= space_end) return out;

  // Oversplit relative to the lane count for load balance. The shard count
  // (and thus the boundaries) DOES vary with the thread count — determinism
  // comes solely from the merge below being a minimum under the
  // BetterCandidate total order, which picks the same winner for any
  // partition of the space. Do not replace the reduction with a
  // first-found or shard-order rule. The fast path keeps this safe: every
  // scalar a candidate is scored from is a fixed-order sum over tables, so
  // its value cannot depend on which shard (or thread) evaluated it.
  const int num_shards = static_cast<int>(std::min<long long>(
      space_end - space_begin, 8LL * pool_->num_threads()));
  std::vector<SpaceScan> per_shard(static_cast<size_t>(num_shards));

  pool_->ParallelForShards(
      space_begin, space_end, num_shards,
      [&](int shard, int64_t shard_begin, int64_t shard_end) {
        SpaceScan local;
        std::vector<int> placement = DecodeLayoutIndex(shard_begin, n, m);
        std::unique_ptr<FastEvaluator::Cursor> cursor;
        if (fast_ != nullptr) {
          cursor = fast_->MakeCursor();
          cursor->Reset(placement);
        }
        for (int64_t idx = shard_begin; idx < shard_end; ++idx) {
          local.evaluated += 1;
          CandidateEval eval;
          if (cursor != nullptr) {
            eval = cursor->Eval(placement);
          } else {
            eval = EvaluateOne(Layout(problem.schema, problem.box, placement));
          }
          if (eval.feasible) {
            if (!local.feasible_found ||
                BetterCandidate(eval.toc, placement, local.best.toc,
                                local.best_placement)) {
              local.feasible_found = true;
              local.best = std::move(eval);
              local.best_placement = placement;
            }
          }
          // Advance the M-ary odometer (digit 0 least significant) and tell
          // the cursor which digits rolled — almost always just digit 0, so
          // incremental scorers refresh O(changed digits) state per step.
          int digit = 0;
          while (digit < n) {
            const size_t d = static_cast<size_t>(digit);
            const bool carried = ++placement[d] >= m;
            if (carried) placement[d] = 0;
            if (cursor != nullptr && idx + 1 < shard_end) {
              cursor->Touch(digit, placement);
            }
            if (!carried) break;
            ++digit;
          }
        }
        per_shard[static_cast<size_t>(shard)] = std::move(local);
      });

  for (SpaceScan& shard : per_shard) {
    out.evaluated += shard.evaluated;
    if (!shard.feasible_found) continue;
    if (!out.feasible_found ||
        BetterCandidate(shard.best.toc, shard.best_placement, out.best.toc,
                        out.best_placement)) {
      out.feasible_found = true;
      out.best = std::move(shard.best);
      out.best_placement = std::move(shard.best_placement);
    }
  }

  // Quick evaluations carry no PerfEstimate; re-score the winner through
  // the full path (bit-identical toc/cost, now with the estimate filled).
  if (out.feasible_found && fast_ != nullptr) {
    out.best =
        EvaluateOne(Layout(problem.schema, problem.box, out.best_placement));
  }
  return out;
}

}  // namespace dot
