#include "dot/exhaustive.h"

#include <chrono>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "dot/layout.h"
#include "dot/sla.h"

namespace dot {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DotResult ExhaustiveSearch(const DotProblem& problem,
                           long long max_layouts) {
  DOT_CHECK(problem.schema != nullptr && problem.box != nullptr &&
            problem.workload != nullptr);
  const double start_ms = NowMs();
  const int n = problem.schema->NumObjects();
  const int m = problem.box->NumClasses();
  const double total = std::pow(static_cast<double>(m), n);
  DOT_CHECK(total <= static_cast<double>(max_layouts))
      << "exhaustive search over " << total << " layouts exceeds the guard ("
      << max_layouts << ")";

  DotResult result;
  result.targets =
      problem.targets_override != nullptr
          ? *problem.targets_override
          : MakePerfTargets(*problem.workload, *problem.box, n,
                            problem.relative_sla, problem.io_scale_hint);

  DotOptimizer estimator(problem);  // reuse estimateTOC / targets
  double best_toc = std::numeric_limits<double>::infinity();
  bool feasible_found = false;

  std::vector<int> placement(static_cast<size_t>(n), 0);
  for (;;) {
    result.layouts_evaluated += 1;
    Layout layout(problem.schema, problem.box, placement);
    if (layout.CheckCapacity().ok()) {
      PerfEstimate est;
      const double toc = estimator.EstimateToc(placement, &est);
      if (MeetsTargets(est, result.targets)) {
        feasible_found = true;
        if (toc < best_toc) {
          best_toc = toc;
          result.placement = placement;
          result.toc_cents_per_task = toc;
          result.layout_cost_cents_per_hour =
              layout.CostCentsPerHour(problem.cost_model);
          result.estimate = std::move(est);
        }
      }
    }
    // Advance the M-ary odometer over object placements.
    int digit = 0;
    while (digit < n) {
      if (++placement[static_cast<size_t>(digit)] < m) break;
      placement[static_cast<size_t>(digit)] = 0;
      ++digit;
    }
    if (digit == n) break;
  }

  if (!feasible_found) {
    result.status = Status::Infeasible(
        "no layout satisfies the capacity and SLA constraints");
  }
  result.optimize_ms = NowMs() - start_ms;
  return result;
}

}  // namespace dot
