#include "dot/exhaustive.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "dot/candidate_evaluator.h"
#include "dot/layout.h"
#include "dot/sla.h"

namespace dot {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DotResult ExhaustiveSearch(const DotProblem& problem,
                           long long max_layouts) {
  DOT_CHECK(problem.schema != nullptr && problem.box != nullptr &&
            problem.workload != nullptr);
  const double start_ms = NowMs();
  const int n = problem.schema->NumObjects();
  const int m = problem.box->NumClasses();
  const double total_f = std::pow(static_cast<double>(m), n);
  DOT_CHECK(total_f <= static_cast<double>(max_layouts))
      << "exhaustive search over " << total_f
      << " layouts exceeds the guard (" << max_layouts << ")";
  // DotResult::layouts_evaluated is an int; a caller-raised guard must not
  // let the count wrap silently.
  DOT_CHECK(total_f <= static_cast<double>(std::numeric_limits<int>::max()))
      << "layout count " << total_f << " overflows layouts_evaluated";
  long long total = 1;
  for (int o = 0; o < n; ++o) total *= m;

  DotResult result;
  DotOptimizer estimator(problem);  // reuse estimateTOC / targets
  result.targets = estimator.targets();

  // Shard the mixed-radix layout space [0, M^N) across the pool; the
  // reduction under (TOC, lexicographically lowest placement) is a total
  // order, so the winner is the same at every thread count.
  ThreadPool pool(problem.num_threads);
  const CandidateEvaluator evaluator(estimator, &pool);
  CandidateEvaluator::SpaceScan scan = evaluator.ScanLayoutSpace(0, total);

  result.layouts_evaluated = static_cast<int>(scan.evaluated);
  result.plan_cache_hits = evaluator.plan_cache_hits();
  result.plan_cache_misses = evaluator.plan_cache_misses();
  if (scan.feasible_found) {
    result.placement = std::move(scan.best_placement);
    result.toc_cents_per_task = scan.best.toc;
    result.layout_cost_cents_per_hour = scan.best.cost_cents_per_hour;
    result.estimate = std::move(scan.best.estimate);
  } else {
    result.status = Status::Infeasible(
        "no layout satisfies the capacity and SLA constraints");
  }
  result.optimize_ms = NowMs() - start_ms;
  return result;
}

}  // namespace dot
