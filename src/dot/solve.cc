#include "dot/solve.h"

#include <utility>

#include "common/check.h"

namespace dot {

namespace {

/// layouts/s from a count and a wall-clock; 0 when either is 0 so the
/// field never divides by zero or reports a nonsense rate for a no-op run.
double LayoutsPerSecond(long long layouts, double ms) {
  if (layouts <= 0 || ms <= 0.0) return 0.0;
  return static_cast<double>(layouts) / (ms / 1000.0);
}

/// Folds a single-shot DotResult into the common shape.
SolveResult FromDot(DotResult result, SolveMethod method,
                    const char* engine) {
  SolveResult out;
  out.status = result.status;
  out.placement = result.placement;
  out.toc_cents_per_task = result.toc_cents_per_task;
  out.provenance.method = method;
  out.provenance.engine = engine;
  out.provenance.layouts_evaluated = result.layouts_evaluated;
  out.provenance.warm_start_hits = result.warm_start_hits;
  out.provenance.nodes_expanded = result.nodes_expanded;
  out.provenance.nodes_pruned_bound = result.nodes_pruned_bound;
  out.provenance.nodes_pruned_infeasible = result.nodes_pruned_infeasible;
  out.provenance.plan_cache_hits = result.plan_cache_hits;
  out.provenance.plan_cache_misses = result.plan_cache_misses;
  out.provenance.arena_resets = result.arena_resets;
  out.provenance.arena_bytes_peak = result.arena_bytes_peak;
  out.provenance.solve_ms = result.optimize_ms;
  out.provenance.layouts_per_s =
      LayoutsPerSecond(result.layouts_evaluated, result.optimize_ms);
  out.dot = std::move(result);
  return out;
}

}  // namespace

Status SolveSpec::Validate(const DotProblem& problem) const {
  if (ensemble != nullptr && method == SolveMethod::kEpochPlan) {
    return Status::InvalidArgument(
        "ensemble mode is single-shot; kEpochPlan re-derives per-epoch "
        "point problems");
  }
  if (ensemble != nullptr && method == SolveMethod::kFleet) {
    return Status::InvalidArgument(
        "ensemble mode is single-shot; fleet tenants are point forecasts");
  }
  if (problem.box == nullptr) {
    return Status::InvalidArgument("DotProblem::box is null");
  }
  if (method != SolveMethod::kFleet) {
    if (problem.schema == nullptr || problem.workload == nullptr) {
      return Status::InvalidArgument(
          "DotProblem::schema and ::workload must be set");
    }
    return Status::OK();
  }
  // --- kFleet: the problem carries box + options; the spec carries the
  // tenants, each a full problem of its own.
  if (fleet == nullptr || fleet->tenants == nullptr) {
    return Status::InvalidArgument(
        "kFleet needs SolveSpec::fleet with a tenants vector");
  }
  if (fleet->tenants->empty()) {
    return Status::InvalidArgument("fleet has no tenants");
  }
  for (const FleetTenant& t : *fleet->tenants) {
    if (t.problem.schema == nullptr || t.problem.workload == nullptr) {
      return Status::InvalidArgument(
          "tenant " + t.name + " has no schema or workload");
    }
    if (t.problem.box != problem.box) {
      return Status::InvalidArgument(
          "tenant " + t.name +
          " references a different box than the fleet problem");
    }
    if (t.problem.ensemble != nullptr) {
      return Status::InvalidArgument(
          "tenant " + t.name +
          " carries a scenario ensemble; fleet mode is point-forecast");
    }
  }
  const auto& capacity = fleet->config.constraints.capacity_gb;
  if (!capacity.empty() &&
      static_cast<int>(capacity.size()) != problem.box->NumClasses()) {
    return Status::InvalidArgument(
        "FleetConstraints::capacity_gb must be empty or have one entry "
        "per storage class");
  }
  return Status::OK();
}

SolveResult Solve(const DotProblem& problem, const SolveSpec& spec) {
  {
    Status st = spec.Validate(problem);
    if (!st.ok()) {
      SolveResult out;
      out.status = std::move(st);
      out.provenance.method = spec.method;
      return out;
    }
  }
  // The spec's ensemble overlays the problem's for this call — a local
  // copy keeps the caller's problem untouched and the overlay scoped.
  DotProblem p = problem;
  if (spec.ensemble != nullptr) {
    p.ensemble = spec.ensemble;
    p.ensemble_objective = spec.ensemble_objective;
  }
  switch (spec.method) {
    case SolveMethod::kDotHeuristic:
      return FromDot(DotOptimizer(p).Optimize(), spec.method,
                     "dot-heuristic");
    case SolveMethod::kExact:
      return FromDot(ExactSearch(p, ExactStrategy::kBranchAndBound,
                                 spec.max_layouts, spec.warm_starts),
                     spec.method, "branch-and-bound");
    case SolveMethod::kEnumerate:
      return FromDot(
          ExactSearch(p, ExactStrategy::kEnumerate, spec.max_layouts),
          spec.method, "enumerate");
    case SolveMethod::kEpochPlan: {
      ReprovisionConfig config;
      config.relative_sla = problem.relative_sla;
      config.cost_model = problem.cost_model;
      config.migration = spec.migration;
      config.migration_weight = spec.migration_weight;
      config.search = spec.epoch_search;
      config.options = problem.options;
      ReprovisionPlanner planner(problem.schema, problem.box, config);

      // No schedule = the single-shot special case: one epoch of the
      // problem's own workload. Duration 1 h — multiplying TOC by a
      // positive constant is monotone, so the chosen layout matches the
      // single-shot searches (and with a zero migration model the TOC
      // matches bit for bit; dot_solve_test pins it).
      EpochSchedule one_epoch;
      const EpochSchedule* schedule = spec.schedule;
      if (schedule == nullptr) {
        one_epoch.Add(problem.workload, /*duration_hours=*/1.0,
                      /*label=*/"now", problem.profiles);
        schedule = &one_epoch;
      }

      SolveResult out;
      out.has_plan = true;
      out.plan = planner.Plan(*schedule, spec.current_layout);
      out.status = out.plan.status;
      out.provenance.method = spec.method;
      out.provenance.engine = "epoch-dp";
      out.provenance.layouts_evaluated = out.plan.layouts_evaluated;
      out.provenance.pool_size = out.plan.pool_size;
      out.provenance.arena_resets = out.plan.arena_resets;
      out.provenance.arena_bytes_peak = out.plan.arena_bytes_peak;
      out.provenance.solve_ms = out.plan.plan_ms;
      out.provenance.layouts_per_s =
          LayoutsPerSecond(out.plan.layouts_evaluated, out.plan.plan_ms);
      if (out.status.ok() && !out.plan.steps.empty()) {
        out.placement = out.plan.steps.front().placement;
        out.toc_cents_per_task = out.plan.steps.front().toc_cents_per_task;
      }
      return out;
    }
    case SolveMethod::kFleet: {
      FleetConfig config = spec.fleet->config;
      config.options = problem.options;
      FleetPlanner planner(problem.box, config);

      SolveResult out;
      out.has_fleet = true;
      out.fleet = planner.Plan(*spec.fleet->tenants);
      out.status = out.fleet.status;
      out.toc_cents_per_task = out.fleet.total_toc_cents_per_task;
      out.provenance.method = spec.method;
      out.provenance.engine = "fleet-lagrangian";
      out.provenance.layouts_evaluated = out.fleet.layouts_evaluated;
      out.provenance.pool_builds = out.fleet.pool_builds;
      out.provenance.pool_cache_hits = out.fleet.pool_cache_hits;
      out.provenance.solve_ms = out.fleet.plan_ms;
      out.provenance.layouts_per_s =
          LayoutsPerSecond(out.fleet.layouts_evaluated, out.fleet.plan_ms);
      return out;
    }
  }
  DOT_CHECK(false) << "unknown SolveMethod";
  return SolveResult{};
}

}  // namespace dot
