#include "dot/solve.h"

#include <utility>

#include "common/check.h"

namespace dot {

namespace {

/// Folds a single-shot DotResult into the common shape.
SolveResult FromDot(DotResult result) {
  SolveResult out;
  out.status = result.status;
  out.placement = result.placement;
  out.toc_cents_per_task = result.toc_cents_per_task;
  out.layouts_evaluated = result.layouts_evaluated;
  out.dot = std::move(result);
  return out;
}

}  // namespace

SolveResult Solve(const DotProblem& problem, const SolveSpec& spec) {
  DOT_CHECK(problem.schema != nullptr && problem.box != nullptr &&
            problem.workload != nullptr);
  // The spec's ensemble overlays the problem's for this call — a local
  // copy keeps the caller's problem untouched and the overlay scoped.
  DotProblem p = problem;
  if (spec.ensemble != nullptr) {
    DOT_CHECK(spec.method != SolveMethod::kEpochPlan)
        << "ensemble mode is single-shot; kEpochPlan re-derives per-epoch "
           "point problems";
    p.ensemble = spec.ensemble;
    p.ensemble_objective = spec.ensemble_objective;
  }
  switch (spec.method) {
    case SolveMethod::kDotHeuristic:
      return FromDot(DotOptimizer(p).Optimize());
    case SolveMethod::kExact:
      return FromDot(ExactSearch(p, ExactStrategy::kBranchAndBound,
                                 spec.max_layouts, spec.warm_starts));
    case SolveMethod::kEnumerate:
      return FromDot(
          ExactSearch(p, ExactStrategy::kEnumerate, spec.max_layouts));
    case SolveMethod::kEpochPlan: {
      ReprovisionConfig config;
      config.relative_sla = problem.relative_sla;
      config.cost_model = problem.cost_model;
      config.migration = spec.migration;
      config.migration_weight = spec.migration_weight;
      config.search = spec.epoch_search;
      config.options = problem.options;
      ReprovisionPlanner planner(problem.schema, problem.box, config);

      // No schedule = the single-shot special case: one epoch of the
      // problem's own workload. Duration 1 h — multiplying TOC by a
      // positive constant is monotone, so the chosen layout matches the
      // single-shot searches (and with a zero migration model the TOC
      // matches bit for bit; dot_solve_test pins it).
      EpochSchedule one_epoch;
      const EpochSchedule* schedule = spec.schedule;
      if (schedule == nullptr) {
        one_epoch.Add(problem.workload, /*duration_hours=*/1.0,
                      /*label=*/"now", problem.profiles);
        schedule = &one_epoch;
      }

      SolveResult out;
      out.has_plan = true;
      out.plan = planner.Plan(*schedule, spec.current_layout);
      out.status = out.plan.status;
      out.layouts_evaluated = out.plan.layouts_evaluated;
      if (out.status.ok() && !out.plan.steps.empty()) {
        out.placement = out.plan.steps.front().placement;
        out.toc_cents_per_task = out.plan.steps.front().toc_cents_per_task;
      }
      return out;
    }
  }
  DOT_CHECK(false) << "unknown SolveMethod";
  return SolveResult{};
}

}  // namespace dot
