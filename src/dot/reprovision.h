#ifndef DOTPROV_DOT_REPROVISION_H_
#define DOTPROV_DOT_REPROVISION_H_

#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "dot/problem.h"
#include "storage/migration.h"
#include "storage/pricing.h"
#include "storage/storage_class.h"
#include "workload/epoch_schedule.h"

namespace dot {

/// Which per-epoch candidate search seeds the planner's layout pool.
enum class EpochSearch {
  /// ExactSearch(kBranchAndBound): each epoch's solo optimum is the true
  /// optimum of that epoch's §2.5 instance. The default.
  kExact,
  /// DotOptimizer::Optimize (Procedure 1): needs Epoch::profiles; the
  /// everyday heuristic path for instances too large to solve exactly.
  kDot,
};

/// Sentinel for ReprovisionConfig::migration_weight: derive the exchange
/// rate from the schedule itself (see the field comment).
inline constexpr double kAutoMigrationWeight = -1.0;

/// Knobs of a ReprovisionPlanner run.
struct ReprovisionConfig {
  /// Per-epoch relative SLA (each epoch derives its own targets from its
  /// own best case, exactly as a single-shot run would).
  double relative_sla = 0.5;

  /// Layout cost model shared by every epoch evaluation.
  CostModelSpec cost_model;

  /// What moving data costs (storage/migration.h). A zero model makes the
  /// plan degenerate to per-epoch greedy re-optimization.
  MigrationCostModel migration;

  /// Exchange rate folding migration cents into the Σ TOC·duration
  /// objective (cents·hour/task): one migration cent counts as this many
  /// objective units. kAutoMigrationWeight derives it as 1 / (the
  /// duration-weighted mean of the epochs' best-case tasks/hour) — a
  /// migration dollar then competes against the operating dollars one
  /// epoch-hour spends at reference throughput. 0 makes migration free.
  double migration_weight = kAutoMigrationWeight;

  /// Candidate search per epoch (ignored when exhaustive_pool is set).
  EpochSearch search = EpochSearch::kExact;

  /// true: the candidate pool is the *entire* M^N layout space (guarded by
  /// max_pool_layouts) and the epoch DP is provably optimal over all layout
  /// sequences — the mode the brute-force equivalence tests pin. false:
  /// the pool is {current layout} ∪ {each epoch's solo optimum}, which
  /// keeps the DP exact *over the pool* and guarantees the plan never
  /// loses to the stay-forever or re-optimize-every-epoch baselines (both
  /// are pool sequences).
  bool exhaustive_pool = false;

  /// Guard for exhaustive_pool (the DP is O(E·K²) in the pool size K).
  long long max_pool_layouts = 20'000;

  /// Engine knobs, forwarded wholesale to every per-epoch search
  /// (dot/problem.h): `options.num_threads` also drives the pool-matrix
  /// evaluation (1 = serial, 0 = hardware_concurrency). Results are
  /// bit-identical at every thread count: searches guarantee it, and the
  /// pool matrix is filled into distinct slots and reduced in fixed order.
  SearchOptions options;
};

/// The layout chosen for one epoch, with its bill.
struct EpochPlanStep {
  std::vector<int> placement;
  double toc_cents_per_task = 0.0;
  /// TOC · epoch duration, the epoch's objective term (cents·hour/task).
  double epoch_objective = 0.0;
  /// Migration from the previous layout (the current layout for step 0;
  /// zero when the planner was given no current layout). Unweighted cents.
  double migration_cents = 0.0;
  double migration_hours = 0.0;
  int objects_moved = 0;
};

/// A multi-epoch re-provisioning plan.
///
/// Objective accounting contract (shared bit-for-bit by Plan,
/// EvaluateSequence, and exec/schedule_replay.h):
///
///   total = 0
///   for each epoch e in order:
///     total = (total + migration_weight · migration_cents_e)
///             + toc_e · duration_e
///
/// — left-to-right, epochs in order, so independently recomputed totals of
/// the same sequence are bit-identical (floating-point addition is not
/// associative; a different order would drift by ULPs).
struct ReprovisionPlan {
  Status status = Status::OK();
  std::vector<EpochPlanStep> steps;

  double total_objective = 0.0;
  double total_migration_cents = 0.0;
  double total_migration_hours = 0.0;
  /// Steps whose layout differs from their predecessor's.
  int num_migrations = 0;

  /// The weight the run actually used (migration_weight, or the auto
  /// calibration when kAutoMigrationWeight was configured).
  double resolved_migration_weight = 0.0;

  int pool_size = 0;
  /// Candidate layouts evaluated: per-epoch search totals plus the
  /// pool × epoch matrix.
  long long layouts_evaluated = 0;
  /// Search-arena traffic of the DP's own table allocations (the
  /// toc/dp/pred/choice tables live in one arena per Plan call; resets
  /// stays 0 because a plan is a single pass). Deterministic at any
  /// thread count; diagnostics only (dot/optimizer.h).
  long long arena_resets = 0;
  long long arena_bytes_peak = 0;
  double plan_ms = 0.0;
};

/// The stateful epoch planner: refactors the optimizer stack from
/// "stateless DotProblem → DotResult" to "current layout + EpochSchedule →
/// per-epoch layout plan", minimizing Σ epoch TOC·duration plus the
/// (weighted) migration cost between consecutive layouts.
///
/// Mechanics: a candidate layout pool is seeded per epoch by the existing
/// searches (warm-started branch-and-bound, or DOT's Procedure 1), every
/// pool layout is scored under every epoch through the one full-path
/// evaluation kernel (CandidateEvaluator::EvaluateOneWith — the same rule
/// both searches commit winners through), and an exact dynamic program
/// over epochs picks the cheapest sequence; the migration term enters the
/// DP transition exactly (per-object, zero for staying — the admissible
/// floor DESIGN.md §8 argues from).
///
/// Special case, pinned by tests: one epoch + zero migration model (or no
/// current layout) reproduces ExactSearch / Optimize *bit-identically* —
/// same placement, same TOC, same infeasibility verdicts — because the
/// pool contains the search's winner, every candidate is scored through
/// the search's own kernel, and multiplying TOC by the positive duration
/// is monotone.
///
/// Prefer dot::Solve(problem, spec) with SolveMethod::kEpochPlan over
/// instantiating this class (dot/solve.h): the facade is the documented
/// entry point and builds the config from the problem. The class remains
/// public for EvaluateSequence (the baseline/brute-force pricing kernel)
/// and for drivers that reuse one planner across schedules.
class ReprovisionPlanner {
 public:
  /// `schema` and `box` must outlive the planner.
  ReprovisionPlanner(const Schema* schema, const BoxConfig* box,
                     ReprovisionConfig config);

  /// Plans layouts for `schedule` starting from `current_layout` (empty =
  /// greenfield: no epoch-0 migration is charged).
  ReprovisionPlan Plan(const EpochSchedule& schedule,
                       const std::vector<int>& current_layout = {}) const;

  /// Prices a fixed layout sequence under exactly the plan objective —
  /// same evaluation kernel, same accounting order (see ReprovisionPlan).
  /// The baseline evaluator: bench_reprovision prices the frozen-layout
  /// and migration-oblivious baselines through this, and the DP-optimality
  /// tests brute-force sequences through it.
  ReprovisionPlan EvaluateSequence(
      const EpochSchedule& schedule,
      const std::vector<std::vector<int>>& placements,
      const std::vector<int>& current_layout = {}) const;

  const ReprovisionConfig& config() const { return config_; }

 private:
  const Schema* schema_;
  const BoxConfig* box_;
  ReprovisionConfig config_;
};

/// Runs the configured candidate search on `problem` — warm-started
/// branch-and-bound for EpochSearch::kExact, DOT's Procedure 1 for kDot —
/// and appends the winning placement to `pool` unless already present.
/// This is the seeding step of ReprovisionPlanner::Plan's non-exhaustive
/// pool, exposed as a free function so the fleet planner's
/// FleetPoolMode::kSearch reuses exactly the same searches (same engines,
/// same warm-start semantics) instead of growing a second seeding path.
/// Returns the number of layouts the search evaluated; an infeasible
/// search appends nothing.
long long AppendSoloCandidate(
    const DotProblem& problem, EpochSearch search,
    std::vector<std::vector<int>>* pool,
    const std::vector<std::vector<int>>* warm_starts = nullptr);

}  // namespace dot

#endif  // DOTPROV_DOT_REPROVISION_H_
