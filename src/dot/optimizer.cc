#include "dot/optimizer.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "dot/candidate_evaluator.h"
#include "dot/moves.h"

namespace dot {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DotOptimizer::DotOptimizer(const DotProblem& problem) : problem_(problem) {
  DOT_CHECK(problem_.schema != nullptr && problem_.box != nullptr &&
            problem_.workload != nullptr)
      << "DotProblem is missing a component";
  // `profiles` is needed only by Optimize() (move scoring); EstimateToc and
  // the exhaustive-search reuse of this class work without it.
  targets_ = problem_.targets_override != nullptr
                 ? *problem_.targets_override
                 : MakePerfTargets(*problem_.workload, *problem_.box,
                                   problem_.schema->NumObjects(),
                                   problem_.relative_sla,
                                   problem_.io_scale_hint, problem_.tail_sla);
  if (problem_.ensemble != nullptr) {
    DOT_CHECK(problem_.ensemble->size() >= 1 &&
              problem_.ensemble->size() <= kMaxScenarios)
        << "ensemble size must be in [1, " << kMaxScenarios << "]";
    ensemble_ = std::make_unique<EnsembleEstimator>(
        *problem_.workload, *problem_.ensemble, problem_.ensemble_objective,
        problem_.io_scale_hint, targets_);
  }
}

double DotOptimizer::EstimateToc(const std::vector<int>& placement,
                                 PerfEstimate* estimate_out, double* cost_out,
                                 bool* sla_ok_out) const {
  return EstimateToc(Layout(problem_.schema, problem_.box, placement),
                     estimate_out, cost_out, sla_ok_out);
}

double DotOptimizer::EstimateToc(const Layout& layout,
                                 PerfEstimate* estimate_out, double* cost_out,
                                 bool* sla_ok_out) const {
  const double cost = layout.CostCentsPerHour(problem_.cost_model);
  if (cost_out != nullptr) *cost_out = cost;
  if (ensemble_ != nullptr) {
    const EnsembleVerdict verdict =
        ensemble_->Evaluate(layout.placement(), estimate_out);
    DOT_CHECK(verdict.tasks_per_hour > 0)
        << "ensemble produced zero effective throughput";
    if (sla_ok_out != nullptr) *sla_ok_out = verdict.sla_ok;
    return cost / verdict.tasks_per_hour;
  }
  // When the caller discards the estimate, skip the per-object total-I/O
  // accumulation (the throughput and TOC do not depend on it).
  PerfEstimate est = problem_.workload->EstimateWithIoScale(
      layout.placement(), problem_.io_scale_hint,
      /*need_io_by_object=*/estimate_out != nullptr);
  DOT_CHECK(est.tasks_per_hour > 0) << "estimate produced zero throughput";
  const double toc = cost / est.tasks_per_hour;
  if (sla_ok_out != nullptr) *sla_ok_out = MeetsTargets(est, targets_);
  if (estimate_out != nullptr) *estimate_out = std::move(est);
  return toc;
}

DotResult DotOptimizer::Optimize() const {
  DOT_CHECK(problem_.profiles != nullptr)
      << "Optimize() needs workload profiles from the profiling phase";
  const double start_ms = NowMs();
  DotResult result;
  result.targets = targets_;

  ThreadPool pool(problem_.options.num_threads);
  const CandidateEvaluator evaluator(*this, &pool);

  const int l0_class = problem_.box->MostExpensiveClass();
  Layout current = Layout::Uniform(problem_.schema, problem_.box, l0_class);

  double best_toc = std::numeric_limits<double>::infinity();
  bool feasible_found = false;

  // Working-layout state for the acceptance rule below.
  double current_toc = std::numeric_limits<double>::infinity();
  double current_violation = current.CapacityViolationGb();

  // Commits one evaluation to the result: counts it and records it as L*
  // when it is the best feasible candidate under the engine's total order
  // (TOC, then lexicographically lowest placement). Candidate evaluations
  // are pure, so speculative batch members that the sequential walk below
  // discards (their base layout changed before their turn) simply never
  // reach this function — which is what keeps the committed sequence, and
  // therefore every field of the result, bit-identical to a serial walk.
  // Evaluations here are TOC-only (no PerfEstimate is materialized); the
  // winner is re-scored through the full path once, after the walk.
  auto commit = [&](const Layout& layout, const CandidateEval& eval) {
    result.layouts_evaluated += 1;
    if (!eval.feasible) return;
    if (!feasible_found ||
        BetterCandidate(eval.toc, layout.placement(), best_toc,
                        result.placement)) {
      best_toc = eval.toc;
      result.placement = layout.placement();
      result.toc_cents_per_task = eval.toc;
      result.layout_cost_cents_per_hour = eval.cost_cents_per_hour;
    }
    feasible_found = true;
  };

  // L0 itself is the first candidate (feasible unless a capacity cap on
  // the premium class makes it over-full).
  {
    const CandidateEval l0_eval = evaluator.EvaluateQuick(current);
    commit(current, l0_eval);
    current_toc = l0_eval.toc;
  }

  // Procedure 1 walks the score-ordered move list, applying each move to
  // the working layout when it helps. Two refinements over the literal
  // pseudocode (documented in DESIGN.md):
  //  * a feasible move is kept only if it does not increase the estimated
  //    TOC of the working layout — otherwise later (worse-scored) moves of
  //    the same group override earlier, better placements and the best
  //    combination across groups never materializes;
  //  * while the working layout is over capacity (capped premium class,
  //    §4.5.3), moves that strictly shrink the violation are kept so the
  //    walk can reach feasible space at all.
  std::vector<ObjectGroup> groups;
  if (problem_.options.group_objects) {
    groups = problem_.schema->MakeGroups();
  } else {
    // Ablation: one singleton group per object — the per-object move
    // enumeration of prior work that ignores table/index interaction.
    for (const DbObject& o : problem_.schema->objects()) {
      ObjectGroup g;
      g.table_id = o.kind == ObjectKind::kTable ? o.id : -1;
      g.members = {o.id};
      groups.push_back(std::move(g));
    }
  }
  const std::vector<Move> moves = EnumerateMoves(problem_, groups);
  const int max_sweeps = std::max(1, problem_.options.max_sweeps);

  // The walk over the score-ordered move list is inherently sequential (each
  // acceptance changes the working layout every later move is judged
  // against), so the engine parallelizes it speculatively: candidates for
  // the next `batch_capacity` moves are all derived from the current working
  // layout and evaluated concurrently, then scanned in move order. Up to the
  // first accepted move the speculation is exact — those evaluations are the
  // ones a serial walk performs, and only those are committed. From the
  // first acceptance on, the remaining batch members have a stale base
  // layout; they are discarded (never committed) and re-derived from the new
  // working layout in the next batch. With num_threads == 1 the batch
  // capacity is 1 and the walk degenerates to exactly the serial procedure.
  // Caveat: speculative members are layouts a serial walk may never
  // evaluate, so a programmer-error DOT_CHECK inside estimation (e.g. a
  // workload model returning zero throughput) can abort at num_threads > 1
  // on an instance where the serial walk happens not to trip it. Results
  // are identical across thread counts; aborts on broken models may not be.
  const size_t batch_capacity =
      pool.num_threads() == 1 ? 1 : 2 * static_cast<size_t>(pool.num_threads());
  std::vector<Layout> batch;
  std::vector<size_t> batch_move;  // move index of each batch member
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool improved = false;
    size_t next_move = 0;
    while (next_move < moves.size()) {
      batch.clear();
      batch_move.clear();
      for (size_t j = next_move;
           j < moves.size() && batch.size() < batch_capacity; ++j) {
        const Move& move = moves[j];
        const ObjectGroup& g = groups[static_cast<size_t>(move.group)];
        // Identity check before constructing: most moves in a converged
        // sweep change nothing, and skipping them here avoids a placement
        // copy per move.
        bool differs = false;
        for (size_t i = 0; i < g.members.size(); ++i) {
          differs = differs ||
                    current.placement()[static_cast<size_t>(g.members[i])] !=
                        move.placement[i];
        }
        if (!differs) continue;
        batch.push_back(current.WithMoves(g.members, move.placement));
        batch_move.push_back(j);
      }
      if (batch.empty()) break;  // only identity moves remain this sweep
      const std::vector<CandidateEval> evals =
          evaluator.EvaluateBatchQuick(batch);

      next_move = batch_move.back() + 1;
      for (size_t k = 0; k < batch.size(); ++k) {
        const CandidateEval& eval = evals[k];
        commit(batch[k], eval);
        bool accept;
        if (problem_.options.acceptance == MoveAcceptance::kAnyFeasible) {
          // Procedure 1 verbatim: keep every feasible move.
          accept = std::isfinite(eval.toc);
        } else {
          // Sweep 0 accepts non-worsening moves (neutral moves open up
          // later combinations); converging sweeps demand strict
          // improvement.
          accept = sweep == 0 ? eval.toc <= current_toc
                              : eval.toc < current_toc * (1.0 - 1e-12);
        }
        accept = accept || (current_violation > 0.0 &&
                            eval.violation_gb < current_violation);
        if (accept) {
          if (eval.toc < current_toc) improved = true;
          current = std::move(batch[k]);
          current_toc = eval.toc;
          current_violation = eval.violation_gb;
          // The rest of the batch was speculated against the old working
          // layout; drop it and rebuild from the move after this one.
          next_move = batch_move[k] + 1;
          break;
        }
      }
    }
    if (!improved && sweep > 0) break;
  }

  if (feasible_found) {
    // One full evaluation of L* fills result.estimate. The fast path's toc
    // and cost are bit-identical to the full path's, so every committed
    // field already matches what a full-evaluation walk would have
    // recorded (pinned by dot_fast_eval_test). Under an ensemble the
    // reporting estimate is scenario 0's — bit-identical to this very call
    // when scenario 0 is nominal.
    if (ensemble_ != nullptr) {
      ensemble_->Evaluate(result.placement, &result.estimate);
    } else {
      result.estimate = problem_.workload->EstimateWithIoScale(
          result.placement, problem_.io_scale_hint);
    }
  } else {
    result.status = Status::Infeasible(
        "no enumerated layout satisfies the capacity and SLA constraints");
  }
  result.plan_cache_hits = evaluator.plan_cache_hits();
  result.plan_cache_misses = evaluator.plan_cache_misses();
  result.optimize_ms = NowMs() - start_ms;
  return result;
}

DotResult OptimizeWithRelaxation(DotProblem& problem, double relax_factor,
                                 double min_sla) {
  DOT_CHECK(relax_factor > 0.0 && relax_factor < 1.0);
  DOT_CHECK(min_sla > 0.0);
  for (;;) {
    DotOptimizer optimizer(problem);
    DotResult result = optimizer.Optimize();
    if (result.status.ok()) return result;
    const double next_sla = problem.relative_sla * relax_factor;
    if (next_sla < min_sla) return result;  // give up: still infeasible
    problem.relative_sla = next_sla;
  }
}

}  // namespace dot
