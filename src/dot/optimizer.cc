#include "dot/optimizer.h"

#include <chrono>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "dot/moves.h"

namespace dot {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DotOptimizer::DotOptimizer(const DotProblem& problem) : problem_(problem) {
  DOT_CHECK(problem_.schema != nullptr && problem_.box != nullptr &&
            problem_.workload != nullptr)
      << "DotProblem is missing a component";
  // `profiles` is needed only by Optimize() (move scoring); EstimateToc and
  // the exhaustive-search reuse of this class work without it.
  targets_ = problem_.targets_override != nullptr
                 ? *problem_.targets_override
                 : MakePerfTargets(*problem_.workload, *problem_.box,
                                   problem_.schema->NumObjects(),
                                   problem_.relative_sla,
                                   problem_.io_scale_hint);
}

double DotOptimizer::EstimateToc(const std::vector<int>& placement,
                                 PerfEstimate* estimate_out) const {
  const Layout layout(problem_.schema, problem_.box, placement);
  PerfEstimate est = problem_.workload->EstimateWithIoScale(
      placement, problem_.io_scale_hint);
  const double cost = layout.CostCentsPerHour(problem_.cost_model);
  DOT_CHECK(est.tasks_per_hour > 0) << "estimate produced zero throughput";
  const double toc = cost / est.tasks_per_hour;
  if (estimate_out != nullptr) *estimate_out = std::move(est);
  return toc;
}

DotResult DotOptimizer::Optimize() const {
  DOT_CHECK(problem_.profiles != nullptr)
      << "Optimize() needs workload profiles from the profiling phase";
  const double start_ms = NowMs();
  DotResult result;
  result.targets = targets_;

  const int l0_class = problem_.box->MostExpensiveClass();
  Layout current = Layout::Uniform(problem_.schema, problem_.box, l0_class);

  double best_toc = std::numeric_limits<double>::infinity();
  bool feasible_found = false;

  // Working-layout state for the acceptance rule below.
  double current_toc = std::numeric_limits<double>::infinity();
  double current_violation = current.CapacityViolationGb();

  // Evaluates a candidate; records it as L* when it is feasible and the
  // cheapest so far. Returns the candidate's TOC (infinity if it violates
  // any constraint).
  auto evaluate = [&](const Layout& layout) {
    result.layouts_evaluated += 1;
    if (!layout.CheckCapacity().ok()) {
      return std::numeric_limits<double>::infinity();
    }
    PerfEstimate est;
    const double toc = EstimateToc(layout.placement(), &est);
    if (!MeetsTargets(est, targets_)) {
      return std::numeric_limits<double>::infinity();
    }
    feasible_found = true;
    if (toc < best_toc) {
      best_toc = toc;
      result.placement = layout.placement();
      result.toc_cents_per_task = toc;
      result.layout_cost_cents_per_hour =
          layout.CostCentsPerHour(problem_.cost_model);
      result.estimate = std::move(est);
    }
    return toc;
  };

  // L0 itself is the first candidate (feasible unless a capacity cap on
  // the premium class makes it over-full).
  current_toc = evaluate(current);

  // Procedure 1 walks the score-ordered move list, applying each move to
  // the working layout when it helps. Two refinements over the literal
  // pseudocode (documented in DESIGN.md):
  //  * a feasible move is kept only if it does not increase the estimated
  //    TOC of the working layout — otherwise later (worse-scored) moves of
  //    the same group override earlier, better placements and the best
  //    combination across groups never materializes;
  //  * while the working layout is over capacity (capped premium class,
  //    §4.5.3), moves that strictly shrink the violation are kept so the
  //    walk can reach feasible space at all.
  std::vector<ObjectGroup> groups;
  if (problem_.group_objects) {
    groups = problem_.schema->MakeGroups();
  } else {
    // Ablation: one singleton group per object — the per-object move
    // enumeration of prior work that ignores table/index interaction.
    for (const DbObject& o : problem_.schema->objects()) {
      ObjectGroup g;
      g.table_id = o.kind == ObjectKind::kTable ? o.id : -1;
      g.members = {o.id};
      groups.push_back(std::move(g));
    }
  }
  const std::vector<Move> moves = EnumerateMoves(problem_, groups);
  const int max_sweeps = std::max(1, problem_.max_sweeps);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool improved = false;
    for (const Move& move : moves) {
      const ObjectGroup& g = groups[static_cast<size_t>(move.group)];
      Layout candidate = current.WithMoves(g.members, move.placement);
      if (candidate == current) continue;
      const double cand_violation = candidate.CapacityViolationGb();
      const double cand_toc = evaluate(candidate);
      bool accept;
      if (problem_.acceptance == MoveAcceptance::kAnyFeasible) {
        // Procedure 1 verbatim: keep every feasible move.
        accept = std::isfinite(cand_toc);
      } else {
        // Sweep 0 accepts non-worsening moves (neutral moves open up later
        // combinations); converging sweeps demand strict improvement.
        accept = sweep == 0 ? cand_toc <= current_toc
                            : cand_toc < current_toc * (1.0 - 1e-12);
      }
      accept = accept ||
               (current_violation > 0.0 && cand_violation < current_violation);
      if (accept) {
        if (cand_toc < current_toc) improved = true;
        current = std::move(candidate);
        current_toc = cand_toc;
        current_violation = cand_violation;
      }
    }
    if (!improved && sweep > 0) break;
  }

  if (!feasible_found) {
    result.status = Status::Infeasible(
        "no enumerated layout satisfies the capacity and SLA constraints");
  }
  result.optimize_ms = NowMs() - start_ms;
  return result;
}

DotResult OptimizeWithRelaxation(DotProblem& problem, double relax_factor,
                                 double min_sla) {
  DOT_CHECK(relax_factor > 0.0 && relax_factor < 1.0);
  DOT_CHECK(min_sla > 0.0);
  for (;;) {
    DotOptimizer optimizer(problem);
    DotResult result = optimizer.Optimize();
    if (result.status.ok()) return result;
    const double next_sla = problem.relative_sla * relax_factor;
    if (next_sla < min_sla) return result;  // give up: still infeasible
    problem.relative_sla = next_sla;
  }
}

}  // namespace dot
