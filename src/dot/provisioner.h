#ifndef DOTPROV_DOT_PROVISIONER_H_
#define DOTPROV_DOT_PROVISIONER_H_

#include <functional>
#include <string>
#include <vector>

#include "dot/optimizer.h"
#include "dot/problem.h"

namespace dot {

/// One candidate storage configuration f_i of the generalized provisioning
/// problem (§5.1), with everything DOT needs to evaluate a workload on it.
/// The box/workload/profiles must outlive the provisioning run; the
/// `make_problem` indirection lets callers rebuild per-box workload models
/// (a DSS model binds to a box through its planner).
struct ProvisioningOption {
  std::string name;
  std::function<DotProblem()> make_problem;
};

/// Result of provisioning over a configuration menu.
struct ProvisioningResult {
  /// Index into the options of the winner, or -1 if none was feasible.
  int best_option = -1;
  std::string best_name;
  DotResult best;
  /// Per-option DOT results, aligned with the input options.
  std::vector<DotResult> per_option;
};

/// Solves the §5.1 generalized provisioning problem by running DOT on
/// every storage-configuration option and returning the feasible
/// configuration (plus layout) with the lowest TOC — the paper's suggested
/// use of DOT for purchasing and capacity-planning decisions (§7).
///
/// The per-option DOT runs are independent, so `num_threads > 1` evaluates
/// the configuration menu concurrently (1 = serial, 0 = hardware
/// concurrency); each option's `make_problem` must then be safe to call
/// from any thread. The winner is selected by a deterministic scan in
/// option order after all runs complete, so the result does not depend on
/// the thread count. With a single option the lanes are handed to the inner
/// DOT run instead (when its problem leaves `DotProblem::num_threads` at
/// the serial default); with several options the inner runs keep their own
/// settings so the box-level fan-out is not oversubscribed.
ProvisioningResult ProvisionOverOptions(
    const std::vector<ProvisioningOption>& options, int num_threads = 1);

}  // namespace dot

#endif  // DOTPROV_DOT_PROVISIONER_H_
