#include "dot/validator.h"

#include <algorithm>

#include "common/check.h"
#include "dot/sla.h"
#include "query/object_io.h"

namespace dot {

namespace {

/// Measured-vs-targets check with tolerance headroom.
bool MeasuredMeetsTargets(const PerfEstimate& measured,
                          const PerfTargets& targets, double tolerance) {
  return MeetsTargets(measured, targets, tolerance);
}

/// Per-object ratio of measured to estimated total I/O — the refinement
/// phase's correction signal.
std::vector<double> DeriveIoScale(const PerfEstimate& measured,
                                  const PerfEstimate& estimated) {
  const size_t n =
      std::max(measured.io_by_object.size(), estimated.io_by_object.size());
  std::vector<double> scale(n, 1.0);
  for (size_t o = 0; o < n; ++o) {
    const double est = o < estimated.io_by_object.size()
                           ? estimated.io_by_object[o].Total()
                           : 0.0;
    const double meas =
        o < measured.io_by_object.size() ? measured.io_by_object[o].Total()
                                         : 0.0;
    if (est > 0.0 && meas > 0.0) scale[o] = meas / est;
  }
  return scale;
}

}  // namespace

PipelineResult RunDotPipeline(const DotProblem& problem,
                              const PipelineConfig& config) {
  DOT_CHECK(config.max_rounds >= 1);
  PipelineResult out;

  DotProblem working = problem;
  Executor executor(problem.workload, config.exec);

  for (int round = 0; round < config.max_rounds; ++round) {
    DotOptimizer optimizer(working);
    ValidationRound vr;
    vr.recommendation = optimizer.Optimize();
    if (!vr.recommendation.status.ok()) {
      // Infeasible: surface it; the caller decides whether to relax the
      // SLA (Figure 2's "Relax the performance constraints" edge).
      out.final = std::move(vr.recommendation);
      out.rounds.push_back(std::move(vr));
      return out;
    }

    // Validation phase: test run on the recommended layout.
    vr.measured = executor.Run(vr.recommendation.placement);
    vr.passed = MeasuredMeetsTargets(vr.measured, optimizer.targets(),
                                     config.validation_tolerance);
    vr.measured_psr = Psr(vr.measured, optimizer.targets());

    if (vr.passed) {
      out.final = vr.recommendation;
      out.validated = true;
      out.rounds.push_back(std::move(vr));
      return out;
    }

    // Refinement phase: feed the run's actual I/O statistics back into the
    // optimization phase as per-object correction factors.
    working.io_scale_hint =
        DeriveIoScale(vr.measured, vr.recommendation.estimate);
    out.final = vr.recommendation;
    out.rounds.push_back(std::move(vr));
  }
  return out;
}

}  // namespace dot
