#include "dot/object_advisor.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "dot/layout.h"
#include "query/object_io.h"
#include "workload/workload.h"

namespace dot {

std::vector<int> ObjectAdvisorPlacement(const DotProblem& problem) {
  DOT_CHECK(problem.schema != nullptr && problem.box != nullptr &&
            problem.workload != nullptr);
  const Schema& schema = *problem.schema;
  const BoxConfig& box = *problem.box;
  const int m = box.NumClasses();
  const double concurrency = problem.workload->concurrency();

  // Cheapest class = OA's baseline home for all data.
  int cheapest = 0;
  for (int j = 1; j < m; ++j) {
    if (box.classes[static_cast<size_t>(j)].price_cents_per_gb_hour() <
        box.classes[static_cast<size_t>(cheapest)].price_cents_per_gb_hour()) {
      cheapest = j;
    }
  }

  // One profiling run on the baseline; these I/O counts are frozen — OA
  // does not re-plan as it moves objects.
  const PerfEstimate baseline = problem.workload->Estimate(
      UniformPlacement(schema.NumObjects(), cheapest));

  // Classes ordered fastest-first by the time they'd take to serve the
  // whole baseline I/O mix.
  std::vector<int> class_order(static_cast<size_t>(m));
  std::iota(class_order.begin(), class_order.end(), 0);
  IoVector total_io;
  for (const IoVector& v : baseline.io_by_object) total_io += v;
  std::sort(class_order.begin(), class_order.end(), [&](int a, int b) {
    return box.classes[static_cast<size_t>(a)].device().TimeForMs(
               total_io, concurrency) <
           box.classes[static_cast<size_t>(b)].device().TimeForMs(
               total_io, concurrency);
  });

  // Greedy promotion in benefit-density order.
  struct Candidate {
    int object_id;
    double benefit_density;  // ms saved per GB when moved to the target
    int target_cls;
  };
  std::vector<int> placement(static_cast<size_t>(schema.NumObjects()),
                             cheapest);
  std::vector<double> remaining_gb(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    remaining_gb[static_cast<size_t>(j)] =
        box.classes[static_cast<size_t>(j)].capacity_gb();
  }
  // The baseline home must hold everything initially.
  for (const DbObject& o : schema.objects()) {
    remaining_gb[static_cast<size_t>(cheapest)] -= o.size_gb;
  }

  // For each object, its best promotion target is evaluated fastest-first;
  // all candidates are then applied in descending benefit density.
  std::vector<Candidate> candidates;
  for (const DbObject& o : schema.objects()) {
    const IoVector& chi = baseline.io_by_object[static_cast<size_t>(o.id)];
    if (chi.IsZero()) continue;  // unused under baseline plans: no benefit
    const double base_ms =
        box.classes[static_cast<size_t>(cheapest)].device().TimeForMs(
            chi, concurrency);
    for (int target : class_order) {
      if (target == cheapest) continue;
      const double target_ms =
          box.classes[static_cast<size_t>(target)].device().TimeForMs(
              chi, concurrency);
      const double saving = base_ms - target_ms;
      if (saving <= 0.0) continue;
      candidates.push_back({o.id, saving / o.size_gb, target});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.benefit_density > b.benefit_density;
                   });

  for (const Candidate& c : candidates) {
    const size_t oid = static_cast<size_t>(c.object_id);
    if (placement[oid] != cheapest) continue;  // already promoted
    const DbObject& o = schema.object(c.object_id);
    const size_t target = static_cast<size_t>(c.target_cls);
    if (remaining_gb[target] <= o.size_gb) continue;  // does not fit
    placement[oid] = c.target_cls;
    remaining_gb[target] -= o.size_gb;
    remaining_gb[static_cast<size_t>(cheapest)] += o.size_gb;
  }
  return placement;
}

}  // namespace dot
