#include "dot/moves.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace dot {

namespace {

/// χ for one object of a group under group placement `p`: profiles are
/// keyed by (table class, index class) baselines (§3.4).
const IoVector& ChiFor(const DotProblem& problem, const ObjectGroup& g,
                       const std::vector<int>& p, size_t member_idx) {
  const int object_id = g.members[member_idx];
  const DbObject& obj = problem.schema->object(object_id);

  int table_cls;
  int index_cls;
  if (g.table_id < 0) {
    // Auxiliary singleton group (temp/log): its own class plays both roles.
    table_cls = p[0];
    index_cls = p[0];
  } else if (obj.IsIndex()) {
    table_cls = p[0];  // the table is always member 0
    index_cls = p[member_idx];
  } else {
    // The table itself: pair it with its first index's class (exact for
    // one-index groups; the documented approximation for wider groups).
    table_cls = p[member_idx];
    index_cls = p.size() > 1 ? p[1] : p[member_idx];
  }
  const ObjectIoMap& profile = problem.profiles->For(table_cls, index_cls);
  static const IoVector kZero{};
  if (static_cast<size_t>(object_id) >= profile.size()) return kZero;
  return profile[static_cast<size_t>(object_id)];
}

}  // namespace

double GroupIoTimeShareMs(const DotProblem& problem, const ObjectGroup& g,
                          const std::vector<int>& p) {
  DOT_CHECK(p.size() == g.members.size())
      << "placement arity != group size";
  const double concurrency = problem.workload->concurrency();
  double total = 0.0;
  for (size_t i = 0; i < g.members.size(); ++i) {
    IoVector chi = ChiFor(problem, g, p, i);
    if (!problem.io_scale_hint.empty()) {
      chi *= problem.io_scale_hint[static_cast<size_t>(g.members[i])];
    }
    if (chi.IsZero()) continue;
    const StorageClass& sc = problem.box->classes[static_cast<size_t>(p[i])];
    total += sc.device().TimeForMs(chi, concurrency);
  }
  return total;
}

std::vector<Move> EnumerateMoves(const DotProblem& problem,
                                 const std::vector<ObjectGroup>& groups) {
  DOT_CHECK(problem.schema != nullptr && problem.box != nullptr &&
            problem.workload != nullptr && problem.profiles != nullptr);
  const int m = problem.box->NumClasses();
  const int l0_class = problem.box->MostExpensiveClass();

  const Layout l0 =
      Layout::Uniform(problem.schema, problem.box, l0_class);
  const SpaceUsage l0_space = l0.SpaceByClass();
  const double l0_cost =
      LayoutCostCentsPerHour(*problem.box, l0_space, problem.cost_model);
  const std::vector<double>& sizes = problem.schema->sizes_gb();

  std::vector<Move> moves;
  SpaceUsage moved_space(static_cast<size_t>(m), 0.0);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const ObjectGroup& g = groups[gi];
    const int k = g.size();
    const std::vector<int> p0(static_cast<size_t>(k), l0_class);
    const double t0 = GroupIoTimeShareMs(problem, g, p0);

    // Iterate all M^K placements of the group via an odometer.
    std::vector<int> p(static_cast<size_t>(k), 0);
    for (;;) {
      const bool identity =
          std::all_of(p.begin(), p.end(),
                      [&](int cls) { return cls == l0_class; });
      if (!identity) {
        Move move;
        move.group = static_cast<int>(gi);
        move.placement = p;
        move.dtime_ms = GroupIoTimeShareMs(problem, g, p) - t0;
        // Moved-layout space by delta from L0: only the group's members
        // change class, so there is no need to materialize a Layout and
        // rescan every object per enumerated move. Members are a strict
        // subset of the objects summed into l0_space[l0_class], so the
        // remainder stays non-negative.
        moved_space = l0_space;
        for (int i = 0; i < k; ++i) {
          const double s = sizes[static_cast<size_t>(g.members[i])];
          moved_space[static_cast<size_t>(l0_class)] -= s;
          moved_space[static_cast<size_t>(p[static_cast<size_t>(i)])] += s;
        }
        move.dcost = l0_cost - LayoutCostCentsPerHour(*problem.box,
                                                      moved_space,
                                                      problem.cost_model);
        if (move.dcost > 0.0) {
          move.score = move.dtime_ms / move.dcost;
        } else {
          // Zero/negative saving: a pure-performance move. Free
          // improvements sort first, pure penalties last.
          move.score = move.dtime_ms < 0.0
                           ? -std::numeric_limits<double>::infinity()
                           : std::numeric_limits<double>::infinity();
        }
        moves.push_back(std::move(move));
      }
      // Advance the odometer.
      int digit = 0;
      while (digit < k) {
        if (++p[static_cast<size_t>(digit)] < m) break;
        p[static_cast<size_t>(digit)] = 0;
        ++digit;
      }
      if (digit == k) break;
    }
  }

  std::stable_sort(moves.begin(), moves.end(),
                   [](const Move& a, const Move& b) {
                     return a.score < b.score;
                   });
  return moves;
}

}  // namespace dot
