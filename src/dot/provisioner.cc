#include "dot/provisioner.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/thread_pool.h"

namespace dot {

ProvisioningResult ProvisionOverOptions(
    const std::vector<ProvisioningOption>& options, int num_threads) {
  DOT_CHECK(!options.empty()) << "no storage configurations to provision";
  ProvisioningResult out;
  out.per_option.resize(options.size());

  num_threads = ThreadPool::ResolveThreadCount(num_threads);
  // The outer fan-out can never use more lanes than there are options;
  // spare lanes would just sit parked on the pool's condition variable.
  ThreadPool pool(std::min<int>(num_threads,
                                static_cast<int>(options.size())));
  const bool single_option = options.size() == 1;
  pool.ParallelFor(0, static_cast<int64_t>(options.size()), [&](int64_t i) {
    DotProblem problem = options[static_cast<size_t>(i)].make_problem();
    if (single_option && problem.options.num_threads == 1) {
      // Hand the requested lanes to the only inner DOT run instead.
      problem.options.num_threads = num_threads;
    }
    DotOptimizer optimizer(problem);
    out.per_option[static_cast<size_t>(i)] = optimizer.Optimize();
  });

  // Select the winner sequentially in option order (first strictly-lower
  // TOC wins) — the same scan the serial loop performed, independent of
  // which thread finished which option first.
  double best_toc = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < options.size(); ++i) {
    const DotResult& result = out.per_option[i];
    if (result.status.ok() && result.toc_cents_per_task < best_toc) {
      best_toc = result.toc_cents_per_task;
      out.best_option = static_cast<int>(i);
      out.best_name = options[i].name;
      out.best = result;
    }
  }
  return out;
}

}  // namespace dot
