#include "dot/provisioner.h"

#include <limits>

#include "common/check.h"

namespace dot {

ProvisioningResult ProvisionOverOptions(
    const std::vector<ProvisioningOption>& options) {
  DOT_CHECK(!options.empty()) << "no storage configurations to provision";
  ProvisioningResult out;
  double best_toc = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < options.size(); ++i) {
    DotProblem problem = options[i].make_problem();
    DotOptimizer optimizer(problem);
    DotResult result = optimizer.Optimize();
    const bool feasible = result.status.ok();
    const double toc = result.toc_cents_per_task;
    if (feasible && toc < best_toc) {
      best_toc = toc;
      out.best_option = static_cast<int>(i);
      out.best_name = options[i].name;
      out.best = result;
    }
    out.per_option.push_back(std::move(result));
  }
  return out;
}

}  // namespace dot
