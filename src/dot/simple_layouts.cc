#include "dot/simple_layouts.h"

#include "common/str_util.h"
#include "workload/workload.h"

namespace dot {

std::vector<NamedLayout> MakeSimpleLayouts(const Schema& schema,
                                           const BoxConfig& box) {
  std::vector<NamedLayout> layouts;
  for (int j = 0; j < box.NumClasses(); ++j) {
    NamedLayout l;
    l.name = "All " + box.classes[static_cast<size_t>(j)].name();
    l.placement = UniformPlacement(schema.NumObjects(), j);
    layouts.push_back(std::move(l));
  }

  // "Index H-SSD Data L-SSD" (§4.2), when both classes exist.
  int hssd = -1;
  int lssd = -1;
  for (int j = 0; j < box.NumClasses(); ++j) {
    const std::string& name = box.classes[static_cast<size_t>(j)].name();
    if (StartsWith(name, "H-SSD") && hssd < 0) hssd = j;
    if (StartsWith(name, "L-SSD") && lssd < 0) lssd = j;
  }
  if (hssd >= 0 && lssd >= 0) {
    NamedLayout l;
    l.name = "Index H-SSD Data " +
             box.classes[static_cast<size_t>(lssd)].name();
    l.placement.resize(static_cast<size_t>(schema.NumObjects()));
    for (const DbObject& o : schema.objects()) {
      l.placement[static_cast<size_t>(o.id)] = o.IsIndex() ? hssd : lssd;
    }
    layouts.push_back(std::move(l));
  }
  return layouts;
}

}  // namespace dot
