#ifndef DOTPROV_DOT_BNB_SEARCH_H_
#define DOTPROV_DOT_BNB_SEARCH_H_

#include "dot/optimizer.h"
#include "dot/problem.h"

namespace dot {

/// Which algorithm ExactSearch runs. Both return the true optimum of the
/// §2.5 problem under the estimator — the same placement, TOC, and status,
/// bit for bit — they differ only in how much of the M^N space they must
/// touch to prove it.
enum class ExactStrategy {
  /// Score every layout (the paper's Exhaustive Search comparator,
  /// §4.4.3/§4.5.3). Pays M^N evaluations; refuses spaces larger than
  /// `max_layouts`.
  kEnumerate,
  /// Best-first branch-and-bound (DESIGN.md §5): assigns objects one at a
  /// time in descending space/I-O weight, lower-bounds every partial
  /// placement with an admissible completion-cost/device-time bound, and
  /// discards a subtree as soon as its optimistic completion violates a
  /// performance target, cannot fit the box, or cannot beat the incumbent.
  /// Needs no layout guard — pruning statistics come back on DotResult
  /// (nodes_expanded, nodes_pruned_bound, nodes_pruned_infeasible,
  /// layouts_pruned).
  kBranchAndBound,
};

/// Guard for ExactStrategy::kEnumerate: the run returns an OutOfRange
/// status (it no longer aborts) when M^N exceeds this.
inline constexpr long long kDefaultMaxEnumeratedLayouts = 50'000'000;

/// The exact-search entry point. ExhaustiveSearch (dot/exhaustive.h) is a
/// thin alias for the kEnumerate strategy; kBranchAndBound is the scalable
/// choice — bit-identical results, tractable on full benchmark schemas.
/// `max_layouts` applies to kEnumerate only.
DotResult ExactSearch(const DotProblem& problem, ExactStrategy strategy,
                      long long max_layouts = kDefaultMaxEnumeratedLayouts);

}  // namespace dot

#endif  // DOTPROV_DOT_BNB_SEARCH_H_
