#ifndef DOTPROV_DOT_BNB_SEARCH_H_
#define DOTPROV_DOT_BNB_SEARCH_H_

#include <vector>

#include "dot/optimizer.h"
#include "dot/problem.h"

namespace dot {

/// Which algorithm ExactSearch runs. Both return the true optimum of the
/// §2.5 problem under the estimator — the same placement, TOC, and status,
/// bit for bit — they differ only in how much of the M^N space they must
/// touch to prove it.
enum class ExactStrategy {
  /// Score every layout (the paper's Exhaustive Search comparator,
  /// §4.4.3/§4.5.3). Pays M^N evaluations; refuses spaces larger than
  /// `max_layouts`.
  kEnumerate,
  /// Best-first branch-and-bound (DESIGN.md §5): assigns objects one at a
  /// time in descending space/I-O weight, lower-bounds every partial
  /// placement with an admissible completion-cost/device-time bound, and
  /// discards a subtree as soon as its optimistic completion violates a
  /// performance target, cannot fit the box, or cannot beat the incumbent.
  /// Needs no layout guard — pruning statistics come back on DotResult
  /// (nodes_expanded, nodes_pruned_bound, nodes_pruned_infeasible,
  /// layouts_pruned).
  kBranchAndBound,
};

/// Guard for ExactStrategy::kEnumerate: the run returns an OutOfRange
/// status (it no longer aborts) when M^N exceeds this.
inline constexpr long long kDefaultMaxEnumeratedLayouts = 50'000'000;

/// The exact-search entry point. ExhaustiveSearch (dot/exhaustive.h) is a
/// thin alias for the kEnumerate strategy; kBranchAndBound is the scalable
/// choice — bit-identical results, tractable on full benchmark schemas.
/// `max_layouts` applies to kEnumerate only.
///
/// Prefer dot::Solve(problem, spec) with SolveMethod::kExact / kEnumerate
/// (dot/solve.h) over calling this directly: the facade is the documented
/// entry point and returns the same DotResult in SolveResult::dot, bit for
/// bit. ExactSearch remains public as the engine internal the facade (and
/// the planners) drive.
///
/// `warm_starts` (optional, kBranchAndBound only) seeds the incumbent with
/// the best feasible TOC among the given layouts before the tree search
/// starts — the advisor loop passes its incumbent layout and cached
/// candidate pool here so a re-plan prunes against what is already known.
/// Warm starts can only tighten pruning, never change the result: only the
/// seed TOC is kept (the winning placement is always rediscovered in-tree,
/// because no subtree whose bound ties the incumbent is pruned), so the
/// returned placement/TOC/status are bit-identical with or without seeds —
/// only the node counters shrink. Layouts that do not place every object
/// or are infeasible are ignored.
DotResult ExactSearch(
    const DotProblem& problem, ExactStrategy strategy,
    long long max_layouts = kDefaultMaxEnumeratedLayouts,
    const std::vector<std::vector<int>>* warm_starts = nullptr);

}  // namespace dot

#endif  // DOTPROV_DOT_BNB_SEARCH_H_
