#include "dot/layout.h"

#include <sstream>

#include "common/check.h"
#include "common/str_util.h"

namespace dot {

Layout::Layout(const Schema* schema, const BoxConfig* box,
               std::vector<int> placement)
    : schema_(schema), box_(box), placement_(std::move(placement)) {
  DOT_CHECK(schema_ != nullptr && box_ != nullptr);
  DOT_CHECK(static_cast<int>(placement_.size()) == schema_->NumObjects())
      << "layout must place every object";
  for (int cls : placement_) {
    DOT_CHECK(cls >= 0 && cls < box_->NumClasses())
        << "invalid storage class " << cls;
  }
}

Layout Layout::Uniform(const Schema* schema, const BoxConfig* box, int cls) {
  DOT_CHECK(schema != nullptr && box != nullptr);
  return Layout(schema, box,
                std::vector<int>(static_cast<size_t>(schema->NumObjects()),
                                 cls));
}

int Layout::ClassOf(int object_id) const {
  DOT_CHECK(object_id >= 0 &&
            object_id < static_cast<int>(placement_.size()));
  return placement_[static_cast<size_t>(object_id)];
}

Layout Layout::WithMoves(const std::vector<int>& members,
                         const std::vector<int>& classes) const {
  DOT_CHECK(members.size() == classes.size());
  std::vector<int> placement = placement_;
  for (size_t i = 0; i < members.size(); ++i) {
    DOT_CHECK(members[i] >= 0 &&
              members[i] < static_cast<int>(placement.size()));
    DOT_CHECK(classes[i] >= 0 && classes[i] < box_->NumClasses())
        << "invalid storage class " << classes[i];
    placement[static_cast<size_t>(members[i])] = classes[i];
  }
  // The base placement was validated when *this was built and only the
  // just-checked entries changed, so skip the O(n) re-validation.
  return Layout(schema_, box_, std::move(placement), ValidatedTag{});
}

SpaceUsage Layout::SpaceByClass() const {
  SpaceUsage used(static_cast<size_t>(box_->NumClasses()), 0.0);
  // Flat-array scan in object-id order — the same per-class accumulation
  // order as iterating the DbObject records, so the sums are bit-identical.
  const std::vector<double>& sizes = schema_->sizes_gb();
  const int* placement = placement_.data();
  for (size_t i = 0; i < sizes.size(); ++i) {
    used[static_cast<size_t>(placement[i])] += sizes[i];
  }
  return used;
}

Status Layout::CheckCapacity() const {
  // The pass/fail verdict comes from ComputeCapacityFit — the one place
  // the fit rule lives; this function only adds the error message.
  if (ComputeCapacityFit().fits) return Status::OK();
  const SpaceUsage used = SpaceByClass();
  for (int j = 0; j < box_->NumClasses(); ++j) {
    const StorageClass& sc = box_->classes[static_cast<size_t>(j)];
    if (used[static_cast<size_t>(j)] >= sc.capacity_gb()) {
      return Status::CapacityExceeded(StrPrintf(
          "%s: %.2f GB placed, capacity %.2f GB", sc.name().c_str(),
          used[static_cast<size_t>(j)], sc.capacity_gb()));
    }
  }
  return Status::CapacityExceeded("over capacity");  // unreachable
}

Layout::CapacityFit Layout::ComputeCapacityFit() const {
  const SpaceUsage used = SpaceByClass();
  return FitFromSpace(*box_, used.data());
}

Layout::CapacityFit Layout::FitFromSpace(const BoxConfig& box,
                                         const double* used_gb) {
  CapacityFit fit;
  for (int j = 0; j < box.NumClasses(); ++j) {
    const double capacity = box.classes[static_cast<size_t>(j)].capacity_gb();
    if (used_gb[j] >= capacity) fit.fits = false;
    const double over = used_gb[j] - capacity;
    if (over > 0.0) fit.violation_gb += over;
  }
  return fit;
}

double Layout::CapacityViolationGb() const {
  return ComputeCapacityFit().violation_gb;
}

double Layout::CostCentsPerHour(const CostModelSpec& spec) const {
  return LayoutCostCentsPerHour(*box_, SpaceByClass(), spec);
}

std::string Layout::ToString() const {
  std::ostringstream out;
  const SpaceUsage used = SpaceByClass();
  for (int j = 0; j < box_->NumClasses(); ++j) {
    const StorageClass& sc = box_->classes[static_cast<size_t>(j)];
    out << StrPrintf("%-14s (%6.2f GB): ", sc.name().c_str(),
                     used[static_cast<size_t>(j)]);
    bool first = true;
    for (const DbObject& o : schema_->objects()) {
      if (placement_[static_cast<size_t>(o.id)] != j) continue;
      if (!first) out << ", ";
      out << o.name;
      first = false;
    }
    if (first) out << "(empty)";
    out << "\n";
  }
  return out.str();
}

}  // namespace dot
