#ifndef DOTPROV_DOT_SLA_H_
#define DOTPROV_DOT_SLA_H_

#include <vector>

#include "storage/storage_class.h"
#include "workload/workload.h"

namespace dot {

/// The floating-point tolerance every SLA comparison uses. Named (rather
/// than a scattered literal) because the TOC fast path precomputes
/// tolerance-adjusted thresholds and must apply exactly the factor
/// MeetsTargets applies, or fast and full feasibility verdicts could differ
/// by one ULP.
inline constexpr double kDefaultSlaTolerance = 1e-9;

/// A percentile response-time target riding next to the mean-latency cap:
/// "the p-th percentile of each query's latency must meet the cap", not
/// just its mean. Backed by a lognormal queueing-tail approximation
/// (DESIGN.md §10.4): under multiplicative service jitter at coefficient of
/// variation `latency_cv` (the jittered Executor's noise model), the p-th
/// percentile of a mean-µ latency is µ · TailLatencyFactor(p, cv), so the
/// tail target folds into *tighter mean caps* at target-derivation time and
/// the entire search stack downstream is untouched.
struct TailSla {
  /// Target percentile in [0.5, 1), e.g. 0.95 or 0.99. 0 (default)
  /// disables the tail target — targets are derived exactly as before,
  /// bit for bit.
  double percentile = 0.0;

  /// Coefficient of variation of per-query latency; calibrate with
  /// CalibrateLatencyCv against jittered Executor measurements. cv = 0
  /// makes the tail factor 1 (a deterministic executor has no tail).
  double latency_cv = 0.0;
};

/// Concrete performance targets T = {t_i} (§2.4), derived from a relative
/// SLA: per-query response-time caps for DSS workloads, a tpmC floor for
/// OLTP (§4.3).
struct PerfTargets {
  SlaKind kind = SlaKind::kPerQueryResponseTime;
  double relative_sla = 0.5;

  /// Response-time cap per run-sequence entry: best_time / relative_sla,
  /// divided by the tail factor when a percentile target is set.
  std::vector<double> query_caps_ms;

  /// Throughput floor: best_tpmc * relative_sla.
  double min_tpmc = 0.0;

  /// The best-case estimate the caps were derived from (all objects on the
  /// most expensive class, "typically the highest performing case", §4.3).
  PerfEstimate best_case;

  /// The tail target the caps were tightened by (0 = mean-only targets).
  /// Recorded for reporting; MeetsTargets needs only query_caps_ms.
  double tail_percentile = 0.0;
  double tail_latency_cv = 0.0;
};

/// Derives targets for `model` on `box` at `relative_sla` ∈ (0, 1]: the
/// best case is measured with every object on the box's most expensive
/// storage class. `io_scale` (if non-empty) applies the refinement phase's
/// per-object corrections so the baseline reflects the workload's actual
/// I/O behaviour. When `tail.percentile` > 0 and the model is
/// response-time-bound, every cap is divided by TailLatencyFactor so that
/// a layout whose *mean* meets the tightened cap has its p-th percentile
/// meet the original cap under the calibrated jitter; throughput (tpmC)
/// targets are unaffected.
PerfTargets MakePerfTargets(const WorkloadModel& model, const BoxConfig& box,
                            int num_objects, double relative_sla,
                            const std::vector<double>& io_scale = {},
                            const TailSla& tail = {});

/// Standard normal quantile z_p for p ∈ (0, 1) (Acklam's rational
/// approximation, |relative error| < 1.2e-9 — far below the SLA
/// tolerance). Deterministic, dependency-free.
double NormalQuantile(double p);

/// Percentile-to-mean latency ratio under unit-mean lognormal jitter at
/// coefficient of variation `cv`: with σ² = ln(1 + cv²), the p-th
/// percentile of a mean-µ lognormal is µ · exp(σ·z_p − σ²/2). Returns
/// exactly 1.0 when percentile ≤ 0.5 or cv ≤ 0 (no tightening), so a
/// default-constructed TailSla changes nothing bit for bit. Aborts when
/// percentile ≥ 1.
double TailLatencyFactor(double percentile, double cv);

/// Calibrates TailSla::latency_cv from measured per-query latencies (e.g.
/// one jittered Executor run per sample): sample stddev / sample mean.
/// Returns 0 for fewer than two samples or a non-positive mean.
double CalibrateLatencyCv(const std::vector<double>& samples);

/// True iff `est` meets every target: all response-time caps (DSS) or the
/// tpmC floor (OLTP). A small tolerance absorbs floating-point noise.
bool MeetsTargets(const PerfEstimate& est, const PerfTargets& targets,
                  double tolerance = kDefaultSlaTolerance);

/// Performance satisfaction ratio (§4.3): the fraction of queries meeting
/// their caps. For throughput workloads this is 1.0 or 0.0 ("the throughput
/// performance itself serves as such an indicator").
double Psr(const PerfEstimate& est, const PerfTargets& targets);

}  // namespace dot

#endif  // DOTPROV_DOT_SLA_H_
