#ifndef DOTPROV_DOT_SLA_H_
#define DOTPROV_DOT_SLA_H_

#include <vector>

#include "storage/storage_class.h"
#include "workload/workload.h"

namespace dot {

/// The floating-point tolerance every SLA comparison uses. Named (rather
/// than a scattered literal) because the TOC fast path precomputes
/// tolerance-adjusted thresholds and must apply exactly the factor
/// MeetsTargets applies, or fast and full feasibility verdicts could differ
/// by one ULP.
inline constexpr double kDefaultSlaTolerance = 1e-9;

/// Concrete performance targets T = {t_i} (§2.4), derived from a relative
/// SLA: per-query response-time caps for DSS workloads, a tpmC floor for
/// OLTP (§4.3).
struct PerfTargets {
  SlaKind kind = SlaKind::kPerQueryResponseTime;
  double relative_sla = 0.5;

  /// Response-time cap per run-sequence entry: best_time / relative_sla.
  std::vector<double> query_caps_ms;

  /// Throughput floor: best_tpmc * relative_sla.
  double min_tpmc = 0.0;

  /// The best-case estimate the caps were derived from (all objects on the
  /// most expensive class, "typically the highest performing case", §4.3).
  PerfEstimate best_case;
};

/// Derives targets for `model` on `box` at `relative_sla` ∈ (0, 1]: the
/// best case is measured with every object on the box's most expensive
/// storage class. `io_scale` (if non-empty) applies the refinement phase's
/// per-object corrections so the baseline reflects the workload's actual
/// I/O behaviour.
PerfTargets MakePerfTargets(const WorkloadModel& model, const BoxConfig& box,
                            int num_objects, double relative_sla,
                            const std::vector<double>& io_scale = {});

/// True iff `est` meets every target: all response-time caps (DSS) or the
/// tpmC floor (OLTP). A small tolerance absorbs floating-point noise.
bool MeetsTargets(const PerfEstimate& est, const PerfTargets& targets,
                  double tolerance = kDefaultSlaTolerance);

/// Performance satisfaction ratio (§4.3): the fraction of queries meeting
/// their caps. For throughput workloads this is 1.0 or 0.0 ("the throughput
/// performance itself serves as such an indicator").
double Psr(const PerfEstimate& est, const PerfTargets& targets);

}  // namespace dot

#endif  // DOTPROV_DOT_SLA_H_
