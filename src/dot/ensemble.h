#ifndef DOTPROV_DOT_ENSEMBLE_H_
#define DOTPROV_DOT_ENSEMBLE_H_

#include <memory>
#include <vector>

#include "dot/sla.h"
#include "workload/scenario.h"
#include "workload/workload.h"

namespace dot {

/// What "best layout" means over a scenario ensemble (DESIGN.md §10).
struct EnsembleObjective {
  enum class Kind {
    /// Minimize E[TOC] = Σ_k w_k · cost / thr_k — the risk-neutral choice.
    kExpectedToc,
    /// Minimize CVaR_α: the probability-weighted mean TOC of the worst
    /// α-mass of scenarios — the tail-averse choice. α = alpha; α ≥ 1
    /// degenerates to (and is computed exactly as) kExpectedToc.
    kCVaR,
  };
  Kind kind = Kind::kExpectedToc;

  /// Tail mass of kCVaR, in (0, 1].
  double alpha = 0.2;

  /// Chance constraint: a layout is SLA-feasible iff the probability mass
  /// of scenarios meeting the targets is at least this. 1.0 (default) =
  /// every scenario must meet the SLA; 0.8 tolerates a 20% miss mass.
  double min_feasible_fraction = 1.0;
};

/// Absolute slack of the chance-constraint comparison, absorbing the
/// floating-point drift of the weight normalization (w_k = 1/K sums to
/// 1 ± few ULP, which must not fail min_feasible_fraction = 1.0).
inline constexpr double kChanceTolerance = 1e-12;

/// One scenario's contribution to an ensemble verdict: the throughput its
/// model predicts (or optimistically bounds) and its SLA verdict.
struct ScenarioScore {
  double tasks_per_hour = 0.0;  ///< 0 = unbounded (bound-cursor convention)
  bool sla_ok = false;
};

/// The aggregated verdict: an *effective* throughput chosen so that
/// cost / tasks_per_hour equals the ensemble objective (E[TOC] or CVaR),
/// plus the chance-constraint feasibility. tasks_per_hour = 0 means the
/// objective is unbounded from below (only possible when every scenario
/// reported an unbounded optimistic score).
struct EnsembleVerdict {
  double tasks_per_hour = 0.0;
  bool sla_ok = false;
};

/// The one aggregation rule every path shares — the fast scorer, the full
/// estimator, and the branch-and-bound bound cursor all call this exact
/// function, which is what makes fast == full == leaf bit for bit under an
/// ensemble.
///
///   * kExpectedToc: effective thr = 1 / Σ_k (w_k / thr_k), summed in
///     scenario order (weights must be normalized).
///   * kCVaR: scenarios sorted by ascending throughput (slowest = worst
///     TOC first; 0 = unbounded sorts last; exact ties break by scenario
///     index), weight accumulated up to α with a fractional boundary
///     scenario; effective thr = α / Σ_tail (w'_k / thr_k).
///   * K = 1 (and a CVaR tail contained in a single scenario) return that
///     scenario's throughput *directly* — 1/(1/x) is not x bit for bit,
///     and the K=1-reproduces-the-point-forecast contract depends on the
///     short-circuit.
///   * sla_ok: Σ w_k over SLA-meeting scenarios + kChanceTolerance ≥
///     min_feasible_fraction.
///
/// Monotone in every thr_k (IEEE division and addition are monotone, and
/// raising one scenario's throughput never moves it *into* the CVaR tail),
/// so aggregating per-scenario admissible upper bounds yields an
/// admissible upper bound on the aggregate — the property the
/// branch-and-bound bound cursor rests on. This bound dominates the naive
/// min-over-scenarios bound (it weights every scenario instead of charging
/// all mass to the worst) and coincides with it at K = 1.
EnsembleVerdict AggregateEnsemble(const EnsembleObjective& objective,
                                  const std::vector<double>& weights,
                                  const ScenarioScore* scores, int k);

/// Builds the ensemble fast scorer: one child FastScorer per scenario
/// (scenario io_scale composed onto `io_scale_hint`, the problem's caps and
/// tolerance), aggregated through AggregateEnsemble. Cursor and BoundCursor
/// fan out to K child cursors; the bound cursor inflates interior-node
/// bounds by kBoundSafety (absorbing aggregation-order drift) and returns
/// the exact aggregate at leaves. Returns nullptr when any scenario model
/// offers no fast scorer or its SLA kind mismatches `targets` — callers
/// then take the full path, exactly like a point forecast without a scorer.
std::unique_ptr<FastScorer> MakeEnsembleScorer(
    const WorkloadModel& nominal, const ScenarioEnsemble& ensemble,
    const EnsembleObjective& objective,
    const std::vector<double>& io_scale_hint, const PerfTargets& targets);

/// The full evaluation path under an ensemble: per-scenario
/// EstimateWithIoScale + MeetsTargets, aggregated through the same
/// AggregateEnsemble the fast scorer uses. Owned by DotOptimizer when
/// DotProblem::ensemble is set.
class EnsembleEstimator {
 public:
  /// Pointees of `ensemble` must outlive the estimator; `targets` is
  /// copied (the caps every scenario is judged against — scenario
  /// uncertainty perturbs the workload, never the contract).
  EnsembleEstimator(const WorkloadModel& nominal,
                    const ScenarioEnsemble& ensemble,
                    const EnsembleObjective& objective,
                    const std::vector<double>& io_scale_hint,
                    PerfTargets targets);

  /// Scores one full placement. `nominal_out` (if non-null) receives
  /// scenario 0's full estimate — the reporting estimate, bit-identical to
  /// the point forecast's when scenario 0 is nominal.
  EnsembleVerdict Evaluate(const std::vector<int>& placement,
                           PerfEstimate* nominal_out) const;

  int num_scenarios() const { return static_cast<int>(slots_.size()); }

 private:
  struct Slot {
    const WorkloadModel* model = nullptr;
    std::vector<double> io_scale;  ///< hint ∘ scenario, precomposed
  };
  std::vector<Slot> slots_;
  std::vector<double> weights_;
  EnsembleObjective objective_;
  PerfTargets targets_;
};

}  // namespace dot

#endif  // DOTPROV_DOT_ENSEMBLE_H_
