#ifndef DOTPROV_DOT_DOT_H_
#define DOTPROV_DOT_DOT_H_

/// Umbrella header: the public API of the DOT storage-provisioning library.
///
/// Typical use (see examples/quickstart.cpp):
///   1. Describe the storage subsystem (BoxConfig) — MakeBox1()/MakeBox2()
///      or your own classes with calibrated DeviceModels and prices.
///   2. Describe the database objects (Schema) — MakeTpchSchema(),
///      MakeTpccSchema(), or build your own.
///   3. Describe the workload — a DssWorkloadModel over declarative query
///      templates, an OltpWorkloadModel over transaction footprints, or an
///      HtapWorkload composing both over one shared schema.
///   4. Profile it (Profiler::ProfileWorkload), pick an SLA, and call
///      dot::Solve — SolveSpec picks the engine (heuristic, exact search,
///      epoch planner, fleet planner; see dot/solve.h). The engine classes
///      remain public as internals; Solve is the documented entry point.

#include "advisor/advisor.h"
#include "advisor/drift.h"
#include "advisor/feed.h"
#include "catalog/chbench.h"
#include "catalog/schema.h"
#include "catalog/tpcc_schema.h"
#include "catalog/tpch_schema.h"
#include "common/thread_pool.h"
#include "dot/bnb_search.h"
#include "dot/candidate_evaluator.h"
#include "dot/ensemble.h"
#include "dot/eval_tables.h"
#include "dot/exhaustive.h"
#include "dot/layout.h"
#include "dot/moves.h"
#include "dot/object_advisor.h"
#include "dot/optimizer.h"
#include "dot/problem.h"
#include "dot/provisioner.h"
#include "dot/reprovision.h"
#include "dot/simple_layouts.h"
#include "dot/sla.h"
#include "dot/solve.h"
#include "dot/validator.h"
#include "exec/executor.h"
#include "fleet/fleet_planner.h"
#include "fleet/synthetic_fleet.h"
#include "exec/schedule_replay.h"
#include "exec/trace_replay.h"
#include "io/device_model.h"
#include "io/microbench.h"
#include "query/planner.h"
#include "storage/migration.h"
#include "storage/pricing.h"
#include "storage/standard_catalog.h"
#include "storage/storage_class.h"
#include "workload/dss_workload.h"
#include "workload/epoch_schedule.h"
#include "workload/htap_workload.h"
#include "workload/oltp_workload.h"
#include "workload/profiler.h"
#include "workload/scenario.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_queries.h"
#include "workload/trace.h"

#endif  // DOTPROV_DOT_DOT_H_
