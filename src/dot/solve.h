#ifndef DOTPROV_DOT_SOLVE_H_
#define DOTPROV_DOT_SOLVE_H_

#include <vector>

#include "common/status.h"
#include "dot/bnb_search.h"
#include "dot/optimizer.h"
#include "dot/problem.h"
#include "dot/reprovision.h"
#include "storage/migration.h"
#include "workload/epoch_schedule.h"

namespace dot {

/// Which engine Solve() drives. Every method consumes the same DotProblem
/// and fills the same SolveResult; they differ in optimality guarantees
/// and cost, never in what they are solving.
enum class SolveMethod {
  /// Procedure 1 (DotOptimizer::Optimize): the paper's heuristic.
  /// Requires DotProblem::profiles.
  kDotHeuristic,
  /// ExactSearch(kBranchAndBound): the true optimum, tractable on full
  /// benchmark schemas. The default.
  kExact,
  /// ExactSearch(kEnumerate): score every layout; refuses spaces larger
  /// than SolveSpec::max_layouts.
  kEnumerate,
  /// ReprovisionPlanner: the stateful epoch DP over SolveSpec::schedule
  /// (or a synthetic one-epoch schedule of problem.workload when none is
  /// given), charging SolveSpec::migration between consecutive layouts.
  kEpochPlan,
};

/// Per-call inputs of Solve() that are not part of the problem instance:
/// which engine, and — for the stateful path — the schedule, the incumbent
/// layout, and the migration pricing.
struct SolveSpec {
  SolveMethod method = SolveMethod::kExact;

  /// kEnumerate only: refuse layout spaces larger than this.
  long long max_layouts = kDefaultMaxEnumeratedLayouts;

  /// kExact only: seed layouts for the branch-and-bound incumbent (the
  /// advisor passes its incumbent layout and cached candidate pool).
  /// Tightens pruning; provably cannot change the result (bnb_search.h).
  const std::vector<std::vector<int>>* warm_starts = nullptr;

  // --- robust (ensemble) mode — single-shot methods only ---

  /// When set, overlays DotProblem::ensemble for this call: candidates are
  /// scored under `ensemble_objective` across these scenarios instead of
  /// the point forecast (DESIGN.md §10). Must outlive the call. Incompatible
  /// with kEpochPlan (the epoch DP re-derives per-epoch point problems);
  /// Solve() aborts on that combination rather than silently ignoring it.
  const ScenarioEnsemble* ensemble = nullptr;

  /// Objective over `ensemble`; ignored when `ensemble` is null.
  EnsembleObjective ensemble_objective;

  // --- kEpochPlan only ---

  /// The epochs to plan across. Null = one epoch of problem.workload with
  /// duration 1 h and problem.profiles — the single-shot special case,
  /// which (with a zero migration model) reproduces kExact bit for bit.
  const EpochSchedule* schedule = nullptr;

  /// The layout the box runs today; empty = greenfield (no epoch-0
  /// migration is charged).
  std::vector<int> current_layout;

  /// What moving data costs, and how migration cents fold into the
  /// objective (dot/reprovision.h).
  MigrationCostModel migration;
  double migration_weight = kAutoMigrationWeight;

  /// Candidate search seeding the planner's per-epoch pools.
  EpochSearch epoch_search = EpochSearch::kExact;
};

/// The one result type every Solve() method fills. The convenience fields
/// (placement, toc, layouts_evaluated) are always populated on success;
/// the engine-specific payloads carry everything else:
///
///   * single-shot methods fill `dot` — bit-identical to calling
///     DotOptimizer::Optimize / ExactSearch directly (same placement, TOC,
///     estimate, counters, infeasibility verdicts);
///   * kEpochPlan sets has_plan and fills `plan` — bit-identical to
///     ReprovisionPlanner::Plan — and the convenience fields mirror the
///     plan's first epoch (the layout to deploy now).
struct SolveResult {
  Status status = Status::OK();

  /// The recommended placement: the search winner, or the plan's first
  /// epoch. Meaningful only when status is OK.
  std::vector<int> placement;

  /// TOC of `placement` under its (first) epoch, cents/task.
  double toc_cents_per_task = 0.0;

  /// Candidate layouts evaluated by whichever engine ran.
  long long layouts_evaluated = 0;

  /// Single-shot payload (kDotHeuristic, kExact, kEnumerate).
  DotResult dot;

  /// Stateful payload (kEpochPlan).
  bool has_plan = false;
  ReprovisionPlan plan;
};

/// The unified optimization entry point: one facade over the heuristic
/// optimizer, the exact searches, and the stateful epoch planner, so
/// callers (examples, the advisor loop) pick an engine with a spec instead
/// of wiring a different API per method.
///
/// kEpochPlan notes: the planner derives each epoch's targets from its own
/// best case (exactly as a single-shot run would), so
/// problem.targets_override and problem.io_scale_hint are ignored on this
/// path — the same contract as calling ReprovisionPlanner directly.
SolveResult Solve(const DotProblem& problem, const SolveSpec& spec = {});

}  // namespace dot

#endif  // DOTPROV_DOT_SOLVE_H_
