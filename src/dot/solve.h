#ifndef DOTPROV_DOT_SOLVE_H_
#define DOTPROV_DOT_SOLVE_H_

#include <vector>

#include "common/status.h"
#include "dot/bnb_search.h"
#include "dot/optimizer.h"
#include "dot/problem.h"
#include "dot/reprovision.h"
#include "fleet/fleet_planner.h"
#include "storage/migration.h"
#include "workload/epoch_schedule.h"

namespace dot {

/// Which engine Solve() drives. Every method consumes the same DotProblem
/// and fills the same SolveResult; they differ in optimality guarantees
/// and cost, never in what they are solving.
enum class SolveMethod {
  /// Procedure 1 (DotOptimizer::Optimize): the paper's heuristic.
  /// Requires DotProblem::profiles.
  kDotHeuristic,
  /// ExactSearch(kBranchAndBound): the true optimum, tractable on full
  /// benchmark schemas. The default.
  kExact,
  /// ExactSearch(kEnumerate): score every layout; refuses spaces larger
  /// than SolveSpec::max_layouts.
  kEnumerate,
  /// ReprovisionPlanner: the stateful epoch DP over SolveSpec::schedule
  /// (or a synthetic one-epoch schedule of problem.workload when none is
  /// given), charging SolveSpec::migration between consecutive layouts.
  kEpochPlan,
  /// FleetPlanner: N per-tenant problems under one budget/capacity
  /// (SolveSpec::fleet). The DotProblem supplies the shared box and the
  /// engine knobs; its schema/workload may be null on this path.
  kFleet,
};

/// The kFleet inputs: the tenants and the fleet knobs. The tenants vector
/// must outlive the Solve() call; every tenant's problem must reference
/// the same box as the DotProblem passed to Solve. FleetConfig::options is
/// overwritten from problem.options inside Solve — the problem is the one
/// source of engine knobs on every method.
struct FleetSpec {
  const std::vector<FleetTenant>* tenants = nullptr;
  FleetConfig config;
};

/// Per-call inputs of Solve() that are not part of the problem instance:
/// which engine, and — for the stateful and fleet paths — the schedule,
/// the incumbent layout, the migration pricing, or the tenant roster.
struct SolveSpec {
  SolveMethod method = SolveMethod::kExact;

  /// kEnumerate only: refuse layout spaces larger than this.
  long long max_layouts = kDefaultMaxEnumeratedLayouts;

  /// kExact only: seed layouts for the branch-and-bound incumbent (the
  /// advisor passes its incumbent layout and cached candidate pool).
  /// Tightens pruning; provably cannot change the result (bnb_search.h).
  const std::vector<std::vector<int>>* warm_starts = nullptr;

  // --- robust (ensemble) mode — single-shot methods only ---

  /// When set, overlays DotProblem::ensemble for this call: candidates are
  /// scored under `ensemble_objective` across these scenarios instead of
  /// the point forecast (DESIGN.md §10). Must outlive the call.
  /// Incompatible with kEpochPlan (the epoch DP re-derives per-epoch point
  /// problems) and kFleet (tenants are point forecasts); Validate() turns
  /// those combinations into an InvalidArgument status.
  const ScenarioEnsemble* ensemble = nullptr;

  /// Objective over `ensemble`; ignored when `ensemble` is null.
  EnsembleObjective ensemble_objective;

  // --- kEpochPlan only ---

  /// The epochs to plan across. Null = one epoch of problem.workload with
  /// duration 1 h and problem.profiles — the single-shot special case,
  /// which (with a zero migration model) reproduces kExact bit for bit.
  const EpochSchedule* schedule = nullptr;

  /// The layout the box runs today; empty = greenfield (no epoch-0
  /// migration is charged).
  std::vector<int> current_layout;

  /// What moving data costs, and how migration cents fold into the
  /// objective (dot/reprovision.h).
  MigrationCostModel migration;
  double migration_weight = kAutoMigrationWeight;

  /// Candidate search seeding the planner's per-epoch pools.
  EpochSearch epoch_search = EpochSearch::kExact;

  // --- kFleet only ---

  /// The fleet to provision (see FleetSpec). Must outlive the call.
  const FleetSpec* fleet = nullptr;

  /// Checks this spec against `problem` and returns the exact status
  /// Solve() would fail with: null problem inputs, an ensemble overlay on
  /// a method that cannot honor it, or a malformed fleet spec. Solve()
  /// calls this first and returns the error in SolveResult::status — it no
  /// longer aborts on spec/problem mismatches — so drivers that assemble
  /// specs from config can pre-flight them.
  Status Validate(const DotProblem& problem) const;
};

/// Where a SolveResult came from and what the engine did to produce it —
/// one block with the same shape for every method, so readers (the advisor
/// loop, the benches) report counters without switching on the engine.
/// Fields a given engine has no notion of stay zero; see DESIGN.md §11 for
/// which engines fill what.
struct SolveProvenance {
  /// The method that ran, and a stable human-readable engine label
  /// ("dot-heuristic", "branch-and-bound", "enumerate", "epoch-dp",
  /// "fleet-lagrangian").
  SolveMethod method = SolveMethod::kExact;
  const char* engine = "";

  /// Candidate layouts evaluated by whichever engine ran.
  long long layouts_evaluated = 0;

  /// kExact: caller-supplied warm starts that actually seeded the
  /// incumbent (diagnostics; cannot affect the result — bnb_search.h).
  int warm_start_hits = 0;

  /// Branch-and-bound node counters (kExact; zero elsewhere).
  long long nodes_expanded = 0;
  long long nodes_pruned_bound = 0;
  long long nodes_pruned_infeasible = 0;

  /// DSS plan-cache traffic of the run's fast path (single-shot methods;
  /// thread-count dependent, diagnostics only — dot/optimizer.h).
  long long plan_cache_hits = 0;
  long long plan_cache_misses = 0;

  /// Evaluation throughput of the engine run: layouts_evaluated divided by
  /// solve_ms (0 when either is 0). The raw-speed number the perf benches
  /// track, surfaced here so the advisor loop and ops tooling see it
  /// per-solve. Wall-clock derived — never compare bitwise.
  double layouts_per_s = 0.0;

  /// Search-arena traffic (kExact branch-and-bound and kEpochPlan's DP;
  /// zero elsewhere): arena Reset() calls and the largest single-arena
  /// high-water byte mark. Deterministic at any thread count
  /// (dot/optimizer.h).
  long long arena_resets = 0;
  long long arena_bytes_peak = 0;

  /// kEpochPlan: the DP's candidate-pool size.
  int pool_size = 0;

  /// kFleet: distinct candidate pools built (== distinct cache keys) and
  /// tenants served from an already-built pool; pool_builds +
  /// pool_cache_hits == fleet size (fleet/fleet_planner.h).
  int pool_builds = 0;
  int pool_cache_hits = 0;

  /// Wall-clock of the engine run.
  double solve_ms = 0.0;
};

/// The one result type every Solve() method fills. The convenience fields
/// (placement, toc) are populated on success, engine counters live in
/// `provenance`, and the engine-specific payloads carry everything else:
///
///   * single-shot methods fill `dot` — bit-identical to calling
///     DotOptimizer::Optimize / ExactSearch directly (same placement, TOC,
///     estimate, counters, infeasibility verdicts);
///   * kEpochPlan sets has_plan and fills `plan` — bit-identical to
///     ReprovisionPlanner::Plan — and the convenience fields mirror the
///     plan's first epoch (the layout to deploy now);
///   * kFleet sets has_fleet and fills `fleet` — bit-identical to
///     FleetPlanner::Plan. `placement` stays empty (a fleet has one
///     placement per tenant, in fleet.tenants) and toc_cents_per_task is
///     the fleet total.
struct SolveResult {
  Status status = Status::OK();

  /// The recommended placement: the search winner, or the plan's first
  /// epoch. Meaningful only when status is OK; empty for kFleet.
  std::vector<int> placement;

  /// TOC of `placement` under its (first) epoch — or the fleet-wide total
  /// for kFleet — cents/task.
  double toc_cents_per_task = 0.0;

  /// Engine attribution and counters, one shape for every method.
  SolveProvenance provenance;

  /// Single-shot payload (kDotHeuristic, kExact, kEnumerate).
  DotResult dot;

  /// Stateful payload (kEpochPlan).
  bool has_plan = false;
  ReprovisionPlan plan;

  /// Fleet payload (kFleet).
  bool has_fleet = false;
  FleetPlan fleet;
};

/// The unified optimization entry point: one facade over the heuristic
/// optimizer, the exact searches, the stateful epoch planner, and the
/// fleet planner, so callers (examples, the advisor loop, the benches)
/// pick an engine with a spec instead of wiring a different API per
/// method. This is the documented way to run any engine; the engine
/// classes stay public as internals.
///
/// Solve() never aborts on spec/problem mismatches: SolveSpec::Validate
/// runs first and its error comes back in SolveResult::status.
///
/// kEpochPlan notes: the planner derives each epoch's targets from its own
/// best case (exactly as a single-shot run would), so
/// problem.targets_override and problem.io_scale_hint are ignored on this
/// path — the same contract as calling ReprovisionPlanner directly.
SolveResult Solve(const DotProblem& problem, const SolveSpec& spec = {});

}  // namespace dot

#endif  // DOTPROV_DOT_SOLVE_H_
