#ifndef DOTPROV_DOT_VALIDATOR_H_
#define DOTPROV_DOT_VALIDATOR_H_

#include <vector>

#include "dot/optimizer.h"
#include "dot/problem.h"
#include "exec/executor.h"

namespace dot {

/// Configuration of the full DOT pipeline (Figure 2): profiling has already
/// happened (problem.profiles); this drives optimization → validation →
/// refinement.
struct PipelineConfig {
  /// Test-run behaviour for the validation phase, including any injected
  /// divergence between the optimizer's estimates and reality (io_scale).
  ExecutorConfig exec;

  /// Maximum optimization/validation rounds (1 = no refinement).
  int max_rounds = 3;

  /// Headroom applied to measured times when judging the test run, so that
  /// benign measurement noise does not trigger refinement.
  double validation_tolerance = 0.05;
};

/// Outcome of one validation round.
struct ValidationRound {
  DotResult recommendation;
  PerfEstimate measured;
  bool passed = false;
  double measured_psr = 0.0;
};

/// Outcome of the whole pipeline.
struct PipelineResult {
  /// The last recommendation (validated, or best effort after max_rounds).
  DotResult final;
  bool validated = false;
  std::vector<ValidationRound> rounds;
};

/// Runs optimization, then validates the recommendation with a test run of
/// the workload on the recommended layout (§3: "checks if the recommended
/// layout really conforms to the performance constraints through a test
/// run"). On failure the refinement phase derives per-object correction
/// factors from the run's *actual* I/O statistics and redoes the
/// optimization phase with them (§3: "uses real runtime statistics ... to
/// redo the optimization phase").
PipelineResult RunDotPipeline(const DotProblem& problem,
                              const PipelineConfig& config);

}  // namespace dot

#endif  // DOTPROV_DOT_VALIDATOR_H_
