#include "dot/reprovision.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "common/arena.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "dot/bnb_search.h"
#include "dot/candidate_evaluator.h"
#include "dot/layout.h"
#include "dot/optimizer.h"

namespace dot {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// M^N saturating at cap+1 (the guard only needs "exceeds cap").
long long PowSaturating(int m, int n, long long cap) {
  long long total = 1;
  for (int i = 0; i < n; ++i) {
    if (total > cap / m) return cap + 1;
    total *= m;
  }
  return total;
}

/// Builds one epoch's single-shot problem; the planner is a driver of the
/// existing optimizer stack, not a re-implementation of it.
DotProblem EpochProblem(const Schema* schema, const BoxConfig* box,
                        const Epoch& epoch, const ReprovisionConfig& config) {
  DotProblem p;
  p.schema = schema;
  p.box = box;
  p.workload = epoch.workload;
  p.relative_sla = config.relative_sla;
  p.cost_model = config.cost_model;
  p.profiles = epoch.profiles;
  p.options = config.options;
  return p;
}

/// Resolves ReprovisionConfig::migration_weight: kAutoMigrationWeight
/// becomes 1 / (the duration-weighted mean of the epochs' best-case
/// tasks/hour) — identical arithmetic wherever the weight is resolved, so
/// Plan and EvaluateSequence always price migration at the same rate.
double ResolveMigrationWeight(
    double configured, const EpochSchedule& schedule,
    const std::vector<std::unique_ptr<DotOptimizer>>& optimizers) {
  if (configured != kAutoMigrationWeight) return configured;
  double task_hours = 0.0;
  for (size_t e = 0; e < schedule.epochs.size(); ++e) {
    task_hours += schedule.epochs[e].duration_hours *
                  optimizers[e]->targets().best_case.tasks_per_hour;
  }
  return task_hours > 0.0 ? schedule.TotalHours() / task_hours : 0.0;
}

/// The (toc, placement-lex) final tie-break, extended by the DP value in
/// front: lower accumulated objective wins, exact ties fall back to the
/// epoch TOC and then to the lexicographically lowest placement — the
/// BetterCandidate order, so the one-epoch special case selects exactly
/// the layout the single-shot searches would.
bool BetterTerminal(double obj_a, double toc_a,
                    const std::vector<int>& placement_a, double obj_b,
                    double toc_b, const std::vector<int>& placement_b) {
  if (obj_a != obj_b) return obj_a < obj_b;
  if (toc_a != toc_b) return toc_a < toc_b;
  return placement_a < placement_b;
}

/// Fills `plan->steps` and the running totals for a decided layout
/// sequence — the ONE implementation of the accounting contract
/// ReprovisionPlan documents. `step_placement(e)` / `step_toc(e)` supply
/// the sequence; the migration bills and the accumulation order live
/// here, so Plan and EvaluateSequence cannot drift apart by a ULP.
void AccumulateSteps(
    const EpochSchedule& schedule, const std::vector<int>& current_layout,
    double weight, const MigrationCostModel& migration, const Schema& schema,
    const BoxConfig& box,
    const std::function<const std::vector<int>&(int)>& step_placement,
    const std::function<double(int)>& step_toc, ReprovisionPlan* plan) {
  const int num_epochs = schedule.NumEpochs();
  plan->steps.resize(static_cast<size_t>(num_epochs));
  const std::vector<int>* previous =
      current_layout.empty() ? nullptr : &current_layout;
  for (int e = 0; e < num_epochs; ++e) {
    EpochPlanStep& step = plan->steps[static_cast<size_t>(e)];
    step.placement = step_placement(e);
    step.toc_cents_per_task = step_toc(e);
    step.epoch_objective =
        step.toc_cents_per_task *
        schedule.epochs[static_cast<size_t>(e)].duration_hours;
    if (previous != nullptr) {
      const MigrationEstimate mig = EstimateMigration(
          migration, box, schema, *previous, step.placement);
      step.migration_cents = mig.cents;
      step.migration_hours = mig.hours;
      step.objects_moved = mig.objects_moved;
    }
    plan->total_objective =
        (plan->total_objective + weight * step.migration_cents) +
        step.epoch_objective;
    plan->total_migration_cents += step.migration_cents;
    plan->total_migration_hours += step.migration_hours;
    if (step.objects_moved > 0) plan->num_migrations += 1;
    previous = &step.placement;
  }
}

}  // namespace

long long AppendSoloCandidate(
    const DotProblem& problem, EpochSearch search,
    std::vector<std::vector<int>>* pool,
    const std::vector<std::vector<int>>* warm_starts) {
  DOT_CHECK(pool != nullptr);
  const DotResult solo =
      search == EpochSearch::kDot
          ? DotOptimizer(problem).Optimize()
          : ExactSearch(problem, ExactStrategy::kBranchAndBound,
                        kDefaultMaxEnumeratedLayouts, warm_starts);
  if (solo.status.ok()) {
    bool present = false;
    for (const std::vector<int>& existing : *pool) {
      if (existing == solo.placement) {
        present = true;
        break;
      }
    }
    if (!present) pool->push_back(solo.placement);
  }
  return solo.layouts_evaluated;
}

ReprovisionPlanner::ReprovisionPlanner(const Schema* schema,
                                       const BoxConfig* box,
                                       ReprovisionConfig config)
    : schema_(schema), box_(box), config_(std::move(config)) {
  DOT_CHECK(schema_ != nullptr && box_ != nullptr);
  DOT_CHECK(config_.max_pool_layouts > 0);
  // A negative weight would turn migration cost into a reward and make
  // the DP churn layouts to collect it; only the auto sentinel is allowed
  // below zero.
  DOT_CHECK(config_.migration_weight == kAutoMigrationWeight ||
            config_.migration_weight >= 0.0)
      << "migration_weight must be >= 0 or kAutoMigrationWeight";
}

ReprovisionPlan ReprovisionPlanner::Plan(
    const EpochSchedule& schedule,
    const std::vector<int>& current_layout) const {
  const double start_ms = NowMs();
  ReprovisionPlan plan;
  plan.status = ValidateSchedule(schedule);
  if (!plan.status.ok()) return plan;
  const int n = schema_->NumObjects();
  if (!current_layout.empty() &&
      static_cast<int>(current_layout.size()) != n) {
    plan.status = Status::InvalidArgument(
        "current layout does not place every schema object");
    return plan;
  }
  const int num_epochs = schedule.NumEpochs();

  // Per-epoch estimators: each owns its problem and its targets, derived
  // exactly as a single-shot run would derive them.
  std::vector<std::unique_ptr<DotOptimizer>> optimizers;
  optimizers.reserve(static_cast<size_t>(num_epochs));
  for (const Epoch& epoch : schedule.epochs) {
    if (config_.search == EpochSearch::kDot && !config_.exhaustive_pool &&
        epoch.profiles == nullptr) {
      plan.status = Status::InvalidArgument(
          "EpochSearch::kDot needs Epoch::profiles for every epoch");
      return plan;
    }
    optimizers.push_back(std::make_unique<DotOptimizer>(
        EpochProblem(schema_, box_, epoch, config_)));
  }

  // --- Candidate pool ---
  std::vector<std::vector<int>> pool;
  auto add_candidate = [&pool](const std::vector<int>& placement) {
    if (placement.empty()) return;
    for (const std::vector<int>& existing : pool) {
      if (existing == placement) return;
    }
    pool.push_back(placement);
  };
  if (config_.exhaustive_pool) {
    const int m = box_->NumClasses();
    const long long space = PowSaturating(m, n, config_.max_pool_layouts);
    if (space > config_.max_pool_layouts) {
      plan.status = Status::OutOfRange(
          "exhaustive pool of " + std::to_string(m) + "^" +
          std::to_string(n) + " layouts exceeds max_pool_layouts");
      return plan;
    }
    pool.reserve(static_cast<size_t>(space));
    for (long long idx = 0; idx < space; ++idx) {
      pool.push_back(DecodeLayoutIndex(idx, n, m));
    }
  } else {
    // The stay option first, then each epoch's solo optimum in epoch
    // order — a deterministic pool that always contains the frozen-layout
    // and re-optimize-every-epoch baselines as sequences.
    add_candidate(current_layout);
    for (int e = 0; e < num_epochs; ++e) {
      plan.layouts_evaluated += AppendSoloCandidate(
          optimizers[static_cast<size_t>(e)]->problem(), config_.search,
          &pool);
    }
  }
  const int k_pool = static_cast<int>(pool.size());
  plan.pool_size = k_pool;

  // All DP-sized tables below come from one bump arena: one block serves
  // the whole plan (single pass, so resets stays 0) and the high-water
  // mark lands in the plan's arena counters.
  Arena arena;

  // --- Score every pool layout under every epoch, through the one
  // full-path evaluation kernel both searches commit winners through. The
  // matrix is filled into distinct slots, so thread count cannot change a
  // value. Infeasible (capacity or SLA) scores are +inf.
  const size_t toc_cells =
      static_cast<size_t>(num_epochs) * static_cast<size_t>(k_pool);
  double* toc = arena.AllocateArray<double>(toc_cells);
  std::fill(toc, toc + toc_cells, kInf);
  {
    ThreadPool threads(config_.options.num_threads);
    threads.ParallelFor(
        0, static_cast<int64_t>(num_epochs) * k_pool, [&](int64_t flat) {
          const int e = static_cast<int>(flat / k_pool);
          const int k = static_cast<int>(flat % k_pool);
          const CandidateEval eval = CandidateEvaluator::EvaluateOneWith(
              *optimizers[static_cast<size_t>(e)],
              Layout(schema_, box_, pool[static_cast<size_t>(k)]));
          if (eval.feasible) toc[static_cast<size_t>(flat)] = eval.toc;
        });
  }
  plan.layouts_evaluated += static_cast<long long>(num_epochs) * k_pool;
  auto toc_at = [&](int e, int k) {
    return toc[static_cast<size_t>(e) * static_cast<size_t>(k_pool) +
               static_cast<size_t>(k)];
  };

  // --- Resolve the migration exchange rate (see ReprovisionConfig).
  const double weight =
      ResolveMigrationWeight(config_.migration_weight, schedule, optimizers);
  plan.resolved_migration_weight = weight;

  auto weighted_migration = [&](const std::vector<int>& from,
                                const std::vector<int>& to) {
    if (from.empty() || config_.migration.IsZero() || weight == 0.0) {
      return 0.0;
    }
    return weight *
           EstimateMigration(config_.migration, *box_, *schema_, from, to)
               .cents;
  };

  // The pool-pair migration bill is epoch-independent: price each (j, k)
  // pair once instead of once per epoch transition. The table is skipped
  // when migration is free, single-epoch, or the exhaustive pool would
  // make K² large — the DP then prices transitions on the fly (same
  // function, same bits).
  const bool free_migration = config_.migration.IsZero() || weight == 0.0;
  double* pair_migration = nullptr;
  const bool memoized = !free_migration && num_epochs > 1 &&
                        static_cast<long long>(k_pool) * k_pool <= (1 << 20);
  if (memoized) {
    pair_migration = arena.AllocateArray<double>(
        static_cast<size_t>(k_pool) * static_cast<size_t>(k_pool));
    for (int j = 0; j < k_pool; ++j) {
      for (int k = 0; k < k_pool; ++k) {
        pair_migration[static_cast<size_t>(j) * static_cast<size_t>(k_pool) +
                       static_cast<size_t>(k)] =
            weighted_migration(pool[static_cast<size_t>(j)],
                               pool[static_cast<size_t>(k)]);
      }
    }
  }
  auto transition_migration = [&](int j, int k) {
    if (memoized) {
      return pair_migration[static_cast<size_t>(j) *
                                static_cast<size_t>(k_pool) +
                            static_cast<size_t>(k)];
    }
    return weighted_migration(pool[static_cast<size_t>(j)],
                              pool[static_cast<size_t>(k)]);
  };

  // --- Exact DP over epochs. dp[k] is the cheapest objective of any pool
  // sequence ending with layout k; the accounting order is the documented
  // contract: total = (total + weight·migration) + toc·duration.
  double* dp = arena.AllocateArray<double>(static_cast<size_t>(k_pool));
  double* next = arena.AllocateArray<double>(static_cast<size_t>(k_pool));
  std::fill(dp, dp + k_pool, kInf);
  // pred flattened to [e * k_pool + k]; -1 = no feasible predecessor.
  int* pred = arena.AllocateArray<int>(toc_cells);
  std::fill(pred, pred + toc_cells, -1);
  for (int e = 0; e < num_epochs; ++e) {
    const double duration =
        schedule.epochs[static_cast<size_t>(e)].duration_hours;
    std::fill(next, next + k_pool, kInf);
    bool any_feasible = false;
    for (int k = 0; k < k_pool; ++k) {
      const double toc_ek = toc_at(e, k);
      if (toc_ek == kInf) continue;
      const double epoch_term = toc_ek * duration;
      if (e == 0) {
        next[static_cast<size_t>(k)] =
            (0.0 + weighted_migration(current_layout,
                                      pool[static_cast<size_t>(k)])) +
            epoch_term;
        any_feasible = true;
        continue;
      }
      double best = kInf;
      int best_j = -1;
      for (int j = 0; j < k_pool; ++j) {
        if (dp[static_cast<size_t>(j)] == kInf) continue;
        const double value =
            (dp[static_cast<size_t>(j)] + transition_migration(j, k)) +
            epoch_term;
        if (value < best) {  // ties keep the earlier (deterministic) j
          best = value;
          best_j = j;
        }
      }
      if (best_j >= 0) {
        next[static_cast<size_t>(k)] = best;
        pred[static_cast<size_t>(e) * static_cast<size_t>(k_pool) +
             static_cast<size_t>(k)] = best_j;
        any_feasible = true;
      }
    }
    std::swap(dp, next);
    if (!any_feasible) {
      plan.status = Status::Infeasible(
          "no candidate layout satisfies epoch " + std::to_string(e) +
          (schedule.epochs[static_cast<size_t>(e)].label.empty()
               ? std::string()
               : " (" + schedule.epochs[static_cast<size_t>(e)].label + ")") +
          "'s capacity and SLA constraints");
      plan.arena_resets = static_cast<long long>(arena.resets());
      plan.arena_bytes_peak = static_cast<long long>(arena.bytes_peak());
      plan.plan_ms = NowMs() - start_ms;
      return plan;
    }
  }

  // --- Pick the terminal layout under the BetterCandidate-compatible
  // order and backtrack.
  int best_k = -1;
  for (int k = 0; k < k_pool; ++k) {
    if (dp[static_cast<size_t>(k)] == kInf) continue;
    if (best_k < 0 ||
        BetterTerminal(dp[static_cast<size_t>(k)], toc_at(num_epochs - 1, k),
                       pool[static_cast<size_t>(k)],
                       dp[static_cast<size_t>(best_k)],
                       toc_at(num_epochs - 1, best_k),
                       pool[static_cast<size_t>(best_k)])) {
      best_k = k;
    }
  }
  DOT_CHECK(best_k >= 0);  // any_feasible held for the last epoch
  int* choice = arena.AllocateArray<int>(static_cast<size_t>(num_epochs));
  std::fill(choice, choice + num_epochs, -1);
  choice[static_cast<size_t>(num_epochs - 1)] = best_k;
  for (int e = num_epochs - 1; e > 0; --e) {
    choice[static_cast<size_t>(e - 1)] =
        pred[static_cast<size_t>(e) * static_cast<size_t>(k_pool) +
             static_cast<size_t>(choice[static_cast<size_t>(e)])];
  }

  // --- Fill the steps, re-accumulating the objective in the documented
  // order (bit-identical to the DP value by construction).
  AccumulateSteps(
      schedule, current_layout, weight, config_.migration, *schema_, *box_,
      [&](int e) -> const std::vector<int>& {
        return pool[static_cast<size_t>(choice[static_cast<size_t>(e)])];
      },
      [&](int e) { return toc_at(e, choice[static_cast<size_t>(e)]); },
      &plan);
  plan.arena_resets = static_cast<long long>(arena.resets());
  plan.arena_bytes_peak = static_cast<long long>(arena.bytes_peak());
  plan.plan_ms = NowMs() - start_ms;
  return plan;
}

ReprovisionPlan ReprovisionPlanner::EvaluateSequence(
    const EpochSchedule& schedule,
    const std::vector<std::vector<int>>& placements,
    const std::vector<int>& current_layout) const {
  const double start_ms = NowMs();
  ReprovisionPlan plan;
  plan.status = ValidateSchedule(schedule);
  if (!plan.status.ok()) return plan;
  if (static_cast<int>(placements.size()) != schedule.NumEpochs()) {
    plan.status = Status::InvalidArgument(
        "sequence length does not match the schedule's epoch count");
    return plan;
  }
  const int n = schema_->NumObjects();
  if (!current_layout.empty() &&
      static_cast<int>(current_layout.size()) != n) {
    plan.status = Status::InvalidArgument(
        "current layout does not place every schema object");
    return plan;
  }
  for (size_t e = 0; e < placements.size(); ++e) {
    if (static_cast<int>(placements[e].size()) != n) {
      plan.status = Status::InvalidArgument(
          "sequence layout for epoch " + std::to_string(e) +
          " does not place every schema object");
      return plan;
    }
  }
  const int num_epochs = schedule.NumEpochs();

  // Resolve the weight exactly as Plan does (same targets, same order).
  std::vector<std::unique_ptr<DotOptimizer>> optimizers;
  optimizers.reserve(static_cast<size_t>(num_epochs));
  for (const Epoch& epoch : schedule.epochs) {
    optimizers.push_back(std::make_unique<DotOptimizer>(
        EpochProblem(schema_, box_, epoch, config_)));
  }
  const double weight =
      ResolveMigrationWeight(config_.migration_weight, schedule, optimizers);
  plan.resolved_migration_weight = weight;

  // Score the given sequence through the searches' evaluation kernel; an
  // infeasible epoch scores +inf and marks the whole sequence.
  std::vector<double> tocs(static_cast<size_t>(num_epochs), kInf);
  for (int e = 0; e < num_epochs; ++e) {
    const CandidateEval eval = CandidateEvaluator::EvaluateOneWith(
        *optimizers[static_cast<size_t>(e)],
        Layout(schema_, box_, placements[static_cast<size_t>(e)]));
    plan.layouts_evaluated += 1;
    if (eval.feasible) tocs[static_cast<size_t>(e)] = eval.toc;
    if (!eval.feasible && plan.status.ok()) {
      plan.status = Status::Infeasible(
          "sequence layout for epoch " + std::to_string(e) +
          " violates the epoch's capacity or SLA constraints");
    }
  }

  AccumulateSteps(
      schedule, current_layout, weight, config_.migration, *schema_, *box_,
      [&](int e) -> const std::vector<int>& {
        return placements[static_cast<size_t>(e)];
      },
      [&](int e) { return tocs[static_cast<size_t>(e)]; }, &plan);
  plan.plan_ms = NowMs() - start_ms;
  return plan;
}

}  // namespace dot
