#ifndef DOTPROV_DOT_EXHAUSTIVE_H_
#define DOTPROV_DOT_EXHAUSTIVE_H_

#include "dot/optimizer.h"
#include "dot/problem.h"

namespace dot {

/// The Exhaustive Search comparator (§4.4.3/§4.5.3): enumerates all M^N
/// layouts and evaluates each with the same TOC and performance estimation
/// as DOT, returning the feasible layout of minimum TOC (the true optimum
/// of the §2.5 problem under the estimator). Exponential — only usable on
/// small object sets, which is exactly the paper's point.
///
/// `max_layouts` guards against accidental explosion; the run aborts if
/// M^N exceeds it.
DotResult ExhaustiveSearch(const DotProblem& problem,
                           long long max_layouts = 50'000'000);

}  // namespace dot

#endif  // DOTPROV_DOT_EXHAUSTIVE_H_
