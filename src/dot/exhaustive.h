#ifndef DOTPROV_DOT_EXHAUSTIVE_H_
#define DOTPROV_DOT_EXHAUSTIVE_H_

#include "dot/bnb_search.h"
#include "dot/optimizer.h"
#include "dot/problem.h"

namespace dot {

/// The Exhaustive Search comparator (§4.4.3/§4.5.3): enumerates all M^N
/// layouts and evaluates each with the same TOC and performance estimation
/// as DOT, returning the feasible layout of minimum TOC (the true optimum
/// of the §2.5 problem under the estimator). Exponential — only usable on
/// small object sets, which is exactly the paper's point; for exact optima
/// on full schemas use ExactSearch(problem, ExactStrategy::kBranchAndBound)
/// (dot/bnb_search.h), which returns bit-identical results.
///
/// This is a thin alias for ExactSearch(problem, ExactStrategy::kEnumerate,
/// max_layouts). When M^N exceeds `max_layouts` the run returns an
/// OutOfRange status (the M^N computation itself is overflow-safe).
inline DotResult ExhaustiveSearch(const DotProblem& problem,
                                  long long max_layouts =
                                      kDefaultMaxEnumeratedLayouts) {
  return ExactSearch(problem, ExactStrategy::kEnumerate, max_layouts);
}

}  // namespace dot

#endif  // DOTPROV_DOT_EXHAUSTIVE_H_
