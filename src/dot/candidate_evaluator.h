#ifndef DOTPROV_DOT_CANDIDATE_EVALUATOR_H_
#define DOTPROV_DOT_CANDIDATE_EVALUATOR_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "dot/layout.h"
#include "dot/optimizer.h"
#include "dot/problem.h"
#include "dot/sla.h"

namespace dot {

class FastEvaluator;  // dot/eval_tables.h (includes this header)

/// Verdict of one candidate-layout evaluation. Pure data: producing one has
/// no side effects, so evaluations can run on any thread and be committed —
/// or discarded — later by the (sequential, deterministic) search driver.
struct CandidateEval {
  /// Σ s_o < c_j on every class (strict — an exactly-full class does not
  /// fit; the Layout::ComputeCapacityFit rule).
  bool fits = false;
  /// fits && meets every performance target.
  bool feasible = false;
  /// estimateTOC, cents/task; +inf when the candidate is infeasible.
  double toc = 0.0;
  /// C(L) in cents/hour (0 when the candidate does not fit).
  double cost_cents_per_hour = 0.0;
  /// Total over-capacity volume, GB (the optimizer's escape gradient).
  double violation_gb = 0.0;
  /// Workload estimate; meaningful only when `fits`.
  PerfEstimate estimate;
};

/// Total order used everywhere a best layout is selected: lower TOC wins,
/// exact TOC ties broken by the lexicographically lowest placement. Because
/// the order is total and depends only on (toc, placement), any reduction
/// over any partition of candidates — per-shard minima merged in shard
/// order, or a serial scan — picks the same winner, which is what makes the
/// parallel engine bit-identical to the serial path at every thread count.
bool BetterCandidate(double toc_a, const std::vector<int>& placement_a,
                     double toc_b, const std::vector<int>& placement_b);

/// The parallel candidate-evaluation engine shared by both DOT search
/// phases. Batches EstimateToc calls across a ThreadPool for the heuristic
/// optimizer's move sequence (Procedure 1) and shards the exhaustive
/// search's mixed-radix layout space [0, M^N) across workers.
class CandidateEvaluator {
 public:
  /// `estimator` supplies EstimateToc and the run's targets; `pool` supplies
  /// the lanes. Both must outlive the evaluator. The estimator is only read
  /// (EstimateToc is const and touches no mutable state), so concurrent
  /// calls are safe. Construction builds the TOC-only fast path (device-time
  /// tables / plan cache) unless the problem disables it or the workload
  /// model offers none.
  CandidateEvaluator(const DotOptimizer& estimator, ThreadPool* pool);
  ~CandidateEvaluator();

  /// Evaluates one candidate on the calling thread, materializing the full
  /// PerfEstimate. Used for the committed winner; the search loops go
  /// through the quick variants.
  CandidateEval EvaluateOne(const Layout& layout) const;

  /// The full-path evaluation rule as a free-standing kernel (EvaluateOne
  /// delegates here). Exposed so the exact branch-and-bound search can
  /// score leaves and re-score winners through the one implementation of
  /// the rule without constructing an engine (and a second fast path) of
  /// its own.
  static CandidateEval EvaluateOneWith(const DotOptimizer& estimator,
                                       const Layout& layout);

  /// Evaluates `candidates` concurrently; results align with the input.
  std::vector<CandidateEval> EvaluateBatch(
      const std::vector<Layout>& candidates) const;

  /// TOC-only evaluation: identical toc/cost/feasibility/violation to
  /// EvaluateOne — bit-for-bit, so search decisions cannot differ — but
  /// CandidateEval::estimate stays empty and no allocation is performed.
  /// Falls back to EvaluateOne when the fast path is unavailable.
  CandidateEval EvaluateQuick(const Layout& layout) const;

  /// Quick variant of EvaluateBatch.
  std::vector<CandidateEval> EvaluateBatchQuick(
      const std::vector<Layout>& candidates) const;

  /// Scans layout indices [space_begin, space_end) of the mixed-radix space
  /// (placement[o] = (index / M^o) mod M — digit 0 least significant, the
  /// serial odometer's order), sharded across the pool, and returns the
  /// feasible minimum under BetterCandidate. Each shard walks the odometer
  /// with a fast-path cursor (only the rolled digits refresh scorer state);
  /// the winner is re-scored through the full path so `best.estimate` is
  /// populated exactly as before.
  struct SpaceScan {
    bool feasible_found = false;
    std::vector<int> best_placement;
    CandidateEval best;
    long long evaluated = 0;
  };
  SpaceScan ScanLayoutSpace(long long space_begin, long long space_end) const;

  const DotOptimizer& estimator() const { return estimator_; }

  /// Plan-cache traffic of this run's fast path (0/0 without one).
  long long plan_cache_hits() const;
  long long plan_cache_misses() const;

 private:
  const DotOptimizer& estimator_;
  ThreadPool* pool_;
  std::unique_ptr<FastEvaluator> fast_;  ///< null when disabled/unavailable
};

/// placement[o] = (index / M^o) mod M for an N-digit, radix-M space.
std::vector<int> DecodeLayoutIndex(long long index, int num_objects,
                                   int num_classes);

}  // namespace dot

#endif  // DOTPROV_DOT_CANDIDATE_EVALUATOR_H_
