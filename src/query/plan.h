#ifndef DOTPROV_QUERY_PLAN_H_
#define DOTPROV_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "query/object_io.h"

namespace dot {

class Schema;

/// Physical operators the planner chooses among.
enum class PlanOp {
  kSeqScan,
  kIndexScan,
  kHashJoin,
  kIndexNLJoin,
  kSort,
  kAggregate,
};

const char* PlanOpName(PlanOp op);

/// One object's I/O contribution within a single plan node. A node touches
/// at most a handful of objects, so per-node I/O is kept sparse; the dense
/// per-object profile is aggregated once per plan into Plan::io_by_object.
struct NodeIo {
  int object_id = -1;
  IoVector io;
};

/// A node of a chosen physical plan. The tree is left-deep: joins have the
/// running pipeline as child 0 and the inner access as child 1.
struct PlanNode {
  PlanOp op;
  /// Scanned object id for scans (table for kSeqScan; for kIndexScan the
  /// index id, with the heap fetches charged to the table in `io`). -1 for
  /// joins/sort/agg.
  int object_id = -1;
  double output_rows = 0.0;
  /// Estimated I/O time of this node alone, ms, at the planning concurrency.
  double io_ms = 0.0;
  /// Estimated CPU time of this node alone, ms.
  double cpu_ms = 0.0;
  /// Per-object I/O issued by this node alone (sparse; at most one entry
  /// per object, in insertion order).
  std::vector<NodeIo> io;
  std::vector<std::unique_ptr<PlanNode>> children;

  /// Adds `delta` to this node's entry for `object_id`, appending a new
  /// entry when the object has none yet.
  void AddIo(int object_id, const IoVector& delta) {
    for (NodeIo& entry : io) {
      if (entry.object_id == object_id) {
        entry.io += delta;
        return;
      }
    }
    io.push_back(NodeIo{object_id, delta});
  }
};

/// A complete plan for one query under one specific layout.
struct Plan {
  std::unique_ptr<PlanNode> root;
  /// Total estimated response time (I/O + CPU) in ms.
  double time_ms = 0.0;
  double io_ms = 0.0;
  double cpu_ms = 0.0;
  /// Aggregated per-object I/O counts for the whole query — the planner-
  /// estimated workload profile entries χ_r[o] (§3.4 option (a)).
  ObjectIoMap io_by_object;
  /// Join-method census for the §4.4.2 INLJ-share observations.
  int num_joins = 0;
  int num_index_nl_joins = 0;

  /// EXPLAIN-style indented rendering.
  std::string ToString(const Schema& schema) const;
};

}  // namespace dot

#endif  // DOTPROV_QUERY_PLAN_H_
