#include "query/planner.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"
#include "common/units.h"

namespace dot {

namespace {

/// Sort CPU weight relative to the per-row charge (n·log2(n) comparisons,
/// each far cheaper than full row processing).
constexpr double kSortCpuFactor = 0.1;

}  // namespace

/// One costed alternative: the I/O it issues, its time split, its output.
struct Planner::PathCost {
  std::unique_ptr<PlanNode> node;
  double total_ms = 0.0;
};

Planner::Planner(const Schema* schema, const BoxConfig* box,
                 PlannerConfig config)
    : schema_(schema), box_(box), config_(config) {
  DOT_CHECK(schema_ != nullptr && box_ != nullptr);
  DOT_CHECK(config_.concurrency >= 1.0);
  if (config_.temp_object_id >= 0) {
    DOT_CHECK(config_.temp_object_id < schema_->NumObjects())
        << "temp object id out of range";
  }
}

double Planner::ExpectedPagesFetched(double pages, double probes) {
  if (pages <= 0.0 || probes <= 0.0) return 0.0;
  if (pages == 1.0) return 1.0;
  // Cardenas: P * (1 - (1 - 1/P)^k), numerically stable via expm1/log1p.
  const double log_miss = probes * std::log1p(-1.0 / pages);
  return -pages * std::expm1(log_miss);
}

double Planner::DeviceTimeMs(int object_id, const std::vector<int>& placement,
                             const IoVector& io) const {
  DOT_CHECK(object_id >= 0 &&
            object_id < static_cast<int>(placement.size()));
  const int cls = placement[static_cast<size_t>(object_id)];
  DOT_CHECK(cls >= 0 && cls < box_->NumClasses())
      << "object " << object_id << " placed on invalid class " << cls;
  return box_->classes[static_cast<size_t>(cls)].device().TimeForMs(
      io, config_.concurrency);
}

std::vector<int> Planner::QueryFootprint(const QuerySpec& spec) const {
  std::vector<int> footprint;
  for (const RelationAccess& ra : spec.relations) {
    const int table_id = schema_->FindObject(ra.table);
    DOT_CHECK(table_id >= 0) << "unknown table " << ra.table;
    footprint.push_back(table_id);
    const int index_id = schema_->PrimaryIndexOf(table_id);
    if (index_id >= 0) footprint.push_back(index_id);
  }
  if (config_.temp_object_id >= 0) {
    footprint.push_back(config_.temp_object_id);
  }
  std::sort(footprint.begin(), footprint.end());
  footprint.erase(std::unique(footprint.begin(), footprint.end()),
                  footprint.end());
  return footprint;
}

Planner::PathCost Planner::CostSeqScan(
    const RelationAccess& ra, const std::vector<int>& placement) const {
  const int table_id = schema_->FindObject(ra.table);
  DOT_CHECK(table_id >= 0) << "unknown table " << ra.table;
  const DbObject& table = schema_->object(table_id);

  auto node = std::make_unique<PlanNode>();
  node->op = PlanOp::kSeqScan;
  node->object_id = table_id;
  node->output_rows = table.num_rows * ra.selectivity;

  IoVector table_io;
  table_io[IoType::kSeqRead] = table.pages();
  node->AddIo(table_id, table_io);
  node->io_ms = DeviceTimeMs(table_id, placement, table_io);
  node->cpu_ms = table.num_rows * config_.cpu_ms_per_row;

  PathCost out;
  out.total_ms = node->io_ms + node->cpu_ms;
  out.node = std::move(node);
  return out;
}

Planner::PathCost Planner::CostIndexScan(
    const RelationAccess& ra, const std::vector<int>& placement) const {
  const int table_id = schema_->FindObject(ra.table);
  DOT_CHECK(table_id >= 0) << "unknown table " << ra.table;
  const DbObject& table = schema_->object(table_id);
  const int index_id = schema_->PrimaryIndexOf(table_id);
  DOT_CHECK(index_id >= 0) << ra.table << " has no primary index";
  const DbObject& index = schema_->object(index_id);

  const double matches = std::max(1.0, table.num_rows * ra.selectivity);

  // Index side: one descent plus the contiguous leaf range holding the
  // matches. Leaves of a fresh B+-tree are not physically sequential, so
  // both descent and leaf fetches count as random reads.
  const double entries_per_leaf = table.num_rows / index.leaf_pages;
  const double leaf_pages_touched =
      std::min(index.leaf_pages, std::max(1.0, matches / entries_per_leaf));
  IoVector index_io;
  index_io[IoType::kRandRead] = index.height + leaf_pages_touched;

  // Heap side: the paper shuffles all tables (§4.4), so key order is
  // uncorrelated with heap order; blend a clustered estimate in only when
  // the access declares clustering.
  const double unclustered = ExpectedPagesFetched(table.pages(), matches);
  const double clustered = std::max(1.0, ra.selectivity * table.pages());
  const double heap_pages =
      ra.clustering * clustered + (1.0 - ra.clustering) * unclustered;
  IoVector table_io;
  table_io[IoType::kRandRead] = heap_pages;

  auto node = std::make_unique<PlanNode>();
  node->op = PlanOp::kIndexScan;
  node->object_id = index_id;
  node->output_rows = table.num_rows * ra.selectivity;
  node->AddIo(index_id, index_io);
  node->AddIo(table_id, table_io);
  node->io_ms = DeviceTimeMs(index_id, placement, index_io) +
                DeviceTimeMs(table_id, placement, table_io);
  node->cpu_ms = matches * config_.cpu_ms_per_row;

  PathCost out;
  out.total_ms = node->io_ms + node->cpu_ms;
  out.node = std::move(node);
  return out;
}

Plan Planner::PlanQuery(const QuerySpec& spec,
                        const std::vector<int>& placement) const {
  DOT_CHECK(!spec.relations.empty()) << "query " << spec.name
                                     << " touches no relations";
  DOT_CHECK(spec.joins.size() + 1 == spec.relations.size())
      << "query " << spec.name << ": joins/relations arity mismatch";
  DOT_CHECK(static_cast<int>(placement.size()) == schema_->NumObjects())
      << "placement must cover every object";

  const size_t n_objects = static_cast<size_t>(schema_->NumObjects());
  Plan plan;
  plan.io_by_object.assign(n_objects, IoVector{});

  // --- access path for the driving relation ---
  auto best_access = [&](const RelationAccess& ra) -> PathCost {
    PathCost seq = CostSeqScan(ra, placement);
    if (!ra.index_sargable ||
        schema_->PrimaryIndexOf(schema_->FindObject(ra.table)) < 0) {
      return seq;
    }
    PathCost idx = CostIndexScan(ra, placement);
    return idx.total_ms < seq.total_ms ? std::move(idx) : std::move(seq);
  };

  PathCost pipeline = best_access(spec.relations[0]);
  double pipeline_rows = pipeline.node->output_rows;
  double pipeline_row_bytes =
      schema_->object(schema_->FindObject(spec.relations[0].table)).row_bytes;

  // --- joins, left-deep in template order ---
  for (size_t j = 0; j < spec.joins.size(); ++j) {
    const JoinStep& join = spec.joins[j];
    const RelationAccess& inner_ra = spec.relations[j + 1];
    const int inner_table_id = schema_->FindObject(inner_ra.table);
    DOT_CHECK(inner_table_id >= 0) << "unknown table " << inner_ra.table;
    const DbObject& inner_table = schema_->object(inner_table_id);
    const double out_rows =
        std::max(0.0, pipeline_rows * join.matches_per_outer);

    // Candidate 1: hash join. Build on the inner relation's best access
    // path; spill both sides to temp when the build side exceeds work_mem.
    PathCost hj;
    {
      PathCost inner = best_access(inner_ra);
      auto node = std::make_unique<PlanNode>();
      node->op = PlanOp::kHashJoin;
      node->output_rows = out_rows;
      node->io_ms = 0.0;
      node->cpu_ms =
          (pipeline_rows + inner.node->output_rows) * config_.cpu_ms_per_row;

      const double build_bytes =
          inner.node->output_rows * inner_table.row_bytes;
      const double work_mem_bytes = config_.work_mem_gb * kBytesPerGb;
      if (config_.temp_object_id >= 0 && build_bytes > work_mem_bytes) {
        const double spill_fraction =
            std::clamp(1.0 - work_mem_bytes / build_bytes, 0.0, 1.0);
        const double spill_bytes =
            (build_bytes + pipeline_rows * pipeline_row_bytes) *
            spill_fraction;
        const double spill_pages =
            spill_bytes / static_cast<double>(kPageBytes);
        IoVector temp_io;
        temp_io[IoType::kSeqWrite] =
            spill_bytes / inner_table.row_bytes;  // rows written (per-row SW)
        temp_io[IoType::kSeqRead] = spill_pages;  // read back (per-page SR)
        node->AddIo(config_.temp_object_id, temp_io);
        node->io_ms +=
            DeviceTimeMs(config_.temp_object_id, placement, temp_io);
      }

      hj.total_ms = inner.total_ms + node->io_ms + node->cpu_ms;
      node->children.push_back(nullptr);  // pipeline attached later
      node->children.push_back(std::move(inner.node));
      hj.node = std::move(node);
    }

    // Candidate 2: indexed nested-loop join — probe the inner's primary
    // index once per outer row.
    PathCost inlj;
    const int inner_index_id = schema_->PrimaryIndexOf(inner_table_id);
    const bool inlj_possible = join.inner_indexable && inner_index_id >= 0;
    if (inlj_possible) {
      const DbObject& index = schema_->object(inner_index_id);
      const double probes = std::max(1.0, pipeline_rows);
      const double total_matches = probes * join.matches_per_outer;

      // Leaf fetches: one per probe, capped by distinct-leaf reuse.
      const double leaf_io = ExpectedPagesFetched(index.leaf_pages, probes);
      // Residual descent misses above the leaves (upper levels are hot).
      const double inner_nodes = std::max(1.0, index.leaf_pages / 100.0);
      const double descent_io =
          std::min(probes * (index.height - 1) * config_.descent_cache_factor,
                   inner_nodes);
      IoVector index_io;
      index_io[IoType::kRandRead] = leaf_io + descent_io;

      const double heap_io =
          ExpectedPagesFetched(inner_table.pages(), total_matches);
      IoVector heap_io_vec;
      heap_io_vec[IoType::kRandRead] = heap_io;

      auto node = std::make_unique<PlanNode>();
      node->op = PlanOp::kIndexNLJoin;
      node->object_id = inner_index_id;
      node->output_rows = out_rows;
      node->AddIo(inner_index_id, index_io);
      node->AddIo(inner_table_id, heap_io_vec);
      node->io_ms = DeviceTimeMs(inner_index_id, placement, index_io) +
                    DeviceTimeMs(inner_table_id, placement, heap_io_vec);
      node->cpu_ms =
          (probes + total_matches) * config_.cpu_ms_per_row;
      inlj.total_ms = node->io_ms + node->cpu_ms;
      inlj.node = std::move(node);
    }

    // `total_ms` of each candidate is the *incremental* cost of this join
    // step (for HJ that includes the inner access path); the candidates are
    // compared on equal footing since the outer pipeline cost is common.
    PathCost* chosen = &hj;
    if (inlj_possible && inlj.total_ms < hj.total_ms) chosen = &inlj;

    plan.num_joins += 1;
    if (chosen->node->op == PlanOp::kIndexNLJoin) {
      plan.num_index_nl_joins += 1;
      chosen->node->children.insert(chosen->node->children.begin(), nullptr);
    }
    chosen->node->children[0] = std::move(pipeline.node);
    pipeline.total_ms += chosen->total_ms;
    pipeline.node = std::move(chosen->node);

    pipeline_rows = out_rows;
    pipeline_row_bytes += inner_table.row_bytes;
  }

  // --- optional sort on top (may spill) ---
  if (spec.has_sort && pipeline_rows > 1.0) {
    auto node = std::make_unique<PlanNode>();
    node->op = PlanOp::kSort;
    node->output_rows = pipeline_rows;
    node->cpu_ms = pipeline_rows * std::log2(std::max(2.0, pipeline_rows)) *
                   config_.cpu_ms_per_row * kSortCpuFactor;
    const double sort_bytes = pipeline_rows * pipeline_row_bytes;
    const double work_mem_bytes = config_.work_mem_gb * kBytesPerGb;
    if (config_.temp_object_id >= 0 && sort_bytes > work_mem_bytes) {
      const double spill_pages =
          sort_bytes / static_cast<double>(kPageBytes);
      IoVector temp_io;
      temp_io[IoType::kSeqWrite] = pipeline_rows;
      temp_io[IoType::kSeqRead] = spill_pages;
      node->AddIo(config_.temp_object_id, temp_io);
      node->io_ms = DeviceTimeMs(config_.temp_object_id, placement, temp_io);
    }
    pipeline.total_ms += node->io_ms + node->cpu_ms;
    node->children.push_back(std::move(pipeline.node));
    pipeline.node = std::move(node);
  }

  // --- aggregate / output (CPU only; the paper ignores output cost) ---
  {
    auto node = std::make_unique<PlanNode>();
    node->op = PlanOp::kAggregate;
    node->output_rows = std::max(1.0, pipeline_rows * 0.01);
    node->cpu_ms =
        pipeline_rows * config_.cpu_ms_per_row * spec.cpu_weight;
    pipeline.total_ms += node->cpu_ms;
    node->children.push_back(std::move(pipeline.node));
    pipeline.node = std::move(node);
  }

  // Fold per-node I/O and time into plan totals via a tree walk.
  plan.root = std::move(pipeline.node);
  struct Walker {
    // Node order (pre-order) and per-node entry order are the accumulation
    // schedule; each object has at most one entry per node, so this matches
    // the dense elementwise sum bit for bit.
    static void Walk(const PlanNode& node, Plan& plan) {
      for (const NodeIo& entry : node.io) {
        plan.io_by_object[static_cast<size_t>(entry.object_id)] += entry.io;
      }
      plan.io_ms += node.io_ms;
      plan.cpu_ms += node.cpu_ms;
      for (const auto& child : node.children) {
        if (child != nullptr) Walk(*child, plan);
      }
    }
  };
  Walker::Walk(*plan.root, plan);
  plan.time_ms = plan.io_ms + plan.cpu_ms;
  return plan;
}

}  // namespace dot
