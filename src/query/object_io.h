#ifndef DOTPROV_QUERY_OBJECT_IO_H_
#define DOTPROV_QUERY_OBJECT_IO_H_

#include <vector>

#include "io/io_types.h"
#include "storage/storage_class.h"

namespace dot {

/// Per-object, per-I/O-type request counts: χ_r[o] in the paper's notation.
/// Indexed densely by object id (schema order).
using ObjectIoMap = std::vector<IoVector>;

/// Elementwise sum; `into` is resized up if needed.
void AccumulateIo(ObjectIoMap& into, const ObjectIoMap& delta);

/// into[o] += delta[o] * factor, without materializing a scaled copy of
/// `delta` (the per-candidate copies this avoids were the hottest
/// allocation in the workload models' estimate loops).
void AccumulateScaledIo(ObjectIoMap& into, const ObjectIoMap& delta,
                        double factor);

/// Scales all counts by `factor` (e.g. query repetitions).
void ScaleIo(ObjectIoMap& io, double factor);

/// The I/O time share (Eq. 1) of the given per-object counts under a
/// placement: Σ_o Σ_r χ_r[o] · τ^{p[o]}_r(c), where `placement[o]` is the
/// storage-class index in `box` for object o and c is the degree of
/// concurrency.
double IoTimeShareMs(const ObjectIoMap& io, const std::vector<int>& placement,
                     const BoxConfig& box, double concurrency);

/// As above but restricted to the objects in `members`.
double IoTimeShareMs(const ObjectIoMap& io, const std::vector<int>& placement,
                     const BoxConfig& box, double concurrency,
                     const std::vector<int>& members);

}  // namespace dot

#endif  // DOTPROV_QUERY_OBJECT_IO_H_
