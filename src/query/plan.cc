#include "query/plan.h"

#include <sstream>

#include "catalog/schema.h"
#include "common/str_util.h"

namespace dot {

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kSeqScan:
      return "SeqScan";
    case PlanOp::kIndexScan:
      return "IndexScan";
    case PlanOp::kHashJoin:
      return "HashJoin";
    case PlanOp::kIndexNLJoin:
      return "IndexNLJoin";
    case PlanOp::kSort:
      return "Sort";
    case PlanOp::kAggregate:
      return "Aggregate";
  }
  return "?";
}

namespace {

void RenderNode(const PlanNode& node, const Schema& schema, int depth,
                std::ostringstream& out) {
  out << std::string(static_cast<size_t>(depth) * 2, ' ') << "-> "
      << PlanOpName(node.op);
  if (node.object_id >= 0) {
    out << " on " << schema.object(node.object_id).name;
  }
  out << StrPrintf("  (rows=%.0f io=%.2fms cpu=%.2fms)", node.output_rows,
                   node.io_ms, node.cpu_ms);
  out << "\n";
  for (const auto& child : node.children) {
    RenderNode(*child, schema, depth + 1, out);
  }
}

}  // namespace

std::string Plan::ToString(const Schema& schema) const {
  std::ostringstream out;
  out << StrPrintf("Plan: time=%.2fms (io=%.2f cpu=%.2f), joins=%d (INLJ=%d)\n",
                   time_ms, io_ms, cpu_ms, num_joins, num_index_nl_joins);
  if (root != nullptr) RenderNode(*root, schema, 0, out);
  return out.str();
}

}  // namespace dot
