#ifndef DOTPROV_QUERY_QUERY_SPEC_H_
#define DOTPROV_QUERY_QUERY_SPEC_H_

#include <string>
#include <vector>

namespace dot {

/// Declarative description of how one query accesses a base relation.
///
/// Queries are modeled at the level the paper's extended optimizer consumes
/// them: which tables are touched, how selective the predicates are, and
/// whether a predicate is answerable through the primary-key index. This is
/// sufficient for the planner to reproduce the access-path and join-method
/// decisions whose interaction with data placement the paper studies (§3.1,
/// §3.5, §4.4.2).
struct RelationAccess {
  std::string table;

  /// Fraction of the table's rows surviving the local predicate(s).
  double selectivity = 1.0;

  /// True when the predicate is sargable on the primary-key index (e.g.
  /// `id > A and id < B`), making an index scan a candidate access path.
  bool index_sargable = false;

  /// Correlation between index order and heap order in [0, 1]. The paper
  /// shuffles every table so that heap order is uncorrelated with key order
  /// (§4.4), hence the default 0: each matching row costs one random heap
  /// page fetch.
  double clustering = 0.0;
};

/// One join step in the left-deep pipeline: joins the running outer result
/// with `relations[i+1]`.
struct JoinStep {
  /// Matching inner rows per outer row (≈1.0 for FK→PK joins; can exceed 1
  /// for PK→FK expansion, e.g. orders→lineitem yields ~4).
  double matches_per_outer = 1.0;

  /// True when the inner relation has an index usable for the join key, so
  /// an indexed nested-loop join is a candidate.
  bool inner_indexable = false;
};

/// A query template q: base-relation accesses joined left-deep in order,
/// followed by optional sort/aggregation work.
struct QuerySpec {
  std::string name;

  std::vector<RelationAccess> relations;

  /// joins[i] combines the running outer (relations[0..i]) with
  /// relations[i+1]; size must be relations.size() - 1 (or 0 for a single
  /// relation).
  std::vector<JoinStep> joins;

  /// True when the query needs a sort (order by / group by above hash size);
  /// sorts may spill to temp space if the input exceeds work_mem.
  bool has_sort = false;

  /// Extra CPU weight for expression-heavy queries (multiplier on the
  /// per-row CPU cost; 1.0 = plain).
  double cpu_weight = 1.0;
};

}  // namespace dot

#endif  // DOTPROV_QUERY_QUERY_SPEC_H_
