#include "query/object_io.h"

#include <vector>

#include "common/check.h"
#include "common/simd_dispatch.h"

namespace dot {

namespace {

/// Per-thread buffer of the non-zero per-object times, so both
/// IoTimeShareMs overloads can run the pinned blocked summation schedule
/// (common/simd_dispatch.h) over exactly the addends the scalar walk used
/// to accumulate. The fast scorers gather the same per-object times from
/// their SoA planes through the same schedule — that shared schedule is
/// what keeps fast == full bit-identical.
std::vector<double>& TimeScratch() {
  static thread_local std::vector<double> scratch;
  return scratch;
}

}  // namespace

void AccumulateIo(ObjectIoMap& into, const ObjectIoMap& delta) {
  if (into.size() < delta.size()) into.resize(delta.size());
  for (size_t i = 0; i < delta.size(); ++i) into[i] += delta[i];
}

void AccumulateScaledIo(ObjectIoMap& into, const ObjectIoMap& delta,
                        double factor) {
  if (into.size() < delta.size()) into.resize(delta.size());
  for (size_t i = 0; i < delta.size(); ++i) into[i] += delta[i] * factor;
}

void ScaleIo(ObjectIoMap& io, double factor) {
  for (IoVector& v : io) v *= factor;
}

double IoTimeShareMs(const ObjectIoMap& io, const std::vector<int>& placement,
                     const BoxConfig& box, double concurrency) {
  DOT_CHECK(io.size() <= placement.size())
      << "placement does not cover all objects";
  std::vector<double>& times = TimeScratch();
  times.clear();
  for (size_t o = 0; o < io.size(); ++o) {
    if (io[o].IsZero()) continue;
    const int cls = placement[o];
    DOT_CHECK(cls >= 0 && cls < box.NumClasses())
        << "object " << o << " has invalid placement " << cls;
    times.push_back(box.classes[static_cast<size_t>(cls)].device().TimeForMs(
        io[o], concurrency));
  }
  return BlockedSum(times.data(), static_cast<int>(times.size()));
}

double IoTimeShareMs(const ObjectIoMap& io, const std::vector<int>& placement,
                     const BoxConfig& box, double concurrency,
                     const std::vector<int>& members) {
  std::vector<double>& times = TimeScratch();
  times.clear();
  for (int o : members) {
    const size_t idx = static_cast<size_t>(o);
    if (idx >= io.size() || io[idx].IsZero()) continue;
    const int cls = placement[idx];
    DOT_CHECK(cls >= 0 && cls < box.NumClasses())
        << "object " << o << " has invalid placement " << cls;
    times.push_back(box.classes[static_cast<size_t>(cls)].device().TimeForMs(
        io[idx], concurrency));
  }
  return BlockedSum(times.data(), static_cast<int>(times.size()));
}

}  // namespace dot
