#include "query/object_io.h"

#include "common/check.h"

namespace dot {

void AccumulateIo(ObjectIoMap& into, const ObjectIoMap& delta) {
  if (into.size() < delta.size()) into.resize(delta.size());
  for (size_t i = 0; i < delta.size(); ++i) into[i] += delta[i];
}

void AccumulateScaledIo(ObjectIoMap& into, const ObjectIoMap& delta,
                        double factor) {
  if (into.size() < delta.size()) into.resize(delta.size());
  for (size_t i = 0; i < delta.size(); ++i) into[i] += delta[i] * factor;
}

void ScaleIo(ObjectIoMap& io, double factor) {
  for (IoVector& v : io) v *= factor;
}

double IoTimeShareMs(const ObjectIoMap& io, const std::vector<int>& placement,
                     const BoxConfig& box, double concurrency) {
  DOT_CHECK(io.size() <= placement.size())
      << "placement does not cover all objects";
  double total = 0.0;
  for (size_t o = 0; o < io.size(); ++o) {
    if (io[o].IsZero()) continue;
    const int cls = placement[o];
    DOT_CHECK(cls >= 0 && cls < box.NumClasses())
        << "object " << o << " has invalid placement " << cls;
    total += box.classes[static_cast<size_t>(cls)].device().TimeForMs(
        io[o], concurrency);
  }
  return total;
}

double IoTimeShareMs(const ObjectIoMap& io, const std::vector<int>& placement,
                     const BoxConfig& box, double concurrency,
                     const std::vector<int>& members) {
  double total = 0.0;
  for (int o : members) {
    const size_t idx = static_cast<size_t>(o);
    if (idx >= io.size() || io[idx].IsZero()) continue;
    const int cls = placement[idx];
    DOT_CHECK(cls >= 0 && cls < box.NumClasses())
        << "object " << o << " has invalid placement " << cls;
    total += box.classes[static_cast<size_t>(cls)].device().TimeForMs(
        io[idx], concurrency);
  }
  return total;
}

}  // namespace dot
