#ifndef DOTPROV_QUERY_PLANNER_H_
#define DOTPROV_QUERY_PLANNER_H_

#include <vector>

#include "catalog/schema.h"
#include "query/plan.h"
#include "query/query_spec.h"
#include "storage/storage_class.h"

namespace dot {

/// Tunables of the extended query optimizer (§3.5).
struct PlannerConfig {
  /// CPU cost per row flowing through an operator, ms. The paper estimates
  /// response time as I/O time + CPU time with CPU methods taken from prior
  /// work [26]; we use a flat per-row charge (0.1 µs/row ≈ a few simple
  /// predicate evaluations on the paper's 2.26 GHz Xeon).
  double cpu_ms_per_row = 0.0001;

  /// Memory available to a hash or sort before spilling to temp space, GB
  /// (PostgreSQL work_mem; the paper runs with a 4 GB shared buffer).
  double work_mem_gb = 4.0;

  /// Fraction of non-leaf B+-tree descent pages that cause real I/O on a
  /// repeated index probe (upper levels stay in the buffer pool; the
  /// effective Table 1 latencies are end-to-end DBMS measurements that
  /// already average such hits, so only a residual miss rate is charged).
  double descent_cache_factor = 0.15;

  /// Object id of the temp space that spills write to, or -1 when spills
  /// are not modeled (the paper's TPC-H runs fit hash tables in memory).
  int temp_object_id = -1;

  /// Degree of concurrency at which device latencies are evaluated
  /// (1 for the DSS experiments, 300 for OLTP — §3.5.1).
  double concurrency = 1.0;
};

/// The storage-aware cost-based planner.
///
/// A typical DBMS optimizer prices every I/O identically; the paper extends
/// PostgreSQL so plan cost depends on *which device each object sits on*
/// (§3.5). This planner reproduces that: for every base relation it chooses
/// sequential vs. index scan, and for every join hash join vs. indexed
/// nested loop, by pricing each alternative's I/O against the
/// per-(device, type, concurrency) latencies of the layout being evaluated.
/// Changing the layout can therefore flip plans — the table/index
/// interaction at the heart of DOT's object grouping (§3.1).
class Planner {
 public:
  /// `schema` and `box` must outlive the planner.
  Planner(const Schema* schema, const BoxConfig* box, PlannerConfig config);

  /// Plans `spec` under the given placement (object id → storage-class
  /// index) and returns the chosen plan with its per-object I/O counts and
  /// estimated response time.
  Plan PlanQuery(const QuerySpec& spec,
                 const std::vector<int>& placement) const;

  /// The placement footprint of `spec`: the sorted, deduplicated object ids
  /// whose placement PlanQuery can ever consult for this template (each
  /// referenced table, its primary index, and the temp object when spills
  /// are modeled). Two placements that agree on the footprint yield the
  /// same plan and the same estimated time — the key of the DSS plan cache.
  std::vector<int> QueryFootprint(const QuerySpec& spec) const;

  const PlannerConfig& config() const { return config_; }

  /// Expected distinct pages fetched when `probes` uniform random probes hit
  /// an object of `pages` pages (Cardenas' formula); models buffer-pool
  /// reuse of hot pages across probes. Exposed for testing and analysis.
  static double ExpectedPagesFetched(double pages, double probes);

 private:
  struct PathCost;  // internal: one candidate access path / join method

  double DeviceTimeMs(int object_id, const std::vector<int>& placement,
                      const IoVector& io) const;

  PathCost CostSeqScan(const RelationAccess& ra,
                       const std::vector<int>& placement) const;
  PathCost CostIndexScan(const RelationAccess& ra,
                         const std::vector<int>& placement) const;

  const Schema* schema_;
  const BoxConfig* box_;
  PlannerConfig config_;
};

}  // namespace dot

#endif  // DOTPROV_QUERY_PLANNER_H_
