#include "io/io_simulator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dot {

IoSimulator::IoSimulator(std::vector<const DeviceModel*> devices)
    : devices_(std::move(devices)) {
  DOT_CHECK(!devices_.empty()) << "simulator needs at least one device";
  for (const DeviceModel* d : devices_) DOT_CHECK(d != nullptr);
}

double IoSimulator::StreamTimeMs(const IoStream& stream,
                                 double concurrency) const {
  DOT_CHECK(stream.demands.size() <= devices_.size())
      << "stream references unknown device";
  double total = 0.0;
  for (size_t d = 0; d < stream.demands.size(); ++d) {
    total += devices_[d]->TimeForMs(stream.demands[d], concurrency);
  }
  return total;
}

IoSimResult IoSimulator::Run(const std::vector<IoStream>& streams,
                             double noise_cv, Rng* rng) const {
  DOT_CHECK(noise_cv == 0.0 || rng != nullptr)
      << "noise requires an Rng";
  const double concurrency = std::max<size_t>(streams.size(), 1);

  IoSimResult result;
  result.stream_ms.reserve(streams.size());
  result.device_io.assign(devices_.size(), IoVector{});
  result.device_busy_ms.assign(devices_.size(), 0.0);

  // Lognormal with unit mean and coefficient of variation `noise_cv`.
  const double sigma2 = std::log(1.0 + noise_cv * noise_cv);
  const double mu = -0.5 * sigma2;
  const double sigma = std::sqrt(sigma2);

  for (const IoStream& stream : streams) {
    DOT_CHECK(stream.demands.size() <= devices_.size())
        << "stream references unknown device";
    double stream_time = 0.0;
    for (size_t d = 0; d < stream.demands.size(); ++d) {
      double device_time =
          devices_[d]->TimeForMs(stream.demands[d], concurrency);
      if (noise_cv > 0.0 && device_time > 0.0) {
        device_time *= std::exp(mu + sigma * rng->NextGaussian());
      }
      stream_time += device_time;
      result.device_io[d] += stream.demands[d];
      result.device_busy_ms[d] += device_time;
    }
    result.stream_ms.push_back(stream_time);
    result.elapsed_ms = std::max(result.elapsed_ms, stream_time);
  }
  return result;
}

}  // namespace dot
