#include "io/device_model.h"

#include <cmath>

#include "common/check.h"

namespace dot {

namespace {
constexpr double kMaxConcurrency = 300.0;
}  // namespace

DeviceModel::DeviceModel(std::string name,
                         std::array<LatencyAnchors, kNumIoTypes> anchors)
    : name_(std::move(name)), anchors_(anchors) {
  for (const auto& a : anchors_) {
    DOT_CHECK(a.at_c1_ms > 0 && a.at_c300_ms > 0)
        << "device " << name_ << " has non-positive latency anchor";
  }
}

double DeviceModel::LatencyMs(IoType type, double concurrency) const {
  DOT_CHECK(concurrency >= 1.0) << "concurrency must be >= 1";
  const LatencyAnchors& a = anchors_[static_cast<size_t>(type)];
  const double c = std::min(concurrency, kMaxConcurrency);
  const double exponent = std::log(c) / std::log(kMaxConcurrency);
  return a.at_c1_ms * std::pow(a.at_c300_ms / a.at_c1_ms, exponent);
}

double DeviceModel::TimeForMs(const IoVector& counts,
                              double concurrency) const {
  double total = 0.0;
  for (IoType t : kAllIoTypes) {
    if (counts[t] != 0.0) total += counts[t] * LatencyMs(t, concurrency);
  }
  return total;
}

DeviceModel MakeRaid0(const DeviceModel& base, int stripes,
                      const std::string& name) {
  DOT_CHECK(stripes >= 1) << "RAID 0 needs at least one stripe";
  if (stripes == 1) {
    return DeviceModel(name, {base.anchors(IoType::kSeqRead),
                              base.anchors(IoType::kRandRead),
                              base.anchors(IoType::kSeqWrite),
                              base.anchors(IoType::kRandWrite)});
  }
  const double k = static_cast<double>(stripes);
  // Efficiency factors fitted to the measured 2-way pairs in Table 1:
  //   HDD SR    0.072 -> 0.049  (x1.47 for k=2  => ~73% striping efficiency)
  //   L-SSD SR  0.036 -> 0.021  (x1.71)
  //   HDD RW    10.15 -> 11.55  (controller overhead roughly cancels spread)
  //   L-SSD RW  62.01 -> 21.14  (x2.9: spreading relieves erase-block stalls)
  // We use conservative middle-ground factors and document the derivation.
  auto scaled = [&](IoType t, double speedup_per_stripe,
                    double max_speedup) -> LatencyAnchors {
    const LatencyAnchors& a = base.anchors(t);
    const double speedup =
        std::min(max_speedup, 1.0 + speedup_per_stripe * (k - 1.0));
    return LatencyAnchors{a.at_c1_ms / speedup, a.at_c300_ms / speedup};
  };
  std::array<LatencyAnchors, kNumIoTypes> anchors{};
  anchors[static_cast<size_t>(IoType::kSeqRead)] =
      scaled(IoType::kSeqRead, 0.55, k);
  anchors[static_cast<size_t>(IoType::kRandRead)] =
      scaled(IoType::kRandRead, 0.10, 2.0);
  anchors[static_cast<size_t>(IoType::kSeqWrite)] =
      scaled(IoType::kSeqWrite, 0.40, k);
  anchors[static_cast<size_t>(IoType::kRandWrite)] =
      scaled(IoType::kRandWrite, 0.80, k);
  return DeviceModel(name, anchors);
}

}  // namespace dot
