#include "io/microbench.h"

#include <vector>

#include "common/check.h"
#include "io/io_simulator.h"

namespace dot {

namespace {

/// Builds `k` identical one-device streams with the given demand.
std::vector<IoStream> ReplicateStreams(int k, const IoVector& demand) {
  std::vector<IoStream> streams(static_cast<size_t>(k));
  for (auto& s : streams) s.demands = {demand};
  return streams;
}

}  // namespace

MeasuredIoProfile RunDeviceMicrobench(const DeviceModel& device,
                                      const MicrobenchConfig& config) {
  DOT_CHECK(config.concurrency >= 1);
  IoSimulator sim({&device});
  Rng rng(config.seed);
  const int k = config.concurrency;
  MeasuredIoProfile out;

  // --- Sequential read: one full scan of the per-thread table. ---
  {
    IoVector demand;
    demand[IoType::kSeqRead] = config.table_pages;
    IoSimResult r = sim.Run(ReplicateStreams(k, demand), config.noise_cv, &rng);
    // Per-thread elapsed / per-thread request count, averaged over threads:
    // total busy time / total requests.
    out.per_request_ms[IoType::kSeqRead] =
        r.device_busy_ms[0] / (config.table_pages * k);
  }

  // --- Random read: point lookups descend the index then fetch the row. ---
  double rr_per_request = 0.0;
  {
    const double ios_per_query = config.index_height + 1.0;
    IoVector demand;
    demand[IoType::kRandRead] = config.point_queries * ios_per_query;
    IoSimResult r = sim.Run(ReplicateStreams(k, demand), config.noise_cv, &rng);
    rr_per_request =
        r.device_busy_ms[0] / (config.point_queries * ios_per_query * k);
    out.per_request_ms[IoType::kRandRead] = rr_per_request;
  }

  // --- Sequential write: single-row inserts, costed per row. ---
  {
    IoVector demand;
    demand[IoType::kSeqWrite] = config.insert_rows;
    IoSimResult r = sim.Run(ReplicateStreams(k, demand), config.noise_cv, &rng);
    out.per_request_ms[IoType::kSeqWrite] = r.device_busy_ms[0] /
                                            (config.insert_rows * k);
  }

  // --- Random write: update = random read (locate) + random write. The
  // benchmark observes only the total elapsed time of the update stream and
  // recovers RW by subtracting the RR estimate measured above. ---
  {
    const double reads_per_update = config.index_height + 1.0;
    IoVector demand;
    demand[IoType::kRandRead] = config.update_rows * reads_per_update;
    demand[IoType::kRandWrite] = config.update_rows;
    IoSimResult r = sim.Run(ReplicateStreams(k, demand), config.noise_cv, &rng);
    const double elapsed_per_thread = r.device_busy_ms[0] / k;
    const double rr_share =
        rr_per_request * config.update_rows * reads_per_update;
    out.per_request_ms[IoType::kRandWrite] =
        (elapsed_per_thread - rr_share) / config.update_rows;
  }

  return out;
}

}  // namespace dot
