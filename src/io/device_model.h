#ifndef DOTPROV_IO_DEVICE_MODEL_H_
#define DOTPROV_IO_DEVICE_MODEL_H_

#include <array>
#include <string>

#include "io/io_types.h"

namespace dot {

/// Latency anchors for one I/O type: the effective per-request time measured
/// end-to-end from inside the DBMS at degree-of-concurrency 1 and 300
/// (exactly the two columns Table 1 reports).
struct LatencyAnchors {
  double at_c1_ms = 0.0;    ///< per-I/O (reads) or per-row (writes) at c=1
  double at_c300_ms = 0.0;  ///< same, with 300 concurrent DB threads
};

/// Calibrated model of one storage class's I/O behaviour.
///
/// The paper characterises devices purely by measured effective latencies per
/// (I/O type, degree of concurrency); DOT never consults a deeper device
/// model. We store the two published anchors per type and interpolate
/// geometrically between them:
///
///   τ(c) = τ(1) · (τ(300)/τ(1))^(ln c / ln 300),  clamped at c = 300.
///
/// This reproduces both published operating points exactly, is monotone in c
/// (in whichever direction the device actually moves — HDD random reads get
/// *faster* under queueing thanks to elevator scheduling, HDD sequential
/// reads get slower due to interleaving), and behaves smoothly in between.
class DeviceModel {
 public:
  DeviceModel() = default;

  /// `name` is the storage-class label (e.g. "HDD RAID 0").
  DeviceModel(std::string name,
              std::array<LatencyAnchors, kNumIoTypes> anchors);

  const std::string& name() const { return name_; }

  /// Effective per-request latency in ms for `type` at `concurrency` >= 1.
  double LatencyMs(IoType type, double concurrency) const;

  /// The raw calibration anchors for `type`.
  const LatencyAnchors& anchors(IoType type) const {
    return anchors_[static_cast<size_t>(type)];
  }

  /// Time in ms to execute the given per-type I/O counts serially at the
  /// given concurrency level: Σ_r χ_r · τ_r(c).
  double TimeForMs(const IoVector& counts, double concurrency) const;

 private:
  std::string name_;
  std::array<LatencyAnchors, kNumIoTypes> anchors_{};
};

/// Derives a k-way RAID-0 model from a base device, for provisioning
/// configurations that do not correspond to a measured Table 1 class
/// (used by the §5.1 generalized-provisioning experiments).
///
/// Striping multiplies sequential bandwidth by ~k (latency divided by k,
/// floored at 65% efficiency per published RAID-0 anchors), improves random
/// writes by spreading them over k spindles/packages, and improves random
/// reads modestly (a single request still hits one device; the gain comes
/// from shorter queues under concurrency). The scaling factors are fitted to
/// the measured HDD→HDD-RAID-0 and L-SSD→L-SSD-RAID-0 pairs in Table 1.
DeviceModel MakeRaid0(const DeviceModel& base, int stripes,
                      const std::string& name);

}  // namespace dot

#endif  // DOTPROV_IO_DEVICE_MODEL_H_
