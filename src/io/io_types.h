#ifndef DOTPROV_IO_IO_TYPES_H_
#define DOTPROV_IO_IO_TYPES_H_

#include <array>
#include <cstddef>
#include <string>

namespace dot {

/// The four I/O access patterns the paper uses to model DBMS behaviour
/// (§3.3): sequential read, random read, sequential write, random write.
///
/// Units follow Table 1: reads are costed per I/O (page) and writes per row,
/// matching how the paper's microbenchmark calibrates devices end-to-end
/// from inside the DBMS.
enum class IoType {
  kSeqRead = 0,
  kRandRead = 1,
  kSeqWrite = 2,
  kRandWrite = 3,
};

inline constexpr int kNumIoTypes = 4;

inline constexpr std::array<IoType, kNumIoTypes> kAllIoTypes = {
    IoType::kSeqRead, IoType::kRandRead, IoType::kSeqWrite,
    IoType::kRandWrite};

/// Short label, e.g. "SR".
inline const char* IoTypeName(IoType t) {
  switch (t) {
    case IoType::kSeqRead:
      return "SR";
    case IoType::kRandRead:
      return "RR";
    case IoType::kSeqWrite:
      return "SW";
    case IoType::kRandWrite:
      return "RW";
  }
  return "??";
}

/// Per-I/O-type quantities (counts, times, ...). χ_r in the paper's notation
/// when used as counts.
struct IoVector {
  std::array<double, kNumIoTypes> v{0.0, 0.0, 0.0, 0.0};

  double& operator[](IoType t) { return v[static_cast<size_t>(t)]; }
  double operator[](IoType t) const { return v[static_cast<size_t>(t)]; }

  IoVector& operator+=(const IoVector& o) {
    for (int i = 0; i < kNumIoTypes; ++i) v[i] += o.v[i];
    return *this;
  }
  friend IoVector operator+(IoVector a, const IoVector& b) { return a += b; }

  IoVector& operator*=(double s) {
    for (int i = 0; i < kNumIoTypes; ++i) v[i] *= s;
    return *this;
  }
  friend IoVector operator*(IoVector a, double s) { return a *= s; }

  double Total() const {
    double t = 0;
    for (double x : v) t += x;
    return t;
  }

  bool IsZero() const {
    for (double x : v) {
      if (x != 0.0) return false;
    }
    return true;
  }

  std::string ToString() const;
};

inline std::string IoVector::ToString() const {
  std::string out = "{";
  for (int i = 0; i < kNumIoTypes; ++i) {
    if (i) out += ", ";
    out += IoTypeName(static_cast<IoType>(i));
    out += "=";
    out += std::to_string(v[i]);
  }
  out += "}";
  return out;
}

}  // namespace dot

#endif  // DOTPROV_IO_IO_TYPES_H_
