#ifndef DOTPROV_IO_IO_SIMULATOR_H_
#define DOTPROV_IO_IO_SIMULATOR_H_

#include <vector>

#include "common/rng.h"
#include "io/device_model.h"
#include "io/io_types.h"

namespace dot {

/// The I/O demand one logical DB thread places on the storage subsystem:
/// per-device, per-type request counts.
struct IoStream {
  /// demands[d] is the IoVector issued against device index d.
  std::vector<IoVector> demands;
};

/// Outcome of simulating a set of concurrent streams.
struct IoSimResult {
  /// Wall-clock time: the slowest stream (all streams start together).
  double elapsed_ms = 0.0;
  /// Completion time per stream.
  std::vector<double> stream_ms;
  /// Total I/O issued per device (summed over streams).
  std::vector<IoVector> device_io;
  /// Aggregate device time per device: Σ_streams Σ_r χ_r · τ_r(c).
  std::vector<double> device_busy_ms;
};

/// Times concurrent I/O request streams against a set of device models.
///
/// The concurrency-dependent effective latencies already fold queueing,
/// caching and scheduler effects into the per-request times (they are
/// end-to-end DBMS measurements, §3.5), so the simulator prices each
/// stream's requests at τ_r(c) where c is the number of concurrent streams,
/// exactly as the paper's estimator does. Optional multiplicative noise
/// models run-to-run variance for the validation phase.
class IoSimulator {
 public:
  /// `devices` must outlive the simulator. Device index in IoStream::demands
  /// refers to positions in this vector.
  explicit IoSimulator(std::vector<const DeviceModel*> devices);

  size_t num_devices() const { return devices_.size(); }

  /// Simulates all `streams` starting simultaneously.
  ///
  /// `noise_cv` > 0 applies a lognormal multiplicative jitter with that
  /// coefficient of variation to each stream's per-device time, drawn from
  /// `rng` (required iff noise_cv > 0).
  IoSimResult Run(const std::vector<IoStream>& streams, double noise_cv = 0.0,
                  Rng* rng = nullptr) const;

  /// Convenience: time for a single stream at an *explicit* concurrency
  /// level (used when one simulated thread stands in for `concurrency`
  /// identical ones).
  double StreamTimeMs(const IoStream& stream, double concurrency) const;

 private:
  std::vector<const DeviceModel*> devices_;
};

}  // namespace dot

#endif  // DOTPROV_IO_IO_SIMULATOR_H_
