#ifndef DOTPROV_IO_MICROBENCH_H_
#define DOTPROV_IO_MICROBENCH_H_

#include "common/rng.h"
#include "io/device_model.h"
#include "io/io_types.h"

namespace dot {

/// Parameters of the §3.5.1 storage-class benchmark: K concurrent DB threads,
/// each owning a private table A_i with a B+-tree primary-key index, issuing
///   SR:  select count(*) from A_i              (full sequential scan)
///   RR:  select count(*) from A_i where id = ? (index point lookups)
///   SW:  insert into A_i ...                   (single-row inserts)
///   RW:  update A_i set a = ? where id = ?     (random read + random write)
struct MicrobenchConfig {
  int concurrency = 1;         ///< K, the degree of concurrency
  double table_pages = 4096;   ///< pages per per-thread table
  int index_height = 3;        ///< B+-tree levels traversed per point lookup
  int point_queries = 2000;    ///< RR queries issued per thread
  int insert_rows = 2000;      ///< SW rows inserted per thread
  int update_rows = 2000;      ///< RW update queries per thread
  double noise_cv = 0.0;       ///< per-run multiplicative jitter
  uint64_t seed = 42;
};

/// Effective per-request times recovered by the benchmark, directly
/// comparable to one column of Table 1.
struct MeasuredIoProfile {
  /// Measured τ for SR/RR (per I/O) and SW/RW (per row).
  IoVector per_request_ms;
};

/// Runs the §3.5.1 calibration workload against `device` and recovers its
/// effective I/O profile exactly the way the paper does:
///  * SR / RR / SW: elapsed time divided by the number of requests;
///  * RW: update queries bundle a random read with the random write, so the
///    benchmark *subtracts the previously-measured RR time* from the update
///    elapsed time before dividing (§3.5.1, "Write I/O").
MeasuredIoProfile RunDeviceMicrobench(const DeviceModel& device,
                                      const MicrobenchConfig& config);

}  // namespace dot

#endif  // DOTPROV_IO_MICROBENCH_H_
