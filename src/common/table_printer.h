#ifndef DOTPROV_COMMON_TABLE_PRINTER_H_
#define DOTPROV_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace dot {

/// Renders column-aligned ASCII tables for the benchmark harnesses so that
/// each bench binary can print the same rows/series the paper reports.
///
/// Usage:
///   TablePrinter t({"layout", "TOC (cents)", "PSR (%)"});
///   t.AddRow({"All H-SSD", "12.3", "100"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Writes the formatted table to `os`.
  void Print(std::ostream& os) const;

  /// Returns the formatted table as a string.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  // A row with the sentinel single element "\x01" renders as a separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dot

#endif  // DOTPROV_COMMON_TABLE_PRINTER_H_
