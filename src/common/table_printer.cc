#include "common/table_printer.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace dot {

namespace {
constexpr const char* kSeparatorSentinel = "\x01";
}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  DOT_CHECK(!header_.empty()) << "table must have at least one column";
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  DOT_CHECK(row.size() == header_.size())
      << "row arity " << row.size() << " != header arity " << header_.size();
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() {
  rows_.push_back({kSeparatorSentinel});
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorSentinel) continue;
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_separator = [&](std::ostringstream& out) {
    out << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << "+";
    }
    out << "\n";
  };
  auto emit_row = [&](std::ostringstream& out,
                      const std::vector<std::string>& cells) {
    out << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };

  std::ostringstream out;
  emit_separator(out);
  emit_row(out, header_);
  emit_separator(out);
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorSentinel) {
      emit_separator(out);
    } else {
      emit_row(out, row);
    }
  }
  emit_separator(out);
  return out.str();
}

}  // namespace dot
