#ifndef DOTPROV_COMMON_SIMD_DISPATCH_H_
#define DOTPROV_COMMON_SIMD_DISPATCH_H_

namespace dot {

/// Instruction-set level of the summation kernels (DESIGN.md §13). Resolved
/// once at first use from cpuid, overridable with DOT_KERNEL=scalar|avx2.
enum class KernelLevel {
  kScalar = 0,
  kAvx2 = 1,
};

/// Human-readable level name ("scalar", "avx2").
const char* KernelLevelName(KernelLevel level);

/// True when this machine can execute kernels at `level`.
bool KernelLevelSupported(KernelLevel level);

/// The level the dispatcher resolved for this process.
KernelLevel ActiveKernelLevel();

/// Test hook: forces the active level and returns the previous one. Not
/// thread-safe; call only from single-threaded test setup. Forcing an
/// unsupported level is a fatal error.
KernelLevel ForceKernelLevelForTest(KernelLevel level);

/// Inputs shorter than this are summed left to right instead of through the
/// blocked schedule: tiny sums gain nothing from lanes, and the sequential
/// order keeps small-instance expectations (hand-summed in tests) stable.
inline constexpr int kBlockedSumThreshold = 8;

/// The summation kernels behind the fast scorers and bound cursors. Every
/// variant — scalar and AVX2 — executes the *pinned blocked schedule*:
///
///   n <  kBlockedSumThreshold:  total = ((x0 + x1) + x2) + ...
///   n >= kBlockedSumThreshold:  four lanes acc[j] += x[4k + j] over the
///       largest multiple of 4, tail elements folded into lanes 0..r-1 in
///       order, reduced as (acc0 + acc2) + (acc1 + acc3).
///
/// The schedule is the contract: the AVX2 variants perform the same IEEE
/// additions in the same order as the scalar ones (gathers and address
/// arithmetic are integer-exact), so every level returns bit-identical
/// results and the fast == full bit-identity proof only has to be made
/// against one schedule.
struct KernelOps {
  /// Σ x[i] for i in [0, n) under the pinned schedule.
  double (*sum)(const double* x, int n);

  /// Σ values[idx[i]] for i in [0, n) under the pinned schedule.
  double (*gather_sum)(const double* values, const int* idx, int n);

  /// Σ plane[placement[objects[i]] * n + i] for i in [0, n) under the
  /// pinned schedule — the SoA scoring primitive: `plane` holds one
  /// contiguous row of per-row times per storage class, `n` is the row
  /// count, and the class picked for row i's object selects the plane.
  double (*plane_gather_sum)(const double* plane, const int* objects,
                             const int* placement, int n);
};

/// The active level's kernel table.
const KernelOps& Kernels();

/// Convenience wrappers over Kernels() — the names the call sites use.
inline double BlockedSum(const double* x, int n) { return Kernels().sum(x, n); }

inline double GatherSum(const double* values, const int* idx, int n) {
  return Kernels().gather_sum(values, idx, n);
}

inline double PlaneGatherSum(const double* plane, const int* objects,
                             const int* placement, int n) {
  return Kernels().plane_gather_sum(plane, objects, placement, n);
}

}  // namespace dot

#endif  // DOTPROV_COMMON_SIMD_DISPATCH_H_
