#include "common/arena.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"

namespace dot {

Arena::Arena(std::size_t initial_block_bytes)
    : initial_block_bytes_(std::max<std::size_t>(initial_block_bytes, 64)) {}

void Arena::AddBlock(std::size_t bytes) {
  std::size_t size = blocks_.empty() ? initial_block_bytes_
                                     : blocks_.back().size * 2;
  size = std::max(size, bytes);
  Block block;
  block.data = std::make_unique<char[]>(size);
  block.size = size;
  blocks_.push_back(std::move(block));
  ptr_ = blocks_.back().data.get();
  end_ = ptr_ + size;
}

void* Arena::Allocate(std::size_t bytes, std::size_t align) {
  DOT_CHECK(align != 0 && (align & (align - 1)) == 0)
      << "alignment must be a power of two";
  auto addr = reinterpret_cast<std::uintptr_t>(ptr_);
  std::uintptr_t aligned = (addr + align - 1) & ~(align - 1);
  std::size_t needed = bytes + static_cast<std::size_t>(aligned - addr);
  if (ptr_ == nullptr || needed > static_cast<std::size_t>(end_ - ptr_)) {
    AddBlock(bytes + align);
    addr = reinterpret_cast<std::uintptr_t>(ptr_);
    aligned = (addr + align - 1) & ~(align - 1);
    needed = bytes + static_cast<std::size_t>(aligned - addr);
  }
  void* result = reinterpret_cast<void*>(aligned);
  ptr_ += needed;
  live_bytes_ += needed;
  bytes_allocated_ += needed;
  bytes_peak_ = std::max(bytes_peak_, live_bytes_);
  return result;
}

void Arena::Reset() {
  if (blocks_.size() > 1) {
    // Retain only the largest block: the steady-state working set fits it,
    // and everything smaller was a warm-up step toward it.
    auto largest = std::max_element(
        blocks_.begin(), blocks_.end(),
        [](const Block& a, const Block& b) { return a.size < b.size; });
    Block keep = std::move(*largest);
    blocks_.clear();
    blocks_.push_back(std::move(keep));
  }
  if (!blocks_.empty()) {
    ptr_ = blocks_.back().data.get();
    end_ = ptr_ + blocks_.back().size;
  }
  live_bytes_ = 0;
  ++resets_;
}

}  // namespace dot
