#ifndef DOTPROV_COMMON_RESULT_H_
#define DOTPROV_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace dot {

/// Result<T> holds either a value of type T or an error Status.
///
/// Mirrors arrow::Result / absl::StatusOr. Accessing the value of an errored
/// Result aborts (programmer error); callers must check ok() first or use
/// DOT_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    DOT_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    DOT_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& value() & {
    DOT_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    DOT_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

namespace internal {
#define DOT_CONCAT_IMPL(a, b) a##b
#define DOT_CONCAT(a, b) DOT_CONCAT_IMPL(a, b)
}  // namespace internal

/// DOT_ASSIGN_OR_RETURN(lhs, rexpr): evaluates `rexpr` (a Result<T>); on error
/// returns the Status from the enclosing function, otherwise moves the value
/// into `lhs` (which may be a declaration).
#define DOT_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  DOT_ASSIGN_OR_RETURN_IMPL(DOT_CONCAT(_dot_result_, __LINE__), \
                            lhs, rexpr)

#define DOT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

}  // namespace dot

#endif  // DOTPROV_COMMON_RESULT_H_
