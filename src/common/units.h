#ifndef DOTPROV_COMMON_UNITS_H_
#define DOTPROV_COMMON_UNITS_H_

#include <cstdint>

namespace dot {

/// Unit conventions used throughout the library.
///
///  * sizes        — gigabytes (double `Gb`), matching the paper's GB units;
///                   page-level quantities use kPageBytes pages.
///  * time         — milliseconds for single I/Os, hours for amortization.
///  * money        — US cents (the paper reports cents/GB/hour).
///  * power        — watts.
///  * throughput   — tasks/hour (DSS) or transactions/minute (tpmC, OLTP).

/// Database page size assumed by the planner (PostgreSQL default, 8 KiB).
inline constexpr int64_t kPageBytes = 8192;

/// Bytes per GB, decimal convention as used by device vendors and the paper.
inline constexpr double kBytesPerGb = 1e9;

/// Hours in the 36-month amortization window used by the paper (§2.1):
/// 36 months x 730 hours/month.
inline constexpr double kAmortizationHours = 36.0 * 730.0;

/// Energy price from the paper (§2.1, citing Hamilton CIDR'09): $0.07/kWh,
/// expressed in cents per watt-hour.
inline constexpr double kCentsPerWattHour = 7.0 / 1000.0;

inline constexpr double kMsPerHour = 3600.0 * 1000.0;
inline constexpr double kMsPerMinute = 60.0 * 1000.0;

/// Number of 8 KiB pages needed to store `gigabytes` of data.
inline constexpr double PagesForGb(double gigabytes) {
  return gigabytes * kBytesPerGb / static_cast<double>(kPageBytes);
}

/// Size in GB of `pages` database pages.
inline constexpr double GbForPages(double pages) {
  return pages * static_cast<double>(kPageBytes) / kBytesPerGb;
}

}  // namespace dot

#endif  // DOTPROV_COMMON_UNITS_H_
