#ifndef DOTPROV_COMMON_STATUS_H_
#define DOTPROV_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace dot {

/// Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCapacityExceeded,
  kInfeasible,  ///< No constraint-satisfying layout exists (optimizer).
  kInternal,
};

/// Returns a short human-readable name for `code` ("OK", "Infeasible", ...).
const char* StatusCodeName(StatusCode code);

/// Arrow-style status object: either OK or an error code plus message.
///
/// This library does not use exceptions; every fallible public API returns a
/// Status or a Result<T> (see result.h). Statuses are cheap to copy in the OK
/// case and carry a message string only on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace dot

/// Propagates an error Status from an expression, Arrow-style.
#define DOT_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::dot::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // DOTPROV_COMMON_STATUS_H_
