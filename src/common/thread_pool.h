#ifndef DOTPROV_COMMON_THREAD_POOL_H_
#define DOTPROV_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace dot {

/// Fixed-size worker pool for the parallel candidate-evaluation engine.
///
/// A pool of `num_threads` logical execution lanes: `num_threads - 1`
/// background workers plus the calling thread, which always participates in
/// ParallelFor. With num_threads == 1 the pool spawns no workers and every
/// API runs inline on the caller — the serial path with zero synchronization
/// beyond an uncontended mutex.
///
/// Tasks submitted from inside a pool task are legal (reentrant submit):
/// Submit only enqueues, and a task that must wait for a nested future can
/// drain the queue via RunPendingTask() instead of blocking, so the pool
/// cannot deadlock on its own work.
class ThreadPool {
 public:
  /// The pool-wide lane-count rule: `requested` <= 0 resolves to
  /// std::thread::hardware_concurrency(), floored at 1. Exposed so callers
  /// that size work before constructing a pool (e.g. the provisioner's
  /// outer fan-out) apply exactly the rule the constructor will.
  static int ResolveThreadCount(int requested);

  /// Creates the pool with ResolveThreadCount(num_threads) lanes.
  explicit ThreadPool(int num_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Logical lanes (workers + caller).
  int num_threads() const { return num_threads_; }

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` propagate through the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      // Single-lane pool: the caller is the only lane, so run inline.
      (*task)();
      return future;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// Pops and runs one queued task on the calling thread. Returns false if
  /// the queue was empty. Lets a task waiting on a nested future make
  /// progress instead of deadlocking the pool.
  bool RunPendingTask();

  /// Runs fn(i) for every i in [begin, end), partitioned statically across
  /// the pool's lanes; the calling thread works too. Blocks until all
  /// iterations finish. The first exception thrown by any iteration is
  /// rethrown on the caller.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& fn);

  /// Chunked variant of ParallelFor: workers claim `chunk` consecutive
  /// indices per atomic grab instead of one. For fan-outs of very small
  /// iterations — the fleet planner prices 1e4 tenants where each argmin is
  /// microseconds, and one atomic RMW per index would rival the work —
  /// while keeping the load balancing static sharding gives up. chunk <= 1
  /// degenerates to ParallelFor. Same contract: every index runs exactly
  /// once, completion blocks, the first exception rethrows; iteration
  /// *order* is nondeterministic, so determinism-sensitive callers write
  /// results into distinct slots and reduce in fixed order.
  void ParallelForChunked(int64_t begin, int64_t end, int64_t chunk,
                          const std::function<void(int64_t)>& fn);

  /// Static-shard variant: splits [begin, end) into `num_shards` contiguous
  /// ranges and runs fn(shard, shard_begin, shard_end) for each. Shard
  /// boundaries depend only on (begin, end, num_shards), never on thread
  /// count or scheduling, which is what makes sharded reductions
  /// deterministic. Blocks until all shards finish; rethrows the first
  /// exception.
  void ParallelForShards(
      int64_t begin, int64_t end, int num_shards,
      const std::function<void(int shard, int64_t shard_begin,
                               int64_t shard_end)>& fn);

 private:
  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable wake_;
  bool shutdown_ = false;
};

}  // namespace dot

#endif  // DOTPROV_COMMON_THREAD_POOL_H_
