#ifndef DOTPROV_COMMON_CHECK_H_
#define DOTPROV_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dot {
namespace internal {

/// Accumulates a failure message and aborts the process on destruction.
/// Used only via the DOT_CHECK macros below; never instantiate directly.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << file << ":" << line << " CHECK failed: " << expr << " ";
  }
  ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lower-precedence-than-<< sink so DOT_CHECK can appear in a ternary.
struct Voidify {
  void operator&(const CheckFailStream&) {}
};

}  // namespace internal
}  // namespace dot

/// Aborts with a message when `cond` is false. For programmer errors
/// (precondition violations), not for recoverable conditions — those return
/// Status. Enabled in all build types: provisioning decisions are made
/// offline, so the cost is irrelevant and the safety is not.
#define DOT_CHECK(cond)               \
  (cond) ? (void)0                    \
         : ::dot::internal::Voidify() & \
               ::dot::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#define DOT_CHECK_OK(status_expr)                                       \
  do {                                                                  \
    ::dot::Status _st = (status_expr);                                  \
    DOT_CHECK(_st.ok()) << _st.ToString();                              \
  } while (0)

#endif  // DOTPROV_COMMON_CHECK_H_
