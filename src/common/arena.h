#ifndef DOTPROV_COMMON_ARENA_H_
#define DOTPROV_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace dot {

/// Bump allocator for search-node state (DESIGN.md §13): one arena per
/// branch-and-bound shard (and one per epoch-DP solve) holds every
/// allocation the walker makes, and Reset() reclaims them all in O(1)
/// between subtree tasks. Blocks are chained on demand and the largest
/// survives Reset, so a steady-state walker allocates from one warm block
/// and never touches malloc again.
///
/// Only trivially-destructible payloads: Reset() runs no destructors.
/// Single-threaded, like the walkers it backs.
class Arena {
 public:
  /// `initial_block_bytes` sizes the first block (grown geometrically when
  /// exhausted).
  explicit Arena(std::size_t initial_block_bytes = 1 << 16);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `bytes` of storage aligned to `align` (a power of two). Never null;
  /// zero-byte requests return a valid unique pointer.
  void* Allocate(std::size_t bytes, std::size_t align);

  /// Uninitialized storage for `count` elements of trivially-destructible T.
  template <typename T>
  T* AllocateArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::Reset runs no destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Reclaims every allocation; retains the largest block so a reused
  /// arena reaches a steady state with zero malloc traffic.
  void Reset();

  /// Cumulative bytes handed out across the arena's lifetime (survives
  /// Reset) — the provenance counter's raw material.
  std::uint64_t bytes_allocated() const { return bytes_allocated_; }

  /// High-water mark of live bytes at any point since construction.
  std::uint64_t bytes_peak() const { return bytes_peak_; }

  /// Number of Reset() calls.
  std::uint64_t resets() const { return resets_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  /// Makes `bytes` available, growing geometrically.
  void AddBlock(std::size_t bytes);

  std::vector<Block> blocks_;
  char* ptr_ = nullptr;  ///< bump pointer into blocks_.back()
  char* end_ = nullptr;
  std::size_t initial_block_bytes_;
  std::uint64_t live_bytes_ = 0;  ///< bytes handed out since last Reset
  std::uint64_t bytes_allocated_ = 0;
  std::uint64_t bytes_peak_ = 0;
  std::uint64_t resets_ = 0;
};

}  // namespace dot

#endif  // DOTPROV_COMMON_ARENA_H_
