#ifndef DOTPROV_COMMON_STR_UTIL_H_
#define DOTPROV_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace dot {

/// Formats `value` with `digits` significant digits (scientific when the
/// magnitude warrants), e.g. FormatSig(3.47e-4, 3) == "3.47e-04".
std::string FormatSig(double value, int digits);

/// Fixed-point formatting with `decimals` digits after the point.
std::string FormatFixed(double value, int decimals);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace dot

#endif  // DOTPROV_COMMON_STR_UTIL_H_
