#ifndef DOTPROV_COMMON_RNG_H_
#define DOTPROV_COMMON_RNG_H_

#include <cstdint>

namespace dot {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). Every stochastic component of the simulator draws from an
/// explicitly seeded Rng so that all tests and benchmarks are reproducible.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal deviate (Box–Muller).
  double NextGaussian();

  /// Exponential deviate with the given mean (> 0).
  double NextExponential(double mean);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace dot

#endif  // DOTPROV_COMMON_RNG_H_
