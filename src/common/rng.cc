#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace dot {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  DOT_CHECK(bound > 0) << "NextBounded requires positive bound";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextUniform(double lo, double hi) {
  DOT_CHECK(hi >= lo) << "NextUniform requires hi >= lo";
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.28318530717958647692;
  cached_gaussian_ = mag * std::sin(two_pi * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::NextExponential(double mean) {
  DOT_CHECK(mean > 0) << "NextExponential requires positive mean";
  double u = 0.0;
  while (u == 0.0) u = NextDouble();
  return -mean * std::log(u);
}

}  // namespace dot
