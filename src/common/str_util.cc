#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace dot {

std::string FormatSig(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string FormatFixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         std::memcmp(s.data(), prefix.data(), prefix.size()) == 0;
}

}  // namespace dot
