#include "common/simd_dispatch.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DOTPROV_X86 1
#else
#define DOTPROV_X86 0
#endif

namespace dot {
namespace {

// ---------------------------------------------------------------------------
// Scalar kernels: the reference implementation of the pinned schedule.
// ---------------------------------------------------------------------------

double ScalarSum(const double* x, int n) {
  if (n < kBlockedSumThreshold) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += x[i];
    return total;
  }
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    acc0 += x[i];
    acc1 += x[i + 1];
    acc2 += x[i + 2];
    acc3 += x[i + 3];
  }
  double lanes[4] = {acc0, acc1, acc2, acc3};
  for (int i = n4; i < n; ++i) lanes[i - n4] += x[i];
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

double ScalarGatherSum(const double* values, const int* idx, int n) {
  if (n < kBlockedSumThreshold) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += values[idx[i]];
    return total;
  }
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    acc0 += values[idx[i]];
    acc1 += values[idx[i + 1]];
    acc2 += values[idx[i + 2]];
    acc3 += values[idx[i + 3]];
  }
  double lanes[4] = {acc0, acc1, acc2, acc3};
  for (int i = n4; i < n; ++i) lanes[i - n4] += values[idx[i]];
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

double ScalarPlaneGatherSum(const double* plane, const int* objects,
                            const int* placement, int n) {
  if (n < kBlockedSumThreshold) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += plane[placement[objects[i]] * n + i];
    return total;
  }
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    acc0 += plane[placement[objects[i]] * n + i];
    acc1 += plane[placement[objects[i + 1]] * n + i + 1];
    acc2 += plane[placement[objects[i + 2]] * n + i + 2];
    acc3 += plane[placement[objects[i + 3]] * n + i + 3];
  }
  double lanes[4] = {acc0, acc1, acc2, acc3};
  for (int i = n4; i < n; ++i)
    lanes[i - n4] += plane[placement[objects[i]] * n + i];
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

const KernelOps kScalarOps = {ScalarSum, ScalarGatherSum,
                              ScalarPlaneGatherSum};

// ---------------------------------------------------------------------------
// AVX2 kernels. Same TU, per-function target attribute, so the build needs
// no global -mavx2 and the binary stays runnable on pre-AVX2 machines. Each
// kernel performs exactly the scalar schedule's additions: lane j of the
// vector accumulator is lanes[j], the tail is folded scalar, and the final
// reduce is the same (l0 + l2) + (l1 + l3). Gathers move bits, they do not
// round, so the only IEEE operations are the lane additions — bit-identity
// with the scalar kernels holds by construction.
// ---------------------------------------------------------------------------

#if DOTPROV_X86

__attribute__((target("avx2"))) double Avx2Sum(const double* x, int n) {
  if (n < kBlockedSumThreshold) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += x[i];
    return total;
  }
  __m256d acc = _mm256_setzero_pd();
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  for (int i = n4; i < n; ++i) lanes[i - n4] += x[i];
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

__attribute__((target("avx2"))) double Avx2GatherSum(const double* values,
                                                     const int* idx, int n) {
  if (n < kBlockedSumThreshold) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += values[idx[i]];
    return total;
  }
  __m256d acc = _mm256_setzero_pd();
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_add_pd(acc, _mm256_i32gather_pd(values, vi, 8));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  for (int i = n4; i < n; ++i) lanes[i - n4] += values[idx[i]];
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

__attribute__((target("avx2"))) double Avx2PlaneGatherSum(
    const double* plane, const int* objects, const int* placement, int n) {
  if (n < kBlockedSumThreshold) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += plane[placement[objects[i]] * n + i];
    return total;
  }
  __m256d acc = _mm256_setzero_pd();
  const int n4 = n & ~3;
  const __m128i vn = _mm_set1_epi32(n);
  const __m128i viota = _mm_setr_epi32(0, 1, 2, 3);
  for (int i = 0; i < n4; i += 4) {
    const __m128i vobj =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(objects + i));
    const __m128i vcls = _mm_i32gather_epi32(placement, vobj, 4);
    const __m128i vaddr = _mm_add_epi32(
        _mm_mullo_epi32(vcls, vn), _mm_add_epi32(_mm_set1_epi32(i), viota));
    acc = _mm256_add_pd(acc, _mm256_i32gather_pd(plane, vaddr, 8));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  for (int i = n4; i < n; ++i)
    lanes[i - n4] += plane[placement[objects[i]] * n + i];
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

const KernelOps kAvx2Ops = {Avx2Sum, Avx2GatherSum, Avx2PlaneGatherSum};

#endif  // DOTPROV_X86

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

bool Avx2Supported() {
#if DOTPROV_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const KernelOps* OpsFor(KernelLevel level) {
#if DOTPROV_X86
  if (level == KernelLevel::kAvx2) return &kAvx2Ops;
#endif
  (void)level;
  return &kScalarOps;
}

KernelLevel ResolveLevel() {
  const char* env = std::getenv("DOT_KERNEL");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) return KernelLevel::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      if (Avx2Supported()) return KernelLevel::kAvx2;
      std::fprintf(stderr,
                   "dot: DOT_KERNEL=avx2 requested but this CPU lacks AVX2; "
                   "falling back to scalar kernels\n");
      return KernelLevel::kScalar;
    }
    DOT_CHECK(false) << "unknown DOT_KERNEL value '" << env
                     << "' (expected 'scalar' or 'avx2')";
  }
  return Avx2Supported() ? KernelLevel::kAvx2 : KernelLevel::kScalar;
}

struct DispatchState {
  KernelLevel level;
  const KernelOps* ops;
};

DispatchState& GlobalDispatch() {
  static DispatchState state = [] {
    const KernelLevel level = ResolveLevel();
    return DispatchState{level, OpsFor(level)};
  }();
  return state;
}

}  // namespace

const char* KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return "scalar";
    case KernelLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool KernelLevelSupported(KernelLevel level) {
  return level == KernelLevel::kScalar ||
         (level == KernelLevel::kAvx2 && Avx2Supported());
}

KernelLevel ActiveKernelLevel() { return GlobalDispatch().level; }

KernelLevel ForceKernelLevelForTest(KernelLevel level) {
  DOT_CHECK(KernelLevelSupported(level))
      << "cannot force unsupported kernel level "
      << KernelLevelName(level);
  DispatchState& state = GlobalDispatch();
  const KernelLevel previous = state.level;
  state.level = level;
  state.ops = OpsFor(level);
  return previous;
}

const KernelOps& Kernels() { return *GlobalDispatch().ops; }

}  // namespace dot
