#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "common/check.h"

namespace dot {

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested <= 0) {
    requested = static_cast<int>(std::thread::hardware_concurrency());
  }
  return std::max(1, requested);
}

ThreadPool::ThreadPool(int num_threads) {
  num_threads_ = ResolveThreadCount(num_threads);
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Workers drain the queue before exiting, but tasks submitted after
  // shutdown began (there are none in this library) would be dropped here.
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left to do
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

bool ThreadPool::RunPendingTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task();
  return true;
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t)>& fn) {
  if (begin >= end) return;
  const int64_t count = end - begin;
  if (num_threads_ == 1 || count == 1) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Dynamic scheduling over a shared index; caller participates. The
  // iteration order is nondeterministic but every index runs exactly once —
  // callers needing determinism reduce via ParallelForShards instead.
  std::atomic<int64_t> next(begin);
  std::atomic<int> pending(0);
  std::exception_ptr first_error = nullptr;
  std::mutex error_mu;
  auto drain = [&] {
    for (;;) {
      const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error == nullptr) first_error = std::current_exception();
      }
    }
  };
  const int helpers =
      static_cast<int>(std::min<int64_t>(num_threads_ - 1, count - 1));
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(helpers));
  for (int t = 0; t < helpers; ++t) {
    pending.fetch_add(1);
    futures.push_back(Submit([&] {
      drain();
      pending.fetch_sub(1);
    }));
  }
  drain();
  // Helpers may still be mid-iteration; wait for them (helping with any
  // unrelated queued work so a reentrant ParallelFor cannot deadlock).
  for (auto& f : futures) {
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!RunPendingTask()) f.wait();
    }
    f.get();
  }
  DOT_CHECK(pending.load() == 0);
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void ThreadPool::ParallelForChunked(int64_t begin, int64_t end, int64_t chunk,
                                    const std::function<void(int64_t)>& fn) {
  if (begin >= end) return;
  chunk = std::max<int64_t>(1, chunk);
  const int64_t count = end - begin;
  if (num_threads_ == 1 || count <= chunk) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::atomic<int64_t> next(begin);
  std::exception_ptr first_error = nullptr;
  std::mutex error_mu;
  auto drain = [&] {
    for (;;) {
      const int64_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) return;
      const int64_t hi = std::min(lo + chunk, end);
      try {
        for (int64_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error == nullptr) first_error = std::current_exception();
      }
    }
  };
  const int64_t chunks = (count + chunk - 1) / chunk;
  const int helpers =
      static_cast<int>(std::min<int64_t>(num_threads_ - 1, chunks - 1));
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(helpers));
  for (int t = 0; t < helpers; ++t) futures.push_back(Submit(drain));
  drain();
  for (auto& f : futures) {
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!RunPendingTask()) f.wait();
    }
    f.get();
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void ThreadPool::ParallelForShards(
    int64_t begin, int64_t end, int num_shards,
    const std::function<void(int shard, int64_t shard_begin,
                             int64_t shard_end)>& fn) {
  if (begin >= end) return;
  const int64_t count = end - begin;
  num_shards = static_cast<int>(
      std::min<int64_t>(std::max(1, num_shards), count));
  const int64_t base = count / num_shards;
  const int64_t extra = count % num_shards;
  // Shard s covers base iterations plus one of the `extra` remainder slots —
  // a pure function of (begin, end, num_shards).
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ranges.reserve(static_cast<size_t>(num_shards));
  int64_t at = begin;
  for (int s = 0; s < num_shards; ++s) {
    const int64_t len = base + (s < extra ? 1 : 0);
    ranges.emplace_back(at, at + len);
    at += len;
  }
  DOT_CHECK(at == end);
  ParallelFor(0, num_shards, [&](int64_t s) {
    const auto& r = ranges[static_cast<size_t>(s)];
    fn(static_cast<int>(s), r.first, r.second);
  });
}

}  // namespace dot
