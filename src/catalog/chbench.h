#ifndef DOTPROV_CATALOG_CHBENCH_H_
#define DOTPROV_CATALOG_CHBENCH_H_

#include <vector>

#include "catalog/schema.h"
#include "query/query_spec.h"

namespace dot {

/// CH-benCHmark-style analytical templates over the TPC-C schema: the
/// TPC-H-derived decision-support queries remapped onto the transactional
/// tables (order_line plays lineitem, orders/customer/stock/item keep their
/// roles), so one shared object set can be driven by the TPC-C transaction
/// mix and an analytic sequence at the same time — the HTAP scenario of
/// workload/htap_workload.h. Selectivities and join fanouts follow the
/// TPC-H originals (workload/tpch_queries.cc) scaled to TPC-C
/// cardinalities; table names must match MakeTpccSchema.
std::vector<QuerySpec> MakeChbenchTemplates();

/// Restricts `templates` to those whose referenced tables all exist in
/// `schema` — the analytic analogue of FootprintBuilder's skip-if-absent
/// rule, letting the same template set drive reduced schemas (e.g. the
/// exact-search studies on the hottest objects).
std::vector<QuerySpec> FilterTemplatesToSchema(
    const std::vector<QuerySpec>& templates, const Schema& schema);

}  // namespace dot

#endif  // DOTPROV_CATALOG_CHBENCH_H_
