#include "catalog/schema.h"

#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/units.h"

namespace dot {

namespace {

// Conservative page-fill fraction for heap pages and index leaves.
constexpr double kFillFactor = 0.9;
// Per-entry overhead (item pointer + tuple header share) in index leaves.
constexpr double kIndexEntryOverheadBytes = 16.0;

// FNV-1a, the 64-bit variant: deterministic across platforms and runs
// (unlike std::hash), and byte-order-stable because every field is fed
// through its exact in-memory bytes on the fixed little-endian targets this
// library supports.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(const void* data, size_t len, uint64_t* h) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= static_cast<uint64_t>(bytes[i]);
    *h *= kFnvPrime;
  }
}

void HashU64(uint64_t v, uint64_t* h) { HashBytes(&v, sizeof(v), h); }

void HashDouble(double v, uint64_t* h) {
  // Bit pattern, not value: the fingerprint must distinguish any stat
  // change the evaluator could see, and the evaluator sees bits.
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  HashU64(bits, h);
}

void HashString(const std::string& s, uint64_t* h) {
  HashU64(static_cast<uint64_t>(s.size()), h);
  HashBytes(s.data(), s.size(), h);
}

}  // namespace

double DbObject::pages() const {
  return size_gb * kBytesPerGb / static_cast<double>(kPageBytes);
}

int Schema::AddTable(const std::string& name, double rows, double row_bytes) {
  DOT_CHECK(rows > 0 && row_bytes > 0) << "bad table stats for " << name;
  DOT_CHECK(FindObject(name) < 0) << "duplicate object name " << name;
  DbObject o;
  o.id = NumObjects();
  o.name = name;
  o.kind = ObjectKind::kTable;
  o.num_rows = rows;
  o.row_bytes = row_bytes;
  o.table_id = o.id;
  o.size_gb = rows * row_bytes / (kFillFactor * kBytesPerGb);
  sizes_gb_.push_back(o.size_gb);
  by_name_.emplace(o.name, o.id);
  objects_.push_back(std::move(o));
  return objects_.back().id;
}

int Schema::AddIndex(const std::string& name, int table_id, double key_bytes,
                     ObjectKind kind) {
  DOT_CHECK(kind == ObjectKind::kPrimaryIndex ||
            kind == ObjectKind::kSecondaryIndex);
  DOT_CHECK(FindObject(name) < 0) << "duplicate object name " << name;
  const DbObject& table = object(table_id);
  DOT_CHECK(table.kind == ObjectKind::kTable)
      << "index " << name << " must reference a table";

  const double entry_bytes = key_bytes + kIndexEntryOverheadBytes;
  const double entries_per_leaf =
      kFillFactor * static_cast<double>(kPageBytes) / entry_bytes;
  const double leaf_pages = std::ceil(table.num_rows / entries_per_leaf);
  // Inner fanout: separator key + child pointer per entry.
  const double fanout =
      kFillFactor * static_cast<double>(kPageBytes) / (key_bytes + 8.0);
  int height = 1;  // the leaf level
  double level_pages = leaf_pages;
  while (level_pages > 1.0) {
    level_pages = std::ceil(level_pages / fanout);
    ++height;
  }

  DbObject o;
  o.id = NumObjects();
  o.name = name;
  o.kind = kind;
  o.table_id = table_id;
  o.height = height;
  o.leaf_pages = leaf_pages;
  // Inner pages add roughly leaf_pages / fanout; include them in the size.
  const double total_pages = leaf_pages * (1.0 + 1.0 / fanout) + height;
  o.size_gb = total_pages * static_cast<double>(kPageBytes) / kBytesPerGb;
  sizes_gb_.push_back(o.size_gb);
  by_name_.emplace(o.name, o.id);
  objects_.push_back(std::move(o));
  return objects_.back().id;
}

int Schema::AddAuxiliary(const std::string& name, ObjectKind kind,
                         double size_gb) {
  DOT_CHECK(kind == ObjectKind::kTempSpace || kind == ObjectKind::kLog);
  DOT_CHECK(size_gb > 0);
  DOT_CHECK(FindObject(name) < 0) << "duplicate object name " << name;
  DbObject o;
  o.id = NumObjects();
  o.name = name;
  o.kind = kind;
  o.size_gb = size_gb;
  sizes_gb_.push_back(o.size_gb);
  by_name_.emplace(o.name, o.id);
  objects_.push_back(std::move(o));
  return objects_.back().id;
}

const DbObject& Schema::object(int id) const {
  DOT_CHECK(id >= 0 && id < NumObjects()) << "object id " << id
                                          << " out of range";
  return objects_[static_cast<size_t>(id)];
}

int Schema::FindObject(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it != by_name_.end() ? it->second : -1;
}

std::vector<int> Schema::IndexesOf(int table_id) const {
  std::vector<int> out;
  for (const DbObject& o : objects_) {
    if (o.IsIndex() && o.table_id == table_id) out.push_back(o.id);
  }
  return out;
}

int Schema::PrimaryIndexOf(int table_id) const {
  for (const DbObject& o : objects_) {
    if (o.kind == ObjectKind::kPrimaryIndex && o.table_id == table_id) {
      return o.id;
    }
  }
  return -1;
}

double Schema::TotalSizeGb() const {
  double total = 0.0;
  for (const DbObject& o : objects_) total += o.size_gb;
  return total;
}

std::vector<ObjectGroup> Schema::MakeGroups() const {
  std::vector<ObjectGroup> groups;
  for (const DbObject& o : objects_) {
    if (o.kind == ObjectKind::kTable) {
      ObjectGroup g;
      g.table_id = o.id;
      g.members.push_back(o.id);
      for (int idx : IndexesOf(o.id)) g.members.push_back(idx);
      groups.push_back(std::move(g));
    } else if (o.kind == ObjectKind::kTempSpace || o.kind == ObjectKind::kLog) {
      ObjectGroup g;
      g.table_id = -1;
      g.members.push_back(o.id);
      groups.push_back(std::move(g));
    }
  }
  return groups;
}

uint64_t Schema::Fingerprint() const {
  uint64_t h = kFnvOffset;
  HashU64(static_cast<uint64_t>(objects_.size()), &h);
  for (const DbObject& o : objects_) {
    HashString(o.name, &h);
    HashU64(static_cast<uint64_t>(o.kind), &h);
    HashU64(static_cast<uint64_t>(static_cast<int64_t>(o.table_id)), &h);
    HashDouble(o.size_gb, &h);
    HashDouble(o.num_rows, &h);
    HashDouble(o.row_bytes, &h);
    HashU64(static_cast<uint64_t>(static_cast<int64_t>(o.height)), &h);
    HashDouble(o.leaf_pages, &h);
  }
  return h;
}

Schema Schema::Subset(const std::vector<std::string>& names) const {
  Schema out;
  // First pass: tables, preserving relative order of `names`.
  for (const std::string& name : names) {
    const int id = FindObject(name);
    DOT_CHECK(id >= 0) << "Subset: unknown object " << name;
    const DbObject& o = object(id);
    if (o.kind == ObjectKind::kTable) {
      out.AddTable(o.name, o.num_rows, o.row_bytes);
    }
  }
  // Second pass: everything else, remapped onto the new table ids.
  for (const std::string& name : names) {
    const DbObject& o = object(FindObject(name));
    switch (o.kind) {
      case ObjectKind::kTable:
        break;  // done above
      case ObjectKind::kPrimaryIndex:
      case ObjectKind::kSecondaryIndex: {
        const int new_table = out.FindObject(object(o.table_id).name);
        DOT_CHECK(new_table >= 0)
            << "Subset: index " << o.name << " included without its table";
        // Re-derive with the same geometry by copying the original object
        // and fixing up ids (avoids re-estimating from key bytes).
        DbObject copy = o;
        copy.id = out.NumObjects();
        copy.table_id = new_table;
        out.sizes_gb_.push_back(copy.size_gb);
        out.by_name_.emplace(copy.name, copy.id);
        out.objects_.push_back(std::move(copy));
        break;
      }
      case ObjectKind::kTempSpace:
      case ObjectKind::kLog:
        out.AddAuxiliary(o.name, o.kind, o.size_gb);
        break;
    }
  }
  return out;
}

}  // namespace dot
