#include "catalog/tpch_schema.h"

#include "common/check.h"

namespace dot {

namespace {

/// Standard TPC-H cardinalities per unit scale factor and approximate row
/// widths (bytes, computed from the schema's column datatypes).
struct TpchTableSpec {
  const char* name;
  double rows_per_sf;
  bool fixed;  ///< region/nation do not scale
  double row_bytes;
  double pk_key_bytes;
};

constexpr TpchTableSpec kTpchTables[] = {
    {"region", 5, true, 124, 4},
    {"nation", 25, true, 128, 4},
    {"supplier", 10'000, false, 159, 4},
    {"customer", 150'000, false, 179, 4},
    {"part", 200'000, false, 155, 4},
    {"partsupp", 800'000, false, 144, 8},
    {"orders", 1'500'000, false, 104, 4},
    {"lineitem", 6'000'000, false, 112, 8},
};

}  // namespace

Schema MakeTpchSchema(double scale_factor) {
  DOT_CHECK(scale_factor > 0);
  Schema schema;
  for (const TpchTableSpec& t : kTpchTables) {
    const double rows = t.fixed ? t.rows_per_sf : t.rows_per_sf * scale_factor;
    const int table_id = schema.AddTable(t.name, rows, t.row_bytes);
    schema.AddIndex(std::string(t.name) + "_pkey", table_id, t.pk_key_bytes);
  }
  return schema;
}

Schema MakeTpchEsSubsetSchema(double scale_factor) {
  Schema full = MakeTpchSchema(scale_factor);
  return full.Subset({"lineitem", "orders", "customer", "part",
                      "lineitem_pkey", "orders_pkey", "customer_pkey",
                      "part_pkey"});
}

}  // namespace dot
