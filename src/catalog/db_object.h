#ifndef DOTPROV_CATALOG_DB_OBJECT_H_
#define DOTPROV_CATALOG_DB_OBJECT_H_

#include <string>
#include <vector>

namespace dot {

/// Kinds of placeable database objects (§2.2: "individual tables, indices,
/// temporary spaces or logs").
enum class ObjectKind {
  kTable,
  kPrimaryIndex,
  kSecondaryIndex,
  kTempSpace,
  kLog,
};

inline const char* ObjectKindName(ObjectKind k) {
  switch (k) {
    case ObjectKind::kTable:
      return "table";
    case ObjectKind::kPrimaryIndex:
      return "pk-index";
    case ObjectKind::kSecondaryIndex:
      return "sec-index";
    case ObjectKind::kTempSpace:
      return "temp";
    case ObjectKind::kLog:
      return "log";
  }
  return "?";
}

/// One placeable object o_i: a table, an index, temp space or a log file.
/// Sizes are in GB (s_i in the paper); pages assume the 8 KiB page size.
struct DbObject {
  int id = -1;
  std::string name;
  ObjectKind kind = ObjectKind::kTable;
  double size_gb = 0.0;

  /// Owning table's object id for indices; == id for tables; -1 otherwise.
  int table_id = -1;

  // --- table-only fields ---
  double num_rows = 0.0;
  double row_bytes = 0.0;

  // --- index-only fields ---
  /// B+-tree levels traversed on a root-to-leaf descent (root counts as 1).
  int height = 0;
  double leaf_pages = 0.0;

  bool IsIndex() const {
    return kind == ObjectKind::kPrimaryIndex ||
           kind == ObjectKind::kSecondaryIndex;
  }

  /// Total 8 KiB pages occupied by this object.
  double pages() const;
};

/// An object group g (§3.2): a table together with its indices. DOT assumes
/// placement interactions exist only *within* a group; `members` lists object
/// ids, table first.
struct ObjectGroup {
  int table_id = -1;
  std::vector<int> members;

  int size() const { return static_cast<int>(members.size()); }
};

}  // namespace dot

#endif  // DOTPROV_CATALOG_DB_OBJECT_H_
