#include "catalog/chbench.h"

#include <utility>

namespace dot {

namespace {

RelationAccess Rel(const char* table, double selectivity,
                   bool sargable = false, double clustering = 0.0) {
  RelationAccess ra;
  ra.table = table;
  ra.selectivity = selectivity;
  ra.index_sargable = sargable;
  ra.clustering = clustering;
  return ra;
}

JoinStep Join(double matches_per_outer, bool inner_indexable) {
  JoinStep j;
  j.matches_per_outer = matches_per_outer;
  j.inner_indexable = inner_indexable;
  return j;
}

QuerySpec Query(const char* name, std::vector<RelationAccess> relations,
                std::vector<JoinStep> joins, bool has_sort,
                double cpu_weight = 1.0) {
  QuerySpec q;
  q.name = name;
  q.relations = std::move(relations);
  q.joins = std::move(joins);
  q.has_sort = has_sort;
  q.cpu_weight = cpu_weight;
  return q;
}

}  // namespace

std::vector<QuerySpec> MakeChbenchTemplates() {
  std::vector<QuerySpec> qs;

  // CH-Q1 (TPC-H Q1 on order_line): pricing summary over nearly all order
  // lines, aggregation-heavy. The dominant sequential reader of the mix.
  qs.push_back(Query("CH-Q1", {Rel("order_line", 0.95)}, {}, false, 3.0));

  // CH-Q3 (Q3): unshipped-order revenue. Customer segment filter, orders
  // per customer (~10 open), lines per order (~10); top-k sort.
  qs.push_back(Query(
      "CH-Q3",
      {Rel("customer", 0.2), Rel("orders", 1.0), Rel("order_line", 1.0)},
      {Join(10.0, true), Join(10.0, true)}, true));

  // CH-Q4 (Q4): order-priority check over a recent order-id range —
  // key-sargable on the orders PK — with an EXISTS probe into the lines.
  qs.push_back(Query("CH-Q4",
                     {Rel("orders", 0.03, /*sargable=*/true),
                      Rel("order_line", 1.0)},
                     {Join(10.0, true)}, false));

  // CH-Q5 (Q5): local-supplier volume. Customer x orders x lines, then the
  // stock/supplier side resolved through the stock PK.
  qs.push_back(Query(
      "CH-Q5",
      {Rel("customer", 1.0), Rel("orders", 0.15), Rel("order_line", 1.0),
       Rel("stock", 1.0)},
      {Join(1.5, true), Join(10.0, true), Join(1.0, true)}, true));

  // CH-Q6 (Q6): revenue forecast. Narrow quantity x amount range over the
  // lines; the predicate is not key-sargable, so this is the query whose
  // plan flips between a full sequential scan and nothing — placement of
  // order_line alone decides its time.
  qs.push_back(Query("CH-Q6", {Rel("order_line", 0.02)}, {}, false));

  // CH-Q12 (Q12): shipping-mode count. Recent order range (sargable),
  // lines joined through the PK.
  qs.push_back(Query("CH-Q12",
                     {Rel("orders", 0.12, /*sargable=*/true),
                      Rel("order_line", 1.0)},
                     {Join(10.0, true)}, false));

  // CH-Q17 (Q17): small-quantity-order revenue. A very selective item
  // filter (sargable on the item PK) hash-joined against the full lines —
  // order_line has no item index, so the inner side is a raw scan.
  qs.push_back(Query("CH-Q17",
                     {Rel("item", 0.01, /*sargable=*/true),
                      Rel("order_line", 1.0)},
                     {Join(30.0, false)}, false, 1.5));

  // CH-Q22 (Q22): inactive-customer analysis. Country-code filter over
  // customer, anti-join against recent orders via the PK.
  qs.push_back(Query("CH-Q22",
                     {Rel("customer", 0.1), Rel("orders", 1.0)},
                     {Join(1.0, true)}, true));

  return qs;
}

std::vector<QuerySpec> FilterTemplatesToSchema(
    const std::vector<QuerySpec>& templates, const Schema& schema) {
  std::vector<QuerySpec> kept;
  for (const QuerySpec& q : templates) {
    bool all_present = true;
    for (const RelationAccess& ra : q.relations) {
      if (schema.FindObject(ra.table) < 0) {
        all_present = false;
        break;
      }
    }
    if (all_present) kept.push_back(q);
  }
  return kept;
}

}  // namespace dot
