#ifndef DOTPROV_CATALOG_TPCC_SCHEMA_H_
#define DOTPROV_CATALOG_TPCC_SCHEMA_H_

#include "catalog/schema.h"

namespace dot {

/// Builds the TPC-C schema as populated by DBT-2 for `warehouses` warehouses:
/// the nine tables with standard initial cardinalities, the primary-key
/// indices (named "pk_<table>" as in the paper's Table 3), and the two
/// secondary indices DBT-2 creates (i_customer on customer last name and
/// i_orders on orders customer id).
///
/// At 300 warehouses the footprint is ≈30 GB, matching §4.5 ("populated a
/// 30GB (scale factor 300) TPC-C database").
Schema MakeTpccSchema(int warehouses);

}  // namespace dot

#endif  // DOTPROV_CATALOG_TPCC_SCHEMA_H_
