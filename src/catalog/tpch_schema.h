#ifndef DOTPROV_CATALOG_TPCH_SCHEMA_H_
#define DOTPROV_CATALOG_TPCH_SCHEMA_H_

#include "catalog/schema.h"

namespace dot {

/// Builds the TPC-H schema at the given scale factor: the eight tables with
/// standard cardinalities (lineitem = 6M·SF rows, ...) and one primary-key
/// B+-tree index per table, named "<table>_pkey" as PostgreSQL does (the
/// paper's figures use the same names, e.g. "partsupp_pkey").
///
/// At SF 20 the total footprint is ≈30 GB, matching §4.4 ("a 30GB TPC-H
/// database is generated (scale factor 20)").
Schema MakeTpchSchema(double scale_factor);

/// The eight objects used by the §4.4.3 DOT-vs-exhaustive-search experiment:
/// lineitem, orders, customer, part and their primary indices.
Schema MakeTpchEsSubsetSchema(double scale_factor);

}  // namespace dot

#endif  // DOTPROV_CATALOG_TPCH_SCHEMA_H_
