#include "catalog/tpcc_schema.h"

#include "common/check.h"

namespace dot {

namespace {

/// Initial cardinalities per warehouse per the TPC-C specification, with
/// approximate physical row widths. `item` is global (does not scale).
struct TpccTableSpec {
  const char* name;
  double rows_per_wh;
  bool global;
  double row_bytes;
  double pk_key_bytes;  ///< 0 = no primary index (history has none)
};

constexpr TpccTableSpec kTpccTables[] = {
    {"warehouse", 1, false, 89, 4},
    {"district", 10, false, 95, 8},
    {"customer", 30'000, false, 655, 12},
    {"history", 30'000, false, 46, 0},
    {"new_order", 9'000, false, 8, 12},
    {"orders", 30'000, false, 24, 12},
    {"order_line", 300'000, false, 54, 16},
    {"item", 100'000, true, 82, 4},
    {"stock", 100'000, false, 306, 8},
};

}  // namespace

Schema MakeTpccSchema(int warehouses) {
  DOT_CHECK(warehouses >= 1);
  Schema schema;
  for (const TpccTableSpec& t : kTpccTables) {
    const double rows =
        t.global ? t.rows_per_wh : t.rows_per_wh * warehouses;
    const int table_id = schema.AddTable(t.name, rows, t.row_bytes);
    if (t.pk_key_bytes > 0) {
      schema.AddIndex(std::string("pk_") + t.name, table_id, t.pk_key_bytes);
    }
  }
  // DBT-2 secondary indices (the paper's Table 3 lists both).
  schema.AddIndex("i_customer", schema.FindObject("customer"),
                  /*key_bytes=*/20, ObjectKind::kSecondaryIndex);
  schema.AddIndex("i_orders", schema.FindObject("orders"),
                  /*key_bytes=*/12, ObjectKind::kSecondaryIndex);
  return schema;
}

}  // namespace dot
