#ifndef DOTPROV_CATALOG_SCHEMA_H_
#define DOTPROV_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/db_object.h"

namespace dot {

/// The set of placeable objects O = {o_1, ..., o_N} of one database
/// instance, plus enough physical statistics (row counts, widths, index
/// shapes) for the planner to cost access paths.
class Schema {
 public:
  Schema() = default;

  /// Adds a table with `rows` rows of `row_bytes` bytes each. Returns its
  /// object id.
  int AddTable(const std::string& name, double rows, double row_bytes);

  /// Adds a B+-tree index over `table_id` with keys of `key_bytes` bytes.
  /// Index height and leaf page count are derived from the table cardinality
  /// and page geometry. Returns the index's object id.
  int AddIndex(const std::string& name, int table_id, double key_bytes,
               ObjectKind kind = ObjectKind::kPrimaryIndex);

  /// Adds an auxiliary object (temp space / log) of a fixed size.
  int AddAuxiliary(const std::string& name, ObjectKind kind, double size_gb);

  int NumObjects() const { return static_cast<int>(objects_.size()); }
  const DbObject& object(int id) const;
  const std::vector<DbObject>& objects() const { return objects_; }

  /// Flat s_i array in object-id order (sizes_gb()[o] == object(o).size_gb).
  /// The capacity/cost hot loops scan sizes for every object; keeping them
  /// contiguous avoids striding through whole DbObject records.
  const std::vector<double>& sizes_gb() const { return sizes_gb_; }

  /// Object id by name, or -1 if absent.
  int FindObject(const std::string& name) const;

  /// Ids of the indices defined on `table_id` (in insertion order).
  std::vector<int> IndexesOf(int table_id) const;

  /// Primary-key index id of `table_id`, or -1.
  int PrimaryIndexOf(int table_id) const;

  /// Σ s_i over all objects, in GB.
  double TotalSizeGb() const;

  /// The grouping(O) of §3.2: one group per table (table first, then its
  /// indices), plus singleton groups for auxiliary objects.
  std::vector<ObjectGroup> MakeGroups() const;

  /// Restricts the schema to the named objects (and reindexes ids densely);
  /// used by the §4.4.3 DOT-vs-ES experiments that operate on 8 of the 16
  /// TPC-H objects. Unknown names abort.
  Schema Subset(const std::vector<std::string>& names) const;

  /// Deterministic 64-bit content hash over the object records *in id
  /// order* — names, kinds, sizes, table links and index geometry all
  /// contribute. Two schemas built through the same Add calls with the same
  /// arguments hash equal; reordering objects (a column-order variant),
  /// renaming, or any stat change produces a different value. This is the
  /// key the fleet planner shares candidate pools / eval tables under
  /// (fleet/fleet_planner.h): order sensitivity is deliberate, because
  /// placements are vectors indexed by object id, so two schemas must agree
  /// on the id order before they may share anything.
  uint64_t Fingerprint() const;

 private:
  std::vector<DbObject> objects_;
  std::vector<double> sizes_gb_;  ///< mirror of objects_[i].size_gb
  std::unordered_map<std::string, int> by_name_;  ///< name -> object id
};

}  // namespace dot

#endif  // DOTPROV_CATALOG_SCHEMA_H_
