#ifndef DOTPROV_ADVISOR_FEED_H_
#define DOTPROV_ADVISOR_FEED_H_

#include <cstddef>
#include <functional>

#include "common/status.h"
#include "workload/trace.h"

namespace dot {

/// Source of trace events in virtual-time order. The advisor consumes this
/// interface only, so a live monitoring pipe and a recorded file replay
/// are interchangeable; this reproduction ships the recorded kind.
class TraceFeed {
 public:
  virtual ~TraceFeed() = default;

  /// Fills `*event` with the next observation and returns true, or returns
  /// false when the feed is exhausted.
  virtual bool Next(TraceEvent* event) = 0;
};

/// Replays a recorded WorkloadTrace event by event.
class RecordedTraceFeed : public TraceFeed {
 public:
  /// `trace` must outlive the feed.
  explicit RecordedTraceFeed(const WorkloadTrace* trace);

  bool Next(TraceEvent* event) override;

  /// Rewinds to the first event (replay the same trace again).
  void Reset() { next_ = 0; }

 private:
  const WorkloadTrace* trace_;
  size_t next_ = 0;
};

/// Drives a feed against a virtual clock: events must arrive in
/// non-decreasing start order, and the clock advances to each event's end
/// before the next is pulled. This is the advisor's only notion of time —
/// no wall clock, so a million-hour trace replays in milliseconds and two
/// runs of the same feed are bit-identical.
class FeedPlayer {
 public:
  using Observer = std::function<void(const TraceEvent&)>;

  /// `feed` must outlive the player.
  explicit FeedPlayer(TraceFeed* feed);

  /// Drains the feed, invoking `observe` once per event in order.
  /// Malformed events — non-monotone or non-finite start times, a
  /// non-positive duration, an empty I/O map, negative or non-finite
  /// counts — stop the drain with InvalidArgument naming the offending
  /// window instead of crashing: a live feed is untrusted input, and the
  /// always-on loop must degrade gracefully. Events *before* the bad one
  /// stay delivered (the observer has already seen them), and `delivered`
  /// (if non-null) receives the count either way.
  Status Play(const Observer& observe, int* delivered = nullptr);

  /// Virtual time after the last delivered event, hours.
  double clock_hours() const { return clock_hours_; }

 private:
  TraceFeed* feed_;
  double clock_hours_ = 0.0;
};

}  // namespace dot

#endif  // DOTPROV_ADVISOR_FEED_H_
