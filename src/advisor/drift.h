#ifndef DOTPROV_ADVISOR_DRIFT_H_
#define DOTPROV_ADVISOR_DRIFT_H_

#include "query/object_io.h"

namespace dot {

/// Knobs of the drift detector.
struct DriftConfig {
  /// EWMA smoothing weight of each new observation (1 = trust the latest
  /// window outright, small = heavy smoothing).
  double ewma_alpha = 0.3;

  /// Per-window relative deviation below this is treated as in-profile
  /// noise and does not accumulate (the CUSUM drift term).
  double deadband = 0.05;

  /// Accumulated excess deviation at which drift is declared. With the
  /// default deadband, a persistent step of relative size s trips after
  /// about trigger / (s - deadband) windows: big shifts alarm fast, small
  /// ones must persist.
  double trigger = 0.5;

  /// Floor on the baseline's total request count when normalizing the
  /// deviation, so a near-idle baseline cannot produce infinite relative
  /// drift.
  double count_floor = 1.0;
};

/// Exponentially-weighted running mean of per-(object, I/O-class) request
/// counts — the advisor's online estimate of "what the workload does now".
class OnlineIoProfile {
 public:
  /// Folds one window's counts in at weight `alpha`; the first observation
  /// initializes the mean outright.
  void Observe(const ObjectIoMap& counts, double alpha);

  const ObjectIoMap& mean() const { return mean_; }
  bool empty() const { return !has_observation_; }

  void Reset();

 private:
  ObjectIoMap mean_;
  bool has_observation_ = false;
};

/// Online change detection over I/O profiles: an EWMA of the observed
/// per-(object, I/O-class) counts, compared each window against the
/// incumbent plan's baseline profile, with the excess relative deviation
/// accumulated CUSUM-style. Purely serial arithmetic in fixed object/class
/// order — bit-identical wherever it runs, which is what lets the advisor
/// promise identical decision sequences at any thread count.
class DriftDetector {
 public:
  explicit DriftDetector(DriftConfig config);

  /// Installs a new baseline profile (the counts the incumbent plan
  /// assumes) and clears the EWMA and the accumulated statistic. Called at
  /// startup and after every re-plan: the re-plan has absorbed the shift,
  /// so detection restarts from the new normal.
  void Rebase(const ObjectIoMap& baseline);

  /// Feeds one window's observed counts.
  void Update(const ObjectIoMap& observed);

  /// Relative deviation of the smoothed profile from the baseline after
  /// the last Update: Σ |ewma − base| over all (object, class) cells,
  /// normalized by max(Σ base, count_floor).
  double deviation() const { return deviation_; }

  /// The accumulated statistic S = Σ max(0, deviation − deadband),
  /// clamped at 0 from below (CUSUM).
  double statistic() const { return statistic_; }

  /// true once statistic() has reached the trigger.
  bool drifted() const { return statistic_ >= config_.trigger; }

  /// The smoothed observed profile since the last Rebase.
  const OnlineIoProfile& smoothed() const { return smoothed_; }

  const ObjectIoMap& baseline() const { return baseline_; }

 private:
  DriftConfig config_;
  ObjectIoMap baseline_;
  OnlineIoProfile smoothed_;
  double deviation_ = 0.0;
  double statistic_ = 0.0;
};

}  // namespace dot

#endif  // DOTPROV_ADVISOR_DRIFT_H_
