#include "advisor/advisor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "dot/sla.h"

namespace dot {

Advisor::Advisor(const DotProblem& problem, AdvisorConfig config)
    : problem_(problem),
      config_(std::move(config)),
      detector_(config_.drift) {
  DOT_CHECK(problem_.schema != nullptr && problem_.box != nullptr &&
            problem_.workload != nullptr);
  DOT_CHECK(config_.replan_method != SolveMethod::kEpochPlan)
      << "the advisor is the stateful loop; re-plans are single-shot";
  DOT_CHECK(config_.payback_horizon_hours >= 0.0);
  DOT_CHECK(config_.cooldown_windows >= 0);
  DOT_CHECK(config_.replan_interval_windows >= 0);
  DOT_CHECK(config_.max_pool >= 1);
  for (const WorkloadModel* model : config_.model_pool) {
    DOT_CHECK(model != nullptr);
  }
  if (config_.ensemble != nullptr) {
    // Robust mode: install the ensemble on the copied problem so every
    // Solve and every incumbent pricing below runs over it.
    problem_.ensemble = config_.ensemble;
    problem_.ensemble_objective = config_.ensemble_objective;
  }
}

Status Advisor::Init() {
  DOT_CHECK(!initialized_);
  SolveSpec spec;
  spec.method = config_.replan_method;
  const SolveResult solved = Solve(problem_, spec);
  if (!solved.status.ok()) return solved.status;

  incumbent_ = solved.placement;
  incumbent_toc_ = solved.toc_cents_per_task;
  pool_.clear();
  pool_.push_back(incumbent_);

  // The drift baseline is what the incumbent plan assumed the workload
  // does: the base model's predicted counts. A trace that matches the
  // model exactly therefore never deviates — and never re-plans.
  reference_counts_ = problem_.workload->Estimate(incumbent_).io_by_object;
  detector_.Rebase(reference_counts_);

  if (config_.migration_weight == kAutoMigrationWeight) {
    const double reference_rate = solved.dot.targets.best_case.tasks_per_hour;
    DOT_CHECK(reference_rate > 0.0);
    resolved_weight_ = 1.0 / reference_rate;
  } else {
    DOT_CHECK(config_.migration_weight >= 0.0);
    resolved_weight_ = config_.migration_weight;
  }
  initialized_ = true;
  return Status::OK();
}

AdvisorRun Advisor::Run(TraceFeed* feed) {
  AdvisorRun run;
  if (!initialized_) {
    run.status = Init();
    if (!run.status.ok()) return run;
  }
  run.initial_layout = incumbent_;

  FeedPlayer player(feed);
  const Status played =
      player.Play([&](const TraceEvent& event) { Observe(event, &run); });
  // A malformed feed stops the drain but keeps everything decided so far:
  // the advisor state (incumbent, detector, pool) stays valid, and the
  // caller sees both the partial run and why it ended.
  if (!played.ok()) run.status = played;

  run.final_layout = incumbent_;
  return run;
}

int Advisor::ClassifyWorkload(const ObjectIoMap& observed) {
  // Nearest-profile classification in the drift detector's own metric:
  // the class whose predicted counts on the incumbent are closest to the
  // observed profile becomes the planning model. Scale hints then correct
  // only the residual — a task-mix swing is handled by the model switch,
  // not mis-expressed as per-object scaling.
  int best_index = -1;
  double best_score = 0.0;
  ObjectIoMap best_predicted;
  for (size_t m = 0; m < config_.model_pool.size(); ++m) {
    ObjectIoMap predicted =
        config_.model_pool[m]->Estimate(incumbent_).io_by_object;
    DOT_CHECK(predicted.size() == observed.size())
        << "model_pool entry built over a different schema";
    double abs_diff = 0.0;
    double predicted_total = 0.0;
    for (size_t o = 0; o < predicted.size(); ++o) {
      for (IoType t : kAllIoTypes) {
        abs_diff += std::abs(observed[o][t] - predicted[o][t]);
        predicted_total += predicted[o][t];
      }
    }
    const double score =
        abs_diff / std::max(predicted_total, config_.drift.count_floor);
    if (best_index < 0 || score < best_score) {
      best_index = static_cast<int>(m);
      best_score = score;
      best_predicted = std::move(predicted);
    }
  }
  if (best_index >= 0) {
    problem_.workload = config_.model_pool[static_cast<size_t>(best_index)];
    reference_counts_ = std::move(best_predicted);
  }
  return best_index;
}

std::vector<double> Advisor::EstimateIoScale(
    const ObjectIoMap& observed) const {
  // scale[o] = observed total / model-predicted total, per object —
  // exactly the refinement phase's measured/estimated ratio, computed
  // online. Objects the model predicts no I/O for keep scale 1 (there is
  // nothing to correct against).
  DOT_CHECK(observed.size() == reference_counts_.size());
  std::vector<double> scale(observed.size(), 1.0);
  for (size_t o = 0; o < observed.size(); ++o) {
    const double reference = reference_counts_[o].Total();
    if (reference > 0.0) scale[o] = observed[o].Total() / reference;
  }
  return scale;
}

void Advisor::AddToPool(const std::vector<int>& layout) {
  if (std::find(pool_.begin(), pool_.end(), layout) != pool_.end()) return;
  pool_.push_back(layout);
  if (static_cast<int>(pool_.size()) > config_.max_pool) {
    pool_.erase(pool_.begin());
  }
}

void Advisor::Observe(const TraceEvent& event, AdvisorRun* run) {
  ++windows_seen_;
  // Causality: window w runs on the incumbent as of its entry; whatever
  // this observation triggers takes effect from the next window.
  run->layout_by_window.push_back(incumbent_);

  detector_.Update(event.io_by_object);

  AdvisorDecision decision;
  decision.window = event.window;
  decision.deviation = detector_.deviation();
  decision.statistic = detector_.statistic();

  const bool in_cooldown = cooldown_remaining_ > 0;
  if (in_cooldown) --cooldown_remaining_;
  const bool interval_due =
      config_.replan_interval_windows > 0 &&
      windows_seen_ % config_.replan_interval_windows == 0;
  const bool drift_due = detector_.drifted() && !in_cooldown;

  if (interval_due || drift_due) {
    decision.replanned = true;
    ++run->num_replans;

    // The re-plan acts on the *triggering window's* profile, not the
    // EWMA: the smoothed mean still blends the pre-shift regime in, and
    // classifying or scaling from the blend would plan for a workload
    // that exists only in the average. The EWMA's job is triggering.
    if (!config_.model_pool.empty()) {
      decision.model_index = ClassifyWorkload(event.io_by_object);
    }
    if (config_.estimate_io_scale) {
      problem_.io_scale_hint = EstimateIoScale(event.io_by_object);
    }
    SolveSpec spec;
    spec.method = config_.replan_method;
    // Incremental re-plan: the incumbent and every past winner seed the
    // branch-and-bound incumbent, so an undisturbed subtree prunes at
    // once and a re-plan near the incumbent is nearly free.
    spec.warm_starts = &pool_;
    const SolveResult candidate = Solve(problem_, spec);
    run->layouts_evaluated += candidate.provenance.layouts_evaluated;

    if (candidate.status.ok()) {
      decision.candidate_toc = candidate.toc_cents_per_task;
      // Price the incumbent under the *same* scaled model — comparing a
      // scaled candidate against an unscaled incumbent would manufacture
      // phantom savings — and check whether it still meets the SLA there.
      // EstimateToc owns the feasibility verdict (the chance constraint in
      // ensemble mode, MeetsTargets otherwise).
      const DotOptimizer pricer(problem_);
      PerfEstimate incumbent_estimate;
      bool incumbent_sla = false;
      decision.incumbent_toc = pricer.EstimateToc(
          incumbent_, &incumbent_estimate, nullptr, &incumbent_sla);
      decision.incumbent_feasible = incumbent_sla;
      decision.verdict = GateMigration(
          config_.migration, *problem_.box, *problem_.schema, incumbent_,
          candidate.placement, decision.incumbent_toc,
          decision.candidate_toc, config_.payback_horizon_hours,
          resolved_weight_);
      // An SLA-violating incumbent is replaced regardless of the bill:
      // the candidate is the cheapest layout that restores the contract.
      const bool commit =
          !config_.gate_on_migration_bill || !decision.incumbent_feasible
              ? candidate.placement != incumbent_
              : decision.verdict.migrate;
      if (commit) {
        decision.migrated = true;
        ++run->num_migrations;
        incumbent_ = candidate.placement;
        incumbent_toc_ = candidate.toc_cents_per_task;
        AddToPool(incumbent_);
      }
    }
    // Whatever was decided, the shift has been acted on: detection
    // restarts with the triggering window's profile as the new normal
    // (rebasing to the blended EWMA would leave a permanent phantom
    // deviation that re-fires the trigger forever).
    detector_.Rebase(event.io_by_object);
    cooldown_remaining_ = config_.cooldown_windows;
  }

  run->decisions.push_back(std::move(decision));
}

}  // namespace dot
