#include "advisor/feed.h"

#include "common/check.h"

namespace dot {

RecordedTraceFeed::RecordedTraceFeed(const WorkloadTrace* trace)
    : trace_(trace) {
  DOT_CHECK(trace_ != nullptr);
}

bool RecordedTraceFeed::Next(TraceEvent* event) {
  DOT_CHECK(event != nullptr);
  if (next_ >= trace_->events.size()) return false;
  *event = trace_->events[next_++];
  return true;
}

FeedPlayer::FeedPlayer(TraceFeed* feed) : feed_(feed) {
  DOT_CHECK(feed_ != nullptr);
}

int FeedPlayer::Play(const Observer& observe) {
  DOT_CHECK(observe != nullptr);
  int delivered = 0;
  TraceEvent event;
  while (feed_->Next(&event)) {
    DOT_CHECK(event.start_hours >= clock_hours_ - 1e-9)
        << "trace events must arrive in virtual-time order";
    DOT_CHECK(event.duration_hours > 0.0);
    observe(event);
    clock_hours_ = event.start_hours + event.duration_hours;
    ++delivered;
  }
  return delivered;
}

}  // namespace dot
