#include "advisor/feed.h"

#include <cmath>
#include <string>

#include "common/check.h"

namespace dot {

namespace {

/// OK iff `event` is something the virtual clock and the drift machinery
/// can digest. `clock_hours` is the virtual time the previous event ended
/// at; the comparison is written so that a NaN start also fails it.
Status ValidateEvent(const TraceEvent& event, double clock_hours) {
  const std::string where = "trace window " + std::to_string(event.window);
  if (!(event.start_hours >= clock_hours - 1e-9) ||
      !std::isfinite(event.start_hours)) {
    return Status::InvalidArgument(
        where + ": events must arrive in virtual-time order");
  }
  if (!(event.duration_hours > 0.0) || !std::isfinite(event.duration_hours)) {
    return Status::InvalidArgument(where + ": non-positive duration");
  }
  if (event.io_by_object.empty()) {
    return Status::InvalidArgument(where + ": empty window (no observed "
                                           "objects)");
  }
  for (const IoVector& io : event.io_by_object) {
    for (IoType t : kAllIoTypes) {
      const double count = io[t];
      if (!(count >= 0.0) || !std::isfinite(count)) {
        return Status::InvalidArgument(
            where + ": negative or non-finite I/O count");
      }
    }
  }
  return Status::OK();
}

}  // namespace

RecordedTraceFeed::RecordedTraceFeed(const WorkloadTrace* trace)
    : trace_(trace) {
  DOT_CHECK(trace_ != nullptr);
}

bool RecordedTraceFeed::Next(TraceEvent* event) {
  DOT_CHECK(event != nullptr);
  if (next_ >= trace_->events.size()) return false;
  *event = trace_->events[next_++];
  return true;
}

FeedPlayer::FeedPlayer(TraceFeed* feed) : feed_(feed) {
  DOT_CHECK(feed_ != nullptr);
}

Status FeedPlayer::Play(const Observer& observe, int* delivered) {
  DOT_CHECK(observe != nullptr);
  int count = 0;
  if (delivered != nullptr) *delivered = 0;
  TraceEvent event;
  while (feed_->Next(&event)) {
    const Status valid = ValidateEvent(event, clock_hours_);
    if (!valid.ok()) return valid;
    observe(event);
    clock_hours_ = event.start_hours + event.duration_hours;
    ++count;
    if (delivered != nullptr) *delivered = count;
  }
  return Status::OK();
}

}  // namespace dot
