#ifndef DOTPROV_ADVISOR_ADVISOR_H_
#define DOTPROV_ADVISOR_ADVISOR_H_

#include <vector>

#include "advisor/drift.h"
#include "advisor/feed.h"
#include "dot/solve.h"
#include "storage/migration.h"

namespace dot {

/// Knobs of the always-on advisor loop.
struct AdvisorConfig {
  /// Change detection over the observed I/O profile.
  DriftConfig drift;

  /// Engine behind every (re-)plan, driven through dot::Solve. kExact
  /// re-plans are warm-started from the incumbent and the cached candidate
  /// pool, so a re-plan near the incumbent prunes almost everything.
  SolveMethod replan_method = SolveMethod::kExact;

  /// What moving data costs, and how the bill folds into the commit test.
  /// kAutoMigrationWeight resolves to 1 / (the initial plan's best-case
  /// tasks/hour): a migration dollar competes with the operating dollars
  /// one hour at reference throughput spends.
  MigrationCostModel migration;
  double migration_weight = kAutoMigrationWeight;

  /// How long the newly observed profile is assumed to hold when deciding
  /// whether a migration pays for itself.
  double payback_horizon_hours = 24.0;

  /// Windows to hold off after a re-plan before drift can trigger again
  /// (the detector is rebased anyway; this additionally damps thrash when
  /// the profile is still settling).
  int cooldown_windows = 1;

  /// Cap on the cached candidate pool (past incumbents and re-plan
  /// winners) used to warm-start exact re-plans.
  int max_pool = 16;

  /// Estimate per-object io_scale from the smoothed observed counts and
  /// re-plan with the hint (the refinement-loop idiom, §3 Figure 2, run
  /// continuously). false: re-plan on the unscaled base model — an
  /// ablation switch.
  bool estimate_io_scale = true;

  /// Known workload classes (e.g. the HTAP mixes a box alternates
  /// between). When non-empty, every re-plan first classifies: the model
  /// whose predicted profile on the incumbent best matches the re-plan
  /// window's observed profile becomes the planning model, and io_scale
  /// hints correct only the residual. Per-object scaling cannot express
  /// a task-mix shift (it rescales I/O, not what counts as a task), so
  /// without this a mix swing is planned under the wrong TOC denominator.
  /// Models must be built over the problem's schema/box and outlive the
  /// advisor; ties resolve to the lowest index (deterministic). Empty:
  /// the base model plus scale hints is all there is.
  std::vector<const WorkloadModel*> model_pool;

  /// true: commit a re-plan's winner only when GateMigration approves the
  /// bill. false: commit any winner that differs from the incumbent — the
  /// "always take the new optimum" baseline.
  bool gate_on_migration_bill = true;

  /// > 0: re-plan every Nth window regardless of drift (the fixed-interval
  /// baseline; 1 = every window). 0: re-plan only on drift.
  int replan_interval_windows = 0;

  /// Robust mode (DESIGN.md §10): when set, the initial plan, every
  /// re-plan, and the incumbent pricing all run under this scenario
  /// ensemble and objective instead of the point forecast — the advisor
  /// hedges against the forecast being wrong, not just against observed
  /// drift. Scenario models default to the problem's workload (or, after a
  /// classification switch, the re-plan's model) and their io_scale
  /// composes onto the re-plan's hint. Must outlive the advisor.
  const ScenarioEnsemble* ensemble = nullptr;

  /// Objective over `ensemble`; ignored when `ensemble` is null.
  EnsembleObjective ensemble_objective;
};

/// What the advisor decided after observing one window.
struct AdvisorDecision {
  int window = -1;
  double deviation = 0.0;  ///< smoothed relative deviation after the window
  double statistic = 0.0;  ///< accumulated drift statistic
  bool replanned = false;
  bool migrated = false;

  /// When replanned: both TOCs under the re-plan's (scaled) model, and the
  /// gate's full arithmetic. A re-plan that found the SLA infeasible under
  /// the new profile leaves candidate_toc at 0 and never migrates.
  double incumbent_toc = 0.0;
  double candidate_toc = 0.0;
  MigrationVerdict verdict;

  /// Whether the incumbent still met the SLA under the re-plan's profile.
  /// false overrides the migration gate: restoring the SLA is what the
  /// provisioning contract promises, so the bill is paid regardless (the
  /// refinement loop of Figure 2, run continuously).
  bool incumbent_feasible = true;

  /// Index into AdvisorConfig::model_pool of the class this re-plan was
  /// planned under; -1 when no pool is configured.
  int model_index = -1;
};

/// One advisor session over a feed.
struct AdvisorRun {
  Status status = Status::OK();

  std::vector<int> initial_layout;

  /// One entry per observed window, in order.
  std::vector<AdvisorDecision> decisions;

  /// The layout in effect *during* window w — the incumbent at window
  /// entry. A decision made from window w's observation takes effect at
  /// window w + 1 (causality: the advisor cannot re-lay-out the past).
  /// Feed directly to ReplayLayoutTrack for realized cost.
  std::vector<std::vector<int>> layout_by_window;

  std::vector<int> final_layout;
  int num_replans = 0;
  int num_migrations = 0;
  long long layouts_evaluated = 0;
};

/// The always-on advisor: replays a workload trace through a virtual-time
/// feed, tracks the observed I/O profile against the incumbent plan's
/// baseline, and on drift re-plans incrementally — warm-started from the
/// incumbent and the cached candidate pool — committing a migration only
/// when its projected saving beats the bill. Fully deterministic: the
/// decision sequence is a pure function of the problem, the config and the
/// feed, bit-identical at any options.num_threads (pinned by tests).
class Advisor {
 public:
  /// `problem` is copied; its pointees (schema, box, workload, profiles)
  /// must outlive the advisor. problem.options carries the engine knobs
  /// for every re-plan.
  Advisor(const DotProblem& problem, AdvisorConfig config);

  /// Solves the initial incumbent through dot::Solve, installs the
  /// model-predicted I/O profile as the drift baseline, and resolves the
  /// migration weight. Called implicitly by the first Run.
  Status Init();

  /// Drains `feed` through a FeedPlayer, deciding after every window.
  /// Callable repeatedly; incumbent, detector and pool state carry over
  /// (one long advisor session across several feed segments).
  AdvisorRun Run(TraceFeed* feed);

  const std::vector<int>& incumbent() const { return incumbent_; }
  double incumbent_toc() const { return incumbent_toc_; }
  const DriftDetector& detector() const { return detector_; }
  double resolved_migration_weight() const { return resolved_weight_; }

 private:
  void Observe(const TraceEvent& event, AdvisorRun* run);
  int ClassifyWorkload(const ObjectIoMap& observed);
  std::vector<double> EstimateIoScale(const ObjectIoMap& observed) const;
  void AddToPool(const std::vector<int>& layout);

  DotProblem problem_;  ///< io_scale_hint mutated by re-plans
  AdvisorConfig config_;
  DriftDetector detector_;

  std::vector<int> incumbent_;
  double incumbent_toc_ = 0.0;

  /// Model-predicted counts on the initial incumbent: the denominator of
  /// io_scale estimation for the whole session (scale is always relative
  /// to the *base* model, matching DotProblem::io_scale_hint's contract).
  ObjectIoMap reference_counts_;

  std::vector<std::vector<int>> pool_;
  double resolved_weight_ = 0.0;
  int cooldown_remaining_ = 0;
  long long windows_seen_ = 0;
  bool initialized_ = false;
};

}  // namespace dot

#endif  // DOTPROV_ADVISOR_ADVISOR_H_
