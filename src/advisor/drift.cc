#include "advisor/drift.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dot {

void OnlineIoProfile::Observe(const ObjectIoMap& counts, double alpha) {
  DOT_CHECK(alpha > 0.0 && alpha <= 1.0);
  if (!has_observation_) {
    mean_ = counts;
    has_observation_ = true;
    return;
  }
  DOT_CHECK(mean_.size() == counts.size())
      << "observation changed its object count mid-stream";
  for (size_t o = 0; o < mean_.size(); ++o) {
    for (IoType t : kAllIoTypes) {
      mean_[o][t] = (1.0 - alpha) * mean_[o][t] + alpha * counts[o][t];
    }
  }
}

void OnlineIoProfile::Reset() {
  mean_.clear();
  has_observation_ = false;
}

DriftDetector::DriftDetector(DriftConfig config) : config_(config) {
  DOT_CHECK(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0);
  DOT_CHECK(config_.deadband >= 0.0);
  DOT_CHECK(config_.trigger > 0.0);
  DOT_CHECK(config_.count_floor > 0.0);
}

void DriftDetector::Rebase(const ObjectIoMap& baseline) {
  baseline_ = baseline;
  smoothed_.Reset();
  deviation_ = 0.0;
  statistic_ = 0.0;
}

void DriftDetector::Update(const ObjectIoMap& observed) {
  DOT_CHECK(!baseline_.empty()) << "Rebase before Update";
  DOT_CHECK(observed.size() == baseline_.size())
      << "observation does not cover the baseline's objects";
  smoothed_.Observe(observed, config_.ewma_alpha);

  // Fixed (object, class) summation order: the statistic is a pure serial
  // function of the observation sequence.
  const ObjectIoMap& mean = smoothed_.mean();
  double abs_diff = 0.0;
  double base_total = 0.0;
  for (size_t o = 0; o < baseline_.size(); ++o) {
    for (IoType t : kAllIoTypes) {
      abs_diff += std::abs(mean[o][t] - baseline_[o][t]);
      base_total += baseline_[o][t];
    }
  }
  deviation_ = abs_diff / std::max(base_total, config_.count_floor);
  statistic_ =
      std::max(0.0, statistic_ + (deviation_ - config_.deadband));
}

}  // namespace dot
