#ifndef DOTPROV_STORAGE_STORAGE_CLASS_H_
#define DOTPROV_STORAGE_STORAGE_CLASS_H_

#include <string>
#include <vector>

#include "io/device_model.h"

namespace dot {

/// Physical specifications of one purchasable device (Table 2), plus the
/// shared RAID-controller line item.
struct DeviceSpec {
  std::string brand_model;
  std::string flash_type;      ///< "N/A" for spinning disks
  double capacity_gb = 0.0;
  std::string interface;
  double purchase_cost_cents = 0.0;
  double power_watts = 0.0;    ///< average of read/write dissipation
};

/// One storage class d_j available to the provisioner (§2.2): an individual
/// device or a RAID group, with its calibrated I/O model, usable capacity
/// c_j (GB) and price p_j (cents/GB/hour).
class StorageClass {
 public:
  StorageClass() = default;
  StorageClass(std::string name, DeviceModel device, double capacity_gb,
               double price_cents_per_gb_hour);

  const std::string& name() const { return name_; }
  const DeviceModel& device() const { return device_; }
  /// Usable capacity c_j in GB. Experiments may impose a tighter cap via
  /// set_capacity_gb (§4.4.3 / §4.5.3 capacity sweeps).
  double capacity_gb() const { return capacity_gb_; }
  /// Price p_j in cents per GB per hour.
  double price_cents_per_gb_hour() const { return price_; }

  void set_capacity_gb(double gb) { capacity_gb_ = gb; }

 private:
  std::string name_;
  DeviceModel device_;
  double capacity_gb_ = 0.0;
  double price_ = 0.0;
};

/// A server's storage subsystem: the ordered set D = {d_1, ..., d_M} a DOT
/// run provisions over (e.g. the paper's Box 1 / Box 2).
struct BoxConfig {
  std::string name;
  std::vector<StorageClass> classes;

  int NumClasses() const { return static_cast<int>(classes.size()); }

  /// Index of the class with the given name, or -1.
  int FindClass(const std::string& class_name) const;

  /// Index of the most expensive class (DOT's initial layout L0 places all
  /// objects there, §3.1).
  int MostExpensiveClass() const;
};

}  // namespace dot

#endif  // DOTPROV_STORAGE_STORAGE_CLASS_H_
