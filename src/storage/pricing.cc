#include "storage/pricing.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/units.h"

namespace dot {

double PriceCentsPerGbHour(double purchase_cost_cents, double power_watts,
                           double capacity_gb) {
  DOT_CHECK(capacity_gb > 0);
  DOT_CHECK(purchase_cost_cents >= 0);
  DOT_CHECK(power_watts >= 0);
  const double amortized = purchase_cost_cents / kAmortizationHours;
  const double energy = power_watts * kCentsPerWattHour;
  return (amortized + energy) / capacity_gb;
}

double Raid0PriceCentsPerGbHour(const DeviceSpec& device, int num_devices,
                                double controller_cost_cents,
                                double controller_watts) {
  DOT_CHECK(num_devices >= 1);
  const double purchase =
      device.purchase_cost_cents * num_devices + controller_cost_cents;
  const double power = device.power_watts * num_devices + controller_watts;
  const double capacity = device.capacity_gb * num_devices;
  return PriceCentsPerGbHour(purchase, power, capacity);
}

double LinearLayoutCostCentsPerHour(const BoxConfig& box,
                                    const SpaceUsage& used_gb) {
  DOT_CHECK(used_gb.size() == box.classes.size())
      << "space usage arity mismatch";
  return LinearLayoutCostCentsPerHour(box, used_gb.data(),
                                      static_cast<int>(used_gb.size()));
}

double LinearLayoutCostCentsPerHour(const BoxConfig& box,
                                    const double* used_gb, int num_classes) {
  DOT_CHECK(num_classes == box.NumClasses()) << "space usage arity mismatch";
  double cost = 0.0;
  for (int j = 0; j < num_classes; ++j) {
    DOT_CHECK(used_gb[j] >= 0) << "negative space usage";
    cost += box.classes[static_cast<size_t>(j)].price_cents_per_gb_hour() *
            used_gb[j];
  }
  return cost;
}

double DiscreteLayoutCostCentsPerHour(const BoxConfig& box,
                                      const SpaceUsage& used_gb,
                                      double alpha) {
  DOT_CHECK(used_gb.size() == box.classes.size())
      << "space usage arity mismatch";
  return DiscreteLayoutCostCentsPerHour(
      box, used_gb.data(), static_cast<int>(used_gb.size()), alpha);
}

double DiscreteLayoutCostCentsPerHour(const BoxConfig& box,
                                      const double* used_gb, int num_classes,
                                      double alpha) {
  DOT_CHECK(num_classes == box.NumClasses()) << "space usage arity mismatch";
  DOT_CHECK(alpha >= 0.0 && alpha <= 1.0) << "alpha must be in [0,1]";
  double cost = 0.0;
  for (int j = 0; j < num_classes; ++j) {
    DOT_CHECK(used_gb[j] >= 0) << "negative space usage";
    if (used_gb[j] == 0.0) continue;  // unused class: device not purchased
    const StorageClass& sc = box.classes[static_cast<size_t>(j)];
    const double unit_gb = sc.capacity_gb();
    const double units = std::ceil(used_gb[j] / unit_gb);
    const double full_unit_cost =
        sc.price_cents_per_gb_hour() * unit_gb;  // p_j * c_j
    const double discrete = units * full_unit_cost;
    const double linear = sc.price_cents_per_gb_hour() * used_gb[j];
    cost += alpha * discrete + (1.0 - alpha) * linear;
  }
  return cost;
}

double LayoutCostCentsPerHour(const BoxConfig& box, const SpaceUsage& used_gb,
                              const CostModelSpec& spec) {
  DOT_CHECK(used_gb.size() == box.classes.size())
      << "space usage arity mismatch";
  return LayoutCostCentsPerHour(box, used_gb.data(),
                                static_cast<int>(used_gb.size()), spec);
}

double LayoutCostCentsPerHour(const BoxConfig& box, const double* used_gb,
                              int num_classes, const CostModelSpec& spec) {
  return spec.discrete
             ? DiscreteLayoutCostCentsPerHour(box, used_gb, num_classes,
                                              spec.alpha)
             : LinearLayoutCostCentsPerHour(box, used_gb, num_classes);
}

double MinObjectCostCentsPerHour(const BoxConfig& box, double size_gb,
                                 const CostModelSpec& spec) {
  DOT_CHECK(size_gb >= 0);
  DOT_CHECK(box.NumClasses() >= 1);
  double min_price = box.classes[0].price_cents_per_gb_hour();
  for (const StorageClass& sc : box.classes) {
    min_price = std::min(min_price, sc.price_cents_per_gb_hour());
  }
  const double linear_share = spec.discrete ? 1.0 - spec.alpha : 1.0;
  return linear_share * min_price * size_gb;
}

double CompletionCostLowerBoundCentsPerHour(const BoxConfig& box,
                                            const double* used_gb,
                                            int num_classes,
                                            double remaining_min_cost_cents,
                                            const CostModelSpec& spec) {
  DOT_CHECK(remaining_min_cost_cents >= 0);
  return LayoutCostCentsPerHour(box, used_gb, num_classes, spec) +
         remaining_min_cost_cents;
}

double WorkloadTocCents(double layout_cost_cents_per_hour,
                        double elapsed_ms) {
  DOT_CHECK(layout_cost_cents_per_hour >= 0);
  DOT_CHECK(elapsed_ms >= 0);
  return layout_cost_cents_per_hour * (elapsed_ms / kMsPerHour);
}

}  // namespace dot
