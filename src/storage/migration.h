#ifndef DOTPROV_STORAGE_MIGRATION_H_
#define DOTPROV_STORAGE_MIGRATION_H_

#include <vector>

#include "catalog/schema.h"
#include "io/io_types.h"
#include "storage/storage_class.h"

namespace dot {

/// Prices of physically re-laying-out data between storage classes — the
/// term the single-shot §2.5 problem has no word for, and the reason the
/// epoch planner (dot/reprovision.h) exists: when the workload drifts, the
/// question is not "what is the best layout now" but "is the better layout
/// worth the data movement".
///
/// A move is charged twice: once in cents (device wear, admin effort,
/// network egress on remote tiers) and once in time (the copy window,
/// during which the foreground workload loses throughput — priced per hour
/// so the dip is commensurable with everything else the optimizer prices).
/// Both charges are per moved object and exactly zero for an object that
/// stays on its class. That zero is the admissibility hook the planner's
/// bounds rely on: any not-yet-decided object can always stay put, so 0 is
/// a guaranteed lower bound on its migration term.
struct MigrationCostModel {
  /// Cents per GB physically moved.
  double transfer_price_cents_per_gb = 0.0;

  /// Value of one hour of copy window, cents/hour: the throughput dip
  /// while the foreground workload shares its devices with the copy
  /// stream, or the cost of the maintenance window that avoids the dip.
  double downtime_price_cents_per_hour = 0.0;

  /// Degree of concurrency the copy streams at (device latencies are
  /// concurrency-dependent, §3.3). 1 = a dedicated window.
  double copy_concurrency = 1.0;

  bool IsZero() const {
    return transfer_price_cents_per_gb == 0.0 &&
           downtime_price_cents_per_hour == 0.0;
  }
};

/// Streaming bandwidth of one storage class in GB/hour for `type`
/// (kSeqRead drains a source, kSeqWrite fills a target), derived from the
/// calibrated per-8-KiB-unit device latency at `concurrency` — the same
/// Table 1 anchors every other part of the model prices I/O from.
double ClassStreamGbPerHour(const StorageClass& cls, IoType type,
                            double concurrency);

/// Hours to move `size_gb` from `from_class` to `to_class`: the copy runs
/// at the slower of the source's sequential-read and the target's
/// sequential-write stream. Exactly 0 when the classes are equal.
double ObjectMoveHours(const BoxConfig& box, double size_gb, int from_class,
                       int to_class, double copy_concurrency);

/// Cents to move one object of `size_gb` from `from_class` to `to_class`:
/// transfer price plus the priced copy window. Exactly 0 when staying put.
double ObjectMigrationCostCents(const MigrationCostModel& model,
                                const BoxConfig& box, double size_gb,
                                int from_class, int to_class);

/// One layout transition's migration bill.
struct MigrationEstimate {
  double cents = 0.0;
  double hours = 0.0;  ///< serial copy window: objects move one at a time
  double gb_moved = 0.0;
  int objects_moved = 0;
};

/// Σ over the objects whose class changes between `from` and `to`, in
/// ascending object id — a fixed summation order, so the bill is
/// reproducible bit for bit wherever it is recomputed (planner DP,
/// sequence evaluator, schedule replay).
MigrationEstimate EstimateMigration(const MigrationCostModel& model,
                                    const BoxConfig& box,
                                    const Schema& schema,
                                    const std::vector<int>& from,
                                    const std::vector<int>& to);

/// The outcome of asking "is this move worth its bill?".
struct MigrationVerdict {
  /// true iff the candidate is strictly cheaper AND its projected saving
  /// over the payback horizon strictly exceeds the weighted bill.
  bool migrate = false;

  MigrationEstimate bill;

  /// Incumbent TOC minus candidate TOC, cents/task (> 0 = candidate
  /// cheaper to operate).
  double toc_delta_cents_per_task = 0.0;

  /// toc_delta · horizon_hours — what the move earns if the current
  /// profile holds for the horizon (cents·hour/task).
  double projected_saving = 0.0;

  /// migration_weight · bill.cents, in the same cents·hour/task units.
  double weighted_bill = 0.0;
};

/// The advisor's commit test: migrate from `from` to `to` only when the
/// candidate's operating advantage, projected over `horizon_hours`, pays
/// for the migration bill at `migration_weight` (hours/task — the epoch
/// planner's weight unit, e.g. 1 / best-case tasks-per-hour). Both TOC
/// inputs must be priced under the same model for the delta to mean
/// anything. Strict inequality on both tests: a tie never moves data.
///
/// Edge cases (pinned by storage_migration_test):
///   * toc_delta exactly 0 never migrates — even at a zero bill, there is
///     no saving to pay for the operational risk of moving data;
///   * horizon_hours ≤ 0 never migrates (no future to amortize over;
///     negative horizons clamp to 0 rather than abort, so a caller-side
///     clock underrun degrades to "don't move" instead of crashing);
///   * a zero bill still demands a strictly positive projected saving;
///   * `from`/`to` not placing every schema object is a programmer error
///     and aborts via DOT_CHECK (inside EstimateMigration).
MigrationVerdict GateMigration(const MigrationCostModel& model,
                               const BoxConfig& box, const Schema& schema,
                               const std::vector<int>& from,
                               const std::vector<int>& to,
                               double incumbent_toc_cents_per_task,
                               double candidate_toc_cents_per_task,
                               double horizon_hours, double migration_weight);

}  // namespace dot

#endif  // DOTPROV_STORAGE_MIGRATION_H_
