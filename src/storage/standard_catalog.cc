#include "storage/standard_catalog.h"

#include <array>

#include "common/check.h"
#include "storage/pricing.h"

namespace dot {

namespace {

// Table 2 specs. Costs are cents; power is the average of read/write
// dissipation as the paper derives it.
const DeviceSpec kHddSpec = {
    /*brand_model=*/"WD Caviar Black", /*flash_type=*/"N/A",
    /*capacity_gb=*/500.0, /*interface=*/"SATA II",
    /*purchase_cost_cents=*/34.0 * 100.0, /*power_watts=*/8.3};

const DeviceSpec kLssdSpec = {
    /*brand_model=*/"Imation M-Class 2.5\"", /*flash_type=*/"MLC",
    /*capacity_gb=*/128.0, /*interface=*/"SATA II",
    /*purchase_cost_cents=*/253.0 * 100.0, /*power_watts=*/2.5};

const DeviceSpec kHssdSpec = {
    /*brand_model=*/"Fusion IO ioDrive", /*flash_type=*/"SLC",
    /*capacity_gb=*/80.0, /*interface=*/"PCI-Express",
    /*purchase_cost_cents=*/3550.0 * 100.0, /*power_watts=*/10.5};

// Table 1 latency anchors: {c=1, c=300} per I/O type, in ms per I/O for
// reads and ms per row for writes.
struct StockAnchors {
  LatencyAnchors sr, rr, sw, rw;
};

constexpr std::array<StockAnchors, kNumStockClasses> kStockAnchors = {{
    // HDD
    {{0.072, 0.174}, {13.32, 8.903}, {0.012, 0.039}, {10.15, 8.124}},
    // HDD RAID 0
    {{0.049, 0.096}, {12.19, 2.712}, {0.011, 0.034}, {11.55, 3.770}},
    // L-SSD
    {{0.036, 0.053}, {1.759, 1.468}, {0.020, 0.341}, {62.01, 37.45}},
    // L-SSD RAID 0
    {{0.021, 0.037}, {1.570, 0.826}, {0.013, 0.082}, {21.14, 17.71}},
    // H-SSD
    {{0.016, 0.013}, {0.091, 0.024}, {0.009, 0.025}, {0.928, 0.986}},
}};

constexpr std::array<double, kNumStockClasses> kPublishedPrices = {
    3.47e-4, 8.19e-4, 7.65e-3, 9.51e-3, 1.69e-1};

constexpr std::array<const char*, kNumStockClasses> kStockNames = {
    "HDD", "HDD RAID 0", "L-SSD", "L-SSD RAID 0", "H-SSD"};

DeviceModel MakeStockDeviceModel(StockClass c) {
  const StockAnchors& a = kStockAnchors[static_cast<size_t>(c)];
  std::array<LatencyAnchors, kNumIoTypes> anchors{};
  anchors[static_cast<size_t>(IoType::kSeqRead)] = a.sr;
  anchors[static_cast<size_t>(IoType::kRandRead)] = a.rr;
  anchors[static_cast<size_t>(IoType::kSeqWrite)] = a.sw;
  anchors[static_cast<size_t>(IoType::kRandWrite)] = a.rw;
  return DeviceModel(StockClassName(c), anchors);
}

}  // namespace

const DeviceSpec& StockDeviceSpec(StockClass c) {
  switch (c) {
    case StockClass::kHdd:
    case StockClass::kHddRaid0:
      return kHddSpec;
    case StockClass::kLssd:
    case StockClass::kLssdRaid0:
      return kLssdSpec;
    case StockClass::kHssd:
      return kHssdSpec;
  }
  DOT_CHECK(false) << "unknown stock class";
  return kHddSpec;
}

const RaidControllerSpec& StockRaidController() {
  static const RaidControllerSpec kController;
  return kController;
}

const char* StockClassName(StockClass c) {
  return kStockNames[static_cast<size_t>(c)];
}

double PublishedPriceCentsPerGbHour(StockClass c) {
  return kPublishedPrices[static_cast<size_t>(c)];
}

StorageClass MakeStockClass(StockClass c) {
  const DeviceSpec& spec = StockDeviceSpec(c);
  const bool is_raid =
      c == StockClass::kHddRaid0 || c == StockClass::kLssdRaid0;
  double capacity_gb;
  double price;
  if (is_raid) {
    const RaidControllerSpec& ctrl = StockRaidController();
    capacity_gb = spec.capacity_gb * ctrl.devices_per_group;
    price = Raid0PriceCentsPerGbHour(spec, ctrl.devices_per_group,
                                     ctrl.cost_cents, ctrl.power_watts);
  } else {
    capacity_gb = spec.capacity_gb;
    price = PriceCentsPerGbHour(spec.purchase_cost_cents, spec.power_watts,
                                spec.capacity_gb);
  }
  return StorageClass(StockClassName(c), MakeStockDeviceModel(c), capacity_gb,
                      price);
}

BoxConfig MakeBox1() {
  BoxConfig box;
  box.name = "Box 1";
  box.classes = {MakeStockClass(StockClass::kHddRaid0),
                 MakeStockClass(StockClass::kLssd),
                 MakeStockClass(StockClass::kHssd)};
  return box;
}

BoxConfig MakeBox2() {
  BoxConfig box;
  box.name = "Box 2";
  box.classes = {MakeStockClass(StockClass::kHdd),
                 MakeStockClass(StockClass::kLssdRaid0),
                 MakeStockClass(StockClass::kHssd)};
  return box;
}

BoxConfig MakeAllClassesBox() {
  BoxConfig box;
  box.name = "All classes";
  box.classes = {MakeStockClass(StockClass::kHdd),
                 MakeStockClass(StockClass::kHddRaid0),
                 MakeStockClass(StockClass::kLssd),
                 MakeStockClass(StockClass::kLssdRaid0),
                 MakeStockClass(StockClass::kHssd)};
  return box;
}

}  // namespace dot
