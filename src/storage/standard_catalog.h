#ifndef DOTPROV_STORAGE_STANDARD_CATALOG_H_
#define DOTPROV_STORAGE_STANDARD_CATALOG_H_

#include <vector>

#include "storage/storage_class.h"

namespace dot {

/// The five storage classes used throughout the paper's evaluation
/// (Table 1 columns).
enum class StockClass {
  kHdd = 0,
  kHddRaid0 = 1,
  kLssd = 2,
  kLssdRaid0 = 3,
  kHssd = 4,
};

inline constexpr int kNumStockClasses = 5;

/// Table 2 physical specs for one of the three base devices (HDD, L-SSD,
/// H-SSD). RAID classes are composed from these plus the controller.
const DeviceSpec& StockDeviceSpec(StockClass c);

/// RAID controller line item from §4.1: Dell SAS6/iR, $110, 8.25 W,
/// always combined with exactly two identical devices in the paper.
struct RaidControllerSpec {
  double cost_cents = 110.0 * 100.0;
  double power_watts = 8.25;
  int devices_per_group = 2;
};
const RaidControllerSpec& StockRaidController();

/// Fully-assembled stock storage class: Table 1 latency anchors (measured
/// end-to-end at concurrency 1 and 300) + capacity + the price recomputed
/// from Table 2 via the §2.1 amortization model.
StorageClass MakeStockClass(StockClass c);

/// The paper's published cents/GB/hour for cross-checking our recomputed
/// prices (Table 1, row 2).
double PublishedPriceCentsPerGbHour(StockClass c);

/// Canonical label, e.g. "L-SSD RAID 0".
const char* StockClassName(StockClass c);

/// Box 1 (§4.1): HDD RAID 0 + L-SSD + H-SSD.
BoxConfig MakeBox1();

/// Box 2 (§4.1): HDD + L-SSD RAID 0 + H-SSD.
BoxConfig MakeBox2();

/// All five classes in one (hypothetical) box; convenient for tests.
BoxConfig MakeAllClassesBox();

}  // namespace dot

#endif  // DOTPROV_STORAGE_STANDARD_CATALOG_H_
