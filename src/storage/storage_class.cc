#include "storage/storage_class.h"

#include "common/check.h"

namespace dot {

StorageClass::StorageClass(std::string name, DeviceModel device,
                           double capacity_gb,
                           double price_cents_per_gb_hour)
    : name_(std::move(name)),
      device_(std::move(device)),
      capacity_gb_(capacity_gb),
      price_(price_cents_per_gb_hour) {
  DOT_CHECK(capacity_gb_ > 0) << "storage class " << name_
                              << " needs positive capacity";
  DOT_CHECK(price_ > 0) << "storage class " << name_
                        << " needs positive price";
}

int BoxConfig::FindClass(const std::string& class_name) const {
  for (size_t i = 0; i < classes.size(); ++i) {
    if (classes[i].name() == class_name) return static_cast<int>(i);
  }
  return -1;
}

int BoxConfig::MostExpensiveClass() const {
  DOT_CHECK(!classes.empty()) << "box " << name << " has no storage classes";
  int best = 0;
  for (size_t i = 1; i < classes.size(); ++i) {
    if (classes[i].price_cents_per_gb_hour() >
        classes[best].price_cents_per_gb_hour()) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace dot
