#ifndef DOTPROV_STORAGE_PRICING_H_
#define DOTPROV_STORAGE_PRICING_H_

#include <vector>

#include "storage/storage_class.h"

namespace dot {

/// Amortized storage price in cents/GB/hour (§2.1): purchase cost spread
/// over 36 months plus run-time energy at $0.07/kWh, divided by capacity.
double PriceCentsPerGbHour(double purchase_cost_cents, double power_watts,
                           double capacity_gb);

/// Price of a RAID-0 group of `num_devices` identical devices plus the
/// controller (§4.1: $110 Dell SAS6/iR drawing 8.25 W).
double Raid0PriceCentsPerGbHour(const DeviceSpec& device, int num_devices,
                                double controller_cost_cents,
                                double controller_watts);

/// Space usage per storage class, S_j in GB (§2.1).
using SpaceUsage = std::vector<double>;

/// Linear layout cost (§2.1): C(L) = Σ_j p_j · S_j, in cents/hour.
double LinearLayoutCostCentsPerHour(const BoxConfig& box,
                                    const SpaceUsage& used_gb);

/// Span form of the linear cost: `used_gb` points at NumClasses() entries.
/// The vector overload delegates here, so both run the same summation and
/// agree bit-for-bit — the contract the allocation-free TOC fast path
/// (dot/eval_tables.h) relies on when it prices candidates from a stack
/// buffer instead of a SpaceUsage vector.
double LinearLayoutCostCentsPerHour(const BoxConfig& box,
                                    const double* used_gb, int num_classes);

/// Discrete-sized layout cost (§5.2):
///   C(L) = Σ_j [ α·(p_j·c_j·n_j) + (1-α)·p_j·S_j ]
/// where n_j = ceil(S_j / c_j) is the number of discrete units of class j the
/// layout occupies (0 units ⇒ the device need not be bought at all). α=0
/// recovers the linear model; α=1 charges for whole devices only.
double DiscreteLayoutCostCentsPerHour(const BoxConfig& box,
                                      const SpaceUsage& used_gb, double alpha);

/// Span form of the discrete cost (same bit-for-bit contract as the linear
/// span form).
double DiscreteLayoutCostCentsPerHour(const BoxConfig& box,
                                      const double* used_gb, int num_classes,
                                      double alpha);

/// Workload cost, i.e. the TOC (§2.1/§2.3): layout cost (cents/hour) times
/// workload execution time, yielding cents per workload execution.
double WorkloadTocCents(double layout_cost_cents_per_hour, double elapsed_ms);

struct CostModelSpec;

/// Guaranteed marginal cost of placing one `size_gb` object on *any* class:
/// min_j p_j·s for the linear model, (1-α)·min_j p_j·s for the discrete one
/// (its step component can be absorbed entirely by space already charged,
/// so only the linear blend is guaranteed). The per-object floor of the
/// branch-and-bound search's completion-cost bound (DESIGN.md §5).
double MinObjectCostCentsPerHour(const BoxConfig& box, double size_gb,
                                 const CostModelSpec& spec);

/// Admissible completion-cost lower bound of a partial placement: the span
/// cost of the space assigned so far plus `remaining_min_cost_cents`, the
/// pre-summed MinObjectCostCentsPerHour of the unassigned objects. Both
/// cost models are monotone in per-class space, so every completion of the
/// partial placement costs at least this much (in real arithmetic — the
/// caller compares through a kBoundSafety margin).
double CompletionCostLowerBoundCentsPerHour(const BoxConfig& box,
                                            const double* used_gb,
                                            int num_classes,
                                            double remaining_min_cost_cents,
                                            const CostModelSpec& spec);

/// Which layout-cost model a DOT run charges: the paper's default linear
/// model (§2.1) or the discrete-sized extension (§5.2) with its α blend.
struct CostModelSpec {
  bool discrete = false;
  double alpha = 0.5;  ///< weight of the discrete component; ignored if linear
};

/// Dispatches to the linear or discrete layout cost.
double LayoutCostCentsPerHour(const BoxConfig& box, const SpaceUsage& used_gb,
                              const CostModelSpec& spec);

/// Span form of the dispatch.
double LayoutCostCentsPerHour(const BoxConfig& box, const double* used_gb,
                              int num_classes, const CostModelSpec& spec);

}  // namespace dot

#endif  // DOTPROV_STORAGE_PRICING_H_
