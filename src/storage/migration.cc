#include "storage/migration.h"

#include <algorithm>

#include "common/check.h"
#include "common/units.h"

namespace dot {

namespace {

/// GB in one 8 KiB I/O unit — the page size the whole model assumes
/// (catalog/db_object.h).
constexpr double kUnitGb = 8192.0 / (1024.0 * 1024.0 * 1024.0);

}  // namespace

double ClassStreamGbPerHour(const StorageClass& cls, IoType type,
                            double concurrency) {
  DOT_CHECK(concurrency >= 1.0);
  const double latency_ms = cls.device().LatencyMs(type, concurrency);
  DOT_CHECK(latency_ms > 0.0) << "device '" << cls.name()
                              << "' has no calibrated latency for streaming";
  return kUnitGb * (kMsPerHour / latency_ms);
}

double ObjectMoveHours(const BoxConfig& box, double size_gb, int from_class,
                       int to_class, double copy_concurrency) {
  DOT_CHECK(from_class >= 0 && from_class < box.NumClasses());
  DOT_CHECK(to_class >= 0 && to_class < box.NumClasses());
  DOT_CHECK(size_gb >= 0.0);
  if (from_class == to_class) return 0.0;
  const double read_gb_per_hour = ClassStreamGbPerHour(
      box.classes[static_cast<size_t>(from_class)], IoType::kSeqRead,
      copy_concurrency);
  const double write_gb_per_hour = ClassStreamGbPerHour(
      box.classes[static_cast<size_t>(to_class)], IoType::kSeqWrite,
      copy_concurrency);
  return size_gb / std::min(read_gb_per_hour, write_gb_per_hour);
}

double ObjectMigrationCostCents(const MigrationCostModel& model,
                                const BoxConfig& box, double size_gb,
                                int from_class, int to_class) {
  if (from_class == to_class) return 0.0;
  const double hours = ObjectMoveHours(box, size_gb, from_class, to_class,
                                       model.copy_concurrency);
  return model.transfer_price_cents_per_gb * size_gb +
         model.downtime_price_cents_per_hour * hours;
}

MigrationEstimate EstimateMigration(const MigrationCostModel& model,
                                    const BoxConfig& box,
                                    const Schema& schema,
                                    const std::vector<int>& from,
                                    const std::vector<int>& to) {
  const int n = schema.NumObjects();
  DOT_CHECK(static_cast<int>(from.size()) == n &&
            static_cast<int>(to.size()) == n)
      << "migration endpoints must place every schema object";
  MigrationEstimate est;
  for (int o = 0; o < n; ++o) {
    const int a = from[static_cast<size_t>(o)];
    const int b = to[static_cast<size_t>(o)];
    if (a == b) continue;
    const double size_gb = schema.object(o).size_gb;
    // One window computation per move; the cents formula is exactly
    // ObjectMigrationCostCents's, sharing the hours instead of re-deriving
    // the device bandwidths.
    const double hours =
        ObjectMoveHours(box, size_gb, a, b, model.copy_concurrency);
    est.cents += model.transfer_price_cents_per_gb * size_gb +
                 model.downtime_price_cents_per_hour * hours;
    est.hours += hours;
    est.gb_moved += size_gb;
    est.objects_moved += 1;
  }
  return est;
}

MigrationVerdict GateMigration(const MigrationCostModel& model,
                               const BoxConfig& box, const Schema& schema,
                               const std::vector<int>& from,
                               const std::vector<int>& to,
                               double incumbent_toc_cents_per_task,
                               double candidate_toc_cents_per_task,
                               double horizon_hours,
                               double migration_weight) {
  // A negative horizon means "no future to amortize over": clamp to 0 (the
  // gate then never fires) instead of aborting — the advisor feeds this
  // from config and clock arithmetic, and a degenerate horizon should
  // degrade to "don't move", not crash the loop.
  horizon_hours = std::max(0.0, horizon_hours);
  DOT_CHECK(migration_weight >= 0.0);
  MigrationVerdict verdict;
  verdict.bill = EstimateMigration(model, box, schema, from, to);
  verdict.toc_delta_cents_per_task =
      incumbent_toc_cents_per_task - candidate_toc_cents_per_task;
  verdict.projected_saving = verdict.toc_delta_cents_per_task * horizon_hours;
  verdict.weighted_bill = migration_weight * verdict.bill.cents;
  verdict.migrate = verdict.toc_delta_cents_per_task > 0.0 &&
                    verdict.projected_saving > verdict.weighted_bill;
  return verdict;
}

}  // namespace dot
