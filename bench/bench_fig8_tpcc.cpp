// Reproduces Figure 8: TPC-C throughput (tpmC) and TOC for the simple
// layouts and for DOT at relative SLAs 0.5, 0.25 and 0.125, on both boxes.
// Expected shape (§4.5.2): DOT's TOC decreases as the SLA relaxes, reaching
// ~3x below All H-SSD at SLA 0.125 while keeping tpmC above the floor.

#include <iostream>

#include "bench/bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"

int main() {
  using namespace dot;
  using dot::bench::Instance;
  std::cout << "=== Figure 8: TPC-C results (300 connections, 1h period) "
               "===\n";
  for (int box = 1; box <= 2; ++box) {
    auto inst = Instance::Tpcc(box);
    std::cout << "\n--- " << inst->box().name << " ---\n";
    TablePrinter t({"layout", "tpmC", "TOC (cents/1M txns)",
                    "cost (cents/hour)", "meets SLA"});
    auto add = [&](const std::string& name,
                   const std::vector<int>& placement, double sla) {
      const Instance::Evaluation e = inst->Evaluate(placement, sla);
      t.AddRow({name, StrPrintf("%.0f", e.estimate.tpmc),
                StrPrintf("%.3f", e.toc_cents_per_task * 1e6),
                StrPrintf("%.4f", e.layout_cost_cents_per_hour),
                e.psr >= 1.0 ? "yes" : "no"});
    };
    for (const NamedLayout& l :
         MakeSimpleLayouts(inst->schema(), inst->box())) {
      add(l.name, l.placement, 0.5);
    }
    t.AddSeparator();
    for (double sla : {0.5, 0.25, 0.125}) {
      DotResult r = inst->RunDot(sla);
      add(StrPrintf("DOT (SLA %.3f)", sla), r.placement, sla);
    }
    t.Print(std::cout);

    const Instance::Evaluation hssd = inst->Evaluate(
        UniformPlacement(inst->schema().NumObjects(), 2), 0.125);
    DotResult loose = inst->RunDot(0.125);
    std::cout << StrPrintf(
        "DOT at SLA 0.125: %.2fx lower TOC than All H-SSD\n",
        hssd.toc_cents_per_task / loose.toc_cents_per_task);
  }
  return 0;
}
