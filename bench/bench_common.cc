#include "bench/bench_common.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/str_util.h"

namespace dot {
namespace bench {

namespace {

BoxConfig MakeBoxByIndex(int box) {
  DOT_CHECK(box == 1 || box == 2) << "box must be 1 or 2";
  return box == 1 ? MakeBox1() : MakeBox2();
}

}  // namespace

std::unique_ptr<Instance> Instance::TpchOnBox(BoxConfig box,
                                              TpchVariant variant) {
  auto inst = std::unique_ptr<Instance>(new Instance());
  inst->box_ = std::move(box);
  inst->schema_ = variant == TpchVariant::kEsSubset
                      ? MakeTpchEsSubsetSchema(20.0)
                      : MakeTpchSchema(20.0);
  std::vector<QuerySpec> templates;
  std::vector<int> sequence;
  switch (variant) {
    case TpchVariant::kOriginal:
      templates = MakeTpchTemplates();
      sequence = RepeatSequence(22, 3);
      break;
    case TpchVariant::kModified:
      templates = MakeModifiedTpchTemplates();
      sequence = RepeatSequence(5, 20);
      break;
    case TpchVariant::kEsSubset:
      templates = MakeTpchSubsetTemplates();
      sequence = RepeatSequence(11, 3);
      break;
  }
  inst->dss_ = std::make_unique<DssWorkloadModel>(
      "TPC-H", &inst->schema_, &inst->box_, std::move(templates),
      std::move(sequence), PlannerConfig{});
  inst->model_ = inst->dss_.get();

  // Profiling phase, §3.4 option (a): extended-optimizer estimates.
  Profiler profiler(&inst->schema_, &inst->box_);
  Instance* raw = inst.get();
  inst->profiles_ =
      std::make_unique<WorkloadProfiles>(profiler.ProfileWorkload(
          *inst->model_, [raw](const std::vector<int>& p) {
            return raw->model_->Estimate(p);
          }));
  return inst;
}

std::unique_ptr<Instance> Instance::Tpch(int box, TpchVariant variant) {
  return TpchOnBox(MakeBoxByIndex(box), variant);
}

std::unique_ptr<Instance> Instance::Tpcc(int box) {
  auto inst = std::unique_ptr<Instance>(new Instance());
  inst->box_ = MakeBoxByIndex(box);
  inst->schema_ = MakeTpccSchema(300);
  inst->oltp_ = MakeTpccWorkload(&inst->schema_, &inst->box_, TpccConfig{});
  inst->model_ = inst->oltp_.get();

  // Profiling phase, §3.4 option (b) / §4.5.1: one 5-minute test run on the
  // All H-SSD layout (plans are placement-invariant).
  Profiler profiler(&inst->schema_, &inst->box_);
  Instance* raw = inst.get();
  inst->profiles_ =
      std::make_unique<WorkloadProfiles>(profiler.ProfileWorkload(
          *inst->model_, [raw](const std::vector<int>& p) {
            ExecutorConfig cfg;
            cfg.noise_cv = 0.01;
            Executor executor(raw->model_, cfg);
            return executor.Run(p);
          }));
  return inst;
}

DotProblem Instance::Problem(double relative_sla) const {
  DotProblem problem;
  problem.schema = &schema_;
  problem.box = &box_;
  problem.workload = model_;
  problem.relative_sla = relative_sla;
  problem.profiles = profiles_.get();
  return problem;
}

DotResult Instance::RunDot(double relative_sla) const {
  SolveSpec spec;
  spec.method = SolveMethod::kDotHeuristic;
  SolveResult r = Solve(Problem(relative_sla), spec);
  DOT_CHECK(r.status.ok()) << "DOT infeasible at SLA " << relative_sla
                           << " on " << box_.name << ": "
                           << r.status.ToString();
  return std::move(r.dot);
}

Instance::Evaluation Instance::Evaluate(const std::vector<int>& placement,
                                        double relative_sla) const {
  DotOptimizer estimator(Problem(relative_sla));
  Evaluation out;
  out.toc_cents_per_task = estimator.EstimateToc(placement, &out.estimate);
  out.layout_cost_cents_per_hour =
      Layout(&schema_, &box_, placement).CostCentsPerHour(CostModelSpec{});
  out.psr = Psr(out.estimate, estimator.targets());
  return out;
}

std::string Sci(double v) { return StrPrintf("%.2e", v); }

std::string Minutes(double ms) { return StrPrintf("%.1f", ms / 60000.0); }

namespace {

/// Splits the text between the benchmarks array's brackets into complete
/// top-level JSON objects by quote-aware brace counting.
std::vector<std::string> SplitArrayObjects(const std::string& body) {
  std::vector<std::string> blocks;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  size_t start = std::string::npos;
  for (size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0 && start != std::string::npos) {
        blocks.push_back(body.substr(start, i - start + 1));
        start = std::string::npos;
      }
    }
  }
  return blocks;
}

/// Position one past the ']' closing the array that opens at `open`, or
/// npos on malformed input.
size_t FindArrayEnd(const std::string& text, size_t open) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '[') {
      ++depth;
    } else if (c == ']') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

}  // namespace

std::string MakeBenchmarkJsonEntry(
    const std::string& name, double real_time_ms,
    const std::vector<std::pair<std::string, double>>& counters) {
  std::string out;
  out += "    {\n";
  out += "      \"name\": \"" + name + "\",\n";
  out += "      \"run_name\": \"" + name + "\",\n";
  out += "      \"run_type\": \"iteration\",\n";
  out += "      \"repetitions\": 1,\n";
  out += "      \"repetition_index\": 0,\n";
  out += "      \"threads\": 1,\n";
  out += "      \"iterations\": 1,\n";
  out += StrPrintf("      \"real_time\": %.17g,\n", real_time_ms);
  out += StrPrintf("      \"cpu_time\": %.17g,\n", real_time_ms);
  out += "      \"time_unit\": \"ms\"";
  for (const auto& counter : counters) {
    out += StrPrintf(",\n      \"%s\": %.17g", counter.first.c_str(),
                     counter.second);
  }
  out += "\n    }";
  return out;
}

bool MergeBenchmarkJson(const std::string& path,
                        const std::string& name_prefix,
                        const std::vector<std::string>& entry_blocks) {
  std::string content;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      content = buffer.str();
    }
  }

  std::vector<std::string> blocks;
  std::string prefix_text;  // everything before the benchmarks array
  std::string suffix_text;  // everything after it
  if (!content.empty()) {
    const std::string key = "\"benchmarks\":";
    const size_t key_pos = content.find(key);
    const size_t open =
        key_pos == std::string::npos ? std::string::npos
                                     : content.find('[', key_pos);
    const size_t end =
        open == std::string::npos ? std::string::npos
                                  : FindArrayEnd(content, open);
    if (end == std::string::npos) {
      std::cerr << "MergeBenchmarkJson: " << path
                << " exists but has no parsable \"benchmarks\" array; "
                   "leaving it untouched\n";
      return false;
    }
    prefix_text = content.substr(0, open + 1);
    suffix_text = content.substr(end - 1);  // from the closing ']'
    for (std::string& block :
         SplitArrayObjects(content.substr(open + 1, end - 1 - (open + 1)))) {
      // Drop stale entries from a previous merge of the same producer.
      if (block.find("\"name\": \"" + name_prefix) != std::string::npos) {
        continue;
      }
      blocks.push_back(std::move(block));
    }
    // Normalize indentation of retained blocks (they arrive trimmed to
    // the braces).
    for (std::string& block : blocks) {
      if (block.rfind("    {", 0) != 0) block = "    " + block;
    }
  } else {
    prefix_text =
        "{\n  \"context\": {\n    \"executable\": \"bench (plain main)\"\n"
        "  },\n  \"benchmarks\": [";
    suffix_text = "]\n}\n";
  }

  for (const std::string& block : entry_blocks) blocks.push_back(block);

  // Write-then-rename so a mid-write failure can never destroy the
  // existing trajectory artifact.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      std::cerr << "MergeBenchmarkJson: cannot write " << tmp_path << "\n";
      return false;
    }
    out << prefix_text << "\n";
    for (size_t i = 0; i < blocks.size(); ++i) {
      out << blocks[i];
      if (i + 1 < blocks.size()) out << ",";
      out << "\n";
    }
    out << "  " << suffix_text;
    if (!out.good()) {
      std::cerr << "MergeBenchmarkJson: write to " << tmp_path
                << " failed\n";
      return false;
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::cerr << "MergeBenchmarkJson: cannot rename " << tmp_path << " to "
              << path << "\n";
    return false;
  }
  return true;
}

}  // namespace bench
}  // namespace dot
