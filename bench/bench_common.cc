#include "bench/bench_common.h"

#include "common/check.h"
#include "common/str_util.h"

namespace dot {
namespace bench {

namespace {

BoxConfig MakeBoxByIndex(int box) {
  DOT_CHECK(box == 1 || box == 2) << "box must be 1 or 2";
  return box == 1 ? MakeBox1() : MakeBox2();
}

}  // namespace

std::unique_ptr<Instance> Instance::TpchOnBox(BoxConfig box,
                                              TpchVariant variant) {
  auto inst = std::unique_ptr<Instance>(new Instance());
  inst->box_ = std::move(box);
  inst->schema_ = variant == TpchVariant::kEsSubset
                      ? MakeTpchEsSubsetSchema(20.0)
                      : MakeTpchSchema(20.0);
  std::vector<QuerySpec> templates;
  std::vector<int> sequence;
  switch (variant) {
    case TpchVariant::kOriginal:
      templates = MakeTpchTemplates();
      sequence = RepeatSequence(22, 3);
      break;
    case TpchVariant::kModified:
      templates = MakeModifiedTpchTemplates();
      sequence = RepeatSequence(5, 20);
      break;
    case TpchVariant::kEsSubset:
      templates = MakeTpchSubsetTemplates();
      sequence = RepeatSequence(11, 3);
      break;
  }
  inst->dss_ = std::make_unique<DssWorkloadModel>(
      "TPC-H", &inst->schema_, &inst->box_, std::move(templates),
      std::move(sequence), PlannerConfig{});
  inst->model_ = inst->dss_.get();

  // Profiling phase, §3.4 option (a): extended-optimizer estimates.
  Profiler profiler(&inst->schema_, &inst->box_);
  Instance* raw = inst.get();
  inst->profiles_ =
      std::make_unique<WorkloadProfiles>(profiler.ProfileWorkload(
          *inst->model_, [raw](const std::vector<int>& p) {
            return raw->model_->Estimate(p);
          }));
  return inst;
}

std::unique_ptr<Instance> Instance::Tpch(int box, TpchVariant variant) {
  return TpchOnBox(MakeBoxByIndex(box), variant);
}

std::unique_ptr<Instance> Instance::Tpcc(int box) {
  auto inst = std::unique_ptr<Instance>(new Instance());
  inst->box_ = MakeBoxByIndex(box);
  inst->schema_ = MakeTpccSchema(300);
  inst->oltp_ = MakeTpccWorkload(&inst->schema_, &inst->box_, TpccConfig{});
  inst->model_ = inst->oltp_.get();

  // Profiling phase, §3.4 option (b) / §4.5.1: one 5-minute test run on the
  // All H-SSD layout (plans are placement-invariant).
  Profiler profiler(&inst->schema_, &inst->box_);
  Instance* raw = inst.get();
  inst->profiles_ =
      std::make_unique<WorkloadProfiles>(profiler.ProfileWorkload(
          *inst->model_, [raw](const std::vector<int>& p) {
            ExecutorConfig cfg;
            cfg.noise_cv = 0.01;
            Executor executor(raw->model_, cfg);
            return executor.Run(p);
          }));
  return inst;
}

DotProblem Instance::Problem(double relative_sla) const {
  DotProblem problem;
  problem.schema = &schema_;
  problem.box = &box_;
  problem.workload = model_;
  problem.relative_sla = relative_sla;
  problem.profiles = profiles_.get();
  return problem;
}

DotResult Instance::RunDot(double relative_sla) const {
  DotResult r = DotOptimizer(Problem(relative_sla)).Optimize();
  DOT_CHECK(r.status.ok()) << "DOT infeasible at SLA " << relative_sla
                           << " on " << box_.name << ": "
                           << r.status.ToString();
  return r;
}

Instance::Evaluation Instance::Evaluate(const std::vector<int>& placement,
                                        double relative_sla) const {
  DotOptimizer estimator(Problem(relative_sla));
  Evaluation out;
  out.toc_cents_per_task = estimator.EstimateToc(placement, &out.estimate);
  out.layout_cost_cents_per_hour =
      Layout(&schema_, &box_, placement).CostCentsPerHour(CostModelSpec{});
  out.psr = Psr(out.estimate, estimator.targets());
  return out;
}

std::string Sci(double v) { return StrPrintf("%.2e", v); }

std::string Minutes(double ms) { return StrPrintf("%.1f", ms / 60000.0); }

}  // namespace bench
}  // namespace dot
