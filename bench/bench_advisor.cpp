// The always-on advisor on a drifting diurnal HTAP trace: trace replay ->
// drift detection -> incremental re-planning, scored by realized cost.
//
// The same diurnal CH-benCH cycle bench_reprovision plans with perfect
// foresight is here experienced *online*: the workload's analytics ratio
// swings from OLTP-heavy daytime through an evening reporting mix into an
// analytics-heavy night batch, and nobody tells the advisor — it only
// sees the hourly I/O profiles a monitoring trace records. Three
// strategies run the same day:
//
//   * frozen    — solve once on the daytime profile, never look again;
//   * interval  — re-plan every 6th hour and commit unconditionally
//                 (cron-driven re-provisioning, migration-blind);
//   * advisor   — drift-triggered re-plans (EWMA + cumulative deviation),
//                 warm-started from the incumbent and the candidate pool,
//                 committed only through the migration gate.
//
// Every strategy's layout track is priced by the same trace replay
// (exec/trace_replay.h) over the same noise draws, so realized totals
// differ only through the layouts. Sweeping the migration price scale
// traces the same frontier bench_reprovision draws: free migration lets
// the advisor chase every shift; expensive migration makes it
// increasingly reluctant — but never worse than freezing, because the
// gate refuses moves that don't pay.
//
// Exit status: 0 when, at every sweep point, advisor <= frozen and
// advisor <= interval on realized cost, the advisor strictly beats frozen
// somewhere, AND the advisor's decision sequence is bit-identical at 1, 4
// and all hardware threads. 1 otherwise.
//
// `--json[=path]` merges one entry per sweep point and strategy into the
// BENCH_optimizer.json trajectory artifact.

#include <chrono>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "dot/dot.h"

namespace {

using namespace dot;

std::string PlacementString(const std::vector<int>& placement) {
  std::string s;
  for (int c : placement) s += static_cast<char>('0' + c);
  return s;
}

struct Phase {
  std::string label;
  double rho;
  int hours;
};

/// The decision trail reduced to what must be bit-identical across thread
/// counts: every layout in effect plus every decision's flags and
/// statistics.
std::string DecisionFingerprint(const AdvisorRun& run) {
  std::string fp;
  for (const std::vector<int>& layout : run.layout_by_window) {
    fp += PlacementString(layout) + "|";
  }
  for (const AdvisorDecision& d : run.decisions) {
    fp += StrPrintf("%d:%d:%d:%a:%a;", d.window, d.replanned ? 1 : 0,
                    d.migrated ? 1 : 0, d.deviation, d.statistic);
  }
  return fp;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_optimizer.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::cerr << "unknown flag " << argv[i] << " (only --json[=path])\n";
      return 2;
    }
  }

  Schema full = MakeTpccSchema(300);
  Schema schema = full.Subset({"stock", "pk_stock", "order_line",
                               "pk_order_line", "customer", "pk_customer",
                               "orders", "pk_orders"});
  BoxConfig box = MakeBox2();

  // The diurnal cycle of bench_reprovision, cut into hourly windows, with
  // a reporting ramp on each side of the night batch (real load shifts
  // pass through intermediate mixes; the ramps also bound what one window
  // of detection latency can cost).
  const std::vector<Phase> cycle = {
      {"day", 0.1, 10},
      {"evening", 8.0, 4},
      {"night", 64.0, 8},
      {"morning ramp", 8.0, 2},
  };
  std::map<double, HtapBundle> bundles;
  for (const Phase& p : cycle) {
    if (bundles.count(p.rho)) continue;
    HtapConfig config;
    config.analytics_streams = p.rho;
    bundles.emplace(p.rho, MakeChbenchHtapWorkload(&schema, &box, config,
                                                   TpccConfig{},
                                                   /*analytics_reps=*/1));
  }

  // The advisor plans against the daytime model; everything else it must
  // infer from the trace.
  const WorkloadModel* base_model = bundles.at(cycle[0].rho).htap.get();

  // A relative SLA feasible for the base problem (Figure 2 relaxation).
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = base_model;
  problem.relative_sla = 0.35;
  problem.options.num_threads = 0;
  for (;;) {
    const SolveResult r = Solve(problem);
    if (r.status.ok()) break;
    problem.relative_sla *= 0.9;
    if (problem.relative_sla < 0.02) {
      std::cerr << "no feasible SLA for the daytime problem\n";
      return 1;
    }
  }

  // The monitoring trace: one window per hour, ground-truth workloads per
  // phase, recorded on the daytime incumbent. Noiseless — the drift is
  // structural (the rho swing), and a deterministic trace keeps the
  // dominance gate below sharp.
  WorkloadTraceSpec spec;
  for (const Phase& p : cycle) {
    for (int h = 0; h < p.hours; ++h) {
      TraceWindow window;
      window.workload = bundles.at(p.rho).htap.get();
      window.duration_hours = 1.0;
      window.label = p.label;
      spec.windows.push_back(window);
    }
  }

  const SolveResult base = Solve(problem);
  if (!base.status.ok()) {
    std::cerr << "base solve failed\n";
    return 1;
  }
  const WorkloadTrace trace = RecordTraceWithExecutor(spec, base.placement);

  std::cout << "=== Always-on advisor: " << schema.NumObjects()
            << " shared CH-benCH objects on " << box.name << ", "
            << spec.windows.size() << " hourly windows, relative SLA "
            << FormatSig(problem.relative_sla, 2) << " ===\n"
            << "daytime incumbent: " << PlacementString(base.placement)
            << "\n\n";

  const MigrationCostModel base_migration = [] {
    MigrationCostModel m;
    m.transfer_price_cents_per_gb = 1.0;
    m.downtime_price_cents_per_hour = 500.0;
    return m;
  }();
  constexpr double kDefaultScale = 0.03;
  const std::vector<double> scales = {0.0, 0.003, kDefaultScale, 0.3};

  // Every strategy knows the *catalog* of workload classes (the HTAP
  // mixes the box alternates between — PR 4's workload classes) but not
  // the schedule: which class runs when must be inferred from the trace.
  std::vector<const WorkloadModel*> model_pool;
  for (const auto& [rho, bundle] : bundles) {
    model_pool.push_back(bundle.htap.get());
  }

  auto advisor_config = [&](double scale) {
    AdvisorConfig config;
    config.migration = base_migration;
    config.migration.transfer_price_cents_per_gb *= scale;
    config.migration.downtime_price_cents_per_hour *= scale;
    config.drift.ewma_alpha = 0.7;
    config.payback_horizon_hours = 6.0;
    config.model_pool = model_pool;
    return config;
  };

  auto run_strategy = [&](AdvisorConfig config, int num_threads,
                          AdvisorRun* out) {
    DotProblem p = problem;
    p.options.num_threads = num_threads;
    Advisor advisor(p, config);
    RecordedTraceFeed feed(&trace);
    *out = advisor.Run(&feed);
    return advisor.resolved_migration_weight();
  };

  TablePrinter table({"migration price x", "replans", "migrations",
                      "advisor", "frozen", "interval", "saved vs frozen",
                      "saved vs interval"});
  std::vector<std::string> json_entries;
  bool all_dominated = true;
  bool beat_frozen_somewhere = false;
  for (double scale : scales) {
    const auto t0 = std::chrono::steady_clock::now();

    AdvisorRun advised;
    const double weight = run_strategy(advisor_config(scale), 0, &advised);

    // The cron baseline: same machinery, no drift detection, no gate.
    AdvisorConfig interval_config = advisor_config(scale);
    interval_config.drift.trigger = 1e30;
    interval_config.replan_interval_windows = 6;
    interval_config.gate_on_migration_bill = false;
    AdvisorRun interval;
    run_strategy(interval_config, 0, &interval);

    if (!advised.status.ok() || !interval.status.ok()) {
      std::cerr << "advisor run failed at scale " << scale << "\n";
      return 1;
    }

    TrackReplayConfig replay;
    replay.migration = base_migration;
    replay.migration.transfer_price_cents_per_gb *= scale;
    replay.migration.downtime_price_cents_per_hour *= scale;
    replay.migration_weight = weight;
    const TrackReplayResult advised_real = ReplayLayoutTrack(
        spec, advised.layout_by_window, schema, box, replay);
    const TrackReplayResult frozen_real = ReplayLayoutTrack(
        spec,
        std::vector<std::vector<int>>(spec.windows.size(),
                                      advised.initial_layout),
        schema, box, replay);
    const TrackReplayResult interval_real = ReplayLayoutTrack(
        spec, interval.layout_by_window, schema, box, replay);
    if (!advised_real.status.ok() || !frozen_real.status.ok() ||
        !interval_real.status.ok()) {
      std::cerr << "replay failed at scale " << scale << "\n";
      return 1;
    }

    all_dominated =
        all_dominated &&
        advised_real.total_objective <=
            frozen_real.total_objective * (1 + 1e-9) &&
        advised_real.total_objective <=
            interval_real.total_objective * (1 + 1e-9);
    beat_frozen_somewhere =
        beat_frozen_somewhere ||
        advised_real.total_objective <
            frozen_real.total_objective * (1 - 1e-12);

    auto pct_saved = [](double mine, double other) {
      return other > 0
                 ? StrPrintf("%.2f%%", 100.0 * (other - mine) / other)
                 : std::string("-");
    };
    table.AddRow(
        {StrPrintf("%.3f", scale), StrPrintf("%d", advised.num_replans),
         StrPrintf("%d", advised.num_migrations),
         bench::Sci(advised_real.total_objective),
         bench::Sci(frozen_real.total_objective),
         bench::Sci(interval_real.total_objective),
         pct_saved(advised_real.total_objective,
                   frozen_real.total_objective),
         pct_saved(advised_real.total_objective,
                   interval_real.total_objective)});

    if (!json_path.empty()) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      json_entries.push_back(bench::MakeBenchmarkJsonEntry(
          StrPrintf("Advisor/scale=%g", scale), elapsed_ms,
          {{"realized_advisor", advised_real.total_objective},
           {"realized_frozen", frozen_real.total_objective},
           {"realized_interval", interval_real.total_objective},
           {"replans", advised.num_replans},
           {"migrations", advised.num_migrations},
           {"layouts_evaluated",
            static_cast<double>(advised.layouts_evaluated)}}));
    }
  }
  std::cout << "objective: sum of window TOC x duration (cents-hour/task) "
               "+ weighted migration cents, realized by trace replay\n";
  table.Print(std::cout);

  // Determinism across thread counts: the decision sequence at the
  // default price must be bit-identical at 1, 4 and all hardware threads.
  std::cout << "\nthread-count determinism at migration price x"
            << kDefaultScale << ": ";
  AdvisorRun t1, t4, thw;
  run_strategy(advisor_config(kDefaultScale), 1, &t1);
  run_strategy(advisor_config(kDefaultScale), 4, &t4);
  run_strategy(advisor_config(kDefaultScale), 0, &thw);
  const bool deterministic =
      DecisionFingerprint(t1) == DecisionFingerprint(t4) &&
      DecisionFingerprint(t1) == DecisionFingerprint(thw);
  std::cout << (deterministic ? "identical decision sequences\n"
                              : "DIVERGED\n");

  if (!json_path.empty()) {
    if (bench::MergeBenchmarkJson(json_path, "Advisor/", json_entries)) {
      std::cout << "\nmerged " << json_entries.size() << " entries into "
                << json_path << "\n";
    }
  }

  if (!all_dominated) {
    std::cout << "\nFAIL: the advisor lost to a baseline somewhere on the "
                 "price sweep.\n";
    return 1;
  }
  if (!beat_frozen_somewhere) {
    std::cout << "\nFAIL: the advisor never strictly beat the frozen "
                 "incumbent — drift detection bought nothing.\n";
    return 1;
  }
  if (!deterministic) {
    std::cout << "\nFAIL: the decision sequence depends on the thread "
                 "count.\n";
    return 1;
  }
  std::cout << "\nThe advisor never loses to freezing or to cron-driven "
               "re-planning, strictly beats freezing where migration "
               "prices allow, and decides identically at any thread "
               "count.\n";
  return 0;
}
