// Reproduces Figure 6: the DOT layouts for the modified TPC-H workload at
// relative SLA 0.5. Expected shape (§4.4.2): unlike Figure 4, most of the
// database (including lineitem) is pinned to the H-SSD, because the
// selective predicates make the optimizer exploit H-SSD random reads via
// indexed nested-loop joins.

#include <iostream>

#include "bench/bench_tpch_figure.h"

int main() {
  std::cout << "=== Figure 6: DOT layouts, modified TPC-H, SLA 0.5 ===\n";
  dot::bench::PrintDotLayouts(dot::bench::TpchVariant::kModified, 0.5,
                              std::cout);
  return 0;
}
