#include "bench/bench_tpch_figure.h"

#include "common/str_util.h"
#include "common/table_printer.h"

namespace dot {
namespace bench {

void RunTpchComparisonFigure(TpchVariant variant, double relative_sla,
                             std::ostream& os) {
  for (int box = 1; box <= 2; ++box) {
    auto inst = Instance::Tpch(box, variant);
    os << "\n--- " << inst->box().name << " (relative SLA "
       << FormatSig(relative_sla, 3) << ") ---\n";
    TablePrinter t({"layout", "response time (min)", "cost (cents/hour)",
                    "TOC (cents/workload)", "PSR (%)"});

    auto add = [&](const std::string& name,
                   const std::vector<int>& placement) {
      const Instance::Evaluation e =
          inst->Evaluate(placement, relative_sla);
      const double toc_workload =
          e.layout_cost_cents_per_hour *
          (e.estimate.elapsed_ms / (3600.0 * 1000.0));
      t.AddRow({name, Minutes(e.estimate.elapsed_ms),
                StrPrintf("%.4f", e.layout_cost_cents_per_hour),
                StrPrintf("%.4f", toc_workload),
                StrPrintf("%.0f", e.psr * 100.0)});
    };

    for (const NamedLayout& l :
         MakeSimpleLayouts(inst->schema(), inst->box())) {
      add(l.name, l.placement);
    }
    add("OA", ObjectAdvisorPlacement(inst->Problem(relative_sla)));
    DotResult dot = inst->RunDot(relative_sla);
    add("DOT", dot.placement);
    t.Print(os);

    const Instance::Evaluation hssd = inst->Evaluate(
        UniformPlacement(inst->schema().NumObjects(),
                         inst->box().MostExpensiveClass()),
        relative_sla);
    const Instance::Evaluation dot_eval =
        inst->Evaluate(dot.placement, relative_sla);
    const double saving =
        (hssd.layout_cost_cents_per_hour * hssd.estimate.elapsed_ms) /
        (dot_eval.layout_cost_cents_per_hour *
         dot_eval.estimate.elapsed_ms);
    os << StrPrintf("DOT TOC saving vs All H-SSD: %.2fx\n", saving);
  }
}

void PrintDotLayouts(TpchVariant variant, double relative_sla,
                     std::ostream& os) {
  for (int box = 1; box <= 2; ++box) {
    auto inst = Instance::Tpch(box, variant);
    DotResult dot = inst->RunDot(relative_sla);
    os << "\n--- DOT layout, " << inst->box().name << ", relative SLA "
       << FormatSig(relative_sla, 3) << " ---\n"
       << Layout(&inst->schema(), &inst->box(), dot.placement).ToString();
  }
}

}  // namespace bench
}  // namespace dot
