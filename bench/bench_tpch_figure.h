#ifndef DOTPROV_BENCH_BENCH_TPCH_FIGURE_H_
#define DOTPROV_BENCH_BENCH_TPCH_FIGURE_H_

#include <iostream>

#include "bench/bench_common.h"

namespace dot {
namespace bench {

/// Renders one Figure-3/5/7-style cost/performance comparison: for both
/// boxes, the simple layouts of §4.2, the Object Advisor layout and the DOT
/// layout, each with workload response time, layout cost, measured TOC and
/// PSR (the number the paper prints in parentheses next to each label).
void RunTpchComparisonFigure(TpchVariant variant, double relative_sla,
                             std::ostream& os);

/// Renders Figure-4/6-style DOT layout listings for both boxes.
void PrintDotLayouts(TpchVariant variant, double relative_sla,
                     std::ostream& os);

}  // namespace bench
}  // namespace dot

#endif  // DOTPROV_BENCH_BENCH_TPCH_FIGURE_H_
