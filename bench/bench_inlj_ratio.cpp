// Reproduces the §4.4.2 plan-shape observation: the share of indexed
// nested-loop joins (INLJ) in the workload's query plans under DOT layouts.
// Paper numbers: 11% on the original workload; 50% on the modified workload
// at relative SLA 0.5; 33% at relative SLA 0.25 ("as the SLA constraint
// loosens, DOT moved the data around and switched query plans to use more
// hash join algorithms").

#include <iostream>

#include "bench/bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"

int main() {
  using namespace dot;
  using dot::bench::Instance;
  using dot::bench::TpchVariant;
  std::cout << "=== §4.4.2: INLJ share of join operators under DOT layouts "
               "===\n\n";
  TablePrinter t({"workload", "rel. SLA", "box", "INLJ", "joins",
                  "INLJ share (%)", "paper"});

  struct Case {
    TpchVariant variant;
    double sla;
    const char* label;
    const char* paper;
  };
  const Case cases[] = {
      {TpchVariant::kOriginal, 0.5, "original TPC-H", "11%"},
      {TpchVariant::kModified, 0.5, "modified TPC-H", "50%"},
      {TpchVariant::kModified, 0.25, "modified TPC-H", "33%"},
  };
  for (const Case& c : cases) {
    for (int box = 1; box <= 2; ++box) {
      auto inst = Instance::Tpch(box, c.variant);
      DotResult r = inst->RunDot(c.sla);
      const PerfEstimate& est = r.estimate;
      t.AddRow({c.label, StrPrintf("%.2f", c.sla),
                StrPrintf("Box %d", box),
                StrPrintf("%d", est.num_index_nl_joins),
                StrPrintf("%d", est.num_joins),
                StrPrintf("%.0f", 100.0 * est.num_index_nl_joins /
                                      std::max(est.num_joins, 1)),
                c.paper});
    }
    t.AddSeparator();
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape: modified@0.5 > modified@0.25 > original "
               "(plan flips toward hash joins as the SLA loosens).\n";
  return 0;
}
