// HTAP mix-ratio sweep: where does the optimal layout flip?
//
// One shared CH-benCH object set (the hottest TPC-C tables and indices) on
// Box 2, solved exactly (branch-and-bound) three ways: for the pure TPC-C
// transaction mix, for the pure CH-benCH analytic sequence, and for the
// composed HTAP workload at a sweep of analytics:transactions intensity
// ratios ρ. The transactional side wants the random-I/O-hot objects
// (stock, order_line) on fast-random devices and tolerates cheap classes
// elsewhere; the analytic side wants the scan-heavy objects on
// sequential-fast classes; the interference model punishes splitting the
// hot shared objects onto slow devices. As ρ grows the HTAP optimum must
// migrate from the OLTP-favoring placement to the DSS-favoring one —
// passing through mixed placements that match *neither* pure optimum,
// which is the whole case for modeling the mix rather than provisioning
// for one side.
//
// Exit status: 0 when at least one ρ produces an optimal layout different
// from both pure optima (the claim this bench exists to demonstrate),
// 1 otherwise.
//
// `--json[=path]` additionally merges one trajectory entry per sweep point
// (named HtapMixSweep/...) into the google-benchmark-format JSON file
// (default BENCH_optimizer.json) — the same perf-trajectory artifact
// bench_optimizer_perf writes, so the nightly-bench job archives both
// suites in one file.

#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "dot/dot.h"

namespace {

using namespace dot;

std::string PlacementString(const std::vector<int>& placement) {
  std::string s;
  for (int c : placement) s += static_cast<char>('0' + c);
  return s;
}

DotResult SolveExact(const Schema& schema, const BoxConfig& box,
                     const WorkloadModel& workload, double relative_sla) {
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = &workload;
  problem.relative_sla = relative_sla;
  problem.options.num_threads = 0;
  SolveResult r = Solve(problem);  // kExact default
  // The sweep compares optima, so every point must be feasible: relax like
  // the paper's Figure 2 loop if a ratio's combined caps are too tight.
  while (!r.status.ok() && problem.relative_sla > 0.02) {
    problem.relative_sla *= 0.9;
    r = Solve(problem);
  }
  return std::move(r.dot);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_optimizer.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::cerr << "unknown flag " << argv[i] << " (only --json[=path])\n";
      return 1;
    }
  }

  // Tight enough that the folded caps bind (an all-HDD layout's mean
  // transaction latency is ~4-5x the all-H-SSD best, above the 1/0.35 ≈
  // 2.9x cap) while leaving the mid-priced layouts — where the two sides'
  // preferences actually fight — feasible; SolveExact's relax loop is a
  // fallback only.
  const double relative_sla = 0.35;

  Schema full = MakeTpccSchema(300);
  Schema schema = full.Subset({"stock", "pk_stock", "order_line",
                               "pk_order_line", "customer", "pk_customer",
                               "orders", "pk_orders"});
  BoxConfig box = MakeBox2();

  std::cout << "=== HTAP mix sweep: " << schema.NumObjects()
            << " shared CH-benCH objects on " << box.name
            << ", exact BnB optima, relative SLA "
            << FormatSig(relative_sla, 2) << " ===\n";
  std::cout << "placement digits = storage class per object (";
  for (int o = 0; o < schema.NumObjects(); ++o) {
    std::cout << (o ? ", " : "") << schema.object(o).name;
  }
  std::cout << ")\nclasses:";
  for (int c = 0; c < box.NumClasses(); ++c) {
    std::cout << " " << c << "=" << box.classes[static_cast<size_t>(c)].name();
  }
  std::cout << "\n\n";

  // The two pure-side ground truths.
  auto oltp = MakeTpccWorkload(&schema, &box, TpccConfig{});
  const DotResult oltp_opt = SolveExact(schema, box, *oltp, relative_sla);
  if (!oltp_opt.status.ok()) {
    std::cerr << "pure-OLTP optimum infeasible: "
              << oltp_opt.status.ToString() << "\n";
    return 1;
  }
  const std::vector<QuerySpec> templates =
      FilterTemplatesToSchema(MakeChbenchTemplates(), schema);
  DssWorkloadModel dss("CH-benCH", &schema, &box, templates,
                       RepeatSequence(static_cast<int>(templates.size()), 1),
                       PlannerConfig{});
  const DotResult dss_opt = SolveExact(schema, box, dss, relative_sla);
  if (!dss_opt.status.ok()) {
    std::cerr << "pure-DSS optimum infeasible: " << dss_opt.status.ToString()
              << "\n";
    return 1;
  }

  TablePrinter t({"workload", "rho", "layout", "TOC (cents/1k tasks)",
                  "tpmC", "DSS seq (min)", "leaves"});
  t.AddRow({"pure OLTP", "-", PlacementString(oltp_opt.placement),
            StrPrintf("%.3f", oltp_opt.toc_cents_per_task * 1e3),
            StrPrintf("%.0f", oltp_opt.estimate.tpmc), "-",
            StrPrintf("%lld", oltp_opt.layouts_evaluated)});
  t.AddRow({"pure DSS", "-", PlacementString(dss_opt.placement),
            StrPrintf("%.3f", dss_opt.toc_cents_per_task * 1e3), "-",
            bench::Minutes(dss_opt.estimate.elapsed_ms),
            StrPrintf("%lld", dss_opt.layouts_evaluated)});

  std::vector<std::string> json_entries;
  auto add_json_entry = [&](const std::string& name, const DotResult& r,
                            double mixed_optimum) {
    if (json_path.empty()) return;
    json_entries.push_back(bench::MakeBenchmarkJsonEntry(
        name, r.optimize_ms,
        {{"toc_cents_per_1k_tasks", r.toc_cents_per_task * 1e3},
         {"layouts_per_s",
          r.optimize_ms > 0 ? r.layouts_evaluated / (r.optimize_ms / 1e3)
                            : 0.0},
         {"leaves", static_cast<double>(r.layouts_evaluated)},
         {"mixed_optimum", mixed_optimum}}));
  };
  add_json_entry("HtapMixSweep/pure_oltp", oltp_opt, 0.0);
  add_json_entry("HtapMixSweep/pure_dss", dss_opt, 0.0);

  bool flip_found = false;
  for (double rho : {0.1, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    HtapConfig config;
    config.analytics_streams = rho;
    HtapBundle bundle = MakeChbenchHtapWorkload(&schema, &box, config,
                                                TpccConfig{},
                                                /*analytics_reps=*/1);
    const DotResult r =
        SolveExact(schema, box, *bundle.htap, relative_sla);
    if (!r.status.ok()) {
      t.AddRow({"HTAP", StrPrintf("%.1f", rho), "infeasible", "-", "-", "-",
                "-"});
      continue;
    }
    const bool differs_from_both = r.placement != oltp_opt.placement &&
                                   r.placement != dss_opt.placement;
    flip_found = flip_found || differs_from_both;
    add_json_entry(StrPrintf("HtapMixSweep/rho=%g", rho), r,
                   differs_from_both ? 1.0 : 0.0);
    t.AddRow({differs_from_both ? "HTAP (mixed optimum)" : "HTAP",
              StrPrintf("%.1f", rho), PlacementString(r.placement),
              StrPrintf("%.3f", r.toc_cents_per_task * 1e3),
              StrPrintf("%.0f", r.estimate.tpmc),
              bench::Minutes(
                  r.estimate.unit_times_ms[static_cast<size_t>(
                      kHtapDssEntry)]),
              StrPrintf("%lld", r.layouts_evaluated)});
  }
  t.Print(std::cout);

  if (!json_path.empty()) {
    if (bench::MergeBenchmarkJson(json_path, "HtapMixSweep/",
                                  json_entries)) {
      std::cout << "\nmerged " << json_entries.size()
                << " HtapMixSweep entries into " << json_path << "\n";
    } else {
      return 1;
    }
  }

  if (!flip_found) {
    std::cout << "\nNO mixed optimum found: every HTAP ratio matched a pure "
                 "optimum.\n";
    return 1;
  }
  std::cout << "\nAt least one mix ratio has an optimal layout matching "
               "neither the pure-OLTP nor the pure-DSS optimum: "
               "provisioning for either side alone misplaces the shared "
               "objects.\n";
  return 0;
}
