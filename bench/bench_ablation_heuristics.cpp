// Ablation study of DOT's design choices (DESIGN.md §3), judged against the
// exhaustive-search optimum on the §4.4.3 subset instance:
//
//   full DOT      — object-group moves, TOC-non-worsening acceptance,
//                   convergence sweeps (this library's default);
//   literal P1    — Procedure 1 exactly as printed in the paper: any
//                   feasible move is kept, single pass;
//   no grouping   — per-object moves (prior work's enumeration, §3.1):
//                   table/index interaction ignored;
//   single sweep  — grouped + non-worsening but no convergence passes;
//   OA            — the Object Advisor baseline;
//   ES            — the optimum.
//
// Expected: full DOT ≈ ES; removing the acceptance refinement or the
// grouping measurably hurts TOC, motivating both.

#include <iostream>

#include "bench/bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"

int main() {
  using namespace dot;
  using dot::bench::Instance;
  using dot::bench::TpchVariant;
  std::cout << "=== Ablation: DOT design choices vs the ES optimum "
               "(TPC-H subset, SLA 0.5) ===\n";

  for (int box = 1; box <= 2; ++box) {
    auto inst = Instance::Tpch(box, TpchVariant::kEsSubset);
    const DotProblem base = inst->Problem(0.5);
    const DotResult es = ExhaustiveSearch(base);

    TablePrinter t({"variant", "TOC (c/query)", "vs ES", "resp time (min)",
                    "layouts"});
    auto add = [&](const std::string& name, const DotResult& r) {
      if (!r.status.ok()) {
        t.AddRow({name, "infeasible", "-", "-",
                  StrPrintf("%lld", r.layouts_evaluated)});
        return;
      }
      t.AddRow({name, StrPrintf("%.5f", r.toc_cents_per_task),
                StrPrintf("%.2fx",
                          r.toc_cents_per_task / es.toc_cents_per_task),
                dot::bench::Minutes(r.estimate.elapsed_ms),
                StrPrintf("%lld", r.layouts_evaluated)});
    };

    add("ES (optimum)", es);
    add("full DOT", DotOptimizer(base).Optimize());

    DotProblem literal = base;
    literal.options.acceptance = MoveAcceptance::kAnyFeasible;
    literal.options.max_sweeps = 1;
    add("literal Procedure 1", DotOptimizer(literal).Optimize());

    DotProblem ungrouped = base;
    ungrouped.options.group_objects = false;
    add("no object grouping", DotOptimizer(ungrouped).Optimize());

    DotProblem one_sweep = base;
    one_sweep.options.max_sweeps = 1;
    add("single sweep", DotOptimizer(one_sweep).Optimize());

    // OA evaluated under the same targets.
    DotOptimizer estimator(base);
    const std::vector<int> oa = ObjectAdvisorPlacement(base);
    PerfEstimate oa_est;
    const double oa_toc = estimator.EstimateToc(oa, &oa_est);
    const bool oa_ok = MeetsTargets(oa_est, estimator.targets());
    t.AddRow({"Object Advisor",
              StrPrintf("%.5f%s", oa_toc, oa_ok ? "" : " (misses SLA)"),
              StrPrintf("%.2fx", oa_toc / es.toc_cents_per_task),
              dot::bench::Minutes(oa_est.elapsed_ms), "1"});

    std::cout << "\n--- " << inst->box().name << " ---\n";
    t.Print(std::cout);
  }

  // Second act: the modified (probe-heavy) workload, where the table/index
  // interaction carries real weight — Q2-style plans only pay off when the
  // table AND its index sit on fast-random-read storage together.
  std::cout << "\n=== Same ablation, modified TPC-H (full schema, SLA 0.5) "
               "===\n";
  for (int box = 1; box <= 2; ++box) {
    auto inst = Instance::Tpch(box, TpchVariant::kModified);
    const DotProblem base = inst->Problem(0.5);

    TablePrinter t({"variant", "TOC (c/query)", "resp time (min)",
                    "layouts"});
    auto add = [&](const std::string& name, const DotResult& r) {
      if (!r.status.ok()) {
        t.AddRow({name, "infeasible", "-",
                  StrPrintf("%lld", r.layouts_evaluated)});
        return;
      }
      t.AddRow({name, StrPrintf("%.5f", r.toc_cents_per_task),
                dot::bench::Minutes(r.estimate.elapsed_ms),
                StrPrintf("%lld", r.layouts_evaluated)});
    };
    add("full DOT", DotOptimizer(base).Optimize());
    DotProblem literal = base;
    literal.options.acceptance = MoveAcceptance::kAnyFeasible;
    literal.options.max_sweeps = 1;
    add("literal Procedure 1", DotOptimizer(literal).Optimize());
    DotProblem ungrouped = base;
    ungrouped.options.group_objects = false;
    add("no object grouping", DotOptimizer(ungrouped).Optimize());

    std::cout << "\n--- " << inst->box().name << " ---\n";
    t.Print(std::cout);
  }
  return 0;
}
