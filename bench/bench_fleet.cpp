// Fleet-scale provisioning: N tenants under one budget vs. going it alone.
//
// Synthetic fleets of N = 1e2..1e4 tenants drawn from the fixed
// OLTP/DSS/HTAP class roster (fleet/synthetic_fleet.h) share one Box 2
// catalog and one fleet-wide budget. For each N the budget sweeps down
// from the unconstrained fleet cost; at every point the coupled
// FleetPlanner (Lagrangian price decomposition + exchange repair, behind
// dot::Solve's kFleet method) competes against the per-tenant-independent
// baseline, where each tenant provisions alone on a size-proportional
// fair share of the budget — the allocation a fleet operator without
// cross-tenant coordination would sell.
//
// The coupled planner can never lose (the baseline is itself a candidate
// selection it considers) and should win strictly once the budget binds:
// fair shares strand budget on tenants that cannot use it while starving
// tenants whose next-cheaper candidate is a TOC cliff, and prices move
// exactly that slack. Pools are shared per schema fingerprint, so the
// planner builds `num_classes` pools however large the fleet is — the
// O(distinct schemas) memory claim, checked here via the pool_builds
// counter staying flat across N.
//
// Exit status: 0 when
//   * every feasible sweep point has fleet TOC <= independent baseline
//     (when the baseline is feasible at all),
//   * some binding-budget point strictly beats the baseline,
//   * pool_builds == num_classes at every N (flat across N),
//   * placements, totals and counters are bit-identical at 1, 4 and
//     hardware threads on a binding point,
// 1 otherwise.
//
// `--full` extends the sweep to N=1e4 (the `slow`-labeled ctest entry and
// the nightly-bench job run this). `--json[=path]` merges one entry per
// sweep point (named Fleet/...) into the google-benchmark-format JSON
// file (default BENCH_optimizer.json), alongside the other suites.

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "dot/dot.h"

namespace {

using namespace dot;

/// One fleet solve through the facade. The fleet outlives the call.
SolveResult RunFleet(const SyntheticFleet& fleet, double budget,
                     int num_threads) {
  FleetSpec fleet_spec;
  fleet_spec.tenants = &fleet.tenants;
  fleet_spec.config.constraints.budget_cents_per_hour = budget;
  DotProblem problem;
  problem.box = fleet.box.get();
  problem.options.num_threads = num_threads;
  SolveSpec spec;
  spec.method = SolveMethod::kFleet;
  spec.fleet = &fleet_spec;
  return Solve(problem, spec);
}

bool SamePlan(const FleetPlan& a, const FleetPlan& b) {
  if (a.tenants.size() != b.tenants.size()) return false;
  for (size_t i = 0; i < a.tenants.size(); ++i) {
    if (a.tenants[i].placement != b.tenants[i].placement) return false;
    if (a.tenants[i].toc_cents_per_task != b.tenants[i].toc_cents_per_task) {
      return false;
    }
  }
  return a.total_toc_cents_per_task == b.total_toc_cents_per_task &&
         a.total_cost_cents_per_hour == b.total_cost_cents_per_hour &&
         a.min_cost_cents_per_hour == b.min_cost_cents_per_hour &&
         a.used_gb == b.used_gb &&
         a.independent_toc_cents_per_task ==
             b.independent_toc_cents_per_task &&
         a.pool_builds == b.pool_builds &&
         a.pool_cache_hits == b.pool_cache_hits &&
         a.price_iterations_run == b.price_iterations_run &&
         a.exchange_moves == b.exchange_moves &&
         a.improve_moves == b.improve_moves &&
         a.layouts_evaluated == b.layouts_evaluated;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_optimizer.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      std::cerr << "unknown flag " << argv[i]
                << " (flags: --full --json[=path])\n";
      return 1;
    }
  }

  const uint64_t seed = 17;
  std::vector<int> fleet_sizes = {100, 1000};
  if (full) fleet_sizes.push_back(10000);
  // Budget interpolated between the fleet's cost floor (every tenant on
  // its cheapest candidate — FleetPlan::min_cost_cents_per_hour; nothing
  // is feasible below it) and the unconstrained solo-optima cost. 1.0 is
  // the slack sanity point, everything below binds.
  const std::vector<double> fractions = {1.0, 0.75, 0.5, 0.25, 0.1, 0.0};

  bool never_lost = true;
  bool strict_win = false;
  bool pools_flat = true;
  int pool_builds_expected = -1;
  std::vector<std::string> json_entries;

  std::cout << "=== Fleet provisioning: coupled planner vs per-tenant "
               "fair-share baseline (Box 2, seed "
            << seed << ") ===\n";

  for (int n : fleet_sizes) {
    SyntheticFleet fleet = MakeSyntheticFleet(n, seed);
    const SolveResult free_run = RunFleet(fleet, /*budget=*/0.0, 0);
    if (!free_run.status.ok()) {
      std::cerr << "unconstrained fleet solve failed at N=" << n << ": "
                << free_run.status.ToString() << "\n";
      return 1;
    }
    const double cost0 = free_run.fleet.total_cost_cents_per_hour;
    const double floor = free_run.fleet.min_cost_cents_per_hour;

    if (pool_builds_expected < 0) {
      pool_builds_expected = free_run.fleet.pool_builds;
    }
    // The O(distinct schemas) claim: pools built == tenant classes, at
    // every fleet size.
    if (free_run.fleet.pool_builds != fleet.num_classes ||
        free_run.fleet.pool_builds != pool_builds_expected) {
      pools_flat = false;
    }

    std::cout << "\nN=" << n << " tenants, " << fleet.num_classes
              << " tenant classes, unconstrained cost "
              << StrPrintf("%.1f", cost0) << " cents/h, cost floor "
              << StrPrintf("%.1f", floor) << ", "
              << free_run.fleet.pool_builds << " pools built, "
              << free_run.fleet.pool_cache_hits << " cache hits\n";
    TablePrinter t({"budget slack", "feasible", "fleet TOC (c/task)",
                    "independent TOC", "saved", "exch moves",
                    "price iters", "plan (ms)"});

    for (double f : fractions) {
      const double budget = floor + f * (cost0 - floor);
      const SolveResult r = RunFleet(fleet, budget, 0);
      if (!r.status.ok()) {
        t.AddRow({StrPrintf("%.2f", f), "no (" +
                  std::string(StatusCodeName(r.status.code())) + ")", "-",
                  "-", "-", "-", "-", "-"});
        continue;
      }
      const FleetPlan& plan = r.fleet;
      const bool binding = f < 1.0;
      if (plan.independent_feasible) {
        if (plan.total_toc_cents_per_task >
            plan.independent_toc_cents_per_task) {
          never_lost = false;
        }
        if (binding &&
            plan.total_toc_cents_per_task <
                plan.independent_toc_cents_per_task * (1.0 - 1e-12)) {
          strict_win = true;
        }
      }
      const double saved =
          plan.independent_toc_cents_per_task > 0.0
              ? 100.0 *
                    (plan.independent_toc_cents_per_task -
                     plan.total_toc_cents_per_task) /
                    plan.independent_toc_cents_per_task
              : 0.0;
      t.AddRow({StrPrintf("%.2f", f),
                plan.independent_feasible ? "yes" : "yes (baseline not)",
                bench::Sci(plan.total_toc_cents_per_task),
                bench::Sci(plan.independent_toc_cents_per_task),
                StrPrintf("%.2f%%", saved),
                StrPrintf("%d", plan.exchange_moves),
                StrPrintf("%d", plan.price_iterations_run),
                StrPrintf("%.1f", plan.plan_ms)});
      if (!json_path.empty()) {
        json_entries.push_back(bench::MakeBenchmarkJsonEntry(
            StrPrintf("Fleet/N=%d/slack=%.2f", n, f), plan.plan_ms,
            {{"tenants", static_cast<double>(n)},
             {"fleet_toc_cents_per_task", plan.total_toc_cents_per_task},
             {"independent_toc_cents_per_task",
              plan.independent_toc_cents_per_task},
             {"saved_pct", saved},
             {"pool_builds", static_cast<double>(plan.pool_builds)},
             {"pool_cache_hits",
              static_cast<double>(plan.pool_cache_hits)},
             {"exchange_moves", static_cast<double>(plan.exchange_moves)},
             {"layouts_evaluated",
              static_cast<double>(plan.layouts_evaluated)}}));
      }
    }
    t.Print(std::cout);
  }

  // Thread-count determinism on a binding point of the mid-size fleet:
  // placements, totals and every counter must match bit for bit.
  bool deterministic = true;
  {
    SyntheticFleet fleet = MakeSyntheticFleet(1000, seed);
    const SolveResult free_run = RunFleet(fleet, 0.0, 1);
    if (!free_run.status.ok()) {
      std::cerr << "determinism probe failed: "
                << free_run.status.ToString() << "\n";
      return 1;
    }
    // Halfway between the cost floor and the unconstrained cost: always
    // feasible, always binding.
    const double budget =
        0.5 * (free_run.fleet.min_cost_cents_per_hour +
               free_run.fleet.total_cost_cents_per_hour);
    const SolveResult one = RunFleet(fleet, budget, 1);
    const int hw =
        static_cast<int>(std::thread::hardware_concurrency());
    for (int threads : {4, hw}) {
      const SolveResult r = RunFleet(fleet, budget, threads);
      if (!r.status.ok() || !one.status.ok() ||
          !SamePlan(one.fleet, r.fleet)) {
        deterministic = false;
        std::cerr << "NONDETERMINISM at " << threads << " threads\n";
      }
    }
    std::cout << "\nthread determinism (N=1000, binding budget): "
              << (deterministic ? "bit-identical at 1/4/" : "FAILED at ")
              << hw << " threads\n";
  }

  if (!json_path.empty()) {
    if (bench::MergeBenchmarkJson(json_path, "Fleet/", json_entries)) {
      std::cout << "merged " << json_entries.size()
                << " Fleet entries into " << json_path << "\n";
    } else {
      return 1;
    }
  }

  if (!never_lost) {
    std::cout << "\nFAIL: the coupled fleet lost to the independent "
                 "fair-share baseline at some sweep point.\n";
    return 1;
  }
  if (!strict_win) {
    std::cout << "\nFAIL: no binding-budget point strictly beat the "
                 "baseline — fleet coordination bought nothing.\n";
    return 1;
  }
  if (!pools_flat) {
    std::cout << "\nFAIL: pool_builds deviated from the class count, so "
                 "pool memory is not O(distinct schemas).\n";
    return 1;
  }
  if (!deterministic) return 1;
  std::cout << "\nThe coupled fleet never loses to per-tenant fair-share "
               "provisioning, wins strictly once the budget binds, and "
               "builds one candidate pool per tenant class regardless of "
               "fleet size.\n";
  return 0;
}
