#ifndef DOTPROV_BENCH_BENCH_COMMON_H_
#define DOTPROV_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dot/dot.h"

namespace dot {
namespace bench {

/// Which TPC-H template set an instance runs.
enum class TpchVariant {
  kOriginal,  ///< 22 templates x 3 (§4.4.1)
  kModified,  ///< 5 selective templates x 20 (§4.4.2)
  kEsSubset,  ///< 11 templates x 3 on 8 objects (§4.4.3)
};

/// One fully-wired provisioning instance: schema + box + workload model +
/// §3.4 workload profiles, ready to build DotProblems at any SLA.
class Instance {
 public:
  /// TPC-H instance on the given box (1 or 2).
  static std::unique_ptr<Instance> Tpch(int box, TpchVariant variant);

  /// TPC-C instance (test-run profiling, §4.5.1).
  static std::unique_ptr<Instance> Tpcc(int box);

  /// Instance over an arbitrary box with the TPC-H original workload
  /// (used by the generalized-provisioning bench).
  static std::unique_ptr<Instance> TpchOnBox(BoxConfig box,
                                             TpchVariant variant);

  DotProblem Problem(double relative_sla) const;

  const Schema& schema() const { return schema_; }
  const BoxConfig& box() const { return box_; }
  const WorkloadModel& model() const { return *model_; }

  /// Runs DOT at the given SLA. Aborts on infeasibility.
  DotResult RunDot(double relative_sla) const;

  /// TOC (cents/task), estimate, and PSR of an arbitrary placement under
  /// the targets implied by `relative_sla`.
  struct Evaluation {
    double toc_cents_per_task;
    double layout_cost_cents_per_hour;
    PerfEstimate estimate;
    double psr;
  };
  Evaluation Evaluate(const std::vector<int>& placement,
                      double relative_sla) const;

 private:
  Instance() = default;

  Schema schema_;
  BoxConfig box_;
  std::unique_ptr<DssWorkloadModel> dss_;
  std::unique_ptr<OltpWorkloadModel> oltp_;
  WorkloadModel* model_ = nullptr;
  std::unique_ptr<WorkloadProfiles> profiles_;
};

/// "1.23e-04"-style short scientific formatting used in the tables.
std::string Sci(double v);

/// Minutes with one decimal.
std::string Minutes(double ms);

/// Merges benchmark entries into a google-benchmark-format JSON file —
/// the mechanism by which plain-main benches (bench_htap_mix) contribute
/// trajectory points to the same BENCH_optimizer.json the
/// google-benchmark suite writes. Each element of `entry_blocks` must be
/// one complete JSON object rendered at 4-space indent (the
/// google-benchmark layout). If `path` already holds a file with a
/// "benchmarks" array, entries whose "name" starts with `name_prefix` are
/// dropped (idempotent re-runs) and the new blocks are appended to the
/// array; otherwise a fresh file with a minimal context is written.
/// Returns false (with a note on stderr) when the file exists but cannot
/// be understood — the trajectory artifact is never clobbered.
bool MergeBenchmarkJson(const std::string& path,
                        const std::string& name_prefix,
                        const std::vector<std::string>& entry_blocks);

/// Renders one google-benchmark-style entry block for MergeBenchmarkJson:
/// a run named `name` taking `real_time_ms`, with `counters` (label,
/// value) pairs appended as numeric fields.
std::string MakeBenchmarkJsonEntry(
    const std::string& name, double real_time_ms,
    const std::vector<std::pair<std::string, double>>& counters);

}  // namespace bench
}  // namespace dot

#endif  // DOTPROV_BENCH_BENCH_COMMON_H_
