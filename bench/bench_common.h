#ifndef DOTPROV_BENCH_BENCH_COMMON_H_
#define DOTPROV_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "dot/dot.h"

namespace dot {
namespace bench {

/// Which TPC-H template set an instance runs.
enum class TpchVariant {
  kOriginal,  ///< 22 templates x 3 (§4.4.1)
  kModified,  ///< 5 selective templates x 20 (§4.4.2)
  kEsSubset,  ///< 11 templates x 3 on 8 objects (§4.4.3)
};

/// One fully-wired provisioning instance: schema + box + workload model +
/// §3.4 workload profiles, ready to build DotProblems at any SLA.
class Instance {
 public:
  /// TPC-H instance on the given box (1 or 2).
  static std::unique_ptr<Instance> Tpch(int box, TpchVariant variant);

  /// TPC-C instance (test-run profiling, §4.5.1).
  static std::unique_ptr<Instance> Tpcc(int box);

  /// Instance over an arbitrary box with the TPC-H original workload
  /// (used by the generalized-provisioning bench).
  static std::unique_ptr<Instance> TpchOnBox(BoxConfig box,
                                             TpchVariant variant);

  DotProblem Problem(double relative_sla) const;

  const Schema& schema() const { return schema_; }
  const BoxConfig& box() const { return box_; }
  const WorkloadModel& model() const { return *model_; }

  /// Runs DOT at the given SLA. Aborts on infeasibility.
  DotResult RunDot(double relative_sla) const;

  /// TOC (cents/task), estimate, and PSR of an arbitrary placement under
  /// the targets implied by `relative_sla`.
  struct Evaluation {
    double toc_cents_per_task;
    double layout_cost_cents_per_hour;
    PerfEstimate estimate;
    double psr;
  };
  Evaluation Evaluate(const std::vector<int>& placement,
                      double relative_sla) const;

 private:
  Instance() = default;

  Schema schema_;
  BoxConfig box_;
  std::unique_ptr<DssWorkloadModel> dss_;
  std::unique_ptr<OltpWorkloadModel> oltp_;
  WorkloadModel* model_ = nullptr;
  std::unique_ptr<WorkloadProfiles> profiles_;
};

/// "1.23e-04"-style short scientific formatting used in the tables.
std::string Sci(double v);

/// Minutes with one decimal.
std::string Minutes(double ms);

}  // namespace bench
}  // namespace dot

#endif  // DOTPROV_BENCH_BENCH_COMMON_H_
