// Reproduces Figure 7: the modified TPC-H workload with the SLA relaxed to
// 0.25. Expected shape (§4.4.2): DOT's TOC is ~5x lower than All H-SSD at
// 100% PSR, and bulk data (lineitem) moves off the H-SSD to HDD RAID 0 on
// Box 1 / L-SSD RAID 0 on Box 2 (layouts printed below the figure).

#include <iostream>

#include "bench/bench_tpch_figure.h"

int main() {
  std::cout
      << "=== Figure 7: modified TPC-H workload, relative SLA 0.25 ===\n";
  dot::bench::RunTpchComparisonFigure(dot::bench::TpchVariant::kModified,
                                      0.25, std::cout);
  std::cout << "\nLayouts at SLA 0.25 (paper: bulk data moves to the "
               "cheaper RAID 0 classes):\n";
  dot::bench::PrintDotLayouts(dot::bench::TpchVariant::kModified, 0.25,
                              std::cout);
  return 0;
}
