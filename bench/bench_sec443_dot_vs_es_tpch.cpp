// Reproduces the §4.4.3 experiment: DOT vs Exhaustive Search on the
// TPC-H subset instance (8 objects: lineitem/orders/customer/part + their
// primary indices; 33 queries from 11 templates), relative SLA 0.5, with
// capacity limits on the HDD-class device of each box.
// Expected shape: DOT's response time within ~9% of ES, TOC within ~16%
// (in most cases), while evaluating orders of magnitude fewer layouts and
// finishing orders of magnitude faster.
//
// The paper could only run ES on this reduced instance; the second half of
// this bench runs the same comparison on the FULL 16-object TPC-H schema
// (3^16 ≈ 43M layouts, 66 queries from all 22 templates) with the exact
// branch-and-bound search as the ground truth — bit-identical optima to
// enumeration, reached by pruning >99% of the tree.

#include <iostream>

#include "bench/bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "dot/bnb_search.h"

namespace {

void RunBox(int box_index, int capped_class,
            const std::vector<double>& caps_gb) {
  using namespace dot;
  using dot::bench::Instance;
  using dot::bench::TpchVariant;

  BoxConfig box = box_index == 1 ? MakeBox1() : MakeBox2();
  std::cout << "\n--- " << box.name << " (cap on "
            << box.classes[capped_class].name() << ") ---\n";
  TablePrinter t({"cap (GB)", "method", "TOC (c/query)", "resp time (min)",
                  "layouts", "optimize (ms)", "DOT/ES TOC", "DOT/ES time"});

  for (double cap : caps_gb) {
    BoxConfig capped = box;
    if (cap > 0) capped.classes[capped_class].set_capacity_gb(cap);
    auto inst =
        Instance::TpchOnBox(capped, TpchVariant::kEsSubset);
    DotProblem problem = inst->Problem(0.5);
    DotResult dot_r = DotOptimizer(problem).Optimize();
    DotResult es_r = ExhaustiveSearch(problem);
    const std::string cap_label =
        cap > 0 ? StrPrintf("%.0f", cap) : std::string("No limit");
    if (!dot_r.status.ok() || !es_r.status.ok()) {
      t.AddRow({cap_label, "both", "infeasible", "-", "-", "-", "-", "-"});
      continue;
    }
    t.AddRow({cap_label, "ES", StrPrintf("%.5f", es_r.toc_cents_per_task),
              dot::bench::Minutes(es_r.estimate.elapsed_ms),
              StrPrintf("%lld", es_r.layouts_evaluated),
              StrPrintf("%.0f", es_r.optimize_ms), "", ""});
    t.AddRow({cap_label, "DOT", StrPrintf("%.5f", dot_r.toc_cents_per_task),
              dot::bench::Minutes(dot_r.estimate.elapsed_ms),
              StrPrintf("%lld", dot_r.layouts_evaluated),
              StrPrintf("%.0f", dot_r.optimize_ms),
              StrPrintf("%.3f",
                        dot_r.toc_cents_per_task / es_r.toc_cents_per_task),
              StrPrintf("%.3f", dot_r.estimate.elapsed_ms /
                                    es_r.estimate.elapsed_ms)});
    t.AddSeparator();
  }
  t.Print(std::cout);
}

void RunFullSchema(int box_index, int capped_class,
                   const std::vector<double>& caps_gb) {
  using namespace dot;
  using dot::bench::Instance;
  using dot::bench::TpchVariant;

  BoxConfig box = box_index == 1 ? MakeBox1() : MakeBox2();
  std::cout << "\n--- " << box.name << ", full schema (cap on "
            << box.classes[capped_class].name() << ") ---\n";
  TablePrinter t({"cap (GB)", "method", "TOC (c/query)", "resp time (min)",
                  "leaves", "pruned %", "optimize (ms)", "DOT/BnB TOC"});

  for (double cap : caps_gb) {
    BoxConfig capped = box;
    if (cap > 0) capped.classes[capped_class].set_capacity_gb(cap);
    auto inst = Instance::TpchOnBox(capped, TpchVariant::kOriginal);
    DotProblem problem = inst->Problem(0.5);
    problem.options.num_threads = 0;  // all lanes: the exact tree is the hard part
    DotResult dot_r = DotOptimizer(problem).Optimize();
    DotResult bnb_r = ExactSearch(problem, ExactStrategy::kBranchAndBound);
    const std::string cap_label =
        cap > 0 ? StrPrintf("%.0f", cap) : std::string("No limit");
    if (!dot_r.status.ok() || !bnb_r.status.ok()) {
      t.AddRow({cap_label, "both", "infeasible", "-", "-", "-", "-", "-"});
      continue;
    }
    const double pruned_pct =
        100.0 * static_cast<double>(bnb_r.layouts_pruned) /
        static_cast<double>(bnb_r.layouts_pruned + bnb_r.layouts_evaluated);
    t.AddRow({cap_label, "BnB", StrPrintf("%.5f", bnb_r.toc_cents_per_task),
              dot::bench::Minutes(bnb_r.estimate.elapsed_ms),
              StrPrintf("%lld", bnb_r.layouts_evaluated),
              StrPrintf("%.3f", pruned_pct),
              StrPrintf("%.0f", bnb_r.optimize_ms), ""});
    t.AddRow({cap_label, "DOT", StrPrintf("%.5f", dot_r.toc_cents_per_task),
              dot::bench::Minutes(dot_r.estimate.elapsed_ms),
              StrPrintf("%lld", dot_r.layouts_evaluated), "-",
              StrPrintf("%.0f", dot_r.optimize_ms),
              StrPrintf("%.3f", dot_r.toc_cents_per_task /
                                    bnb_r.toc_cents_per_task)});
    t.AddSeparator();
  }
  t.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "=== Section 4.4.3: heuristics vs exhaustive search "
               "(TPC-H subset, SLA 0.5) ===\n";
  // Box 1: cap the HDD RAID 0 (class 0) at 24 GB and halvings (§4.4.3).
  RunBox(1, 0, {-1, 24, 12, 6});
  // Box 2: cap the HDD (class 0) at 8 GB and halvings.
  RunBox(2, 0, {-1, 8, 4, 2});

  std::cout << "\n=== Full TPC-H schema (16 objects, 3^16 layouts): DOT vs "
               "exact branch-and-bound ===\n";
  RunFullSchema(1, 0, {-1, 24, 12, 6});
  RunFullSchema(2, 0, {-1, 8, 4, 2});
  return 0;
}
