// Reproduces Table 2: the physical specifications of the three base storage
// devices, plus the §4.1 RAID controller line item and the derived
// storage-class catalog.

#include <iostream>

#include "common/str_util.h"
#include "common/table_printer.h"
#include "dot/dot.h"

int main() {
  using namespace dot;
  std::cout << "=== Table 2: storage class specifications ===\n\n";

  TablePrinter t({"", "HDD", "L-SSD", "H-SSD"});
  const DeviceSpec& hdd = StockDeviceSpec(StockClass::kHdd);
  const DeviceSpec& lssd = StockDeviceSpec(StockClass::kLssd);
  const DeviceSpec& hssd = StockDeviceSpec(StockClass::kHssd);
  auto row = [&](const char* label, auto get) {
    t.AddRow({label, get(hdd), get(lssd), get(hssd)});
  };
  row("Brand & model", [](const DeviceSpec& d) { return d.brand_model; });
  row("Flash type", [](const DeviceSpec& d) { return d.flash_type; });
  row("Capacity", [](const DeviceSpec& d) {
    return StrPrintf("%.0fGB", d.capacity_gb);
  });
  row("Interface", [](const DeviceSpec& d) { return d.interface; });
  row("Purchase cost", [](const DeviceSpec& d) {
    return StrPrintf("$%.0f", d.purchase_cost_cents / 100.0);
  });
  row("Power", [](const DeviceSpec& d) {
    return StrPrintf("%.1f Watts", d.power_watts);
  });
  t.Print(std::cout);

  const RaidControllerSpec& ctrl = StockRaidController();
  std::cout << StrPrintf(
      "\nRAID 0 groups: %d identical devices + controller ($%.0f, %.2f W)\n",
      ctrl.devices_per_group, ctrl.cost_cents / 100.0, ctrl.power_watts);

  std::cout << "\nDerived storage-class catalog (36-month amortization + "
               "$0.07/kWh energy):\n";
  TablePrinter c({"class", "capacity (GB)", "price (cents/GB/hour)"});
  for (int i = 0; i < kNumStockClasses; ++i) {
    const StorageClass sc = MakeStockClass(static_cast<StockClass>(i));
    c.AddRow({sc.name(), StrPrintf("%.0f", sc.capacity_gb()),
              StrPrintf("%.3e", sc.price_cents_per_gb_hour())});
  }
  c.Print(std::cout);
  return 0;
}
