// Reproduces the §5.2 extension: DOT under the discrete-sized storage cost
// model, sweeping the α blend between the purely linear (α=0) and purely
// per-device (α=1) charging schemes.
// Expected shape: as α grows, partially filling an extra storage class gets
// relatively more expensive, so DOT consolidates objects onto fewer classes
// and the layout cost curve rises toward the whole-device price.

#include <iostream>

#include "bench/bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"

int main() {
  using namespace dot;
  using dot::bench::Instance;
  using dot::bench::TpchVariant;
  std::cout << "=== §5.2: discrete-sized storage cost model, alpha sweep "
               "(original TPC-H, Box 2, SLA 0.25) ===\n\n";
  auto inst = Instance::Tpch(2, TpchVariant::kOriginal);

  TablePrinter t({"alpha", "TOC (c/query)", "cost (cents/hour)",
                  "classes used", "layout (GB per class)"});
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    DotProblem problem = inst->Problem(0.25);
    problem.cost_model.discrete = true;
    problem.cost_model.alpha = alpha;
    SolveSpec spec;
    spec.method = SolveMethod::kDotHeuristic;
    const SolveResult solved = Solve(problem, spec);
    const DotResult& r = solved.dot;
    if (!r.status.ok()) {
      t.AddRow({StrPrintf("%.2f", alpha), "infeasible", "-", "-", "-"});
      continue;
    }
    Layout layout(&inst->schema(), &inst->box(), r.placement);
    const SpaceUsage used = layout.SpaceByClass();
    int classes_used = 0;
    std::string gb;
    for (size_t j = 0; j < used.size(); ++j) {
      if (used[j] > 0) ++classes_used;
      if (!gb.empty()) gb += " / ";
      gb += StrPrintf("%.1f", used[j]);
    }
    t.AddRow({StrPrintf("%.2f", alpha),
              StrPrintf("%.5f", r.toc_cents_per_task),
              StrPrintf("%.4f", r.layout_cost_cents_per_hour),
              StrPrintf("%d", classes_used), gb});
  }
  t.Print(std::cout);
  return 0;
}
