// Robust vs point-forecast planning under workload uncertainty
// (DESIGN.md §10): the same TPC-H instance is planned twice — once from
// the nominal forecast alone, once over a sampled scenario ensemble with a
// tail-latency target — and both layouts are then priced on *out-of-sample*
// noisy traces the planner never saw. Sweeping the forecast-error scale
// crosses the regimes: at low noise the two plans coincide (robustness is
// free); as the error grows the point plan's layout starts missing its
// caps in bad windows while the robust plan, which already paid for the
// miss mass it sampled, keeps its realized TOC and its tail compliance.
//
// The tail-SLA arm is calibrated, not assumed: the per-window latency cv
// is measured from jittered Executor runs (CalibrateLatencyCv) and folded
// into the robust plan's caps via the lognormal tail factor.
//
// Realized cost uses the SLA-credit accounting standard for provisioning
// under service contracts: a window pays its measured TOC x duration
// *plus* a credit proportional to the fraction of queries that missed
// their caps in that window. Raw TOC alone cannot price robustness — a
// layout that blows every cap still looks cheap — so the credit is what
// the constraint was protecting. Its price is not hand-tuned: one hour
// fully out of SLA forfeits kSlaCreditScale times what the box's own
// all-premium configuration charges per task-hour, both plans pay the
// same tariff, and the table reports the raw and penalized totals side by
// side.
//
// Exit status: 0 when, at every sweep point, robust <= point on realized
// out-of-sample cost (1e-9 tolerance), robust strictly beats point
// somewhere, robust's tail-SLA compliance is strictly better somewhere,
// AND the robust placement is bit-identical at 1, 4 and all hardware
// threads. 1 otherwise.
//
// `--json[=path]` merges one RobustVsPoint/ entry per sweep point into the
// BENCH_optimizer.json trajectory artifact.

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "dot/dot.h"

namespace {

using namespace dot;

/// Timing jitter of every simulated Executor run in this bench — both the
/// calibration runs and the out-of-sample replays.
constexpr double kExecNoiseCv = 0.15;

/// Forecast-side sampling: what the robust planner optimizes over.
constexpr int kEnsembleSize = 12;
constexpr uint64_t kEnsembleSeed = 101;

/// Out-of-sample reality: disjoint seed, more draws than the planner saw.
constexpr int kReplayWindows = 32;
constexpr uint64_t kReplaySeed = 202;

/// An hour fully out of SLA forfeits this many times the all-premium
/// layout's nominal TOC (the box's own price ceiling) — the SLA-credit
/// tariff both plans are billed under.
constexpr double kSlaCreditScale = 4.0;

std::string PlacementString(const std::vector<int>& placement) {
  std::string s;
  for (int c : placement) s += static_cast<char>('0' + c);
  return s;
}

/// Mean per-window PSR of a replay against fixed targets: the fraction of
/// (window, query) pairs whose *measured* time met its cap.
double MeanCompliance(const TrackReplayResult& replay,
                      const PerfTargets& targets) {
  if (replay.windows.empty()) return 0.0;
  double sum = 0.0;
  for (const TrackWindowRun& run : replay.windows) {
    sum += Psr(run.measured, targets);
  }
  return sum / static_cast<double>(replay.windows.size());
}

/// Realized cost under the SLA-credit model: measured TOC x duration plus
/// `credit` x (missed query fraction) x duration, summed over windows.
double PenalizedTotal(const TrackReplayResult& replay,
                      const PerfTargets& targets, double credit) {
  double total = 0.0;
  for (const TrackWindowRun& run : replay.windows) {
    // window_objective = measured TOC x duration, so the duration the
    // credit scales by is objective / toc.
    const double duration = run.toc_cents_per_task > 0.0
                                ? run.window_objective / run.toc_cents_per_task
                                : 0.0;
    total += run.window_objective +
             credit * (1.0 - Psr(run.measured, targets)) * duration;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_optimizer.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::cerr << "unknown flag " << argv[i] << " (only --json[=path])\n";
      return 2;
    }
  }

  const auto instance =
      bench::Instance::Tpch(1, bench::TpchVariant::kEsSubset);
  const Schema& schema = instance->schema();
  const BoxConfig& box = instance->box();
  const WorkloadModel& model = instance->model();
  const int num_objects = schema.NumObjects();

  DotProblem nominal = instance->Problem(0.5);
  nominal.options.num_threads = 0;

  // --- calibrate the tail model against the jittered Executor ----------
  // A short noiseless-drift trace on the nominal optimum: the only
  // variation across windows is the Executor's timing jitter, so the
  // per-window latency samples estimate exactly the cv the lognormal tail
  // approximation needs.
  const SolveResult nominal_solve = Solve(nominal);
  if (!nominal_solve.status.ok()) {
    std::cerr << "nominal solve failed: "
              << nominal_solve.status.ToString() << "\n";
    return 1;
  }
  WorkloadTraceSpec calibration;
  for (int w = 0; w < 16; ++w) {
    TraceWindow window;
    window.workload = &model;
    window.duration_hours = 1.0;
    calibration.windows.push_back(window);
  }
  const WorkloadTrace calibration_trace = RecordTraceWithExecutor(
      calibration, nominal_solve.placement, kExecNoiseCv);
  std::vector<double> latency_samples;
  for (const TraceEvent& event : calibration_trace.events) {
    if (event.measured_tasks_per_hour > 0.0) {
      latency_samples.push_back(1.0 / event.measured_tasks_per_hour);
    }
  }
  TailSla tail;
  tail.percentile = 0.95;
  tail.latency_cv = CalibrateLatencyCv(latency_samples);

  // The SLA-credit tariff: priced off the box's own ceiling so it is a
  // property of the instance, not a tuning knob.
  const std::vector<int> premium =
      UniformPlacement(num_objects, box.MostExpensiveClass());
  const double credit_cents_per_task =
      kSlaCreditScale * instance->Evaluate(premium, 0.5).toc_cents_per_task;

  std::cout << "=== Robust vs point planning: " << num_objects
            << " TPC-H objects on " << box.name << ", ensemble K="
            << kEnsembleSize << ", " << kReplayWindows
            << " out-of-sample windows ===\n"
            << "calibrated latency cv " << FormatSig(tail.latency_cv, 3)
            << " from " << latency_samples.size()
            << " jittered runs -> p95 tail factor "
            << FormatSig(TailLatencyFactor(0.95, tail.latency_cv), 4)
            << "\nSLA credit: " << FormatSig(credit_cents_per_task, 3)
            << " cents/task per fully-missed hour (" << kSlaCreditScale
            << "x the all-premium TOC)\n\n";

  struct SweepPoint {
    double io_scale_cv;
    EnsembleObjective objective;
    const char* objective_name;
  };
  EnsembleObjective expectation;
  EnsembleObjective cvar;
  cvar.kind = EnsembleObjective::Kind::kCVaR;
  cvar.alpha = 0.25;
  std::vector<SweepPoint> sweep;
  for (double cv : {0.15, 0.3, 0.5}) {
    sweep.push_back({cv, expectation, "E[TOC]"});
    sweep.push_back({cv, cvar, "CVaR.25"});
  }

  TablePrinter table({"noise cv", "objective", "sla", "robust plan",
                      "point plan", "robust toc", "point toc",
                      "robust cost", "point cost", "saved", "robust psr",
                      "point psr"});
  std::vector<std::string> json_entries;
  bool all_dominated = true;
  bool beat_cost_somewhere = false;
  bool beat_compliance_somewhere = false;

  for (const SweepPoint& point : sweep) {
    const auto t0 = std::chrono::steady_clock::now();

    ScenarioNoise noise;
    noise.num_scenarios = kEnsembleSize;
    noise.io_scale_cv = point.io_scale_cv;
    noise.count_cv = 0.05;
    noise.seed = kEnsembleSeed;
    const ScenarioEnsemble ensemble =
        SampleScenarioEnsemble(num_objects, noise);

    // The robust problem: scenario ensemble + calibrated tail target. The
    // chance constraint demands feasibility in *every* sampled scenario,
    // so the relative SLA is relaxed (Figure 2 idiom) until such a layout
    // exists — and the point plan then gets the exact same (relaxed,
    // mean-only) constraint, so the comparison is plan-vs-plan, not
    // constraint-vs-constraint.
    DotProblem robust_problem = nominal;
    robust_problem.ensemble = &ensemble;
    robust_problem.ensemble_objective = point.objective;
    robust_problem.tail_sla = tail;
    SolveResult robust;
    for (;;) {
      robust = Solve(robust_problem);
      if (robust.status.ok()) break;
      robust_problem.relative_sla *= 0.9;
      if (robust_problem.relative_sla < 0.02) {
        std::cerr << "no feasible SLA for the robust problem at cv "
                  << point.io_scale_cv << "\n";
        return 1;
      }
    }
    DotProblem point_problem = nominal;
    point_problem.relative_sla = robust_problem.relative_sla;
    const SolveResult forecast = Solve(point_problem);
    if (!forecast.status.ok()) {
      std::cerr << "point solve failed at cv " << point.io_scale_cv
                << "\n";
      return 1;
    }

    // Out-of-sample reality: fresh draws from the same noise family at a
    // disjoint seed (the planner's sampler, reused as the ground-truth
    // generator — same distribution, different future).
    ScenarioNoise replay_noise = noise;
    replay_noise.num_scenarios = kReplayWindows + 1;
    replay_noise.seed = kReplaySeed;
    const ScenarioEnsemble futures =
        SampleScenarioEnsemble(num_objects, replay_noise);
    WorkloadTraceSpec reality;
    for (int w = 1; w <= kReplayWindows; ++w) {
      TraceWindow window;
      window.workload = &model;
      window.io_scale = futures.scenarios[static_cast<size_t>(w)].io_scale;
      window.duration_hours = 1.0;
      reality.windows.push_back(window);
    }

    TrackReplayConfig replay;
    replay.cost_model = nominal.cost_model;
    replay.exec_noise_cv = kExecNoiseCv;
    const TrackReplayResult robust_real = ReplayLayoutTrack(
        reality,
        std::vector<std::vector<int>>(reality.windows.size(),
                                      robust.placement),
        schema, box, replay);
    const TrackReplayResult point_real = ReplayLayoutTrack(
        reality,
        std::vector<std::vector<int>>(reality.windows.size(),
                                      forecast.placement),
        schema, box, replay);
    if (!robust_real.status.ok() || !point_real.status.ok()) {
      std::cerr << "replay failed at cv " << point.io_scale_cv << "\n";
      return 1;
    }

    // Tail-SLA compliance: both plans judged by the same tail-tightened
    // caps at the sweep point's (relaxed) SLA.
    const PerfTargets tailed_targets = MakePerfTargets(
        model, box, num_objects, robust_problem.relative_sla,
        /*io_scale=*/{}, tail);
    const double robust_psr = MeanCompliance(robust_real, tailed_targets);
    const double point_psr = MeanCompliance(point_real, tailed_targets);
    const double robust_cost =
        PenalizedTotal(robust_real, tailed_targets, credit_cents_per_task);
    const double point_cost =
        PenalizedTotal(point_real, tailed_targets, credit_cents_per_task);

    all_dominated =
        all_dominated && robust_cost <= point_cost * (1 + 1e-9);
    beat_cost_somewhere =
        beat_cost_somewhere || robust_cost < point_cost * (1 - 1e-12);
    beat_compliance_somewhere =
        beat_compliance_somewhere || robust_psr > point_psr + 1e-12;

    const double saved_pct =
        point_cost > 0 ? 100.0 * (point_cost - robust_cost) / point_cost
                       : 0.0;
    table.AddRow({FormatSig(point.io_scale_cv, 2), point.objective_name,
                  StrPrintf("%.3f", robust_problem.relative_sla),
                  PlacementString(robust.placement),
                  PlacementString(forecast.placement),
                  bench::Sci(robust_real.total_objective),
                  bench::Sci(point_real.total_objective),
                  bench::Sci(robust_cost), bench::Sci(point_cost),
                  StrPrintf("%.2f%%", saved_pct),
                  StrPrintf("%.3f", robust_psr),
                  StrPrintf("%.3f", point_psr)});

    if (!json_path.empty()) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      json_entries.push_back(bench::MakeBenchmarkJsonEntry(
          StrPrintf("RobustVsPoint/cv=%g/%s", point.io_scale_cv,
                    point.objective_name),
          elapsed_ms,
          {{"realized_robust", robust_cost},
           {"realized_point", point_cost},
           {"toc_robust", robust_real.total_objective},
           {"toc_point", point_real.total_objective},
           {"compliance_robust", robust_psr},
           {"compliance_point", point_psr},
           {"relative_sla", robust_problem.relative_sla},
           {"layouts_evaluated",
            static_cast<double>(robust.provenance.layouts_evaluated)}}));
    }
  }
  std::cout << "toc: raw measured TOC x duration out of sample "
               "(cents-hour/task); cost: toc + SLA credits; psr: mean "
               "fraction of measured times meeting the p95-tightened caps\n";
  table.Print(std::cout);

  // Thread-count determinism of the robust decision, at the harshest
  // sweep point (highest noise, CVaR objective).
  ScenarioNoise harsh;
  harsh.num_scenarios = kEnsembleSize;
  harsh.io_scale_cv = 0.5;
  harsh.count_cv = 0.05;
  harsh.seed = kEnsembleSeed;
  const ScenarioEnsemble harsh_ensemble =
      SampleScenarioEnsemble(num_objects, harsh);
  DotProblem harsh_problem = nominal;
  harsh_problem.ensemble = &harsh_ensemble;
  harsh_problem.ensemble_objective = cvar;
  harsh_problem.tail_sla = tail;
  harsh_problem.relative_sla = 0.2;  // comfortably feasible
  std::cout << "\nthread-count determinism (cv 0.5, CVaR): ";
  harsh_problem.options.num_threads = 1;
  const SolveResult t1 = Solve(harsh_problem);
  harsh_problem.options.num_threads = 4;
  const SolveResult t4 = Solve(harsh_problem);
  harsh_problem.options.num_threads = 0;
  const SolveResult thw = Solve(harsh_problem);
  const bool deterministic =
      t1.status.ok() && t1.placement == t4.placement &&
      t1.placement == thw.placement &&
      t1.toc_cents_per_task == t4.toc_cents_per_task &&
      t1.toc_cents_per_task == thw.toc_cents_per_task;
  std::cout << (deterministic ? "identical placements and TOC\n"
                              : "DIVERGED\n");

  if (!json_path.empty()) {
    if (bench::MergeBenchmarkJson(json_path, "RobustVsPoint/",
                                  json_entries)) {
      std::cout << "\nmerged " << json_entries.size() << " entries into "
                << json_path << "\n";
    }
  }

  bool ok = true;
  if (!all_dominated) {
    std::cout << "\nFAIL: robust lost to the point plan on realized "
                 "out-of-sample cost somewhere on the sweep\n";
    ok = false;
  }
  if (!beat_cost_somewhere) {
    std::cout << "\nFAIL: robust never strictly beat the point plan on "
                 "realized cost\n";
    ok = false;
  }
  if (!beat_compliance_somewhere) {
    std::cout << "\nFAIL: robust never strictly beat the point plan on "
                 "tail-SLA compliance\n";
    ok = false;
  }
  if (!deterministic) {
    std::cout << "\nFAIL: robust decisions diverged across thread "
                 "counts\n";
    ok = false;
  }
  if (ok) {
    std::cout << "\nPASS: robust <= point everywhere, strictly better "
                 "cost and tail compliance somewhere, bit-identical "
                 "across thread counts\n";
  }
  return ok ? 0 : 1;
}
