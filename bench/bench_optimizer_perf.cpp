// Microbenchmarks (google-benchmark) for the optimizer machinery itself:
// DOT's optimization phase vs exhaustive search as the object count grows,
// move enumeration, profiling, and the planner. Complements the §4.4.3
// wall-clock comparison (paper: DOT ~9 s vs ES ~1,400 s on their TPC-H
// instance; ~3 s vs ~800 s on TPC-C).
//
// Usage: pass `--json` to additionally write the results (including the
// layouts_per_s throughput counters) to BENCH_optimizer.json — the
// machine-readable perf-trajectory format CI archives per commit. All
// other flags are standard google-benchmark flags.
//
// Every entry is tagged with a `kernel_level` counter (0 = scalar,
// 1 = avx2), and `--json` refuses to replace a trajectory file recorded at
// a different dispatch level: scalar and AVX2 points must never mix
// silently in one trajectory (run with DOT_KERNEL=<level> to match, or
// point --json=<path> at a fresh file).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd_dispatch.h"
#include "dot/dot.h"

namespace dot {
namespace {

/// Synthetic instance with `tables` tables (one PK index each) and a
/// simple per-table scan workload, on Box 1.
struct SyntheticInstance {
  Schema schema;
  BoxConfig box = MakeBox1();
  std::unique_ptr<DssWorkloadModel> workload;
  std::unique_ptr<WorkloadProfiles> profiles;

  explicit SyntheticInstance(int tables) {
    std::vector<QuerySpec> templates;
    for (int i = 0; i < tables; ++i) {
      const std::string name = "t" + std::to_string(i);
      const int id =
          schema.AddTable(name, 1e6 * (1 + i % 7), 100 + 10 * (i % 5));
      schema.AddIndex(name + "_pk", id, 8);
      QuerySpec q;
      q.name = "q" + std::to_string(i);
      RelationAccess ra;
      ra.table = name;
      ra.selectivity = (i % 3 == 0) ? 0.001 : 1.0;
      ra.index_sargable = i % 3 == 0;
      q.relations = {ra};
      templates.push_back(std::move(q));
    }
    workload = std::make_unique<DssWorkloadModel>(
        "synthetic", &schema, &box, std::move(templates),
        RepeatSequence(tables, 1), PlannerConfig{});
    Profiler profiler(&schema, &box);
    profiles = std::make_unique<WorkloadProfiles>(profiler.ProfileWorkload(
        *workload,
        [&](const std::vector<int>& p) { return workload->Estimate(p); }));
  }

  DotProblem Problem() {
    DotProblem p;
    p.schema = &schema;
    p.box = &box;
    p.workload = workload.get();
    p.relative_sla = 0.5;
    p.profiles = profiles.get();
    return p;
  }
};

// range(0) = tables, range(1) = num_threads for the candidate-evaluation
// engine (1 = the serial path). The threads column is the serial-vs-parallel
// scaling comparison: at a fixed instance size, the rows differ only in
// engine fan-out, and the engine guarantees bit-identical results, so any
// wall-clock delta is pure speedup.
/// Per-run search-engine tallies, reported as benchmark counters:
/// layouts_per_s is candidate-evaluation throughput — the figure of merit
/// of the TOC fast path, and the first column to read in
/// BENCH_optimizer.json.
struct SearchCounters {
  long long layouts = 0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long nodes_expanded = 0;
  long long layouts_pruned = 0;

  void Tally(const DotResult& r) {
    layouts += r.layouts_evaluated;
    cache_hits += r.plan_cache_hits;
    cache_misses += r.plan_cache_misses;
    nodes_expanded += r.nodes_expanded;
    layouts_pruned += r.layouts_pruned;
  }
  void Report(benchmark::State& state) const {
    state.counters["layouts_per_s"] = benchmark::Counter(
        static_cast<double>(layouts), benchmark::Counter::kIsRate);
    state.counters["plan_cache_hits"] = benchmark::Counter(
        static_cast<double>(cache_hits), benchmark::Counter::kAvgIterations);
    state.counters["plan_cache_misses"] = benchmark::Counter(
        static_cast<double>(cache_misses),
        benchmark::Counter::kAvgIterations);
    // Branch-and-bound only (0 elsewhere): how much of the exact tree the
    // bounds cut, alongside the per-second leaf-evaluation rate above.
    state.counters["nodes_expanded"] = benchmark::Counter(
        static_cast<double>(nodes_expanded),
        benchmark::Counter::kAvgIterations);
    state.counters["layouts_pruned"] = benchmark::Counter(
        static_cast<double>(layouts_pruned),
        benchmark::Counter::kAvgIterations);
    // Which summation kernels scored this entry (0 = scalar, 1 = avx2):
    // trajectory tooling must never compare points across levels.
    state.counters["kernel_level"] =
        benchmark::Counter(static_cast<double>(ActiveKernelLevel()));
  }
};

void BM_DotOptimize(benchmark::State& state) {
  SyntheticInstance inst(static_cast<int>(state.range(0)));
  DotProblem problem = inst.Problem();
  problem.options.num_threads = static_cast<int>(state.range(1));
  SearchCounters counters;
  for (auto _ : state) {
    DotResult r = DotOptimizer(problem).Optimize();
    benchmark::DoNotOptimize(r.toc_cents_per_task);
    counters.Tally(r);
  }
  counters.Report(state);
  state.SetLabel(std::to_string(2 * state.range(0)) + " objects / " +
                 std::to_string(state.range(1)) + " threads");
}
BENCHMARK(BM_DotOptimize)
    ->ArgsProduct({{2, 4, 8, 16, 32}, {1}})
    ->ArgsProduct({{16, 32}, {2, 4, 8}});

void BM_ExhaustiveSearch(benchmark::State& state) {
  SyntheticInstance inst(static_cast<int>(state.range(0)));
  DotProblem problem = inst.Problem();
  problem.options.num_threads = static_cast<int>(state.range(1));
  SearchCounters counters;
  for (auto _ : state) {
    DotResult r = ExhaustiveSearch(problem);
    benchmark::DoNotOptimize(r.toc_cents_per_task);
    counters.Tally(r);
  }
  counters.Report(state);
  state.SetLabel(std::to_string(2 * state.range(0)) + " objects => 3^" +
                 std::to_string(2 * state.range(0)) + " layouts / " +
                 std::to_string(state.range(1)) + " threads");
}
// 2 tables = 3^4 = 81 layouts; 6 tables = 3^12 ≈ 531k layouts — the
// >= 10^5-layout space where the sharded engine should show ~linear
// scaling (acceptance bar: >= 2x at 4 threads, hardware permitting).
BENCHMARK(BM_ExhaustiveSearch)
    ->ArgsProduct({{2, 4, 6}, {1}})
    ->ArgsProduct({{6}, {2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

// Exact branch-and-bound over the same synthetic spaces as
// BM_ExhaustiveSearch — identical optima, but the prunable search touches
// a shrinking fraction of M^N as the instance grows (read layouts_pruned
// against 3^(2·tables)). The threads column shards the top-k subtree tasks.
void BM_BnbExactSearch(benchmark::State& state) {
  SyntheticInstance inst(static_cast<int>(state.range(0)));
  DotProblem problem = inst.Problem();
  problem.options.num_threads = static_cast<int>(state.range(1));
  SearchCounters counters;
  for (auto _ : state) {
    DotResult r = ExactSearch(problem, ExactStrategy::kBranchAndBound);
    benchmark::DoNotOptimize(r.toc_cents_per_task);
    counters.Tally(r);
  }
  counters.Report(state);
  state.SetLabel(std::to_string(2 * state.range(0)) + " objects => 3^" +
                 std::to_string(2 * state.range(0)) + " layouts / " +
                 std::to_string(state.range(1)) + " threads");
}
BENCHMARK(BM_BnbExactSearch)
    ->ArgsProduct({{2, 4, 6, 8}, {1}})
    ->ArgsProduct({{8}, {2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

// The flagship exact instance the enumerating comparator cannot touch: all
// 19 TPC-C objects on Box 2 — 3^19 ≈ 1.16e9 effective layouts — solved
// exactly by pruning upwards of 99.99% of the tree (§4.5.3 setting,
// relative SLA 0.25).
void BM_BnbTpccFull(benchmark::State& state) {
  Schema schema = MakeTpccSchema(300);
  BoxConfig box = MakeBox2();
  auto workload = MakeTpccWorkload(&schema, &box, TpccConfig{});
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = workload.get();
  problem.relative_sla = 0.25;
  problem.options.num_threads = static_cast<int>(state.range(0));
  SearchCounters counters;
  for (auto _ : state) {
    DotResult r = ExactSearch(problem, ExactStrategy::kBranchAndBound);
    benchmark::DoNotOptimize(r.toc_cents_per_task);
    counters.Tally(r);
  }
  counters.Report(state);
  state.SetLabel("19 objects => 3^19 layouts / " +
                 std::to_string(state.range(0)) + " threads");
}
BENCHMARK(BM_BnbTpccFull)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// Exact search over the HTAP composition (CH-benCH analytics + the TPC-C
// mix on the shared hot-object subset): the summed two-side bound drives
// the pruning, and the per-leaf cost now includes both sides' kernels —
// the figure of merit for the composite scorer.
void BM_HtapBnbExactSearch(benchmark::State& state) {
  Schema full = MakeTpccSchema(300);
  Schema schema = full.Subset({"stock", "pk_stock", "order_line",
                               "pk_order_line", "customer", "pk_customer",
                               "orders", "pk_orders"});
  BoxConfig box = MakeBox2();
  HtapBundle bundle = MakeChbenchHtapWorkload(&schema, &box, HtapConfig{});
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = bundle.htap.get();
  problem.relative_sla = 0.35;
  problem.options.num_threads = static_cast<int>(state.range(0));
  SearchCounters counters;
  for (auto _ : state) {
    DotResult r = ExactSearch(problem, ExactStrategy::kBranchAndBound);
    benchmark::DoNotOptimize(r.toc_cents_per_task);
    counters.Tally(r);
  }
  counters.Report(state);
  state.SetLabel("8 shared objects => 3^8 layouts / " +
                 std::to_string(state.range(0)) + " threads");
}
BENCHMARK(BM_HtapBnbExactSearch)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// DOT's heuristic walk over the same HTAP instance (profiled baselines,
// speculative batching): the everyday optimization path for the mixed
// workload.
void BM_HtapDotOptimize(benchmark::State& state) {
  Schema full = MakeTpccSchema(300);
  Schema schema = full.Subset({"stock", "pk_stock", "order_line",
                               "pk_order_line", "customer", "pk_customer",
                               "orders", "pk_orders"});
  BoxConfig box = MakeBox2();
  HtapBundle bundle = MakeChbenchHtapWorkload(&schema, &box, HtapConfig{});
  Profiler profiler(&schema, &box);
  WorkloadProfiles profiles = profiler.ProfileWorkload(
      *bundle.htap,
      [&](const std::vector<int>& p) { return bundle.htap->Estimate(p); });
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = bundle.htap.get();
  problem.relative_sla = 0.35;
  problem.profiles = &profiles;
  problem.options.num_threads = static_cast<int>(state.range(0));
  SearchCounters counters;
  for (auto _ : state) {
    DotResult r = DotOptimizer(problem).Optimize();
    benchmark::DoNotOptimize(r.toc_cents_per_task);
    counters.Tally(r);
  }
  counters.Report(state);
  state.SetLabel("8 shared objects / " + std::to_string(state.range(0)) +
                 " threads");
}
BENCHMARK(BM_HtapDotOptimize)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_EnumerateMoves(benchmark::State& state) {
  SyntheticInstance inst(static_cast<int>(state.range(0)));
  DotProblem problem = inst.Problem();
  const auto groups = inst.schema.MakeGroups();
  for (auto _ : state) {
    auto moves = EnumerateMoves(problem, groups);
    benchmark::DoNotOptimize(moves.size());
  }
}
BENCHMARK(BM_EnumerateMoves)->Arg(8)->Arg(32)->Arg(128);

void BM_ProfileWorkload(benchmark::State& state) {
  SyntheticInstance inst(static_cast<int>(state.range(0)));
  Profiler profiler(&inst.schema, &inst.box);
  for (auto _ : state) {
    auto profiles = profiler.ProfileWorkload(
        *inst.workload, [&](const std::vector<int>& p) {
          return inst.workload->Estimate(p);
        });
    benchmark::DoNotOptimize(profiles.single());
  }
}
BENCHMARK(BM_ProfileWorkload)->Arg(8)->Arg(32);

void BM_PlanTpchWorkload(benchmark::State& state) {
  Schema schema = MakeTpchSchema(20.0);
  BoxConfig box = MakeBox1();
  DssWorkloadModel workload("w", &schema, &box, MakeTpchTemplates(),
                            RepeatSequence(22, 3), PlannerConfig{});
  const auto placement = UniformPlacement(schema.NumObjects(), 2);
  for (auto _ : state) {
    PerfEstimate est = workload.Estimate(placement);
    benchmark::DoNotOptimize(est.elapsed_ms);
  }
}
BENCHMARK(BM_PlanTpchWorkload);

// Raw fast-scorer throughput, search machinery excluded: one evaluator per
// family (OLTP = full TPC-C, DSS = the §4.4.3 TPC-H subset, HTAP = the
// CH-benCH shared-object composition) scoring a fixed bag of pregenerated
// random layouts through EvaluateQuick. This is the microbench of the SoA
// planes + dispatch kernels themselves — layouts_per_s here moves with the
// kernel level (compare DOT_KERNEL=scalar vs avx2 runs), while the search
// benchmarks above fold in pruning and node overheads.
void BM_FastScorerKernel(benchmark::State& state) {
  Schema schema;
  BoxConfig box;
  std::unique_ptr<OltpWorkloadModel> oltp;
  std::unique_ptr<DssWorkloadModel> dss;
  HtapBundle bundle;
  DotProblem problem;
  std::string label;
  switch (state.range(0)) {
    case 0: {
      schema = MakeTpccSchema(300);
      box = MakeBox2();
      oltp = MakeTpccWorkload(&schema, &box, TpccConfig{});
      problem.workload = oltp.get();
      problem.relative_sla = 0.25;
      label = "oltp tpcc full";
      break;
    }
    case 1: {
      schema = MakeTpchEsSubsetSchema(20.0);
      box = MakeBox1();
      dss = std::make_unique<DssWorkloadModel>(
          "TPC-H-ES", &schema, &box, MakeTpchSubsetTemplates(),
          RepeatSequence(11, 3), PlannerConfig{});
      problem.workload = dss.get();
      problem.relative_sla = 0.5;
      label = "dss tpch es-subset";
      break;
    }
    default: {
      Schema full = MakeTpccSchema(300);
      schema = full.Subset({"stock", "pk_stock", "order_line",
                            "pk_order_line", "customer", "pk_customer",
                            "orders", "pk_orders"});
      box = MakeBox2();
      bundle = MakeChbenchHtapWorkload(&schema, &box, HtapConfig{});
      problem.workload = bundle.htap.get();
      problem.relative_sla = 0.35;
      label = "htap chbench subset";
      break;
    }
  }
  problem.schema = &schema;
  problem.box = &box;

  DotOptimizer estimator(problem);
  ThreadPool pool(1);
  CandidateEvaluator evaluator(estimator, &pool);
  const int n = schema.NumObjects();
  const int m = box.NumClasses();
  Rng rng(0x5c07e);
  std::vector<Layout> layouts;
  std::vector<int> placement(static_cast<size_t>(n), 0);
  for (int i = 0; i < 64; ++i) {
    for (int o = 0; o < n; ++o) {
      placement[static_cast<size_t>(o)] =
          static_cast<int>(rng.NextBounded(static_cast<uint64_t>(m)));
    }
    layouts.emplace_back(&schema, &box, placement);
  }
  long long scored = 0;
  for (auto _ : state) {
    for (const Layout& layout : layouts) {
      benchmark::DoNotOptimize(evaluator.EvaluateQuick(layout).toc);
    }
    scored += static_cast<long long>(layouts.size());
  }
  state.counters["layouts_per_s"] = benchmark::Counter(
      static_cast<double>(scored), benchmark::Counter::kIsRate);
  state.counters["kernel_level"] =
      benchmark::Counter(static_cast<double>(ActiveKernelLevel()));
  state.SetLabel(label + " / " + KernelLevelName(ActiveKernelLevel()));
}
BENCHMARK(BM_FastScorerKernel)->DenseRange(0, 2);

void BM_TpccEstimate(benchmark::State& state) {
  Schema schema = MakeTpccSchema(300);
  BoxConfig box = MakeBox2();
  auto workload = MakeTpccWorkload(&schema, &box, TpccConfig{});
  const auto placement = UniformPlacement(schema.NumObjects(), 1);
  for (auto _ : state) {
    PerfEstimate est = workload->Estimate(placement);
    benchmark::DoNotOptimize(est.tpmc);
  }
}
BENCHMARK(BM_TpccEstimate);

/// True when the existing trajectory file at `path` holds entries recorded
/// at a kernel level other than `active` (its `kernel_level` counters).
/// Entries from before the counter existed carry no tag and don't block.
bool TrajectoryHasForeignKernelLevel(const std::string& path, int active) {
  std::ifstream in(path);
  if (!in.is_open()) return false;  // nothing to replace
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::string key = "\"kernel_level\":";
  for (std::size_t pos = text.find(key); pos != std::string::npos;
       pos = text.find(key, pos + key.size())) {
    const int recorded =
        std::atoi(text.c_str() + pos + key.size());  // skips spaces
    if (recorded != active) return true;
  }
  return false;
}

}  // namespace
}  // namespace dot

// BENCHMARK_MAIN, plus a `--json` convenience flag: it expands to the
// google-benchmark pair --benchmark_out=BENCH_optimizer.json
// --benchmark_out_format=json (an explicit --json=<path> overrides the
// file name), so CI and developers produce the perf-trajectory artifact
// with one stable spelling. Prints the resolved kernel dispatch level, and
// refuses to replace a trajectory recorded at a different level — mixing
// scalar and AVX2 points in one trajectory would chart a phantom
// regression.
int main(int argc, char** argv) {
  const dot::KernelLevel level = dot::ActiveKernelLevel();
  std::fprintf(stderr, "dot: kernel dispatch level: %s\n",
               dot::KernelLevelName(level));

  // Owned storage first, pointers second: taking .data() while still
  // appending would dangle on reallocation.
  std::vector<std::string> expanded;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 ||
        std::strncmp(argv[i], "--json=", 7) == 0) {
      const char* path =
          argv[i][6] == '=' ? argv[i] + 7 : "BENCH_optimizer.json";
      if (dot::TrajectoryHasForeignKernelLevel(path,
                                               static_cast<int>(level))) {
        std::fprintf(
            stderr,
            "dot: refusing --json: %s holds entries from a different "
            "kernel level than the active '%s' — rerun with DOT_KERNEL "
            "matching the file, or write to a fresh path with "
            "--json=<path>\n",
            path, dot::KernelLevelName(level));
        return 1;
      }
      expanded.push_back(std::string("--benchmark_out=") + path);
      expanded.push_back("--benchmark_out_format=json");
    } else {
      expanded.push_back(argv[i]);
    }
  }
  std::vector<char*> args;
  args.reserve(expanded.size());
  for (std::string& arg : expanded) args.push_back(arg.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
