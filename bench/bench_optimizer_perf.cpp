// Microbenchmarks (google-benchmark) for the optimizer machinery itself:
// DOT's optimization phase vs exhaustive search as the object count grows,
// move enumeration, profiling, and the planner. Complements the §4.4.3
// wall-clock comparison (paper: DOT ~9 s vs ES ~1,400 s on their TPC-H
// instance; ~3 s vs ~800 s on TPC-C).

#include <benchmark/benchmark.h>

#include <memory>

#include "dot/dot.h"

namespace dot {
namespace {

/// Synthetic instance with `tables` tables (one PK index each) and a
/// simple per-table scan workload, on Box 1.
struct SyntheticInstance {
  Schema schema;
  BoxConfig box = MakeBox1();
  std::unique_ptr<DssWorkloadModel> workload;
  std::unique_ptr<WorkloadProfiles> profiles;

  explicit SyntheticInstance(int tables) {
    std::vector<QuerySpec> templates;
    for (int i = 0; i < tables; ++i) {
      const std::string name = "t" + std::to_string(i);
      const int id =
          schema.AddTable(name, 1e6 * (1 + i % 7), 100 + 10 * (i % 5));
      schema.AddIndex(name + "_pk", id, 8);
      QuerySpec q;
      q.name = "q" + std::to_string(i);
      RelationAccess ra;
      ra.table = name;
      ra.selectivity = (i % 3 == 0) ? 0.001 : 1.0;
      ra.index_sargable = i % 3 == 0;
      q.relations = {ra};
      templates.push_back(std::move(q));
    }
    workload = std::make_unique<DssWorkloadModel>(
        "synthetic", &schema, &box, std::move(templates),
        RepeatSequence(tables, 1), PlannerConfig{});
    Profiler profiler(&schema, &box);
    profiles = std::make_unique<WorkloadProfiles>(profiler.ProfileWorkload(
        *workload,
        [&](const std::vector<int>& p) { return workload->Estimate(p); }));
  }

  DotProblem Problem() {
    DotProblem p;
    p.schema = &schema;
    p.box = &box;
    p.workload = workload.get();
    p.relative_sla = 0.5;
    p.profiles = profiles.get();
    return p;
  }
};

// range(0) = tables, range(1) = num_threads for the candidate-evaluation
// engine (1 = the serial path). The threads column is the serial-vs-parallel
// scaling comparison: at a fixed instance size, the rows differ only in
// engine fan-out, and the engine guarantees bit-identical results, so any
// wall-clock delta is pure speedup.
void BM_DotOptimize(benchmark::State& state) {
  SyntheticInstance inst(static_cast<int>(state.range(0)));
  DotProblem problem = inst.Problem();
  problem.num_threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    DotResult r = DotOptimizer(problem).Optimize();
    benchmark::DoNotOptimize(r.toc_cents_per_task);
  }
  state.SetLabel(std::to_string(2 * state.range(0)) + " objects / " +
                 std::to_string(state.range(1)) + " threads");
}
BENCHMARK(BM_DotOptimize)
    ->ArgsProduct({{2, 4, 8, 16, 32}, {1}})
    ->ArgsProduct({{16, 32}, {2, 4, 8}});

void BM_ExhaustiveSearch(benchmark::State& state) {
  SyntheticInstance inst(static_cast<int>(state.range(0)));
  DotProblem problem = inst.Problem();
  problem.num_threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    DotResult r = ExhaustiveSearch(problem);
    benchmark::DoNotOptimize(r.toc_cents_per_task);
  }
  state.SetLabel(std::to_string(2 * state.range(0)) + " objects => 3^" +
                 std::to_string(2 * state.range(0)) + " layouts / " +
                 std::to_string(state.range(1)) + " threads");
}
// 2 tables = 3^4 = 81 layouts; 6 tables = 3^12 ≈ 531k layouts — the
// >= 10^5-layout space where the sharded engine should show ~linear
// scaling (acceptance bar: >= 2x at 4 threads, hardware permitting).
BENCHMARK(BM_ExhaustiveSearch)
    ->ArgsProduct({{2, 4, 6}, {1}})
    ->ArgsProduct({{6}, {2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_EnumerateMoves(benchmark::State& state) {
  SyntheticInstance inst(static_cast<int>(state.range(0)));
  DotProblem problem = inst.Problem();
  const auto groups = inst.schema.MakeGroups();
  for (auto _ : state) {
    auto moves = EnumerateMoves(problem, groups);
    benchmark::DoNotOptimize(moves.size());
  }
}
BENCHMARK(BM_EnumerateMoves)->Arg(8)->Arg(32)->Arg(128);

void BM_ProfileWorkload(benchmark::State& state) {
  SyntheticInstance inst(static_cast<int>(state.range(0)));
  Profiler profiler(&inst.schema, &inst.box);
  for (auto _ : state) {
    auto profiles = profiler.ProfileWorkload(
        *inst.workload, [&](const std::vector<int>& p) {
          return inst.workload->Estimate(p);
        });
    benchmark::DoNotOptimize(profiles.single());
  }
}
BENCHMARK(BM_ProfileWorkload)->Arg(8)->Arg(32);

void BM_PlanTpchWorkload(benchmark::State& state) {
  Schema schema = MakeTpchSchema(20.0);
  BoxConfig box = MakeBox1();
  DssWorkloadModel workload("w", &schema, &box, MakeTpchTemplates(),
                            RepeatSequence(22, 3), PlannerConfig{});
  const auto placement = UniformPlacement(schema.NumObjects(), 2);
  for (auto _ : state) {
    PerfEstimate est = workload.Estimate(placement);
    benchmark::DoNotOptimize(est.elapsed_ms);
  }
}
BENCHMARK(BM_PlanTpchWorkload);

void BM_TpccEstimate(benchmark::State& state) {
  Schema schema = MakeTpccSchema(300);
  BoxConfig box = MakeBox2();
  auto workload = MakeTpccWorkload(&schema, &box, TpccConfig{});
  const auto placement = UniformPlacement(schema.NumObjects(), 1);
  for (auto _ : state) {
    PerfEstimate est = workload->Estimate(placement);
    benchmark::DoNotOptimize(est.tpmc);
  }
}
BENCHMARK(BM_TpccEstimate);

}  // namespace
}  // namespace dot

BENCHMARK_MAIN();
