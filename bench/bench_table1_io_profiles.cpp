// Reproduces Table 1: cost and I/O profiles of the five storage classes at
// degree-of-concurrency 1 and 300, measured by the §3.5.1 microbenchmark
// against the calibrated device models, with prices recomputed from the
// Table 2 specs via the §2.1 amortization model.

#include <iostream>

#include "common/str_util.h"
#include "common/table_printer.h"
#include "dot/dot.h"

int main() {
  using namespace dot;
  std::cout << "=== Table 1: cost and I/O profiles of storage classes ===\n"
            << "Each cell: measured ms/IO (reads) or ms/row (writes) at\n"
            << "concurrency 1, with the concurrency-300 value in\n"
            << "parentheses, as in the paper.\n\n";

  TablePrinter t({"", "HDD", "HDD Raid 0", "L-SSD", "L-SSD Raid 0",
                  "H-SSD"});

  std::vector<std::string> price_row = {"TOC/GB/hour (cents)"};
  std::vector<MeasuredIoProfile> at1;
  std::vector<MeasuredIoProfile> at300;
  for (int i = 0; i < kNumStockClasses; ++i) {
    const StorageClass sc = MakeStockClass(static_cast<StockClass>(i));
    price_row.push_back(StrPrintf("%.2e", sc.price_cents_per_gb_hour()));
    MicrobenchConfig cfg;
    cfg.concurrency = 1;
    at1.push_back(RunDeviceMicrobench(sc.device(), cfg));
    cfg.concurrency = 300;
    at300.push_back(RunDeviceMicrobench(sc.device(), cfg));
  }
  t.AddRow(price_row);

  const struct {
    const char* label;
    IoType type;
  } kRows[] = {{"Sequential Read (ms/IO)", IoType::kSeqRead},
               {"Random Read (ms/IO)", IoType::kRandRead},
               {"Sequential Write (ms/row)", IoType::kSeqWrite},
               {"Random Write (ms/row)", IoType::kRandWrite}};
  for (const auto& row : kRows) {
    std::vector<std::string> cells = {row.label};
    for (int i = 0; i < kNumStockClasses; ++i) {
      cells.push_back(StrPrintf("%.3f (%.3f)",
                                at1[i].per_request_ms[row.type],
                                at300[i].per_request_ms[row.type]));
    }
    t.AddRow(cells);
  }
  t.Print(std::cout);

  std::cout << "\nRecomputed vs published prices (cents/GB/hour):\n";
  TablePrinter p({"class", "recomputed", "published (Table 1)", "ratio"});
  for (int i = 0; i < kNumStockClasses; ++i) {
    const StockClass cls = static_cast<StockClass>(i);
    const double mine =
        MakeStockClass(cls).price_cents_per_gb_hour();
    const double pub = PublishedPriceCentsPerGbHour(cls);
    p.AddRow({StockClassName(cls), StrPrintf("%.3e", mine),
              StrPrintf("%.3e", pub), StrPrintf("%.3f", mine / pub)});
  }
  p.Print(std::cout);
  return 0;
}
