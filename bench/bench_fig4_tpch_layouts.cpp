// Reproduces Figure 4: the DOT-recommended data layouts for the original
// TPC-H workload at relative SLA 0.5 on Box 1 and Box 2.
// Expected shape (§4.4.1): bulk SR-dominated objects (e.g. lineitem) land
// on the RAID 0 class of each box; RR-heavy objects (partsupp and its
// primary index, Q2) stay on the H-SSD. The paper also notes the SLA-0.25
// layouts are similar; printed for completeness.

#include <iostream>

#include "bench/bench_tpch_figure.h"

int main() {
  std::cout << "=== Figure 4: DOT layouts, original TPC-H ===\n";
  dot::bench::PrintDotLayouts(dot::bench::TpchVariant::kOriginal, 0.5,
                              std::cout);
  std::cout << "\n(Paper note: layouts at relative SLA 0.25 are similar.)\n";
  dot::bench::PrintDotLayouts(dot::bench::TpchVariant::kOriginal, 0.25,
                              std::cout);
  return 0;
}
