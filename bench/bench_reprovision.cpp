// Migration-aware multi-epoch re-provisioning: the migrate-vs-stay
// frontier on a diurnal HTAP schedule.
//
// One shared CH-benCH object set on Box 2 runs a 24-hour cycle whose
// analytics:transactions ratio ρ swings from OLTP-heavy daytime to an
// analytics-heavy night batch — exactly the drift regime bench_htap_mix
// demonstrates flips the optimal layout. Three strategies compete:
//
//   * frozen     — solve epoch 0 once, keep that layout all day;
//   * oblivious  — re-optimize every epoch, pretending data movement is
//                  free (then pay the actual migration bill);
//   * planned    — dot::ReprovisionPlanner's epoch DP, which weighs each
//                  re-layout against the migration it costs.
//
// Sweeping the migration price scale traces the frontier: at zero the
// planned strategy coincides with oblivious (migrate freely), at
// prohibitive prices it converges to frozen (never move), and in between
// it migrates only where an epoch's TOC saving pays for the move. The
// planned total can never exceed either baseline — both baselines are
// sequences over the planner's own candidate pool — and the exit code
// enforces exactly that (plus a strict win over each baseline somewhere
// on the sweep, so the frontier is demonstrably non-trivial).
//
// The planned schedule at the default price is then replayed through the
// simulated Executor (exec/schedule_replay.h) to validate the estimated
// objective against a noisy "measured" run.
//
// Exit status: 0 when every sweep point satisfies planned <= frozen and
// planned <= oblivious AND each baseline is strictly beaten somewhere,
// 1 otherwise.

#include <cmath>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "dot/dot.h"

namespace {

using namespace dot;

std::string PlacementString(const std::vector<int>& placement) {
  std::string s;
  for (int c : placement) s += static_cast<char>('0' + c);
  return s;
}

struct DiurnalEpoch {
  std::string label;
  double rho;
  double hours;
};

}  // namespace

int main() {
  Schema full = MakeTpccSchema(300);
  Schema schema = full.Subset({"stock", "pk_stock", "order_line",
                               "pk_order_line", "customer", "pk_customer",
                               "orders", "pk_orders"});
  BoxConfig box = MakeBox2();

  // The diurnal cycle: ρ values straddle the layout flip bench_htap_mix
  // demonstrates (OLTP-favoring optima at low ρ, mixed/DSS-favoring at
  // ρ = 32-64).
  const std::vector<DiurnalEpoch> cycle = {
      {"day (transactions)", 0.1, 10.0},
      {"evening (reporting)", 8.0, 4.0},
      {"night (batch analytics)", 64.0, 8.0},
      {"early day (transactions)", 0.1, 2.0},
  };

  // One HtapBundle per distinct ρ; epochs share models.
  std::map<double, HtapBundle> bundles;
  for (const DiurnalEpoch& e : cycle) {
    if (bundles.count(e.rho)) continue;
    HtapConfig config;
    config.analytics_streams = e.rho;
    bundles.emplace(e.rho, MakeChbenchHtapWorkload(&schema, &box, config,
                                                   TpccConfig{},
                                                   /*analytics_reps=*/1));
  }
  EpochSchedule schedule;
  for (const DiurnalEpoch& e : cycle) {
    schedule.Add(bundles.at(e.rho).htap.get(), e.hours, e.label);
  }

  // Find a relative SLA every epoch can meet (the Figure 2 relaxation
  // loop, applied schedule-wide so all strategies compete under one SLA).
  double relative_sla = 0.35;
  std::vector<std::vector<int>> solo(cycle.size());
  for (;;) {
    bool all_ok = true;
    for (size_t e = 0; e < cycle.size(); ++e) {
      DotProblem p;
      p.schema = &schema;
      p.box = &box;
      p.workload = schedule.epochs[e].workload;
      p.relative_sla = relative_sla;
      p.options.num_threads = 0;
      const SolveResult r = Solve(p);  // kExact default
      if (!r.status.ok()) {
        all_ok = false;
        break;
      }
      solo[e] = r.placement;
    }
    if (all_ok) break;
    relative_sla *= 0.9;
    if (relative_sla < 0.02) {
      std::cerr << "no feasible SLA found for the diurnal schedule\n";
      return 1;
    }
  }

  std::cout << "=== Diurnal re-provisioning: " << schema.NumObjects()
            << " shared CH-benCH objects on " << box.name << ", "
            << schedule.TotalHours() << " h cycle, relative SLA "
            << FormatSig(relative_sla, 2) << " ===\n";
  std::cout << "epoch solo optima (exact BnB, migration-blind):\n";
  for (size_t e = 0; e < cycle.size(); ++e) {
    std::cout << "  " << cycle[e].label << " (rho=" << cycle[e].rho
              << ", " << cycle[e].hours
              << "h): " << PlacementString(solo[e]) << "\n";
  }
  std::cout << "\n";

  // The box starts the day on yesterday's daytime layout.
  const std::vector<int> current = solo[0];
  const std::vector<std::vector<int>> frozen_seq(cycle.size(), solo[0]);

  // Migration price sweep: transfer cents/GB and a priced copy window,
  // scaled together.
  const MigrationCostModel base_migration = [] {
    MigrationCostModel m;
    m.transfer_price_cents_per_gb = 1.0;
    m.downtime_price_cents_per_hour = 500.0;
    return m;
  }();
  // kDefaultScale is the point whose plan gets the detailed table and the
  // replay below; it must be a member of `scales`.
  constexpr double kDefaultScale = 0.03;
  const std::vector<double> scales = {0.0, 0.003, kDefaultScale, 0.3, 3.0,
                                      30.0};

  TablePrinter frontier({"migration price x", "migrations", "GB moved",
                         "planned", "frozen", "oblivious",
                         "saved vs frozen", "saved vs oblivious"});
  bool all_dominated = true;
  bool beat_frozen_somewhere = false;
  bool beat_oblivious_somewhere = false;
  ReprovisionPlan default_plan;
  EpochSchedule default_schedule = schedule;
  for (double scale : scales) {
    ReprovisionConfig config;
    config.relative_sla = relative_sla;
    config.cost_model = CostModelSpec{};
    config.migration = base_migration;
    config.migration.transfer_price_cents_per_gb *= scale;
    config.migration.downtime_price_cents_per_hour *= scale;
    config.options.num_threads = 0;
    // The plan itself goes through the facade (Solve builds exactly this
    // config from the problem + spec); the planner instance remains for
    // EvaluateSequence, the documented baseline-pricing entry point.
    ReprovisionPlanner planner(&schema, &box, config);

    DotProblem epoch_problem;
    epoch_problem.schema = &schema;
    epoch_problem.box = &box;
    epoch_problem.workload = schedule.epochs[0].workload;
    epoch_problem.relative_sla = relative_sla;
    epoch_problem.options.num_threads = 0;
    SolveSpec plan_spec;
    plan_spec.method = SolveMethod::kEpochPlan;
    plan_spec.schedule = &schedule;
    plan_spec.current_layout = current;
    plan_spec.migration = config.migration;
    const SolveResult solved = Solve(epoch_problem, plan_spec);
    const ReprovisionPlan& plan = solved.plan;
    if (!solved.status.ok()) {
      std::cerr << "plan failed at scale " << scale << ": "
                << solved.status.ToString() << "\n";
      return 1;
    }
    const ReprovisionPlan frozen =
        planner.EvaluateSequence(schedule, frozen_seq, current);
    const ReprovisionPlan oblivious =
        planner.EvaluateSequence(schedule, solo, current);
    if (!frozen.status.ok() || !oblivious.status.ok()) {
      std::cerr << "baseline evaluation failed at scale " << scale << "\n";
      return 1;
    }

    all_dominated = all_dominated &&
                    plan.total_objective <= frozen.total_objective &&
                    plan.total_objective <= oblivious.total_objective;
    beat_frozen_somewhere =
        beat_frozen_somewhere ||
        plan.total_objective < frozen.total_objective * (1 - 1e-12);
    beat_oblivious_somewhere =
        beat_oblivious_somewhere ||
        plan.total_objective < oblivious.total_objective * (1 - 1e-12);
    if (scale == kDefaultScale) default_plan = plan;

    double gb_moved = 0.0;
    const std::vector<int>* prev = &current;
    for (const EpochPlanStep& step : plan.steps) {
      gb_moved += EstimateMigration(config.migration, box, schema, *prev,
                                    step.placement)
                      .gb_moved;
      prev = &step.placement;
    }

    auto pct_saved = [](double planned, double baseline) {
      return baseline > 0
                 ? StrPrintf("%.2f%%", 100.0 * (baseline - planned) / baseline)
                 : std::string("-");
    };
    frontier.AddRow({StrPrintf("%.3f", scale),
                     StrPrintf("%d", plan.num_migrations),
                     StrPrintf("%.0f", gb_moved),
                     bench::Sci(plan.total_objective),
                     bench::Sci(frozen.total_objective),
                     bench::Sci(oblivious.total_objective),
                     pct_saved(plan.total_objective, frozen.total_objective),
                     pct_saved(plan.total_objective,
                               oblivious.total_objective)});
  }
  std::cout << "objective: sum of epoch TOC x duration (cents-hour/task) "
               "+ weighted migration cents\n";
  frontier.Print(std::cout);

  // The planned day at the default migration price, epoch by epoch.
  std::cout << StrPrintf("\nplanned schedule at migration price x%g:\n",
                         kDefaultScale);
  if (default_plan.steps.empty()) {
    std::cerr << "kDefaultScale is not a member of the sweep\n";
    return 1;
  }
  TablePrinter day({"epoch", "rho", "hours", "layout", "moved objs",
                    "migration (cents)", "TOC (cents/1k tasks)"});
  for (size_t e = 0; e < default_plan.steps.size(); ++e) {
    const EpochPlanStep& step = default_plan.steps[e];
    day.AddRow({cycle[e].label, StrPrintf("%.1f", cycle[e].rho),
                StrPrintf("%.0f", cycle[e].hours),
                PlacementString(step.placement),
                StrPrintf("%d", step.objects_moved),
                StrPrintf("%.1f", step.migration_cents),
                StrPrintf("%.3f", step.toc_cents_per_task * 1e3)});
  }
  day.Print(std::cout);

  // Validate the estimate by simulation: replay the planned day through
  // the Executor with 2% run-to-run noise.
  ReplayConfig replay_config;
  replay_config.exec.noise_cv = 0.02;
  replay_config.exec.seed = 42;
  const ScheduleReplayResult replay =
      ReplaySchedule(default_schedule, default_plan, schema, box,
                     replay_config);
  if (!replay.status.ok()) {
    std::cerr << "replay failed: " << replay.status.ToString() << "\n";
    return 1;
  }
  const double drift =
      100.0 *
      std::abs(replay.total_objective - default_plan.total_objective) /
      default_plan.total_objective;
  std::cout << "\nsimulated replay of the planned day (2% noise): "
            << bench::Sci(replay.total_objective) << " vs estimated "
            << bench::Sci(default_plan.total_objective) << " ("
            << StrPrintf("%.2f", drift) << "% drift)\n";

  if (!all_dominated) {
    std::cout << "\nFAIL: a sweep point beat the migration-aware plan.\n";
    return 1;
  }
  if (!beat_frozen_somewhere || !beat_oblivious_somewhere) {
    std::cout << "\nFAIL: the frontier is trivial (some baseline was never "
                 "strictly beaten), so migration-aware planning bought "
                 "nothing on this schedule.\n";
    return 1;
  }
  std::cout << "\nThe migration-aware plan never loses to either baseline "
               "and strictly beats each somewhere on the price sweep: "
               "re-provisioning is worth exactly as much as the migration "
               "price lets it be.\n";
  return 0;
}
