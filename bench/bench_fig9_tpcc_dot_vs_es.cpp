// Reproduces Figure 9: ES vs DOT on the TPC-C workload (Box 2) with
// capacity limits on the H-SSD, relative SLA 0.25 with the paper's
// relax-and-retry loop when constraints conflict (§4.5.3; the 21 GB run
// settles at relative SLA ~0.13 in the paper).
// Expected shape: ES and DOT reach almost the same tpmC and TOC, with DOT
// orders of magnitude faster.
//
// Enumerating all 19 TPC-C objects is 3^19 ≈ 1.2e9 layouts; like the paper
// (which could only run ES on reduced instances), the first section
// restricts the enumerated comparison to the nine hottest objects. The
// second section then runs the SAME experiment on the full 19-object
// schema with the exact branch-and-bound search as the ground truth — the
// instance the paper's comparator could never touch, solved exactly by
// pruning >99.99% of the tree (DESIGN.md §5).

#include <functional>
#include <iostream>

#include "bench/bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "dot/dot.h"

namespace {

/// One Figure-9 capacity sweep: `exact` supplies the ground truth (ES on
/// the subset, BnB on the full schema).
void RunSweep(
    const dot::Schema& schema, const char* exact_name,
    const std::function<dot::DotResult(const dot::DotProblem&)>& exact) {
  using namespace dot;
  for (double cap : {-1.0, 21.0, 18.0, 15.0, 12.0}) {
    BoxConfig box = MakeBox2();
    if (cap > 0) box.classes[2].set_capacity_gb(cap);
    auto workload = MakeTpccWorkload(&schema, &box, TpccConfig{});
    Profiler profiler(&schema, &box);
    WorkloadProfiles profiles = profiler.ProfileWorkload(
        *workload, [&](const std::vector<int>& p) {
          Executor executor(workload.get(), ExecutorConfig{});
          return executor.Run(p);
        });
    DotProblem problem;
    problem.schema = &schema;
    problem.box = &box;
    problem.workload = workload.get();
    problem.relative_sla = 0.25;
    problem.profiles = &profiles;
    problem.options.num_threads = 0;

    // The paper's relax-and-repeat loop: lower the SLA until the exact
    // search (the ground truth) finds a feasible solution, then run both
    // at that SLA.
    DotProblem es_problem = problem;
    DotResult es = exact(es_problem);
    while (!es.status.ok() && es_problem.relative_sla > 0.02) {
      es_problem.relative_sla *= 0.9;
      es = exact(es_problem);
    }
    // DOT starts from the SLA the exact search settled on and, like the
    // paper's Figure 2 loop, keeps relaxing if its heuristic walk cannot
    // reach a feasible layout there.
    problem.relative_sla = es_problem.relative_sla;
    DotResult dot_r = OptimizeWithRelaxation(problem, 0.9, 0.02);

    const std::string cap_label =
        cap > 0 ? StrPrintf("%.0f GB", cap) : std::string("No limit");
    std::cout << "\n--- H-SSD cap: " << cap_label << " (rel. SLA: "
              << exact_name << " "
              << FormatSig(es_problem.relative_sla, 2) << ", DOT "
              << FormatSig(problem.relative_sla, 2) << ") ---\n";
    if (!es.status.ok() || !dot_r.status.ok()) {
      std::cout << "infeasible under every tried SLA\n";
      continue;
    }
    TablePrinter t({"method", "tpmC", "TOC (cents/1M txns)", "layouts",
                    "optimize (ms)"});
    t.AddRow({exact_name, StrPrintf("%.0f", es.estimate.tpmc),
              StrPrintf("%.3f", es.toc_cents_per_task * 1e6),
              StrPrintf("%lld", es.layouts_evaluated),
              StrPrintf("%.0f", es.optimize_ms)});
    t.AddRow({"DOT", StrPrintf("%.0f", dot_r.estimate.tpmc),
              StrPrintf("%.3f", dot_r.toc_cents_per_task * 1e6),
              StrPrintf("%lld", dot_r.layouts_evaluated),
              StrPrintf("%.0f", dot_r.optimize_ms)});
    t.Print(std::cout);
    std::cout << StrPrintf(
        "DOT/%s: TOC %.3f, tpmC %.3f, speedup %.0fx\n", exact_name,
        dot_r.toc_cents_per_task / es.toc_cents_per_task,
        dot_r.estimate.tpmc / es.estimate.tpmc,
        es.optimize_ms / std::max(dot_r.optimize_ms, 0.01));
    if (es.nodes_expanded > 0) {
      std::cout << StrPrintf(
          "BnB tree: %lld expanded, %lld bound-pruned, %lld infeasible-"
          "pruned, %lld of %lld layouts cut\n",
          es.nodes_expanded, es.nodes_pruned_bound,
          es.nodes_pruned_infeasible, es.layouts_pruned,
          es.layouts_pruned + es.layouts_evaluated);
    }
  }
}

}  // namespace

int main() {
  using namespace dot;
  std::cout << "=== Figure 9: ES vs DOT, TPC-C on Box 2, H-SSD capacity "
               "limits (9 hottest objects) ===\n";

  Schema full = MakeTpccSchema(300);
  Schema subset = full.Subset({"stock", "pk_stock", "order_line",
                               "pk_order_line", "customer", "pk_customer",
                               "i_customer", "district", "pk_district"});
  RunSweep(subset, "ES",
           [](const DotProblem& p) { return ExhaustiveSearch(p); });

  std::cout << "\n=== Figure 9 at full scale: exact BnB vs DOT, all "
            << full.NumObjects() << " TPC-C objects (3^"
            << full.NumObjects() << " layouts) ===\n";
  RunSweep(full, "BnB", [](const DotProblem& p) {
    return ExactSearch(p, ExactStrategy::kBranchAndBound);
  });
  return 0;
}
