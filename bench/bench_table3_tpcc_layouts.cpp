// Reproduces Table 3: the DOT layouts for the TPC-C workload on Box 2 at
// relative SLAs 0.5, 0.25 and 0.125.
// Expected shape (§4.5.2): as the SLA relaxes, objects shift from the
// H-SSD toward the HDD; tiny update-hot tables (warehouse, district) and
// the hottest bulk objects (stock, order_line) hold on to the H-SSD
// longest; item and the orders-side objects live on the HDD throughout;
// customer/i_customer exploit the L-SSD RAID 0 (RAID 0 spreads its random
// writes, §4.5.2).

#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "dot/dot.h"

int main() {
  using namespace dot;
  using dot::bench::Instance;
  std::cout << "=== Table 3: DOT layouts under different relative SLAs, "
               "Box 2, TPC-C ===\n\n";
  auto inst = Instance::Tpcc(2);

  // Gather the three layouts.
  std::vector<double> slas = {0.5, 0.25, 0.125};
  std::vector<std::vector<int>> placements;
  for (double sla : slas) placements.push_back(inst->RunDot(sla).placement);

  TablePrinter t({"storage class", "SLA 0.5", "SLA 0.25", "SLA 0.125"});
  for (int cls = 0; cls < inst->box().NumClasses(); ++cls) {
    // One row per object line, paper-style: list the objects per class.
    std::vector<std::vector<std::string>> columns(slas.size());
    size_t depth = 0;
    for (size_t s = 0; s < slas.size(); ++s) {
      for (const DbObject& o : inst->schema().objects()) {
        if (placements[s][static_cast<size_t>(o.id)] == cls) {
          columns[s].push_back(o.name);
        }
      }
      depth = std::max(depth, columns[s].size());
    }
    for (size_t line = 0; line < std::max<size_t>(depth, 1); ++line) {
      std::vector<std::string> row;
      row.push_back(line == 0
                        ? inst->box().classes[static_cast<size_t>(cls)].name()
                        : "");
      for (size_t s = 0; s < slas.size(); ++s) {
        row.push_back(line < columns[s].size() ? columns[s][line] : "");
      }
      t.AddRow(row);
    }
    t.AddSeparator();
  }
  t.Print(std::cout);
  return 0;
}
