// Reproduces the §5.1 generalized provisioning experiment: given a menu of
// storage configuration options F = {f_1, ..., f_X}, run DOT on each and
// recommend the TOC-cheapest feasible configuration together with its data
// layout — the paper's proposed use of DOT for purchasing decisions (§7).
//
// The menu: the paper's Box 1 and Box 2, plus two hypothetical builds — an
// economy box without any H-SSD and a premium box with a 4-way L-SSD RAID 0
// (derived device model via MakeRaid0, priced by the §2.1 model).

#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "dot/dot.h"

namespace {

dot::BoxConfig MakeEconomyBox() {
  using namespace dot;
  BoxConfig box;
  box.name = "Economy (HDD RAID 0 + L-SSD RAID 0)";
  box.classes = {MakeStockClass(StockClass::kHddRaid0),
                 MakeStockClass(StockClass::kLssdRaid0)};
  return box;
}

dot::BoxConfig MakeWideRaidBox() {
  using namespace dot;
  BoxConfig box;
  box.name = "Wide RAID (HDD RAID 0 + 4-way L-SSD RAID 0 + H-SSD)";
  const StorageClass lssd = MakeStockClass(StockClass::kLssd);
  const DeviceSpec& spec = StockDeviceSpec(StockClass::kLssd);
  const RaidControllerSpec& ctrl = StockRaidController();
  const DeviceModel wide =
      MakeRaid0(lssd.device(), 4, "L-SSD RAID 0 x4");
  const double price = Raid0PriceCentsPerGbHour(spec, 4, ctrl.cost_cents,
                                                ctrl.power_watts);
  box.classes = {MakeStockClass(StockClass::kHddRaid0),
                 StorageClass("L-SSD RAID 0 x4", wide,
                              spec.capacity_gb * 4, price),
                 MakeStockClass(StockClass::kHssd)};
  return box;
}

}  // namespace

int main() {
  using namespace dot;
  using dot::bench::Instance;
  using dot::bench::TpchVariant;
  std::cout << "=== §5.1: generalized provisioning over configuration "
               "options (original TPC-H, SLA 0.5) ===\n\n";

  std::vector<BoxConfig> menu = {MakeBox1(), MakeBox2(), MakeEconomyBox(),
                                 MakeWideRaidBox()};
  std::vector<std::unique_ptr<Instance>> instances;
  for (BoxConfig& box : menu) {
    instances.push_back(Instance::TpchOnBox(box, TpchVariant::kOriginal));
  }

  // One common constraint set T across all configurations (§5.1's input is
  // an absolute T, not a per-box relative one): half the performance of the
  // all-H-SSD layout on the paper's Box 2.
  const Instance& reference = *instances[1];
  const PerfTargets common_targets =
      MakePerfTargets(reference.model(), reference.box(),
                      reference.schema().NumObjects(), 0.5);

  std::vector<ProvisioningOption> options;
  for (size_t i = 0; i < menu.size(); ++i) {
    Instance* inst = instances[i].get();
    options.push_back({menu[i].name, [inst, &common_targets]() {
                         DotProblem p = inst->Problem(0.5);
                         p.targets_override = &common_targets;
                         return p;
                       }});
  }

  ProvisioningResult result = ProvisionOverOptions(options);

  TablePrinter t({"configuration", "feasible", "TOC (c/query)",
                  "cost (cents/hour)", "winner"});
  for (size_t i = 0; i < options.size(); ++i) {
    const DotResult& r = result.per_option[i];
    t.AddRow({options[i].name, r.status.ok() ? "yes" : "no",
              r.status.ok() ? StrPrintf("%.5f", r.toc_cents_per_task) : "-",
              r.status.ok()
                  ? StrPrintf("%.4f", r.layout_cost_cents_per_hour)
                  : "-",
              static_cast<int>(i) == result.best_option ? "<==" : ""});
  }
  t.Print(std::cout);

  if (result.best_option >= 0) {
    const Instance& winner =
        *instances[static_cast<size_t>(result.best_option)];
    std::cout << "\nRecommended configuration: " << result.best_name
              << "\nRecommended layout:\n"
              << Layout(&winner.schema(), &winner.box(),
                        result.best.placement)
                     .ToString();
  }
  return 0;
}
