// Reproduces Figure 3: cost/performance of every layout on the original
// TPC-H workload (66 queries) at relative SLA 0.5, on both boxes.
// Expected shape (§4.4.1): DOT saves >3x TOC vs All H-SSD at 100% PSR;
// OA has lower PSR (95%/90% in the paper) and worse TOC than DOT; the other
// simple layouts are cheap but miss their SLAs.

#include <iostream>

#include "bench/bench_tpch_figure.h"

int main() {
  std::cout << "=== Figure 3: original TPC-H workload, relative SLA 0.5 ===\n";
  dot::bench::RunTpchComparisonFigure(dot::bench::TpchVariant::kOriginal,
                                      0.5, std::cout);
  return 0;
}
