// Reproduces Figure 5: cost/performance of every layout on the modified
// (selective, mixed-I/O) TPC-H workload at relative SLA 0.5.
// Expected shape (§4.4.2): all simple layouts except All H-SSD fail the
// SLA (low PSR); DOT still undercuts All H-SSD on TOC while keeping PSR
// at 100%.

#include <iostream>

#include "bench/bench_tpch_figure.h"

int main() {
  std::cout << "=== Figure 5: modified TPC-H workload, relative SLA 0.5 ===\n";
  dot::bench::RunTpchComparisonFigure(dot::bench::TpchVariant::kModified,
                                      0.5, std::cout);
  return 0;
}
