// Capacity planning with the §5.1 generalized provisioning problem: given
// several candidate server builds (storage configurations), decide which
// one to buy for a mixed DSS estate — running DOT on every option under one
// common performance constraint set and ranking them by TOC.
//
// Also demonstrates building custom storage classes from first principles:
// a derived 4-way RAID 0 device model (MakeRaid0) priced by the §2.1
// amortization model.

#include <cstdio>
#include <memory>
#include <vector>

#include "dot/dot.h"

namespace {

using namespace dot;

/// Everything one candidate configuration needs alive during the run.
struct Candidate {
  BoxConfig box;
  std::unique_ptr<DssWorkloadModel> workload;
  std::unique_ptr<WorkloadProfiles> profiles;
};

std::unique_ptr<Candidate> MakeCandidate(const Schema* schema,
                                         BoxConfig box) {
  auto c = std::make_unique<Candidate>();
  c->box = std::move(box);
  c->workload = std::make_unique<DssWorkloadModel>(
      c->box.name, schema, &c->box, MakeTpchTemplates(),
      RepeatSequence(22, 3), PlannerConfig{});
  Profiler profiler(schema, &c->box);
  c->profiles = std::make_unique<WorkloadProfiles>(profiler.ProfileWorkload(
      *c->workload,
      [&](const std::vector<int>& p) { return c->workload->Estimate(p); }));
  return c;
}

BoxConfig MakeCustomBox() {
  BoxConfig box;
  box.name = "Custom: 4-way HDD RAID 0 + H-SSD";
  const StorageClass hdd = MakeStockClass(StockClass::kHdd);
  const DeviceSpec& spec = StockDeviceSpec(StockClass::kHdd);
  const RaidControllerSpec& ctrl = StockRaidController();
  box.classes = {
      StorageClass("HDD RAID 0 x4", MakeRaid0(hdd.device(), 4, "hdd-r0x4"),
                   spec.capacity_gb * 4,
                   Raid0PriceCentsPerGbHour(spec, 4, ctrl.cost_cents,
                                            ctrl.power_watts)),
      MakeStockClass(StockClass::kHssd)};
  return box;
}

}  // namespace

int main() {
  Schema schema = MakeTpchSchema(20.0);
  std::printf("Capacity planning for a %.1f GB TPC-H estate\n\n",
              schema.TotalSizeGb());

  std::vector<std::unique_ptr<Candidate>> candidates;
  candidates.push_back(MakeCandidate(&schema, MakeBox1()));
  candidates.push_back(MakeCandidate(&schema, MakeBox2()));
  candidates.push_back(MakeCandidate(&schema, MakeCustomBox()));

  // Common absolute targets: half the performance of Box 2's premium
  // layout. All candidates are held to the same bar.
  const Candidate& reference = *candidates[1];
  const PerfTargets targets =
      MakePerfTargets(*reference.workload, reference.box,
                      schema.NumObjects(), /*relative_sla=*/0.5);

  std::vector<ProvisioningOption> options;
  for (auto& c : candidates) {
    Candidate* raw = c.get();
    options.push_back({raw->box.name, [raw, &targets, &schema]() {
                         DotProblem p;
                         p.schema = &schema;
                         p.box = &raw->box;
                         p.workload = raw->workload.get();
                         p.relative_sla = targets.relative_sla;
                         p.profiles = raw->profiles.get();
                         p.targets_override = &targets;
                         return p;
                       }});
  }

  ProvisioningResult result = ProvisionOverOptions(options);
  for (size_t i = 0; i < options.size(); ++i) {
    const DotResult& r = result.per_option[i];
    if (r.status.ok()) {
      std::printf("%-38s TOC %.5f c/query, cost %.4f c/h%s\n",
                  options[i].name.c_str(), r.toc_cents_per_task,
                  r.layout_cost_cents_per_hour,
                  static_cast<int>(i) == result.best_option ? "   <== buy"
                                                            : "");
    } else {
      std::printf("%-38s %s\n", options[i].name.c_str(),
                  r.status.ToString().c_str());
    }
  }

  if (result.best_option < 0) {
    std::printf("\nno configuration meets the constraints\n");
    return 1;
  }
  const Candidate& winner =
      *candidates[static_cast<size_t>(result.best_option)];
  std::printf("\nLayout on the recommended build:\n%s",
              Layout(&schema, &winner.box, result.best.placement)
                  .ToString()
                  .c_str());
  return 0;
}
