// Quickstart: provision the TPC-H workload on the paper's Box 1 and print
// the DOT-recommended layout next to the naive all-on-H-SSD one.
//
// Walks the full pipeline from §3 / Figure 2:
//   storage catalog -> schema -> workload model -> profiling -> optimization.

#include <cstdio>

#include "dot/dot.h"

int main() {
  // 1. The storage subsystem: Box 1 = HDD RAID 0 + L-SSD + H-SSD (§4.1),
  //    with prices recomputed from Table 2 via the §2.1 amortization model.
  dot::BoxConfig box = dot::MakeBox1();
  std::printf("Storage classes on %s:\n", box.name.c_str());
  for (const dot::StorageClass& sc : box.classes) {
    std::printf("  %-14s %7.1f GB  %.3g cents/GB/hour\n", sc.name().c_str(),
                sc.capacity_gb(), sc.price_cents_per_gb_hour());
  }

  // 2. The database: TPC-H at scale factor 20 (~30 GB with indices).
  dot::Schema schema = dot::MakeTpchSchema(/*scale_factor=*/20.0);
  std::printf("\nDatabase: %d objects, %.1f GB total\n", schema.NumObjects(),
              schema.TotalSizeGb());

  // 3. The workload: the original 22 TPC-H templates, three instances each,
  //    planned by the storage-aware optimizer.
  dot::DssWorkloadModel workload(
      "TPC-H", &schema, &box, dot::MakeTpchTemplates(),
      dot::RepeatSequence(22, 3), dot::PlannerConfig{});

  // 4. Profiling phase (§3.4): measure the workload's I/O on the baseline
  //    layouts via the extended optimizer's estimates.
  dot::Profiler profiler(&schema, &box);
  dot::WorkloadProfiles profiles = profiler.ProfileWorkload(
      workload, [&](const std::vector<int>& placement) {
        return workload.Estimate(placement);
      });

  // 5. Optimization phase (§3.1): find the cheapest layout that keeps every
  //    query within 2x of its all-H-SSD response time (relative SLA 0.5).
  dot::DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = &workload;
  problem.relative_sla = 0.5;
  problem.profiles = &profiles;

  //    The search runs through the unified dot::Solve facade (dot/solve.h):
  //    one entry point over the heuristic optimizer, the exact searches,
  //    and the epoch planner — pick the engine with a SolveSpec.
  dot::SolveSpec spec;
  spec.method = dot::SolveMethod::kDotHeuristic;
  const dot::SolveResult solved = dot::Solve(problem, spec);
  if (!solved.status.ok()) {
    std::printf("DOT: %s\n", solved.status.ToString().c_str());
    return 1;
  }
  const dot::DotResult& result = solved.dot;

  // The estimator, for pricing the comparison layout below.
  dot::DotOptimizer optimizer(problem);

  dot::Layout layout(&schema, &box, result.placement);
  std::printf("\nDOT layout (relative SLA 0.5), %lld layouts evaluated in"
              " %.1f ms:\n%s",
              result.layouts_evaluated, result.optimize_ms,
              layout.ToString().c_str());

  // Compare against the naive premium layout.
  const int hssd = box.MostExpensiveClass();
  dot::Layout all_hssd = dot::Layout::Uniform(&schema, &box, hssd);
  dot::PerfEstimate best;
  const double toc_hssd =
      optimizer.EstimateToc(all_hssd.placement(), &best);

  std::printf("\n%-22s %14s %16s %14s\n", "layout", "cents/hour",
              "workload (min)", "TOC c/query");
  std::printf("%-22s %14.4f %16.2f %14.4f\n", "All H-SSD",
              all_hssd.CostCentsPerHour(problem.cost_model),
              best.elapsed_ms / 60000.0, toc_hssd);
  std::printf("%-22s %14.4f %16.2f %14.4f\n", "DOT",
              result.layout_cost_cents_per_hour,
              result.estimate.elapsed_ms / 60000.0,
              result.toc_cents_per_task);
  std::printf("\nTOC saving vs All H-SSD: %.2fx\n",
              toc_hssd / result.toc_cents_per_task);
  return 0;
}
