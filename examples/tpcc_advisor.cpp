// OLTP provisioning session: provision the TPC-C transaction mix under a
// throughput SLA, optionally with a capacity cap on the premium device —
// the §4.5 scenario end to end, including test-run profiling.
//
// Usage:
//   tpcc_advisor [--box 1|2] [--sla 0.25] [--hssd-cap GB] [--warehouses N]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "dot/dot.h"

namespace {

struct Args {
  int box = 2;
  double sla = 0.25;
  double hssd_cap_gb = -1;
  int warehouses = 300;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--box") == 0 && i + 1 < argc) {
      args.box = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--sla") == 0 && i + 1 < argc) {
      args.sla = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--hssd-cap") == 0 && i + 1 < argc) {
      args.hssd_cap_gb = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--warehouses") == 0 && i + 1 < argc) {
      args.warehouses = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: tpcc_advisor [--box 1|2] [--sla S] "
                   "[--hssd-cap GB] [--warehouses N]\n");
      std::exit(2);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dot;
  const Args args = ParseArgs(argc, argv);

  BoxConfig box = args.box == 1 ? MakeBox1() : MakeBox2();
  if (args.hssd_cap_gb > 0) {
    const int hssd = box.FindClass("H-SSD");
    box.classes[static_cast<size_t>(hssd)].set_capacity_gb(
        args.hssd_cap_gb);
  }
  Schema schema = MakeTpccSchema(args.warehouses);
  auto workload = MakeTpccWorkload(&schema, &box, TpccConfig{});

  std::printf("Provisioning TPC-C (%d warehouses, %.1f GB) on %s\n",
              args.warehouses, schema.TotalSizeGb(), box.name.c_str());

  // §4.5.1: profile with a test run on the All H-SSD layout; TPC-C plans
  // never change with placement, so one baseline suffices.
  Profiler profiler(&schema, &box);
  WorkloadProfiles profiles = profiler.ProfileWorkload(
      *workload, [&](const std::vector<int>& p) {
        ExecutorConfig cfg;
        cfg.noise_cv = 0.01;
        Executor executor(workload.get(), cfg);
        return executor.Run(p);
      });

  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = workload.get();
  problem.relative_sla = args.sla;
  problem.profiles = &profiles;

  // The relax-and-retry loop from Figure 2, driven through the unified
  // dot::Solve facade: under a tight capacity cap the requested SLA may be
  // unreachable, so relax by 5% and re-solve until feasible (or the 0.01
  // floor is hit — the OptimizeWithRelaxation protocol, spelled out).
  SolveSpec spec;
  spec.method = SolveMethod::kDotHeuristic;
  SolveResult solved = Solve(problem, spec);
  while (!solved.status.ok() && problem.relative_sla * 0.95 >= 0.01) {
    problem.relative_sla *= 0.95;
    solved = Solve(problem, spec);
  }
  DotResult r = solved.dot;
  if (!r.status.ok()) {
    std::printf("infeasible even after relaxation: %s\n",
                r.status.ToString().c_str());
    return 1;
  }
  if (problem.relative_sla != args.sla) {
    std::printf(
        "requested SLA %.3f was infeasible; relaxed to %.3f (paper §4.5.3 "
        "protocol)\n",
        args.sla, problem.relative_sla);
  }

  Layout layout(&schema, &box, r.placement);
  std::printf("\nRecommended layout:\n%s", layout.ToString().c_str());
  std::printf("\ntpmC:        %.0f (floor %.0f, best case %.0f)\n",
              r.estimate.tpmc, r.targets.min_tpmc,
              r.targets.best_case.tpmc);
  std::printf("layout cost: %.4f cents/hour\n",
              r.layout_cost_cents_per_hour);
  std::printf("TOC:         %.4f cents per 1M New-Order transactions\n",
              r.toc_cents_per_task * 1e6);
  return 0;
}
