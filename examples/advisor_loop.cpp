// Always-on advisor session: monitor a drifting HTAP workload through a
// recorded trace, detect the drift online, re-plan incrementally, and
// migrate only when the projected saving pays the migration bill.
//
// The scenario: a mixed CH-benCH workload runs steadily, then a batch job
// multiplies the I/O on the order-processing tables for a stretch of the
// day, then things settle again. The advisor watches hourly I/O profiles,
// accumulates the deviation, re-plans via the unified dot::Solve facade
// (exact branch-and-bound, warm-started from its candidate pool), and
// commits through the migration gate. At the end, the advisor's realized
// cost is compared against freezing the initial layout — both priced by
// the same trace replay.
//
// Everything runs on a virtual clock: the 24-hour session replays in well
// under a second, and two runs are bit-identical.

#include <cstdio>

#include "dot/dot.h"

int main() {
  using namespace dot;

  // The box and the shared HTAP object set (the drift regime of
  // bench_reprovision, experienced online instead of known in advance).
  BoxConfig box = MakeBox2();
  Schema full = MakeTpccSchema(300);
  Schema schema = full.Subset({"stock", "pk_stock", "order_line",
                               "pk_order_line", "customer", "pk_customer",
                               "orders", "pk_orders"});
  HtapConfig htap_config;
  htap_config.analytics_streams = 8.0;
  HtapBundle bundle = MakeChbenchHtapWorkload(&schema, &box, htap_config,
                                              TpccConfig{},
                                              /*analytics_reps=*/1);

  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = bundle.htap.get();
  problem.relative_sla = 0.25;

  // The advisor: drift-triggered exact re-plans, migration-gated commits.
  AdvisorConfig config;
  config.migration.transfer_price_cents_per_gb = 0.03;
  config.migration.downtime_price_cents_per_hour = 15.0;
  config.payback_horizon_hours = 8.0;
  Advisor advisor(problem, config);
  const Status init = advisor.Init();
  if (!init.ok()) {
    std::printf("initial plan failed: %s\n", init.ToString().c_str());
    return 1;
  }

  auto layout_string = [](const std::vector<int>& placement) {
    std::string s;
    for (int c : placement) s += static_cast<char>('0' + c);
    return s;
  };
  std::printf("initial incumbent: %s (TOC %.3g cents/task)\n",
              layout_string(advisor.incumbent()).c_str(),
              advisor.incumbent_toc());

  // The day: steady mornings, a 10x order-processing batch from hour 8 to
  // hour 16, steady again after. The advisor only ever sees the recorded
  // hourly I/O profiles — never this ground truth.
  WorkloadTraceSpec spec;
  std::vector<double> batch_scale(static_cast<size_t>(schema.NumObjects()),
                                  1.0);
  for (const char* name :
       {"order_line", "pk_order_line", "orders", "pk_orders"}) {
    batch_scale[static_cast<size_t>(schema.FindObject(name))] = 10.0;
  }
  for (int hour = 0; hour < 24; ++hour) {
    TraceWindow window;
    window.workload = bundle.htap.get();
    window.duration_hours = 1.0;
    if (hour >= 8 && hour < 16) {
      window.io_scale = batch_scale;
      window.label = "batch";
    } else {
      window.label = "steady";
    }
    spec.windows.push_back(window);
  }
  const WorkloadTrace trace =
      RecordTraceWithExecutor(spec, advisor.incumbent());

  // Replay the day through the advisor.
  RecordedTraceFeed feed(&trace);
  const AdvisorRun run = advisor.Run(&feed);
  if (!run.status.ok()) {
    std::printf("advisor failed: %s\n", run.status.ToString().c_str());
    return 1;
  }

  std::printf("\nhour  phase    deviation  statistic  action\n");
  for (size_t w = 0; w < run.decisions.size(); ++w) {
    const AdvisorDecision& d = run.decisions[w];
    const char* action = d.migrated     ? "re-plan + migrate"
                         : d.replanned  ? "re-plan (stay put)"
                                        : "-";
    std::printf("%4zu  %-7s  %9.3f  %9.3f  %s", w,
                trace.events[w].label.c_str(), d.deviation, d.statistic,
                action);
    if (d.replanned) {
      std::printf(" [toc %.3g -> %.3g, saving %.3g vs bill %.3g]",
                  d.incumbent_toc, d.candidate_toc, d.verdict.projected_saving,
                  d.verdict.weighted_bill);
    }
    if (d.migrated) {
      const std::vector<int>& next = w + 1 < run.layout_by_window.size()
                                         ? run.layout_by_window[w + 1]
                                         : run.final_layout;
      std::printf(" -> %s", layout_string(next).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nre-plans: %d, migrations: %d, final layout %s\n",
              run.num_replans, run.num_migrations,
              layout_string(run.final_layout).c_str());

  // Score the session: the advisor's layout track vs freezing the initial
  // layout, both replayed against the trace's ground truth.
  TrackReplayConfig replay;
  replay.migration = config.migration;
  replay.migration_weight = advisor.resolved_migration_weight();
  const TrackReplayResult advised = ReplayLayoutTrack(
      spec, run.layout_by_window, schema, box, replay);
  const TrackReplayResult frozen = ReplayLayoutTrack(
      spec,
      std::vector<std::vector<int>>(spec.windows.size(),
                                    run.initial_layout),
      schema, box, replay);
  if (!advised.status.ok() || !frozen.status.ok()) {
    std::printf("replay failed\n");
    return 1;
  }

  // Realized TOC alone is not the scoreboard here: the SLA is. A frozen
  // layout sized for the steady mix simply violates the contract during
  // the batch — for free, as far as raw TOC goes. Count compliance too.
  auto sla_met_windows = [&](const TrackReplayResult& replayed) {
    int met = 0;
    for (size_t w = 0; w < spec.windows.size(); ++w) {
      DotProblem window_problem = problem;
      window_problem.io_scale_hint = spec.windows[w].io_scale;
      const DotOptimizer window_optimizer(window_problem);
      if (MeetsTargets(replayed.windows[w].measured,
                       window_optimizer.targets())) {
        ++met;
      }
    }
    return met;
  };
  std::printf(
      "\nrealized objective (TOC x hours + weighted migration cents):\n"
      "  advisor: %.3g  (%d migration(s), %.1f migration cents), "
      "SLA met %d/%zu windows\n"
      "  frozen:  %.3g  SLA met %d/%zu windows\n",
      advised.total_objective, advised.num_migrations,
      advised.total_migration_cents, sla_met_windows(advised),
      spec.windows.size(), frozen.total_objective, sla_met_windows(frozen),
      spec.windows.size());
  std::printf(
      "\nThe advisor pays TOC and migration to keep the SLA through the\n"
      "batch, then returns to the cheap steady-state layout; the frozen\n"
      "layout is cheaper only because nothing bills it for the violated\n"
      "contract.\n");
  return 0;
}
