// Fleet quickstart: provision a multi-tenant fleet under one budget.
//
// Builds a small synthetic fleet (the same OLTP/DSS/HTAP tenant classes
// bench_fleet sweeps at N=1e4), finds its unconstrained cost, then
// squeezes the fleet-wide budget and solves through the unified
// dot::Solve facade in kFleet mode. The planner couples the tenants with
// Lagrangian shadow prices and prints each tenant's chosen layout next
// to the per-tenant-independent fair-share baseline it provably never
// loses to.

#include <cstdio>

#include <string>

#include "dot/dot.h"

int main() {
  // 1. A fleet: 12 tenants drawn from 8 classes over one shared Box 2
  //    catalog. SyntheticFleet owns every schema/workload the tenants'
  //    problems point into.
  dot::SyntheticFleet fleet = dot::MakeSyntheticFleet(/*num_tenants=*/12,
                                                      /*seed=*/3);
  std::printf("Fleet: %zu tenants, %d tenant classes, box %s\n",
              fleet.tenants.size(), fleet.num_classes,
              fleet.box->name.c_str());

  // 2. The shared problem carries the box and engine knobs; in kFleet
  //    mode schema/workload live per tenant, not here.
  dot::DotProblem problem;
  problem.box = fleet.box.get();

  // 3. First solve unconstrained to learn what the fleet costs when every
  //    tenant gets its solo optimum.
  dot::FleetSpec fleet_spec;
  fleet_spec.tenants = &fleet.tenants;
  dot::SolveSpec spec;
  spec.method = dot::SolveMethod::kFleet;
  spec.fleet = &fleet_spec;
  const dot::SolveResult free_run = dot::Solve(problem, spec);
  if (!free_run.status.ok()) {
    std::printf("fleet solve: %s\n", free_run.status.ToString().c_str());
    return 1;
  }
  const double free_cost = free_run.fleet.total_cost_cents_per_hour;
  std::printf("unconstrained: %.2f cents/h, TOC %.3e cents/task, "
              "%d pools built for %zu tenants\n",
              free_cost, free_run.toc_cents_per_task,
              free_run.fleet.pool_builds, fleet.tenants.size());

  // 4. Now cap the fleet at 85%% of that and re-solve. Validate() runs
  //    inside Solve, so a malformed spec comes back as a status, never an
  //    abort.
  fleet_spec.config.constraints.budget_cents_per_hour = free_cost * 0.85;
  const dot::SolveResult solved = dot::Solve(problem, spec);
  if (!solved.status.ok()) {
    std::printf("budgeted solve: %s\n", solved.status.ToString().c_str());
    return 1;
  }
  const dot::FleetPlan& plan = solved.fleet;

  std::printf("\nbudget %.2f cents/h -> fleet cost %.2f, TOC %.3e "
              "(engine %s, %.1f ms)\n",
              fleet_spec.config.constraints.budget_cents_per_hour,
              plan.total_cost_cents_per_hour, plan.total_toc_cents_per_task,
              solved.provenance.engine, solved.provenance.solve_ms);
  std::printf("%-16s %-10s %12s %14s\n", "tenant", "layout", "TOC c/task",
              "cents/hour");
  for (size_t i = 0; i < plan.tenants.size(); ++i) {
    const dot::FleetTenantChoice& choice = plan.tenants[i];
    std::string digits;
    for (int c : choice.placement) {
      digits += static_cast<char>('0' + c);
    }
    std::printf("%-16s %-10s %12.3e %14.4f\n",
                fleet.tenants[i].name.c_str(), digits.c_str(),
                choice.toc_cents_per_task, choice.cost_cents_per_hour);
  }

  // 5. The baseline a coordination-free operator would sell: each tenant
  //    provisions alone on a size-proportional share of the budget.
  if (plan.independent_feasible) {
    std::printf("\nindependent fair-share baseline: TOC %.3e cents/task "
                "(fleet saves %.2f%%)\n",
                plan.independent_toc_cents_per_task,
                100.0 *
                    (plan.independent_toc_cents_per_task -
                     plan.total_toc_cents_per_task) /
                    plan.independent_toc_cents_per_task);
  } else {
    std::printf("\nindependent fair-share baseline infeasible at this "
                "budget — coordination is mandatory, not just cheaper\n");
  }
  return 0;
}
