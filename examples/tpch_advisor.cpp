// DSS provisioning session: run DOT for the TPC-H workload with a
// configurable box, workload variant and SLA, and print the recommended
// layout, its economics, and the full validation pipeline outcome.
//
// Usage:
//   tpch_advisor [--box 1|2] [--modified] [--sla 0.5] [--validate]
//
// Examples:
//   tpch_advisor --box 1 --sla 0.5
//   tpch_advisor --box 2 --modified --sla 0.25 --validate

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "dot/dot.h"

namespace {

struct Args {
  int box = 1;
  bool modified = false;
  double sla = 0.5;
  bool validate = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--box") == 0 && i + 1 < argc) {
      args.box = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--modified") == 0) {
      args.modified = true;
    } else if (std::strcmp(argv[i], "--sla") == 0 && i + 1 < argc) {
      args.sla = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--validate") == 0) {
      args.validate = true;
    } else {
      std::fprintf(stderr,
                   "usage: tpch_advisor [--box 1|2] [--modified] "
                   "[--sla S] [--validate]\n");
      std::exit(2);
    }
  }
  if ((args.box != 1 && args.box != 2) || args.sla <= 0 || args.sla > 1) {
    std::fprintf(stderr, "invalid arguments\n");
    std::exit(2);
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dot;
  const Args args = ParseArgs(argc, argv);

  BoxConfig box = args.box == 1 ? MakeBox1() : MakeBox2();
  Schema schema = MakeTpchSchema(20.0);
  DssWorkloadModel workload(
      args.modified ? "TPC-H (modified)" : "TPC-H (original)", &schema,
      &box,
      args.modified ? MakeModifiedTpchTemplates() : MakeTpchTemplates(),
      args.modified ? RepeatSequence(5, 20) : RepeatSequence(22, 3),
      PlannerConfig{});

  std::printf("Provisioning %s on %s at relative SLA %.3f\n",
              workload.name().c_str(), box.name.c_str(), args.sla);

  Profiler profiler(&schema, &box);
  WorkloadProfiles profiles = profiler.ProfileWorkload(
      workload,
      [&](const std::vector<int>& p) { return workload.Estimate(p); });

  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = &workload;
  problem.relative_sla = args.sla;
  problem.profiles = &profiles;

  if (args.validate) {
    // Full Figure 2 pipeline: optimization, then a (noisy) test run, with
    // refinement on failure.
    PipelineConfig cfg;
    cfg.exec.noise_cv = 0.02;
    PipelineResult result = RunDotPipeline(problem, cfg);
    if (!result.final.status.ok()) {
      std::printf("infeasible: %s\n",
                  result.final.status.ToString().c_str());
      return 1;
    }
    std::printf("\nvalidated: %s after %zu round(s); measured PSR %.0f%%\n",
                result.validated ? "yes" : "no", result.rounds.size(),
                result.rounds.back().measured_psr * 100);
    Layout layout(&schema, &box, result.final.placement);
    std::printf("\n%s", layout.ToString().c_str());
    return 0;
  }

  SolveSpec spec;
  spec.method = SolveMethod::kDotHeuristic;
  const SolveResult solved = Solve(problem, spec);
  if (!solved.status.ok()) {
    std::printf("infeasible: %s\n(lower --sla and retry)\n",
                solved.status.ToString().c_str());
    return 1;
  }
  const DotResult& r = solved.dot;

  Layout layout(&schema, &box, r.placement);
  std::printf("\nRecommended layout (%lld candidates in %.1f ms):\n%s",
              r.layouts_evaluated, r.optimize_ms,
              layout.ToString().c_str());
  std::printf("\nlayout cost:  %.4f cents/hour\n",
              r.layout_cost_cents_per_hour);
  std::printf("workload time: %.1f min (best case %.1f min)\n",
              r.estimate.elapsed_ms / 60000.0,
              r.targets.best_case.elapsed_ms / 60000.0);
  std::printf("TOC:          %.5f cents/query\n", r.toc_cents_per_task);

  const double toc_hssd = DotOptimizer(problem).EstimateToc(
      UniformPlacement(schema.NumObjects(), box.MostExpensiveClass()),
      nullptr);
  std::printf("saving vs All H-SSD: %.2fx\n",
              toc_hssd / r.toc_cents_per_task);
  return 0;
}
