// The robust-planning contracts (dot/ensemble.h, DESIGN.md §10):
//
//   * AggregateEnsemble arithmetic — expectation, CVaR tail selection with
//     its short-circuits, the chance constraint;
//   * a K=1 nominal ensemble reproduces the point-forecast optimization
//     bit for bit (heuristic, branch-and-bound, and enumeration);
//   * under a real ensemble, fast == full, branch-and-bound == enumerate,
//     and results are bit-identical at every thread count;
//   * CVaR at alpha = 1 is the expectation, bitwise.

#include "dot/ensemble.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "catalog/tpch_schema.h"
#include "dot/exhaustive.h"
#include "dot/optimizer.h"
#include "dot/solve.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/profiler.h"
#include "workload/scenario.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

// --- AggregateEnsemble unit tests -------------------------------------

EnsembleObjective Expectation() { return EnsembleObjective{}; }

EnsembleObjective CVaR(double alpha) {
  EnsembleObjective objective;
  objective.kind = EnsembleObjective::Kind::kCVaR;
  objective.alpha = alpha;
  return objective;
}

TEST(AggregateEnsembleTest, SingleScenarioPassesThroughBitwise) {
  const ScenarioScore score{123.456789, true};
  const EnsembleVerdict v =
      AggregateEnsemble(Expectation(), {1.0}, &score, 1);
  // Exactly the scenario's throughput — not 1/(1/x).
  EXPECT_EQ(v.tasks_per_hour, 123.456789);
  EXPECT_TRUE(v.sla_ok);
}

TEST(AggregateEnsembleTest, ExpectationIsTheWeightedHarmonicMean) {
  const std::vector<double> w{0.5, 0.5};
  const ScenarioScore scores[] = {{100.0, true}, {50.0, true}};
  const EnsembleVerdict v =
      AggregateEnsemble(Expectation(), w, scores, 2);
  EXPECT_DOUBLE_EQ(v.tasks_per_hour, 1.0 / (0.5 / 100.0 + 0.5 / 50.0));
}

TEST(AggregateEnsembleTest, UnboundedScenariosContributeNothing) {
  // thr 0 = "unbounded" (only bound cursors produce it): the scenario's
  // best-case TOC contribution is zero, keeping the aggregate admissible.
  const std::vector<double> w{0.5, 0.5};
  const ScenarioScore scores[] = {{0.0, true}, {50.0, true}};
  EXPECT_DOUBLE_EQ(
      AggregateEnsemble(Expectation(), w, scores, 2).tasks_per_hour, 100.0);

  const ScenarioScore all_unbounded[] = {{0.0, true}, {0.0, true}};
  EXPECT_EQ(
      AggregateEnsemble(Expectation(), w, all_unbounded, 2).tasks_per_hour,
      0.0);
}

TEST(AggregateEnsembleTest, CvarTailInOneScenarioReturnsItsThroughput) {
  // alpha <= the worst scenario's weight: CVaR is exactly that scenario's
  // TOC, returned bitwise (no alpha/(alpha/thr) round trip).
  const std::vector<double> w{0.5, 0.5};
  const ScenarioScore scores[] = {{100.0, true}, {20.0, true}};
  const EnsembleVerdict v = AggregateEnsemble(CVaR(0.3), w, scores, 2);
  EXPECT_EQ(v.tasks_per_hour, 20.0);
}

TEST(AggregateEnsembleTest, CvarFractionalBoundaryScenario) {
  // alpha = 0.5 over weights {0.25, 0.75} sorted worst-first: all of the
  // worst (0.25 @ thr 20) plus 0.25 of the boundary (thr 100).
  const std::vector<double> w{0.25, 0.75};
  const ScenarioScore scores[] = {{20.0, true}, {100.0, true}};
  const EnsembleVerdict v = AggregateEnsemble(CVaR(0.5), w, scores, 2);
  EXPECT_DOUBLE_EQ(v.tasks_per_hour,
                   0.5 / (0.25 / 20.0 + 0.25 / 100.0));
}

TEST(AggregateEnsembleTest, CvarSortsUnboundedLast) {
  // thr 0 is the *cheapest* TOC, so it sorts out of the tail: the whole
  // alpha mass lands on the bounded scenario.
  const std::vector<double> w{0.5, 0.5};
  const ScenarioScore scores[] = {{0.0, true}, {50.0, true}};
  const EnsembleVerdict v = AggregateEnsemble(CVaR(0.5), w, scores, 2);
  EXPECT_EQ(v.tasks_per_hour, 50.0);
}

TEST(AggregateEnsembleTest, CvarAlphaOneIsTheExpectationBitwise) {
  const std::vector<double> w{0.3, 0.3, 0.4};
  const ScenarioScore scores[] = {{80.0, true}, {50.0, true}, {120.0, true}};
  EXPECT_EQ(AggregateEnsemble(CVaR(1.0), w, scores, 3).tasks_per_hour,
            AggregateEnsemble(Expectation(), w, scores, 3).tasks_per_hour);
}

TEST(AggregateEnsembleTest, CvarIsNeverMoreOptimisticThanTheExpectation) {
  const std::vector<double> w{0.25, 0.25, 0.25, 0.25};
  const ScenarioScore scores[] = {
      {80.0, true}, {50.0, true}, {120.0, true}, {65.0, true}};
  const double expectation =
      AggregateEnsemble(Expectation(), w, scores, 4).tasks_per_hour;
  double previous = 0.0;
  for (double alpha : {0.25, 0.5, 0.75, 1.0}) {
    const double cvar =
        AggregateEnsemble(CVaR(alpha), w, scores, 4).tasks_per_hour;
    EXPECT_LE(cvar, expectation) << "alpha " << alpha;
    // Shrinking the tail focuses on ever-worse scenarios: monotone.
    if (previous > 0.0) {
      EXPECT_GE(cvar, previous) << "alpha " << alpha;
    }
    previous = cvar;
  }
}

TEST(AggregateEnsembleTest, ChanceConstraintCountsFeasibleMass) {
  const std::vector<double> w{0.25, 0.25, 0.25, 0.25};
  const ScenarioScore scores[] = {
      {80.0, true}, {50.0, false}, {120.0, true}, {65.0, true}};

  // 75% feasible mass: fails the default all-scenarios constraint...
  EnsembleObjective strict;
  strict.min_feasible_fraction = 1.0;
  EXPECT_FALSE(AggregateEnsemble(strict, w, scores, 4).sla_ok);

  // ...meets a 75% chance constraint (the tolerance absorbs 1/K drift)...
  EnsembleObjective chance;
  chance.min_feasible_fraction = 0.75;
  EXPECT_TRUE(AggregateEnsemble(chance, w, scores, 4).sla_ok);

  // ...and an all-feasible ensemble meets the strict constraint exactly.
  const ScenarioScore all_ok[] = {
      {80.0, true}, {50.0, true}, {120.0, true}, {65.0, true}};
  EXPECT_TRUE(AggregateEnsemble(strict, w, all_ok, 4).sla_ok);
}

// --- optimizer-level contracts ----------------------------------------

/// The §4.4.3 small TPC-H instance: 8 objects, exhaustive-tractable.
class EnsembleOptTest : public ::testing::Test {
 protected:
  EnsembleOptTest()
      : schema_(MakeTpchEsSubsetSchema(20.0)),
        box_(MakeBox1()),
        workload_("TPC-H-ES", &schema_, &box_, MakeTpchSubsetTemplates(),
                  RepeatSequence(11, 3), PlannerConfig{}),
        profiler_(&schema_, &box_),
        profiles_(profiler_.ProfileWorkload(
            workload_, [&](const std::vector<int>& p) {
              return workload_.Estimate(p);
            })) {
    problem_.schema = &schema_;
    problem_.box = &box_;
    problem_.workload = &workload_;
    problem_.relative_sla = 0.5;
    problem_.profiles = &profiles_;

    ScenarioNoise noise;
    noise.num_scenarios = 5;
    noise.io_scale_cv = 0.25;
    noise.count_cv = 0.1;
    noise.seed = 11;
    noisy_ = SampleScenarioEnsemble(schema_.NumObjects(), noise);

    ScenarioNoise point;
    point.num_scenarios = 1;
    nominal_only_ = SampleScenarioEnsemble(schema_.NumObjects(), point);
  }

  void ExpectSameResult(const DotResult& a, const DotResult& b) {
    ASSERT_EQ(a.status.ok(), b.status.ok());
    EXPECT_EQ(a.placement, b.placement);
    EXPECT_EQ(a.toc_cents_per_task, b.toc_cents_per_task);
    EXPECT_EQ(a.layout_cost_cents_per_hour, b.layout_cost_cents_per_hour);
    EXPECT_EQ(a.layouts_evaluated, b.layouts_evaluated);
    EXPECT_EQ(a.estimate.tasks_per_hour, b.estimate.tasks_per_hour);
  }

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
  Profiler profiler_;
  WorkloadProfiles profiles_;
  DotProblem problem_;
  ScenarioEnsemble noisy_;
  ScenarioEnsemble nominal_only_;
};

TEST_F(EnsembleOptTest, K1NominalEnsembleReproducesThePointForecastBitwise) {
  DotProblem robust = problem_;
  robust.ensemble = &nominal_only_;

  // The heuristic walk: same committed sequence, same winner.
  ExpectSameResult(DotOptimizer(problem_).Optimize(),
                   DotOptimizer(robust).Optimize());

  // Branch-and-bound: even the prune counters must match — the K=1 bound
  // cursor delegates to the child with no inflation at all.
  const DotResult point_bnb =
      ExactSearch(problem_, ExactStrategy::kBranchAndBound);
  const DotResult robust_bnb =
      ExactSearch(robust, ExactStrategy::kBranchAndBound);
  ExpectSameResult(point_bnb, robust_bnb);
  EXPECT_EQ(point_bnb.nodes_expanded, robust_bnb.nodes_expanded);
  EXPECT_EQ(point_bnb.nodes_pruned_bound, robust_bnb.nodes_pruned_bound);
  EXPECT_EQ(point_bnb.nodes_pruned_infeasible,
            robust_bnb.nodes_pruned_infeasible);

  // Enumeration.
  ExpectSameResult(ExactSearch(problem_, ExactStrategy::kEnumerate),
                   ExactSearch(robust, ExactStrategy::kEnumerate));
}

TEST_F(EnsembleOptTest, FastPathMatchesFullPathUnderAnEnsemble) {
  DotProblem fast = problem_;
  fast.ensemble = &noisy_;
  DotProblem full = fast;
  full.options.use_fast_eval = false;

  ExpectSameResult(ExactSearch(fast, ExactStrategy::kEnumerate),
                   ExactSearch(full, ExactStrategy::kEnumerate));
  ExpectSameResult(DotOptimizer(fast).Optimize(),
                   DotOptimizer(full).Optimize());
}

TEST_F(EnsembleOptTest, BranchAndBoundMatchesEnumerationUnderAnEnsemble) {
  for (const EnsembleObjective& objective :
       {Expectation(), CVaR(0.4), CVaR(1.0)}) {
    DotProblem robust = problem_;
    robust.ensemble = &noisy_;
    robust.ensemble_objective = objective;
    const DotResult bnb =
        ExactSearch(robust, ExactStrategy::kBranchAndBound);
    const DotResult enumerated =
        ExactSearch(robust, ExactStrategy::kEnumerate);
    ASSERT_TRUE(bnb.status.ok());
    EXPECT_EQ(bnb.placement, enumerated.placement);
    EXPECT_EQ(bnb.toc_cents_per_task, enumerated.toc_cents_per_task);
    // The bound must actually bound: pruning happened.
    EXPECT_GT(bnb.layouts_pruned, 0);
  }
}

TEST_F(EnsembleOptTest, CvarAlphaOneOptimizationMatchesExpectationBitwise) {
  DotProblem expectation = problem_;
  expectation.ensemble = &noisy_;
  DotProblem cvar_one = expectation;
  cvar_one.ensemble_objective = CVaR(1.0);
  ExpectSameResult(ExactSearch(expectation, ExactStrategy::kBranchAndBound),
                   ExactSearch(cvar_one, ExactStrategy::kBranchAndBound));
}

TEST_F(EnsembleOptTest, RobustDecisionsAreBitIdenticalAcrossThreadCounts) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  DotProblem robust = problem_;
  robust.ensemble = &noisy_;
  robust.ensemble_objective = CVaR(0.4);

  robust.options.num_threads = 1;
  const DotResult reference =
      ExactSearch(robust, ExactStrategy::kBranchAndBound);
  const DotResult heuristic_ref = DotOptimizer(robust).Optimize();
  for (int threads : {4, hw}) {
    robust.options.num_threads = threads;
    const DotResult exact = ExactSearch(robust, ExactStrategy::kBranchAndBound);
    EXPECT_EQ(exact.placement, reference.placement) << threads;
    EXPECT_EQ(exact.toc_cents_per_task, reference.toc_cents_per_task);
    EXPECT_EQ(exact.layouts_evaluated, reference.layouts_evaluated);
    const DotResult heuristic = DotOptimizer(robust).Optimize();
    EXPECT_EQ(heuristic.placement, heuristic_ref.placement) << threads;
    EXPECT_EQ(heuristic.toc_cents_per_task,
              heuristic_ref.toc_cents_per_task);
  }
}

TEST_F(EnsembleOptTest, EstimateTocReportsTheChanceVerdict) {
  // One scenario scaled hard enough to blow the SLA: the all-premium
  // layout stays feasible per-scenario nominal but the strict chance
  // constraint fails, while an 80% constraint tolerates the miss mass.
  ScenarioEnsemble ensemble = nominal_only_;
  Scenario stressed;
  stressed.io_scale.assign(static_cast<size_t>(schema_.NumObjects()), 50.0);
  stressed.label = "meltdown";
  ensemble.scenarios.push_back(stressed);
  for (int i = 0; i < 3; ++i) {
    Scenario calm;
    calm.label = "calm";
    ensemble.scenarios.push_back(calm);
  }

  DotProblem robust = problem_;
  robust.ensemble = &ensemble;
  robust.ensemble_objective.min_feasible_fraction = 1.0;
  const std::vector<int> premium = UniformPlacement(
      schema_.NumObjects(), box_.MostExpensiveClass());

  bool strict_ok = true;
  DotOptimizer strict(robust);
  (void)strict.EstimateToc(premium, nullptr, nullptr, &strict_ok);
  EXPECT_FALSE(strict_ok) << "the meltdown scenario must fail a 100% chance "
                             "constraint";

  robust.ensemble_objective.min_feasible_fraction = 0.8;
  bool tolerant_ok = false;
  DotOptimizer tolerant(robust);
  (void)tolerant.EstimateToc(premium, nullptr, nullptr, &tolerant_ok);
  EXPECT_TRUE(tolerant_ok) << "4/5 scenarios feasible meets an 80% chance "
                              "constraint";
}

TEST_F(EnsembleOptTest, SolveSpecOverlayMatchesProblemLevelEnsemble) {
  DotProblem robust = problem_;
  robust.ensemble = &noisy_;
  robust.ensemble_objective = CVaR(0.4);
  const DotResult direct =
      ExactSearch(robust, ExactStrategy::kBranchAndBound);

  SolveSpec spec;
  spec.method = SolveMethod::kExact;
  spec.ensemble = &noisy_;
  spec.ensemble_objective = CVaR(0.4);
  const SolveResult facade = Solve(problem_, spec);
  ASSERT_TRUE(facade.status.ok());
  EXPECT_EQ(facade.placement, direct.placement);
  EXPECT_EQ(facade.toc_cents_per_task, direct.toc_cents_per_task);
  EXPECT_EQ(facade.provenance.layouts_evaluated, direct.layouts_evaluated);

  // The caller's problem was not mutated by the overlay.
  EXPECT_EQ(problem_.ensemble, nullptr);

  // An ensemble overlay on the epoch planner is a spec error: Validate
  // refuses it, and Solve returns that status instead of running.
  SolveSpec epoch = spec;
  epoch.method = SolveMethod::kEpochPlan;
  const Status verdict = epoch.Validate(problem_);
  EXPECT_EQ(verdict.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(verdict.message().find("single-shot"), std::string::npos);
  const SolveResult refused = Solve(problem_, epoch);
  EXPECT_EQ(refused.status, verdict);
  EXPECT_FALSE(refused.has_plan);
}

}  // namespace
}  // namespace dot
