// Structural sanity of every query-template set: all referenced tables
// exist, selectivities and fanouts are in range, the declared index
// expectations are consistent with the schema, and each set plans cleanly
// on every uniform layout of both boxes.

#include <gtest/gtest.h>

#include "catalog/tpch_schema.h"
#include "dot/simple_layouts.h"
#include "query/planner.h"
#include "storage/standard_catalog.h"
#include "workload/tpch_queries.h"
#include "workload/workload.h"

namespace dot {
namespace {

struct TemplateSetCase {
  const char* name;
  std::vector<QuerySpec> (*make)();
  bool subset_schema;
};

class TemplateSetTest : public ::testing::TestWithParam<TemplateSetCase> {};

TEST_P(TemplateSetTest, StructurallyValid) {
  const TemplateSetCase& c = GetParam();
  Schema schema = c.subset_schema ? MakeTpchEsSubsetSchema(20.0)
                                  : MakeTpchSchema(20.0);
  for (const QuerySpec& q : c.make()) {
    EXPECT_FALSE(q.name.empty());
    ASSERT_FALSE(q.relations.empty()) << q.name;
    ASSERT_EQ(q.joins.size() + 1, q.relations.size()) << q.name;
    for (const RelationAccess& ra : q.relations) {
      const int id = schema.FindObject(ra.table);
      ASSERT_GE(id, 0) << q.name << " references unknown " << ra.table;
      EXPECT_EQ(schema.object(id).kind, ObjectKind::kTable) << q.name;
      EXPECT_GT(ra.selectivity, 0.0) << q.name;
      EXPECT_LE(ra.selectivity, 1.0) << q.name;
      EXPECT_GE(ra.clustering, 0.0);
      EXPECT_LE(ra.clustering, 1.0);
      if (ra.index_sargable) {
        EXPECT_GE(schema.PrimaryIndexOf(id), 0)
            << q.name << ": sargable access to index-less " << ra.table;
      }
    }
    for (const JoinStep& j : q.joins) {
      EXPECT_GT(j.matches_per_outer, 0.0) << q.name;
      EXPECT_LT(j.matches_per_outer, 1000.0) << q.name;
    }
    EXPECT_GT(q.cpu_weight, 0.0) << q.name;
  }
}

TEST_P(TemplateSetTest, PlansOnEveryUniformLayoutOfBothBoxes) {
  const TemplateSetCase& c = GetParam();
  Schema schema = c.subset_schema ? MakeTpchEsSubsetSchema(20.0)
                                  : MakeTpchSchema(20.0);
  for (BoxConfig box : {MakeBox1(), MakeBox2()}) {
    Planner planner(&schema, &box, PlannerConfig{});
    for (int cls = 0; cls < box.NumClasses(); ++cls) {
      const auto placement = UniformPlacement(schema.NumObjects(), cls);
      for (const QuerySpec& q : c.make()) {
        Plan plan = planner.PlanQuery(q, placement);
        EXPECT_GT(plan.time_ms, 0.0) << q.name;
        EXPECT_GE(plan.num_index_nl_joins, 0);
        EXPECT_LE(plan.num_index_nl_joins, plan.num_joins) << q.name;
        // The plan's I/O must touch at least the driving relation.
        double total_io = 0.0;
        for (const IoVector& v : plan.io_by_object) total_io += v.Total();
        EXPECT_GT(total_io, 0.0) << q.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSets, TemplateSetTest,
    ::testing::Values(
        TemplateSetCase{"original", &MakeTpchTemplates, false},
        TemplateSetCase{"modified", &MakeModifiedTpchTemplates, false},
        TemplateSetCase{"subset", &MakeTpchSubsetTemplates, true}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(SimpleLayoutsTest, OnePerClassPlusIndexSplit) {
  Schema schema = MakeTpchSchema(1.0);
  BoxConfig box = MakeBox1();
  const auto layouts = MakeSimpleLayouts(schema, box);
  ASSERT_EQ(layouts.size(), 4u);  // 3 uniform + index/data split
  EXPECT_EQ(layouts[0].name, "All HDD RAID 0");
  EXPECT_EQ(layouts[3].name, "Index H-SSD Data L-SSD");
  // The split layout puts exactly the indices on the H-SSD.
  const int hssd = box.FindClass("H-SSD");
  const int lssd = box.FindClass("L-SSD");
  for (const DbObject& o : schema.objects()) {
    EXPECT_EQ(layouts[3].placement[o.id], o.IsIndex() ? hssd : lssd)
        << o.name;
  }
}

TEST(SimpleLayoutsTest, NoSplitLayoutWithoutBothSsdKinds) {
  Schema schema = MakeTpchSchema(1.0);
  BoxConfig box;
  box.name = "hdd-only";
  box.classes = {MakeStockClass(StockClass::kHdd),
                 MakeStockClass(StockClass::kHddRaid0)};
  const auto layouts = MakeSimpleLayouts(schema, box);
  EXPECT_EQ(layouts.size(), 2u);  // uniform layouts only
}

TEST(SimpleLayoutsTest, PlacementsCoverEveryObject) {
  Schema schema = MakeTpchSchema(1.0);
  BoxConfig box = MakeBox2();
  for (const NamedLayout& l : MakeSimpleLayouts(schema, box)) {
    EXPECT_EQ(l.placement.size(), static_cast<size_t>(schema.NumObjects()))
        << l.name;
  }
}

}  // namespace
}  // namespace dot
