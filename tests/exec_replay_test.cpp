#include "exec/schedule_replay.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dot/reprovision.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

/// Two-epoch drift over one small schema: epoch 0 scans t0, epoch 1 point-
/// reads everything.
class ReplayTest : public ::testing::Test {
 protected:
  ReplayTest() : box_(MakeBox1()) {
    schema_.AddTable("t0", 3e6, 120);
    schema_.AddIndex("t0_pk", 0, 8);
    schema_.AddTable("t1", 1e6, 80);
    schema_.AddIndex("t1_pk", 2, 8);
    for (int e = 0; e < 2; ++e) {
      std::vector<QuerySpec> templates;
      for (int i = 0; i < 2; ++i) {
        QuerySpec q;
        q.name = "q" + std::to_string(i);
        RelationAccess ra;
        ra.table = "t" + std::to_string(i);
        if (e == 0 && i == 0) {
          ra.selectivity = 1.0;
          ra.index_sargable = false;
        } else {
          ra.selectivity = 0.001;
          ra.index_sargable = true;
        }
        q.relations = {ra};
        templates.push_back(std::move(q));
      }
      workloads_.push_back(std::make_unique<DssWorkloadModel>(
          "w" + std::to_string(e), &schema_, &box_, std::move(templates),
          RepeatSequence(2, 2), PlannerConfig{}));
    }
    schedule_.Add(workloads_[0].get(), 9.0, "scan-heavy");
    schedule_.Add(workloads_[1].get(), 15.0, "point-reads");
  }

  ReprovisionPlan MakePlan() const {
    ReprovisionConfig config;
    config.relative_sla = 0.4;
    config.migration.transfer_price_cents_per_gb = 10.0;
    config.migration.downtime_price_cents_per_hour = 500.0;
    ReprovisionPlanner planner(&schema_, &box_, config);
    return planner.Plan(schedule_, std::vector<int>{0, 0, 0, 0});
  }

  Schema schema_;
  BoxConfig box_;
  std::vector<std::unique_ptr<DssWorkloadModel>> workloads_;
  EpochSchedule schedule_;
};

TEST_F(ReplayTest, NoiselessReplayReproducesThePlanBitForBit) {
  const ReprovisionPlan plan = MakePlan();
  ASSERT_TRUE(plan.status.ok()) << plan.status.ToString();

  ReplayConfig config;
  config.exec.noise_cv = 0.0;
  const ScheduleReplayResult replay =
      ReplaySchedule(schedule_, plan, schema_, box_, config);
  ASSERT_TRUE(replay.status.ok()) << replay.status.ToString();

  ASSERT_EQ(replay.epochs.size(), plan.steps.size());
  for (size_t e = 0; e < plan.steps.size(); ++e) {
    EXPECT_EQ(replay.epochs[e].toc_cents_per_task,
              plan.steps[e].toc_cents_per_task)
        << "epoch " << e;
    EXPECT_EQ(replay.epochs[e].epoch_objective, plan.steps[e].epoch_objective)
        << "epoch " << e;
  }
  // The whole estimated objective is validated by simulation, not just the
  // per-epoch terms: same kernels, same accounting order.
  EXPECT_EQ(replay.total_objective, plan.total_objective);
}

TEST_F(ReplayTest, NoisyReplayJittersButStaysNearTheEstimate) {
  const ReprovisionPlan plan = MakePlan();
  ASSERT_TRUE(plan.status.ok());

  ReplayConfig config;
  config.exec.noise_cv = 0.05;
  config.exec.seed = 17;
  const ScheduleReplayResult replay =
      ReplaySchedule(schedule_, plan, schema_, box_, config);
  ASSERT_TRUE(replay.status.ok());

  EXPECT_NE(replay.total_objective, plan.total_objective);
  EXPECT_NEAR(replay.total_objective, plan.total_objective,
              0.25 * plan.total_objective);

  // Same seed => same replay; it is a simulation, not a dice roll.
  const ScheduleReplayResult again =
      ReplaySchedule(schedule_, plan, schema_, box_, config);
  EXPECT_EQ(again.total_objective, replay.total_objective);
}

TEST_F(ReplayTest, EpochsDrawIndependentNoiseStreams) {
  // Two epochs with the same workload and the same layout: if both epochs
  // replayed the same noise stream their measurements would coincide.
  EpochSchedule twice;
  twice.Add(workloads_[1].get(), 5.0).Add(workloads_[1].get(), 5.0);

  ReprovisionConfig config;
  config.relative_sla = 0.4;
  ReprovisionPlanner planner(&schema_, &box_, config);
  const ReprovisionPlan plan = planner.Plan(twice);
  ASSERT_TRUE(plan.status.ok());
  ASSERT_EQ(plan.steps[0].placement, plan.steps[1].placement);

  ReplayConfig replay_config;
  replay_config.exec.noise_cv = 0.1;
  const ScheduleReplayResult replay =
      ReplaySchedule(twice, plan, schema_, box_, replay_config);
  ASSERT_TRUE(replay.status.ok());
  EXPECT_NE(replay.epochs[0].measured.elapsed_ms,
            replay.epochs[1].measured.elapsed_ms);
}

TEST_F(ReplayTest, RefusesToReplayABrokenPlan) {
  ReprovisionPlan broken;
  broken.status = Status::Infeasible("nope");
  ReplayConfig config;
  EXPECT_EQ(ReplaySchedule(schedule_, broken, schema_, box_, config)
                .status.code(),
            StatusCode::kInvalidArgument);

  ReprovisionPlan wrong_length;  // OK status but no steps
  EXPECT_EQ(ReplaySchedule(schedule_, wrong_length, schema_, box_, config)
                .status.code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dot
