// Property-style parameterized suites: invariants that must hold across
// sweeps of SLA levels, boxes, capacity caps, devices and concurrency.

#include <gtest/gtest.h>

#include <memory>

#include "dot/dot.h"

namespace dot {
namespace {

// ---------------------------------------------------------------------------
// Device-model properties over every stock class x concurrency grid.
// ---------------------------------------------------------------------------

class DeviceProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeviceProperty, LatencyPositiveAndWithinEnvelope) {
  const StorageClass sc =
      MakeStockClass(static_cast<StockClass>(GetParam()));
  for (IoType t : kAllIoTypes) {
    const LatencyAnchors& a = sc.device().anchors(t);
    const double lo = std::min(a.at_c1_ms, a.at_c300_ms);
    const double hi = std::max(a.at_c1_ms, a.at_c300_ms);
    for (double c = 1.0; c <= 512.0; c *= 2.0) {
      const double v = sc.device().LatencyMs(t, c);
      EXPECT_GT(v, 0.0);
      EXPECT_GE(v, lo - 1e-12);
      EXPECT_LE(v, hi + 1e-12);
    }
  }
}

TEST_P(DeviceProperty, MicrobenchRoundTripsAtArbitraryConcurrency) {
  const StorageClass sc =
      MakeStockClass(static_cast<StockClass>(GetParam()));
  for (int c : {1, 7, 64, 300}) {
    MicrobenchConfig cfg;
    cfg.concurrency = c;
    const MeasuredIoProfile m = RunDeviceMicrobench(sc.device(), cfg);
    for (IoType t : kAllIoTypes) {
      EXPECT_NEAR(m.per_request_ms[t], sc.device().LatencyMs(t, c),
                  sc.device().LatencyMs(t, c) * 1e-6);
    }
  }
}

TEST_P(DeviceProperty, PriceIsPositiveAndFinite) {
  const StorageClass sc =
      MakeStockClass(static_cast<StockClass>(GetParam()));
  EXPECT_GT(sc.price_cents_per_gb_hour(), 0.0);
  EXPECT_LT(sc.price_cents_per_gb_hour(), 1.0);  // < 1 cent/GB/hour
}

INSTANTIATE_TEST_SUITE_P(AllStockClasses, DeviceProperty,
                         ::testing::Range(0, kNumStockClasses));

// ---------------------------------------------------------------------------
// End-to-end DOT invariants over (box, workload-kind, SLA).
// ---------------------------------------------------------------------------

enum class Wk { kTpchOriginal, kTpchModified, kTpcc };

struct DotCase {
  int box;  // 1 or 2
  Wk workload;
  double sla;
};

/// Owns one fully-wired DOT problem.
class DotInstance {
 public:
  explicit DotInstance(const DotCase& c) {
    box_ = c.box == 1 ? MakeBox1() : MakeBox2();
    if (c.workload == Wk::kTpcc) {
      schema_ = MakeTpccSchema(300);
      oltp_ = MakeTpccWorkload(&schema_, &box_, TpccConfig{});
      model_ = oltp_.get();
    } else {
      schema_ = MakeTpchSchema(20.0);
      const bool mod = c.workload == Wk::kTpchModified;
      dss_ = std::make_unique<DssWorkloadModel>(
          "w", &schema_, &box_,
          mod ? MakeModifiedTpchTemplates() : MakeTpchTemplates(),
          mod ? RepeatSequence(5, 20) : RepeatSequence(22, 3),
          PlannerConfig{});
      model_ = dss_.get();
    }
    Profiler profiler(&schema_, &box_);
    profiles_ = std::make_unique<WorkloadProfiles>(profiler.ProfileWorkload(
        *model_,
        [&](const std::vector<int>& p) { return model_->Estimate(p); }));
    problem_.schema = &schema_;
    problem_.box = &box_;
    problem_.workload = model_;
    problem_.relative_sla = c.sla;
    problem_.profiles = profiles_.get();
  }

  const DotProblem& problem() const { return problem_; }
  const Schema& schema() const { return schema_; }
  const BoxConfig& box() const { return box_; }
  const WorkloadModel& model() const { return *model_; }

 private:
  Schema schema_;
  BoxConfig box_;
  std::unique_ptr<DssWorkloadModel> dss_;
  std::unique_ptr<OltpWorkloadModel> oltp_;
  WorkloadModel* model_ = nullptr;
  std::unique_ptr<WorkloadProfiles> profiles_;
  DotProblem problem_;
};

class DotProperty : public ::testing::TestWithParam<DotCase> {};

TEST_P(DotProperty, RecommendationSatisfiesEveryConstraint) {
  DotInstance inst(GetParam());
  DotResult r = DotOptimizer(inst.problem()).Optimize();
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  Layout layout(&inst.schema(), &inst.box(), r.placement);
  EXPECT_TRUE(layout.CheckCapacity().ok());
  PerfEstimate fresh = inst.model().Estimate(r.placement);
  EXPECT_TRUE(MeetsTargets(fresh, r.targets));
  EXPECT_DOUBLE_EQ(Psr(fresh, r.targets), 1.0);
}

TEST_P(DotProperty, NeverCostsMoreThanAllPremium) {
  DotInstance inst(GetParam());
  DotOptimizer optimizer(inst.problem());
  DotResult r = optimizer.Optimize();
  ASSERT_TRUE(r.status.ok());
  const double toc_l0 = optimizer.EstimateToc(
      UniformPlacement(inst.schema().NumObjects(),
                       inst.box().MostExpensiveClass()),
      nullptr);
  EXPECT_LE(r.toc_cents_per_task, toc_l0 * (1 + 1e-9));
}

TEST_P(DotProperty, ReportedNumbersAreInternallyConsistent) {
  DotInstance inst(GetParam());
  DotResult r = DotOptimizer(inst.problem()).Optimize();
  ASSERT_TRUE(r.status.ok());
  Layout layout(&inst.schema(), &inst.box(), r.placement);
  EXPECT_NEAR(r.layout_cost_cents_per_hour,
              layout.CostCentsPerHour(inst.problem().cost_model), 1e-9);
  EXPECT_NEAR(r.toc_cents_per_task,
              r.layout_cost_cents_per_hour / r.estimate.tasks_per_hour,
              r.toc_cents_per_task * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DotProperty,
    ::testing::Values(DotCase{1, Wk::kTpchOriginal, 0.5},
                      DotCase{1, Wk::kTpchOriginal, 0.25},
                      DotCase{2, Wk::kTpchOriginal, 0.5},
                      DotCase{2, Wk::kTpchOriginal, 0.25},
                      DotCase{1, Wk::kTpchModified, 0.5},
                      DotCase{1, Wk::kTpchModified, 0.25},
                      DotCase{2, Wk::kTpchModified, 0.5},
                      DotCase{2, Wk::kTpchModified, 0.25},
                      DotCase{1, Wk::kTpcc, 0.5},
                      DotCase{1, Wk::kTpcc, 0.125},
                      DotCase{2, Wk::kTpcc, 0.5},
                      DotCase{2, Wk::kTpcc, 0.125}),
    [](const auto& info) {
      const DotCase& c = info.param;
      std::string name = "Box" + std::to_string(c.box);
      name += c.workload == Wk::kTpcc
                  ? "Tpcc"
                  : (c.workload == Wk::kTpchModified ? "TpchMod" : "Tpch");
      name += "Sla";
      name += std::to_string(static_cast<int>(c.sla * 1000));
      return name;
    });

// ---------------------------------------------------------------------------
// Capacity-cap sweep on the ES-subset instance (the §4.4.3 protocol).
// ---------------------------------------------------------------------------

class CapacityProperty : public ::testing::TestWithParam<double> {};

TEST_P(CapacityProperty, DotStaysInsideTheCapAndNearEs) {
  const double cap_gb = GetParam();
  Schema schema = MakeTpchEsSubsetSchema(20.0);
  BoxConfig box = MakeBox1();
  box.classes[0].set_capacity_gb(cap_gb);  // cap the HDD RAID 0 (§4.4.3)
  DssWorkloadModel workload("w", &schema, &box, MakeTpchSubsetTemplates(),
                            RepeatSequence(11, 3), PlannerConfig{});
  Profiler profiler(&schema, &box);
  WorkloadProfiles profiles = profiler.ProfileWorkload(
      workload,
      [&](const std::vector<int>& p) { return workload.Estimate(p); });
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = &workload;
  problem.relative_sla = 0.5;
  problem.profiles = &profiles;

  DotResult dot = DotOptimizer(problem).Optimize();
  DotResult es = ExhaustiveSearch(problem);
  ASSERT_EQ(dot.status.ok(), es.status.ok());
  if (!dot.status.ok()) return;
  Layout layout(&schema, &box, dot.placement);
  EXPECT_LT(layout.SpaceByClass()[0], cap_gb);
  // ES is the optimum; DOT must be close (paper: within 16% "in most
  // cases"; we allow 1.5x as the hard property bound).
  EXPECT_LE(es.toc_cents_per_task, dot.toc_cents_per_task * (1 + 1e-9));
  EXPECT_LT(dot.toc_cents_per_task, es.toc_cents_per_task * 1.5);
}

INSTANTIATE_TEST_SUITE_P(HddRaidCaps, CapacityProperty,
                         ::testing::Values(24.0, 12.0, 6.0, 3.0),
                         [](const auto& info) {
                           return "Cap" +
                                  std::to_string(
                                      static_cast<int>(info.param)) +
                                  "Gb";
                         });

// ---------------------------------------------------------------------------
// Discrete cost model sweep over alpha (§5.2).
// ---------------------------------------------------------------------------

class AlphaProperty : public ::testing::TestWithParam<double> {};

TEST_P(AlphaProperty, DiscreteModelStillYieldsFeasibleLayouts) {
  const double alpha = GetParam();
  Schema schema = MakeTpchEsSubsetSchema(20.0);
  BoxConfig box = MakeBox2();
  DssWorkloadModel workload("w", &schema, &box, MakeTpchSubsetTemplates(),
                            RepeatSequence(11, 3), PlannerConfig{});
  Profiler profiler(&schema, &box);
  WorkloadProfiles profiles = profiler.ProfileWorkload(
      workload,
      [&](const std::vector<int>& p) { return workload.Estimate(p); });
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = &workload;
  problem.relative_sla = 0.25;
  problem.profiles = &profiles;
  problem.cost_model.discrete = true;
  problem.cost_model.alpha = alpha;

  DotResult r = DotOptimizer(problem).Optimize();
  ASSERT_TRUE(r.status.ok());
  Layout layout(&schema, &box, r.placement);
  EXPECT_TRUE(layout.CheckCapacity().ok());
  EXPECT_NEAR(r.layout_cost_cents_per_hour,
              layout.CostCentsPerHour(problem.cost_model), 1e-9);
  // With alpha > 0, partially filling an extra device has a fixed price:
  // the layout cost is at least the linear cost.
  EXPECT_GE(r.layout_cost_cents_per_hour,
            LinearLayoutCostCentsPerHour(box, layout.SpaceByClass()) -
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, AlphaProperty,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                         [](const auto& info) {
                           return "Alpha" +
                                  std::to_string(
                                      static_cast<int>(info.param * 100));
                         });

}  // namespace
}  // namespace dot
