#include "workload/epoch_schedule.h"

#include <gtest/gtest.h>

#include "catalog/tpch_schema.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

class EpochScheduleTest : public ::testing::Test {
 protected:
  EpochScheduleTest()
      : schema_(MakeTpchSchema(1.0)),
        box_(MakeBox1()),
        workload_("TPC-H", &schema_, &box_, MakeTpchTemplates(),
                  RepeatSequence(22, 1), PlannerConfig{}) {}

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
};

TEST_F(EpochScheduleTest, AddChainsAndTotalsDurations) {
  EpochSchedule schedule;
  schedule.Add(&workload_, 8.0, "day").Add(&workload_, 16.0, "night");
  ASSERT_EQ(schedule.NumEpochs(), 2);
  EXPECT_DOUBLE_EQ(schedule.TotalHours(), 24.0);
  EXPECT_EQ(schedule.epochs[0].label, "day");
  EXPECT_EQ(schedule.epochs[1].label, "night");
  EXPECT_EQ(schedule.epochs[0].workload, &workload_);
  EXPECT_TRUE(ValidateSchedule(schedule).ok());
}

TEST_F(EpochScheduleTest, ValidationRejectsDegenerateSchedules) {
  EpochSchedule empty;
  EXPECT_EQ(ValidateSchedule(empty).code(), StatusCode::kInvalidArgument);

  EpochSchedule no_workload;
  no_workload.Add(nullptr, 1.0);
  EXPECT_EQ(ValidateSchedule(no_workload).code(),
            StatusCode::kInvalidArgument);

  EpochSchedule zero_duration;
  zero_duration.Add(&workload_, 0.0);
  EXPECT_EQ(ValidateSchedule(zero_duration).code(),
            StatusCode::kInvalidArgument);

  EpochSchedule negative;
  negative.Add(&workload_, -2.0);
  EXPECT_EQ(ValidateSchedule(negative).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dot
