#include "storage/pricing.h"

#include <gtest/gtest.h>

#include "storage/standard_catalog.h"

namespace dot {
namespace {

TEST(PricingTest, PriceCombinesAmortizationAndEnergy) {
  // 100 GB device, $100 purchase, 10 W.
  const double p = PriceCentsPerGbHour(10000.0, 10.0, 100.0);
  const double expected = (10000.0 / (36.0 * 730.0) + 10.0 * 0.007) / 100.0;
  EXPECT_NEAR(p, expected, 1e-12);
}

TEST(PricingTest, ZeroPowerIsPureAmortization) {
  const double p = PriceCentsPerGbHour(26280.0, 0.0, 1.0);
  EXPECT_NEAR(p, 1.0, 1e-12);  // 26280 cents over 26280 hours on 1 GB
}

TEST(PricingTest, PriceScalesInverselyWithCapacity) {
  const double p1 = PriceCentsPerGbHour(1000, 5, 100);
  const double p2 = PriceCentsPerGbHour(1000, 5, 200);
  EXPECT_NEAR(p1 / p2, 2.0, 1e-12);
}

TEST(PricingTest, Raid0AddsControllerCostAndPower) {
  DeviceSpec spec;
  spec.capacity_gb = 500;
  spec.purchase_cost_cents = 3400;
  spec.power_watts = 8.3;
  const double raid = Raid0PriceCentsPerGbHour(spec, 2, 11000, 8.25);
  const double expected =
      ((2 * 3400 + 11000) / (36.0 * 730.0) + (2 * 8.3 + 8.25) * 0.007) /
      1000.0;
  EXPECT_NEAR(raid, expected, 1e-12);
}

TEST(PricingTest, RecomputedPricesMatchTable1WithinTenPercent) {
  // Table 1 row 2 is derived from Table 2 specs by the §2.1 model; our
  // recomputation should land close (documented deviation: the paper's HDD
  // power accounting differs slightly).
  for (int i = 0; i < kNumStockClasses; ++i) {
    const StockClass cls = static_cast<StockClass>(i);
    const StorageClass sc = MakeStockClass(cls);
    const double published = PublishedPriceCentsPerGbHour(cls);
    EXPECT_NEAR(sc.price_cents_per_gb_hour(), published, published * 0.10)
        << StockClassName(cls);
  }
}

TEST(PricingTest, PriceOrderingMatchesPaper) {
  // HDD < HDD RAID0 < L-SSD < L-SSD RAID0 < H-SSD (Table 1).
  double prev = 0.0;
  for (int i = 0; i < kNumStockClasses; ++i) {
    const double p =
        MakeStockClass(static_cast<StockClass>(i)).price_cents_per_gb_hour();
    EXPECT_GT(p, prev) << StockClassName(static_cast<StockClass>(i));
    prev = p;
  }
}

class LayoutCostTest : public ::testing::Test {
 protected:
  LayoutCostTest() : box_(MakeBox1()) {}
  BoxConfig box_;
};

TEST_F(LayoutCostTest, LinearCostIsDotProduct) {
  SpaceUsage used = {10.0, 5.0, 2.0};
  double expected = 0.0;
  for (int j = 0; j < 3; ++j) {
    expected += box_.classes[j].price_cents_per_gb_hour() * used[j];
  }
  EXPECT_NEAR(LinearLayoutCostCentsPerHour(box_, used), expected, 1e-12);
}

TEST_F(LayoutCostTest, LinearCostOfEmptyLayoutIsZero) {
  EXPECT_DOUBLE_EQ(LinearLayoutCostCentsPerHour(box_, {0, 0, 0}), 0.0);
}

TEST_F(LayoutCostTest, DiscreteAlphaZeroEqualsLinear) {
  SpaceUsage used = {30.0, 12.0, 7.0};
  EXPECT_NEAR(DiscreteLayoutCostCentsPerHour(box_, used, 0.0),
              LinearLayoutCostCentsPerHour(box_, used), 1e-12);
}

TEST_F(LayoutCostTest, DiscreteAlphaOneChargesWholeDevices) {
  // 30 GB on the 1000 GB HDD RAID 0 only.
  SpaceUsage used = {30.0, 0.0, 0.0};
  const StorageClass& sc = box_.classes[0];
  const double full_device =
      sc.price_cents_per_gb_hour() * sc.capacity_gb();
  EXPECT_NEAR(DiscreteLayoutCostCentsPerHour(box_, used, 1.0), full_device,
              1e-12);
}

TEST_F(LayoutCostTest, DiscreteUnusedClassCostsNothing) {
  SpaceUsage used = {0.0, 0.0, 1.0};
  const double cost = DiscreteLayoutCostCentsPerHour(box_, used, 1.0);
  const StorageClass& hssd = box_.classes[2];
  EXPECT_NEAR(cost, hssd.price_cents_per_gb_hour() * hssd.capacity_gb(),
              1e-12);
}

TEST_F(LayoutCostTest, DiscreteCostIsMonotoneInAlphaForPartialFill) {
  // Partially-filled devices cost more as alpha grows (discrete part
  // dominates the proportional one).
  SpaceUsage used = {100.0, 50.0, 10.0};
  double prev = -1.0;
  for (double alpha = 0.0; alpha <= 1.0; alpha += 0.25) {
    const double c = DiscreteLayoutCostCentsPerHour(box_, used, alpha);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST_F(LayoutCostTest, DiscreteMultipleUnits) {
  // 1500 GB on 1000 GB HDD RAID 0 units -> 2 units at alpha=1.
  SpaceUsage used = {1500.0, 0.0, 0.0};
  const StorageClass& sc = box_.classes[0];
  EXPECT_NEAR(DiscreteLayoutCostCentsPerHour(box_, used, 1.0),
              2.0 * sc.price_cents_per_gb_hour() * sc.capacity_gb(), 1e-9);
}

TEST_F(LayoutCostTest, DispatcherSelectsModel) {
  SpaceUsage used = {20.0, 20.0, 20.0};
  CostModelSpec linear;
  EXPECT_NEAR(LayoutCostCentsPerHour(box_, used, linear),
              LinearLayoutCostCentsPerHour(box_, used), 1e-12);
  CostModelSpec discrete{true, 0.7};
  EXPECT_NEAR(LayoutCostCentsPerHour(box_, used, discrete),
              DiscreteLayoutCostCentsPerHour(box_, used, 0.7), 1e-12);
}

TEST(PricingDeathTest, InvalidAlphaAborts) {
  BoxConfig box = MakeBox1();
  EXPECT_DEATH(
      (void)DiscreteLayoutCostCentsPerHour(box, {1, 1, 1}, 1.5), "alpha");
}

TEST(PricingTest, WorkloadTocScalesWithTime) {
  EXPECT_NEAR(WorkloadTocCents(10.0, 3600.0 * 1000.0), 10.0, 1e-12);
  EXPECT_NEAR(WorkloadTocCents(10.0, 1800.0 * 1000.0), 5.0, 1e-12);
}

}  // namespace
}  // namespace dot
