#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace dot {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DoubleMeanNearHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextUniform(-2.5, 4.0);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 4.0);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(2024);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(8);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.05);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.NextExponential(1.0), 0.0);
}

TEST(RngDeathTest, BoundedZeroAborts) {
  Rng rng(1);
  EXPECT_DEATH((void)rng.NextBounded(0), "positive bound");
}

}  // namespace
}  // namespace dot
