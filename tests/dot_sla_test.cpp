#include "dot/sla.h"

#include <gtest/gtest.h>

#include "catalog/tpcc_schema.h"
#include "catalog/tpch_schema.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

class SlaTest : public ::testing::Test {
 protected:
  SlaTest()
      : schema_(MakeTpchSchema(20.0)),
        box_(MakeBox1()),
        workload_("TPC-H", &schema_, &box_, MakeTpchTemplates(),
                  RepeatSequence(22, 1), PlannerConfig{}) {}

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
};

TEST_F(SlaTest, CapsAreBestTimesOverRelativeSla) {
  PerfTargets t =
      MakePerfTargets(workload_, box_, schema_.NumObjects(), 0.5);
  ASSERT_EQ(t.query_caps_ms.size(), 22u);
  for (size_t i = 0; i < t.query_caps_ms.size(); ++i) {
    EXPECT_NEAR(t.query_caps_ms[i], t.best_case.unit_times_ms[i] / 0.5,
                1e-9);
  }
}

TEST_F(SlaTest, BestCaseAlwaysMeetsItsOwnTargets) {
  PerfTargets t =
      MakePerfTargets(workload_, box_, schema_.NumObjects(), 1.0);
  EXPECT_TRUE(MeetsTargets(t.best_case, t));
  EXPECT_DOUBLE_EQ(Psr(t.best_case, t), 1.0);
}

TEST_F(SlaTest, LooserSlaAdmitsSlowerLayouts) {
  PerfEstimate on_hdd_raid =
      workload_.Estimate(UniformPlacement(schema_.NumObjects(), 0));
  PerfTargets strict =
      MakePerfTargets(workload_, box_, schema_.NumObjects(), 0.9);
  PerfTargets loose =
      MakePerfTargets(workload_, box_, schema_.NumObjects(), 0.05);
  EXPECT_FALSE(MeetsTargets(on_hdd_raid, strict));
  EXPECT_TRUE(MeetsTargets(on_hdd_raid, loose));
}

TEST_F(SlaTest, PsrCountsViolatingQueries) {
  PerfTargets t =
      MakePerfTargets(workload_, box_, schema_.NumObjects(), 1.0);
  PerfEstimate est = t.best_case;
  // Push 3 of 22 queries over their caps.
  est.unit_times_ms[0] *= 10;
  est.unit_times_ms[5] *= 10;
  est.unit_times_ms[9] *= 10;
  EXPECT_NEAR(Psr(est, t), 19.0 / 22.0, 1e-12);
  EXPECT_FALSE(MeetsTargets(est, t));
}

TEST_F(SlaTest, ThroughputTargets) {
  Schema tpcc = MakeTpccSchema(300);
  BoxConfig box2 = MakeBox2();
  auto oltp = MakeTpccWorkload(&tpcc, &box2, TpccConfig{});
  PerfTargets t = MakePerfTargets(*oltp, box2, tpcc.NumObjects(), 0.25);
  EXPECT_EQ(t.kind, SlaKind::kThroughput);
  EXPECT_NEAR(t.min_tpmc, t.best_case.tpmc * 0.25, 1e-9);

  PerfEstimate slow =
      oltp->Estimate(UniformPlacement(tpcc.NumObjects(), 0));
  // PSR is binary for throughput workloads.
  const double psr = Psr(slow, t);
  EXPECT_TRUE(psr == 0.0 || psr == 1.0);
  EXPECT_EQ(MeetsTargets(slow, t), psr == 1.0);
}

TEST_F(SlaTest, RejectsOutOfRangeSla) {
  EXPECT_DEATH(
      (void)MakePerfTargets(workload_, box_, schema_.NumObjects(), 0.0),
      "relative SLA");
  EXPECT_DEATH(
      (void)MakePerfTargets(workload_, box_, schema_.NumObjects(), 1.5),
      "relative SLA");
}

}  // namespace
}  // namespace dot
