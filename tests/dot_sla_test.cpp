#include "dot/sla.h"

#include <gtest/gtest.h>

#include <cmath>

#include "catalog/tpcc_schema.h"
#include "catalog/tpch_schema.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

class SlaTest : public ::testing::Test {
 protected:
  SlaTest()
      : schema_(MakeTpchSchema(20.0)),
        box_(MakeBox1()),
        workload_("TPC-H", &schema_, &box_, MakeTpchTemplates(),
                  RepeatSequence(22, 1), PlannerConfig{}) {}

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
};

TEST_F(SlaTest, CapsAreBestTimesOverRelativeSla) {
  PerfTargets t =
      MakePerfTargets(workload_, box_, schema_.NumObjects(), 0.5);
  ASSERT_EQ(t.query_caps_ms.size(), 22u);
  for (size_t i = 0; i < t.query_caps_ms.size(); ++i) {
    EXPECT_NEAR(t.query_caps_ms[i], t.best_case.unit_times_ms[i] / 0.5,
                1e-9);
  }
}

TEST_F(SlaTest, BestCaseAlwaysMeetsItsOwnTargets) {
  PerfTargets t =
      MakePerfTargets(workload_, box_, schema_.NumObjects(), 1.0);
  EXPECT_TRUE(MeetsTargets(t.best_case, t));
  EXPECT_DOUBLE_EQ(Psr(t.best_case, t), 1.0);
}

TEST_F(SlaTest, LooserSlaAdmitsSlowerLayouts) {
  PerfEstimate on_hdd_raid =
      workload_.Estimate(UniformPlacement(schema_.NumObjects(), 0));
  PerfTargets strict =
      MakePerfTargets(workload_, box_, schema_.NumObjects(), 0.9);
  PerfTargets loose =
      MakePerfTargets(workload_, box_, schema_.NumObjects(), 0.05);
  EXPECT_FALSE(MeetsTargets(on_hdd_raid, strict));
  EXPECT_TRUE(MeetsTargets(on_hdd_raid, loose));
}

TEST_F(SlaTest, PsrCountsViolatingQueries) {
  PerfTargets t =
      MakePerfTargets(workload_, box_, schema_.NumObjects(), 1.0);
  PerfEstimate est = t.best_case;
  // Push 3 of 22 queries over their caps.
  est.unit_times_ms[0] *= 10;
  est.unit_times_ms[5] *= 10;
  est.unit_times_ms[9] *= 10;
  EXPECT_NEAR(Psr(est, t), 19.0 / 22.0, 1e-12);
  EXPECT_FALSE(MeetsTargets(est, t));
}

TEST_F(SlaTest, ThroughputTargets) {
  Schema tpcc = MakeTpccSchema(300);
  BoxConfig box2 = MakeBox2();
  auto oltp = MakeTpccWorkload(&tpcc, &box2, TpccConfig{});
  PerfTargets t = MakePerfTargets(*oltp, box2, tpcc.NumObjects(), 0.25);
  EXPECT_EQ(t.kind, SlaKind::kThroughput);
  EXPECT_NEAR(t.min_tpmc, t.best_case.tpmc * 0.25, 1e-9);

  PerfEstimate slow =
      oltp->Estimate(UniformPlacement(tpcc.NumObjects(), 0));
  // PSR is binary for throughput workloads.
  const double psr = Psr(slow, t);
  EXPECT_TRUE(psr == 0.0 || psr == 1.0);
  EXPECT_EQ(MeetsTargets(slow, t), psr == 1.0);
}

// --- tail-latency targets (DESIGN.md §10.4) ---------------------------

TEST(TailSlaTest, NormalQuantileMatchesKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.95), 1.6448536269514722, 1e-7);
  EXPECT_NEAR(NormalQuantile(0.99), 2.3263478740408408, 1e-7);
  // Symmetry: z_{1-p} = -z_p.
  EXPECT_NEAR(NormalQuantile(0.05), -NormalQuantile(0.95), 1e-7);
  EXPECT_DEATH((void)NormalQuantile(0.0), "quantile");
  EXPECT_DEATH((void)NormalQuantile(1.0), "quantile");
}

TEST(TailSlaTest, TailFactorProperties) {
  // Disabled configurations change nothing, exactly.
  EXPECT_EQ(TailLatencyFactor(0.0, 0.3), 1.0);
  EXPECT_EQ(TailLatencyFactor(0.5, 0.3), 1.0);
  EXPECT_EQ(TailLatencyFactor(0.95, 0.0), 1.0);

  // Above the median the tail sits above the mean, monotonically in both
  // the percentile and the jitter.
  const double f95 = TailLatencyFactor(0.95, 0.25);
  const double f99 = TailLatencyFactor(0.99, 0.25);
  EXPECT_GT(f95, 1.0);
  EXPECT_GT(f99, f95);
  EXPECT_GT(TailLatencyFactor(0.95, 0.5), f95);

  // Closed form: sigma^2 = ln(1 + cv^2), factor = exp(sigma z - sigma^2/2).
  const double sigma = std::sqrt(std::log(1.0 + 0.25 * 0.25));
  EXPECT_NEAR(f95,
              std::exp(sigma * NormalQuantile(0.95) - 0.5 * sigma * sigma),
              1e-12);
  EXPECT_DEATH((void)TailLatencyFactor(1.0, 0.3), "percentile");
}

TEST(TailSlaTest, CalibrationRecoversTheCv) {
  // Degenerate inputs calibrate to "no jitter".
  EXPECT_EQ(CalibrateLatencyCv({}), 0.0);
  EXPECT_EQ(CalibrateLatencyCv({5.0}), 0.0);
  EXPECT_EQ(CalibrateLatencyCv({4.0, 4.0, 4.0}), 0.0);

  // Known mean 10, sample stddev 2 -> cv 0.2 (exact arithmetic).
  EXPECT_DOUBLE_EQ(CalibrateLatencyCv({8.0, 12.0, 8.0, 12.0}),
                   std::sqrt(16.0 / 3.0) / 10.0);
}

TEST_F(SlaTest, TailTargetTightensResponseTimeCaps) {
  TailSla tail;
  tail.percentile = 0.95;
  tail.latency_cv = 0.25;
  const PerfTargets mean_only =
      MakePerfTargets(workload_, box_, schema_.NumObjects(), 0.5);
  const PerfTargets tailed = MakePerfTargets(
      workload_, box_, schema_.NumObjects(), 0.5, /*io_scale=*/{}, tail);
  const double factor = TailLatencyFactor(0.95, 0.25);
  ASSERT_EQ(tailed.query_caps_ms.size(), mean_only.query_caps_ms.size());
  for (size_t i = 0; i < tailed.query_caps_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(tailed.query_caps_ms[i],
                     mean_only.query_caps_ms[i] / factor);
    EXPECT_LT(tailed.query_caps_ms[i], mean_only.query_caps_ms[i]);
  }
  EXPECT_DOUBLE_EQ(tailed.tail_percentile, 0.95);
  // The best case itself is measured, not tightened.
  EXPECT_EQ(tailed.best_case.unit_times_ms, mean_only.best_case.unit_times_ms);
}

TEST_F(SlaTest, DefaultTailSlaIsBitIdenticalToMeanOnlyTargets) {
  const PerfTargets mean_only =
      MakePerfTargets(workload_, box_, schema_.NumObjects(), 0.5);
  const PerfTargets defaulted = MakePerfTargets(
      workload_, box_, schema_.NumObjects(), 0.5, /*io_scale=*/{}, TailSla{});
  EXPECT_EQ(defaulted.query_caps_ms, mean_only.query_caps_ms);
  EXPECT_EQ(defaulted.tail_percentile, 0.0);
}

TEST(TailSlaTest, ThroughputTargetsIgnoreTheTail) {
  Schema tpcc = MakeTpccSchema(300);
  BoxConfig box2 = MakeBox2();
  auto oltp = MakeTpccWorkload(&tpcc, &box2, TpccConfig{});
  TailSla tail;
  tail.percentile = 0.99;
  tail.latency_cv = 0.5;
  const PerfTargets plain =
      MakePerfTargets(*oltp, box2, tpcc.NumObjects(), 0.25);
  const PerfTargets tailed = MakePerfTargets(*oltp, box2, tpcc.NumObjects(),
                                             0.25, /*io_scale=*/{}, tail);
  EXPECT_DOUBLE_EQ(tailed.min_tpmc, plain.min_tpmc);
  EXPECT_EQ(tailed.tail_percentile, 0.0);
}

TEST_F(SlaTest, RejectsOutOfRangeSla) {
  EXPECT_DEATH(
      (void)MakePerfTargets(workload_, box_, schema_.NumObjects(), 0.0),
      "relative SLA");
  EXPECT_DEATH(
      (void)MakePerfTargets(workload_, box_, schema_.NumObjects(), 1.5),
      "relative SLA");
}

}  // namespace
}  // namespace dot
