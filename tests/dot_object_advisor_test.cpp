#include "dot/object_advisor.h"

#include <gtest/gtest.h>

#include "catalog/tpch_schema.h"
#include "dot/layout.h"
#include "dot/optimizer.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/profiler.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

class ObjectAdvisorTest : public ::testing::Test {
 protected:
  ObjectAdvisorTest()
      : schema_(MakeTpchSchema(20.0)),
        box_(MakeBox1()),
        workload_("TPC-H", &schema_, &box_, MakeTpchTemplates(),
                  RepeatSequence(22, 3), PlannerConfig{}) {
    problem_.schema = &schema_;
    problem_.box = &box_;
    problem_.workload = &workload_;
    problem_.relative_sla = 0.5;
  }

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
  DotProblem problem_;
};

TEST_F(ObjectAdvisorTest, ProducesACompleteValidPlacement) {
  const std::vector<int> placement = ObjectAdvisorPlacement(problem_);
  ASSERT_EQ(placement.size(), static_cast<size_t>(schema_.NumObjects()));
  Layout layout(&schema_, &box_, placement);
  EXPECT_TRUE(layout.CheckCapacity().ok());
}

TEST_F(ObjectAdvisorTest, PromotesHotObjectsOffTheCheapClass) {
  const std::vector<int> placement = ObjectAdvisorPlacement(problem_);
  int promoted = 0;
  for (int cls : placement) {
    if (cls != 0) ++promoted;  // class 0 (HDD RAID 0) is cheapest on Box 1
  }
  EXPECT_GT(promoted, 0);
}

TEST_F(ObjectAdvisorTest, IgnoresToc) {
  // OA should spend more per hour than DOT at the same SLA — the paper's
  // Figure 3 gap.
  Profiler profiler(&schema_, &box_);
  WorkloadProfiles profiles = profiler.ProfileWorkload(
      workload_,
      [&](const std::vector<int>& p) { return workload_.Estimate(p); });
  DotProblem p = problem_;
  p.profiles = &profiles;
  DotResult dot = DotOptimizer(p).Optimize();
  ASSERT_TRUE(dot.status.ok());

  const std::vector<int> oa = ObjectAdvisorPlacement(problem_);
  DotOptimizer estimator(p);
  PerfEstimate oa_est;
  const double oa_toc = estimator.EstimateToc(oa, &oa_est);
  EXPECT_GT(oa_toc, dot.toc_cents_per_task);
}

TEST_F(ObjectAdvisorTest, ColdObjectsStayPut) {
  // Objects with zero I/O under the baseline plans are never promoted —
  // the plan-interaction blindness the paper criticises.
  const PerfEstimate baseline =
      workload_.Estimate(UniformPlacement(schema_.NumObjects(), 0));
  const std::vector<int> placement = ObjectAdvisorPlacement(problem_);
  for (const DbObject& o : schema_.objects()) {
    if (baseline.io_by_object[o.id].IsZero()) {
      EXPECT_EQ(placement[o.id], 0) << o.name;
    }
  }
}

TEST_F(ObjectAdvisorTest, RespectsCapacityBudgets) {
  BoxConfig capped = box_;
  capped.classes[2].set_capacity_gb(1.0);  // H-SSD almost full
  DssWorkloadModel workload("w", &schema_, &capped, MakeTpchTemplates(),
                            RepeatSequence(22, 3), PlannerConfig{});
  DotProblem p;
  p.schema = &schema_;
  p.box = &capped;
  p.workload = &workload;
  const std::vector<int> placement = ObjectAdvisorPlacement(p);
  double on_hssd = 0;
  for (const DbObject& o : schema_.objects()) {
    if (placement[o.id] == 2) on_hssd += o.size_gb;
  }
  EXPECT_LT(on_hssd, 1.0);
}

}  // namespace
}  // namespace dot
