// Pins the stateful epoch planner (dot/reprovision.h) to the single-shot
// optimizer stack it is built from:
//   * one epoch + zero migration reproduces ExactSearch / Optimize bit for
//     bit (randomized instances, 1/4/hardware threads, including
//     infeasibility verdicts);
//   * on small multi-epoch instances the epoch DP over the exhaustive pool
//     matches brute-force enumeration over all layout sequences;
//   * the pooled plan never loses to the frozen-layout or
//     migration-oblivious baselines (they are pool sequences);
//   * the migrate-vs-stay frontier moves the right way as migration gets
//     more expensive.

#include "dot/reprovision.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dot/bnb_search.h"
#include "dot/candidate_evaluator.h"
#include "dot/optimizer.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/profiler.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

/// A randomized DSS instance, sized for exact search (4-6 objects).
struct RandomInstance {
  Schema schema;
  BoxConfig box;
  std::unique_ptr<DssWorkloadModel> workload;

  RandomInstance(uint64_t seed, int tables) {
    Rng rng(seed);
    box = rng.NextBounded(2) == 0 ? MakeBox1() : MakeBox2();
    std::vector<QuerySpec> templates;
    for (int i = 0; i < tables; ++i) {
      const std::string name = "t" + std::to_string(i);
      schema.AddTable(name, 1e5 * (1 + rng.NextBounded(20)),
                      60 + 20 * rng.NextBounded(6));
      schema.AddIndex(name + "_pk", schema.FindObject(name), 8);
      QuerySpec q;
      q.name = "q" + std::to_string(i);
      RelationAccess ra;
      ra.table = name;
      ra.index_sargable = rng.NextBounded(2) == 0;
      ra.selectivity = ra.index_sargable ? rng.NextUniform(0.0005, 0.01)
                                         : rng.NextUniform(0.2, 1.0);
      q.relations = {ra};
      templates.push_back(std::move(q));
    }
    const int num_templates = static_cast<int>(templates.size());
    if (rng.NextBounded(2) == 0) {
      const int premium = box.MostExpensiveClass();
      box.classes[static_cast<size_t>(premium)].set_capacity_gb(
          schema.TotalSizeGb() * rng.NextUniform(0.3, 0.8));
    }
    workload = std::make_unique<DssWorkloadModel>(
        "rand", &schema, &box, std::move(templates),
        RepeatSequence(num_templates, 2), PlannerConfig{});
  }

  DotProblem Problem() const {
    DotProblem p;
    p.schema = &schema;
    p.box = &box;
    p.workload = workload.get();
    return p;
  }
};

/// A fixed 3-table instance whose three "epoch" workloads each hammer a
/// different table with full scans (the others get point reads), so the
/// three solo optima genuinely differ and re-provisioning has something to
/// decide.
struct DriftInstance {
  Schema schema;
  BoxConfig box = MakeBox1();
  std::vector<std::unique_ptr<DssWorkloadModel>> epochs;

  DriftInstance() {
    for (int i = 0; i < 3; ++i) {
      const std::string name = "t" + std::to_string(i);
      schema.AddTable(name, 2e6 + 5e5 * i, 120);
      schema.AddIndex(name + "_pk", schema.FindObject(name), 8);
    }
    for (int hot = 0; hot < 3; ++hot) {
      std::vector<QuerySpec> templates;
      for (int i = 0; i < 3; ++i) {
        QuerySpec q;
        q.name = "q" + std::to_string(i);
        RelationAccess ra;
        ra.table = "t" + std::to_string(i);
        if (i == hot) {
          ra.selectivity = 1.0;
          ra.index_sargable = false;
        } else {
          ra.selectivity = 0.001;
          ra.index_sargable = true;
        }
        q.relations = {ra};
        templates.push_back(std::move(q));
      }
      epochs.push_back(std::make_unique<DssWorkloadModel>(
          "epoch" + std::to_string(hot), &schema, &box, std::move(templates),
          RepeatSequence(3, 2), PlannerConfig{}));
    }
  }
};

MigrationCostModel SomeMigration(double transfer, double downtime) {
  MigrationCostModel m;
  m.transfer_price_cents_per_gb = transfer;
  m.downtime_price_cents_per_hour = downtime;
  return m;
}

TEST(ReprovisionTest, OneEpochZeroMigrationMatchesExactSearchBitwise) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 104729);
    const int tables = 2 + static_cast<int>(rng.NextBounded(2));
    RandomInstance inst(seed, tables);
    DotProblem problem = inst.Problem();
    problem.relative_sla = 0.25 + 0.2 * static_cast<double>(seed % 3);
    if (seed % 3 == 0) {
      problem.cost_model.discrete = true;
      problem.cost_model.alpha = 0.5;
    }
    const DotResult es = ExactSearch(problem, ExactStrategy::kBranchAndBound);

    const double duration = seed % 2 == 0 ? 1.0 : 6.5;
    std::vector<int> current;
    if (seed % 2 == 1) {
      for (int o = 0; o < inst.schema.NumObjects(); ++o) {
        current.push_back(
            static_cast<int>(rng.NextBounded(
                static_cast<uint64_t>(inst.box.NumClasses()))));
      }
    }

    for (int threads : {1, 4, hw}) {
      ReprovisionConfig config;
      config.relative_sla = problem.relative_sla;
      config.cost_model = problem.cost_model;
      config.search = EpochSearch::kExact;
      config.options.num_threads = threads;
      ReprovisionPlanner planner(&inst.schema, &inst.box, config);

      EpochSchedule schedule;
      schedule.Add(inst.workload.get(), duration);
      const ReprovisionPlan plan = planner.Plan(schedule, current);
      const std::string what =
          "seed " + std::to_string(seed) + " threads " +
          std::to_string(threads);

      ASSERT_EQ(plan.status.code(), es.status.code())
          << what << ": " << plan.status.ToString() << " vs "
          << es.status.ToString();
      if (!es.status.ok()) continue;
      ASSERT_EQ(plan.steps.size(), 1u) << what;
      EXPECT_EQ(plan.steps[0].placement, es.placement) << what;
      EXPECT_EQ(plan.steps[0].toc_cents_per_task, es.toc_cents_per_task)
          << what;
      EXPECT_EQ(plan.total_objective, es.toc_cents_per_task * duration)
          << what;
      EXPECT_EQ(plan.steps[0].migration_cents, 0.0) << what;
      EXPECT_EQ(plan.num_migrations,
                current.empty() || current == es.placement ? 0 : 1)
          << what;
    }
  }
}

TEST(ReprovisionTest, OneEpochMatchesDotOptimizeBitwise) {
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    RandomInstance inst(seed, 3);
    DotProblem problem = inst.Problem();
    problem.relative_sla = 0.5;
    Profiler profiler(&inst.schema, &inst.box);
    const WorkloadProfiles profiles = profiler.ProfileWorkload(
        *inst.workload,
        [&](const std::vector<int>& p) { return inst.workload->Estimate(p); });
    problem.profiles = &profiles;
    const DotResult dot = DotOptimizer(problem).Optimize();

    ReprovisionConfig config;
    config.relative_sla = problem.relative_sla;
    config.search = EpochSearch::kDot;
    ReprovisionPlanner planner(&inst.schema, &inst.box, config);
    EpochSchedule schedule;
    schedule.Add(inst.workload.get(), 1.0, "only", &profiles);
    const ReprovisionPlan plan = planner.Plan(schedule);

    ASSERT_EQ(plan.status.code(), dot.status.code()) << "seed " << seed;
    if (!dot.status.ok()) continue;
    EXPECT_EQ(plan.steps[0].placement, dot.placement) << "seed " << seed;
    EXPECT_EQ(plan.steps[0].toc_cents_per_task, dot.toc_cents_per_task)
        << "seed " << seed;
    EXPECT_EQ(plan.total_objective, dot.toc_cents_per_task) << "seed " << seed;
  }
}

TEST(ReprovisionTest, ExhaustivePoolDpMatchesBruteForceOverSequences) {
  // 2 objects on a 3-class box: the exhaustive pool is all 9 layouts, and
  // every one of the 9^3 = 729 layout sequences is enumerable.
  Schema schema;
  schema.AddTable("t0", 3e6, 120);
  schema.AddIndex("t0_pk", 0, 8);
  BoxConfig box = MakeBox1();

  std::vector<std::unique_ptr<DssWorkloadModel>> workloads;
  for (int e = 0; e < 3; ++e) {
    QuerySpec q;
    q.name = "q";
    RelationAccess ra;
    ra.table = "t0";
    ra.selectivity = e == 0 ? 1.0 : 0.002 * (e + 1);
    ra.index_sargable = e != 0;
    q.relations = {ra};
    workloads.push_back(std::make_unique<DssWorkloadModel>(
        "w" + std::to_string(e), &schema, &box,
        std::vector<QuerySpec>{q}, RepeatSequence(1, 3), PlannerConfig{}));
  }

  EpochSchedule schedule;
  schedule.Add(workloads[0].get(), 4.0, "scan");
  schedule.Add(workloads[1].get(), 10.0, "points");
  schedule.Add(workloads[2].get(), 7.0, "points-wide");

  ReprovisionConfig config;
  config.relative_sla = 0.4;
  config.migration = SomeMigration(50.0, 2000.0);
  config.migration_weight = 1e-3;
  config.exhaustive_pool = true;
  ReprovisionPlanner planner(&schema, &box, config);

  const std::vector<int> current{0, 0};
  const ReprovisionPlan plan = planner.Plan(schedule, current);
  ASSERT_TRUE(plan.status.ok()) << plan.status.ToString();
  EXPECT_EQ(plan.pool_size, 9);

  // Brute force through the planner's own sequence evaluator (the
  // documented accounting contract makes the totals comparable bit for
  // bit).
  double best_total = 0.0;
  std::vector<std::vector<int>> best_seq;
  for (int a = 0; a < 9; ++a) {
    for (int b = 0; b < 9; ++b) {
      for (int c = 0; c < 9; ++c) {
        const std::vector<std::vector<int>> seq{
            DecodeLayoutIndex(a, 2, 3), DecodeLayoutIndex(b, 2, 3),
            DecodeLayoutIndex(c, 2, 3)};
        const ReprovisionPlan eval =
            planner.EvaluateSequence(schedule, seq, current);
        if (!eval.status.ok()) continue;
        if (best_seq.empty() || eval.total_objective < best_total) {
          best_total = eval.total_objective;
          best_seq = seq;
        }
      }
    }
  }
  ASSERT_FALSE(best_seq.empty());
  EXPECT_DOUBLE_EQ(plan.total_objective, best_total);
  for (int e = 0; e < 3; ++e) {
    EXPECT_EQ(plan.steps[static_cast<size_t>(e)].placement,
              best_seq[static_cast<size_t>(e)])
        << "epoch " << e;
  }
}

TEST(ReprovisionTest, PooledPlanNeverLosesToEitherBaseline) {
  DriftInstance inst;
  EpochSchedule schedule;
  schedule.Add(inst.epochs[0].get(), 8.0, "morning");
  schedule.Add(inst.epochs[1].get(), 8.0, "afternoon");
  schedule.Add(inst.epochs[2].get(), 6.0, "night");
  schedule.Add(inst.epochs[0].get(), 2.0, "wrap");

  for (double transfer : {0.0, 20.0, 2000.0}) {
    ReprovisionConfig config;
    config.relative_sla = 0.4;
    config.migration = SomeMigration(transfer, 100.0 * transfer);
    ReprovisionPlanner planner(&inst.schema, &inst.box, config);

    // Per-epoch solo optima (the migration-oblivious baseline's layouts;
    // the first one doubles as the frozen baseline).
    std::vector<std::vector<int>> solo;
    for (const Epoch& epoch : schedule.epochs) {
      DotProblem p;
      p.schema = &inst.schema;
      p.box = &inst.box;
      p.workload = epoch.workload;
      p.relative_sla = config.relative_sla;
      const DotResult r = ExactSearch(p, ExactStrategy::kBranchAndBound);
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      solo.push_back(r.placement);
    }
    const std::vector<int> current = solo[0];
    const std::vector<std::vector<int>> frozen(4, solo[0]);

    const ReprovisionPlan plan = planner.Plan(schedule, current);
    ASSERT_TRUE(plan.status.ok()) << plan.status.ToString();
    const ReprovisionPlan frozen_eval =
        planner.EvaluateSequence(schedule, frozen, current);
    const ReprovisionPlan oblivious_eval =
        planner.EvaluateSequence(schedule, solo, current);
    ASSERT_TRUE(frozen_eval.status.ok());
    ASSERT_TRUE(oblivious_eval.status.ok());

    EXPECT_LE(plan.total_objective, frozen_eval.total_objective)
        << "transfer " << transfer;
    EXPECT_LE(plan.total_objective, oblivious_eval.total_objective)
        << "transfer " << transfer;
  }
}

TEST(ReprovisionTest, MigrationPriceMovesThePlanAlongTheFrontier) {
  DriftInstance inst;
  EpochSchedule schedule;
  schedule.Add(inst.epochs[0].get(), 8.0);
  schedule.Add(inst.epochs[1].get(), 8.0);
  schedule.Add(inst.epochs[2].get(), 8.0);

  // The solo optima differ across epochs — otherwise this instance tests
  // nothing.
  std::vector<std::vector<int>> solo;
  for (const Epoch& epoch : schedule.epochs) {
    DotProblem p;
    p.schema = &inst.schema;
    p.box = &inst.box;
    p.workload = epoch.workload;
    p.relative_sla = 0.4;
    solo.push_back(ExactSearch(p, ExactStrategy::kBranchAndBound).placement);
  }
  EXPECT_NE(solo[0], solo[1]);
  const std::vector<int> current = solo[0];

  int previous_migrations = -1;
  for (double transfer : {0.0, 1.0, 1e7}) {
    ReprovisionConfig config;
    config.relative_sla = 0.4;
    config.migration = SomeMigration(transfer, 0.0);
    ReprovisionPlanner planner(&inst.schema, &inst.box, config);
    const ReprovisionPlan plan = planner.Plan(schedule, current);
    ASSERT_TRUE(plan.status.ok()) << plan.status.ToString();

    if (transfer == 0.0) {
      // Free migration: the plan is the greedy per-epoch solo optimum.
      for (int e = 0; e < 3; ++e) {
        EXPECT_EQ(plan.steps[static_cast<size_t>(e)].placement,
                  solo[static_cast<size_t>(e)])
            << "epoch " << e;
      }
    }
    if (transfer == 1e7) {
      // Prohibitive migration: never leave the (feasible) current layout.
      EXPECT_EQ(plan.num_migrations, 0);
      for (const EpochPlanStep& step : plan.steps) {
        EXPECT_EQ(step.placement, current);
      }
    }
    if (previous_migrations >= 0) {
      EXPECT_LE(plan.num_migrations, previous_migrations)
          << "transfer " << transfer;
    }
    previous_migrations = plan.num_migrations;
  }
}

TEST(ReprovisionTest, PlanIsBitIdenticalAcrossThreadCounts) {
  DriftInstance inst;
  EpochSchedule schedule;
  schedule.Add(inst.epochs[0].get(), 8.0);
  schedule.Add(inst.epochs[1].get(), 8.0);
  schedule.Add(inst.epochs[2].get(), 8.0);

  ReprovisionConfig config;
  config.relative_sla = 0.4;
  config.migration = SomeMigration(10.0, 500.0);
  config.options.num_threads = 1;
  const ReprovisionPlan base =
      ReprovisionPlanner(&inst.schema, &inst.box, config)
          .Plan(schedule, std::vector<int>{0, 0, 0, 0, 0, 0});
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (int threads : {4, hw}) {
    config.options.num_threads = threads;
    const ReprovisionPlan plan =
        ReprovisionPlanner(&inst.schema, &inst.box, config)
            .Plan(schedule, std::vector<int>{0, 0, 0, 0, 0, 0});
    ASSERT_TRUE(plan.status.ok());
    EXPECT_EQ(plan.total_objective, base.total_objective)
        << threads << " threads";
    EXPECT_EQ(plan.total_migration_cents, base.total_migration_cents)
        << threads << " threads";
    ASSERT_EQ(plan.steps.size(), base.steps.size());
    for (size_t e = 0; e < plan.steps.size(); ++e) {
      EXPECT_EQ(plan.steps[e].placement, base.steps[e].placement)
          << threads << " threads, epoch " << e;
      EXPECT_EQ(plan.steps[e].toc_cents_per_task,
                base.steps[e].toc_cents_per_task)
          << threads << " threads, epoch " << e;
    }
  }
}

TEST(ReprovisionTest, RejectsDegenerateInputs) {
  DriftInstance inst;
  ReprovisionConfig config;
  ReprovisionPlanner planner(&inst.schema, &inst.box, config);

  EpochSchedule empty;
  EXPECT_EQ(planner.Plan(empty).status.code(), StatusCode::kInvalidArgument);

  EpochSchedule schedule;
  schedule.Add(inst.epochs[0].get(), 1.0);
  EXPECT_EQ(planner.Plan(schedule, std::vector<int>{0}).status.code(),
            StatusCode::kInvalidArgument);

  // kDot without profiles is a usage error, not an abort.
  ReprovisionConfig dot_config;
  dot_config.search = EpochSearch::kDot;
  EXPECT_EQ(ReprovisionPlanner(&inst.schema, &inst.box, dot_config)
                .Plan(schedule)
                .status.code(),
            StatusCode::kInvalidArgument);

  // An exhaustive pool beyond the guard reports OutOfRange (the
  // enumeration convention, dot/bnb_search.h).
  ReprovisionConfig big_config;
  big_config.exhaustive_pool = true;
  big_config.max_pool_layouts = 10;  // 3^6 = 729 > 10
  EXPECT_EQ(ReprovisionPlanner(&inst.schema, &inst.box, big_config)
                .Plan(schedule)
                .status.code(),
            StatusCode::kOutOfRange);

  // A sequence of the wrong length is rejected by the evaluator too.
  EXPECT_EQ(planner
                .EvaluateSequence(schedule,
                                  std::vector<std::vector<int>>{})
                .status.code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dot
