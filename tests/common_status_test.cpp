#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace dot {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::CapacityExceeded("x").code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Infeasible("no layout").message(), "no layout");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::CapacityExceeded("HDD: 12 GB over");
  EXPECT_EQ(s.ToString(), "CapacityExceeded: HDD: 12 GB over");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInfeasible), "Infeasible");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCapacityExceeded),
               "CapacityExceeded");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::NotFound("missing"); };
  auto outer = [&]() -> Status {
    DOT_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOnOk) {
  auto inner = []() { return Status::OK(); };
  auto outer = [&]() -> Status {
    DOT_RETURN_IF_ERROR(inner());
    return Status::Internal("reached");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto makes_five = []() -> Result<int> { return 5; };
  auto fails = []() -> Result<int> { return Status::Internal("boom"); };
  auto use = [&](bool fail) -> Result<int> {
    DOT_ASSIGN_OR_RETURN(int v, fail ? fails() : makes_five());
    return v + 1;
  };
  EXPECT_EQ(use(false).value(), 6);
  EXPECT_EQ(use(true).status().code(), StatusCode::kInternal);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH({ (void)r.value(); }, "boom");
}

TEST(ResultDeathTest, OkStatusConstructionAborts) {
  EXPECT_DEATH({ Result<int> r{Status::OK()}; }, "without a value");
}

}  // namespace
}  // namespace dot
