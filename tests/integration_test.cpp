// End-to-end pipeline tests: profiling -> optimization -> validation on the
// paper's two benchmark workloads and both box configurations, checking the
// *qualitative* results the evaluation section reports.

#include <gtest/gtest.h>

#include <memory>

#include "dot/dot.h"

namespace dot {
namespace {

/// Bundles one fully-wired DSS provisioning instance.
struct DssInstance {
  Schema schema;
  BoxConfig box;
  std::unique_ptr<DssWorkloadModel> workload;
  std::unique_ptr<WorkloadProfiles> profiles;
  DotProblem problem;
};

std::unique_ptr<DssInstance> MakeInstance(BoxConfig box,
                                          std::vector<QuerySpec> templates,
                                          int reps, double sla) {
  auto inst = std::make_unique<DssInstance>();
  inst->schema = MakeTpchSchema(20.0);
  inst->box = std::move(box);
  const int n_templates = static_cast<int>(templates.size());
  inst->workload = std::make_unique<DssWorkloadModel>(
      "w", &inst->schema, &inst->box, std::move(templates),
      RepeatSequence(n_templates, reps), PlannerConfig{});
  Profiler profiler(&inst->schema, &inst->box);
  inst->profiles =
      std::make_unique<WorkloadProfiles>(profiler.ProfileWorkload(
          *inst->workload, [&inst](const std::vector<int>& p) {
            return inst->workload->Estimate(p);
          }));
  inst->problem.schema = &inst->schema;
  inst->problem.box = &inst->box;
  inst->problem.workload = inst->workload.get();
  inst->problem.relative_sla = sla;
  inst->problem.profiles = inst->profiles.get();
  return inst;
}

TEST(IntegrationTpch, OriginalWorkloadSavesOver3xOnBothBoxes) {
  // Figure 3's headline: DOT >= ~3x TOC saving vs All H-SSD at SLA 0.5,
  // with estimated PSR 100%.
  for (BoxConfig box : {MakeBox1(), MakeBox2()}) {
    auto inst = MakeInstance(box, MakeTpchTemplates(), 3, 0.5);
    DotOptimizer optimizer(inst->problem);
    DotResult r = optimizer.Optimize();
    ASSERT_TRUE(r.status.ok()) << box.name;
    const double toc_hssd = optimizer.EstimateToc(
        UniformPlacement(inst->schema.NumObjects(), 2), nullptr);
    EXPECT_GT(toc_hssd / r.toc_cents_per_task, 3.0) << box.name;
    EXPECT_DOUBLE_EQ(Psr(r.estimate, r.targets), 1.0) << box.name;
  }
}

TEST(IntegrationTpch, DotBeatsObjectAdvisorOnToc) {
  // Figure 3: "our heuristic layouts outperform the ones produced by OA".
  for (BoxConfig box : {MakeBox1(), MakeBox2()}) {
    auto inst = MakeInstance(box, MakeTpchTemplates(), 3, 0.5);
    DotOptimizer optimizer(inst->problem);
    DotResult dot = optimizer.Optimize();
    ASSERT_TRUE(dot.status.ok());
    const std::vector<int> oa = ObjectAdvisorPlacement(inst->problem);
    PerfEstimate oa_est;
    const double oa_toc = optimizer.EstimateToc(oa, &oa_est);
    EXPECT_LT(dot.toc_cents_per_task, oa_toc) << box.name;
  }
}

TEST(IntegrationTpch, SimpleLayoutsMissSlaOrCostMore) {
  // Figure 3: every simple layout except All H-SSD fails some caps (PSR <
  // 100%) — or, if it passes, cannot beat DOT's TOC.
  auto inst = MakeInstance(MakeBox1(), MakeTpchTemplates(), 3, 0.5);
  DotOptimizer optimizer(inst->problem);
  DotResult dot = optimizer.Optimize();
  ASSERT_TRUE(dot.status.ok());
  for (const NamedLayout& l : MakeSimpleLayouts(inst->schema, inst->box)) {
    PerfEstimate est;
    const double toc = optimizer.EstimateToc(l.placement, &est);
    const double psr = Psr(est, optimizer.targets());
    if (l.name == "All H-SSD") {
      EXPECT_DOUBLE_EQ(psr, 1.0);
    } else {
      EXPECT_TRUE(psr < 1.0 || toc >= dot.toc_cents_per_task) << l.name;
    }
  }
}

TEST(IntegrationTpch, ModifiedWorkloadKeepsMoreDataOnPremium) {
  // Figure 4 vs Figure 6: under the modified (selective) workload at SLA
  // 0.5, DOT parks a much larger share of the database on the H-SSD than
  // under the original workload.
  auto orig = MakeInstance(MakeBox1(), MakeTpchTemplates(), 3, 0.5);
  auto mod = MakeInstance(MakeBox1(), MakeModifiedTpchTemplates(), 20, 0.5);
  DotResult r_orig = DotOptimizer(orig->problem).Optimize();
  DotResult r_mod = DotOptimizer(mod->problem).Optimize();
  ASSERT_TRUE(r_orig.status.ok());
  ASSERT_TRUE(r_mod.status.ok());
  const double hssd_orig =
      Layout(&orig->schema, &orig->box, r_orig.placement).SpaceByClass()[2];
  const double hssd_mod =
      Layout(&mod->schema, &mod->box, r_mod.placement).SpaceByClass()[2];
  EXPECT_GT(hssd_mod, hssd_orig);
}

TEST(IntegrationTpch, ModifiedWorkloadSlaRelaxationDemotesBulkData) {
  // Figure 6 vs Figure 7: relaxing the SLA from 0.5 to 0.25 moves bulk
  // objects off the H-SSD and cuts the TOC further.
  auto at50 = MakeInstance(MakeBox1(), MakeModifiedTpchTemplates(), 20, 0.5);
  auto at25 =
      MakeInstance(MakeBox1(), MakeModifiedTpchTemplates(), 20, 0.25);
  DotResult r50 = DotOptimizer(at50->problem).Optimize();
  DotResult r25 = DotOptimizer(at25->problem).Optimize();
  ASSERT_TRUE(r50.status.ok());
  ASSERT_TRUE(r25.status.ok());
  EXPECT_LT(r25.toc_cents_per_task, r50.toc_cents_per_task);
  const double hssd50 =
      Layout(&at50->schema, &at50->box, r50.placement).SpaceByClass()[2];
  const double hssd25 =
      Layout(&at25->schema, &at25->box, r25.placement).SpaceByClass()[2];
  EXPECT_LT(hssd25, hssd50);
}

/// TPC-C end-to-end (throughput SLA, test-run profiling).
class IntegrationTpcc : public ::testing::Test {
 protected:
  IntegrationTpcc()
      : schema_(MakeTpccSchema(300)),
        box_(MakeBox2()),
        workload_(MakeTpccWorkload(&schema_, &box_, TpccConfig{})) {
    Profiler profiler(&schema_, &box_);
    profiles_ = std::make_unique<WorkloadProfiles>(profiler.ProfileWorkload(
        *workload_, [&](const std::vector<int>& p) {
          ExecutorConfig noiseless;
          noiseless.noise_cv = 0.0;
          Executor e(workload_.get(), noiseless);
          return e.Run(p);  // §3.4 option (b): a sample test run
        }));
    problem_.schema = &schema_;
    problem_.box = &box_;
    problem_.workload = workload_.get();
    problem_.profiles = profiles_.get();
  }

  Schema schema_;
  BoxConfig box_;
  std::unique_ptr<OltpWorkloadModel> workload_;
  std::unique_ptr<WorkloadProfiles> profiles_;
  DotProblem problem_;
};

TEST_F(IntegrationTpcc, TocDropsAsSlaRelaxes) {
  // Figure 8: the TOC with DOT decreases (weakly) as the relative SLA is
  // relaxed, and always undercuts All H-SSD.
  DotOptimizer base(problem_);
  const double toc_hssd = base.EstimateToc(
      UniformPlacement(schema_.NumObjects(), 2), nullptr);
  double prev_toc = std::numeric_limits<double>::infinity();
  for (double sla : {0.5, 0.25, 0.125}) {
    DotProblem p = problem_;
    p.relative_sla = sla;
    DotResult r = DotOptimizer(p).Optimize();
    ASSERT_TRUE(r.status.ok()) << "sla=" << sla;
    EXPECT_GE(r.estimate.tpmc, r.targets.min_tpmc * (1 - 1e-9));
    EXPECT_LE(r.toc_cents_per_task, prev_toc * (1 + 1e-9));
    prev_toc = r.toc_cents_per_task;
  }
  EXPECT_LT(prev_toc, toc_hssd);
}

TEST(IntegrationTpccBox1, TocSavingAtLooseSlaExceeds3x) {
  // §4.5.2's headline: "DOT on Box1 with the relative SLA = 0.125 has
  // about 3X smaller TOC compared to the All H-SSD case." (On Box 2 the
  // hot bulk objects must stay premium — Table 3 — so the saving there is
  // modest.)
  Schema schema = MakeTpccSchema(300);
  BoxConfig box = MakeBox1();
  auto workload = MakeTpccWorkload(&schema, &box, TpccConfig{});
  Profiler profiler(&schema, &box);
  WorkloadProfiles profiles = profiler.ProfileWorkload(
      *workload, [&](const std::vector<int>& p) {
        ExecutorConfig noiseless;
        noiseless.noise_cv = 0.0;
        Executor e(workload.get(), noiseless);
        return e.Run(p);
      });
  DotProblem problem;
  problem.schema = &schema;
  problem.box = &box;
  problem.workload = workload.get();
  problem.relative_sla = 0.125;
  problem.profiles = &profiles;
  DotResult r = DotOptimizer(problem).Optimize();
  ASSERT_TRUE(r.status.ok());
  DotOptimizer base(problem);
  const double toc_hssd =
      base.EstimateToc(UniformPlacement(schema.NumObjects(), 2), nullptr);
  EXPECT_GT(toc_hssd / r.toc_cents_per_task, 3.0);
}

TEST_F(IntegrationTpcc, RelaxedSlaShiftsObjectsToCheaperClasses) {
  // Table 3's trend: "as the relative SLA is relaxed, more objects are
  // shifted from the expensive storage classes to the cheaper ones."
  double prev_hssd = std::numeric_limits<double>::infinity();
  for (double sla : {0.5, 0.25, 0.125}) {
    DotProblem p = problem_;
    p.relative_sla = sla;
    DotResult r = DotOptimizer(p).Optimize();
    ASSERT_TRUE(r.status.ok());
    const double on_hssd =
        Layout(&schema_, &box_, r.placement).SpaceByClass()[2];
    EXPECT_LE(on_hssd, prev_hssd * (1 + 1e-9)) << "sla=" << sla;
    prev_hssd = on_hssd;
  }
}

TEST_F(IntegrationTpcc, HotSmallTablesStayOnPremium) {
  // Table 3: warehouse and district (tiny, update-hot) remain on the H-SSD
  // even at the loosest SLA; item (read-mostly, cache-friendly) does not.
  DotProblem p = problem_;
  p.relative_sla = 0.125;
  DotResult r = DotOptimizer(p).Optimize();
  ASSERT_TRUE(r.status.ok());
  Layout layout(&schema_, &box_, r.placement);
  EXPECT_EQ(layout.ClassOf(schema_.FindObject("district")), 2);
  EXPECT_NE(layout.ClassOf(schema_.FindObject("item")), 2);
}

TEST_F(IntegrationTpcc, DotMatchesExhaustiveOnTpcc) {
  // Figure 9: "ES and DOT achieve almost same result (tpmC and TOC)".
  // 3^19 is intractable, so compare on a reduced schema the way the bench
  // does for feasibility of the test: full mix but SLA 0.25.
  DotProblem p = problem_;
  p.relative_sla = 0.25;
  DotResult dot = DotOptimizer(p).Optimize();
  ASSERT_TRUE(dot.status.ok());
  // ES is infeasible to run on 19 objects; instead assert DOT's TOC beats
  // every uniform layout that meets the SLA (a necessary optimality
  // condition ES would also satisfy).
  DotOptimizer estimator(p);
  for (int cls = 0; cls < box_.NumClasses(); ++cls) {
    PerfEstimate est;
    const double toc = estimator.EstimateToc(
        UniformPlacement(schema_.NumObjects(), cls), &est);
    if (MeetsTargets(est, estimator.targets())) {
      EXPECT_LE(dot.toc_cents_per_task, toc * (1 + 1e-9));
    }
  }
}

TEST_F(IntegrationTpcc, CappedHssdStillSolvable) {
  // Figure 9(b): H-SSD capped at 21 GB forces a relaxation (the paper
  // settles at relative SLA 0.13).
  BoxConfig capped = box_;
  capped.classes[2].set_capacity_gb(21.0);
  auto workload = MakeTpccWorkload(&schema_, &capped, TpccConfig{});
  DotProblem p;
  p.schema = &schema_;
  p.box = &capped;
  p.workload = workload.get();
  p.relative_sla = 0.25;
  p.profiles = profiles_.get();
  DotResult r = OptimizeWithRelaxation(p, 0.95, 0.01);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  Layout layout(&schema_, &capped, r.placement);
  EXPECT_TRUE(layout.CheckCapacity().ok());
  EXPECT_LT(layout.SpaceByClass()[2], 21.0);
}

TEST(IntegrationPipeline, FullPipelineValidatesOnTpch) {
  auto inst = MakeInstance(MakeBox2(), MakeTpchTemplates(), 3, 0.5);
  PipelineConfig cfg;
  cfg.exec.noise_cv = 0.01;
  cfg.exec.seed = 3;
  cfg.validation_tolerance = 0.10;
  PipelineResult r = RunDotPipeline(inst->problem, cfg);
  EXPECT_TRUE(r.validated);
  EXPECT_TRUE(r.final.status.ok());
}

}  // namespace
}  // namespace dot
