// Pins the fleet planner's contracts (fleet/fleet_planner.h): a fleet of
// one with no coupling reproduces dot::Solve bit for bit; plans are always
// feasible and never lose to the independent fair-share baseline; pools
// are shared per schema fingerprint (memory O(distinct schemas), measured
// by the cache-instance counters); and everything — placements, totals,
// counters — is bit-identical at 1, 4, and hardware threads.

#include "fleet/fleet_planner.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "dot/solve.h"
#include "fleet/synthetic_fleet.h"
#include "io/io_types.h"
#include "storage/standard_catalog.h"
#include "workload/oltp_workload.h"

namespace dot {
namespace {

/// A small fleet from the synthetic generator, with the spec pointing at
/// it. All tenant classes are enumerable (<= 3^6 layouts).
struct FleetFixture {
  SyntheticFleet fleet;
  FleetSpec spec;

  explicit FleetFixture(int num_tenants, uint64_t seed = 7)
      : fleet(MakeSyntheticFleet(num_tenants, seed)) {
    spec.tenants = &fleet.tenants;
  }

  DotProblem FleetProblem(int num_threads = 1) const {
    DotProblem p;
    p.box = fleet.box.get();
    p.options.num_threads = num_threads;
    return p;
  }

  SolveResult Run(int num_threads = 1) const {
    SolveSpec s;
    s.method = SolveMethod::kFleet;
    s.fleet = &spec;
    return Solve(FleetProblem(num_threads), s);
  }
};

void ExpectSamePlan(const FleetPlan& a, const FleetPlan& b,
                    const std::string& what) {
  ASSERT_EQ(a.status.ok(), b.status.ok()) << what;
  ASSERT_EQ(a.tenants.size(), b.tenants.size()) << what;
  for (size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].placement, b.tenants[i].placement)
        << what << " tenant " << i;
    EXPECT_EQ(a.tenants[i].toc_cents_per_task, b.tenants[i].toc_cents_per_task)
        << what << " tenant " << i;
    EXPECT_EQ(a.tenants[i].pool_id, b.tenants[i].pool_id)
        << what << " tenant " << i;
    EXPECT_EQ(a.tenants[i].candidate, b.tenants[i].candidate)
        << what << " tenant " << i;
  }
  EXPECT_EQ(a.total_toc_cents_per_task, b.total_toc_cents_per_task) << what;
  EXPECT_EQ(a.total_cost_cents_per_hour, b.total_cost_cents_per_hour) << what;
  EXPECT_EQ(a.min_cost_cents_per_hour, b.min_cost_cents_per_hour) << what;
  EXPECT_EQ(a.used_gb, b.used_gb) << what;
  EXPECT_EQ(a.independent_toc_cents_per_task,
            b.independent_toc_cents_per_task)
      << what;
  EXPECT_EQ(a.pool_builds, b.pool_builds) << what;
  EXPECT_EQ(a.pool_cache_hits, b.pool_cache_hits) << what;
  EXPECT_EQ(a.price_iterations_run, b.price_iterations_run) << what;
  EXPECT_EQ(a.exchange_moves, b.exchange_moves) << what;
  EXPECT_EQ(a.improve_moves, b.improve_moves) << what;
  EXPECT_EQ(a.layouts_evaluated, b.layouts_evaluated) << what;
}

void ExpectFeasible(const FleetPlan& plan, const FleetConstraints& cons) {
  double cost = 0.0;
  for (const FleetTenantChoice& t : plan.tenants) {
    cost += t.cost_cents_per_hour;
  }
  if (cons.budget_cents_per_hour > 0.0) {
    EXPECT_LE(plan.total_cost_cents_per_hour,
              cons.budget_cents_per_hour * (1.0 + 1e-9));
    EXPECT_LE(cost, cons.budget_cents_per_hour * (1.0 + 1e-9));
  }
  for (size_t j = 0; j < cons.capacity_gb.size(); ++j) {
    EXPECT_LE(plan.used_gb[j], cons.capacity_gb[j] * (1.0 + 1e-9));
  }
}

TEST(FleetPlannerTest, SingleTenantNoCouplingMatchesSoloSolveBitwise) {
  FleetFixture fx(1);
  for (FleetPoolMode mode :
       {FleetPoolMode::kEnumerate, FleetPoolMode::kSearch}) {
    fx.spec.config.pool_mode = mode;
    const SolveResult fleet = fx.Run();
    ASSERT_TRUE(fleet.status.ok()) << fleet.status.ToString();
    ASSERT_TRUE(fleet.has_fleet);
    ASSERT_EQ(fleet.fleet.tenants.size(), 1u);

    // The tenant's own solo optimum: kEnumerate and kSearch pools both
    // put the exact winner at pool[0], so with no constraints the fleet
    // must reproduce the direct solve bit for bit.
    const SolveResult solo = Solve(fx.fleet.tenants[0].problem);
    ASSERT_TRUE(solo.status.ok());
    EXPECT_EQ(fleet.fleet.tenants[0].placement, solo.placement);
    EXPECT_EQ(fleet.fleet.tenants[0].toc_cents_per_task,
              solo.toc_cents_per_task);
    EXPECT_EQ(fleet.toc_cents_per_task, solo.toc_cents_per_task);
    // Unconstrained: the independent baseline IS the solo optimum.
    EXPECT_TRUE(fleet.fleet.independent_feasible);
    EXPECT_EQ(fleet.fleet.independent_toc_cents_per_task,
              fleet.fleet.total_toc_cents_per_task);
  }
}

TEST(FleetPlannerTest, UnconstrainedFleetReproducesIndependentOptima) {
  // budget -> infinity (unconstrained): every tenant gets its solo
  // optimum, and the fleet total equals the independent total bitwise
  // (same accumulation order).
  FleetFixture fx(24);
  const SolveResult r = fx.Run();
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.fleet.total_toc_cents_per_task,
            r.fleet.independent_toc_cents_per_task);
  EXPECT_EQ(r.fleet.total_cost_cents_per_hour,
            r.fleet.independent_cost_cents_per_hour);
  for (const FleetTenantChoice& t : r.fleet.tenants) {
    EXPECT_EQ(t.candidate, 0);  // pool[0] == the solo optimum
  }
  EXPECT_EQ(r.fleet.exchange_moves, 0);
  EXPECT_EQ(r.fleet.budget_price, 0.0);
}

TEST(FleetPlannerTest, PoolsAreSharedPerSchemaFingerprint) {
  // Memory is O(distinct schemas): 40 tenants drawn from the generator's
  // fixed class roster build at most num_classes pools, and every other
  // tenant is a cache hit. Growing the fleet must not grow pool_builds.
  FleetFixture small(10);
  FleetFixture large(40);
  const SolveResult rs = small.Run();
  const SolveResult rl = large.Run();
  ASSERT_TRUE(rs.status.ok());
  ASSERT_TRUE(rl.status.ok());
  EXPECT_LE(rl.fleet.pool_builds, large.fleet.num_classes);
  EXPECT_EQ(rl.fleet.pool_builds + rl.fleet.pool_cache_hits, 40);
  EXPECT_EQ(rs.fleet.pool_builds + rs.fleet.pool_cache_hits, 10);
  // Same classes present in both fleets => same pools built.
  EXPECT_GE(rl.fleet.pool_builds, rs.fleet.pool_builds);
  EXPECT_EQ(rl.provenance.pool_builds, rl.fleet.pool_builds);
  EXPECT_EQ(rl.provenance.pool_cache_hits, rl.fleet.pool_cache_hits);

  // Turning sharing off builds one pool per tenant — same plan, more work.
  FleetFixture unshared(10);
  unshared.spec.config.share_pools = false;
  const SolveResult ru = unshared.Run();
  ASSERT_TRUE(ru.status.ok());
  EXPECT_EQ(ru.fleet.pool_builds, 10);
  EXPECT_EQ(ru.fleet.pool_cache_hits, 0);
  EXPECT_EQ(ru.fleet.total_toc_cents_per_task,
            rs.fleet.total_toc_cents_per_task);
}

/// A four-object tenant (orders + pk, items + pk) whose two table groups
/// can be added in either order — the same objects, different ids — with a
/// same-named point-lookup workload over orders. The schema/model live in
/// `fleet`'s owner vectors.
FleetTenant MakeOrderVariantTenant(SyntheticFleet* fleet,
                                   const std::string& name,
                                   bool orders_first) {
  auto schema = std::make_unique<Schema>();
  int orders, items;
  if (orders_first) {
    orders = schema->AddTable("orders", 1e6, 120.0);
    schema->AddIndex("orders_pk", orders, 8.0);
    items = schema->AddTable("items", 5e5, 80.0);
    schema->AddIndex("items_pk", items, 8.0);
  } else {
    items = schema->AddTable("items", 5e5, 80.0);
    schema->AddIndex("items_pk", items, 8.0);
    orders = schema->AddTable("orders", 1e6, 120.0);
    schema->AddIndex("orders_pk", orders, 8.0);
  }
  const int pk = schema->FindObject("orders_pk");
  TxnType lookup;
  lookup.name = "Lookup";
  lookup.weight = 1.0;
  lookup.io.assign(static_cast<size_t>(schema->NumObjects()), IoVector{});
  lookup.io[static_cast<size_t>(pk)][IoType::kRandRead] = 2.0;
  lookup.io[static_cast<size_t>(orders)][IoType::kRandRead] = 1.0;
  lookup.cpu_ms = 0.05;
  lookup.overhead_ms = 0.5;
  auto model = std::make_unique<OltpWorkloadModel>(
      "order-lookup", schema.get(), fleet->box.get(),
      std::vector<TxnType>{lookup}, 40.0, 3600.0 * 1000.0);

  FleetTenant tenant;
  tenant.name = name;
  tenant.problem.schema = schema.get();
  tenant.problem.box = fleet->box.get();
  tenant.problem.workload = model.get();
  tenant.problem.relative_sla = 0.4;
  fleet->schemas.push_back(std::move(schema));
  fleet->models.push_back(std::move(model));
  return tenant;
}

TEST(FleetPlannerTest, ObjectOrderVariantDoesNotShareAPool) {
  // Two tenants with the same objects in different id order and a
  // same-named workload must NOT share a pool: placements are id-indexed,
  // so Schema::Fingerprint is order-sensitive and the cache key differs.
  SyntheticFleet owner = MakeSyntheticFleet(1, 7);
  std::vector<FleetTenant> pair = {
      MakeOrderVariantTenant(&owner, "fwd", /*orders_first=*/true),
      MakeOrderVariantTenant(&owner, "rev", /*orders_first=*/false)};
  ASSERT_NE(pair[0].problem.schema->Fingerprint(),
            pair[1].problem.schema->Fingerprint());
  FleetConfig config;
  FleetPlanner planner(owner.box.get(), config);
  const FleetPlan plan = planner.Plan(pair);
  ASSERT_TRUE(plan.status.ok()) << plan.status.ToString();
  EXPECT_EQ(plan.pool_builds, 2);
  EXPECT_EQ(plan.pool_cache_hits, 0);
  EXPECT_NE(plan.tenants[0].pool_id, plan.tenants[1].pool_id);
}

TEST(FleetPlannerTest, IdenticalTenantsShareOnePool) {
  // Identical twins DO share: two tenants pointing at the same schema and
  // workload instance produce one pool build and one cache hit.
  SyntheticFleet twins = MakeSyntheticFleet(1, 7);
  std::vector<FleetTenant> pair = {twins.tenants[0], twins.tenants[0]};
  pair[1].name = "twin";
  FleetConfig config;
  FleetPlanner planner(twins.box.get(), config);
  const FleetPlan plan = planner.Plan(pair);
  ASSERT_TRUE(plan.status.ok()) << plan.status.ToString();
  EXPECT_EQ(plan.pool_builds, 1);
  EXPECT_EQ(plan.pool_cache_hits, 1);
  EXPECT_EQ(plan.tenants[0].pool_id, plan.tenants[1].pool_id);
}

TEST(FleetPlannerTest, BindingBudgetStaysFeasibleAndNeverLoses) {
  FleetFixture fx(16);
  // First find the unconstrained cost, then squeeze.
  const SolveResult free_run = fx.Run();
  ASSERT_TRUE(free_run.status.ok());
  const double cost0 = free_run.fleet.total_cost_cents_per_hour;

  for (double fraction : {0.9, 0.7, 0.5, 0.3}) {
    FleetFixture squeezed(16);
    squeezed.spec.config.constraints.budget_cents_per_hour =
        cost0 * fraction;
    const SolveResult r = squeezed.Run();
    if (!r.status.ok()) continue;  // a too-tight budget may be infeasible
    ExpectFeasible(r.fleet, squeezed.spec.config.constraints);
    if (r.fleet.independent_feasible) {
      EXPECT_LE(r.fleet.total_toc_cents_per_task,
                r.fleet.independent_toc_cents_per_task)
          << "never-lose violated at fraction " << fraction;
    }
    // Totals follow the accounting contract: re-summing per-tenant bills
    // in index order reproduces them bitwise.
    double toc = 0.0, cost = 0.0;
    for (const FleetTenantChoice& tc : r.fleet.tenants) {
      toc += tc.toc_cents_per_task;
      cost += tc.cost_cents_per_hour;
    }
    EXPECT_EQ(toc, r.fleet.total_toc_cents_per_task);
    EXPECT_EQ(cost, r.fleet.total_cost_cents_per_hour);
  }
}

TEST(FleetPlannerTest, CapacityConstraintIsRespectedByRepair) {
  // Choke one storage class below what the solo optima use; the exchange
  // repair must land every class within capacity.
  FleetFixture fx(12);
  const SolveResult free_run = fx.Run();
  ASSERT_TRUE(free_run.status.ok());
  const std::vector<double>& used0 = free_run.fleet.used_gb;
  ASSERT_EQ(used0.size(), 3u);  // Box 2

  // Find the heaviest class and halve it; leave the others roomy.
  size_t heavy = 0;
  for (size_t j = 1; j < used0.size(); ++j) {
    if (used0[j] > used0[heavy]) heavy = j;
  }
  FleetFixture choked(12);
  std::vector<double> capacity(used0.size());
  for (size_t j = 0; j < used0.size(); ++j) {
    capacity[j] = used0[j] * 4.0 + 1.0;
  }
  capacity[heavy] = used0[heavy] * 0.5;
  choked.spec.config.constraints.capacity_gb = capacity;
  const SolveResult r = choked.Run();
  if (r.status.ok()) {
    ExpectFeasible(r.fleet, choked.spec.config.constraints);
    EXPECT_LT(r.fleet.used_gb[heavy], used0[heavy]);
  } else {
    EXPECT_EQ(r.status.code(), StatusCode::kInfeasible);
  }
}

TEST(FleetPlannerTest, DeterministicAcrossThreadCountsIncludingCounters) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  FleetFixture reference(20);
  // A binding budget exercises pricing + repair, the interesting path:
  // walk down from the unconstrained cost to the tightest feasible
  // fraction (the floor is the sum of per-tenant cheapest candidates, so
  // too-small fractions are legitimately infeasible).
  const SolveResult free_run = reference.Run();
  ASSERT_TRUE(free_run.status.ok());
  const double cost0 = free_run.fleet.total_cost_cents_per_hour;
  double budget = cost0;
  for (double fraction : {0.6, 0.7, 0.8, 0.9, 0.95}) {
    FleetFixture probe(20);
    probe.spec.config.constraints.budget_cents_per_hour = cost0 * fraction;
    if (probe.Run().status.ok()) {
      budget = cost0 * fraction;
      break;
    }
  }

  FleetPlan base;
  bool have_base = false;
  for (int threads : {1, 4, hw}) {
    FleetFixture fx(20);
    fx.spec.config.constraints.budget_cents_per_hour = budget;
    const SolveResult r = fx.Run(threads);
    ASSERT_TRUE(r.status.ok())
        << "threads=" << threads << ": " << r.status.ToString();
    if (!have_base) {
      base = r.fleet;
      have_base = true;
    } else {
      ExpectSamePlan(base, r.fleet, "threads=" + std::to_string(threads));
    }
  }
}

TEST(FleetPlannerTest, ValidateRejectsMalformedFleets) {
  FleetFixture fx(2);

  // Empty tenant vector.
  std::vector<FleetTenant> empty;
  FleetSpec bad;
  bad.tenants = &empty;
  SolveSpec spec;
  spec.method = SolveMethod::kFleet;
  spec.fleet = &bad;
  EXPECT_EQ(Solve(fx.FleetProblem(), spec).status.code(),
            StatusCode::kInvalidArgument);

  // A tenant on a different box.
  BoxConfig other_box = MakeBox1();
  std::vector<FleetTenant> wrong_box = fx.fleet.tenants;
  wrong_box[0].problem.box = &other_box;
  FleetSpec mismatched;
  mismatched.tenants = &wrong_box;
  spec.fleet = &mismatched;
  EXPECT_EQ(Solve(fx.FleetProblem(), spec).status.code(),
            StatusCode::kInvalidArgument);

  // Capacity arity mismatch.
  FleetSpec arity;
  arity.tenants = &fx.fleet.tenants;
  arity.config.constraints.capacity_gb = {1.0};  // Box 2 has 3 classes
  spec.fleet = &arity;
  EXPECT_EQ(Solve(fx.FleetProblem(), spec).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(FleetPlannerTest, ImpossibleBudgetReportsInfeasible) {
  FleetFixture fx(4);
  fx.spec.config.constraints.budget_cents_per_hour = 1e-6;
  const SolveResult r = fx.Run();
  EXPECT_EQ(r.status.code(), StatusCode::kInfeasible);
  EXPECT_FALSE(r.fleet.independent_feasible);
}

TEST(FleetPlannerTest, EnumerateGuardRefusesOversizedTenants) {
  FleetFixture fx(1);
  fx.spec.config.max_pool_layouts = 2;
  const SolveResult r = fx.Run();
  EXPECT_EQ(r.status.code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace dot
