#include "dot/moves.h"

#include <gtest/gtest.h>

#include <cmath>

#include "catalog/tpch_schema.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/profiler.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

class MovesTest : public ::testing::Test {
 protected:
  MovesTest()
      : schema_(MakeTpchSchema(20.0)),
        box_(MakeBox1()),
        workload_("TPC-H", &schema_, &box_, MakeTpchTemplates(),
                  RepeatSequence(22, 3), PlannerConfig{}),
        profiler_(&schema_, &box_),
        profiles_(profiler_.ProfileWorkload(
            workload_, [&](const std::vector<int>& p) {
              return workload_.Estimate(p);
            })) {
    problem_.schema = &schema_;
    problem_.box = &box_;
    problem_.workload = &workload_;
    problem_.relative_sla = 0.5;
    problem_.profiles = &profiles_;
  }

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
  Profiler profiler_;
  WorkloadProfiles profiles_;
  DotProblem problem_;
};

TEST_F(MovesTest, EnumeratesMKPerGroupMinusIdentity) {
  const auto groups = schema_.MakeGroups();
  const auto moves = EnumerateMoves(problem_, groups);
  // 8 groups of size 2 on 3 classes: 8 * (3^2 - 1) = 64.
  EXPECT_EQ(moves.size(), 64u);
}

TEST_F(MovesTest, MovesAreSortedByScoreAscending) {
  const auto moves = EnumerateMoves(problem_, schema_.MakeGroups());
  for (size_t i = 1; i < moves.size(); ++i) {
    EXPECT_LE(moves[i - 1].score, moves[i].score);
  }
}

TEST_F(MovesTest, IdentityMoveIsSkipped) {
  const int l0 = box_.MostExpensiveClass();
  for (const Move& m : EnumerateMoves(problem_, schema_.MakeGroups())) {
    const bool identity = std::all_of(
        m.placement.begin(), m.placement.end(),
        [&](int cls) { return cls == l0; });
    EXPECT_FALSE(identity);
  }
}

TEST_F(MovesTest, CostSavingsArePositiveOffThePremiumClass) {
  // Moving anything off the H-SSD saves money (linear model, H-SSD most
  // expensive).
  for (const Move& m : EnumerateMoves(problem_, schema_.MakeGroups())) {
    EXPECT_GE(m.dcost, 0.0);
  }
}

TEST_F(MovesTest, ScoreIsPenaltyPerSaving) {
  for (const Move& m : EnumerateMoves(problem_, schema_.MakeGroups())) {
    if (m.dcost > 0.0 && std::isfinite(m.score)) {
      EXPECT_NEAR(m.score, m.dtime_ms / m.dcost, 1e-9);
    }
  }
}

TEST_F(MovesTest, GroupTimeShareUsesPlacementSpecificProfile) {
  const auto groups = schema_.MakeGroups();
  // Find the lineitem group; its I/O time share on HDD RAID 0 must exceed
  // that on H-SSD.
  const int li = schema_.FindObject("lineitem");
  for (const ObjectGroup& g : groups) {
    if (g.table_id != li) continue;
    const double on_hssd = GroupIoTimeShareMs(problem_, g, {2, 2});
    const double on_hdd = GroupIoTimeShareMs(problem_, g, {0, 0});
    EXPECT_GT(on_hdd, on_hssd);
  }
}

TEST_F(MovesTest, LineitemFullDemotionSavesTheMostMoney) {
  // δcost is layout-cost saving vs L0; the largest object moving to the
  // cheapest class must have the largest saving of all enumerated moves.
  const auto groups = schema_.MakeGroups();
  const auto moves = EnumerateMoves(problem_, groups);
  const int li = schema_.FindObject("lineitem");
  double li_dcost = 0.0;
  double max_dcost = 0.0;
  for (const Move& m : moves) {
    max_dcost = std::max(max_dcost, m.dcost);
    if (groups[static_cast<size_t>(m.group)].table_id == li &&
        m.placement == std::vector<int>{0, 0}) {
      li_dcost = m.dcost;
    }
  }
  EXPECT_GT(li_dcost, 0.0);
  EXPECT_DOUBLE_EQ(li_dcost, max_dcost);
}

TEST_F(MovesTest, ProfileCapturesPlanFlipOnCheapBaselines) {
  // On the all-premium baseline Q2 probes partsupp through its index; on
  // the all-HDD-RAID-0 baseline the optimizer flips to sequential scans.
  // The profiles must show random reads in the first case and none (or
  // fewer) in the second — the interaction DOT's grouping exists for.
  const int ps = schema_.FindObject("partsupp");
  const double rr_premium =
      profiles_.For(2, 2)[static_cast<size_t>(ps)][IoType::kRandRead];
  const double rr_hdd =
      profiles_.For(0, 0)[static_cast<size_t>(ps)][IoType::kRandRead];
  const double sr_hdd =
      profiles_.For(0, 0)[static_cast<size_t>(ps)][IoType::kSeqRead];
  EXPECT_GT(rr_premium, 0.0);
  EXPECT_LT(rr_hdd, rr_premium);
  EXPECT_GT(sr_hdd, 0.0);
}

TEST_F(MovesTest, IoScaleHintInflatesTimeShare) {
  const auto groups = schema_.MakeGroups();
  const ObjectGroup& g = groups[0];
  const double base = GroupIoTimeShareMs(problem_, g, {0, 0});
  DotProblem scaled = problem_;
  scaled.io_scale_hint.assign(static_cast<size_t>(schema_.NumObjects()),
                              2.0);
  EXPECT_NEAR(GroupIoTimeShareMs(scaled, g, {0, 0}), 2.0 * base,
              base * 1e-9);
}

TEST_F(MovesTest, PlacementArityMismatchAborts) {
  const auto groups = schema_.MakeGroups();
  EXPECT_DEATH((void)GroupIoTimeShareMs(problem_, groups[0], {0}),
               "arity");
}

}  // namespace
}  // namespace dot
