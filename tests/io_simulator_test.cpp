#include "io/io_simulator.h"

#include <gtest/gtest.h>

#include "storage/standard_catalog.h"

namespace dot {
namespace {

class IoSimulatorTest : public ::testing::Test {
 protected:
  IoSimulatorTest()
      : hdd_(MakeStockClass(StockClass::kHdd).device()),
        hssd_(MakeStockClass(StockClass::kHssd).device()),
        sim_({&hdd_, &hssd_}) {}

  DeviceModel hdd_;
  DeviceModel hssd_;
  IoSimulator sim_;
};

TEST_F(IoSimulatorTest, SingleStreamConservation) {
  IoStream s;
  s.demands.resize(2);
  s.demands[0][IoType::kSeqRead] = 1000;
  s.demands[1][IoType::kRandRead] = 50;
  IoSimResult r = sim_.Run({s});
  const double expected = 1000 * hdd_.LatencyMs(IoType::kSeqRead, 1) +
                          50 * hssd_.LatencyMs(IoType::kRandRead, 1);
  EXPECT_NEAR(r.elapsed_ms, expected, 1e-9);
  EXPECT_EQ(r.stream_ms.size(), 1u);
  EXPECT_NEAR(r.device_busy_ms[0] + r.device_busy_ms[1], expected, 1e-9);
}

TEST_F(IoSimulatorTest, ElapsedIsSlowestStream) {
  IoStream fast;
  fast.demands.resize(1);
  fast.demands[0][IoType::kSeqRead] = 10;
  IoStream slow;
  slow.demands.resize(1);
  slow.demands[0][IoType::kRandRead] = 100;
  IoSimResult r = sim_.Run({fast, slow});
  EXPECT_DOUBLE_EQ(r.elapsed_ms, std::max(r.stream_ms[0], r.stream_ms[1]));
  EXPECT_GT(r.stream_ms[1], r.stream_ms[0]);
}

TEST_F(IoSimulatorTest, ConcurrencyChangesPerRequestLatency) {
  IoStream s;
  s.demands.resize(1);
  s.demands[0][IoType::kRandRead] = 100;
  const double t1 = sim_.Run({s}).stream_ms[0];
  // HDD random reads get faster per request under queueing.
  std::vector<IoStream> many(50, s);
  const double t50 = sim_.Run(many).stream_ms[0];
  EXPECT_LT(t50, t1);
}

TEST_F(IoSimulatorTest, DeviceIoTotalsAccumulate) {
  IoStream s;
  s.demands.resize(2);
  s.demands[0][IoType::kSeqWrite] = 7;
  s.demands[1][IoType::kRandWrite] = 3;
  IoSimResult r = sim_.Run({s, s, s});
  EXPECT_DOUBLE_EQ(r.device_io[0][IoType::kSeqWrite], 21);
  EXPECT_DOUBLE_EQ(r.device_io[1][IoType::kRandWrite], 9);
}

TEST_F(IoSimulatorTest, NoiseIsUnbiasedOnAverage) {
  IoStream s;
  s.demands.resize(1);
  s.demands[0][IoType::kSeqRead] = 1000;
  const double clean = sim_.Run({s}).elapsed_ms;
  Rng rng(42);
  double sum = 0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    sum += sim_.Run({s}, /*noise_cv=*/0.1, &rng).elapsed_ms;
  }
  EXPECT_NEAR(sum / n, clean, clean * 0.01);
}

TEST_F(IoSimulatorTest, NoiseZeroIsDeterministic) {
  IoStream s;
  s.demands.resize(1);
  s.demands[0][IoType::kRandRead] = 11;
  EXPECT_DOUBLE_EQ(sim_.Run({s}).elapsed_ms, sim_.Run({s}).elapsed_ms);
}

TEST_F(IoSimulatorTest, StreamTimeAtExplicitConcurrency) {
  IoStream s;
  s.demands.resize(1);
  s.demands[0][IoType::kRandRead] = 10;
  const double at300 = sim_.StreamTimeMs(s, 300);
  EXPECT_NEAR(at300, 10 * hdd_.LatencyMs(IoType::kRandRead, 300), 1e-9);
}

TEST_F(IoSimulatorTest, EmptyStreamListYieldsZero) {
  IoSimResult r = sim_.Run({});
  EXPECT_DOUBLE_EQ(r.elapsed_ms, 0.0);
  EXPECT_TRUE(r.stream_ms.empty());
}

TEST_F(IoSimulatorTest, NoiseRequiresRng) {
  IoStream s;
  s.demands.resize(1);
  s.demands[0][IoType::kSeqRead] = 1;
  EXPECT_DEATH((void)sim_.Run({s}, 0.5, nullptr), "Rng");
}

}  // namespace
}  // namespace dot
