// Validation of untrusted trace input (workload/trace.h, advisor/feed.h):
// ValidateTraceSpec and FeedPlayer::Play return InvalidArgument naming the
// offending window instead of CHECK-crashing, prior events stay delivered,
// and the virtual clock only advances over delivered events.

#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "advisor/feed.h"
#include "catalog/tpch_schema.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

class TraceSpecTest : public ::testing::Test {
 protected:
  TraceSpecTest()
      : schema_(MakeTpchEsSubsetSchema(20.0)),
        box_(MakeBox1()),
        workload_("TPC-H-ES", &schema_, &box_, MakeTpchSubsetTemplates(),
                  RepeatSequence(11, 3), PlannerConfig{}) {}

  /// A one-window spec that validates clean; tests break one field each.
  WorkloadTraceSpec ValidSpec() const {
    WorkloadTraceSpec spec;
    TraceWindow window;
    window.workload = &workload_;
    window.duration_hours = 2.0;
    spec.windows.push_back(window);
    return spec;
  }

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
};

TEST_F(TraceSpecTest, AcceptsAWellFormedSpec) {
  WorkloadTraceSpec spec = ValidSpec();
  spec.windows.push_back(spec.windows[0]);
  spec.windows[1].io_scale = {1.5, 0.5};
  spec.count_noise_cv = 0.1;
  EXPECT_TRUE(ValidateTraceSpec(spec).ok());
}

TEST_F(TraceSpecTest, RejectsAnEmptySpec) {
  const Status s = ValidateTraceSpec(WorkloadTraceSpec{});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("no windows"), std::string::npos);
}

TEST_F(TraceSpecTest, RejectsAWindowWithoutAWorkload) {
  WorkloadTraceSpec spec = ValidSpec();
  spec.windows.push_back(spec.windows[0]);
  spec.windows[1].workload = nullptr;
  const Status s = ValidateTraceSpec(spec);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The error names the offending window, not just "bad spec".
  EXPECT_NE(s.message().find("window 1"), std::string::npos);
}

TEST_F(TraceSpecTest, RejectsNonPositiveAndNonFiniteDurations) {
  for (double bad : {0.0, -1.0, kNan, kInf}) {
    WorkloadTraceSpec spec = ValidSpec();
    spec.windows[0].duration_hours = bad;
    const Status s = ValidateTraceSpec(spec);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(s.message().find("duration"), std::string::npos) << bad;
  }
}

TEST_F(TraceSpecTest, RejectsNegativeAndNonFiniteIoScales) {
  for (double bad : {-0.5, kNan, kInf}) {
    WorkloadTraceSpec spec = ValidSpec();
    spec.windows[0].io_scale = {1.0, bad};
    const Status s = ValidateTraceSpec(spec);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(s.message().find("io_scale"), std::string::npos) << bad;
  }
}

TEST_F(TraceSpecTest, RejectsNegativeObservationNoise) {
  WorkloadTraceSpec spec = ValidSpec();
  spec.count_noise_cv = -0.1;
  EXPECT_EQ(ValidateTraceSpec(spec).code(), StatusCode::kInvalidArgument);
}

// --- FeedPlayer: malformed events from an untrusted feed ----------------

/// Hand-built event vector — the "live monitoring pipe" stand-in that can
/// emit whatever a broken producer might.
class VectorFeed : public TraceFeed {
 public:
  explicit VectorFeed(std::vector<TraceEvent> events)
      : events_(std::move(events)) {}

  bool Next(TraceEvent* event) override {
    if (next_ >= events_.size()) return false;
    *event = events_[next_++];
    return true;
  }

 private:
  std::vector<TraceEvent> events_;
  size_t next_ = 0;
};

TraceEvent GoodEvent(int window, double start_hours) {
  TraceEvent event;
  event.window = window;
  event.start_hours = start_hours;
  event.duration_hours = 1.0;
  event.io_by_object = ObjectIoMap(2);
  event.io_by_object[0][IoType::kSeqRead] = 100.0;
  event.io_by_object[1][IoType::kRandRead] = 50.0;
  return event;
}

TEST(FeedPlayerTest, DrainsAWellFormedFeedAndAdvancesTheClock) {
  VectorFeed feed({GoodEvent(0, 0.0), GoodEvent(1, 1.0), GoodEvent(2, 2.0)});
  FeedPlayer player(&feed);
  int seen = 0;
  int delivered = -1;
  const Status s = player.Play(
      [&](const TraceEvent& event) {
        EXPECT_EQ(event.window, seen);
        ++seen;
      },
      &delivered);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(seen, 3);
  EXPECT_EQ(delivered, 3);
  EXPECT_DOUBLE_EQ(player.clock_hours(), 3.0);
}

TEST(FeedPlayerTest, StopsOnANonMonotoneStartAndKeepsPriorEvents) {
  // Window 2 starts before window 1 ended: the drain stops there, but the
  // two events already observed stay delivered and the clock reflects them.
  std::vector<TraceEvent> events{GoodEvent(0, 0.0), GoodEvent(1, 1.0),
                                 GoodEvent(2, 0.25)};
  VectorFeed feed(std::move(events));
  FeedPlayer player(&feed);
  int seen = 0;
  int delivered = -1;
  const Status s = player.Play([&](const TraceEvent&) { ++seen; },
                               &delivered);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("trace window 2"), std::string::npos);
  EXPECT_NE(s.message().find("virtual-time order"), std::string::npos);
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(delivered, 2);
  EXPECT_DOUBLE_EQ(player.clock_hours(), 2.0);
}

TEST(FeedPlayerTest, RejectsNonFiniteStartTimes) {
  for (double bad : {kNan, kInf}) {
    TraceEvent event = GoodEvent(0, 0.0);
    event.start_hours = bad;
    VectorFeed feed({event});
    FeedPlayer player(&feed);
    const Status s = player.Play([](const TraceEvent&) {});
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(FeedPlayerTest, RejectsNonPositiveDurations) {
  for (double bad : {0.0, -2.0, kNan}) {
    TraceEvent event = GoodEvent(7, 0.0);
    event.duration_hours = bad;
    VectorFeed feed({event});
    FeedPlayer player(&feed);
    int delivered = -1;
    const Status s = player.Play([](const TraceEvent&) {}, &delivered);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(s.message().find("trace window 7"), std::string::npos);
    EXPECT_NE(s.message().find("duration"), std::string::npos);
    EXPECT_EQ(delivered, 0);
  }
}

TEST(FeedPlayerTest, RejectsAnEmptyIoMap) {
  TraceEvent event = GoodEvent(3, 0.0);
  event.io_by_object.clear();
  VectorFeed feed({event});
  FeedPlayer player(&feed);
  const Status s = player.Play([](const TraceEvent&) {});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("empty window"), std::string::npos);
}

TEST(FeedPlayerTest, RejectsNegativeAndNonFiniteCounts) {
  for (double bad : {-1.0, kNan, kInf}) {
    TraceEvent event = GoodEvent(5, 0.0);
    event.io_by_object[1][IoType::kSeqWrite] = bad;
    VectorFeed feed({event});
    FeedPlayer player(&feed);
    const Status s = player.Play([](const TraceEvent&) {});
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(s.message().find("I/O count"), std::string::npos) << bad;
  }
}

TEST(FeedPlayerTest, BackToBackWindowsWithinToleranceAreInOrder) {
  // A follower that starts exactly at the predecessor's end (or a hair
  // before, within the documented 1e-9 slack) is legitimate timing, not a
  // violation.
  VectorFeed feed({GoodEvent(0, 0.0), GoodEvent(1, 1.0 - 1e-12)});
  FeedPlayer player(&feed);
  EXPECT_TRUE(player.Play([](const TraceEvent&) {}).ok());
}

}  // namespace
}  // namespace dot
