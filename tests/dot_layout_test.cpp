#include "dot/layout.h"

#include <gtest/gtest.h>

#include "catalog/tpch_schema.h"
#include "storage/standard_catalog.h"

namespace dot {
namespace {

class LayoutTest : public ::testing::Test {
 protected:
  LayoutTest() : schema_(MakeTpchSchema(20.0)), box_(MakeBox1()) {}
  Schema schema_;
  BoxConfig box_;
};

TEST_F(LayoutTest, UniformPlacesEverythingOnOneClass) {
  Layout l = Layout::Uniform(&schema_, &box_, 1);
  for (const DbObject& o : schema_.objects()) {
    EXPECT_EQ(l.ClassOf(o.id), 1);
  }
}

TEST_F(LayoutTest, SpaceByClassSumsToTotal) {
  Layout l = Layout::Uniform(&schema_, &box_, 0);
  SpaceUsage used = l.SpaceByClass();
  double total = 0;
  for (double g : used) total += g;
  EXPECT_NEAR(total, schema_.TotalSizeGb(), 1e-9);
  EXPECT_NEAR(used[0], schema_.TotalSizeGb(), 1e-9);
  EXPECT_DOUBLE_EQ(used[1], 0);
}

TEST_F(LayoutTest, WithMovesRelocatesOnlyListedObjects) {
  Layout l0 = Layout::Uniform(&schema_, &box_, 2);
  const int li = schema_.FindObject("lineitem");
  const int li_pk = schema_.FindObject("lineitem_pkey");
  Layout moved = l0.WithMoves({li, li_pk}, {0, 1});
  EXPECT_EQ(moved.ClassOf(li), 0);
  EXPECT_EQ(moved.ClassOf(li_pk), 1);
  EXPECT_EQ(moved.ClassOf(schema_.FindObject("orders")), 2);
  // Original untouched.
  EXPECT_EQ(l0.ClassOf(li), 2);
}

TEST_F(LayoutTest, CapacityCheckFlagsOverflow) {
  // Everything (~27 GB) fits the 80 GB H-SSD…
  Layout ok = Layout::Uniform(&schema_, &box_, 2);
  EXPECT_TRUE(ok.CheckCapacity().ok());
  // …but not once the cap drops to 20 GB.
  BoxConfig capped = box_;
  capped.classes[2].set_capacity_gb(20.0);
  Layout over = Layout::Uniform(&schema_, &capped, 2);
  const Status s = over.CheckCapacity();
  EXPECT_EQ(s.code(), StatusCode::kCapacityExceeded);
  EXPECT_NE(s.message().find("H-SSD"), std::string::npos);
}

TEST_F(LayoutTest, CapacityIsStrictInequality) {
  // §2.2 uses a strict Σ s_i < c_j.
  Schema s;
  s.AddTable("t", 1'000'000, 90);  // exactly 0.1 GB at 90% fill
  BoxConfig box = box_;
  box.classes[0].set_capacity_gb(s.TotalSizeGb());
  Layout l = Layout::Uniform(&s, &box, 0);
  EXPECT_FALSE(l.CheckCapacity().ok());
}

TEST_F(LayoutTest, CostMatchesManualComputation) {
  Layout l = Layout::Uniform(&schema_, &box_, 2);
  const double expected =
      schema_.TotalSizeGb() * box_.classes[2].price_cents_per_gb_hour();
  EXPECT_NEAR(l.CostCentsPerHour(CostModelSpec{}), expected, 1e-9);
}

TEST_F(LayoutTest, CheaperClassCheaperLayout) {
  const double on_hdd_raid = Layout::Uniform(&schema_, &box_, 0)
                                 .CostCentsPerHour(CostModelSpec{});
  const double on_hssd = Layout::Uniform(&schema_, &box_, 2)
                             .CostCentsPerHour(CostModelSpec{});
  EXPECT_LT(on_hdd_raid, on_hssd * 0.01);
}

TEST_F(LayoutTest, ToStringListsObjectsUnderTheirClass) {
  Layout l = Layout::Uniform(&schema_, &box_, 2);
  const int li = schema_.FindObject("lineitem");
  Layout moved = l.WithMoves({li}, {0});
  const std::string s = moved.ToString();
  // lineitem appears on the HDD RAID 0 line.
  const size_t hdd_pos = s.find("HDD RAID 0");
  const size_t li_pos = s.find("lineitem");
  const size_t lssd_pos = s.find("L-SSD");
  ASSERT_NE(hdd_pos, std::string::npos);
  EXPECT_GT(li_pos, hdd_pos);
  EXPECT_LT(li_pos, lssd_pos);
  EXPECT_NE(s.find("(empty)"), std::string::npos);  // L-SSD is empty
}

TEST_F(LayoutTest, EqualityComparesPlacements) {
  Layout a = Layout::Uniform(&schema_, &box_, 1);
  Layout b = Layout::Uniform(&schema_, &box_, 1);
  Layout c = Layout::Uniform(&schema_, &box_, 2);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST_F(LayoutTest, InvalidPlacementAborts) {
  std::vector<int> bad(static_cast<size_t>(schema_.NumObjects()), 7);
  EXPECT_DEATH(Layout(&schema_, &box_, bad), "invalid storage class");
  EXPECT_DEATH(Layout(&schema_, &box_, {0}), "every object");
}

}  // namespace
}  // namespace dot
