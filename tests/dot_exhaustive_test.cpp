#include "dot/exhaustive.h"

#include <gtest/gtest.h>

#include "catalog/tpch_schema.h"
#include "dot/layout.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

/// A deliberately tiny instance (2 tables + 2 indices on 2 classes =
/// 81... 2^4 = 16 layouts) where the optimum can be verified by hand-rolled
/// enumeration.
class ExhaustiveTest : public ::testing::Test {
 protected:
  ExhaustiveTest() : box_(MakeBox1()) {
    schema_ = MakeTpchSchema(2.0).Subset(
        {"orders", "customer", "orders_pkey", "customer_pkey"});
    auto all = MakeTpchTemplates();
    templates_ = {all[12]};  // Q13: customer x orders
    workload_ = std::make_unique<DssWorkloadModel>(
        "tiny", &schema_, &box_, templates_, RepeatSequence(1, 3),
        PlannerConfig{});
    problem_.schema = &schema_;
    problem_.box = &box_;
    problem_.workload = workload_.get();
    problem_.relative_sla = 0.5;
  }

  Schema schema_;
  BoxConfig box_;
  std::vector<QuerySpec> templates_;
  std::unique_ptr<DssWorkloadModel> workload_;
  DotProblem problem_;
};

TEST_F(ExhaustiveTest, EnumeratesEveryLayout) {
  DotResult r = ExhaustiveSearch(problem_);
  EXPECT_EQ(r.layouts_evaluated, 81);  // 3^4
  ASSERT_TRUE(r.status.ok());
}

TEST_F(ExhaustiveTest, ReturnsTheTrueOptimum) {
  DotResult es = ExhaustiveSearch(problem_);
  ASSERT_TRUE(es.status.ok());
  // Re-verify by manual enumeration.
  DotOptimizer estimator(problem_);
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> placement(4, 0);
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b)
      for (int c = 0; c < 3; ++c)
        for (int d = 0; d < 3; ++d) {
          placement = {a, b, c, d};
          Layout l(&schema_, &box_, placement);
          if (!l.CheckCapacity().ok()) continue;
          PerfEstimate est;
          const double toc = estimator.EstimateToc(placement, &est);
          if (!MeetsTargets(est, estimator.targets())) continue;
          best = std::min(best, toc);
        }
  EXPECT_NEAR(es.toc_cents_per_task, best, best * 1e-12);
}

TEST_F(ExhaustiveTest, OptimumNeverWorseThanAnyUniformLayout) {
  DotResult es = ExhaustiveSearch(problem_);
  ASSERT_TRUE(es.status.ok());
  DotOptimizer estimator(problem_);
  for (int cls = 0; cls < box_.NumClasses(); ++cls) {
    PerfEstimate est;
    const double toc =
        estimator.EstimateToc(UniformPlacement(4, cls), &est);
    if (MeetsTargets(est, estimator.targets())) {
      EXPECT_LE(es.toc_cents_per_task, toc * (1 + 1e-12));
    }
  }
}

TEST_F(ExhaustiveTest, InfeasibleWhenNothingFits) {
  BoxConfig tiny = box_;
  for (auto& sc : tiny.classes) sc.set_capacity_gb(0.001);
  DotProblem p = problem_;
  p.box = &tiny;
  DotResult r = ExhaustiveSearch(p);
  EXPECT_EQ(r.status.code(), StatusCode::kInfeasible);
}

TEST_F(ExhaustiveTest, GuardRejectsExplosiveInstancesWithAStatus) {
  // The overflow path is an expected outcome, not a programmer error: the
  // run must come back with an OutOfRange status and an empty result, not
  // abort the process.
  DotResult r = ExhaustiveSearch(problem_, /*max_layouts=*/10);
  EXPECT_EQ(r.status.code(), StatusCode::kOutOfRange);
  EXPECT_NE(r.status.message().find("exceeds the guard"), std::string::npos)
      << r.status.ToString();
  EXPECT_TRUE(r.placement.empty());
  EXPECT_EQ(r.layouts_evaluated, 0);
}

TEST_F(ExhaustiveTest, GuardSurvivesOverflowingLayoutCounts) {
  // 3^80 overflows long long; the M^N computation must saturate instead of
  // wrapping (a wrapped value could slip under the guard and start a
  // never-ending enumeration).
  Schema big;
  for (int i = 0; i < 80; ++i) {
    big.AddTable("t" + std::to_string(i), 1000.0, 100.0);
  }
  DotProblem p = problem_;
  p.schema = &big;
  DotResult r = ExhaustiveSearch(p);
  EXPECT_EQ(r.status.code(), StatusCode::kOutOfRange);
  EXPECT_NE(r.status.message().find("3^80"), std::string::npos)
      << r.status.ToString();
}

}  // namespace
}  // namespace dot
