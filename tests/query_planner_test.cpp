#include "query/planner.h"

#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "storage/standard_catalog.h"

namespace dot {
namespace {

/// Fixture: one 10M-row table with a PK index, on a two-class box
/// (HDD + H-SSD) — the setting of the paper's §3.1 interaction example.
class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() {
    table_ = schema_.AddTable("A", 10'000'000, 100);
    index_ = schema_.AddIndex("A_pkey", table_, 8);
    box_.name = "test-box";
    box_.classes = {MakeStockClass(StockClass::kHdd),
                    MakeStockClass(StockClass::kHssd)};
  }

  Plan PlanScan(double selectivity, bool sargable, int table_cls,
                int index_cls) {
    QuerySpec q;
    q.name = "scan";
    RelationAccess ra;
    ra.table = "A";
    ra.selectivity = selectivity;
    ra.index_sargable = sargable;
    q.relations = {ra};
    Planner planner(&schema_, &box_, PlannerConfig{});
    std::vector<int> placement = {table_cls, index_cls};
    return planner.PlanQuery(q, placement);
  }

  PlanOp ScanOpOf(const Plan& plan) {
    // Root is Aggregate; its child is the scan.
    const PlanNode* n = plan.root.get();
    while (!n->children.empty() && n->children[0] != nullptr) {
      n = n->children[0].get();
    }
    return n->op;
  }

  Schema schema_;
  BoxConfig box_;
  int table_;
  int index_;
  static constexpr int kHdd = 0;
  static constexpr int kHssd = 1;
};

TEST_F(PlannerTest, FullScanUsesSeqScan) {
  Plan plan = PlanScan(1.0, /*sargable=*/true, kHdd, kHdd);
  EXPECT_EQ(ScanOpOf(plan), PlanOp::kSeqScan);
  // All I/O is sequential reads on the table.
  EXPECT_GT(plan.io_by_object[table_][IoType::kSeqRead], 0);
  EXPECT_DOUBLE_EQ(plan.io_by_object[table_][IoType::kRandRead], 0);
  EXPECT_DOUBLE_EQ(plan.io_by_object[index_].Total(), 0);
}

TEST_F(PlannerTest, PointLookupUsesIndexEverywhere) {
  Plan plan = PlanScan(1e-7, /*sargable=*/true, kHdd, kHdd);
  EXPECT_EQ(ScanOpOf(plan), PlanOp::kIndexScan);
  EXPECT_GT(plan.io_by_object[index_][IoType::kRandRead], 0);
}

TEST_F(PlannerTest, UnsargablePredicateNeverUsesIndex) {
  Plan plan = PlanScan(1e-7, /*sargable=*/false, kHssd, kHssd);
  EXPECT_EQ(ScanOpOf(plan), PlanOp::kSeqScan);
}

TEST_F(PlannerTest, Section31InteractionPlanFlipsWithPlacement) {
  // The paper's motivating example (§3.1): for a moderately selective
  // range query, the plan depends on where table AND index live. On the
  // HDD, random reads are so expensive that the planner sticks to a
  // sequential scan; with table and index on the H-SSD it switches to the
  // index scan.
  const double sel = 0.002;
  Plan on_hdd = PlanScan(sel, true, kHdd, kHdd);
  Plan on_hssd = PlanScan(sel, true, kHssd, kHssd);
  EXPECT_EQ(ScanOpOf(on_hdd), PlanOp::kSeqScan);
  EXPECT_EQ(ScanOpOf(on_hssd), PlanOp::kIndexScan);
}

TEST_F(PlannerTest, IndexPlacementIrrelevantWhenPlanIgnoresIt) {
  // §3.1: "when the table is on the HDD ... the placement of the index has
  // no impact to the I/O cost since it is not accessed at all."
  const double sel = 0.002;
  Plan idx_hdd = PlanScan(sel, true, kHdd, kHdd);
  Plan idx_hssd = PlanScan(sel, true, kHdd, kHssd);
  EXPECT_EQ(ScanOpOf(idx_hdd), PlanOp::kSeqScan);
  EXPECT_EQ(ScanOpOf(idx_hssd), PlanOp::kSeqScan);
  EXPECT_DOUBLE_EQ(idx_hdd.time_ms, idx_hssd.time_ms);
}

TEST_F(PlannerTest, FasterDeviceNeverIncreasesQueryTime) {
  for (double sel : {1.0, 0.1, 0.01, 0.001, 1e-5}) {
    Plan slow = PlanScan(sel, true, kHdd, kHdd);
    Plan fast = PlanScan(sel, true, kHssd, kHssd);
    EXPECT_LE(fast.time_ms, slow.time_ms * (1 + 1e-9)) << "sel=" << sel;
  }
}

TEST_F(PlannerTest, IoCountsMatchChosenAccessPath) {
  Plan plan = PlanScan(1e-6, true, kHssd, kHssd);
  ASSERT_EQ(ScanOpOf(plan), PlanOp::kIndexScan);
  const DbObject& idx = schema_.object(index_);
  // 10 matching rows: descent + >=1 leaf, <= a handful of heap pages.
  EXPECT_GE(plan.io_by_object[index_][IoType::kRandRead], idx.height);
  EXPECT_LE(plan.io_by_object[table_][IoType::kRandRead], 11);
}

TEST_F(PlannerTest, CardenasFormulaCapsRepeatedFetches) {
  EXPECT_DOUBLE_EQ(Planner::ExpectedPagesFetched(0, 100), 0);
  EXPECT_DOUBLE_EQ(Planner::ExpectedPagesFetched(100, 0), 0);
  EXPECT_NEAR(Planner::ExpectedPagesFetched(1e9, 1000), 1000, 1e-3);
  EXPECT_LT(Planner::ExpectedPagesFetched(100, 100000), 100 + 1e-9);
  EXPECT_NEAR(Planner::ExpectedPagesFetched(100, 100000), 100, 1e-6);
  // Monotone in probes.
  EXPECT_LT(Planner::ExpectedPagesFetched(1000, 10),
            Planner::ExpectedPagesFetched(1000, 100));
}

/// Join fixture: orders -> lineitem style FK join.
class JoinPlannerTest : public ::testing::Test {
 protected:
  JoinPlannerTest() {
    outer_ = schema_.AddTable("orders", 3'000'000, 100);
    outer_pk_ = schema_.AddIndex("orders_pkey", outer_, 4);
    inner_ = schema_.AddTable("lineitem", 12'000'000, 112);
    inner_pk_ = schema_.AddIndex("lineitem_pkey", inner_, 8);
    box_.name = "test-box";
    box_.classes = {MakeStockClass(StockClass::kHdd),
                    MakeStockClass(StockClass::kHssd)};
  }

  Plan PlanJoin(double outer_sel, bool outer_sargable, int cls_everything) {
    QuerySpec q;
    q.name = "join";
    RelationAccess o;
    o.table = "orders";
    o.selectivity = outer_sel;
    o.index_sargable = outer_sargable;
    RelationAccess i;
    i.table = "lineitem";
    q.relations = {o, i};
    JoinStep j;
    j.matches_per_outer = 4.0;
    j.inner_indexable = true;
    q.joins = {j};
    Planner planner(&schema_, &box_, PlannerConfig{});
    std::vector<int> placement(4, cls_everything);
    return planner.PlanQuery(q, placement);
  }

  Schema schema_;
  BoxConfig box_;
  int outer_, outer_pk_, inner_, inner_pk_;
  static constexpr int kHdd = 0;
  static constexpr int kHssd = 1;
};

TEST_F(JoinPlannerTest, BulkJoinUsesHashJoin) {
  Plan plan = PlanJoin(1.0, false, kHssd);
  EXPECT_EQ(plan.num_joins, 1);
  EXPECT_EQ(plan.num_index_nl_joins, 0);
  // Hash join scans the inner sequentially.
  EXPECT_GT(plan.io_by_object[inner_][IoType::kSeqRead], 0);
}

TEST_F(JoinPlannerTest, SelectiveJoinUsesInljOnFastRandomDevice) {
  Plan plan = PlanJoin(1e-4, true, kHssd);
  EXPECT_EQ(plan.num_index_nl_joins, 1);
  EXPECT_GT(plan.io_by_object[inner_pk_][IoType::kRandRead], 0);
  EXPECT_DOUBLE_EQ(plan.io_by_object[inner_][IoType::kSeqRead], 0);
}

TEST_F(JoinPlannerTest, JoinMethodFlipsWithDevice) {
  // §4.4.2's driver: the same moderately selective query is an INLJ on the
  // H-SSD but a hash join on the HDD, because HDD random reads are ~150x
  // slower while sequential reads are only ~4.5x slower.
  const double sel = 0.002;
  Plan on_hssd = PlanJoin(sel, true, kHssd);
  Plan on_hdd = PlanJoin(sel, true, kHdd);
  EXPECT_EQ(on_hssd.num_index_nl_joins, 1);
  EXPECT_EQ(on_hdd.num_index_nl_joins, 0);
}

TEST_F(JoinPlannerTest, PlanTimeDecomposesIntoIoAndCpu) {
  Plan plan = PlanJoin(0.01, true, kHssd);
  EXPECT_NEAR(plan.time_ms, plan.io_ms + plan.cpu_ms, 1e-9);
  EXPECT_GT(plan.io_ms, 0);
  EXPECT_GT(plan.cpu_ms, 0);
}

TEST_F(JoinPlannerTest, ToStringRendersTree) {
  Plan plan = PlanJoin(1e-4, true, kHssd);
  const std::string s = plan.ToString(schema_);
  EXPECT_NE(s.find("IndexNLJoin"), std::string::npos);
  EXPECT_NE(s.find("lineitem_pkey"), std::string::npos);
}

TEST_F(JoinPlannerTest, SpillChargesTempObject) {
  Schema schema;
  const int big = schema.AddTable("big", 50'000'000, 200);
  (void)schema.AddIndex("big_pkey", big, 8);
  const int probe = schema.AddTable("probe", 1'000'000, 50);
  (void)schema.AddIndex("probe_pkey", probe, 8);
  const int temp = schema.AddAuxiliary("temp", ObjectKind::kTempSpace, 20.0);

  QuerySpec q;
  q.name = "spilling-join";
  RelationAccess o;
  o.table = "probe";
  RelationAccess i;
  i.table = "big";
  q.relations = {o, i};
  JoinStep j;
  j.matches_per_outer = 1.0;
  j.inner_indexable = false;  // force hash join
  q.joins = {j};

  PlannerConfig small_mem;
  small_mem.work_mem_gb = 0.5;  // build side (10 GB) far exceeds work_mem
  small_mem.temp_object_id = temp;
  Planner planner(&schema, &box_, small_mem);
  std::vector<int> placement(5, kHssd);
  Plan plan = planner.PlanQuery(q, placement);
  EXPECT_GT(plan.io_by_object[temp][IoType::kSeqWrite], 0);
  EXPECT_GT(plan.io_by_object[temp][IoType::kSeqRead], 0);

  // With ample memory there is no spill.
  PlannerConfig big_mem;
  big_mem.work_mem_gb = 64.0;
  big_mem.temp_object_id = temp;
  Planner planner2(&schema, &box_, big_mem);
  Plan plan2 = planner2.PlanQuery(q, placement);
  EXPECT_DOUBLE_EQ(plan2.io_by_object[temp].Total(), 0);
}

TEST_F(JoinPlannerTest, SortSpillsWhenResultExceedsWorkMem) {
  Schema schema;
  (void)schema.AddTable("t", 40'000'000, 200);
  const int temp = schema.AddAuxiliary("temp", ObjectKind::kTempSpace, 20.0);
  QuerySpec q;
  q.name = "big-sort";
  RelationAccess ra;
  ra.table = "t";
  q.relations = {ra};
  q.has_sort = true;
  PlannerConfig cfg;
  cfg.work_mem_gb = 1.0;
  cfg.temp_object_id = temp;
  Planner planner(&schema, &box_, cfg);
  Plan plan = planner.PlanQuery(q, {kHssd, kHssd});
  EXPECT_GT(plan.io_by_object[temp][IoType::kSeqWrite], 0);
}

TEST_F(JoinPlannerTest, ConcurrencyAffectsEstimatedTime) {
  QuerySpec q;
  q.name = "scan";
  RelationAccess ra;
  ra.table = "orders";
  q.relations = {ra};
  PlannerConfig c1;
  c1.concurrency = 1.0;
  PlannerConfig c300;
  c300.concurrency = 300.0;
  Planner p1(&schema_, &box_, c1);
  Planner p300(&schema_, &box_, c300);
  std::vector<int> placement(4, kHdd);
  // HDD sequential reads degrade under concurrency (Table 1).
  EXPECT_GT(p300.PlanQuery(q, placement).io_ms,
            p1.PlanQuery(q, placement).io_ms);
}

TEST_F(JoinPlannerTest, ArityMismatchAborts) {
  QuerySpec q;
  q.name = "bad";
  RelationAccess ra;
  ra.table = "orders";
  q.relations = {ra};
  JoinStep j;
  q.joins = {j};  // join without a second relation
  Planner planner(&schema_, &box_, PlannerConfig{});
  std::vector<int> placement(4, 0);
  EXPECT_DEATH((void)planner.PlanQuery(q, placement), "arity");
}

}  // namespace
}  // namespace dot
