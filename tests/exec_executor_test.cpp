#include "exec/executor.h"

#include <gtest/gtest.h>

#include "catalog/tpch_schema.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : schema_(MakeTpchSchema(20.0)),
        box_(MakeBox1()),
        workload_("TPC-H", &schema_, &box_, MakeTpchTemplates(),
                  RepeatSequence(22, 1), PlannerConfig{}) {}

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
};

TEST_F(ExecutorTest, NoiselessRunEqualsEstimate) {
  ExecutorConfig cfg;
  cfg.noise_cv = 0.0;
  Executor exec(&workload_, cfg);
  const auto placement = UniformPlacement(schema_.NumObjects(), 2);
  PerfEstimate run = exec.Run(placement);
  PerfEstimate est = workload_.Estimate(placement);
  EXPECT_DOUBLE_EQ(run.elapsed_ms, est.elapsed_ms);
  EXPECT_EQ(run.unit_times_ms, est.unit_times_ms);
}

TEST_F(ExecutorTest, NoiseJittersButStaysClose) {
  ExecutorConfig cfg;
  cfg.noise_cv = 0.05;
  cfg.seed = 11;
  Executor exec(&workload_, cfg);
  const auto placement = UniformPlacement(schema_.NumObjects(), 2);
  PerfEstimate est = workload_.Estimate(placement);
  PerfEstimate run = exec.Run(placement);
  EXPECT_NE(run.elapsed_ms, est.elapsed_ms);
  EXPECT_NEAR(run.elapsed_ms, est.elapsed_ms, est.elapsed_ms * 0.2);
}

TEST_F(ExecutorTest, RunsAreReproducibleAcrossExecutors) {
  ExecutorConfig cfg;
  cfg.noise_cv = 0.1;
  cfg.seed = 99;
  Executor a(&workload_, cfg);
  Executor b(&workload_, cfg);
  const auto placement = UniformPlacement(schema_.NumObjects(), 1);
  EXPECT_DOUBLE_EQ(a.Run(placement).elapsed_ms, b.Run(placement).elapsed_ms);
}

TEST_F(ExecutorTest, ConsecutiveRunsDiffer) {
  ExecutorConfig cfg;
  cfg.noise_cv = 0.1;
  Executor exec(&workload_, cfg);
  const auto placement = UniformPlacement(schema_.NumObjects(), 1);
  EXPECT_NE(exec.Run(placement).elapsed_ms, exec.Run(placement).elapsed_ms);
}

TEST_F(ExecutorTest, IoScaleInjectionSlowsMeasurement) {
  ExecutorConfig cfg;
  cfg.noise_cv = 0.0;
  cfg.io_scale.assign(static_cast<size_t>(schema_.NumObjects()), 1.0);
  cfg.io_scale[static_cast<size_t>(schema_.FindObject("lineitem"))] = 4.0;
  Executor exec(&workload_, cfg);
  const auto placement = UniformPlacement(schema_.NumObjects(), 0);
  PerfEstimate run = exec.Run(placement);
  PerfEstimate est = workload_.Estimate(placement);
  EXPECT_GT(run.elapsed_ms, est.elapsed_ms * 1.5);
  // Measured I/O statistics reflect the true (scaled) counts.
  const int li = schema_.FindObject("lineitem");
  EXPECT_NEAR(run.io_by_object[li].Total(),
              4.0 * est.io_by_object[li].Total(), 1e-6);
}

}  // namespace
}  // namespace dot
