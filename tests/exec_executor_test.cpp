#include "exec/executor.h"

#include <gtest/gtest.h>

#include "catalog/tpcc_schema.h"
#include "catalog/tpch_schema.h"
#include "common/simd_dispatch.h"
#include "common/units.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/htap_workload.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : schema_(MakeTpchSchema(20.0)),
        box_(MakeBox1()),
        workload_("TPC-H", &schema_, &box_, MakeTpchTemplates(),
                  RepeatSequence(22, 1), PlannerConfig{}) {}

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
};

TEST_F(ExecutorTest, NoiselessRunEqualsEstimate) {
  ExecutorConfig cfg;
  cfg.noise_cv = 0.0;
  Executor exec(&workload_, cfg);
  const auto placement = UniformPlacement(schema_.NumObjects(), 2);
  PerfEstimate run = exec.Run(placement);
  PerfEstimate est = workload_.Estimate(placement);
  EXPECT_DOUBLE_EQ(run.elapsed_ms, est.elapsed_ms);
  EXPECT_EQ(run.unit_times_ms, est.unit_times_ms);
}

TEST_F(ExecutorTest, NoiseJittersButStaysClose) {
  ExecutorConfig cfg;
  cfg.noise_cv = 0.05;
  cfg.seed = 11;
  Executor exec(&workload_, cfg);
  const auto placement = UniformPlacement(schema_.NumObjects(), 2);
  PerfEstimate est = workload_.Estimate(placement);
  PerfEstimate run = exec.Run(placement);
  EXPECT_NE(run.elapsed_ms, est.elapsed_ms);
  EXPECT_NEAR(run.elapsed_ms, est.elapsed_ms, est.elapsed_ms * 0.2);
}

TEST_F(ExecutorTest, RunsAreReproducibleAcrossExecutors) {
  ExecutorConfig cfg;
  cfg.noise_cv = 0.1;
  cfg.seed = 99;
  Executor a(&workload_, cfg);
  Executor b(&workload_, cfg);
  const auto placement = UniformPlacement(schema_.NumObjects(), 1);
  EXPECT_DOUBLE_EQ(a.Run(placement).elapsed_ms, b.Run(placement).elapsed_ms);
}

TEST_F(ExecutorTest, ConsecutiveRunsDiffer) {
  ExecutorConfig cfg;
  cfg.noise_cv = 0.1;
  Executor exec(&workload_, cfg);
  const auto placement = UniformPlacement(schema_.NumObjects(), 1);
  EXPECT_NE(exec.Run(placement).elapsed_ms, exec.Run(placement).elapsed_ms);
}

TEST_F(ExecutorTest, IoScaleInjectionSlowsMeasurement) {
  ExecutorConfig cfg;
  cfg.noise_cv = 0.0;
  cfg.io_scale.assign(static_cast<size_t>(schema_.NumObjects()), 1.0);
  cfg.io_scale[static_cast<size_t>(schema_.FindObject("lineitem"))] = 4.0;
  Executor exec(&workload_, cfg);
  const auto placement = UniformPlacement(schema_.NumObjects(), 0);
  PerfEstimate run = exec.Run(placement);
  PerfEstimate est = workload_.Estimate(placement);
  EXPECT_GT(run.elapsed_ms, est.elapsed_ms * 1.5);
  // Measured I/O statistics reflect the true (scaled) counts.
  const int li = schema_.FindObject("lineitem");
  EXPECT_NEAR(run.io_by_object[li].Total(),
              4.0 * est.io_by_object[li].Total(), 1e-6);
}

// Regression for the PR 4 executor bugfix: a jittered kPerQueryResponseTime
// run must rederive its composed scalars through the *model's*
// RederiveFromUnitTimes hook, not the DSS sequence convention. For HTAP the
// two unit-time entries are folded per-side times, so "elapsed = Σ entries,
// tasks = entries/elapsed-hour" is simply wrong arithmetic for them.
TEST(ExecutorHtapRederiveTest, JitteredHtapRunRederivesComposedScalars) {
  Schema full = MakeTpccSchema(300);
  Schema schema = full.Subset({"stock", "pk_stock", "order_line",
                               "pk_order_line", "customer", "pk_customer",
                               "orders", "pk_orders"});
  BoxConfig box = MakeBox2();
  HtapBundle bundle = MakeChbenchHtapWorkload(&schema, &box, HtapConfig{});

  ExecutorConfig cfg;
  cfg.noise_cv = 0.08;
  cfg.seed = 23;
  Executor exec(bundle.htap.get(), cfg);
  const auto placement = UniformPlacement(schema.NumObjects(), 1);
  const PerfEstimate run = exec.Run(placement);
  ASSERT_EQ(run.unit_times_ms.size(), 2u);

  // The composed scalars must be exactly what the HTAP composition derives
  // from the two jittered folded times...
  const OltpWorkloadModel::Throughput tp =
      bundle.oltp->ThroughputFromMeanLatency(
          run.unit_times_ms[static_cast<size_t>(kHtapOltpEntry)]);
  EXPECT_DOUBLE_EQ(run.tpmc, tp.tpmc);
  EXPECT_DOUBLE_EQ(
      run.tasks_per_hour,
      tp.tasks_per_hour +
          bundle.htap->AnalyticsTasksPerHour(
              run.unit_times_ms[static_cast<size_t>(kHtapDssEntry)]));
  // ...with elapsed_ms still the OLTP measurement period, not a "sequence
  // total" of the two folded entries.
  EXPECT_DOUBLE_EQ(run.elapsed_ms, bundle.oltp->measurement_period_ms());

  // And the DSS convention's answers differ from the correct ones on this
  // estimate — the regression would be invisible otherwise.
  const double entry_sum =
      run.unit_times_ms[0] + run.unit_times_ms[1];
  EXPECT_NE(run.elapsed_ms, entry_sum);
  EXPECT_NE(run.tasks_per_hour, 2.0 / (entry_sum / kMsPerHour));
}

// The DSS default convention is itself a contract: jittered response-time
// runs keep elapsed = Σ entries and tasks/hour = entries per elapsed hour.
TEST(ExecutorDssRederiveTest, JitteredDssRunKeepsSequenceConvention) {
  Schema schema = MakeTpchSchema(20.0);
  BoxConfig box = MakeBox1();
  DssWorkloadModel workload("TPC-H", &schema, &box, MakeTpchTemplates(),
                            RepeatSequence(22, 1), PlannerConfig{});
  ExecutorConfig cfg;
  cfg.noise_cv = 0.1;
  cfg.seed = 31;
  Executor exec(&workload, cfg);
  const PerfEstimate run =
      exec.Run(UniformPlacement(schema.NumObjects(), 2));
  // The rederive sums entries through the pinned blocked schedule; the
  // reference must too, or the equality only holds by luck below 8 entries.
  const double entry_sum =
      BlockedSum(run.unit_times_ms.data(),
                 static_cast<int>(run.unit_times_ms.size()));
  EXPECT_DOUBLE_EQ(run.elapsed_ms, entry_sum);
  EXPECT_DOUBLE_EQ(run.tasks_per_hour,
                   static_cast<double>(run.unit_times_ms.size()) /
                       (run.elapsed_ms / kMsPerHour));
}

}  // namespace
}  // namespace dot
