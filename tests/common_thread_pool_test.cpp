#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dot {
namespace {

TEST(ThreadPoolTest, ReportsRequestedLaneCount) {
  EXPECT_EQ(ThreadPool(1).num_threads(), 1);
  EXPECT_EQ(ThreadPool(4).num_threads(), 4);
  // 0 resolves to hardware concurrency (at least one lane).
  EXPECT_GE(ThreadPool(0).num_threads(), 1);
}

TEST(ThreadPoolTest, SubmitRunsTasksToCompletion) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  std::atomic<int> sum(0);
  pool.ParallelFor(0, 1000, [&](int64_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 999 * 1000 / 2);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsANoOp) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](int64_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 64,
                       [](int64_t i) {
                         if (i == 13) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::logic_error("bad"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

TEST(ThreadPoolTest, ShardsPartitionTheRangeDeterministically) {
  ThreadPool pool(4);
  std::vector<std::pair<int64_t, int64_t>> ranges(7);
  pool.ParallelForShards(3, 103, 7,
                         [&](int shard, int64_t begin, int64_t end) {
                           ranges[static_cast<size_t>(shard)] = {begin, end};
                         });
  // Contiguous cover of [3, 103) with sizes independent of scheduling.
  int64_t at = 3;
  for (const auto& r : ranges) {
    EXPECT_EQ(r.first, at);
    EXPECT_GT(r.second, r.first);
    at = r.second;
  }
  EXPECT_EQ(at, 103);
}

TEST(ThreadPoolTest, ShardCountIsCappedByRangeSize) {
  ThreadPool pool(4);
  std::atomic<int> shards(0);
  pool.ParallelForShards(0, 3, 16, [&](int, int64_t begin, int64_t end) {
    shards.fetch_add(1);
    EXPECT_EQ(end - begin, 1);
  });
  EXPECT_EQ(shards.load(), 3);
}

TEST(ThreadPoolTest, ReentrantSubmitDoesNotDeadlock) {
  ThreadPool pool(2);
  // A task that submits nested work and drains the queue while waiting —
  // the pattern the pool's RunPendingTask escape hatch exists for.
  auto outer = pool.Submit([&pool] {
    std::vector<std::future<int>> inner;
    for (int i = 0; i < 8; ++i) {
      inner.push_back(pool.Submit([i] { return i; }));
    }
    int sum = 0;
    for (auto& f : inner) {
      while (f.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready) {
        if (!pool.RunPendingTask()) f.wait();
      }
      sum += f.get();
    }
    return sum;
  });
  EXPECT_EQ(outer.get(), 28);
}

TEST(ThreadPoolTest, ReentrantParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total(0);
  pool.ParallelFor(0, 8, [&](int64_t) {
    pool.ParallelFor(0, 8, [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, DestructorCompletesQueuedWork) {
  std::atomic<int> done(0);
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([&done] { done.fetch_add(1); }));
    }
  }
  EXPECT_EQ(done.load(), 32);
  for (auto& f : futures) f.get();  // all futures must be satisfied
}

}  // namespace
}  // namespace dot
