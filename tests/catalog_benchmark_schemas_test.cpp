#include <gtest/gtest.h>

#include "catalog/tpcc_schema.h"
#include "catalog/tpch_schema.h"

namespace dot {
namespace {

TEST(TpchSchemaTest, HasEightTablesAndEightPkIndices) {
  Schema s = MakeTpchSchema(20.0);
  EXPECT_EQ(s.NumObjects(), 16);
  int tables = 0;
  int indices = 0;
  for (const DbObject& o : s.objects()) {
    if (o.kind == ObjectKind::kTable) ++tables;
    if (o.kind == ObjectKind::kPrimaryIndex) ++indices;
  }
  EXPECT_EQ(tables, 8);
  EXPECT_EQ(indices, 8);
}

TEST(TpchSchemaTest, Sf20IsRoughlyThirtyGb) {
  // §4.4: "a 30GB TPC-H database is generated (scale factor 20)".
  Schema s = MakeTpchSchema(20.0);
  EXPECT_GT(s.TotalSizeGb(), 22.0);
  EXPECT_LT(s.TotalSizeGb(), 38.0);
}

TEST(TpchSchemaTest, CardinalitiesScaleWithSf) {
  Schema s1 = MakeTpchSchema(1.0);
  Schema s10 = MakeTpchSchema(10.0);
  EXPECT_DOUBLE_EQ(s1.object(s1.FindObject("lineitem")).num_rows, 6e6);
  EXPECT_DOUBLE_EQ(s10.object(s10.FindObject("lineitem")).num_rows, 6e7);
  // region/nation do not scale.
  EXPECT_DOUBLE_EQ(s10.object(s10.FindObject("region")).num_rows, 5);
  EXPECT_DOUBLE_EQ(s10.object(s10.FindObject("nation")).num_rows, 25);
}

TEST(TpchSchemaTest, LineitemIsLargestObject) {
  Schema s = MakeTpchSchema(20.0);
  const double li = s.object(s.FindObject("lineitem")).size_gb;
  for (const DbObject& o : s.objects()) {
    if (o.name == "lineitem") continue;
    EXPECT_LT(o.size_gb, li) << o.name;
  }
}

TEST(TpchSchemaTest, PkeyNamingMatchesPostgres) {
  Schema s = MakeTpchSchema(1.0);
  EXPECT_GE(s.FindObject("partsupp_pkey"), 0);
  EXPECT_EQ(s.object(s.FindObject("partsupp_pkey")).table_id,
            s.FindObject("partsupp"));
}

TEST(TpchSchemaTest, EsSubsetHasEightObjects) {
  // §4.4.3: lineitem, orders, customer, part and their indices.
  Schema s = MakeTpchEsSubsetSchema(20.0);
  EXPECT_EQ(s.NumObjects(), 8);
  for (const char* name :
       {"lineitem", "orders", "customer", "part", "lineitem_pkey",
        "orders_pkey", "customer_pkey", "part_pkey"}) {
    EXPECT_GE(s.FindObject(name), 0) << name;
  }
}

TEST(TpccSchemaTest, HasNineTablesAndPaperIndices) {
  Schema s = MakeTpccSchema(300);
  int tables = 0;
  for (const DbObject& o : s.objects()) {
    if (o.kind == ObjectKind::kTable) ++tables;
  }
  EXPECT_EQ(tables, 9);
  // Table 3 object names.
  for (const char* name :
       {"warehouse", "district", "customer", "history", "new_order",
        "orders", "order_line", "item", "stock", "pk_warehouse",
        "pk_district", "pk_customer", "pk_new_order", "pk_orders",
        "pk_order_line", "pk_item", "pk_stock", "i_customer", "i_orders"}) {
    EXPECT_GE(s.FindObject(name), 0) << name;
  }
  // history has no primary index (DBT-2).
  EXPECT_EQ(s.PrimaryIndexOf(s.FindObject("history")), -1);
}

TEST(TpccSchemaTest, Sf300IsRoughlyThirtyGb) {
  // §4.5: "populated a 30GB (scale factor 300) TPC-C database".
  Schema s = MakeTpccSchema(300);
  EXPECT_GT(s.TotalSizeGb(), 22.0);
  EXPECT_LT(s.TotalSizeGb(), 40.0);
}

TEST(TpccSchemaTest, ItemIsGlobal) {
  Schema s100 = MakeTpccSchema(100);
  Schema s300 = MakeTpccSchema(300);
  EXPECT_DOUBLE_EQ(s100.object(s100.FindObject("item")).num_rows,
                   s300.object(s300.FindObject("item")).num_rows);
  EXPECT_LT(s100.object(s100.FindObject("stock")).num_rows,
            s300.object(s300.FindObject("stock")).num_rows);
}

TEST(TpccSchemaTest, SecondaryIndicesAttachToRightTables) {
  Schema s = MakeTpccSchema(10);
  EXPECT_EQ(s.object(s.FindObject("i_customer")).table_id,
            s.FindObject("customer"));
  EXPECT_EQ(s.object(s.FindObject("i_orders")).table_id,
            s.FindObject("orders"));
  EXPECT_EQ(s.object(s.FindObject("i_customer")).kind,
            ObjectKind::kSecondaryIndex);
}

TEST(TpccSchemaTest, CustomerAndOrdersGroupsHaveThreeMembers) {
  Schema s = MakeTpccSchema(10);
  for (const ObjectGroup& g : s.MakeGroups()) {
    if (g.table_id == s.FindObject("customer") ||
        g.table_id == s.FindObject("orders")) {
      EXPECT_EQ(g.size(), 3);
    }
  }
}

TEST(TpccSchemaTest, StockIsLargestTable) {
  Schema s = MakeTpccSchema(300);
  const double stock = s.object(s.FindObject("stock")).size_gb;
  EXPECT_GT(stock, s.object(s.FindObject("customer")).size_gb * 0.5);
  EXPECT_GT(stock, s.object(s.FindObject("orders")).size_gb);
}

}  // namespace
}  // namespace dot
