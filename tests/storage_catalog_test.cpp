#include "storage/standard_catalog.h"

#include <gtest/gtest.h>

namespace dot {
namespace {

TEST(StandardCatalogTest, StockAnchorsMatchTable1Spot) {
  const StorageClass hdd = MakeStockClass(StockClass::kHdd);
  EXPECT_DOUBLE_EQ(hdd.device().anchors(IoType::kRandRead).at_c1_ms, 13.32);
  EXPECT_DOUBLE_EQ(hdd.device().anchors(IoType::kRandRead).at_c300_ms, 8.903);
  const StorageClass hssd = MakeStockClass(StockClass::kHssd);
  EXPECT_DOUBLE_EQ(hssd.device().anchors(IoType::kSeqRead).at_c1_ms, 0.016);
  EXPECT_DOUBLE_EQ(hssd.device().anchors(IoType::kRandWrite).at_c300_ms,
                   0.986);
  const StorageClass lssd = MakeStockClass(StockClass::kLssd);
  EXPECT_DOUBLE_EQ(lssd.device().anchors(IoType::kRandWrite).at_c1_ms, 62.01);
}

TEST(StandardCatalogTest, CapacitiesMatchTable2) {
  EXPECT_DOUBLE_EQ(MakeStockClass(StockClass::kHdd).capacity_gb(), 500.0);
  EXPECT_DOUBLE_EQ(MakeStockClass(StockClass::kHddRaid0).capacity_gb(),
                   1000.0);
  EXPECT_DOUBLE_EQ(MakeStockClass(StockClass::kLssd).capacity_gb(), 128.0);
  EXPECT_DOUBLE_EQ(MakeStockClass(StockClass::kLssdRaid0).capacity_gb(),
                   256.0);
  EXPECT_DOUBLE_EQ(MakeStockClass(StockClass::kHssd).capacity_gb(), 80.0);
}

TEST(StandardCatalogTest, SpecsMatchTable2) {
  const DeviceSpec& hdd = StockDeviceSpec(StockClass::kHdd);
  EXPECT_EQ(hdd.brand_model, "WD Caviar Black");
  EXPECT_DOUBLE_EQ(hdd.purchase_cost_cents, 3400.0);
  EXPECT_DOUBLE_EQ(hdd.power_watts, 8.3);
  const DeviceSpec& hssd = StockDeviceSpec(StockClass::kHssd);
  EXPECT_EQ(hssd.flash_type, "SLC");
  EXPECT_DOUBLE_EQ(hssd.purchase_cost_cents, 355000.0);
  EXPECT_EQ(StockDeviceSpec(StockClass::kHddRaid0).brand_model,
            hdd.brand_model);
}

TEST(StandardCatalogTest, RaidControllerMatchesSection41) {
  const RaidControllerSpec& ctrl = StockRaidController();
  EXPECT_DOUBLE_EQ(ctrl.cost_cents, 11000.0);
  EXPECT_DOUBLE_EQ(ctrl.power_watts, 8.25);
  EXPECT_EQ(ctrl.devices_per_group, 2);
}

TEST(StandardCatalogTest, HssdIsFastestForRandomReads) {
  const double hssd_rr = MakeStockClass(StockClass::kHssd)
                             .device()
                             .LatencyMs(IoType::kRandRead, 1);
  for (int i = 0; i < kNumStockClasses - 1; ++i) {
    const double rr = MakeStockClass(static_cast<StockClass>(i))
                          .device()
                          .LatencyMs(IoType::kRandRead, 1);
    EXPECT_LT(hssd_rr, rr) << StockClassName(static_cast<StockClass>(i));
  }
}

TEST(StandardCatalogTest, LssdHasWorstRandomWrites) {
  // §4.5.2: "the L-SSD device has poor random write performance".
  const double lssd_rw = MakeStockClass(StockClass::kLssd)
                             .device()
                             .LatencyMs(IoType::kRandWrite, 1);
  for (int i = 0; i < kNumStockClasses; ++i) {
    if (static_cast<StockClass>(i) == StockClass::kLssd) continue;
    EXPECT_GT(lssd_rw, MakeStockClass(static_cast<StockClass>(i))
                           .device()
                           .LatencyMs(IoType::kRandWrite, 1));
  }
}

TEST(StandardCatalogTest, RaidZeroCostEffectivenessClaims) {
  // §4.4.1: "The SSD RAID 0 achieves SR I/O performance comparable to
  // H-SSD (x1.3) with significantly lower storage cost (x0.056). The HDD
  // RAID 0 can be similarly compared with the L-SSD (x1.36 faster at only
  // x0.107 of the storage cost)."
  const StorageClass lssd_raid = MakeStockClass(StockClass::kLssdRaid0);
  const StorageClass hssd = MakeStockClass(StockClass::kHssd);
  EXPECT_NEAR(lssd_raid.device().anchors(IoType::kSeqRead).at_c1_ms /
                  hssd.device().anchors(IoType::kSeqRead).at_c1_ms,
              1.3, 0.05);
  EXPECT_NEAR(PublishedPriceCentsPerGbHour(StockClass::kLssdRaid0) /
                  PublishedPriceCentsPerGbHour(StockClass::kHssd),
              0.056, 0.005);

  const StorageClass hdd_raid = MakeStockClass(StockClass::kHddRaid0);
  const StorageClass lssd = MakeStockClass(StockClass::kLssd);
  EXPECT_NEAR(hdd_raid.device().anchors(IoType::kSeqRead).at_c1_ms /
                  lssd.device().anchors(IoType::kSeqRead).at_c1_ms,
              1.36, 0.05);
  EXPECT_NEAR(PublishedPriceCentsPerGbHour(StockClass::kHddRaid0) /
                  PublishedPriceCentsPerGbHour(StockClass::kLssd),
              0.107, 0.005);
}

TEST(BoxConfigTest, Box1HasPaperClasses) {
  const BoxConfig box = MakeBox1();
  EXPECT_EQ(box.name, "Box 1");
  ASSERT_EQ(box.NumClasses(), 3);
  EXPECT_EQ(box.classes[0].name(), "HDD RAID 0");
  EXPECT_EQ(box.classes[1].name(), "L-SSD");
  EXPECT_EQ(box.classes[2].name(), "H-SSD");
}

TEST(BoxConfigTest, Box2HasPaperClasses) {
  const BoxConfig box = MakeBox2();
  ASSERT_EQ(box.NumClasses(), 3);
  EXPECT_EQ(box.classes[0].name(), "HDD");
  EXPECT_EQ(box.classes[1].name(), "L-SSD RAID 0");
  EXPECT_EQ(box.classes[2].name(), "H-SSD");
}

TEST(BoxConfigTest, MostExpensiveIsHssd) {
  EXPECT_EQ(MakeBox1().MostExpensiveClass(), 2);
  EXPECT_EQ(MakeBox2().MostExpensiveClass(), 2);
  EXPECT_EQ(MakeAllClassesBox().MostExpensiveClass(), 4);
}

TEST(BoxConfigTest, FindClassByName) {
  const BoxConfig box = MakeBox2();
  EXPECT_EQ(box.FindClass("L-SSD RAID 0"), 1);
  EXPECT_EQ(box.FindClass("H-SSD"), 2);
  EXPECT_EQ(box.FindClass("does-not-exist"), -1);
}

TEST(BoxConfigTest, CapacityOverrideSticks) {
  BoxConfig box = MakeBox1();
  box.classes[2].set_capacity_gb(21.0);
  EXPECT_DOUBLE_EQ(box.classes[2].capacity_gb(), 21.0);
}

}  // namespace
}  // namespace dot
