#include "catalog/schema.h"

#include <gtest/gtest.h>

#include <string>

#include "catalog/tpcc_schema.h"
#include "catalog/tpch_schema.h"

namespace dot {
namespace {

TEST(SchemaTest, AddTableDerivesSize) {
  Schema s;
  const int t = s.AddTable("t", 1'000'000, 100);
  const DbObject& o = s.object(t);
  EXPECT_EQ(o.kind, ObjectKind::kTable);
  // 100 MB of raw rows at 90% fill ~= 0.111 GB.
  EXPECT_NEAR(o.size_gb, 0.1111, 0.001);
  EXPECT_DOUBLE_EQ(o.num_rows, 1'000'000);
  EXPECT_EQ(o.table_id, t);
}

TEST(SchemaTest, AddIndexDerivesGeometry) {
  Schema s;
  const int t = s.AddTable("t", 10'000'000, 100);
  const int i = s.AddIndex("t_pkey", t, 8);
  const DbObject& idx = s.object(i);
  EXPECT_TRUE(idx.IsIndex());
  EXPECT_EQ(idx.table_id, t);
  EXPECT_GE(idx.height, 2);
  EXPECT_LE(idx.height, 4);
  EXPECT_GT(idx.leaf_pages, 0);
  // An index is much smaller than its table.
  EXPECT_LT(idx.size_gb, s.object(t).size_gb / 4);
}

TEST(SchemaTest, IndexHeightGrowsWithCardinality) {
  Schema s;
  const int small = s.AddTable("small", 1'000, 50);
  const int big = s.AddTable("big", 100'000'000, 50);
  const int si = s.AddIndex("si", small, 8);
  const int bi = s.AddIndex("bi", big, 8);
  EXPECT_LT(s.object(si).height, s.object(bi).height);
}

TEST(SchemaTest, FindObjectByName) {
  Schema s;
  s.AddTable("a", 10, 10);
  s.AddTable("b", 10, 10);
  EXPECT_EQ(s.FindObject("b"), 1);
  EXPECT_EQ(s.FindObject("zzz"), -1);
}

TEST(SchemaTest, IndexesOfAndPrimaryIndexOf) {
  Schema s;
  const int t = s.AddTable("t", 1000, 10);
  const int pk = s.AddIndex("pk_t", t, 4, ObjectKind::kPrimaryIndex);
  const int sec = s.AddIndex("i_t", t, 8, ObjectKind::kSecondaryIndex);
  EXPECT_EQ(s.IndexesOf(t), (std::vector<int>{pk, sec}));
  EXPECT_EQ(s.PrimaryIndexOf(t), pk);
}

TEST(SchemaTest, PrimaryIndexOfTableWithoutIndexIsMinusOne) {
  Schema s;
  const int t = s.AddTable("t", 1000, 10);
  EXPECT_EQ(s.PrimaryIndexOf(t), -1);
}

TEST(SchemaTest, AuxiliaryObjects) {
  Schema s;
  const int temp = s.AddAuxiliary("temp", ObjectKind::kTempSpace, 5.0);
  EXPECT_DOUBLE_EQ(s.object(temp).size_gb, 5.0);
  EXPECT_FALSE(s.object(temp).IsIndex());
}

TEST(SchemaTest, TotalSizeSumsAllObjects) {
  Schema s;
  s.AddTable("a", 1'000'000, 90);  // 0.1 GB
  s.AddAuxiliary("log", ObjectKind::kLog, 2.0);
  EXPECT_NEAR(s.TotalSizeGb(), 2.1, 0.01);
}

TEST(SchemaTest, GroupsPairTablesWithTheirIndices) {
  Schema s;
  const int a = s.AddTable("a", 1000, 10);
  const int b = s.AddTable("b", 1000, 10);
  const int a_pk = s.AddIndex("a_pk", a, 4);
  const int b_pk = s.AddIndex("b_pk", b, 4);
  const int b_sec = s.AddIndex("b_sec", b, 8, ObjectKind::kSecondaryIndex);
  const int temp = s.AddAuxiliary("temp", ObjectKind::kTempSpace, 1.0);

  const std::vector<ObjectGroup> groups = s.MakeGroups();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].members, (std::vector<int>{a, a_pk}));
  EXPECT_EQ(groups[1].members, (std::vector<int>{b, b_pk, b_sec}));
  EXPECT_EQ(groups[2].members, (std::vector<int>{temp}));
  EXPECT_EQ(groups[2].table_id, -1);
}

TEST(SchemaTest, GroupsCoverEveryObjectExactlyOnce) {
  Schema s = MakeTpccSchema(10);
  std::vector<int> seen(static_cast<size_t>(s.NumObjects()), 0);
  for (const ObjectGroup& g : s.MakeGroups()) {
    for (int o : g.members) seen[static_cast<size_t>(o)] += 1;
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(SchemaTest, SubsetPreservesSizesAndRemapsIds) {
  Schema full = MakeTpchSchema(1.0);
  Schema sub = full.Subset({"orders", "lineitem", "orders_pkey",
                            "lineitem_pkey"});
  EXPECT_EQ(sub.NumObjects(), 4);
  const int li = sub.FindObject("lineitem");
  ASSERT_GE(li, 0);
  EXPECT_DOUBLE_EQ(sub.object(li).size_gb,
                   full.object(full.FindObject("lineitem")).size_gb);
  const int li_pk = sub.FindObject("lineitem_pkey");
  EXPECT_EQ(sub.object(li_pk).table_id, li);
}

// --- Fingerprint: the key the fleet planner shares candidate pools under.
// Equal construction must hash equal; any content or order change must not.

Schema TwoTableSchema(const char* first, const char* second) {
  Schema s;
  const int a = s.AddTable(first, 1e6, 120);
  s.AddIndex(std::string(first) + "_pk", a, 8);
  const int b = s.AddTable(second, 5e5, 80);
  s.AddIndex(std::string(second) + "_pk", b, 8);
  return s;
}

TEST(SchemaFingerprintTest, IdenticalConstructionHashesEqual) {
  const Schema a = TwoTableSchema("orders", "items");
  const Schema b = TwoTableSchema("orders", "items");
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(MakeTpccSchema(10).Fingerprint(),
            MakeTpccSchema(10).Fingerprint());
}

TEST(SchemaFingerprintTest, ObjectOrderMatters) {
  // A column-order variant — same objects, ids swapped — must NOT share a
  // fingerprint: placements are id-indexed, so the schemas are not
  // interchangeable.
  const Schema ab = TwoTableSchema("orders", "items");
  Schema ba;
  const int b = ba.AddTable("items", 5e5, 80);
  ba.AddIndex("items_pk", b, 8);
  const int a = ba.AddTable("orders", 1e6, 120);
  ba.AddIndex("orders_pk", a, 8);
  EXPECT_NE(ab.Fingerprint(), ba.Fingerprint());
}

TEST(SchemaFingerprintTest, ContentChangesChangeTheHash) {
  const Schema base = TwoTableSchema("orders", "items");
  const Schema renamed = TwoTableSchema("orders2", "items");
  EXPECT_NE(base.Fingerprint(), renamed.Fingerprint());

  Schema resized;
  const int t = resized.AddTable("orders", 1e6 + 1, 120);
  resized.AddIndex("orders_pk", t, 8);
  const int u = resized.AddTable("items", 5e5, 80);
  resized.AddIndex("items_pk", u, 8);
  EXPECT_NE(base.Fingerprint(), resized.Fingerprint());

  EXPECT_NE(MakeTpccSchema(10).Fingerprint(),
            MakeTpccSchema(20).Fingerprint());
  Schema empty;
  EXPECT_NE(base.Fingerprint(), empty.Fingerprint());
}

TEST(SchemaDeathTest, DuplicateNameAborts) {
  Schema s;
  s.AddTable("t", 10, 10);
  EXPECT_DEATH(s.AddTable("t", 10, 10), "duplicate");
}

TEST(SchemaDeathTest, IndexOnIndexAborts) {
  Schema s;
  const int t = s.AddTable("t", 10, 10);
  const int i = s.AddIndex("i", t, 4);
  EXPECT_DEATH(s.AddIndex("j", i, 4), "must reference a table");
}

TEST(SchemaDeathTest, SubsetWithOrphanIndexAborts) {
  Schema full = MakeTpchSchema(1.0);
  EXPECT_DEATH(full.Subset({"lineitem_pkey"}), "without its table");
}

}  // namespace
}  // namespace dot
