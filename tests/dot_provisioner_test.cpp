#include "dot/provisioner.h"

#include <gtest/gtest.h>

#include <memory>

#include "catalog/tpch_schema.h"
#include "storage/standard_catalog.h"
#include "workload/dss_workload.h"
#include "workload/profiler.h"
#include "workload/tpch_queries.h"

namespace dot {
namespace {

/// Holds everything one configuration option needs alive.
struct OptionState {
  BoxConfig box;
  std::unique_ptr<DssWorkloadModel> workload;
  std::unique_ptr<WorkloadProfiles> profiles;
};

class ProvisionerTest : public ::testing::Test {
 protected:
  ProvisionerTest() : schema_(MakeTpchEsSubsetSchema(20.0)) {}

  ProvisioningOption MakeOption(const BoxConfig& box, double sla) {
    auto state = std::make_shared<OptionState>();
    state->box = box;
    state->workload = std::make_unique<DssWorkloadModel>(
        box.name, &schema_, &state->box, MakeTpchSubsetTemplates(),
        RepeatSequence(11, 3), PlannerConfig{});
    Profiler profiler(&schema_, &state->box);
    state->profiles =
        std::make_unique<WorkloadProfiles>(profiler.ProfileWorkload(
            *state->workload, [state](const std::vector<int>& p) {
              return state->workload->Estimate(p);
            }));
    ProvisioningOption option;
    option.name = box.name;
    option.make_problem = [this, state, sla]() {
      DotProblem p;
      p.schema = &schema_;
      p.box = &state->box;
      p.workload = state->workload.get();
      p.relative_sla = sla;
      p.profiles = state->profiles.get();
      return p;
    };
    return option;
  }

  Schema schema_;
};

TEST_F(ProvisionerTest, PicksTheCheaperFeasibleBox) {
  std::vector<ProvisioningOption> options;
  options.push_back(MakeOption(MakeBox1(), 0.5));
  options.push_back(MakeOption(MakeBox2(), 0.5));
  ProvisioningResult r = ProvisionOverOptions(options);
  ASSERT_GE(r.best_option, 0);
  ASSERT_EQ(r.per_option.size(), 2u);
  for (const DotResult& res : r.per_option) {
    if (res.status.ok()) {
      EXPECT_GE(res.toc_cents_per_task,
                r.best.toc_cents_per_task * (1 - 1e-12));
    }
  }
  EXPECT_EQ(r.best_name, options[static_cast<size_t>(r.best_option)].name);
}

TEST_F(ProvisionerTest, SkipsInfeasibleOptions) {
  BoxConfig tiny = MakeBox1();
  for (auto& sc : tiny.classes) sc.set_capacity_gb(0.01);
  tiny.name = "tiny box";
  std::vector<ProvisioningOption> options;
  options.push_back(MakeOption(tiny, 0.5));
  options.push_back(MakeOption(MakeBox2(), 0.5));
  ProvisioningResult r = ProvisionOverOptions(options);
  EXPECT_EQ(r.best_option, 1);
  EXPECT_FALSE(r.per_option[0].status.ok());
  EXPECT_TRUE(r.per_option[1].status.ok());
}

TEST_F(ProvisionerTest, NoFeasibleOptionReportsMinusOne) {
  BoxConfig tiny = MakeBox1();
  for (auto& sc : tiny.classes) sc.set_capacity_gb(0.01);
  std::vector<ProvisioningOption> options;
  options.push_back(MakeOption(tiny, 0.5));
  ProvisioningResult r = ProvisionOverOptions(options);
  EXPECT_EQ(r.best_option, -1);
  EXPECT_TRUE(r.best_name.empty());
}

}  // namespace
}  // namespace dot
