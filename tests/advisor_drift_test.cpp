// Unit tests of the advisor's change detection (advisor/drift.h): EWMA
// smoothing semantics, deadband and trigger edges, CUSUM accumulation
// latency on step changes, rebase semantics, and the count floor that
// keeps a near-idle baseline from producing infinite relative drift.

#include "advisor/drift.h"

#include <gtest/gtest.h>

#include <vector>

namespace dot {
namespace {

/// One-object, one-class profile with the given kSeqRead count — the
/// smallest map the detector's arithmetic runs over. 16.0 is exact in
/// binary, so the relative-deviation expectations below are exact too.
ObjectIoMap OneCell(double seq_reads) {
  ObjectIoMap map(1);
  map[0][IoType::kSeqRead] = seq_reads;
  return map;
}

TEST(OnlineIoProfileTest, FirstObservationInitializesOutright) {
  OnlineIoProfile profile;
  EXPECT_TRUE(profile.empty());
  profile.Observe(OneCell(16.0), /*alpha=*/0.1);
  EXPECT_FALSE(profile.empty());
  // alpha does not discount the first observation against an empty mean.
  EXPECT_DOUBLE_EQ(profile.mean()[0][IoType::kSeqRead], 16.0);
}

TEST(OnlineIoProfileTest, EwmaBlendsAtAlpha) {
  OnlineIoProfile profile;
  profile.Observe(OneCell(16.0), 0.25);
  profile.Observe(OneCell(32.0), 0.25);
  // (1 - 0.25) * 16 + 0.25 * 32 = 20, exact in binary.
  EXPECT_DOUBLE_EQ(profile.mean()[0][IoType::kSeqRead], 20.0);
  profile.Reset();
  EXPECT_TRUE(profile.empty());
}

TEST(DriftDetectorTest, MatchingProfileNeverDrifts) {
  DriftDetector detector(DriftConfig{});
  detector.Rebase(OneCell(16.0));
  for (int w = 0; w < 100; ++w) {
    detector.Update(OneCell(16.0));
    EXPECT_DOUBLE_EQ(detector.deviation(), 0.0);
    EXPECT_DOUBLE_EQ(detector.statistic(), 0.0);
    EXPECT_FALSE(detector.drifted());
  }
}

TEST(DriftDetectorTest, DeadbandAbsorbsInProfileNoise) {
  DriftConfig config;
  config.ewma_alpha = 1.0;  // no smoothing: deviation is per-window
  config.deadband = 0.05;
  DriftDetector detector(config);
  detector.Rebase(OneCell(16.0));
  // Relative deviation |16.5 - 16| / 16 ≈ 0.031 < deadband: however long
  // it persists, nothing accumulates.
  for (int w = 0; w < 1000; ++w) {
    detector.Update(OneCell(16.5));
    EXPECT_DOUBLE_EQ(detector.statistic(), 0.0);
  }
  EXPECT_FALSE(detector.drifted());
}

TEST(DriftDetectorTest, StepChangeTripsAtTheDocumentedLatency) {
  // A persistent step of relative size s trips after about
  // trigger / (s - deadband) windows (drift.h). With s = 0.25 exactly,
  // deadband 0, trigger 0.5 and no smoothing: two windows, on the nose.
  DriftConfig config;
  config.ewma_alpha = 1.0;
  config.deadband = 0.0;
  config.trigger = 0.5;
  DriftDetector detector(config);
  detector.Rebase(OneCell(16.0));

  detector.Update(OneCell(20.0));  // |20-16|/16 = 0.25
  EXPECT_DOUBLE_EQ(detector.deviation(), 0.25);
  EXPECT_DOUBLE_EQ(detector.statistic(), 0.25);
  EXPECT_FALSE(detector.drifted());

  detector.Update(OneCell(20.0));
  // The threshold edge is inclusive: statistic == trigger declares drift.
  EXPECT_DOUBLE_EQ(detector.statistic(), 0.5);
  EXPECT_TRUE(detector.drifted());
}

TEST(DriftDetectorTest, SmoothingDelaysButDoesNotSuppressDetection) {
  auto windows_to_trip = [](double alpha) {
    DriftConfig config;
    config.ewma_alpha = alpha;
    DriftDetector detector(config);
    detector.Rebase(OneCell(16.0));
    int windows = 0;
    while (!detector.drifted()) {
      detector.Update(OneCell(32.0));
      ++windows;
      EXPECT_LT(windows, 1000) << "step change never detected";
    }
    return windows;
  };
  const int smoothed = windows_to_trip(0.3);
  const int raw = windows_to_trip(1.0);
  EXPECT_GE(smoothed, raw);
  EXPECT_GT(raw, 0);
}

TEST(DriftDetectorTest, RebaseClearsTheStatisticAndTheSmoother) {
  DriftConfig config;
  config.ewma_alpha = 1.0;
  DriftDetector detector(config);
  detector.Rebase(OneCell(16.0));
  while (!detector.drifted()) detector.Update(OneCell(32.0));

  // The re-plan absorbed the shift: the shifted profile is the new normal.
  detector.Rebase(OneCell(32.0));
  EXPECT_DOUBLE_EQ(detector.statistic(), 0.0);
  EXPECT_TRUE(detector.smoothed().empty());
  for (int w = 0; w < 50; ++w) {
    detector.Update(OneCell(32.0));
    EXPECT_FALSE(detector.drifted());
  }
}

TEST(DriftDetectorTest, CountFloorBoundsNearIdleBaselines) {
  DriftConfig config;
  config.ewma_alpha = 1.0;
  config.deadband = 0.0;
  config.count_floor = 1.0;
  DriftDetector detector(config);
  detector.Rebase(OneCell(0.0));  // the incumbent plan expects silence
  detector.Update(OneCell(2.0));
  // Normalized by the floor, not the zero baseline: 2 / 1, not 2 / 0.
  EXPECT_DOUBLE_EQ(detector.deviation(), 2.0);
  EXPECT_TRUE(detector.drifted());
}

// --- bursty-noise behaviour -------------------------------------------
//
// False-positive rate bound. The statistic is a one-sided CUSUM,
//   S ← max(0, S + (deviation − deadband)),
// so (a) any noise whose per-window deviation stays ≤ deadband keeps
// S ≡ 0 — the false-positive rate is exactly zero, however long the noise
// persists; and (b) a burst of b consecutive windows at deviation s >
// deadband raises S by exactly b·(s − deadband), so it can trigger only
// when b·(s − deadband) ≥ trigger. Between bursts, every in-deadband
// window *drains* S by (deadband − deviation); after ceil(b·(s −
// deadband)/deadband) quiet windows the burst is fully forgotten. Hence
// bursty noise with bursts shorter than trigger/(s − deadband) windows,
// separated by at least that many quiet windows, never fires — the
// advisor only re-plans on shifts that persist.

TEST(DriftDetectorTest, NoiseWithinDeadbandNeverAccumulates) {
  DriftConfig config;
  config.ewma_alpha = 1.0;  // no smoothing: the raw windows are the noise
  config.deadband = 0.0625;  // exact in binary, so the arithmetic is too
  DriftDetector detector(config);
  detector.Rebase(OneCell(16.0));
  // Deviations alternate 0 and 1/16 = deadband (inclusive edge): nothing
  // ever accumulates, so zero false positives at any run length.
  for (int w = 0; w < 1000; ++w) {
    detector.Update(OneCell(w % 2 == 0 ? 16.0 : 17.0));
    EXPECT_DOUBLE_EQ(detector.statistic(), 0.0);
    EXPECT_FALSE(detector.drifted());
  }
}

TEST(DriftDetectorTest, ShortBurstsAboveDeadbandLeakAwayBetweenBursts) {
  DriftConfig config;
  config.ewma_alpha = 1.0;
  config.deadband = 0.0625;
  config.trigger = 0.5;
  DriftDetector detector(config);
  detector.Rebase(OneCell(16.0));
  // Each cycle: a 2-window burst at deviation 0.25 (excess 0.1875/window,
  // peak S = 0.375 < trigger) followed by 6 quiet windows draining
  // 0.0625 each (6 · 0.0625 = 0.375 — fully forgotten). No cycle count
  // can ever trip the detector: bursts don't compound across gaps.
  for (int cycle = 0; cycle < 50; ++cycle) {
    detector.Update(OneCell(20.0));
    detector.Update(OneCell(20.0));
    EXPECT_DOUBLE_EQ(detector.statistic(), 0.375);
    EXPECT_FALSE(detector.drifted());
    for (int q = 0; q < 6; ++q) detector.Update(OneCell(16.0));
    EXPECT_DOUBLE_EQ(detector.statistic(), 0.0);
  }
  EXPECT_FALSE(detector.drifted());
}

TEST(DriftDetectorTest, SustainedBurstCrossesTheDocumentedThreshold) {
  // The same burst, persisted: b·(s − deadband) ≥ trigger fires. With
  // s = 0.25, deadband = 0.0625, trigger = 0.5: 2 windows accumulate
  // 0.375 (quiet), the 3rd reaches 0.5625 ≥ 0.5 — exactly the
  // ceil(trigger/(s − deadband)) = 3 latency the bound predicts.
  DriftConfig config;
  config.ewma_alpha = 1.0;
  config.deadband = 0.0625;
  config.trigger = 0.5;
  DriftDetector detector(config);
  detector.Rebase(OneCell(16.0));
  detector.Update(OneCell(20.0));
  detector.Update(OneCell(20.0));
  EXPECT_FALSE(detector.drifted());
  detector.Update(OneCell(20.0));
  EXPECT_DOUBLE_EQ(detector.statistic(), 0.5625);
  EXPECT_TRUE(detector.drifted());
}

TEST(DriftDetectorTest, SmoothingAttenuatesSpikeDeviation) {
  // The EWMA's role against spikes: once primed, a one-window spike moves
  // the smoothed profile by only alpha of its raw size, so the deviation a
  // single outlier can inject is alpha·s — an alpha-smoothed detector
  // needs a 1/alpha-times-larger spike to accumulate the same excess.
  // (Suppression of *repeated* short bursts is the deadband's job — see
  // the burst tests above. Note the EWMA initializes outright on the first
  // window after a Rebase, so a spike in that very window is unattenuated.)
  DriftConfig config;
  config.ewma_alpha = 0.3;
  config.deadband = 0.05;
  config.trigger = 0.5;
  DriftDetector smoothed(config);
  smoothed.Rebase(OneCell(16.0));
  smoothed.Update(OneCell(16.0));  // prime the EWMA with the baseline
  smoothed.Update(OneCell(32.0));  // spike: raw relative size 1.0
  EXPECT_NEAR(smoothed.deviation(), 0.3, 1e-12);
  EXPECT_FALSE(smoothed.drifted());

  config.ewma_alpha = 1.0;  // same spike, unsmoothed: trips on the spot
  DriftDetector raw(config);
  raw.Rebase(OneCell(16.0));
  raw.Update(OneCell(16.0));
  raw.Update(OneCell(32.0));
  EXPECT_DOUBLE_EQ(raw.deviation(), 1.0);
  EXPECT_TRUE(raw.drifted());
}

TEST(DriftDetectorTest, DeviationSumsOverAllObjectsAndClasses) {
  DriftConfig config;
  config.ewma_alpha = 1.0;
  DriftDetector detector(config);
  ObjectIoMap baseline(2);
  baseline[0][IoType::kSeqRead] = 8.0;
  baseline[1][IoType::kRandWrite] = 8.0;
  detector.Rebase(baseline);

  ObjectIoMap observed(2);
  observed[0][IoType::kSeqRead] = 10.0;   // +2
  observed[1][IoType::kRandWrite] = 6.0;  // -2: misses don't cancel hits
  detector.Update(observed);
  EXPECT_DOUBLE_EQ(detector.deviation(), 4.0 / 16.0);
}

}  // namespace
}  // namespace dot
