// Unit tests of the advisor's change detection (advisor/drift.h): EWMA
// smoothing semantics, deadband and trigger edges, CUSUM accumulation
// latency on step changes, rebase semantics, and the count floor that
// keeps a near-idle baseline from producing infinite relative drift.

#include "advisor/drift.h"

#include <gtest/gtest.h>

#include <vector>

namespace dot {
namespace {

/// One-object, one-class profile with the given kSeqRead count — the
/// smallest map the detector's arithmetic runs over. 16.0 is exact in
/// binary, so the relative-deviation expectations below are exact too.
ObjectIoMap OneCell(double seq_reads) {
  ObjectIoMap map(1);
  map[0][IoType::kSeqRead] = seq_reads;
  return map;
}

TEST(OnlineIoProfileTest, FirstObservationInitializesOutright) {
  OnlineIoProfile profile;
  EXPECT_TRUE(profile.empty());
  profile.Observe(OneCell(16.0), /*alpha=*/0.1);
  EXPECT_FALSE(profile.empty());
  // alpha does not discount the first observation against an empty mean.
  EXPECT_DOUBLE_EQ(profile.mean()[0][IoType::kSeqRead], 16.0);
}

TEST(OnlineIoProfileTest, EwmaBlendsAtAlpha) {
  OnlineIoProfile profile;
  profile.Observe(OneCell(16.0), 0.25);
  profile.Observe(OneCell(32.0), 0.25);
  // (1 - 0.25) * 16 + 0.25 * 32 = 20, exact in binary.
  EXPECT_DOUBLE_EQ(profile.mean()[0][IoType::kSeqRead], 20.0);
  profile.Reset();
  EXPECT_TRUE(profile.empty());
}

TEST(DriftDetectorTest, MatchingProfileNeverDrifts) {
  DriftDetector detector(DriftConfig{});
  detector.Rebase(OneCell(16.0));
  for (int w = 0; w < 100; ++w) {
    detector.Update(OneCell(16.0));
    EXPECT_DOUBLE_EQ(detector.deviation(), 0.0);
    EXPECT_DOUBLE_EQ(detector.statistic(), 0.0);
    EXPECT_FALSE(detector.drifted());
  }
}

TEST(DriftDetectorTest, DeadbandAbsorbsInProfileNoise) {
  DriftConfig config;
  config.ewma_alpha = 1.0;  // no smoothing: deviation is per-window
  config.deadband = 0.05;
  DriftDetector detector(config);
  detector.Rebase(OneCell(16.0));
  // Relative deviation |16.5 - 16| / 16 ≈ 0.031 < deadband: however long
  // it persists, nothing accumulates.
  for (int w = 0; w < 1000; ++w) {
    detector.Update(OneCell(16.5));
    EXPECT_DOUBLE_EQ(detector.statistic(), 0.0);
  }
  EXPECT_FALSE(detector.drifted());
}

TEST(DriftDetectorTest, StepChangeTripsAtTheDocumentedLatency) {
  // A persistent step of relative size s trips after about
  // trigger / (s - deadband) windows (drift.h). With s = 0.25 exactly,
  // deadband 0, trigger 0.5 and no smoothing: two windows, on the nose.
  DriftConfig config;
  config.ewma_alpha = 1.0;
  config.deadband = 0.0;
  config.trigger = 0.5;
  DriftDetector detector(config);
  detector.Rebase(OneCell(16.0));

  detector.Update(OneCell(20.0));  // |20-16|/16 = 0.25
  EXPECT_DOUBLE_EQ(detector.deviation(), 0.25);
  EXPECT_DOUBLE_EQ(detector.statistic(), 0.25);
  EXPECT_FALSE(detector.drifted());

  detector.Update(OneCell(20.0));
  // The threshold edge is inclusive: statistic == trigger declares drift.
  EXPECT_DOUBLE_EQ(detector.statistic(), 0.5);
  EXPECT_TRUE(detector.drifted());
}

TEST(DriftDetectorTest, SmoothingDelaysButDoesNotSuppressDetection) {
  auto windows_to_trip = [](double alpha) {
    DriftConfig config;
    config.ewma_alpha = alpha;
    DriftDetector detector(config);
    detector.Rebase(OneCell(16.0));
    int windows = 0;
    while (!detector.drifted()) {
      detector.Update(OneCell(32.0));
      ++windows;
      EXPECT_LT(windows, 1000) << "step change never detected";
    }
    return windows;
  };
  const int smoothed = windows_to_trip(0.3);
  const int raw = windows_to_trip(1.0);
  EXPECT_GE(smoothed, raw);
  EXPECT_GT(raw, 0);
}

TEST(DriftDetectorTest, RebaseClearsTheStatisticAndTheSmoother) {
  DriftConfig config;
  config.ewma_alpha = 1.0;
  DriftDetector detector(config);
  detector.Rebase(OneCell(16.0));
  while (!detector.drifted()) detector.Update(OneCell(32.0));

  // The re-plan absorbed the shift: the shifted profile is the new normal.
  detector.Rebase(OneCell(32.0));
  EXPECT_DOUBLE_EQ(detector.statistic(), 0.0);
  EXPECT_TRUE(detector.smoothed().empty());
  for (int w = 0; w < 50; ++w) {
    detector.Update(OneCell(32.0));
    EXPECT_FALSE(detector.drifted());
  }
}

TEST(DriftDetectorTest, CountFloorBoundsNearIdleBaselines) {
  DriftConfig config;
  config.ewma_alpha = 1.0;
  config.deadband = 0.0;
  config.count_floor = 1.0;
  DriftDetector detector(config);
  detector.Rebase(OneCell(0.0));  // the incumbent plan expects silence
  detector.Update(OneCell(2.0));
  // Normalized by the floor, not the zero baseline: 2 / 1, not 2 / 0.
  EXPECT_DOUBLE_EQ(detector.deviation(), 2.0);
  EXPECT_TRUE(detector.drifted());
}

TEST(DriftDetectorTest, DeviationSumsOverAllObjectsAndClasses) {
  DriftConfig config;
  config.ewma_alpha = 1.0;
  DriftDetector detector(config);
  ObjectIoMap baseline(2);
  baseline[0][IoType::kSeqRead] = 8.0;
  baseline[1][IoType::kRandWrite] = 8.0;
  detector.Rebase(baseline);

  ObjectIoMap observed(2);
  observed[0][IoType::kSeqRead] = 10.0;   // +2
  observed[1][IoType::kRandWrite] = 6.0;  // -2: misses don't cancel hits
  detector.Update(observed);
  EXPECT_DOUBLE_EQ(detector.deviation(), 4.0 / 16.0);
}

}  // namespace
}  // namespace dot
