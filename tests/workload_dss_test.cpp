#include "workload/dss_workload.h"

#include <gtest/gtest.h>

#include "catalog/tpch_schema.h"
#include "storage/standard_catalog.h"
#include "workload/tpch_queries.h"
#include "workload/workload.h"

namespace dot {
namespace {

class DssWorkloadTest : public ::testing::Test {
 protected:
  DssWorkloadTest()
      : schema_(MakeTpchSchema(20.0)),
        box_(MakeBox1()),
        workload_("TPC-H", &schema_, &box_, MakeTpchTemplates(),
                  RepeatSequence(22, 3), PlannerConfig{}) {}

  Schema schema_;
  BoxConfig box_;
  DssWorkloadModel workload_;
};

TEST_F(DssWorkloadTest, SequenceHas66Queries) {
  EXPECT_EQ(workload_.sequence().size(), 66u);
  EXPECT_EQ(workload_.templates().size(), 22u);
}

TEST_F(DssWorkloadTest, EstimateProducesPerQueryTimes) {
  PerfEstimate est =
      workload_.Estimate(UniformPlacement(schema_.NumObjects(), 2));
  EXPECT_EQ(est.unit_times_ms.size(), 66u);
  double sum = 0;
  for (double t : est.unit_times_ms) {
    EXPECT_GT(t, 0);
    sum += t;
  }
  EXPECT_NEAR(est.elapsed_ms, sum, 1e-6);
  EXPECT_GT(est.tasks_per_hour, 0);
}

TEST_F(DssWorkloadTest, RepetitionsShareTheSamePlan) {
  PerfEstimate est =
      workload_.Estimate(UniformPlacement(schema_.NumObjects(), 0));
  // Template-major sequence: entries 0..2 are template 0.
  EXPECT_DOUBLE_EQ(est.unit_times_ms[0], est.unit_times_ms[1]);
  EXPECT_DOUBLE_EQ(est.unit_times_ms[1], est.unit_times_ms[2]);
}

TEST_F(DssWorkloadTest, AllHssdIsFastest) {
  const int n = schema_.NumObjects();
  const double hssd =
      workload_.Estimate(UniformPlacement(n, 2)).elapsed_ms;
  const double lssd =
      workload_.Estimate(UniformPlacement(n, 1)).elapsed_ms;
  const double hdd_raid =
      workload_.Estimate(UniformPlacement(n, 0)).elapsed_ms;
  EXPECT_LT(hssd, lssd);
  EXPECT_LT(hssd, hdd_raid);
}

TEST_F(DssWorkloadTest, OriginalWorkloadIsSrDominated) {
  // §4.4: "the workload is executed sequentially with the SR I/O as the
  // dominating I/O type" (on bulk layouts).
  PerfEstimate est =
      workload_.Estimate(UniformPlacement(schema_.NumObjects(), 0));
  IoVector total;
  for (const IoVector& v : est.io_by_object) total += v;
  EXPECT_GT(total[IoType::kSeqRead], total[IoType::kRandRead]);
}

TEST_F(DssWorkloadTest, OriginalWorkloadHasLowInljShare) {
  // §4.4.2: "only 11% of the joins in the original TPC-H workload were
  // INLJ" on the DOT/H-SSD-style layouts. Allow a loose band.
  PerfEstimate est =
      workload_.Estimate(UniformPlacement(schema_.NumObjects(), 2));
  ASSERT_GT(est.num_joins, 0);
  const double share =
      static_cast<double>(est.num_index_nl_joins) / est.num_joins;
  EXPECT_LT(share, 0.35);
}

TEST_F(DssWorkloadTest, ModifiedWorkloadHasHigherInljShareOnHssd) {
  DssWorkloadModel modified("TPC-H-mod", &schema_, &box_,
                            MakeModifiedTpchTemplates(),
                            RepeatSequence(5, 20), PlannerConfig{});
  PerfEstimate orig =
      workload_.Estimate(UniformPlacement(schema_.NumObjects(), 2));
  PerfEstimate mod =
      modified.Estimate(UniformPlacement(schema_.NumObjects(), 2));
  const double orig_share =
      static_cast<double>(orig.num_index_nl_joins) / orig.num_joins;
  const double mod_share =
      static_cast<double>(mod.num_index_nl_joins) / mod.num_joins;
  EXPECT_GT(mod_share, orig_share);
}

TEST_F(DssWorkloadTest, IoScaleInflatesTime) {
  const std::vector<int> placement =
      UniformPlacement(schema_.NumObjects(), 0);
  PerfEstimate base = workload_.Estimate(placement);
  std::vector<double> scale(static_cast<size_t>(schema_.NumObjects()), 2.0);
  PerfEstimate scaled = workload_.EstimateWithIoScale(placement, scale);
  EXPECT_GT(scaled.elapsed_ms, base.elapsed_ms * 1.2);
  // I/O doubles exactly.
  const int li = schema_.FindObject("lineitem");
  EXPECT_NEAR(scaled.io_by_object[li].Total(),
              2.0 * base.io_by_object[li].Total(), 1e-6);
}

TEST_F(DssWorkloadTest, SubsetTemplatesTouchOnlyFourTables) {
  Schema sub = MakeTpchEsSubsetSchema(20.0);
  DssWorkloadModel subset("TPC-H-ES", &sub, &box_,
                          MakeTpchSubsetTemplates(), RepeatSequence(11, 3),
                          PlannerConfig{});
  // Must not abort: every template resolves against the 8-object schema.
  PerfEstimate est = subset.Estimate(UniformPlacement(sub.NumObjects(), 2));
  EXPECT_EQ(est.unit_times_ms.size(), 33u);
}

TEST(RepeatSequenceTest, TemplateMajorOrder) {
  const std::vector<int> seq = RepeatSequence(3, 2);
  EXPECT_EQ(seq, (std::vector<int>{0, 0, 1, 1, 2, 2}));
}

TEST(TpchTemplatesTest, TwentyTwoNamedTemplates) {
  const auto qs = MakeTpchTemplates();
  ASSERT_EQ(qs.size(), 22u);
  EXPECT_EQ(qs[0].name, "Q1");
  EXPECT_EQ(qs[21].name, "Q22");
  for (const QuerySpec& q : qs) {
    EXPECT_EQ(q.joins.size() + 1, q.relations.size()) << q.name;
  }
}

TEST(TpchTemplatesTest, ModifiedTemplatesAreKeySargable) {
  for (const QuerySpec& q : MakeModifiedTpchTemplates()) {
    EXPECT_TRUE(q.relations[0].index_sargable) << q.name;
    EXPECT_LT(q.relations[0].selectivity, 0.01) << q.name;
  }
}

}  // namespace
}  // namespace dot
